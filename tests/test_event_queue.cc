/**
 * @file
 * Sharded event queue tests: the ordering-equivalence property (the
 * per-tile lane queue pops in exactly the order of the old single heap,
 * kept as a shim in sim/event_queue_ref.h), per-lane stats, and the
 * small-buffer-optimized callable.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/hash.h"
#include "sim/event_queue.h"
#include "sim/event_queue_ref.h"
#include "sim/parallel_executor.h"

using namespace ssim;

namespace {

/**
 * A deterministic interleaved workload: events append their id to a log
 * and schedule 0–2 successors on mix64-derived tiles (or the global
 * lane) at small deltas, producing plenty of same-cycle ties. The
 * schedule-call stream depends only on pop order, so identical logs
 * prove identical pop sequences.
 */
template <typename Q>
struct Workload
{
    Q* q;
    std::vector<uint64_t> log;
    uint64_t rng = 42;
    uint64_t nextId = 0;
    uint64_t budget = 5000;
    uint32_t ntiles;

    struct Ev
    {
        Workload* s;
        uint64_t id;
        void
        operator()() const
        {
            s->log.push_back(id);
            uint64_t h = splitmix64(s->rng);
            uint32_t fan = h % 3;
            for (uint32_t i = 0; i < fan && s->budget > 0; i++) {
                s->budget--;
                uint64_t hi = mix64(h + i);
                Cycle when = s->q->now() + (hi >> 16) % 4; // ties common
                if (((hi >> 24) & 3) == 0)
                    s->q->schedule(when, Ev{s, s->nextId++});
                else
                    s->q->scheduleOn(uint32_t(hi % s->ntiles), when,
                                     Ev{s, s->nextId++});
            }
        }
    };

    std::vector<uint64_t>
    run()
    {
        for (uint32_t i = 0; i < 64; i++) {
            uint64_t h = mix64(i + 1);
            q->scheduleOn(uint32_t(h % ntiles), h % 16, Ev{this, nextId++});
        }
        q->run();
        return log;
    }
};

} // namespace

TEST(ShardedEventQueue, PopOrderMatchesSingleHeapShim)
{
    for (uint32_t ntiles : {1u, 3u, 16u, 64u}) {
        SingleHeapEventQueue<InlineCallback> ref;
        Workload<SingleHeapEventQueue<InlineCallback>> wref{&ref};
        wref.ntiles = ntiles;
        auto logRef = wref.run();

        EventQueue lanes;
        lanes.configureLanes(ntiles);
        Workload<EventQueue> wlanes{&lanes};
        wlanes.ntiles = ntiles;
        auto logLanes = wlanes.run();

        ASSERT_GT(logRef.size(), 5000u) << ntiles << " tiles";
        EXPECT_EQ(logRef, logLanes) << ntiles << " tiles";
        EXPECT_EQ(ref.now(), lanes.now()) << ntiles << " tiles";
        EXPECT_EQ(ref.executedEvents(), lanes.executedEvents());
    }
}

TEST(ShardedEventQueue, OrdersByTimeThenGlobalSequenceAcrossLanes)
{
    EventQueue eq;
    eq.configureLanes(4);
    std::vector<int> order;
    eq.scheduleOn(2, 10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });         // global lane
    eq.scheduleOn(0, 10, [&] { order.push_back(3); });   // tie: after 2
    eq.scheduleOn(2, 10, [&] { order.push_back(4); });   // tie: after 3
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 10u);
}

TEST(ShardedEventQueue, PerLaneStatsAndMinima)
{
    EventQueue eq;
    eq.configureLanes(4); // lanes: 1 global + 4 tiles
    EXPECT_EQ(eq.numLanes(), 5u);

    eq.schedule(7, [] {});      // global lane 0
    eq.scheduleOn(1, 3, [] {}); // tile 1 = lane 2
    eq.scheduleOn(1, 9, [] {});
    eq.scheduleOn(3, 5, [] {}); // tile 3 = lane 4

    EXPECT_EQ(eq.pending(), 4u);
    EXPECT_EQ(eq.pending(0), 1u);
    EXPECT_EQ(eq.pending(2), 2u);
    EXPECT_EQ(eq.pending(4), 1u);
    EXPECT_EQ(eq.pending(1), 0u);
    EXPECT_EQ(eq.laneMinCycle(0), 7u);
    EXPECT_EQ(eq.laneMinCycle(2), 3u);
    EXPECT_EQ(eq.laneMinCycle(1), kCycleMax);
    EXPECT_EQ(eq.nextEventCycle(), 3u);

    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.nextEventCycle(), kCycleMax);
    EXPECT_EQ(eq.laneScheduled(2), 2u);
    EXPECT_EQ(eq.lanePeakPending(2), 2u);
    EXPECT_EQ(eq.laneScheduled(1), 0u);
}

TEST(ShardedEventQueue, RunSomeAndStopWork)
{
    EventQueue eq;
    eq.configureLanes(2);
    int fired = 0;
    eq.scheduleOn(0, 1, [&] {
        fired++;
        eq.scheduleAfterOn(1, 5, [&] { fired++; });
    });
    EXPECT_EQ(eq.runSome(1), 1u);
    EXPECT_EQ(fired, 1);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 6u);
}

TEST(ShardedEventQueue, UnconfiguredQueueRoutesEverythingGlobally)
{
    EventQueue eq; // no configureLanes: tests and tools use it bare
    std::vector<int> order;
    eq.scheduleOn(7, 4, [&] { order.push_back(1); });
    eq.schedule(2, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.numLanes(), 1u);
    EXPECT_EQ(eq.laneScheduled(0), 2u);
}

TEST(ShardedEventQueue, StopHaltsParallelExecutorLikeSerialRun)
{
    // stop() must behave identically under the parallel driver: return
    // after the current event, leaving later events pending.
    struct NoneBackend : ParallelBackend
    {
        uint32_t preResume(uint64_t, uint64_t) override { return 0; }
    };
    for (bool parallel : {false, true}) {
        EventQueue eq;
        eq.configureLanes(4);
        std::vector<int> order;
        eq.scheduleOn(0, 1, [&] { order.push_back(0); });
        eq.scheduleOn(1, 2, [&, peq = &eq] {
            order.push_back(1);
            peq->stop();
        });
        eq.scheduleOn(2, 3, [&] { order.push_back(2); });
        if (parallel) {
            NoneBackend backend;
            ParallelExecutor px(eq, backend, 2);
            px.run();
        } else {
            eq.run();
        }
        EXPECT_EQ(order, (std::vector<int>{0, 1})) << parallel;
        EXPECT_TRUE(eq.stopped());
        EXPECT_EQ(eq.pending(), 1u);
    }
}

// ---- InlineCallback ---------------------------------------------------------

TEST(InlineCallbackTest, SmallCapturesStayInline)
{
    uint64_t before = InlineCallback::heapFallbacks();
    uint64_t a = 1, b = 2;
    uint64_t got = 0;
    // Three words — the (this, uid, gen) shape of the simulator's hot
    // callbacks, and exactly kInlineSize.
    InlineCallback cb([&got, a, b] { got = a + b; });
    InlineCallback cb2 = std::move(cb);
    cb2();
    EXPECT_EQ(got, 3u);
    EXPECT_FALSE(bool(cb));
    EXPECT_TRUE(bool(cb2));
    EXPECT_EQ(InlineCallback::heapFallbacks(), before);
}

TEST(InlineCallbackTest, OversizedCapturesFallBackToHeapAndStillWork)
{
    uint64_t before = InlineCallback::heapFallbacks();
    struct Big
    {
        uint64_t v[6];
    } big{{1, 2, 3, 4, 5, 6}};
    uint64_t got = 0;
    InlineCallback cb([&got, big] { got = big.v[0] + big.v[5]; });
    EXPECT_EQ(InlineCallback::heapFallbacks(), before + 1);
    InlineCallback cb2 = std::move(cb);
    cb2();
    EXPECT_EQ(got, 7u);
}

TEST(InlineCallbackTest, DestroysCapturedState)
{
    auto token = std::make_shared<int>(5);
    std::weak_ptr<int> weak = token;
    {
        InlineCallback cb[2];
        cb[0] = InlineCallback([t = std::move(token)] { (void)*t; });
        cb[1] = std::move(cb[0]);
        EXPECT_FALSE(weak.expired());
    }
    EXPECT_TRUE(weak.expired()); // move-only capture destroyed exactly once
}
