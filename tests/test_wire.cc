/**
 * @file
 * Wire-format and transport-primitive lattice (swarm/wire.h,
 * sim/shm_ring.h, docs/scale-out.md):
 *
 *  - WireStep / WireProgress are fixed-size trivially-copyable PODs (a
 *    slot crosses a process boundary by memcpy).
 *  - SpscRing obeys its contract: FIFO order, N-1 usable slots, full
 *    push rejected, empty pop rejected, indices wrap past the slot
 *    count without corruption.
 *  - ShardSnapshot serialize() -> parse() roundtrips exactly with every
 *    stat populated (scalars, fixed vectors, dynamic vectors), and the
 *    strict parser rejects malformed snapshots — bad header, missing/
 *    reordered/duplicated fields, short vectors, non-numeric values,
 *    truncation, trailing garbage — with reject-don't-corrupt
 *    semantics.
 */
#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "sim/shm_ring.h"
#include "swarm/wire.h"

using namespace ssim;

// ---- POD contracts ---------------------------------------------------------

static_assert(sizeof(WireStep) == 112);
static_assert(std::is_trivially_copyable_v<WireStep>);
static_assert(sizeof(WireProgress) == 40);
static_assert(std::is_trivially_copyable_v<WireProgress>);

TEST(Wire, KindNamesAreStable)
{
    EXPECT_STREQ(wireKindName(WireKind::Access), "access");
    EXPECT_STREQ(wireKindName(WireKind::Reduce), "reduce");
    EXPECT_STREQ(wireKindName(WireKind::Compute), "compute");
    EXPECT_STREQ(wireKindName(WireKind::Enqueue), "enqueue");
    EXPECT_STREQ(wireKindName(WireKind::Finish), "finish");
}

// ---- SpscRing --------------------------------------------------------------

TEST(SpscRing, FifoOrderAndEmpty)
{
    SpscRing<uint64_t, 8> ring;
    EXPECT_TRUE(ring.empty());
    uint64_t out = 0;
    EXPECT_FALSE(ring.tryPop(out));
    for (uint64_t i = 0; i < 5; i++)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.empty());
    for (uint64_t i = 0; i < 5; i++) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsPush)
{
    SpscRing<uint64_t, 8> ring; // N - 1 = 7 usable slots
    for (uint64_t i = 0; i < 7; i++)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    uint64_t out = 0;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 0u);
    EXPECT_TRUE(ring.tryPush(99)); // freed one slot
}

TEST(SpscRing, IndicesWrapWithoutCorruption)
{
    SpscRing<uint64_t, 4> ring;
    uint64_t out = 0;
    // Push/pop far past the slot count so head/tail wrap many times.
    for (uint64_t i = 0; i < 1000; i++) {
        ASSERT_TRUE(ring.tryPush(i * 3 + 1));
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i * 3 + 1);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CarriesWireSteps)
{
    SpscRing<WireStep, 8> ring;
    WireStep w;
    w.kind = WireKind::Access;
    w.uid = 42;
    w.gen = 7;
    w.cycle = 1234;
    w.addr = 0xdeadbeef;
    w.wval = 0x1122334455667788ull;
    w.isWrite = 1;
    w.size = 8;
    ASSERT_TRUE(ring.tryPush(w));
    WireStep r;
    ASSERT_TRUE(ring.tryPop(r));
    EXPECT_EQ(r.magic, WireStep::kMagic);
    EXPECT_EQ(r.kind, WireKind::Access);
    EXPECT_EQ(r.uid, 42u);
    EXPECT_EQ(r.gen, 7u);
    EXPECT_EQ(r.cycle, 1234u);
    EXPECT_EQ(r.addr, 0xdeadbeefu);
    EXPECT_EQ(r.wval, 0x1122334455667788ull);
    EXPECT_EQ(r.isWrite, 1u);
    EXPECT_EQ(r.size, 8u);
}

// ---- ShardSnapshot ---------------------------------------------------------

namespace {

/// A snapshot with every field populated distinctly (scalars, fixed
/// vectors, and non-empty dynamic vectors), so a roundtrip that drops
/// or reorders anything cannot pass.
ShardSnapshot
populatedSnapshot()
{
    ShardSnapshot snap;
    snap.shard = 3;
    snap.valid = true;
    snap.resultDigest = 0xabcdef0123456789ull;
    snap.stats.cycles = 123456;
    snap.stats.tasksCommitted = 777;
    snap.stats.tasksAborted = 13;
    snap.stats.conflictChecks = 991;
    snap.stats.l1Hits = 5000;
    snap.stats.l2Misses = 41;
    snap.stats.crossShardMsgs = 17;
    snap.stats.shardStepsSent = 29;
    snap.stats.shardStepsRecv = 31;
    snap.stats.shardProgressMsgs = 5;
    for (size_t i = 0; i < snap.stats.coreCycles.size(); i++)
        snap.stats.coreCycles[i] = 100 + i;
    for (size_t i = 0; i < snap.stats.flits.size(); i++)
        snap.stats.flits[i] = 7 * i;
    snap.stats.laneScheduled = {1, 2, 3, 4};
    snap.stats.lanePeakPending = {9, 8};
    snap.stats.bankPeakLines = {5};
    snap.stats.bankProbes = {6, 6, 6};
    snap.stats.bankApplies = {};
    snap.statsDigest = statsDigest(snap.stats);
    return snap;
}

} // namespace

TEST(ShardSnapshot, SerializeParseRoundtrips)
{
    ShardSnapshot snap = populatedSnapshot();
    std::string text = snap.serialize();
    EXPECT_EQ(text.rfind("swarmsim-shard v1\n", 0), 0u);

    ShardSnapshot back;
    std::string err;
    ASSERT_TRUE(back.parse(text, &err)) << err;
    EXPECT_EQ(back.shard, snap.shard);
    EXPECT_EQ(back.valid, snap.valid);
    EXPECT_EQ(back.statsDigest, snap.statsDigest);
    EXPECT_EQ(back.resultDigest, snap.resultDigest);
    EXPECT_EQ(statsDigest(back.stats), statsDigest(snap.stats));
    EXPECT_EQ(back.stats.laneScheduled, snap.stats.laneScheduled);
    EXPECT_EQ(back.stats.bankApplies, snap.stats.bankApplies);
    // Re-serialization is byte-identical (the format is canonical).
    EXPECT_EQ(back.serialize(), text);
}

TEST(ShardSnapshot, ParseRejectsMalformedInputsWithoutCorruption)
{
    const ShardSnapshot good = populatedSnapshot();
    const std::string text = good.serialize();

    auto expectReject = [&](const std::string& mutated,
                            const char* what) {
        ShardSnapshot snap = good;
        std::string err;
        EXPECT_FALSE(snap.parse(mutated, &err)) << what;
        EXPECT_FALSE(err.empty()) << what;
        // Reject-don't-corrupt: the held snapshot is untouched.
        EXPECT_EQ(snap.serialize(), text) << what;
    };

    // 1. wrong header version
    {
        std::string m = text;
        m.replace(m.find("v1"), 2, "v2");
        expectReject(m, "bad header version");
    }
    // 2. truncated mid-stats
    expectReject(text.substr(0, text.size() / 2), "truncation");
    // 3. missing end sentinel
    {
        std::string m = text;
        m.erase(m.rfind("end\n"));
        expectReject(m, "missing end");
    }
    // 4. trailing garbage after end
    expectReject(text + "junk\n", "trailing garbage");
    // 5. non-numeric stat value
    {
        std::string m = text;
        size_t p = m.find("stat cycles ");
        m.replace(p, m.find('\n', p) - p, "stat cycles abc");
        expectReject(m, "non-numeric stat");
    }
    // 6. renamed (unknown) field breaks the strict sequence
    {
        std::string m = text;
        size_t p = m.find("stat tasksCommitted");
        m.replace(p, std::string("stat tasksCommitted").size(),
                  "stat tasksComitted");
        expectReject(m, "unknown field name");
    }
    // 7. dropped field (sequence shifts by one line)
    {
        std::string m = text;
        size_t p = m.find("stat tasksAborted");
        m.erase(p, m.find('\n', p) - p + 1);
        expectReject(m, "missing field");
    }
    // 8. duplicated field line
    {
        std::string m = text;
        size_t p = m.find("stat tasksAborted");
        size_t e = m.find('\n', p) + 1;
        m.insert(e, m.substr(p, e - p));
        expectReject(m, "duplicated field");
    }
    // 9. short fixed vector (declared length kept, payload truncated)
    {
        std::string m = text;
        size_t p = m.find("vec coreCycles ");
        size_t e = m.find('\n', p);
        size_t lastSpace = m.rfind(' ', e);
        m.erase(lastSpace, e - lastSpace);
        expectReject(m, "short vector");
    }
    // 10. malformed shard index
    {
        std::string m = text;
        size_t p = m.find("shard 3");
        m.replace(p, 7, "shard -1");
        expectReject(m, "bad shard index");
    }
    // 11. malformed digest (non-hex)
    {
        std::string m = text;
        size_t p = m.find("resultdigest ");
        m.replace(p + 13, 4, "zzzz");
        expectReject(m, "non-hex digest");
    }
    // 12. bad valid flag
    {
        std::string m = text;
        size_t p = m.find("valid 1");
        m.replace(p, 7, "valid 2");
        expectReject(m, "bad valid flag");
    }
}

TEST(ShardSnapshot, EmptySnapshotRoundtrips)
{
    ShardSnapshot snap; // all defaults, empty dynamic vectors
    snap.statsDigest = statsDigest(snap.stats);
    ShardSnapshot back;
    std::string err;
    ASSERT_TRUE(back.parse(snap.serialize(), &err)) << err;
    EXPECT_EQ(back.serialize(), snap.serialize());
}
