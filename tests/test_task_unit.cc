/**
 * @file
 * Unit tests for the per-tile TaskUnit dispatch policy (serialization
 * skips, NOHINT behavior), the spill threshold, and the policy registry.
 */
#include <gtest/gtest.h>

#include "swarm/load_balancer.h"
#include "swarm/policies.h"
#include "swarm/scheduler.h"
#include "swarm/task_unit.h"

using namespace ssim;

namespace {

// Build a bare task in a given dispatch-relevant state; these tasks never
// run, so only ordering/hint fields matter.
Task*
makeTask(uint64_t uid, Timestamp ts, uint16_t hint_hash, bool no_hint,
         TaskState state)
{
    Task* t = new Task();
    t->uid = uid;
    t->ts = ts;
    t->hintHash = hint_hash;
    t->noHint = no_hint;
    t->state = state;
    return t;
}

struct TaskUnitTest : ::testing::Test
{
    TaskUnitTest()
        : cfg(SimConfig::withCores(4, SchedulerType::Hints)),
          unit(0, cfg)
    {
    }

    ~TaskUnitTest() override
    {
        for (Task* t : owned)
            delete t;
    }

    Task*
    idleTask(uint64_t uid, Timestamp ts, uint16_t hash, bool no_hint = false)
    {
        Task* t = makeTask(uid, ts, hash, no_hint, TaskState::Idle);
        owned.push_back(t);
        unit.idle.insert(t);
        return t;
    }

    Task*
    runningTask(uint32_t core_idx, uint64_t uid, Timestamp ts,
                uint16_t hash, bool no_hint = false)
    {
        Task* t = makeTask(uid, ts, hash, no_hint, TaskState::Running);
        owned.push_back(t);
        unit.coreTasks[core_idx] = t;
        return t;
    }

    SimConfig cfg;
    TaskUnit unit;
    std::vector<Task*> owned;
    uint64_t skips = 0;
};

} // namespace

TEST_F(TaskUnitTest, PicksEarliestIdleTask)
{
    idleTask(2, 20, 0xa);
    Task* first = idleTask(1, 10, 0xb);
    EXPECT_EQ(unit.pickDispatchable(true, skips), first);
    EXPECT_EQ(skips, 0u);
}

TEST_F(TaskUnitTest, SerializationSkipsSameHashBehindEarlierRunner)
{
    runningTask(0, 1, 10, 0xbeef);
    Task* blocked = idleTask(2, 20, 0xbeef);
    Task* other = idleTask(3, 30, 0xcafe);
    // blocked shares its hash with an earlier running task: skipped.
    EXPECT_EQ(unit.pickDispatchable(true, skips), other);
    EXPECT_EQ(skips, 1u);
    // With serialization off the same candidate dispatches.
    skips = 0;
    EXPECT_EQ(unit.pickDispatchable(false, skips), blocked);
    EXPECT_EQ(skips, 0u);
}

TEST_F(TaskUnitTest, LaterRunnerDoesNotBlockEarlierCandidate)
{
    // The running same-hash task is *later* than the candidate; the
    // comparators only serialize behind earlier tasks.
    runningTask(0, 9, 90, 0xbeef);
    Task* cand = idleTask(1, 10, 0xbeef);
    EXPECT_EQ(unit.pickDispatchable(true, skips), cand);
    EXPECT_EQ(skips, 0u);
}

TEST_F(TaskUnitTest, NoHintTasksNeverMatch)
{
    // A NOHINT candidate must dispatch even when a running task carries
    // an equal (meaningless) hash, and a NOHINT runner blocks nobody.
    runningTask(0, 1, 10, 0x0);
    Task* nohintCand = idleTask(2, 20, 0x0, /*no_hint=*/true);
    EXPECT_EQ(unit.pickDispatchable(true, skips), nohintCand);
    EXPECT_EQ(skips, 0u);

    unit.idle.erase(nohintCand);
    unit.coreTasks[0]->noHint = true;
    Task* cand = idleTask(3, 30, 0x0);
    EXPECT_EQ(unit.pickDispatchable(true, skips), cand);
    EXPECT_EQ(skips, 0u);
}

TEST_F(TaskUnitTest, NonRunningCoreOccupantDoesNotSerialize)
{
    // coreTasks can briefly hold finished tasks; only Running ones drive
    // the comparators.
    runningTask(0, 1, 10, 0xbeef)->state = TaskState::Finished;
    Task* cand = idleTask(2, 20, 0xbeef);
    EXPECT_EQ(unit.pickDispatchable(true, skips), cand);
    EXPECT_EQ(skips, 0u);
}

TEST_F(TaskUnitTest, AllCandidatesBlockedReturnsNull)
{
    runningTask(0, 1, 10, 0xbeef);
    idleTask(2, 20, 0xbeef);
    idleTask(3, 30, 0xbeef);
    EXPECT_EQ(unit.pickDispatchable(true, skips), nullptr);
    EXPECT_EQ(skips, 2u);
}

TEST_F(TaskUnitTest, SpillThresholdTracksOccupancy)
{
    // withCores(4): 64 entries/core * 4 cores = 256; threshold 85%.
    uint32_t cap = cfg.taskQueueCap();
    uint32_t thresh = uint32_t(cfg.spillThreshold * cap);
    ASSERT_EQ(unit.taskQueueOcc(), 0u);
    EXPECT_FALSE(unit.taskQueueAboveSpillThreshold());

    unit.inFlight = thresh - 1;
    EXPECT_FALSE(unit.taskQueueAboveSpillThreshold());
    unit.inFlight = thresh;
    EXPECT_TRUE(unit.taskQueueAboveSpillThreshold());

    // Occupancy counts idle + in-flight + running + commit queue, but
    // not the (memory-backed) spill buffer.
    unit.inFlight = thresh - 1;
    Task* t = idleTask(1, 1, 0x1);
    EXPECT_TRUE(unit.taskQueueAboveSpillThreshold());
    unit.idle.erase(t);
    unit.spillBuf.insert(t);
    EXPECT_FALSE(unit.taskQueueAboveSpillThreshold());
}

// ---- Policy registry ---------------------------------------------------------

TEST(Policies, ApplySelectsSchedulerAndSerializationDefaults)
{
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Random);
    EXPECT_FALSE(cfg.serializeSameHint);
    policies::apply(cfg, "sched=hints");
    EXPECT_EQ(cfg.sched, SchedulerType::Hints);
    EXPECT_TRUE(cfg.serializeSameHint);
    policies::apply(cfg, "sched=stealing,steal-victim=nearest,"
                         "steal-choice=latest");
    EXPECT_EQ(cfg.sched, SchedulerType::Stealing);
    EXPECT_FALSE(cfg.serializeSameHint);
    EXPECT_EQ(cfg.stealVictim, StealVictim::NearestNeighbor);
    EXPECT_EQ(cfg.stealChoice, StealChoice::LatestTs);
    policies::apply(cfg, "sched=lbhints,lb-signal=idle,serialize=off");
    EXPECT_EQ(cfg.sched, SchedulerType::LBHints);
    EXPECT_EQ(cfg.lbSignal, LbSignal::IdleTasks);
    EXPECT_FALSE(cfg.serializeSameHint);
    // sched= is applied first regardless of spec order, so an explicit
    // serialize= wins even when it precedes sched=.
    policies::apply(cfg, "serialize=off,sched=hints");
    EXPECT_EQ(cfg.sched, SchedulerType::Hints);
    EXPECT_FALSE(cfg.serializeSameHint);
}

TEST(Policies, SetRejectsUnknownKeysAndValues)
{
    SimConfig cfg;
    EXPECT_FALSE(policies::set(cfg, "sched", "mystery"));
    EXPECT_FALSE(policies::set(cfg, "frobnicate", "on"));
    EXPECT_FALSE(policies::set(cfg, "steal-victim", "loudest"));
    EXPECT_TRUE(policies::set(cfg, "serialize", "off"));
}

TEST(Policies, DescribeRoundTrips)
{
    for (const char* spec :
         {"sched=stealing,steal-victim=random,steal-choice=latest",
          "sched=stealing,steal-victim=nearest",
          "sched=lbhints,lb-signal=idle", "sched=hints,serialize=off"}) {
        SimConfig cfg = SimConfig::withCores(16);
        policies::apply(cfg, spec);
        SimConfig again = SimConfig::withCores(16);
        policies::apply(again, policies::describe(cfg));
        EXPECT_EQ(again.sched, cfg.sched) << spec;
        EXPECT_EQ(again.stealVictim, cfg.stealVictim) << spec;
        EXPECT_EQ(again.stealChoice, cfg.stealChoice) << spec;
        EXPECT_EQ(again.lbSignal, cfg.lbSignal) << spec;
        EXPECT_EQ(again.serializeSameHint, cfg.serializeSameHint) << spec;
    }
}

TEST(Policies, RegistryConstructsSchedulersAndLoadBalancer)
{
    Rng rng(1);
    for (const auto& name : policies::schedulerNames()) {
        SimConfig cfg = SimConfig::withCores(16);
        policies::apply(cfg, "sched=" + name);
        auto lb = policies::makeLoadBalancer(cfg);
        EXPECT_EQ(lb != nullptr, cfg.sched == SchedulerType::LBHints)
            << name;
        auto sched = policies::makeScheduler(cfg, rng, lb.get());
        ASSERT_NE(sched, nullptr) << name;
        EXPECT_EQ(sched->stealing(), cfg.sched == SchedulerType::Stealing)
            << name;
        TileId t = sched->place(true, 12345, 0);
        EXPECT_LT(t, cfg.ntiles) << name;
    }
}
