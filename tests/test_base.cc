/**
 * @file
 * Unit tests for base substrates: hashing, Bloom filters, RNG, stats.
 */
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "base/bloom.h"
#include "base/hash.h"
#include "base/rng.h"
#include "base/stats.h"

using namespace ssim;

TEST(Hash, H3Deterministic)
{
    H3Hash a(16, 42), b(16, 42), c(16, 43);
    for (uint64_t k = 0; k < 100; k++) {
        EXPECT_EQ(a.hash(k), b.hash(k));
        EXPECT_LT(a.hash(k), 1u << 16);
    }
    // Different seeds give different functions (overwhelmingly likely).
    int diff = 0;
    for (uint64_t k = 0; k < 100; k++)
        diff += a.hash(k) != c.hash(k);
    EXPECT_GT(diff, 90);
}

TEST(Hash, H3IsLinear)
{
    // H3 is XOR-linear: h(a ^ b) == h(a) ^ h(b) (with h(0) == 0).
    H3Hash h(12, 7);
    EXPECT_EQ(h.hash(0), 0u);
    Rng rng(1);
    for (int i = 0; i < 100; i++) {
        uint64_t a = rng.next(), b = rng.next();
        EXPECT_EQ(h.hash(a ^ b), h.hash(a) ^ h.hash(b));
    }
}

TEST(Hash, H3SpreadsUniformly)
{
    H3Hash h(10, 99);
    std::vector<uint32_t> hits(1024, 0);
    for (uint64_t k = 0; k < 1024 * 16; k++)
        hits[h.hash(k)]++;
    for (uint32_t c : hits)
        EXPECT_GT(c, 0u); // every bucket hit with 16x load
}

TEST(Hash, HintMapsInRange)
{
    for (uint64_t hint = 0; hint < 1000; hint++) {
        EXPECT_LT(hintToTile(hint, 64), 64u);
        EXPECT_LT(hintToBucket(hint, 1024), 1024u);
    }
    // hintToTile and hintToBucket are independent maps.
    EXPECT_NE(hintToTile(12345, 64), hintToBucket(12345, 64));
}

TEST(Hash, HintHash16Collisions)
{
    // 16-bit hashed hints: collisions exist but are rare (Sec. III-B
    // quotes ~6e-5 false match probability with 4 cores/tile).
    std::set<uint16_t> seen;
    uint32_t collisions = 0;
    for (uint64_t h = 0; h < 1000; h++)
        if (!seen.insert(hintHash16(h)).second)
            collisions++;
    EXPECT_LT(collisions, 20u);
}

TEST(Bloom, NoFalseNegatives)
{
    BloomFilter f; // 2Kbit, 8-way (Table II)
    Rng rng(3);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 40; i++)
        keys.push_back(rng.next());
    for (uint64_t k : keys)
        f.insert(k);
    for (uint64_t k : keys)
        EXPECT_TRUE(f.mayContain(k));
}

TEST(Bloom, EmptyAndClear)
{
    BloomFilter f;
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.mayContain(123));
    f.insert(123);
    EXPECT_FALSE(f.empty());
    EXPECT_TRUE(f.mayContain(123));
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.mayContain(123));
}

TEST(Bloom, LowFalsePositiveRateAtTypicalOccupancy)
{
    // A task's read/write set is tens of lines; with 2Kbit x 8 ways the
    // false-positive rate should be tiny.
    BloomFilter f;
    Rng rng(9);
    for (int i = 0; i < 32; i++)
        f.insert(rng.next());
    uint32_t fp = 0;
    const uint32_t probes = 20000;
    for (uint32_t i = 0; i < probes; i++)
        fp += f.mayContain(rng.next());
    EXPECT_LT(double(fp) / probes, 0.01);
}

TEST(Bloom, OccupancyGrows)
{
    BloomFilter f;
    double prev = f.occupancy();
    EXPECT_EQ(prev, 0.0);
    Rng rng(11);
    for (int i = 0; i < 64; i++)
        f.insert(rng.next());
    EXPECT_GT(f.occupancy(), prev);
    EXPECT_LT(f.occupancy(), 0.5);
}

TEST(Rng, DeterministicAndDistinctSeeds)
{
    Rng a(5), b(5), c(6);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeAndUniform)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++) {
        EXPECT_LT(r.range(10), 10u);
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    EXPECT_EQ(r.range(0), 0u);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 100000; i++)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Stats, MeansAndTotals)
{
    EXPECT_DOUBLE_EQ(gmean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(hmean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(hmean({2.0, 6.0}), 3.0, 1e-12);

    SimStats s;
    s.coreCycles[0] = 10;
    s.coreCycles[3] = 5;
    EXPECT_EQ(s.totalCoreCycles(), 15u);
    s.flits[1] = 7;
    EXPECT_EQ(s.totalFlits(), 7u);
    EXPECT_FALSE(s.summary().empty());
}

TEST(Stats, BucketAndClassNames)
{
    EXPECT_STREQ(cycleBucketName(CycleBucket::Commit), "commit");
    EXPECT_STREQ(cycleBucketName(CycleBucket::Empty), "empty");
    EXPECT_STREQ(trafficClassName(TrafficClass::MemAcc), "mem_accs");
    EXPECT_STREQ(trafficClassName(TrafficClass::Gvt), "gvt");
}
