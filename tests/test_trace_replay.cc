/**
 * @file
 * The trace-replay record/replay test lattice
 * (swarm/backends/trace_replay_backend.h, docs/backends.md):
 *
 *  - trace-record is a timing run with a tap: it reproduces the
 *    pre-refactor golden digests bit-identically at any host thread
 *    count, and fills its sink.
 *  - trace-replay reproduces the timing backend's functional results on
 *    every registered app (record -> replay result-digest equality),
 *    and its own digests are deterministic and invariant across
 *    hostThreads {1,2,8} x conc-conflicts x parallel-replay.
 *  - Trace files round-trip: save -> load preserves every stream and a
 *    re-save is byte-identical; a file-loaded trace (first-dispatch
 *    type derivation) still replays to timing-equal results.
 *  - Malformed traces are rejected loudly: truncation, bad
 *    magic/version, overflow cost tokens, duplicate/short records all
 *    fail load() without touching the map, and an armed malformed
 *    trace file is fatal in the harness — never a silent fallback.
 *  - Poisoned traces (zeroed or inflated costs) and empty traces (pure
 *    fallback) never corrupt results: costs decide HOW LONG, not WHAT.
 *  - The harness seam: runOnce does the record pre-run when no trace
 *    exists, cfg.traceFile round-trips through save/load, sweep()
 *    records once and replays every other core count, and serving's
 *    mid-run injection (CommitController epoch re-arming) composes
 *    with replay.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "apps/app.h"
#include "golden_workloads.h"
#include "harness/runner.h"
#include "harness/serving.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/policies.h"

using namespace ssim;
using namespace ssim::golden;

namespace {

std::string
tmpPath(const char* name)
{
    return testing::TempDir() + "ssim_trace_" + name;
}

/// Record one golden workload into a fresh trace.
std::shared_ptr<TraceData>
recordWorkload(Workload w, SchedulerType sched, uint32_t threads = 1)
{
    auto sink = std::make_shared<TraceData>();
    runWorkload(w, sched, threads, "trace-record", false, false,
                [&](SimConfig& cfg) { cfg.traceSink = sink; });
    return sink;
}

/// Replay digest of one golden workload under an armed trace.
uint64_t
replayWorkload(Workload w, SchedulerType sched,
               std::shared_ptr<const TraceData> trace,
               uint32_t threads = 1, bool conc = false, bool replay = false)
{
    return runWorkload(w, sched, threads, "trace-replay", conc, replay,
                       [&](SimConfig& cfg) { cfg.traceData = trace; });
}

struct AppRun
{
    uint64_t result = 0;
    bool valid = false;
    SimStats stats;
};

/// One closed-loop app run at Tiny/16 cores under @p backend, with an
/// optional sink (record) or trace (replay) armed.
AppRun
runApp(apps::App& app, const char* backend,
       std::shared_ptr<TraceData> sink = nullptr,
       std::shared_ptr<const TraceData> trace = nullptr)
{
    app.reset();
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = backend;
    cfg.traceSink = std::move(sink);
    cfg.traceData = std::move(trace);
    Machine m(cfg);
    app.enqueueInitial(m);
    m.run();
    AppRun r;
    r.result = app.resultDigest();
    r.valid = app.validate();
    r.stats = m.stats();
    return r;
}

} // namespace

// ---- Record: a timing run, bit-identically -------------------------------

TEST(TraceReplay, RecordBackendReproducesGoldenDigests)
{
    if (!arenaIsFixed())
        GTEST_SKIP() << "fixed-address arena unavailable; digests are "
                        "address-dependent";
    for (const Golden& g : kGoldens) {
        for (uint32_t threads : {1u, 2u, 8u}) {
            auto sink = std::make_shared<TraceData>();
            EXPECT_EQ(runWorkload(g.w, g.sched, threads, "trace-record",
                                  false, false,
                                  [&](SimConfig& cfg) {
                                      cfg.traceSink = sink;
                                  }),
                      g.digest)
                << g.name << " @ hostThreads=" << threads;
            EXPECT_FALSE(sink->streams.empty()) << g.name;
            EXPECT_GT(sink->numTypes, 0u) << g.name;
        }
    }
}

// ---- Replay: timing-equal results on every registered app ----------------

TEST(TraceReplay, ReplayMatchesTimingResultsOnAllApps)
{
    for (const auto& name : apps::appNames()) {
        auto app = apps::makeApp(name);
        apps::AppParams params;
        params.preset = apps::Preset::Tiny;
        params.seed = 42;
        app->setup(params);

        AppRun timing = runApp(*app, "timing");
        ASSERT_TRUE(timing.valid) << name;

        auto sink = std::make_shared<TraceData>();
        AppRun rec = runApp(*app, "trace-record", sink);
        EXPECT_TRUE(rec.valid) << name << " under trace-record";
        EXPECT_EQ(rec.result, timing.result)
            << name << ": recording run diverged from timing";
        sink->recordResultDigest = rec.result;

        AppRun rep = runApp(*app, "trace-replay", nullptr, sink);
        EXPECT_TRUE(rep.valid) << name << " under trace-replay";
        EXPECT_EQ(rep.result, timing.result)
            << name << ": replay diverged from timing";
        EXPECT_GT(rep.stats.traceServedCosts, 0u) << name;
        EXPECT_GT(rep.stats.tasksCommitted, 0u) << name;
    }
}

// ---- Replay determinism and thread/conc/replay invariance ----------------

TEST(TraceReplay, ReplayIsDeterministicAndInvariant)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        auto trace = recordWorkload(g.w, g.sched);
        uint64_t first = replayWorkload(g.w, g.sched, trace);
        EXPECT_EQ(first, replayWorkload(g.w, g.sched, trace)) << g.name;
        // Inline-effects backends degrade hostThreads>1 to the serial
        // loop and ignore conc/replay — digests must not notice any of
        // the three knobs.
        for (uint32_t threads : {1u, 2u, 8u})
            for (bool conc : {false, true})
                for (bool replay : {false, true})
                    EXPECT_EQ(first, replayWorkload(g.w, g.sched, trace,
                                                    threads, conc,
                                                    replay))
                        << g.name << " @ t" << threads
                        << " conc=" << conc << " replay=" << replay;
    }
}

// ---- Trace files: save/load round trip -----------------------------------

TEST(TraceReplay, SaveLoadRoundTrip)
{
    auto trace = recordWorkload(Workload::Contend, SchedulerType::Hints);
    trace->recordResultDigest = 0xfeedfacecafef00dull;
    std::string path = tmpPath("roundtrip");
    ASSERT_TRUE(trace->save(path));

    TraceData loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.recordResultDigest, trace->recordResultDigest);
    EXPECT_EQ(loaded.numTypes, trace->numTypes);
    EXPECT_TRUE(loaded.fnIds.empty()); // pointers never round-trip
    ASSERT_EQ(loaded.streams.size(), trace->streams.size());
    for (const auto& [key, s] : trace->streams) {
        auto it = loaded.streams.find(key);
        ASSERT_NE(it, loaded.streams.end());
        EXPECT_EQ(it->second.count, s.count);
        EXPECT_EQ(it->second.sum, s.sum);
        EXPECT_EQ(it->second.head, s.head);
    }

    // A re-save of the loaded trace is byte-identical (sorted text).
    std::string path2 = tmpPath("roundtrip2");
    ASSERT_TRUE(loaded.save(path2));
    std::ifstream a(path), b(path2);
    std::string sa((std::istreambuf_iterator<char>(a)),
                   std::istreambuf_iterator<char>());
    std::string sb((std::istreambuf_iterator<char>(b)),
                   std::istreambuf_iterator<char>());
    EXPECT_FALSE(sa.empty());
    EXPECT_EQ(sa, sb);
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(TraceReplay, FileLoadedTraceStillReplaysToTimingResults)
{
    // Through a file, fn pointers are gone: the replayer re-derives task
    // types in first-dispatch order. Results must still equal timing.
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    AppRun timing = runApp(*app, "timing");
    auto sink = std::make_shared<TraceData>();
    AppRun rec = runApp(*app, "trace-record", sink);
    sink->recordResultDigest = rec.result;

    std::string path = tmpPath("fileload");
    ASSERT_TRUE(sink->save(path));
    auto loaded = std::make_shared<TraceData>();
    ASSERT_TRUE(loaded->load(path));
    std::remove(path.c_str());

    AppRun rep = runApp(*app, "trace-replay", nullptr, loaded);
    EXPECT_TRUE(rep.valid);
    EXPECT_EQ(rep.result, timing.result);
    EXPECT_GT(rep.stats.traceServedCosts, 0u);
}

// ---- Malformed traces: rejected loudly, never applied --------------------

namespace {

void
writeFile(const std::string& path, const std::string& text)
{
    std::ofstream f(path);
    f << text;
}

/// load() must return false AND leave the pre-existing contents intact.
void
expectRejected(const std::string& text, const char* what)
{
    std::string path = tmpPath("malformed");
    writeFile(path, text);
    TraceData t;
    t.record({7, 0, 0x40}, 11); // pre-existing state the load must keep
    t.numTypes = 9;
    ASSERT_FALSE(t.load(path)) << what;
    EXPECT_EQ(t.streams.size(), 1u) << what;
    EXPECT_EQ(t.numTypes, 9u) << what;
    ASSERT_NE(t.streams.find({7, 0, 0x40}), t.streams.end()) << what;
    std::remove(path.c_str());
}

} // namespace

TEST(TraceReplay, MalformedTracesAreRejected)
{
    expectRejected("", "empty file");
    expectRejected("swarmsim-trace v9\ndigest 0\ntypes 1\nend\n",
                   "bad version");
    expectRejected("not a trace at all\n", "bad magic");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 30 1 10\n",
                   "truncated (missing end sentinel)");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 30 1 4294967296\nend\n",
                   "overflow cost token");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 99999999999999999999999 1 10\nend\n",
                   "overflow sum token");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 0 0 0\nend\n",
                   "zero-count stream");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 99 40 3 30 1 10\nend\n",
                   "unknown access kind");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 1 10 2 5 5\nend\n",
                   "nhead exceeds count");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 30\nend\n",
                   "short key record");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 30 1 10 77\nend\n",
                   "trailing tokens");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 30 1 10\nk 1 0 40 3 30 1 10\nend\n",
                   "duplicate key");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "k 1 0 40 3 2 1 10\nend\n",
                   "head exceeds recorded sum");
    expectRejected("swarmsim-trace v1\ndigest zz\ntypes 1\nend\n",
                   "bad digest token");
    expectRejected("swarmsim-trace v1\ndigest 0\ntypes 1\n"
                   "wat 1 2 3\nend\n",
                   "unknown record tag");
}

TEST(TraceReplayDeath, ArmedMalformedTraceFileIsFatal)
{
    // The harness must never silently fall back on a malformed armed
    // trace: runOnce's prepare step fatals before building a machine.
    std::string path = tmpPath("fatal");
    writeFile(path, "swarmsim-trace v1\ndigest 0\ntypes 1\n"
                    "k 1 0 40 3 30 1 4294967296\nend\n");
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    app->setup(params);
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = "trace-replay";
    cfg.traceFile = path;
    EXPECT_EXIT({ harness::prepareTraceReplay(*app, cfg); },
                testing::ExitedWithCode(1), "malformed trace file");
    std::remove(path.c_str());
}

TEST(TraceReplayDeath, RecordBackendWithoutSinkIsFatal)
{
    SimConfig cfg = SimConfig::withCores(4);
    cfg.engineBackend = "trace-record";
    EXPECT_EXIT({ Machine m(cfg); }, testing::ExitedWithCode(1),
                "trace-record requires cfg.traceSink");
}

// ---- Poisoned / empty traces: fidelity lost, correctness kept ------------

TEST(TraceReplay, PoisonedTraceCostsNeverCorruptResults)
{
    auto app = apps::makeApp("kvstore");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    AppRun timing = runApp(*app, "timing");
    auto sink = std::make_shared<TraceData>();
    runApp(*app, "trace-record", sink);

    // Zeroed costs: the >=1 clamp must keep simulated time advancing.
    auto zeroed = std::make_shared<TraceData>(*sink);
    for (auto& [key, s] : zeroed->streams) {
        for (auto& c : s.head)
            c = 0;
        s.sum = 0;
    }
    AppRun z = runApp(*app, "trace-replay", nullptr, zeroed);
    EXPECT_TRUE(z.valid);
    EXPECT_EQ(z.result, timing.result) << "zero-cost poisoned trace";

    // Wildly inflated costs: different schedule, same results.
    auto inflated = std::make_shared<TraceData>(*sink);
    for (auto& [key, s] : inflated->streams) {
        for (auto& c : s.head)
            c = c * 977 + 13;
        s.sum = s.sum * 977 + 13 * s.count;
    }
    AppRun i = runApp(*app, "trace-replay", nullptr, inflated);
    EXPECT_TRUE(i.valid);
    EXPECT_EQ(i.result, timing.result) << "inflated poisoned trace";
}

TEST(TraceReplay, EmptyTraceFallsBackForEveryCostAndStaysCorrect)
{
    auto app = apps::makeApp("sssp");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    AppRun timing = runApp(*app, "timing");
    AppRun rep = runApp(*app, "trace-replay", nullptr,
                        std::make_shared<TraceData>());
    EXPECT_TRUE(rep.valid);
    EXPECT_EQ(rep.result, timing.result);
    EXPECT_EQ(rep.stats.traceServedCosts, 0u);
    EXPECT_GT(rep.stats.traceFallbackCosts, 0u);
}

// ---- Registry / policy surfaces ------------------------------------------

TEST(TraceReplay, RegistryAndPolicySurfaces)
{
    auto names = policies::backendNames();
    ASSERT_GE(names.size(), 4u);
    // The pre-existing order is pinned elsewhere; the trace pair rides
    // behind it.
    EXPECT_NE(std::find(names.begin(), names.end(), "trace-record"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "trace-replay"),
              names.end());
    EXPECT_TRUE(policies::knownBackend("trace-replay"));
    EXPECT_TRUE(policies::knownBackend("trace-record"));

    SimConfig cfg;
    EXPECT_TRUE(policies::set(cfg, "backend", "trace-replay"));
    EXPECT_EQ(cfg.engineBackend, "trace-replay");
    EXPECT_NE(policies::describe(cfg).find("backend=trace-replay"),
              std::string::npos);
}

// ---- Harness seam: pre-run, traceFile, sweep reuse -----------------------

TEST(TraceReplay, RunOnceRecordsPrerunWhenNoTraceExists)
{
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = "trace-replay";
    harness::RunResult r = harness::runOnce(*app, cfg);
    EXPECT_TRUE(r.valid);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_EQ(r.resultDigest, r.trace->recordResultDigest)
        << "replay diverged from its own record pre-run";
    EXPECT_GT(r.stats.traceServedCosts, 0u);

    // An armed trace suppresses the pre-run and replays identically.
    SimConfig armed = cfg;
    armed.traceData = r.trace;
    harness::RunResult r2 = harness::runOnce(*app, armed);
    EXPECT_TRUE(r2.valid);
    EXPECT_EQ(r2.resultDigest, r.resultDigest);
    EXPECT_EQ(r2.trace, r.trace);
}

TEST(TraceReplay, TraceFileRoundTripsThroughRunner)
{
    auto app = apps::makeApp("kvstore");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    std::string path = tmpPath("runner");
    std::remove(path.c_str());
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = "trace-replay";
    cfg.traceFile = path;

    // No file yet: runOnce records, saves, replays.
    harness::RunResult r1 = harness::runOnce(*app, cfg);
    EXPECT_TRUE(r1.valid);
    EXPECT_TRUE(std::ifstream(path).good()) << "trace was not saved";

    // File exists: runOnce loads instead of re-recording.
    harness::RunResult r2 = harness::runOnce(*app, cfg);
    EXPECT_TRUE(r2.valid);
    ASSERT_NE(r2.trace, nullptr);
    EXPECT_NE(r2.trace, r1.trace); // loaded, not re-recorded
    EXPECT_EQ(r2.trace->recordResultDigest, r1.trace->recordResultDigest);
    EXPECT_EQ(r2.resultDigest, r1.resultDigest);
    std::remove(path.c_str());
}

TEST(TraceReplay, SweepRecordsOnceAndReplaysEveryOtherCoreCount)
{
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    // sweep() builds its own configs, so the backend rides the env var
    // exactly as the fig benches set it (applyBenchFlags).
    ASSERT_EQ(setenv("SWARMSIM_BACKEND", "trace-replay", 1), 0);
    auto series = harness::sweep(*app, SchedulerType::Hints, {1, 4, 16});
    ASSERT_EQ(unsetenv("SWARMSIM_BACKEND"), 0);

    ASSERT_EQ(series.size(), 3u);
    ASSERT_NE(series[0].trace, nullptr);
    for (const auto& r : series) {
        EXPECT_TRUE(r.valid) << r.cores << " cores";
        // Pointer equality: the whole sweep shares ONE recorded trace.
        EXPECT_EQ(r.trace, series[0].trace) << r.cores << " cores";
        EXPECT_EQ(r.resultDigest, series[0].trace->recordResultDigest)
            << r.cores << " cores";
    }
}

// ---- Serving: mid-run injection + epoch re-arming under replay -----------

TEST(TraceReplay, ServingInjectionReArmsEpochsUnderReplay)
{
    auto app = apps::makeApp("kvstore");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    // Huge arrival gaps force the machine to drain (quiesce) between
    // requests, so every injection exercises
    // CommitController::ensureEpochsScheduled re-arming; if replay broke
    // it, requests would never commit and serveOnce's completion assert
    // would fire.
    harness::ServingConfig scfg;
    scfg.arrivals = harness::ArrivalKind::Uniform;
    scfg.meanGapCycles = 200000;
    scfg.seed = 7;

    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = "timing";
    harness::ServingResult timing = harness::serveOnce(*app, cfg, scfg);
    ASSERT_TRUE(timing.valid);

    cfg.engineBackend = "trace-replay";
    harness::ServingResult rep = harness::serveOnce(*app, cfg, scfg);
    EXPECT_TRUE(rep.valid);
    EXPECT_EQ(rep.requests, timing.requests);
    EXPECT_EQ(rep.resultDigest, timing.resultDigest)
        << "serving results diverged under trace-replay injection";
    EXPECT_GT(rep.stats.traceServedCosts, 0u);
}
