/**
 * @file
 * Concurrent conflict-check tests (cfg.concurrentConflicts): with
 * worker-side bank probes armed, simulated behavior must stay
 * bit-identical to the serial path at any host thread count — the
 * probe/resolve split's core contract (swarm/conflict_manager.h). The
 * ConcurrentConflict* filter runs under the TSan CI job, which races
 * the bank probes, the epoch scrub, and the record/apply seam for real.
 */
#include <gtest/gtest.h>

#include "golden_workloads.h"
#include "harness/cli.h"
#include "swarm/policies.h"

using namespace ssim;
using namespace ssim::golden;

// The golden workloads with concurrent checks armed must match a plain
// serial run of the same build, at every host thread count.
TEST(ConcurrentConflictDeterminism, MatchesSerialAcrossThreadCounts)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        uint64_t serial = runWorkload(g.w, g.sched, 1);
        for (uint32_t threads : {1u, 2u, 8u}) {
            uint64_t conc = runWorkload(g.w, g.sched, threads, "timing",
                                        /*conc_conflicts=*/true);
            EXPECT_EQ(serial, conc)
                << g.name << " @ hostThreads=" << threads;
        }
    }
}

// ... and reproduce the recorded goldens directly (the hard gate: the
// concurrent path is bit-identical to the PRE-refactor machine, not
// just internally consistent).
TEST(ConcurrentConflictDeterminism, GoldenDigestsHoldWithConcurrentChecks)
{
    if (!arenaIsFixed())
        GTEST_SKIP() << "fixed-address arena unavailable; digests are "
                        "address-dependent";
    for (const Golden& g : kGoldens)
        EXPECT_EQ(runWorkload(g.w, g.sched, 8, "timing", true), g.digest)
            << g.name;
}

// A contended 256-core workload drives real probe traffic: many banks,
// deep reader/writer lists, abort cascades invalidating probes. The
// digest must not notice; the host-side counters must show the
// concurrent machinery actually ran (they are deterministic for a
// fixed config — phase cadence depends only on coordinator state).
TEST(ConcurrentConflictDeterminism, ContendedWideMachineProbesAndMatches)
{
    ASSERT_NE(arena(), nullptr);
    auto runWide = [](uint32_t threads, bool conc, SimStats* out,
                      Machine::HostExecStats* host) {
        auto* st = new (arena()) WorkState();
        SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 11);
        cfg.hostThreads = threads;
        cfg.concurrentConflicts = conc;
        Machine m(cfg);
        m.enqueueInitial(spawner, 0, swarm::Hint(0), st, uint64_t(200));
        for (uint64_t i = 0; i < 64; i++)
            m.enqueueInitial(rmwCells, 300 + i / 2, swarm::Hint(i % 16),
                             st);
        m.run();
        EXPECT_EQ(m.liveTasks(), 0u);
        if (out)
            *out = m.stats();
        if (host)
            *host = m.hostExecStats();
        return statsDigest(m.stats());
    };
    uint64_t serial = runWide(1, false, nullptr, nullptr);
    SimStats st;
    Machine::HostExecStats host;
    EXPECT_EQ(serial, runWide(2, true, nullptr, nullptr));
    EXPECT_EQ(serial, runWide(8, true, &st, &host));

    // The concurrent path really ran: conflict phases fired, workers
    // probed banks, and at least some probes were consumed fresh.
    EXPECT_GT(host.conflictPhases, 0u);
    EXPECT_GT(host.conflictProbes, 0u);
    EXPECT_EQ(st.concWorkerProbes, host.conflictProbes);
    EXPECT_GT(st.concProbeHits, 0u);
    EXPECT_GT(st.bankLockAcquired, 0u);
    // Every apply in conc mode is a hit, a stale rescan, or a cold
    // (never-probed) scan; worker probes cover hits + stales + probes
    // never consumed (task aborted first).
    EXPECT_GE(st.concWorkerProbes + st.concProbeCold,
              st.concProbeHits + st.concProbeStale);
    // Per-bank probe counts sum to the total.
    uint64_t sum = 0;
    for (uint64_t b : st.bankProbes)
        sum += b;
    EXPECT_EQ(sum, st.concWorkerProbes);
}

// The functional backend's default (non-inline) configuration also
// records accesses; concurrent checks must compose with it. (The
// default functional backend inlines effects, which disables recording
// entirely — conc mode must then be a clean no-op.)
TEST(ConcurrentConflictDeterminism, FunctionalBackendDegradesCleanly)
{
    ASSERT_NE(arena(), nullptr);
    uint64_t serial =
        runWorkload(Workload::Contend, SchedulerType::Hints, 1,
                    "functional");
    for (uint32_t threads : {2u, 8u}) {
        uint64_t conc = runWorkload(Workload::Contend, SchedulerType::Hints,
                                    threads, "functional", true);
        EXPECT_EQ(serial, conc) << "hostThreads=" << threads;
    }
}

// Concurrent conflict checks compose with parallel replay
// (tests/test_parallel_replay.cc): both worker-side phases armed, the
// probe accounting invariants must still hold — a staged-then-squashed
// registration either bumps the bank op-sequence (stale probe) or was
// consumed at its slot (legitimate serial state), so the hit/stale/cold
// partition stays exact.
TEST(ConcurrentConflictDeterminism, ComposesWithParallelReplay)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        uint64_t serial = runWorkload(g.w, g.sched, 1);
        for (uint32_t threads : {2u, 8u}) {
            uint64_t both = runWorkload(g.w, g.sched, threads, "timing",
                                        /*conc_conflicts=*/true,
                                        /*parallel_replay=*/true);
            EXPECT_EQ(serial, both)
                << g.name << " @ hostThreads=" << threads;
        }
    }
}

// The knob's spelling surfaces: policy specs round-trip, the env var
// and flag parse, and defaults stay off.
TEST(ConcurrentConflictKnob, SelectionSurfaces)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.concurrentConflicts);

    EXPECT_TRUE(policies::set(cfg, "conc-conflicts", "on"));
    EXPECT_TRUE(cfg.concurrentConflicts);
    EXPECT_NE(policies::describe(cfg).find("conc-conflicts=on"),
              std::string::npos);
    // describe() round-trips through apply().
    SimConfig again;
    policies::apply(again, policies::describe(cfg));
    EXPECT_TRUE(again.concurrentConflicts);

    EXPECT_TRUE(policies::set(cfg, "conc-conflicts", "off"));
    EXPECT_FALSE(cfg.concurrentConflicts);
    EXPECT_EQ(policies::describe(cfg).find("conc-conflicts"),
              std::string::npos);
    EXPECT_FALSE(policies::set(cfg, "conc-conflicts", "maybe"));

    // Flag parsing (cli.h): later flags win; env is applied first.
    {
        SimConfig c;
        const char* argv[] = {"prog", "--conc-conflicts=on"};
        harness::applyConcConflicts(c, 2, const_cast<char**>(argv));
        EXPECT_TRUE(c.concurrentConflicts);
    }
    {
        SimConfig c;
        setenv("SWARMSIM_CONC_CONFLICTS", "on", 1);
        harness::applyConcConflicts(c);
        EXPECT_TRUE(c.concurrentConflicts);
        const char* argv[] = {"prog", "--conc-conflicts=off"};
        harness::applyConcConflicts(c, 2, const_cast<char**>(argv));
        EXPECT_FALSE(c.concurrentConflicts);
        unsetenv("SWARMSIM_CONC_CONFLICTS");
    }
}
