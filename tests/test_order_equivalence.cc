/**
 * @file
 * The master property test (DESIGN.md §5.1): speculative execution must
 * leave exactly the final memory state of executing all tasks serially
 * in (timestamp, creation-id) order, for random task graphs, under every
 * scheduler, across core counts and seeds.
 *
 * The workload: tasks randomly read-modify-write a handful of cells of a
 * shared array (guaranteeing rich RAW/WAR/WAW conflicts, speculative
 * forwarding, and abort cascades), and some tasks spawn children that do
 * the same. A host-side replay applies the same deterministic updates in
 * (ts, uid) order to compute the expected state.
 */
#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/rng.h"
#include "swarm/machine.h"

using namespace ssim;

namespace {

constexpr uint32_t kCells = 24; // few cells => heavy contention

struct PropState
{
    alignas(64) uint64_t cells[kCells] = {};
};

// Deterministic "program" derived from (ts, seq): which cells to read,
// which cell to update, whether to spawn a child.
struct Op
{
    uint32_t src1, src2, dst;
    bool spawn;
    Timestamp childTs;
    uint64_t childSeq;
};

// Timestamps are (logical_time << 20) | unique_low_bits, which makes
// every task's timestamp unique by construction: the machine breaks
// equal-timestamp ties by speculative creation order, which a host-side
// replay cannot reproduce, so the test avoids ties entirely.
Op
opFor(Timestamp ts, uint64_t seq)
{
    uint64_t h = mix64(ts * 1000003 + seq);
    Op op;
    op.src1 = uint32_t(h % kCells);
    op.src2 = uint32_t((h >> 8) % kCells);
    op.dst = uint32_t((h >> 16) % kCells);
    op.spawn = ((h >> 24) & 7) != 7 && (ts >> 20) < 36;
    op.childSeq = h >> 32;
    op.childTs = (((ts >> 20) + 1 + ((h >> 27) & 3)) << 20) |
                 (op.childSeq & 0xfffff);
    return op;
}

swarm::TaskCoro
propTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* s = swarm::argPtr<PropState>(args[0]);
    uint64_t seq = args[1];
    Op op = opFor(ts, seq);
    uint64_t a = co_await ctx.read(&s->cells[op.src1]);
    uint64_t b = co_await ctx.read(&s->cells[op.src2]);
    uint64_t d = co_await ctx.read(&s->cells[op.dst]);
    co_await ctx.write(&s->cells[op.dst], mix64(a + 3 * b + 7 * d + ts));
    if (op.spawn)
        co_await ctx.enqueue(propTask, op.childTs,
                             swarm::cacheLine(&s->cells[op.dst]), args[0],
                             op.childSeq);
}

// Host-side replay in (ts, uid) order. Creation ids differ from the
// machine's, but (ts, creation-order) replay is equivalent: among equal
// timestamps, the machine commits in creation order, and our generator
// creates children deterministically from (ts, seq).
struct ReplayTask
{
    Timestamp ts;
    uint64_t order;
    uint64_t seq;
};

void
replay(PropState& s, std::vector<ReplayTask> queue)
{
    uint64_t next_order = queue.size();
    auto cmp = [](const ReplayTask& a, const ReplayTask& b) {
        return std::tie(a.ts, a.order) < std::tie(b.ts, b.order);
    };
    // Simple insertion loop: repeatedly take the earliest task.
    std::sort(queue.begin(), queue.end(), cmp);
    for (size_t i = 0; i < queue.size(); i++) {
        ReplayTask t = queue[i];
        Op op = opFor(t.ts, t.seq);
        uint64_t a = s.cells[op.src1];
        uint64_t b = s.cells[op.src2];
        uint64_t d = s.cells[op.dst];
        s.cells[op.dst] = mix64(a + 3 * b + 7 * d + t.ts);
        if (op.spawn) {
            ReplayTask child{op.childTs, next_order++, op.childSeq};
            auto pos = std::upper_bound(queue.begin() + i + 1, queue.end(),
                                        child, cmp);
            queue.insert(pos, child);
        }
    }
}

struct PropCase
{
    SchedulerType sched;
    uint32_t cores;
    uint64_t seed;
};

std::string
propName(const testing::TestParamInfo<PropCase>& info)
{
    return std::string(schedulerName(info.param.sched)) + "_" +
           std::to_string(info.param.cores) + "c_s" +
           std::to_string(info.param.seed);
}

class OrderEquivalence : public testing::TestWithParam<PropCase>
{
};

} // namespace

TEST_P(OrderEquivalence, FinalStateMatchesSerialOrder)
{
    const PropCase& pc = GetParam();

    // Build the same initial task set for the machine and the replay.
    Rng rng(pc.seed);
    std::vector<ReplayTask> initial;
    const uint32_t roots = 60;
    for (uint32_t i = 0; i < roots; i++) {
        Timestamp ts = ((1 + rng.range(30)) << 20) | i; // unique
        uint64_t seq = rng.next();
        initial.push_back({ts, i, seq});
    }
    // The machine orders equal timestamps by creation id == enqueue
    // order, which matches the replay's `order` field.
    std::stable_sort(initial.begin(), initial.end(),
                     [](const ReplayTask& a, const ReplayTask& b) {
                         return a.ts < b.ts;
                     });
    // Re-number orders after the stable sort to mirror uid assignment.
    // (Initial uids are assigned in enqueue order; enqueue in ts-sorted
    // order so (ts, uid) equals the replay's (ts, order).)
    for (uint32_t i = 0; i < roots; i++)
        initial[i].order = i;

    PropState expected;
    replay(expected, initial);

    PropState got;
    SimConfig cfg = SimConfig::withCores(pc.cores, pc.sched, pc.seed);
    Machine m(cfg);
    for (const auto& t : initial)
        m.enqueueInitial(propTask, t.ts,
                         swarm::cacheLine(&got.cells[opFor(t.ts, t.seq).dst]),
                         &got, t.seq);
    m.run();

    for (uint32_t c = 0; c < kCells; c++)
        EXPECT_EQ(got.cells[c], expected.cells[c])
            << "cell " << c << " under " << schedulerName(pc.sched)
            << " @ " << pc.cores << " cores, seed " << pc.seed;
    EXPECT_GT(m.stats().tasksCommitted, 0u);
}

namespace {

std::vector<PropCase>
propCases()
{
    std::vector<PropCase> cases;
    for (auto sched :
         {SchedulerType::Random, SchedulerType::Stealing,
          SchedulerType::Hints, SchedulerType::LBHints}) {
        for (uint32_t cores : {1u, 4u, 16u, 64u})
            for (uint64_t seed : {1ull, 2ull, 3ull})
                cases.push_back({sched, cores, seed});
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Sweep, OrderEquivalence,
                         testing::ValuesIn(propCases()), propName);
