/**
 * @file
 * Golden-determinism test: two runs with identical (config, seed) must
 * produce bit-identical stats, and canonical workloads must reproduce
 * recorded golden digests so refactors of the execution pipeline can be
 * proven behavior-preserving. The workloads, arena, and golden table
 * live in tests/golden_workloads.h (shared with tests/test_backends.cc).
 */
#include <gtest/gtest.h>

#include "golden_workloads.h"

using namespace ssim;
using namespace ssim::golden;

TEST(Determinism, IdenticalConfigAndSeedGiveIdenticalStats)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        uint64_t first = runWorkload(g.w, g.sched);
        uint64_t second = runWorkload(g.w, g.sched);
        EXPECT_EQ(first, second) << g.name;
    }
}

// Parallel host mode must be invisible to simulated behavior: the same
// workload at hostThreads ∈ {1, 2, 8} produces bit-identical stat
// digests (sim/parallel_executor.h's determinism argument, checked).
TEST(ParallelDeterminism, HostThreadCountIsInvisibleToStats)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        uint64_t serial = runWorkload(g.w, g.sched, 1);
        for (uint32_t threads : {2u, 8u}) {
            uint64_t parallel = runWorkload(g.w, g.sched, threads);
            EXPECT_EQ(serial, parallel)
                << g.name << " @ hostThreads=" << threads;
        }
    }
}

// The parallel loop must also reproduce the recorded goldens directly
// (not just match a serial run of the same build).
TEST(ParallelDeterminism, GoldenDigestsHoldAtEightHostThreads)
{
    if (!arenaIsFixed())
        GTEST_SKIP() << "fixed-address arena unavailable; digests are "
                        "address-dependent";
    for (const Golden& g : kGoldens)
        EXPECT_EQ(runWorkload(g.w, g.sched, 8), g.digest) << g.name;
}

// A 64-tile run exercises many lanes per worker slice and GVT epochs
// interleaved with pre-resume phases.
TEST(ParallelDeterminism, WideMachineMatchesAcrossThreadCounts)
{
    ASSERT_NE(arena(), nullptr);
    auto runWide = [](uint32_t threads) {
        auto* st = new (arena()) WorkState();
        SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 11);
        cfg.hostThreads = threads;
        Machine m(cfg);
        m.enqueueInitial(spawner, 0, swarm::Hint(0), st, uint64_t(200));
        for (uint64_t i = 0; i < 64; i++)
            m.enqueueInitial(rmwCells, 300 + i / 2, swarm::Hint(i % 16),
                             st);
        m.run();
        EXPECT_EQ(m.liveTasks(), 0u);
        return statsDigest(m.stats());
    };
    uint64_t serial = runWide(1);
    EXPECT_EQ(serial, runWide(2));
    EXPECT_EQ(serial, runWide(8));
}

TEST(Determinism, GoldenDigests)
{
    if (!arenaIsFixed())
        GTEST_SKIP() << "fixed-address arena unavailable; digests are "
                        "address-dependent";
    bool print = [] {
        const char* e = std::getenv("SSIM_PRINT_DIGESTS");
        return e && e[0] == '1';
    }();
    for (const Golden& g : kGoldens) {
        uint64_t d = runWorkload(g.w, g.sched);
        if (print)
            std::printf("GOLDEN %-18s 0x%016llxull\n", g.name,
                        (unsigned long long)d);
        else
            EXPECT_EQ(d, g.digest) << g.name;
    }
}
