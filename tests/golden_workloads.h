/**
 * @file
 * The golden-determinism workload harness, shared by
 * tests/test_determinism.cc and tests/test_backends.cc.
 *
 * The simulator's timing depends on data addresses (cache indexing,
 * hint hashes), so all workload state lives in an arena mmapped at a
 * fixed address; digests are then stable across processes and builds.
 * Set SSIM_PRINT_DIGESTS=1 to print current digests when updating
 * goldens.
 */
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <sys/mman.h>

#include "swarm/machine.h"

namespace ssim::golden {

constexpr uintptr_t kArenaAddr = 0x200000000000ull;
constexpr size_t kArenaSize = 1ull << 20;

// ThreadSanitizer owns large fixed regions of the address space
// (including kArenaAddr); asking for a fixed mapping there trips its
// mmap interceptor. The double-run and cross-thread-count tests work at
// any address; only the golden-digest tests skip without a fixed arena.
#if defined(__SANITIZE_THREAD__)
#define SSIM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SSIM_TSAN_BUILD 1
#endif
#endif

inline void*
arena()
{
    static void* mem = [] {
        void* p = MAP_FAILED;
#if defined(MAP_FIXED_NOREPLACE) && !defined(SSIM_TSAN_BUILD)
        p = mmap(reinterpret_cast<void*>(kArenaAddr), kArenaSize,
                 PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED_NOREPLACE, -1, 0);
#endif
        // No fixed mapping available (platform without
        // MAP_FIXED_NOREPLACE, or the address is taken): the double-run
        // test works at any address; only the golden test skips.
        if (p == MAP_FAILED)
            p = mmap(nullptr, kArenaSize, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        return p == MAP_FAILED ? nullptr : p;
    }();
    if (mem)
        std::memset(mem, 0, kArenaSize);
    return mem;
}

inline bool
arenaIsFixed()
{
    void* p = arena();
    return p == reinterpret_cast<void*>(kArenaAddr);
}

struct WorkState
{
    uint64_t counter = 0;
    uint64_t order[64] = {};
    uint64_t idx = 0;
    alignas(64) uint64_t cells[16] = {};
};

inline swarm::TaskCoro
incOrdered(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<WorkState>(args[0]);
    uint64_t v = co_await ctx.read(&st->counter);
    co_await ctx.write(&st->counter, v + 1);
    uint64_t i = co_await ctx.read(&st->idx);
    co_await ctx.write(&st->order[i % 64], ts);
    co_await ctx.write(&st->idx, i + 1);
}

inline swarm::TaskCoro
spawner(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<WorkState>(args[0]);
    uint64_t n = args[1];
    for (uint64_t i = 0; i < n; i++)
        co_await ctx.enqueue(incOrdered, ts + 1 + i, swarm::Hint(i % 8),
                             st);
}

inline swarm::TaskCoro
rmwCells(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<WorkState>(args[0]);
    uint64_t a = (ts * 7) % 16, b = (ts * 13 + 5) % 16;
    uint64_t va = co_await ctx.read(&st->cells[a]);
    uint64_t vb = co_await ctx.read(&st->cells[b]);
    co_await ctx.compute(uint32_t(10 + ts % 23));
    co_await ctx.write(&st->cells[a], va + vb + ts);
}

inline swarm::TaskCoro
tiny(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<WorkState>(args[0]);
    uint64_t v = co_await ctx.read(&st->counter);
    co_await ctx.write(&st->counter, v + 1);
}

enum class Workload { Spawn, Contend, Spill };

/**
 * Run one golden workload; returns the stats digest (base/stats.cc's
 * statsDigest — the same fields the parallel-host bench gates on).
 * @p backend selects the engine backend by registry name;
 * @p conc_conflicts arms worker-side conflict checks and
 * @p parallel_replay arms worker-side effect pre-apply (both effective
 * only when host_threads > 1 — the digests must not notice either way).
 * @p tweak, if given, edits the final SimConfig before the machine is
 * built (the trace tests arm traceSink/traceData through it).
 */
inline uint64_t
runWorkload(Workload w, SchedulerType sched, uint32_t host_threads = 1,
            const char* backend = "timing", bool conc_conflicts = false,
            bool parallel_replay = false,
            const std::function<void(SimConfig&)>& tweak = {})
{
    auto* st = new (arena()) WorkState();
    SimConfig cfg;
    switch (w) {
      case Workload::Spawn:
        cfg = SimConfig::withCores(16, sched, 7);
        break;
      case Workload::Contend:
        cfg = SimConfig::withCores(16, sched, 3);
        break;
      case Workload::Spill:
        cfg = SimConfig::withCores(1, sched, 1);
        break;
    }
    cfg.hostThreads = host_threads;
    cfg.engineBackend = backend;
    cfg.concurrentConflicts = conc_conflicts;
    cfg.parallelReplay = parallel_replay;
    if (tweak)
        tweak(cfg);
    Machine m(cfg);
    switch (w) {
      case Workload::Spawn:
        m.enqueueInitial(spawner, 0, swarm::Hint(0), st, uint64_t(48));
        break;
      case Workload::Contend:
        for (uint64_t i = 0; i < 96; i++)
            m.enqueueInitial(rmwCells, i / 3, swarm::Hint(i % 5), st);
        break;
      case Workload::Spill:
        for (uint64_t i = 0; i < 400; i++)
            m.enqueueInitial(tiny, i, swarm::Hint(i % 32), st);
        break;
    }
    m.run();
    EXPECT_EQ(m.liveTasks(), 0u);
    return statsDigest(m.stats());
}

struct Golden
{
    Workload w;
    SchedulerType sched;
    const char* name;
    uint64_t digest;
};

// Captured from the pre-refactor monolithic Machine; the layered
// pipeline — and, since the EngineBackend split, the extracted
// TimingBackend — must reproduce these exactly (bit-identical
// behavior).
inline const Golden kGoldens[] = {
    {Workload::Spawn, SchedulerType::Random, "spawn/random",
     0x5861322e76b6c8e6ull},
    {Workload::Spawn, SchedulerType::Stealing, "spawn/stealing",
     0x5941d690a128d563ull},
    {Workload::Spawn, SchedulerType::Hints, "spawn/hints",
     0xe67a2a3fe5a48a7eull},
    {Workload::Spawn, SchedulerType::LBHints, "spawn/lbhints",
     0xe48fa1397bb87200ull},
    {Workload::Contend, SchedulerType::Random, "contend/random",
     0x077faf686dd90017ull},
    {Workload::Contend, SchedulerType::Stealing, "contend/stealing",
     0x5288b8d0856d9446ull},
    {Workload::Contend, SchedulerType::Hints, "contend/hints",
     0xda60c262b413d935ull},
    {Workload::Contend, SchedulerType::LBHints, "contend/lbhints",
     0xba366eeafc05d1a9ull},
    {Workload::Spill, SchedulerType::Hints, "spill/hints",
     0x57cd2b15cf96cf09ull},
    {Workload::Spill, SchedulerType::Stealing, "spill/stealing",
     0x57cd2b15cf96cf09ull},
};

} // namespace ssim::golden
