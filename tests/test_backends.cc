/**
 * @file
 * EngineBackend tests (docs/backends.md is the prose contract):
 *
 *  - The extracted TimingBackend reproduces the pre-refactor golden
 *    digests bit-identically, serial and at any host thread count.
 *  - The FunctionalBackend is deterministic (its own digests are
 *    run-to-run and host-thread-count invariant) and computes the same
 *    functional results as the timing backend on every registered app
 *    (per-app result digests).
 *  - Backend selection by name: registry surfaces, policy-spec key,
 *    and the clear-error path for unknown names.
 */
#include <gtest/gtest.h>

#include "apps/app.h"
#include "golden_workloads.h"
#include "swarm/policies.h"

using namespace ssim;
using namespace ssim::golden;

// ---- (a) Timing backend: bit-identical to the pre-refactor goldens ---------

TEST(Backends, TimingBackendReproducesGoldenDigests)
{
    if (!arenaIsFixed())
        GTEST_SKIP() << "fixed-address arena unavailable; digests are "
                        "address-dependent";
    for (const Golden& g : kGoldens)
        for (uint32_t threads : {1u, 2u, 8u})
            EXPECT_EQ(runWorkload(g.w, g.sched, threads, "timing"),
                      g.digest)
                << g.name << " @ hostThreads=" << threads;
}

// ---- Functional backend: deterministic, host-thread invariant --------------

TEST(Backends, FunctionalBackendIsDeterministic)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        uint64_t first = runWorkload(g.w, g.sched, 1, "functional");
        uint64_t second = runWorkload(g.w, g.sched, 1, "functional");
        EXPECT_EQ(first, second) << g.name;
        // The record/apply machinery is backend-independent: parallel
        // host mode must be invisible under the functional backend too.
        for (uint32_t threads : {2u, 8u}) {
            EXPECT_EQ(first, runWorkload(g.w, g.sched, threads,
                                         "functional"))
                << g.name << " @ hostThreads=" << threads;
        }
    }
}

// ---- (b) Functional results match the timing backend on every app ----------

TEST(Backends, FunctionalMatchesTimingAppOutputs)
{
    for (const auto& name : apps::appNames()) {
        auto app = apps::makeApp(name);
        apps::AppParams params;
        params.preset = apps::Preset::Tiny;
        app->setup(params);

        auto runWith = [&](const char* backend) {
            app->reset();
            SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints);
            cfg.engineBackend = backend;
            Machine m(cfg);
            app->enqueueInitial(m);
            m.run();
            EXPECT_TRUE(app->validate()) << name << " under " << backend;
            EXPECT_GT(m.stats().tasksCommitted, 0u) << name;
            return app->resultDigest();
        };

        uint64_t timing = runWith("timing");
        uint64_t functional = runWith("functional");
        EXPECT_EQ(timing, functional)
            << name << ": functional backend diverged from timing";
    }
}

// ---- (c) Unknown backend names fail clearly --------------------------------

TEST(BackendsDeath, UnknownBackendNameListsRegisteredOnes)
{
    SimConfig cfg = SimConfig::withCores(4);
    cfg.engineBackend = "warp-speed";
    EXPECT_EXIT({ Machine m(cfg); }, testing::ExitedWithCode(1),
                "unknown engine backend 'warp-speed'.*timing.*functional");
}

// ---- Registry and policy-spec surfaces -------------------------------------

TEST(Backends, RegistrySurfacesAndPolicyKey)
{
    auto names = policies::backendNames();
    ASSERT_GE(names.size(), 2u);
    EXPECT_EQ(names[0], "timing");
    EXPECT_EQ(names[1], "functional");
    EXPECT_TRUE(policies::knownBackend("timing"));
    EXPECT_TRUE(policies::knownBackend("functional"));
    EXPECT_FALSE(policies::knownBackend("warp-speed"));

    SimConfig cfg;
    EXPECT_TRUE(policies::set(cfg, "backend", "functional"));
    EXPECT_EQ(cfg.engineBackend, "functional");
    EXPECT_FALSE(policies::set(cfg, "backend", "warp-speed"));
    EXPECT_EQ(cfg.engineBackend, "functional"); // untouched on failure

    // describe() round-trips through apply(); the default backend stays
    // implicit so existing labels don't change.
    EXPECT_NE(policies::describe(cfg).find("backend=functional"),
              std::string::npos);
    cfg.engineBackend = "timing";
    EXPECT_EQ(policies::describe(cfg).find("backend="), std::string::npos);
    policies::apply(cfg, "sched=hints,backend=functional");
    EXPECT_EQ(cfg.engineBackend, "functional");
}

TEST(Backends, MachineExposesSelectedBackend)
{
    SimConfig cfg = SimConfig::withCores(4);
    cfg.engineBackend = "functional";
    Machine m(cfg);
    EXPECT_STREQ(m.backend().name(), "functional");
}
