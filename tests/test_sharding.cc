/**
 * @file
 * The scale-out determinism lattice (docs/scale-out.md):
 *
 *  - Topology is a SIMULATED-machine property: with shardHopPenalty ==
 *    0 a topologized one-process run is bit-identical to a plain one;
 *    with a penalty it stays deterministic, counts cross-shard NoC
 *    messages, and slows the clock down — never changes results.
 *  - Process fan-out is a HOST property: an N-process sharded run
 *    (harness/shard_runner.h) reproduces the one-process digests
 *    bit-identically at shards {2, 4}, on the golden workloads and on
 *    every registered app, with the parent reducer actually checking
 *    progress-epoch agreement along the way.
 *  - The harness seam: policy keys (shards=, shard-hop=), the
 *    SWARMSIM_SHARDS env knob end-to-end through runOnce, recorded
 *    cost traces keyed on topology (a stale-topology trace is dropped
 *    and re-recorded, never silently replayed), and strict rejection
 *    of malformed topology files.
 *
 * Plain-vs-sharded comparisons run inside ONE test process: fork gives
 * every shard replica the same heap addresses this process used for
 * its plain run, so the address-dependent stats digests are directly
 * comparable without a fixed arena.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "apps/app.h"
#include "golden_workloads.h"
#include "harness/cli.h"
#include "harness/runner.h"
#include "harness/shard_runner.h"
#include "sim/topology.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/policies.h"

using namespace ssim;
using namespace ssim::golden;
using namespace ssim::harness;

namespace {

std::string
tmpPath(const char* name)
{
    return testing::TempDir() + "ssim_topo_" + name;
}

/// runWorkload's sharded twin: same arena state, same config, same
/// initial tasks — but run on @p nshards forked replicas and reduced.
ShardedRunOutcome
runWorkloadSharded(Workload w, SchedulerType sched, uint32_t nshards)
{
    auto* st = new (arena()) WorkState();
    SimConfig cfg;
    switch (w) {
      case Workload::Spawn:
        cfg = SimConfig::withCores(16, sched, 7);
        break;
      case Workload::Contend:
        cfg = SimConfig::withCores(16, sched, 3);
        break;
      case Workload::Spill:
        cfg = SimConfig::withCores(1, sched, 1);
        break;
    }
    cfg.numShards = nshards;
    resolveTopology(cfg);
    return runShardedRaw(
        cfg,
        [&](Machine& m) {
            switch (w) {
              case Workload::Spawn:
                m.enqueueInitial(spawner, 0, swarm::Hint(0), st,
                                 uint64_t(48));
                break;
              case Workload::Contend:
                for (uint64_t i = 0; i < 96; i++)
                    m.enqueueInitial(rmwCells, i / 3, swarm::Hint(i % 5),
                                     st);
                break;
              case Workload::Spill:
                for (uint64_t i = 0; i < 400; i++)
                    m.enqueueInitial(tiny, i, swarm::Hint(i % 32), st);
                break;
            }
        },
        [] { return uint64_t(0); }, [] { return true; });
}

/// One plain (single-process) app run at Tiny/16 cores.
RunResult
runAppPlain(apps::App& app)
{
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    return runOnce(app, cfg);
}

} // namespace

// ---- Topology as a simulated-machine property ------------------------------

TEST(ShardTopology, ZeroPenaltyTopologyIsBitIdenticalToPlain)
{
    for (const Golden& g : kGoldens) {
        uint64_t plain = runWorkload(g.w, g.sched);
        uint64_t topod = runWorkload(
            g.w, g.sched, 1, "timing", false, false, [&](SimConfig& cfg) {
                cfg.topology = std::make_shared<TopologySpec>(
                    TopologySpec::uniform(cfg.ntiles,
                                          cfg.ntiles >= 2 ? 2 : 1));
                cfg.shardHopPenalty = 0;
            });
        EXPECT_EQ(topod, plain) << g.name;
    }
}

TEST(ShardTopology, HopPenaltyIsDeterministicAndCountsCrossShardTraffic)
{
    auto run = [&](uint32_t penalty) {
        auto* st = new (arena()) WorkState();
        SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 3);
        cfg.topology = std::make_shared<TopologySpec>(
            TopologySpec::uniform(cfg.ntiles, 2));
        cfg.shardHopPenalty = penalty;
        Machine m(cfg);
        for (uint64_t i = 0; i < 96; i++)
            m.enqueueInitial(rmwCells, i / 3, swarm::Hint(i % 5), st);
        m.run();
        return m.stats();
    };
    SimStats s5 = run(5);
    SimStats again = run(5);
    EXPECT_EQ(statsDigest(s5), statsDigest(again))
        << "penalized topology must stay deterministic";
    EXPECT_GT(s5.crossShardMsgs, 0u)
        << "a contended 2-shard split must cross the boundary";

    // The penalty changes the simulated timeline, which changes
    // speculation (aborts, re-execution) and therefore the message
    // COUNT — only determinism and cost monotonicity are contracts.
    SimStats s0 = run(0);
    EXPECT_GT(s0.crossShardMsgs, 0u)
        << "cross-shard traffic is counted even when unpriced";
    EXPECT_GT(s5.cycles, s0.cycles)
        << "pricing cross-shard hops must slow the simulated clock";
}

// ---- Process fan-out: golden workloads -------------------------------------

TEST(ShardProcesses, GoldenWorkloadsMatchPlainAtShards2And4)
{
    for (const Golden& g : kGoldens) {
        if (g.w == Workload::Spill)
            continue; // 1 core = 1 tile: nothing to shard
        uint64_t plain = runWorkload(g.w, g.sched);
        for (uint32_t nshards : {2u, 4u}) {
            ShardedRunOutcome out =
                runWorkloadSharded(g.w, g.sched, nshards);
            EXPECT_TRUE(out.valid) << g.name << " @ " << nshards;
            EXPECT_EQ(out.statsDigest, plain)
                << g.name << " @ " << nshards
                << " shards diverged from the plain run";
            EXPECT_GT(out.progressEpochsChecked, 0u)
                << g.name << ": the reducer never aligned an epoch";
            EXPECT_GT(out.stats.shardStepsSent, 0u) << g.name;
            EXPECT_GT(out.stats.shardStepsRecv, 0u) << g.name;
            EXPECT_GT(out.stats.shardProgressMsgs, 0u) << g.name;
        }
    }
}

// ---- Process fan-out: every registered app ---------------------------------

class ShardedApp : public testing::TestWithParam<std::string>
{
};

TEST_P(ShardedApp, TwoShardRunMatchesSingleProcess)
{
    const std::string& name = GetParam();
    auto app = apps::makeApp(name);
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    RunResult plain = runAppPlain(*app);
    ASSERT_TRUE(plain.valid) << name;

    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.numShards = 2;
    resolveTopology(cfg);
    RunResult sharded = runSharded(*app, cfg);
    EXPECT_TRUE(sharded.valid) << name;
    EXPECT_EQ(statsDigest(sharded.stats), statsDigest(plain.stats))
        << name << ": 2-shard stats digest diverged";
    EXPECT_EQ(sharded.resultDigest, plain.resultDigest)
        << name << ": 2-shard result digest diverged";
    EXPECT_GT(sharded.stats.shardStepsSent, 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, ShardedApp,
                         testing::ValuesIn(apps::appNames()),
                         [](const auto& info) { return info.param; });

TEST(ShardProcesses, FourShardAppRunMatchesSingleProcess)
{
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    RunResult plain = runAppPlain(*app);
    ASSERT_TRUE(plain.valid);

    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.numShards = 4;
    resolveTopology(cfg);
    RunResult sharded = runSharded(*app, cfg);
    EXPECT_TRUE(sharded.valid);
    EXPECT_EQ(statsDigest(sharded.stats), statsDigest(plain.stats));
    EXPECT_EQ(sharded.resultDigest, plain.resultDigest);
}

// ---- Harness seam ----------------------------------------------------------

TEST(ShardKnobs, PolicyKeysSetAndDescribeRoundtrips)
{
    SimConfig cfg = SimConfig::withCores(16);
    policies::apply(cfg, "sched=hints,shards=2,shard-hop=5");
    EXPECT_EQ(cfg.numShards, 2u);
    EXPECT_EQ(cfg.shardHopPenalty, 5u);
    std::string spec = policies::describe(cfg);
    EXPECT_NE(spec.find("shards=2"), std::string::npos) << spec;
    EXPECT_NE(spec.find("shard-hop=5"), std::string::npos) << spec;

    SimConfig plain = SimConfig::withCores(16);
    EXPECT_EQ(policies::describe(plain).find("shards="),
              std::string::npos);
}

TEST(ShardKnobs, EnvShardsKnobShardsARunEndToEnd)
{
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    RunResult plain = runAppPlain(*app);
    ASSERT_TRUE(plain.valid);

    setenv("SWARMSIM_SHARDS", "2", 1);
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    RunResult sharded = runOnce(*app, cfg);
    unsetenv("SWARMSIM_SHARDS");

    EXPECT_TRUE(sharded.valid);
    EXPECT_EQ(statsDigest(sharded.stats), statsDigest(plain.stats));
    EXPECT_EQ(sharded.resultDigest, plain.resultDigest);
    EXPECT_GT(sharded.stats.shardStepsSent, 0u)
        << "SWARMSIM_SHARDS=2 did not fork a sharded run";
}

TEST(ShardKnobs, TopologyKeyOfDistinguishesShapesAndPenalties)
{
    SimConfig plain = SimConfig::withCores(16);
    EXPECT_EQ(topologyKeyOf(plain), "single");

    SimConfig t2 = SimConfig::withCores(16);
    t2.topology = std::make_shared<TopologySpec>(
        TopologySpec::uniform(t2.ntiles, 2));
    SimConfig t4 = t2;
    t4.topology = std::make_shared<TopologySpec>(
        TopologySpec::uniform(t4.ntiles, 4));
    EXPECT_NE(topologyKeyOf(t2), topologyKeyOf(plain));
    EXPECT_NE(topologyKeyOf(t2), topologyKeyOf(t4));

    SimConfig hop = t2;
    hop.shardHopPenalty = 3;
    EXPECT_NE(topologyKeyOf(hop), topologyKeyOf(t2));
}

TEST(ShardKnobs, StaleTopologyTraceIsDroppedAndReRecorded)
{
    auto app = apps::makeApp("bfs");
    apps::AppParams params;
    params.preset = apps::Preset::Tiny;
    params.seed = 42;
    app->setup(params);

    // Record under the untopologized config ("single" key).
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = "trace-replay";
    RunResult r1 = runOnce(*app, cfg);
    ASSERT_TRUE(r1.valid);
    ASSERT_TRUE(r1.trace);
    EXPECT_EQ(r1.trace->topologyKey, "single");

    // Replaying under the SAME topology reuses the armed trace.
    SimConfig again = cfg;
    again.traceData = r1.trace;
    RunResult r2 = runOnce(*app, again);
    EXPECT_TRUE(r2.valid);
    EXPECT_EQ(r2.trace, r1.trace);

    // A different topology invalidates it: runOnce must drop the armed
    // trace and re-record under the new key (this is what lets sweep()
    // adopt the fresh trace instead of gating later points against a
    // stale recording).
    SimConfig topod = cfg;
    topod.topology = std::make_shared<TopologySpec>(
        TopologySpec::uniform(topod.ntiles, 2));
    topod.shardHopPenalty = 4;
    topod.traceData = r1.trace;
    RunResult r3 = runOnce(*app, topod);
    EXPECT_TRUE(r3.valid);
    ASSERT_TRUE(r3.trace);
    EXPECT_NE(r3.trace, r1.trace)
        << "a stale-topology trace must not be replayed";
    EXPECT_EQ(r3.trace->topologyKey, topologyKeyOf(topod));
    EXPECT_EQ(r3.resultDigest, r1.resultDigest)
        << "costs decide HOW LONG, never WHAT";
}

TEST(ShardKnobs, MalformedTopologyFileIsFatal)
{
    std::string path = tmpPath("malformed");
    {
        std::ofstream out(path);
        out << "swarmsim-topo v1\nntiles 4\nshards 2\n"
               "shard 0 tiles 0 3\nend\n"; // count mismatch
    }
    SimConfig cfg = SimConfig::withCores(16);
    cfg.topologyFile = path;
    EXPECT_DEATH(resolveTopology(cfg), "malformed topology file");
    std::remove(path.c_str());

    SimConfig missing = SimConfig::withCores(16);
    missing.topologyFile = tmpPath("does_not_exist");
    EXPECT_DEATH(resolveTopology(missing), "cannot open topology file");
}

TEST(ShardKnobs, ResolveTopologyArmsUniformSplitOnlyWhenSharded)
{
    SimConfig cfg = SimConfig::withCores(16);
    resolveTopology(cfg);
    EXPECT_EQ(cfg.topology, nullptr)
        << "an unsharded run stays untopologized";

    cfg.numShards = 2;
    resolveTopology(cfg);
    ASSERT_NE(cfg.topology, nullptr);
    EXPECT_EQ(cfg.topology->numShards(), 2u);
    EXPECT_EQ(cfg.topology->ntiles, cfg.ntiles);

    // A global SWARMSIM_SHARDS meeting a sweep's 1-tile config must
    // degrade to single-process, not die in uniform()'s assert.
    SimConfig tiny = SimConfig::withCores(1);
    ASSERT_EQ(tiny.ntiles, 1u);
    tiny.numShards = 2;
    resolveTopology(tiny);
    EXPECT_EQ(tiny.numShards, 1u) << "clamped to the tile count";
    EXPECT_EQ(tiny.topology, nullptr)
        << "a 1-shard machine stays untopologized";
}
