/**
 * @file
 * Banked line table tests: bank distribution (mix64 interleaving, same
 * mapping as the L3 directory), the indexed-footprint removeTask scrub,
 * per-bank occupancy stats, and the per-bank lock seam used by the
 * parallel host mode (concurrent registration/probe/removal on distinct
 * and colliding banks — run under TSan in CI).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/hash.h"
#include "swarm/spec.h"
#include "swarm/task.h"

using namespace ssim;

namespace {

/** Mirror ConflictManager::trackRead (dedup + first-registration flag). */
void
trackRead(LineTable& lt, Task* t, LineAddr line)
{
    bool first = !t->writeSet.count(line);
    if (t->readSet.insert(line).second)
        lt.addReader(line, t, first);
}

void
trackWrite(LineTable& lt, Task* t, LineAddr line)
{
    bool first = !t->readSet.count(line);
    if (t->writeSet.insert(line).second)
        lt.addWriter(line, t, first);
}

} // namespace

TEST(LineTableBanking, LinesLandInTheirMix64Bank)
{
    LineTable lt(16);
    EXPECT_EQ(lt.numBanks(), 16u);
    Task t;
    size_t perBank[16] = {};
    for (LineAddr line = 0; line < 512; line++) {
        trackRead(lt, &t, line);
        EXPECT_EQ(lt.bankOf(line), uint32_t(mix64(line) % 16)) << line;
        perBank[lt.bankOf(line)]++;
    }
    EXPECT_EQ(lt.numLines(), 512u);
    size_t sum = 0;
    for (uint32_t b = 0; b < 16; b++) {
        EXPECT_EQ(lt.bankLines(b), perBank[b]) << "bank " << b;
        EXPECT_GT(perBank[b], 0u) << "bank " << b << " empty: bad spread";
        sum += lt.bankLines(b);
    }
    EXPECT_EQ(sum, 512u);
    // find() resolves through the right bank.
    for (LineAddr line : {LineAddr(0), LineAddr(17), LineAddr(511)}) {
        auto* e = lt.find(line);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->readers.size(), 1u);
        EXPECT_EQ(e->readers[0], &t);
    }
    EXPECT_EQ(lt.find(9999), nullptr);
}

TEST(LineTableBanking, SingleBankDegeneratesToOneMap)
{
    LineTable lt(1);
    EXPECT_EQ(lt.numBanks(), 1u);
    Task t;
    trackWrite(lt, &t, 7);
    trackWrite(lt, &t, 8);
    EXPECT_EQ(lt.bankLines(0), 2u);
    EXPECT_EQ(lt.numLines(), 2u);
}

TEST(LineTableRemoveTask, IndexedScrubRemovesExactlyOwnLines)
{
    LineTable lt(8);
    Task t1, t2;

    trackRead(lt, &t1, 100);
    trackWrite(lt, &t1, 100); // reader AND writer of the same line
    trackRead(lt, &t1, 200);
    trackWrite(lt, &t1, 300);
    trackRead(lt, &t2, 100);
    trackRead(lt, &t2, 200);

    EXPECT_EQ(lt.numLines(), 3u);
    EXPECT_EQ(t1.footprint.size(), 4u); // 100r, 100w, 200r, 300w

    lt.removeTask(&t1);
    EXPECT_TRUE(t1.footprint.empty());

    // Shared lines survive with only t2; t1-exclusive lines are erased.
    auto* e100 = lt.find(100);
    ASSERT_NE(e100, nullptr);
    EXPECT_EQ(e100->readers, (std::vector<Task*>{&t2}));
    EXPECT_TRUE(e100->writers.empty());
    auto* e200 = lt.find(200);
    ASSERT_NE(e200, nullptr);
    EXPECT_EQ(e200->readers, (std::vector<Task*>{&t2}));
    EXPECT_EQ(lt.find(300), nullptr);
    EXPECT_EQ(lt.numLines(), 2u);

    lt.removeTask(&t2);
    EXPECT_EQ(lt.numLines(), 0u);
    for (uint32_t b = 0; b < lt.numBanks(); b++)
        EXPECT_EQ(lt.bankLines(b), 0u);
}

TEST(LineTableRemoveTask, RemoveIsIdempotentAfterReset)
{
    // The abort path calls removeTask, then resetSpecState, and the task
    // re-registers on its next attempt; a second removeTask with an
    // empty footprint must be a no-op.
    LineTable lt(4);
    Task t;
    trackRead(lt, &t, 42);
    lt.removeTask(&t);
    EXPECT_EQ(lt.numLines(), 0u);
    lt.removeTask(&t); // footprint empty: no-op
    EXPECT_EQ(lt.numLines(), 0u);

    t.resetSpecState();
    trackRead(lt, &t, 42);
    EXPECT_EQ(lt.numLines(), 1u);
    EXPECT_EQ(t.footprint.size(), 1u);
    lt.removeTask(&t);
    EXPECT_EQ(lt.numLines(), 0u);
}

TEST(LineTableBankLocks, GuardIsNoOpWhenDisarmed)
{
    LineTable lt(4);
    EXPECT_FALSE(lt.locking());
    auto g = lt.lockFor(123);
    EXPECT_FALSE(g.owns_lock()); // unowned guard: serial mode pays nothing
    lt.setLocking(true);
    EXPECT_TRUE(lt.locking());
    auto g2 = lt.lockFor(123);
    EXPECT_TRUE(g2.owns_lock());
    g2.unlock();
    auto g3 = lt.lockBank(lt.bankOf(123)); // same bank, re-lockable
    EXPECT_TRUE(g3.owns_lock());
}

TEST(LineTableBankLocks, ConcurrentAcquireCheckReleaseStaysConsistent)
{
    // The parallel-mode seam contract: threads doing
    // lock-register-probe-unlock and (internally locked) removeTask on
    // the same table must neither race nor corrupt bank state — whether
    // their lines collide in one bank or spread across banks. TSan (CI
    // tsan job) checks the "no race" half; the asserts below check
    // consistency.
    constexpr uint32_t kThreads = 8;
    constexpr uint32_t kRounds = 200;
    LineTable lt(4); // few banks: heavy collisions by construction
    lt.setLocking(true);

    std::vector<std::unique_ptr<Task>> tasks;
    for (uint32_t i = 0; i < kThreads; i++)
        tasks.push_back(std::make_unique<Task>());

    // Per-thread distinct lines plus one line shared by ALL threads
    // (maximum bank collision on line 7's bank).
    auto lineFor = [](uint32_t thread, uint32_t round) {
        return LineAddr(1000 + thread * 10000 + round);
    };
    constexpr LineAddr kShared = 7;

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < kThreads; w++) {
        threads.emplace_back([&, w] {
            while (!go.load())
                std::this_thread::yield();
            Task* t = tasks[w].get();
            for (uint32_t r = 0; r < kRounds; r++) {
                {
                    auto g = lt.lockFor(kShared);
                    bool first = !t->writeSet.count(kShared);
                    if (t->readSet.insert(kShared).second)
                        lt.addReader(kShared, t, first);
                }
                LineAddr mine = lineFor(w, r);
                {
                    auto g = lt.lockFor(mine);
                    bool first = !t->readSet.count(mine);
                    if (t->writeSet.insert(mine).second)
                        lt.addWriter(mine, t, first);
                    // Probe under the same guard: our registration must
                    // be visible and intact.
                    auto* e = lt.find(mine);
                    ASSERT_NE(e, nullptr);
                    ASSERT_EQ(e->writers.back(), t);
                }
                if (r % 16 == 15) {
                    // Full scrub (internally locked), then re-register.
                    lt.removeTask(t);
                    t->resetSpecState();
                }
            }
            lt.removeTask(t);
        });
    }
    go.store(true);
    for (auto& th : threads)
        th.join();

    // Every registration was scrubbed: the table must be empty.
    EXPECT_EQ(lt.numLines(), 0u);
    for (uint32_t b = 0; b < lt.numBanks(); b++)
        EXPECT_EQ(lt.bankLines(b), 0u);
    for (auto& t : tasks)
        EXPECT_TRUE(t->footprint.empty());
}

TEST(LineTableOpSeq, MutationsBumpExactlyTheirBank)
{
    LineTable lt(4);
    Task t;
    LineAddr a = 100;
    uint32_t ba = lt.bankOf(a);
    std::vector<uint64_t> before(4);
    for (uint32_t b = 0; b < 4; b++)
        before[b] = lt.bankOpSeq(b);

    trackRead(lt, &t, a);
    EXPECT_EQ(lt.bankOpSeq(ba), before[ba] + 1);
    for (uint32_t b = 0; b < 4; b++) {
        if (b != ba) {
            EXPECT_EQ(lt.bankOpSeq(b), before[b]) << "bank " << b;
        }
    }

    // Dedup: re-reading the same line registers nothing, bumps nothing.
    trackRead(lt, &t, a);
    EXPECT_EQ(lt.bankOpSeq(ba), before[ba] + 1);

    // The removeTask scrub bumps (it changes scan results)...
    lt.removeTask(&t);
    EXPECT_GT(lt.bankOpSeq(ba), before[ba] + 1);

    // ...but scrubbing EMPTY entries does not: a missing entry and an
    // empty one scan identically, so sibling probes stay valid.
    lt.setDeferredScrub(true);
    t.resetSpecState();
    trackWrite(lt, &t, a);
    lt.removeTask(&t);
    uint64_t seq = lt.bankOpSeq(ba);
    EXPECT_TRUE(lt.bankDirty(ba));
    EXPECT_EQ(lt.scrubEmptyEntries(ba), 1u);
    EXPECT_EQ(lt.bankOpSeq(ba), seq);
}

TEST(LineTableEpochScrub, DeferredRemoveLeavesEmptiesUntilScrub)
{
    LineTable lt(4);
    lt.setDeferredScrub(true);
    Task t1, t2;
    trackRead(lt, &t1, 10);
    trackRead(lt, &t2, 10); // shared line survives t1's removal
    trackWrite(lt, &t1, 20);
    trackWrite(lt, &t1, 30);
    EXPECT_EQ(lt.numLines(), 3u);

    lt.removeTask(&t1);
    // Entries linger (empty), banks are dirty, occupancy still counts
    // them; a find() returns the empty husk.
    EXPECT_EQ(lt.numLines(), 3u);
    ASSERT_NE(lt.find(20), nullptr);
    EXPECT_TRUE(lt.find(20)->readers.empty());
    EXPECT_TRUE(lt.find(20)->writers.empty());

    EXPECT_GT(lt.scrubAllDirty(), 0u);
    EXPECT_EQ(lt.numLines(), 1u); // only t2's shared line remains
    ASSERT_NE(lt.find(10), nullptr);
    EXPECT_EQ(lt.find(10)->readers, (std::vector<Task*>{&t2}));
    EXPECT_EQ(lt.entriesScrubbed(), 2u);
    for (uint32_t b = 0; b < lt.numBanks(); b++)
        EXPECT_FALSE(lt.bankDirty(b));

    // Re-registering a scrubbed line starts a fresh entry.
    t1.resetSpecState();
    trackWrite(lt, &t1, 20);
    ASSERT_NE(lt.find(20), nullptr);
    EXPECT_EQ(lt.find(20)->writers, (std::vector<Task*>{&t1}));
}

TEST(LineTableBankLocks, EpochScrubRacesRemoveTaskUnderLocking)
{
    // The deferred-scrub contract: scrubEmptyEntries may run from any
    // thread concurrently with removeTask and registration on the same
    // banks — an empty entry is referenced by no live footprint, so
    // erasure is safe, and non-empty entries are never touched. TSan
    // (CI tsan job, LineTableBankLocks.* filter) checks the no-race
    // half; the asserts check nothing live is lost.
    constexpr uint32_t kWorkers = 6;
    constexpr uint32_t kScrubbers = 2;
    constexpr uint32_t kRounds = 200;
    LineTable lt(4); // few banks: scrubs and removals collide hard
    lt.setLocking(true);
    lt.setDeferredScrub(true);

    std::vector<std::unique_ptr<Task>> tasks;
    for (uint32_t i = 0; i < kWorkers; i++)
        tasks.push_back(std::make_unique<Task>());

    std::atomic<bool> go{false};
    std::atomic<uint32_t> running{kWorkers};
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < kWorkers; w++) {
        threads.emplace_back([&, w] {
            while (!go.load())
                std::this_thread::yield();
            Task* t = tasks[w].get();
            for (uint32_t r = 0; r < kRounds; r++) {
                LineAddr mine = 1000 + w * 10000 + r;
                {
                    auto g = lt.lockFor(mine);
                    bool first = !t->readSet.count(mine);
                    if (t->writeSet.insert(mine).second)
                        lt.addWriter(mine, t, first);
                }
                {
                    auto g = lt.lockFor(7); // shared hot line
                    bool first = !t->writeSet.count(7);
                    if (t->readSet.insert(LineAddr(7)).second)
                        lt.addReader(7, t, first);
                }
                if (r % 8 == 7) {
                    lt.removeTask(t); // leaves empties, marks dirty
                    t->resetSpecState();
                }
            }
            lt.removeTask(t);
            running.fetch_sub(1);
        });
    }
    for (uint32_t s = 0; s < kScrubbers; s++) {
        threads.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            while (running.load() > 0)
                for (uint32_t b = 0; b < lt.numBanks(); b++)
                    lt.scrubEmptyEntries(b);
        });
    }
    go.store(true);
    for (auto& th : threads)
        th.join();

    lt.scrubAllDirty();
    EXPECT_EQ(lt.numLines(), 0u);
    for (auto& t : tasks)
        EXPECT_TRUE(t->footprint.empty());
    EXPECT_GT(lt.entriesScrubbed(), 0u);
    EXPECT_GT(lt.lockAcquired(), 0u);
}

TEST(LineTableBanking, TracksPerBankPeakOccupancy)
{
    LineTable lt(2);
    Task t1, t2;
    for (LineAddr line = 0; line < 64; line++)
        trackRead(lt, &t1, line);
    uint64_t peak0 = lt.bankPeakLines(0), peak1 = lt.bankPeakLines(1);
    EXPECT_EQ(peak0, lt.bankLines(0));
    EXPECT_EQ(peak1, lt.bankLines(1));
    lt.removeTask(&t1);
    // Peaks persist after the table drains.
    EXPECT_EQ(lt.bankPeakLines(0), peak0);
    EXPECT_EQ(lt.bankPeakLines(1), peak1);
    EXPECT_EQ(lt.bankLines(0), 0u);
    trackRead(lt, &t2, 7);
    EXPECT_EQ(lt.bankPeakLines(lt.bankOf(7)),
              std::max<uint64_t>(lt.bankOf(7) ? peak1 : peak0, 1));
}
