/**
 * @file
 * Banked line table tests: bank distribution (mix64 interleaving, same
 * mapping as the L3 directory), the indexed-footprint removeTask scrub,
 * and per-bank occupancy stats.
 */
#include <gtest/gtest.h>

#include <memory>

#include "base/hash.h"
#include "swarm/spec.h"
#include "swarm/task.h"

using namespace ssim;

namespace {

/** Mirror ConflictManager::trackRead (dedup + first-registration flag). */
void
trackRead(LineTable& lt, Task* t, LineAddr line)
{
    bool first = !t->writeSet.count(line);
    if (t->readSet.insert(line).second)
        lt.addReader(line, t, first);
}

void
trackWrite(LineTable& lt, Task* t, LineAddr line)
{
    bool first = !t->readSet.count(line);
    if (t->writeSet.insert(line).second)
        lt.addWriter(line, t, first);
}

} // namespace

TEST(LineTableBanking, LinesLandInTheirMix64Bank)
{
    LineTable lt(16);
    EXPECT_EQ(lt.numBanks(), 16u);
    Task t;
    size_t perBank[16] = {};
    for (LineAddr line = 0; line < 512; line++) {
        trackRead(lt, &t, line);
        EXPECT_EQ(lt.bankOf(line), uint32_t(mix64(line) % 16)) << line;
        perBank[lt.bankOf(line)]++;
    }
    EXPECT_EQ(lt.numLines(), 512u);
    size_t sum = 0;
    for (uint32_t b = 0; b < 16; b++) {
        EXPECT_EQ(lt.bankLines(b), perBank[b]) << "bank " << b;
        EXPECT_GT(perBank[b], 0u) << "bank " << b << " empty: bad spread";
        sum += lt.bankLines(b);
    }
    EXPECT_EQ(sum, 512u);
    // find() resolves through the right bank.
    for (LineAddr line : {LineAddr(0), LineAddr(17), LineAddr(511)}) {
        auto* e = lt.find(line);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->readers.size(), 1u);
        EXPECT_EQ(e->readers[0], &t);
    }
    EXPECT_EQ(lt.find(9999), nullptr);
}

TEST(LineTableBanking, SingleBankDegeneratesToOneMap)
{
    LineTable lt(1);
    EXPECT_EQ(lt.numBanks(), 1u);
    Task t;
    trackWrite(lt, &t, 7);
    trackWrite(lt, &t, 8);
    EXPECT_EQ(lt.bankLines(0), 2u);
    EXPECT_EQ(lt.numLines(), 2u);
}

TEST(LineTableRemoveTask, IndexedScrubRemovesExactlyOwnLines)
{
    LineTable lt(8);
    Task t1, t2;

    trackRead(lt, &t1, 100);
    trackWrite(lt, &t1, 100); // reader AND writer of the same line
    trackRead(lt, &t1, 200);
    trackWrite(lt, &t1, 300);
    trackRead(lt, &t2, 100);
    trackRead(lt, &t2, 200);

    EXPECT_EQ(lt.numLines(), 3u);
    EXPECT_EQ(t1.footprint.size(), 4u); // 100r, 100w, 200r, 300w

    lt.removeTask(&t1);
    EXPECT_TRUE(t1.footprint.empty());

    // Shared lines survive with only t2; t1-exclusive lines are erased.
    auto* e100 = lt.find(100);
    ASSERT_NE(e100, nullptr);
    EXPECT_EQ(e100->readers, (std::vector<Task*>{&t2}));
    EXPECT_TRUE(e100->writers.empty());
    auto* e200 = lt.find(200);
    ASSERT_NE(e200, nullptr);
    EXPECT_EQ(e200->readers, (std::vector<Task*>{&t2}));
    EXPECT_EQ(lt.find(300), nullptr);
    EXPECT_EQ(lt.numLines(), 2u);

    lt.removeTask(&t2);
    EXPECT_EQ(lt.numLines(), 0u);
    for (uint32_t b = 0; b < lt.numBanks(); b++)
        EXPECT_EQ(lt.bankLines(b), 0u);
}

TEST(LineTableRemoveTask, RemoveIsIdempotentAfterReset)
{
    // The abort path calls removeTask, then resetSpecState, and the task
    // re-registers on its next attempt; a second removeTask with an
    // empty footprint must be a no-op.
    LineTable lt(4);
    Task t;
    trackRead(lt, &t, 42);
    lt.removeTask(&t);
    EXPECT_EQ(lt.numLines(), 0u);
    lt.removeTask(&t); // footprint empty: no-op
    EXPECT_EQ(lt.numLines(), 0u);

    t.resetSpecState();
    trackRead(lt, &t, 42);
    EXPECT_EQ(lt.numLines(), 1u);
    EXPECT_EQ(t.footprint.size(), 1u);
    lt.removeTask(&t);
    EXPECT_EQ(lt.numLines(), 0u);
}

TEST(LineTableBanking, TracksPerBankPeakOccupancy)
{
    LineTable lt(2);
    Task t1, t2;
    for (LineAddr line = 0; line < 64; line++)
        trackRead(lt, &t1, line);
    uint64_t peak0 = lt.bankPeakLines(0), peak1 = lt.bankPeakLines(1);
    EXPECT_EQ(peak0, lt.bankLines(0));
    EXPECT_EQ(peak1, lt.bankLines(1));
    lt.removeTask(&t1);
    // Peaks persist after the table drains.
    EXPECT_EQ(lt.bankPeakLines(0), peak0);
    EXPECT_EQ(lt.bankPeakLines(1), peak1);
    EXPECT_EQ(lt.bankLines(0), 0u);
    trackRead(lt, &t2, 7);
    EXPECT_EQ(lt.bankPeakLines(lt.bankOf(7)),
              std::max<uint64_t>(lt.bankOf(7) ? peak1 : peak0, 1));
}
