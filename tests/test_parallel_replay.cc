/**
 * @file
 * Parallel-replay tests (cfg.parallelReplay): with worker-side effect
 * pre-apply armed, simulated behavior must stay bit-identical to the
 * serial path at any host thread count, with or without concurrent
 * conflict checks, on both engine backends — the speculative
 * pre-apply/squash scheme's core contract (swarm/conflict_manager.h,
 * docs/architecture.md "Parallel replay"). The ParallelReplay* filter
 * runs under the TSan CI job, which races the bank drains, the squash
 * fences, and the deferred epoch scrub for real.
 *
 * Note these tests deliberately do NOT assert the concurrent-probe
 * accounting invariants of test_concurrent_conflicts.cc in replay-only
 * mode: a squash of a step that did not register a new line leaves a
 * stamped probe consumable at serial re-apply, so probe counters are
 * only meaningful when conc-conflicts armed them.
 */
#include <gtest/gtest.h>

#include "golden_workloads.h"
#include "harness/cli.h"
#include "swarm/policies.h"

using namespace ssim;
using namespace ssim::golden;

// The golden workloads with replay armed must match a plain serial run
// of the same build, at every host thread count, with conc-conflicts
// both off and on (the two worker-side phases compose).
TEST(ParallelReplayDeterminism, MatchesSerialAcrossThreadCounts)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        uint64_t serial = runWorkload(g.w, g.sched, 1);
        for (uint32_t threads : {1u, 2u, 8u}) {
            for (bool conc : {false, true}) {
                uint64_t replay =
                    runWorkload(g.w, g.sched, threads, "timing", conc,
                                /*parallel_replay=*/true);
                EXPECT_EQ(serial, replay)
                    << g.name << " @ hostThreads=" << threads
                    << " conc=" << conc;
            }
        }
    }
}

// ... and reproduce the recorded goldens directly (the hard gate: the
// replay path is bit-identical to the PRE-refactor machine, not just
// internally consistent).
TEST(ParallelReplayDeterminism, GoldenDigestsHoldWithReplay)
{
    if (!arenaIsFixed())
        GTEST_SKIP() << "fixed-address arena unavailable; digests are "
                        "address-dependent";
    for (const Golden& g : kGoldens) {
        EXPECT_EQ(runWorkload(g.w, g.sched, 8, "timing", false, true),
                  g.digest)
            << g.name << " (replay)";
        EXPECT_EQ(runWorkload(g.w, g.sched, 8, "timing", true, true),
                  g.digest)
            << g.name << " (replay+conc)";
    }
}

// A contended 256-core workload drives real replay traffic: deep bank
// queues, abort cascades squashing staged effects, commit fences racing
// the next phase's drain. The digest must not notice; the counters must
// show the machinery actually ran and must balance exactly.
TEST(ParallelReplayDeterminism, ContendedWideMachineAppliesAndMatches)
{
    ASSERT_NE(arena(), nullptr);
    auto runWide = [](uint32_t threads, bool replay, SimStats* out,
                      Machine::HostExecStats* host) {
        auto* st = new (arena()) WorkState();
        SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 11);
        cfg.hostThreads = threads;
        cfg.parallelReplay = replay;
        Machine m(cfg);
        m.enqueueInitial(spawner, 0, swarm::Hint(0), st, uint64_t(200));
        for (uint64_t i = 0; i < 64; i++)
            m.enqueueInitial(rmwCells, 300 + i / 2, swarm::Hint(i % 16),
                             st);
        m.run();
        EXPECT_EQ(m.liveTasks(), 0u);
        if (out)
            *out = m.stats();
        if (host)
            *host = m.hostExecStats();
        return statsDigest(m.stats());
    };
    uint64_t serial = runWide(1, false, nullptr, nullptr);
    SimStats st;
    Machine::HostExecStats host;
    EXPECT_EQ(serial, runWide(2, true, nullptr, nullptr));
    EXPECT_EQ(serial, runWide(8, true, &st, &host));

    // The replay path really ran: replay phases fired, workers
    // pre-applied effects, and the coordinator consumed them.
    EXPECT_GT(host.replayPhases, 0u);
    EXPECT_GT(host.workerApplies, 0u);
    EXPECT_GT(st.workerApplies, 0u);
    // Every pre-apply staged on a worker (the host-side counter) is
    // either consumed at its slot or squashed by a fence; per-bank
    // staging counts account for all of them.
    EXPECT_EQ(host.workerApplies, st.workerApplies + st.replaySquashed);
    uint64_t sum = 0;
    for (uint64_t b : st.bankApplies)
        sum += b;
    EXPECT_EQ(sum, st.workerApplies + st.replaySquashed);
    // This workload aborts heavily, so fences must have squashed some
    // staged effects and the coordinator must have applied the
    // conflicted remainder serially.
    EXPECT_GT(st.replaySquashed, 0u);
    EXPECT_GT(st.coordinatorFallbackApplies, 0u);
    // Non-access effects (compute/enqueue/finish) always stay on the
    // coordinator.
    EXPECT_GT(st.crossBankEffects, 0u);
}

// Forced-fallback case: every task hammers the same cell, so nearly
// every recorded access has live conflict candidates and replay must
// decline to pre-apply (conflicted head steps stop the bank drain).
// The digest still holds and the fallback counter shows the serial path
// carried the load.
TEST(ParallelReplayDeterminism, ContendedSingleLineFallsBack)
{
    ASSERT_NE(arena(), nullptr);
    auto run = [](uint32_t threads, bool replay, SimStats* out) {
        auto* st = new (arena()) WorkState();
        SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 5);
        cfg.hostThreads = threads;
        cfg.parallelReplay = replay;
        Machine m(cfg);
        // tiny: read+write of the single shared counter — every access
        // after the first sees earlier readers/writers on the line.
        for (uint64_t i = 0; i < 120; i++)
            m.enqueueInitial(tiny, i / 4, swarm::Hint(i % 8), st);
        m.run();
        EXPECT_EQ(m.liveTasks(), 0u);
        if (out)
            *out = m.stats();
        return statsDigest(m.stats());
    };
    uint64_t serial = run(1, false, nullptr);
    SimStats st;
    EXPECT_EQ(serial, run(8, true, &st));
    // The coordinator applied conflicted accesses serially; the replay
    // machinery stayed sound (whatever it staged was consumed or
    // squashed, never lost).
    EXPECT_GT(st.coordinatorFallbackApplies, 0u);
    uint64_t sum = 0;
    for (uint64_t b : st.bankApplies)
        sum += b;
    EXPECT_EQ(sum, st.workerApplies + st.replaySquashed);
}

// The functional backend's default configuration inlines effects, which
// disables recording entirely — replay must then be a clean no-op with
// zeroed counters and an unchanged digest.
TEST(ParallelReplayDeterminism, FunctionalBackendDegradesCleanly)
{
    ASSERT_NE(arena(), nullptr);
    uint64_t serial = runWorkload(Workload::Contend, SchedulerType::Hints,
                                  1, "functional");
    for (uint32_t threads : {2u, 8u}) {
        for (bool conc : {false, true}) {
            uint64_t replay =
                runWorkload(Workload::Contend, SchedulerType::Hints,
                            threads, "functional", conc, true);
            EXPECT_EQ(serial, replay)
                << "hostThreads=" << threads << " conc=" << conc;
        }
    }
}

// Replay composes with the deferred epoch scrub (armed by
// conc-conflicts): scrub runs on workers at phase start, racing the
// bank drains that TSan watches. The digest must not notice.
TEST(ParallelReplayDeterminism, ComposesWithDeferredScrub)
{
    ASSERT_NE(arena(), nullptr);
    // Spill churns 400 tiny tasks through a 1-core machine — maximal
    // commit/scrub traffic per line.
    uint64_t serial = runWorkload(Workload::Spill, SchedulerType::Hints, 1);
    for (uint32_t threads : {2u, 8u}) {
        uint64_t both = runWorkload(Workload::Spill, SchedulerType::Hints,
                                    threads, "timing", true, true);
        EXPECT_EQ(serial, both) << "hostThreads=" << threads;
    }
}

// The knob's spelling surfaces: policy specs round-trip, the env var
// and flag parse, and defaults stay off.
TEST(ParallelReplayKnob, SelectionSurfaces)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.parallelReplay);

    EXPECT_TRUE(policies::set(cfg, "parallel-replay", "on"));
    EXPECT_TRUE(cfg.parallelReplay);
    EXPECT_NE(policies::describe(cfg).find("parallel-replay=on"),
              std::string::npos);
    // describe() round-trips through apply().
    SimConfig again;
    policies::apply(again, policies::describe(cfg));
    EXPECT_TRUE(again.parallelReplay);

    EXPECT_TRUE(policies::set(cfg, "parallel-replay", "off"));
    EXPECT_FALSE(cfg.parallelReplay);
    EXPECT_EQ(policies::describe(cfg).find("parallel-replay"),
              std::string::npos);
    EXPECT_FALSE(policies::set(cfg, "parallel-replay", "sometimes"));

    // Flag parsing (cli.h): later flags win; env is applied first.
    {
        SimConfig c;
        const char* argv[] = {"prog", "--parallel-replay=on"};
        harness::applyParallelReplay(c, 2, const_cast<char**>(argv));
        EXPECT_TRUE(c.parallelReplay);
    }
    {
        SimConfig c;
        setenv("SWARMSIM_PARALLEL_REPLAY", "on", 1);
        harness::applyParallelReplay(c);
        EXPECT_TRUE(c.parallelReplay);
        const char* argv[] = {"prog", "--parallel-replay=off"};
        harness::applyParallelReplay(c, 2, const_cast<char**>(argv));
        EXPECT_FALSE(c.parallelReplay);
        unsetenv("SWARMSIM_PARALLEL_REPLAY");
    }
}

// requireKnownFlags fails fast (exit, not silent) on a typo'd flag, and
// accepts the shared set plus caller extras.
TEST(ParallelReplayKnob, UnknownFlagsDie)
{
    const char* ok[] = {"prog", "--parallel-replay=on", "--host-threads=4",
                        "positional", "--smoke"};
    harness::requireKnownFlags(5, const_cast<char**>(ok)); // no death

    static const char* const kExtras[] = {"--widgets", nullptr};
    const char* extra[] = {"prog", "--widgets=7"};
    harness::requireKnownFlags(2, const_cast<char**>(extra), kExtras);

    const char* typo[] = {"prog", "--parallel-reply=on"};
    EXPECT_DEATH(harness::requireKnownFlags(2, const_cast<char**>(typo)),
                 "unrecognized flag '--parallel-reply=on'");
    const char* unknown[] = {"prog", "--host-thread=8"};
    EXPECT_DEATH(harness::requireKnownFlags(2, const_cast<char**>(unknown)),
                 "unrecognized flag");
}
