/**
 * @file
 * AccessClassifier unit tests (harness/classifier.h): the profile →
 * classification pipeline in isolation, with hand-built commit traces
 * instead of simulator runs.
 *
 *  - Fig. 3/6 axis boundaries: the ro_ratio read/write threshold and
 *    the strict single_frac hint-dominance comparison.
 *  - Line granularity: words sharing a cache line share one profile
 *    entry (the map must use the LineTable's keys).
 *  - buildMap class rules: ReadOnly only for never-written lines,
 *    Reduction only for reduce-only lines wholly inside a declared
 *    range, Private only for hint-dominated written lines.
 *  - ClassificationMap save()/load() round-trip and rejection of
 *    malformed input.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/classifier.h"
#include "swarm/task.h"

using namespace ssim;
using namespace ssim::harness;

namespace {

// Trace entries are (wordAddr << 2) | op (swarm/task.h); op 0=read
// 1=write 2=reduce.
uint64_t
enc(Addr byteAddr, uint64_t op)
{
    return ((byteAddr >> 3) << 2) | op;
}

// A committed task for onCommit(): only uid/hint/nargs/trace matter.
Task
mkTask(uint64_t uid, uint64_t hint, std::vector<uint64_t> trace,
       uint8_t nargs = 0)
{
    Task t;
    t.uid = uid;
    t.hint = hint;
    t.noHint = false;
    t.nargs = nargs;
    t.trace = std::move(trace);
    return t;
}

// Distinct line-aligned byte addresses (64 B lines).
constexpr Addr kLineA = 0x10000;
constexpr Addr kLineB = 0x10040;
constexpr Addr kLineC = 0x10080;

} // namespace

TEST(Classifier, EmptyProfileIsEmpty)
{
    AccessClassifier cls;
    auto r = cls.classify();
    EXPECT_EQ(r.totalAccesses, 0u);
    EXPECT_EQ(r.arguments, 0.0);
    EXPECT_TRUE(cls.buildMap().empty());
}

TEST(Classifier, LineGranularityMergesWordsOfOneLine)
{
    AccessClassifier cls;
    // Two different words of line A, one word of line B — all
    // read-only. The map must key by line: exactly two entries.
    cls.onCommit(mkTask(1, 7,
                        {enc(kLineA, 0), enc(kLineA + 24, 0),
                         enc(kLineB + 8, 0)}));
    ClassificationMap map = cls.buildMap();
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.lines.at(lineOf(kLineA)), LineClass::ReadOnly);
    EXPECT_EQ(map.lines.at(lineOf(kLineB)), LineClass::ReadOnly);
}

TEST(Classifier, ReadOnlyRequiresStrictlyNoWrites)
{
    AccessClassifier cls(/*ro_ratio=*/2);
    // Line A: 1000 reads, one write. Passes the Fig. 3 ro_ratio axis
    // easily, but buildMap's ReadOnly is stricter (a single runtime
    // write would demote it immediately): written lines never qualify.
    std::vector<uint64_t> tr(1000, enc(kLineA, 0));
    tr.push_back(enc(kLineA, 1));
    cls.onCommit(mkTask(1, 7, tr));
    auto r = cls.classify();
    EXPECT_GT(r.singleHintRO, 0.0); // ratio axis: read-only
    EXPECT_EQ(cls.buildMap().count(LineClass::ReadOnly), 0u);
}

TEST(Classifier, RoRatioBoundary)
{
    // ro if reads >= ro_ratio * writes: 10 reads / 1 write at ratio 10
    // is read-only; 9 reads / 1 write is not.
    for (uint64_t reads : {10u, 9u}) {
        AccessClassifier cls(/*ro_ratio=*/10);
        std::vector<uint64_t> tr(reads, enc(kLineA, 0));
        tr.push_back(enc(kLineA, 1));
        cls.onCommit(mkTask(1, 7, tr));
        auto r = cls.classify();
        if (reads == 10) {
            EXPECT_GT(r.singleHintRO, 0.0);
            EXPECT_EQ(r.singleHintRW, 0.0);
        } else {
            EXPECT_EQ(r.singleHintRO, 0.0);
            EXPECT_GT(r.singleHintRW, 0.0);
        }
    }
}

TEST(Classifier, SingleFracBoundaryIsStrict)
{
    // single iff maxHint > single_frac * total (strict): at
    // single_frac=0.9 with 10 accesses, 9-from-one-hint is NOT
    // single-hint (9 > 9 fails), 10-from-one-hint is.
    AccessClassifier nine(/*ro_ratio=*/100, /*single_frac=*/0.9);
    std::vector<uint64_t> tr9(9, enc(kLineA, 0));
    nine.onCommit(mkTask(1, 7, tr9));
    nine.onCommit(mkTask(2, 8, {enc(kLineA, 0)}));
    EXPECT_GT(nine.classify().multiHintRO, 0.0);
    EXPECT_EQ(nine.classify().singleHintRO, 0.0);

    AccessClassifier ten(/*ro_ratio=*/100, /*single_frac=*/0.9);
    std::vector<uint64_t> tr10(10, enc(kLineA, 0));
    ten.onCommit(mkTask(1, 7, tr10));
    EXPECT_GT(ten.classify().singleHintRO, 0.0);
    EXPECT_EQ(ten.classify().multiHintRO, 0.0);
}

TEST(Classifier, PrivateRequiresHintDominance)
{
    AccessClassifier cls(/*ro_ratio=*/100, /*single_frac=*/0.9);
    // Line A: written, all accesses from hint 7 → Private.
    cls.onCommit(mkTask(1, 7, {enc(kLineA, 0), enc(kLineA, 1)}));
    // Line B: written, split across two hints → untracked (absent).
    cls.onCommit(mkTask(2, 7, {enc(kLineB, 1)}));
    cls.onCommit(mkTask(3, 8, {enc(kLineB, 1)}));
    ClassificationMap map = cls.buildMap();
    EXPECT_EQ(map.lines.at(lineOf(kLineA)), LineClass::Private);
    EXPECT_EQ(map.lines.count(lineOf(kLineB)), 0u);
}

TEST(Classifier, ReductionRequiresDeclaredRange)
{
    AccessClassifier cls;
    // Three reduce-only lines from different hints (so Private can't
    // absorb them): A inside the declared range, B outside, C inside
    // but also plainly written.
    cls.onCommit(mkTask(1, 7,
                        {enc(kLineA, 2), enc(kLineB, 2), enc(kLineC, 2)}));
    cls.onCommit(mkTask(2, 8,
                        {enc(kLineA, 2), enc(kLineB, 2), enc(kLineC, 1)}));
    std::vector<ReductionRange> ranges = {
        {kLineA, lineBytes}, {kLineC, lineBytes}};
    ClassificationMap map = cls.buildMap(ranges);
    EXPECT_EQ(map.lines.at(lineOf(kLineA)), LineClass::Reduction);
    EXPECT_EQ(map.lines.count(lineOf(kLineB)), 0u); // undeclared
    EXPECT_EQ(map.lines.count(lineOf(kLineC)), 0u); // plainly written
}

TEST(Classifier, ReductionRangeMustCoverWholeLine)
{
    AccessClassifier cls;
    cls.onCommit(mkTask(1, 7, {enc(kLineA, 2)}));
    cls.onCommit(mkTask(2, 8, {enc(kLineA, 2)}));
    // A range covering only half the line is not enough: the fold
    // would touch bytes the app never declared.
    std::vector<ReductionRange> half = {{kLineA, lineBytes / 2}};
    EXPECT_EQ(cls.buildMap(half).count(LineClass::Reduction), 0u);
    std::vector<ReductionRange> full = {{kLineA, lineBytes}};
    EXPECT_EQ(cls.buildMap(full).count(LineClass::Reduction), 1u);
}

TEST(Classifier, ArgumentAccessesAreBucketedSeparately)
{
    AccessClassifier cls;
    cls.onCommit(mkTask(1, 7, {enc(kLineA, 0)}, /*nargs=*/3));
    auto r = cls.classify();
    EXPECT_EQ(r.totalAccesses, 4u);
    EXPECT_DOUBLE_EQ(r.arguments, 0.75);
    double sum = r.arguments + r.multiHintRO + r.singleHintRO +
                 r.multiHintRW + r.singleHintRW;
    EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Classifier, MapSaveLoadRoundTrip)
{
    ClassificationMap map;
    map.lines[lineOf(kLineA)] = LineClass::ReadOnly;
    map.lines[lineOf(kLineB)] = LineClass::Private;
    map.lines[lineOf(kLineC)] = LineClass::Reduction;

    std::string path =
        testing::TempDir() + "/classifier_roundtrip.map";
    ASSERT_TRUE(map.save(path));

    ClassificationMap loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.lines, map.lines);

    // Malformed input: load fails and leaves the map untouched.
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a classification map\n", f);
    std::fclose(f);
    EXPECT_FALSE(loaded.load(path));
    EXPECT_EQ(loaded.lines, map.lines);
    // Malformed address token: must not silently classify line 0.
    f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("zz ro\n", f);
    std::fclose(f);
    EXPECT_FALSE(loaded.load(path));
    EXPECT_EQ(loaded.lines, map.lines);
    EXPECT_FALSE(loaded.load(path + ".does-not-exist"));
    std::remove(path.c_str());
}
