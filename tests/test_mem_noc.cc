/**
 * @file
 * Unit tests for the cache hierarchy, directory coherence, and the mesh
 * NoC model.
 */
#include <gtest/gtest.h>

#include "mem/cache_array.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"

using namespace ssim;

namespace {

SimConfig
cfg16()
{
    return SimConfig::withCores(16); // 4 tiles, 2x2 mesh
}

} // namespace

TEST(CacheArray, HitMissAndLru)
{
    CacheArray c(/*size=*/8 * lineBytes, /*ways=*/2); // 4 sets x 2 ways
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.lookup(0x100), nullptr);
    EXPECT_FALSE(c.insert(0x100).has_value());
    EXPECT_NE(c.lookup(0x100), nullptr);

    // Fill the set of 0x100 (same set: line % 4 equal).
    LineAddr same_set = 0x100 + 4;
    c.insert(same_set);
    c.lookup(0x100); // make 0x100 MRU
    auto victim = c.insert(0x100 + 8);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, same_set); // LRU evicted
    EXPECT_NE(c.lookup(0x100), nullptr);
}

TEST(CacheArray, InvalidateAndState)
{
    CacheArray c(16 * lineBytes, 4);
    c.insert(0x42, /*state=*/3);
    auto* st = c.lookup(0x42);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(*st, 3);
    *st = 7;
    auto inv = c.invalidate(0x42);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(*inv, 7);
    EXPECT_EQ(c.lookup(0x42), nullptr);
    EXPECT_FALSE(c.invalidate(0x42).has_value());
}

TEST(Mesh, XyLatencyAndHops)
{
    SimConfig cfg = SimConfig::withCores(256); // 8x8 mesh
    Mesh m(cfg);
    EXPECT_EQ(m.dim(), 8u);
    EXPECT_EQ(m.latency(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 7), 7u);        // straight along x
    EXPECT_EQ(m.latency(0, 7), 7u);     // 1 cycle/hop, no turn
    EXPECT_EQ(m.hops(0, 56), 7u);       // straight along y
    EXPECT_EQ(m.latency(0, 63), 14 + 1u); // 14 hops + 1 turn penalty
}

TEST(Mesh, TrafficAccounting)
{
    Mesh m(cfg16());
    m.inject(0, 1, 5, TrafficClass::MemAcc);
    m.inject(0, 0, 5, TrafficClass::MemAcc); // intra-tile: free
    m.inject(1, 2, 3, TrafficClass::Task);
    m.injectRaw(2, TrafficClass::Gvt);
    EXPECT_EQ(m.flitsOf(TrafficClass::MemAcc), 5u);
    EXPECT_EQ(m.flitsOf(TrafficClass::Task), 3u);
    EXPECT_EQ(m.flitsOf(TrafficClass::Gvt), 2u);
    EXPECT_EQ(m.flitsOf(TrafficClass::Abort), 0u);
}

class MemSystem : public testing::Test
{
  protected:
    MemSystem() : cfg(cfg16()), mesh(cfg), mem(cfg, mesh, stats) {}

    SimConfig cfg;
    Mesh mesh;
    SimStats stats;
    MemorySystem mem;
    uint64_t buf[64] = {};
};

TEST_F(MemSystem, L1HitAfterFill)
{
    Addr a = addrOf(&buf[0]);
    auto first = mem.access(0, a, false);
    EXPECT_GT(first.latency, cfg.l1Latency);
    EXPECT_TRUE(first.leftTile);
    auto second = mem.access(0, a, false);
    EXPECT_EQ(second.latency, cfg.l1Latency);
    EXPECT_FALSE(second.leftTile);
    EXPECT_EQ(stats.l1Hits, 1u);
    EXPECT_TRUE(mem.inL1(0, lineOf(a)));
    EXPECT_TRUE(mem.inL2(0, lineOf(a)));
    EXPECT_TRUE(mem.inL3(lineOf(a)));
}

TEST_F(MemSystem, WriteInvalidatesRemoteSharers)
{
    Addr a = addrOf(&buf[8]);
    LineAddr line = lineOf(a);
    // Cores 0 (tile 0) and 4 (tile 1) read the line: both share it.
    mem.access(0, a, false);
    mem.access(4, a, false);
    EXPECT_EQ(__builtin_popcountll(mem.sharerMask(line)), 2);
    // Core 8 (tile 2) writes: all other copies invalidated.
    mem.access(8, a, true);
    EXPECT_EQ(mem.sharerMask(line), uint64_t(1) << 2);
    EXPECT_FALSE(mem.inL1(0, line));
    EXPECT_FALSE(mem.inL2(0, line));
    EXPECT_FALSE(mem.inL2(1, line));
    EXPECT_TRUE(mem.inL2(2, line));
}

TEST_F(MemSystem, UpgradeOnSharedWrite)
{
    Addr a = addrOf(&buf[16]);
    mem.access(0, a, false); // tile 0 Shared
    mem.access(4, a, false); // tile 1 Shared
    uint64_t abortFlitsBefore = mesh.flitsOf(TrafficClass::MemAcc);
    auto up = mem.access(0, a, true); // upgrade
    EXPECT_TRUE(up.leftTile);
    EXPECT_GT(mesh.flitsOf(TrafficClass::MemAcc), abortFlitsBefore);
    // Subsequent writes from the same core hit in L1.
    auto w2 = mem.access(0, a, true);
    EXPECT_EQ(w2.latency, cfg.l1Latency);
}

TEST_F(MemSystem, DirtyDataForwardedBetweenTiles)
{
    Addr a = addrOf(&buf[24]);
    mem.access(0, a, true); // tile 0 Modified
    auto r = mem.access(12, a, false); // tile 3 reads: owner forwards
    EXPECT_TRUE(r.leftTile);
    uint64_t mask = mem.sharerMask(lineOf(a));
    EXPECT_EQ(mask, (1ull << 0) | (1ull << 3));
}

TEST_F(MemSystem, MissLatencyOrdering)
{
    // Memory > L3 > L2 > L1 latency ordering must hold.
    Addr a = addrOf(&buf[32]);
    auto mem_miss = mem.access(0, a, false); // cold: memory
    auto l1_hit = mem.access(0, a, false);
    EXPECT_GT(mem_miss.latency, cfg.memLatency);
    EXPECT_EQ(l1_hit.latency, cfg.l1Latency);
    // Another core in the same tile: L1 miss, L2 hit.
    auto l2_hit = mem.access(1, a, false);
    EXPECT_EQ(l2_hit.latency, cfg.l1Latency + cfg.l2Latency);
    // A remote tile: L3 hit, longer than an L2 hit.
    auto l3_hit = mem.access(4, a, false);
    EXPECT_GT(l3_hit.latency, l2_hit.latency);
    EXPECT_LT(l3_hit.latency, mem_miss.latency);
}

TEST_F(MemSystem, HomeDistribution)
{
    // Static NUCA interleaving spreads lines across all 4 tiles.
    std::array<int, 4> count{};
    for (LineAddr l = 0; l < 4096; l++)
        count[mem.homeOf(l)]++;
    for (int c : count)
        EXPECT_GT(c, 700);
}
