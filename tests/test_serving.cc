/**
 * @file
 * Serving-harness tests (harness/serving.h, docs/serving.md):
 *
 *  - LatencyRecorder percentiles against a sorted-vector reference
 *    (exact below the linear range, within one log-bucket above it).
 *  - Property tests for the seeded generators: Zipfian weights
 *    (reproducibility, rank-frequency monotonicity, s = 0 uniform
 *    degeneration) and arrival streams (strictly increasing, mean
 *    inter-arrival near the configured mean).
 *  - The determinism lattice: one serving run's arrival trace,
 *    completion trace, latency histogram, and app result digest are
 *    bit-identical across host thread counts; the result digest also
 *    across engine backends.
 *  - Deadline-miss accounting.
 *  - Pinned golden result digests for the two serving-era apps
 *    (kvstore, pagerank) — value-based digests over pure integer math,
 *    so they are address- and platform-independent. Set
 *    SSIM_PRINT_DIGESTS=1 to print current values when updating.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "apps/app.h"
#include "apps/kvstore/zipf.h"
#include "base/rng.h"
#include "harness/classifier.h"
#include "harness/serving.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/classification.h"

using namespace ssim;
using namespace ssim::harness;

// ---- LatencyRecorder -------------------------------------------------------

namespace {

/// Nearest-rank percentile on the raw samples (the reference).
uint64_t
refPercentile(std::vector<uint64_t> v, uint32_t permille)
{
    std::sort(v.begin(), v.end());
    uint64_t rank = (v.size() * permille + 999) / 1000;
    if (rank < 1)
        rank = 1;
    return v[rank - 1];
}

} // namespace

TEST(ServingLatency, ExactPercentilesBelowLinearRange)
{
    LatencyRecorder rec;
    std::vector<uint64_t> samples;
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        uint64_t v = rng.next() % 64;
        rec.record(v);
        samples.push_back(v);
    }
    for (uint32_t pm : {100u, 500u, 900u, 990u, 999u})
        EXPECT_EQ(rec.percentile(pm), refPercentile(samples, pm)) << pm;
    EXPECT_EQ(rec.count(), 1000u);
}

TEST(ServingLatency, LogBucketsTrackReferenceWithinTolerance)
{
    LatencyRecorder rec;
    std::vector<uint64_t> samples;
    Rng rng(11);
    for (int i = 0; i < 5000; i++) {
        // Log-uniform over ~6 decades, the shape of a latency tail.
        uint64_t v = (rng.next() % 1000 + 1) << (rng.next() % 20);
        rec.record(v);
        samples.push_back(v);
    }
    for (uint32_t pm : {500u, 990u, 999u}) {
        uint64_t got = rec.percentile(pm);
        uint64_t ref = refPercentile(samples, pm);
        // The bucket's upper bound is >= the sample and within one
        // sub-bucket width (1/64 of an octave, < 1.6%) above it.
        EXPECT_GE(got, ref) << pm;
        EXPECT_LE(got, ref + ref / 32) << pm;
    }
    EXPECT_EQ(rec.percentile(1000), rec.maxValue());
}

TEST(ServingLatency, DigestReflectsBucketCountsOnly)
{
    LatencyRecorder a, b, c;
    for (uint64_t v : {3u, 700u, 700u, 1u << 20})
        a.record(v);
    for (uint64_t v : {700u, 1u << 20, 3u, 700u}) // order-invariant
        b.record(v);
    for (uint64_t v : {3u, 700u, 701u, 1u << 20}) // 701: same bucket
        c.record(v);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.digest(), c.digest());
    a.record(5);
    EXPECT_NE(a.digest(), b.digest());
}

// ---- Zipfian generator -----------------------------------------------------

TEST(ServingZipf, SeededSamplingIsReproducible)
{
    apps::ZipfGenerator z(1024, int64_t(0.99 * (1ll << 32)));
    Rng r1(42), r2(42);
    for (int i = 0; i < 2000; i++) {
        uint64_t u = r1.next();
        EXPECT_EQ(r2.next(), u);
        uint32_t k = z.sample(u);
        EXPECT_EQ(z.sample(u), k);
        EXPECT_LT(k, 1024u);
    }
}

TEST(ServingZipf, WeightsAreRankMonotone)
{
    apps::ZipfGenerator z(4096, int64_t(0.99 * (1ll << 32)));
    for (uint32_t j = 1; j < z.n(); j++)
        EXPECT_LE(z.weightQ32(j), z.weightQ32(j - 1)) << j;
    // Heavy head: rank 1 outweighs rank 100 by ~100^0.99.
    EXPECT_GT(z.weightQ32(0), 50 * z.weightQ32(99));
}

TEST(ServingZipf, ZeroSkewDegeneratesToUniform)
{
    apps::ZipfGenerator z(256, 0);
    for (uint32_t j = 0; j < z.n(); j++)
        EXPECT_EQ(z.weightQ32(j), uint64_t(1) << 32) << j;
    // Scaled-multiply sampling then maps draws uniformly: key k needs
    // u in [k/n, (k+1)/n) of the 64-bit space.
    EXPECT_EQ(z.sample(0), 0u);
    EXPECT_EQ(z.sample(~uint64_t(0)), 255u);
    EXPECT_EQ(z.sample(uint64_t(1) << 63), 128u);
}

TEST(ServingZipf, SkewConcentratesMassOnHotKeys)
{
    apps::ZipfGenerator z(1024, int64_t(0.99 * (1ll << 32)));
    Rng rng(3);
    uint64_t hot = 0, total = 20000;
    for (uint64_t i = 0; i < total; i++)
        if (z.sample(rng.next()) < 16)
            hot++;
    // s=0.99 over 1024 keys puts roughly half the mass on the top 16;
    // uniform would put 16/1024 = 1.6% there.
    EXPECT_GT(hot, total / 4);
    EXPECT_LT(hot, total * 3 / 4);
}

// ---- Arrival streams -------------------------------------------------------

TEST(ServingArrivals, StrictlyIncreasingAndSeedDeterministic)
{
    for (auto kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                      ArrivalKind::Bursty}) {
        auto a = generateArrivals(kind, 500, 300, 9);
        auto b = generateArrivals(kind, 500, 300, 9);
        EXPECT_EQ(a, b) << arrivalKindName(kind);
        for (size_t i = 1; i < a.size(); i++)
            EXPECT_GT(a[i], a[i - 1]) << arrivalKindName(kind);
        EXPECT_GT(a[0], 0u);
        if (kind != ArrivalKind::Uniform) {
            EXPECT_NE(a, generateArrivals(kind, 500, 300, 10))
                << arrivalKindName(kind);
        }
    }
}

TEST(ServingArrivals, MeanInterArrivalNearConfiguredMean)
{
    constexpr uint64_t kMean = 400, kReqs = 20000;
    for (auto kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                      ArrivalKind::Bursty}) {
        auto a = generateArrivals(kind, kReqs, kMean, 17);
        uint64_t meanGap = a.back() / kReqs;
        // Exponential gaps at this sample size land within ~5%.
        EXPECT_GT(meanGap, kMean - kMean / 10) << arrivalKindName(kind);
        EXPECT_LT(meanGap, kMean + kMean / 10) << arrivalKindName(kind);
    }
}

TEST(ServingArrivals, BurstyAlternatesHotAndColdPhases)
{
    auto a = generateArrivals(ArrivalKind::Bursty, 320, 1000, 5);
    // Average gap inside the first (hot) 16-request phase should be
    // well below the first cold phase's.
    uint64_t hotSpan = a[15] - a[0];
    uint64_t coldSpan = a[31] - a[16];
    EXPECT_LT(hotSpan * 2, coldSpan);
}

// ---- End-to-end serving determinism ----------------------------------------

namespace {

ServingResult
serve(apps::App& app, const char* backend, uint32_t threads,
      const ServingConfig& scfg)
{
    SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
    cfg.engineBackend = backend;
    cfg.hostThreads = threads;
    return serveOnce(app, cfg, scfg);
}

} // namespace

TEST(Serving, TraceHistogramAndResultsAreHostThreadInvariant)
{
    for (const char* name : {"silo", "kvstore"}) {
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = apps::Preset::Tiny;
        app->setup(p);
        ServingConfig scfg; // poisson, mean gap 500, seed 1

        for (const char* backend : {"timing", "functional"}) {
            ServingResult ref = serve(*app, backend, 1, scfg);
            EXPECT_TRUE(ref.valid) << name << "/" << backend;
            EXPECT_EQ(ref.latency.count(), ref.requests);
            for (uint32_t threads : {2u, 8u}) {
                ServingResult r = serve(*app, backend, threads, scfg);
                EXPECT_EQ(r.arrivalDigest, ref.arrivalDigest)
                    << name << "/" << backend << " t" << threads;
                EXPECT_EQ(r.traceDigest, ref.traceDigest)
                    << name << "/" << backend << " t" << threads;
                EXPECT_EQ(r.latency.digest(), ref.latency.digest())
                    << name << "/" << backend << " t" << threads;
                EXPECT_EQ(r.resultDigest, ref.resultDigest)
                    << name << "/" << backend << " t" << threads;
                EXPECT_EQ(r.cycles, ref.cycles)
                    << name << "/" << backend << " t" << threads;
                EXPECT_TRUE(r.valid) << name << "/" << backend;
            }
        }
    }
}

TEST(Serving, ResultDigestMatchesClosedLoopAndBothBackends)
{
    for (const char* name : {"silo", "kvstore"}) {
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = apps::Preset::Tiny;
        app->setup(p);

        // Closed-loop reference run.
        app->reset();
        SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
        Machine m(cfg);
        app->enqueueInitial(m);
        m.run();
        ASSERT_TRUE(app->validate()) << name;
        uint64_t closed = app->resultDigest();

        ServingConfig scfg;
        EXPECT_EQ(serve(*app, "timing", 1, scfg).resultDigest, closed)
            << name << ": serving changed the computed results";
        EXPECT_EQ(serve(*app, "functional", 1, scfg).resultDigest, closed)
            << name;
    }
}

TEST(Serving, ArrivalShapesAndSeedsChangeTimingNotResults)
{
    auto app = apps::makeApp("kvstore");
    apps::AppParams p;
    p.preset = apps::Preset::Tiny;
    app->setup(p);

    ServingConfig base;
    ServingResult ref = serve(*app, "timing", 1, base);

    ServingConfig burst = base;
    burst.arrivals = ArrivalKind::Bursty;
    ServingResult b = serve(*app, "timing", 1, burst);
    EXPECT_NE(b.arrivalDigest, ref.arrivalDigest);
    EXPECT_EQ(b.resultDigest, ref.resultDigest);

    ServingConfig reseeded = base;
    reseeded.seed = 99;
    ServingResult s = serve(*app, "timing", 1, reseeded);
    EXPECT_NE(s.arrivalDigest, ref.arrivalDigest);
    EXPECT_EQ(s.resultDigest, ref.resultDigest);
}

TEST(Serving, DeadlineMissAccounting)
{
    auto app = apps::makeApp("kvstore");
    apps::AppParams p;
    p.preset = apps::Preset::Tiny;
    app->setup(p);

    ServingConfig scfg;
    scfg.deadlineCycles = 1; // nothing completes in one cycle
    ServingResult all = serve(*app, "timing", 1, scfg);
    EXPECT_EQ(all.deadlineMisses, all.requests);

    scfg.deadlineCycles = 0; // disabled
    EXPECT_EQ(serve(*app, "timing", 1, scfg).deadlineMisses, 0u);

    scfg.deadlineCycles = all.latency.maxValue(); // everything makes it
    EXPECT_EQ(serve(*app, "timing", 1, scfg).deadlineMisses, 0u);

    scfg.deadlineCycles = all.p50; // the tail misses, the median makes it
    ServingResult half = serve(*app, "timing", 1, scfg);
    EXPECT_GT(half.deadlineMisses, 0u);
    EXPECT_LE(half.deadlineMisses, half.requests / 2);
}

// ---- The full invariance grid for the serving-era apps ---------------------

// kvstore and pagerank join the all-goldens lattice: backends ×
// hostThreads {1, 2, 8} × conc-conflicts × parallel-replay × classify.
// Every cell must validate against the host oracle (memcmp) and produce
// the same result digest as the serial timing run with everything off.
TEST(Serving, NewAppsPassFullInvarianceGrid)
{
    for (const char* name : {"kvstore", "pagerank"}) {
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = apps::Preset::Tiny;
        p.seed = 42;
        app->setup(p);

        auto runCell = [&](const char* backend, uint32_t threads,
                           bool conc, bool replay,
                           std::shared_ptr<ClassificationMap> map,
                           std::shared_ptr<const TraceData> trace =
                               nullptr) {
            app->reset();
            SimConfig cfg =
                SimConfig::withCores(16, SchedulerType::Hints, 42);
            cfg.engineBackend = backend;
            cfg.hostThreads = threads;
            cfg.concurrentConflicts = conc;
            cfg.parallelReplay = replay;
            cfg.traceData = std::move(trace);
            if (map) {
                cfg.classifyMode = "profile";
                cfg.classifyMap = map;
            }
            Machine m(cfg);
            app->enqueueInitial(m);
            m.run();
            EXPECT_TRUE(app->validate())
                << name << "/" << backend << " t" << threads
                << (conc ? " conc" : "") << (replay ? " replay" : "")
                << (map ? " classify" : "");
            return app->resultDigest();
        };

        // Profile once (serial timing, classification off) to build the
        // map every classified cell consumes.
        harness::AccessClassifier cls;
        app->reset();
        SimConfig profCfg =
            SimConfig::withCores(16, SchedulerType::Hints, 42);
        Machine pm(profCfg);
        pm.setProfiler(&cls);
        app->enqueueInitial(pm);
        pm.run();
        ASSERT_TRUE(app->validate()) << name;
        uint64_t ref = app->resultDigest();
        auto map = std::make_shared<ClassificationMap>(
            cls.buildMap(app->reductionRanges()));

        // Record one cost trace per app (timing-delegating record run;
        // its results must already match the reference) so the
        // trace-replay column of the grid replays a real trace.
        auto sink = std::make_shared<TraceData>();
        app->reset();
        SimConfig recCfg =
            SimConfig::withCores(16, SchedulerType::Hints, 42);
        recCfg.engineBackend = "trace-record";
        recCfg.traceSink = sink;
        Machine rm(recCfg);
        app->enqueueInitial(rm);
        rm.run();
        ASSERT_TRUE(app->validate()) << name << "/trace-record";
        ASSERT_EQ(app->resultDigest(), ref) << name << "/trace-record";
        sink->recordResultDigest = ref;

        for (const char* backend :
             {"timing", "functional", "trace-replay"})
            for (uint32_t threads : {1u, 2u, 8u})
                for (bool conc : {false, true})
                    for (bool replay : {false, true})
                        for (bool classify : {false, true})
                            EXPECT_EQ(runCell(backend, threads, conc,
                                              replay,
                                              classify ? map : nullptr,
                                              std::string(backend) ==
                                                      "trace-replay"
                                                  ? sink
                                                  : nullptr),
                                      ref)
                                << name << "/" << backend << " t"
                                << threads << " conc=" << conc
                                << " replay=" << replay
                                << " classify=" << classify;
    }
}

// ---- Golden result digests for the serving-era apps ------------------------

TEST(Serving, GoldenResultDigests)
{
    // Value-based digests (no addresses), pure integer math: stable
    // across platforms, schedulers, backends, and host threads. These
    // pin the WORKLOAD SEMANTICS — a change here means the generated
    // ops/graph or the computation itself changed, not the simulator.
    struct Golden
    {
        const char* app;
        uint64_t digest;
    };
    const Golden kGoldens[] = {
        {"kvstore", 0xa27ff421aa3fc942ull},
        {"pagerank", 0x568daa22e6296b37ull},
    };
    for (const Golden& g : kGoldens) {
        auto app = apps::makeApp(g.app);
        apps::AppParams p;
        p.preset = apps::Preset::Tiny;
        p.seed = 42;
        app->setup(p);
        app->reset();
        SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
        Machine m(cfg);
        app->enqueueInitial(m);
        m.run();
        ASSERT_TRUE(app->validate()) << g.app;
        uint64_t d = app->resultDigest();
        if (getenv("SSIM_PRINT_DIGESTS"))
            printf("golden %s: 0x%016llxull\n", g.app,
                   (unsigned long long)d);
        EXPECT_EQ(d, g.digest) << g.app;
    }
}
