/**
 * @file
 * End-to-end smoke tests of the Machine: tiny task programs must run to
 * completion, produce serially-equivalent results, and report sane stats.
 */
#include <gtest/gtest.h>

#include "swarm/machine.h"

using namespace ssim;

namespace {

struct CounterState
{
    uint64_t value = 0;
    uint64_t order[16] = {};
    uint64_t idx = 0;
};

swarm::TaskCoro
incTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<CounterState>(args[0]);
    uint64_t v = co_await ctx.read(&st->value);
    co_await ctx.write(&st->value, v + 1);
    uint64_t i = co_await ctx.read(&st->idx);
    co_await ctx.write(&st->order[i], ts);
    co_await ctx.write(&st->idx, i + 1);
}

swarm::TaskCoro
spawnerTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<CounterState>(args[0]);
    uint64_t n = args[1];
    for (uint64_t i = 0; i < n; i++)
        co_await ctx.enqueue(incTask, ts + 1 + i, swarm::cacheLine(st), st);
}

} // namespace

TEST(Smoke, SingleTaskRuns)
{
    SimConfig cfg = SimConfig::withCores(1, SchedulerType::Hints);
    Machine m(cfg);
    CounterState st;
    m.enqueueInitial(incTask, 0, swarm::cacheLine(&st), &st);
    m.run();
    EXPECT_EQ(st.value, 1u);
    EXPECT_EQ(m.stats().tasksCommitted, 1u);
    EXPECT_GT(m.stats().cycles, 0u);
}

TEST(Smoke, TasksAppearInTimestampOrder)
{
    for (auto sched : {SchedulerType::Random, SchedulerType::Stealing,
                       SchedulerType::Hints, SchedulerType::LBHints}) {
        SimConfig cfg = SimConfig::withCores(8, sched);
        Machine m(cfg);
        CounterState st;
        m.enqueueInitial(spawnerTask, 0, swarm::Hint(0), &st, uint64_t(12));
        m.run();
        EXPECT_EQ(st.value, 12u) << schedulerName(sched);
        EXPECT_EQ(st.idx, 12u);
        // All tasks write the shared counter; commit order must equal
        // timestamp order regardless of speculation.
        for (uint64_t i = 0; i < 12; i++)
            EXPECT_EQ(st.order[i], i + 1) << schedulerName(sched);
        EXPECT_EQ(m.stats().tasksCommitted, 13u);
    }
}

TEST(Smoke, DeterministicAcrossRuns)
{
    auto once = [] {
        SimConfig cfg = SimConfig::withCores(16, SchedulerType::Random, 7);
        Machine m(cfg);
        CounterState st;
        m.enqueueInitial(spawnerTask, 0, swarm::Hint(0), &st, uint64_t(10));
        m.run();
        return m.stats().cycles;
    };
    EXPECT_EQ(once(), once());
}
