/**
 * @file
 * Integration tests: every benchmark, at the tiny preset, must validate
 * against its host-native oracle under every scheduler and at several
 * core counts — the order-equivalence property (DESIGN.md §5.1) applied
 * to the real applications.
 */
#include <gtest/gtest.h>

#include "apps/app.h"
#include "apps/serial_machine.h"

using namespace ssim;
using namespace ssim::apps;

namespace {

struct Case
{
    std::string app;
    bool fg;
    SchedulerType sched;
    uint32_t cores;
};

std::string
caseName(const testing::TestParamInfo<Case>& info)
{
    const Case& c = info.param;
    return c.app + (c.fg ? "FG" : "") + "_" +
           schedulerName(c.sched) + "_" + std::to_string(c.cores) + "c";
}

class AppRun : public testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(AppRun, ValidatesAgainstOracle)
{
    const Case& c = GetParam();
    auto app = makeApp(c.app, c.fg);
    AppParams params;
    params.preset = Preset::Tiny;
    app->setup(params);

    app->reset();
    SimConfig cfg = SimConfig::withCores(c.cores, c.sched);
    Machine m(cfg);
    app->enqueueInitial(m);
    m.run();

    EXPECT_TRUE(app->validate())
        << c.app << " under " << schedulerName(c.sched) << " @ "
        << c.cores << " cores";
    EXPECT_GT(m.stats().tasksCommitted, 0u);
    EXPECT_GT(m.stats().cycles, 0u);
}

namespace {

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto& name : appNames()) {
        for (auto sched :
             {SchedulerType::Random, SchedulerType::Stealing,
              SchedulerType::Hints, SchedulerType::LBHints}) {
            for (uint32_t cores : {1u, 16u}) {
                cases.push_back({name, false, sched, cores});
            }
        }
    }
    // FG variants under Hints (the pairing the paper evaluates most).
    for (const auto& name : fineGrainAppNames()) {
        cases.push_back({name, true, SchedulerType::Hints, 16});
        cases.push_back({name, true, SchedulerType::Random, 16});
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllApps, AppRun, testing::ValuesIn(allCases()),
                         caseName);

TEST(SerialRefs, AllAppsSerialRunAndValidate)
{
    for (const auto& name : appNames()) {
        auto app = makeApp(name);
        AppParams params;
        params.preset = Preset::Tiny;
        app->setup(params);
        SerialMachine sm;
        uint64_t cycles = app->serialCycles(sm);
        EXPECT_GT(cycles, 0u) << name;
    }
}
