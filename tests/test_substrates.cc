/**
 * @file
 * Unit tests for the application substrates: graphs and oracles, the
 * circuit model, the NoC router model, B+-trees, the TPC-C database, and
 * the harness classifier/report layers.
 */
#include <gtest/gtest.h>

#include "apps/des/circuit.h"
#include "apps/graph.h"
#include "apps/nocsim/nocmodel.h"
#include "apps/serial_machine.h"
#include "apps/silo/btree.h"
#include "apps/silo/tpcc.h"
#include "harness/classifier.h"
#include "harness/report.h"

using namespace ssim;
using namespace ssim::apps;

// ---- Graph substrate ---------------------------------------------------------

TEST(Graph, GridRoadStructure)
{
    Rng rng(1);
    Graph g = gridRoad(10, 8, rng);
    EXPECT_EQ(g.n, 80u);
    EXPECT_EQ(g.offsets.size(), 81u);
    EXPECT_GT(g.numEdges(), 2 * (9 * 8 + 10 * 7) - 1u); // undirected x2
    // Symmetry: every edge appears in both directions.
    for (uint32_t v = 0; v < g.n; v++) {
        for (uint32_t u : g.neigh(v)) {
            auto nb = g.neigh(u);
            EXPECT_NE(std::find(nb.begin(), nb.end(), v), nb.end());
        }
    }
    EXPECT_EQ(g.xs.size(), g.n);
}

TEST(Graph, AstarHeuristicIsConsistent)
{
    Rng rng(2);
    Graph g = gridRoad(12, 12, rng);
    uint32_t dst = g.n - 1;
    // h(v) <= w(v,u) + h(u) for every edge (consistency), so A* ordered
    // by f = g + h settles vertices at their shortest distance.
    for (uint32_t v = 0; v < g.n; v++) {
        for (uint64_t i = g.offsets[v]; i < g.offsets[v + 1]; i++) {
            uint32_t u = g.neighbors[i];
            EXPECT_LE(astarHeuristic(g, v, dst),
                      g.weights[i] + astarHeuristic(g, u, dst))
                << "inconsistent at edge " << v << "->" << u;
        }
    }
    EXPECT_EQ(astarHeuristic(g, dst, dst), 0u);
}

TEST(Graph, OraclesAgree)
{
    Rng rng(3);
    Graph g = gridRoad(15, 15, rng);
    auto bfs = bfsOracle(g, 0);
    auto dij = dijkstraOracle(g, 0);
    // Fully connected grid: everything reached; dijkstra >= bfs level
    // (weights >= 1).
    for (uint32_t v = 0; v < g.n; v++) {
        EXPECT_NE(bfs[v], kUnreached);
        EXPECT_GE(dij[v], bfs[v]);
    }
    EXPECT_EQ(dij[0], 0u);
}

TEST(Graph, RmatIsPowerLawish)
{
    Rng rng(4);
    Graph g = rmat(2000, 8, rng);
    EXPECT_EQ(g.n, 2000u);
    uint32_t maxDeg = 0;
    uint64_t degSum = 0;
    for (uint32_t v = 0; v < g.n; v++) {
        maxDeg = std::max(maxDeg, g.degree(v));
        degSum += g.degree(v);
    }
    double avg = double(degSum) / g.n;
    EXPECT_GT(maxDeg, uint32_t(8 * avg)); // heavy tail
}

TEST(Graph, LdfColoringProper)
{
    Rng rng(5);
    Graph g = rmat(500, 6, rng);
    auto rank = ldfRank(g);
    auto color = greedyColorOracle(g, rank);
    EXPECT_TRUE(isProperColoring(g, color));
    // LDF rank is a permutation.
    std::vector<bool> seen(g.n, false);
    for (uint32_t r : rank) {
        ASSERT_LT(r, g.n);
        EXPECT_FALSE(seen[r]);
        seen[r] = true;
    }
}

// ---- Circuit substrate ---------------------------------------------------------

TEST(Circuit, GateEval)
{
    EXPECT_TRUE(evalGate(GateType::And, 0b11, 2));
    EXPECT_FALSE(evalGate(GateType::And, 0b01, 2));
    EXPECT_TRUE(evalGate(GateType::Or, 0b10, 2));
    EXPECT_TRUE(evalGate(GateType::Xor, 0b10, 2));
    EXPECT_FALSE(evalGate(GateType::Xor, 0b11, 2));
    EXPECT_TRUE(evalGate(GateType::Nand, 0b01, 2));
    EXPECT_TRUE(evalGate(GateType::Not, 0b0, 1));
    EXPECT_FALSE(evalGate(GateType::Not, 0b1, 1));
    EXPECT_TRUE(evalGate(GateType::Xnor, 0b11, 2));
}

TEST(Circuit, CsaArrayAddsCorrectly)
{
    // The generated carry-select adder must actually add: evalAll with
    // operand bits set computes a + b + cin on the sum outputs.
    Circuit c = csaArray(1, 8);
    EXPECT_GT(c.numGates(), 50u);
    ASSERT_EQ(c.inputGates.size(), 17u); // 8 a-bits, 8 b-bits, cin

    auto evalSum = [&](uint32_t a, uint32_t b, uint32_t cin) {
        std::vector<bool> in(17, false);
        for (int i = 0; i < 8; i++) {
            in[2 * i] = (a >> i) & 1;     // a bits (interleaved order)
            in[2 * i + 1] = (b >> i) & 1; // b bits
        }
        in[16] = cin;
        auto out = c.evalAll(in);
        // Mux outputs appear in bit order per 4-bit block; recover the
        // sum by re-simulating semantics: compare against a + b + cin
        // via the full evaluation of all gates -- we check the final
        // carry chain instead: the last mux output is the carry-out.
        uint32_t expect = a + b + cin;
        bool carryOut = out.back(); // final carry mux is the last gate
        return std::pair<bool, uint32_t>(carryOut, expect);
    };
    for (auto [a, b, cin] : std::vector<std::array<uint32_t, 3>>{
             {0, 0, 0}, {255, 1, 0}, {128, 128, 0}, {255, 255, 1}}) {
        auto [carry, expect] = evalSum(a, b, cin);
        EXPECT_EQ(carry, expect > 255)
            << a << "+" << b << "+" << cin;
    }
}

TEST(Circuit, WaveformsSortedWithinHorizon)
{
    Circuit c = csaArray(1, 4);
    Rng rng(6);
    auto waves = randomWaveforms(c, 100, 5.0, rng);
    EXPECT_EQ(waves.size(), c.inputGates.size());
    for (auto& w : waves) {
        EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
        for (uint64_t t : w) {
            EXPECT_GE(t, 1u);
            EXPECT_LE(t, 100u);
        }
    }
}

// ---- NoC router model -------------------------------------------------------------

TEST(NocModel, RoutingAndTopology)
{
    NocTopo t{4};
    EXPECT_EQ(t.route(0, 3), kEast);
    EXPECT_EQ(t.route(3, 0), kWest);
    EXPECT_EQ(t.route(0, 12), kSouth);
    EXPECT_EQ(t.route(12, 0), kNorth);
    EXPECT_EQ(t.route(5, 5), kLocal);
    // X before Y (dimension order).
    EXPECT_EQ(t.route(0, 15), kEast);
    EXPECT_EQ(t.neighbor(5, kEast), 6u);
    EXPECT_EQ(t.neighbor(5, kNorth), 1u);
    EXPECT_EQ(NocTopo::opposite(kEast), kWest);
    EXPECT_EQ(NocTopo::opposite(kNorth), kSouth);
    // Tornado destination stays on the same row, different column.
    for (uint32_t r = 0; r < 16; r++) {
        uint32_t d = t.tornadoDst(r);
        EXPECT_EQ(t.yOf(d), t.yOf(r));
        EXPECT_NE(t.xOf(d), t.xOf(r));
    }
}

TEST(NocModel, PackingRoundTrips)
{
    uint64_t f = flitPack(13, 100000, 7);
    EXPECT_EQ(flitDst(f), 13u);
    EXPECT_EQ(flitInject(f), 100000u);
    uint64_t m = metaPack(3, 5);
    EXPECT_EQ(metaHead(m), 3u);
    EXPECT_EQ(metaCount(m), 5u);
    uint64_t c = 0;
    for (uint32_t d = 0; d < 4; d++)
        c = creditsAdd(c, d, int(kBufDepth));
    EXPECT_EQ(creditsOf(c, 2), kBufDepth);
    c = creditsAdd(c, 2, -3);
    EXPECT_EQ(creditsOf(c, 2), kBufDepth - 3);
    EXPECT_EQ(creditsOf(c, 1), kBufDepth); // no cross-lane bleed
}

// ---- B+-tree and TPC-C ---------------------------------------------------------------

TEST(BTree, BuildAndLookup)
{
    std::vector<std::pair<uint64_t, uint64_t>> kv;
    for (uint64_t k = 0; k < 1000; k += 3)
        kv.emplace_back(k, k * 7 + 1);
    BTree t;
    t.build(kv);
    EXPECT_GE(t.height(), 2u);
    for (auto [k, v] : kv)
        EXPECT_EQ(t.lookupHost(k), v);
    EXPECT_EQ(t.lookupHost(1), 0u);    // absent
    EXPECT_EQ(t.lookupHost(9999), 0u); // beyond range
}

TEST(BTree, SingleLeaf)
{
    BTree t;
    t.build({{5, 50}, {6, 60}});
    EXPECT_EQ(t.height(), 1u);
    EXPECT_EQ(t.lookupHost(5), 50u);
    EXPECT_EQ(t.lookupHost(7), 0u);
}

TEST(Tpcc, HostApplyMaintainsInvariants)
{
    TpccConfig cfg;
    cfg.warehouses = 2;
    cfg.districtsPerWh = 4;
    cfg.items = 100;
    cfg.txns = 200;
    cfg.maxOrdersPerDistrict = 200;
    Rng rng(7);
    TpccDb db;
    db.init(cfg, rng);
    db.txns = tpccGenTxns(cfg, rng);
    db.reset();

    uint64_t expectedOrders = 0, expectedPayments = 0, paySum = 0,
             qtySum = 0;
    for (auto& t : db.txns) {
        db.applyTxnHost(t);
        if (TxnDesc::isPayment(t.w0)) {
            expectedPayments++;
            paySum += t.w1 >> 4;
        } else {
            expectedOrders++;
            uint32_t n = uint32_t(t.w1 & 0xf);
            for (uint32_t i = 0; i < n; i++)
                qtySum += t.items[i] & 0xff;
        }
    }
    uint64_t oids = 0, ytdW = 0, stockYtd = 0;
    for (auto& d : db.districts)
        oids += d.nextOId;
    for (auto& w : db.warehouses)
        ytdW += w.ytd;
    for (auto& s : db.stocks)
        stockYtd += s.ytd;
    EXPECT_EQ(oids, expectedOrders);
    EXPECT_EQ(ytdW, paySum);
    EXPECT_EQ(stockYtd, qtySum);
}

// ---- Harness ------------------------------------------------------------------------------

TEST(Classifier, CategorizesLocations)
{
    harness::AccessClassifier cls(/*ro_ratio=*/10, /*single_frac=*/0.9);
    // Fake committed tasks: hint 1 hammers word A (RW single-hint);
    // hints 1 and 2 both read word B many times (RO multi-hint).
    Task t1;
    t1.hint = 1;
    t1.noHint = false;
    t1.nargs = 2;
    for (int i = 0; i < 10; i++)
        t1.trace.push_back((100 << 1) | 1); // write word 100
    for (int i = 0; i < 50; i++)
        t1.trace.push_back(200 << 1); // read word 200
    cls.onCommit(t1);
    Task t2;
    t2.hint = 2;
    t2.noHint = false;
    t2.nargs = 1;
    for (int i = 0; i < 50; i++)
        t2.trace.push_back(200 << 1);
    cls.onCommit(t2);

    auto r = cls.classify();
    EXPECT_GT(r.singleHintRW, 0.0);
    EXPECT_GT(r.multiHintRO, 0.0);
    EXPECT_EQ(r.singleHintRO, 0.0);
    EXPECT_NEAR(r.arguments +
                    r.multiHintRO + r.singleHintRO + r.multiHintRW +
                    r.singleHintRW,
                1.0, 1e-9);
    EXPECT_EQ(r.totalAccesses, 113u);
}

TEST(SerialMachineT, ChargesLatency)
{
    SerialMachine sm;
    uint64_t x = 5;
    EXPECT_EQ(sm.read(&x), 5u);
    uint64_t cold = sm.cycles();
    EXPECT_GT(cold, 100u); // memory miss
    sm.read(&x);
    EXPECT_EQ(sm.cycles() - cold, 2u); // L1 hit
    sm.write(&x, uint64_t(9));
    EXPECT_EQ(x, 9u);
    sm.compute(100);
    EXPECT_GE(sm.cycles(), cold + 2 + 100);
}

TEST(Report, TableFormatsAndMeans)
{
    harness::Table t({"a", "b"});
    t.addRow({"x", "1.00"});
    t.print(); // must not crash
    EXPECT_EQ(harness::fmt(1.234, 1), "1.2");
    EXPECT_EQ(harness::fmtInt(42), "42");
}
