/**
 * @file
 * End-to-end tests for profile-guided access classification
 * (swarm/classification.h consumed by the ConflictManager):
 *
 *  - Classification is result-neutral: profiled-on runs produce the
 *    same final memory and app results as classification-off runs, on
 *    both backends, at any host thread count, with worker-side
 *    conflict checks and parallel replay armed.
 *  - Deliberately poisoned maps (wrong class for contended RMW lines)
 *    are absorbed by demotion, never corrupting results.
 *  - Commutative-reduction semantics stay exact under fold-at-commit:
 *    a reader interleaved among reducers observes exactly the prefix
 *    sum of earlier deltas — the regression test for the commit-epoch
 *    GVT bug where a fold-abort let later reducers fold before an
 *    earlier, requeued reader re-read.
 *
 * Suite names start with "Classif" so CI's TSan lane picks them up
 * (.github/workflows/ci.yml).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "apps/app.h"
#include "golden_workloads.h"
#include "harness/classifier.h"
#include "swarm/classification.h"

using namespace ssim;
using namespace ssim::golden;

namespace {

struct GoldenRun
{
    uint64_t statsDig = 0;
    uint64_t lineTableRegs = 0;
    uint64_t demotions = 0;
    WorkState finalState;
};

/**
 * golden_workloads.h's runWorkload, extended with an optional
 * classification map, an optional profiler, and a snapshot of the
 * final workload memory (the result-equality check).
 */
GoldenRun
runClassified(Workload w, SchedulerType sched, uint32_t host_threads,
              const char* backend, bool conc, bool replay,
              std::shared_ptr<const ClassificationMap> map,
              AccessProfiler* profiler = nullptr)
{
    auto* st = new (arena()) WorkState();
    SimConfig cfg;
    switch (w) {
      case Workload::Spawn:
        cfg = SimConfig::withCores(16, sched, 7);
        break;
      case Workload::Contend:
        cfg = SimConfig::withCores(16, sched, 3);
        break;
      case Workload::Spill:
        cfg = SimConfig::withCores(1, sched, 1);
        break;
    }
    cfg.hostThreads = host_threads;
    cfg.engineBackend = backend;
    cfg.concurrentConflicts = conc;
    cfg.parallelReplay = replay;
    if (map) {
        cfg.classifyMode = "profile";
        cfg.classifyMap = std::move(map);
    }
    Machine m(cfg);
    if (profiler)
        m.setProfiler(profiler);
    switch (w) {
      case Workload::Spawn:
        m.enqueueInitial(spawner, 0, swarm::Hint(0), st, uint64_t(48));
        break;
      case Workload::Contend:
        for (uint64_t i = 0; i < 96; i++)
            m.enqueueInitial(rmwCells, i / 3, swarm::Hint(i % 5), st);
        break;
      case Workload::Spill:
        for (uint64_t i = 0; i < 400; i++)
            m.enqueueInitial(tiny, i, swarm::Hint(i % 32), st);
        break;
    }
    m.run();
    EXPECT_EQ(m.liveTasks(), 0u);
    GoldenRun out;
    out.statsDig = statsDigest(m.stats());
    out.lineTableRegs = m.stats().lineTableRegs;
    out.demotions = m.stats().classifiedDemotions;
    std::memcpy(&out.finalState, st, sizeof(WorkState));
    return out;
}

} // namespace

// ---- Result-neutrality on the golden workloads -----------------------------

TEST(Classification, ProfiledMapPreservesResultsAndDigests)
{
    ASSERT_NE(arena(), nullptr);
    for (const Golden& g : kGoldens) {
        // Baseline + profile in one pass.
        harness::AccessClassifier cls;
        GoldenRun off = runClassified(g.w, g.sched, 1, "timing", false,
                                      false, nullptr, &cls);
        auto map = std::make_shared<ClassificationMap>(cls.buildMap());

        for (const char* backend : {"timing", "functional"}) {
            GoldenRun base = runClassified(g.w, g.sched, 1, backend,
                                           false, false, nullptr);
            GoldenRun first = runClassified(g.w, g.sched, 1, backend,
                                            false, false, map);
            // Same final memory as the unclassified run...
            EXPECT_EQ(std::memcmp(&first.finalState, &base.finalState,
                                  sizeof(WorkState)),
                      0)
                << g.name << " @ " << backend;
            // ...and the classified configuration is itself
            // deterministic and host-parallelism invariant.
            struct
            {
                uint32_t threads;
                bool conc, replay;
            } cfgs[] = {{1, false, false},
                        {2, false, false},
                        {8, false, false},
                        {8, true, false},
                        {8, true, true}};
            for (const auto& c : cfgs) {
                GoldenRun r =
                    runClassified(g.w, g.sched, c.threads, backend,
                                  c.conc, c.replay, map);
                EXPECT_EQ(r.statsDig, first.statsDig)
                    << g.name << " @ " << backend << " t=" << c.threads
                    << " conc=" << c.conc << " replay=" << c.replay;
                EXPECT_EQ(std::memcmp(&r.finalState, &base.finalState,
                                      sizeof(WorkState)),
                          0)
                    << g.name << " @ " << backend;
            }
        }
    }
}

// ---- Poisoned maps: misclassification is correct by construction -----------

TEST(Classification, PoisonedMapIsAbsorbedByDemotion)
{
    ASSERT_NE(arena(), nullptr);
    // The Contend workload RMWs st->cells from five different hints —
    // the worst candidate lines for every class. Classify them wrongly
    // on purpose: the first write (ReadOnly), non-owner access
    // (Private), or plain write (Reduction) must demote the line and
    // full tracking must keep the final state exact.
    auto* st = static_cast<WorkState*>(arena());
    Addr cellsBase = addrOf(&st->cells[0]);
    auto poison = std::make_shared<ClassificationMap>();
    poison->lines[lineOf(cellsBase)] = LineClass::Reduction;
    poison->lines[lineOf(cellsBase + 64)] = LineClass::ReadOnly;
    poison->lines[lineOf(addrOf(&st->counter))] = LineClass::Private;

    for (const char* backend : {"timing", "functional"}) {
        GoldenRun base = runClassified(Workload::Contend,
                                       SchedulerType::Hints, 1, backend,
                                       false, false, nullptr);
        for (uint32_t threads : {1u, 8u}) {
            GoldenRun r = runClassified(Workload::Contend,
                                        SchedulerType::Hints, threads,
                                        backend, false, false, poison);
            EXPECT_GE(r.demotions, 2u) << backend; // both cells lines
            EXPECT_EQ(std::memcmp(&r.finalState, &base.finalState,
                                  sizeof(WorkState)),
                      0)
                << backend << " @ hostThreads=" << threads
                << ": poisoned map corrupted results";
        }
    }
}

// ---- Reduction fold semantics (commit-epoch regression test) ---------------

namespace {

struct ReduceState
{
    alignas(64) int64_t total = 0;
    alignas(64) uint64_t snap[64] = {};
};

swarm::TaskCoro
reducerTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<ReduceState>(args[0]);
    co_await ctx.reduce(&st->total, int64_t(args[1]));
}

swarm::TaskCoro
readerTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<ReduceState>(args[0]);
    int64_t v = co_await ctx.read(&st->total);
    co_await ctx.write(&st->snap[args[1]], uint64_t(v));
}

} // namespace

TEST(Classification, FoldsObeyTimestampOrderUnderFoldAborts)
{
    ASSERT_NE(arena(), nullptr);
    // 48 reducers at even timestamps add 1 to a Reduction-classified
    // word; 48 readers at odd timestamps snapshot it. Reader j (ts
    // 2j+1) must observe exactly j+1 — the prefix sum of the reducers
    // ordered before it. Readers race far ahead speculatively and are
    // fold-aborted when earlier reducers commit; a commit sweep that
    // lets reducers LATER than a requeued reader fold first inflates
    // the snapshots (the bug this test pins down).
    constexpr uint64_t kN = 48;
    auto map = std::make_shared<ClassificationMap>();

    for (const char* backend : {"timing", "functional"}) {
        for (uint32_t threads : {1u, 2u, 8u}) {
            auto* st = new (arena()) ReduceState();
            map->lines = {{lineOf(addrOf(&st->total)),
                           LineClass::Reduction}};
            SimConfig cfg = SimConfig::withCores(64,
                                                 SchedulerType::Hints, 5);
            cfg.hostThreads = threads;
            cfg.engineBackend = backend;
            cfg.classifyMode = "profile";
            cfg.classifyMap = map;
            Machine m(cfg);
            for (uint64_t i = 0; i < kN; i++) {
                m.enqueueInitial(reducerTask, 2 * i, swarm::Hint(i % 8),
                                 st, uint64_t(1));
                m.enqueueInitial(readerTask, 2 * i + 1,
                                 swarm::Hint(8 + i % 8), st, i);
            }
            m.run();
            EXPECT_EQ(m.liveTasks(), 0u);
            EXPECT_EQ(st->total, int64_t(kN)) << backend;
            for (uint64_t j = 0; j < kN; j++)
                EXPECT_EQ(st->snap[j], j + 1)
                    << backend << " @ hostThreads=" << threads
                    << ": reader ts=" << 2 * j + 1
                    << " saw a fold from a later reducer";
            EXPECT_GT(m.stats().classifiedRedOps, 0u);
        }
    }
}

// ---- ReadOnly + Private end-to-end: profile → map → exact results ----------

namespace {

struct RoPrivState
{
    alignas(64) uint64_t table[32] = {};   // never written: ReadOnly
    alignas(64) uint64_t slot[16][8] = {}; // one line per hint: Private
    alignas(64) uint64_t shared = 0;       // multi-hint RMW: tracked
};

swarm::TaskCoro
roPrivTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<RoPrivState>(args[0]);
    uint64_t h = args[1];
    uint64_t acc = 0;
    for (uint64_t k = 0; k < 4; k++)
        acc += co_await ctx.read(&st->table[(ts * 7 + k * 5) % 32]);
    uint64_t v = co_await ctx.read(&st->slot[h][0]);
    co_await ctx.write(&st->slot[h][0], v + acc + ts);
    // Contended tracked line: induces real aborts, so Private owners
    // get rolled back mid-run and their eager writes must undo exactly.
    uint64_t c = co_await ctx.read(&st->shared);
    co_await ctx.write(&st->shared, c + 1);
}

} // namespace

TEST(Classification, ReadOnlyAndPrivateClassesStayExactUnderAborts)
{
    ASSERT_NE(arena(), nullptr);
    constexpr uint64_t kN = 96;

    for (const char* backend : {"timing", "functional"}) {
        auto* st = new (arena()) RoPrivState();
        for (uint64_t i = 0; i < 32; i++)
            st->table[i] = i * i + 3;

        auto enqueueAll = [&](Machine& m) {
            for (uint64_t i = 0; i < kN; i++)
                m.enqueueInitial(roPrivTask, i, swarm::Hint(i % 16), st,
                                 i % 16);
        };
        auto makeCfg = [&](uint32_t threads) {
            SimConfig cfg =
                SimConfig::withCores(64, SchedulerType::Hints, 9);
            cfg.hostThreads = threads;
            cfg.engineBackend = backend;
            return cfg;
        };

        // Profile pass (classification off).
        harness::AccessClassifier cls;
        uint64_t regsOff;
        {
            Machine m(makeCfg(1));
            m.setProfiler(&cls);
            enqueueAll(m);
            m.run();
            regsOff = m.stats().lineTableRegs;
        }
        auto map = std::make_shared<ClassificationMap>(cls.buildMap());
        EXPECT_EQ(map->count(LineClass::ReadOnly), 4u) << backend;
        EXPECT_EQ(map->count(LineClass::Private), 16u) << backend;

        // Host-computed expectation (the serial ts-order semantics).
        uint64_t wantSlot[16] = {};
        for (uint64_t ts = 0; ts < kN; ts++) {
            uint64_t acc = 0;
            for (uint64_t k = 0; k < 4; k++)
                acc += st->table[(ts * 7 + k * 5) % 32];
            wantSlot[ts % 16] += acc + ts;
        }

        for (uint32_t threads : {1u, 8u}) {
            new (st) RoPrivState();
            for (uint64_t i = 0; i < 32; i++)
                st->table[i] = i * i + 3;
            SimConfig cfg = makeCfg(threads);
            cfg.classifyMode = "profile";
            cfg.classifyMap = map;
            Machine m(cfg);
            enqueueAll(m);
            m.run();
            EXPECT_EQ(st->shared, kN) << backend;
            for (uint64_t h = 0; h < 16; h++)
                EXPECT_EQ(st->slot[h][0], wantSlot[h])
                    << backend << " hostThreads=" << threads
                    << " slot=" << h;
            // Private ownership is released at commit, so a same-hint
            // successor dispatched while its predecessor awaits commit
            // demotes the slot line — the documented escape hatch, not
            // an error. Only the 16 slot lines may demote; the
            // ReadOnly table lines never do.
            EXPECT_LE(m.stats().classifiedDemotions, 16u) << backend;
            EXPECT_GT(m.stats().classifiedRoReads, 0u) << backend;
            EXPECT_GT(m.stats().classifiedPrivAccesses, 0u) << backend;
            if (threads == 1)
                EXPECT_LT(m.stats().lineTableRegs, regsOff) << backend;
        }
    }
}

// ---- Demotion must RESOLVE, not just register (review regressions) ---------

namespace {

struct DemoteState
{
    /// red[0] is the Reduction-classified word; red[1] shares its line,
    /// so a plain write to it demotes without clobbering red[0].
    alignas(64) uint64_t red[8] = {};
    alignas(64) uint64_t snapR = 0;
    alignas(64) uint64_t snapD = 0;
    alignas(64) uint64_t y = 0;
};

constexpr uint64_t kRedBase = 100;
constexpr int64_t kDelta1 = 3;
constexpr int64_t kDelta2 = 7;
constexpr uint64_t kW2Val = 55;
constexpr uint64_t kYVal = 5;

/// ts0: buffers a delta early, then dawdles far past the demotion so
/// the delta is still buffered (not folded) when the line demotes.
swarm::TaskCoro
earlyReducer(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    co_await ctx.reduce(&st->red[0], kDelta2);
    for (int i = 0; i < 3000; i++)
        co_await ctx.compute(1);
}

/// ts1: takes a tracked base read of the Reduction word — exact only
/// under fold-abort, which demotion cancels — and snapshots it.
swarm::TaskCoro
baseReader(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    for (int i = 0; i < 40; i++)
        co_await ctx.compute(1);
    uint64_t v = co_await ctx.read(&st->red[0]);
    co_await ctx.write(&st->snapR, v);
}

/// ts2: tracked-reads the Reduction word (registering itself on the
/// line), then plain-writes the NEIGHBOR word — the demotion trigger.
/// The materialization of ts0's delta must abort this task even though
/// its own write is mid-flight (the deferred-doom path).
swarm::TaskCoro
stalerDemoter(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    for (int i = 0; i < 200; i++)
        co_await ctx.compute(1);
    uint64_t v = co_await ctx.read(&st->red[0]);
    for (int i = 0; i < 200; i++)
        co_await ctx.compute(1);
    co_await ctx.write(&st->red[1], kW2Val);
    co_await ctx.write(&st->snapD, v);
}

} // namespace

TEST(Classification, DemotionAbortsStaleBaseReaders)
{
    ASSERT_NE(arena(), nullptr);
    // The reviewer's scenario: A (ts0) buffers a reduction delta; R
    // (ts1) and D (ts2) take tracked base reads that miss it; D's plain
    // write to a neighbor word demotes the line while A is still live.
    // Materializing A's delta makes A a registered writer BELOW already
    // -registered later readers — exactly the state the eager protocol
    // never allows — so the demotion must resolve like a real write and
    // abort them. (The buggy demotion just called trackWrite: R and D
    // then committed base-value snapshots while memory held base+delta.)
    auto map = std::make_shared<ClassificationMap>();
    for (const char* backend : {"timing", "functional"}) {
        for (uint32_t threads : {1u, 8u}) {
            auto* st = new (arena()) DemoteState();
            st->red[0] = kRedBase;
            map->lines = {
                {lineOf(addrOf(&st->red[0])), LineClass::Reduction}};
            SimConfig cfg =
                SimConfig::withCores(64, SchedulerType::Hints, 5);
            cfg.hostThreads = threads;
            cfg.engineBackend = backend;
            cfg.classifyMode = "profile";
            cfg.classifyMap = map;
            Machine m(cfg);
            m.enqueueInitial(earlyReducer, 0, swarm::Hint(0), st);
            m.enqueueInitial(baseReader, 1, swarm::Hint(1), st);
            m.enqueueInitial(stalerDemoter, 2, swarm::Hint(2), st);
            m.run();
            EXPECT_EQ(m.liveTasks(), 0u);
            const char* tag = threads == 1 ? " t1" : " t8";
            EXPECT_EQ(st->red[0], kRedBase + kDelta2) << backend << tag;
            EXPECT_EQ(st->red[1], kW2Val) << backend << tag;
            EXPECT_EQ(st->snapR, kRedBase + kDelta2)
                << backend << tag << ": reader committed a stale base"
                << " read across a demotion";
            EXPECT_EQ(st->snapD, kRedBase + kDelta2)
                << backend << tag << ": the demoting accessor itself"
                << " committed a stale base read";
            EXPECT_EQ(m.stats().classifiedDemotions, 1u) << backend << tag;
            if (std::strcmp(backend, "timing") == 0) {
                // Deterministic interleaving (dawdle-paced): R aborts at
                // materialization, D via the deferred doom event.
                EXPECT_GE(m.stats().classifyAborts, 2u) << tag;
            }
        }
    }
}

namespace {

/// ts0: writes y late — after the chain below materialized — so its
/// resolve aborts the first reducer mid-chain.
swarm::TaskCoro
lateYWriter(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    for (int i = 0; i < 800; i++)
        co_await ctx.compute(1);
    co_await ctx.write(&st->y, kYVal);
}

/// ts1: reduces ONLY if y is still unwritten. Its re-execution after
/// ts0's abort skips the reduce, so nothing re-applies the first delta
/// — the surviving second delta must not be lost with it.
swarm::TaskCoro
chainReducer1(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    for (int i = 0; i < 10; i++)
        co_await ctx.compute(1);
    uint64_t v = co_await ctx.read(&st->y);
    if (v == 0) {
        co_await ctx.reduce(&st->red[0], kDelta1);
        for (int i = 0; i < 3000; i++)
            co_await ctx.compute(1);
    }
}

/// ts2: second buffered delta on the same word, stacked on ts1's at
/// materialization.
swarm::TaskCoro
chainReducer2(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    for (int i = 0; i < 60; i++)
        co_await ctx.compute(1);
    co_await ctx.reduce(&st->red[0], kDelta2);
    for (int i = 0; i < 3000; i++)
        co_await ctx.compute(1);
}

/// ts3: the demotion trigger (plain write to the neighbor word).
swarm::TaskCoro
chainDemoter(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* st = swarm::argPtr<DemoteState>(args[0]);
    for (int i = 0; i < 300; i++)
        co_await ctx.compute(1);
    co_await ctx.write(&st->red[1], kW2Val);
}

} // namespace

TEST(Classification, MaterializedDeltasChainAsForwardedData)
{
    ASSERT_NE(arena(), nullptr);
    // The chained-undo scenario: a demotion materializes A1's (ts1) and
    // A2's (ts2) buffered deltas in order, so A2's undo record snapshots
    // a value containing A1's delta. When ts0's late write aborts A1,
    // the cascade must take A2 down too (forwarded-data dependent edge
    // recorded at materialization): A1's rollback restores the
    // pre-delta value, erasing A2's materialized delta from memory.
    // (The buggy demotion recorded no edges: A2 survived, its redShadow
    // already drained, and it committed nothing — the second delta
    // vanished. A1's re-execution skips its reduce via the y-guard, so
    // eager conflict detection cannot mask the loss.)
    auto map = std::make_shared<ClassificationMap>();
    for (const char* backend : {"timing", "functional"}) {
        for (uint32_t threads : {1u, 8u}) {
            auto* st = new (arena()) DemoteState();
            st->red[0] = kRedBase;
            map->lines = {
                {lineOf(addrOf(&st->red[0])), LineClass::Reduction}};
            SimConfig cfg =
                SimConfig::withCores(64, SchedulerType::Hints, 5);
            cfg.hostThreads = threads;
            cfg.engineBackend = backend;
            cfg.classifyMode = "profile";
            cfg.classifyMap = map;
            Machine m(cfg);
            m.enqueueInitial(lateYWriter, 0, swarm::Hint(0), st);
            m.enqueueInitial(chainReducer1, 1, swarm::Hint(1), st);
            m.enqueueInitial(chainReducer2, 2, swarm::Hint(2), st);
            m.enqueueInitial(chainDemoter, 3, swarm::Hint(3), st);
            m.run();
            EXPECT_EQ(m.liveTasks(), 0u);
            const char* tag = threads == 1 ? " t1" : " t8";
            // ts1's delta is legitimately undone (control-dependent on
            // y); ts2's must survive the mid-chain abort.
            EXPECT_EQ(st->red[0], kRedBase + kDelta2)
                << backend << tag
                << ": a mid-chain abort erased a surviving user's"
                << " materialized delta";
            EXPECT_EQ(st->red[1], kW2Val) << backend << tag;
            EXPECT_EQ(st->y, kYVal) << backend << tag;
            EXPECT_EQ(m.stats().classifiedDemotions, 1u) << backend << tag;
        }
    }
}

// ---- Apps: off-vs-on result equality and footprint reduction ---------------

TEST(Classification, AppsProduceIdenticalResultsWithSmallerFootprint)
{
    for (const auto& name : apps::appNames()) {
        auto app = apps::makeApp(name);
        apps::AppParams params;
        params.preset = apps::Preset::Tiny;
        params.seed = 42;
        app->setup(params);

        harness::AccessClassifier cls;
        std::shared_ptr<ClassificationMap> map;

        auto runWith = [&](const char* backend, bool on,
                           AccessProfiler* prof, uint64_t* regs) {
            app->reset();
            SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints);
            cfg.engineBackend = backend;
            if (on) {
                cfg.classifyMode = "profile";
                cfg.classifyMap = map;
            }
            Machine m(cfg);
            if (prof)
                m.setProfiler(prof);
            app->enqueueInitial(m);
            m.run();
            EXPECT_TRUE(app->validate())
                << name << " under " << backend
                << (on ? " with classification" : "");
            if (regs)
                *regs = m.stats().lineTableRegs;
            return app->resultDigest();
        };

        uint64_t regsOff = 0, regsOn = 0;
        uint64_t off = runWith("timing", false, &cls, &regsOff);
        map = std::make_shared<ClassificationMap>(
            cls.buildMap(app->reductionRanges()));

        uint64_t on = runWith("timing", true, nullptr, &regsOn);
        EXPECT_EQ(off, on) << name << ": classification changed results";
        uint64_t onFunc = runWith("functional", true, nullptr, nullptr);
        EXPECT_EQ(off, onFunc)
            << name << ": functional+classification diverged";

        // The payoff the tentpole claims: on the apps with profiled
        // read-only/reduction state, classified accesses visibly skip
        // the line-table banks.
        if (name == "kmeans" || name == "nocsim") {
            EXPECT_FALSE(map->empty()) << name;
            EXPECT_LT(regsOn, regsOff) << name;
        }
    }
}
