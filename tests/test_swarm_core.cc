/**
 * @file
 * Unit tests for the Swarm core: speculation semantics (conflicts,
 * forwarding, cascading aborts, undo), dispatch serialization, spills,
 * the load balancer, the event queue, and the config.
 */
#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "swarm/load_balancer.h"
#include "swarm/machine.h"
#include "swarm/task_unit.h"

using namespace ssim;

// ---- Event queue -------------------------------------------------------------

TEST(EventQueue, OrdersByTimeThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(3); }); // same time: after 2
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.executedEvents(), 3u);
}

TEST(EventQueue, ScheduleFromCallbackAndStop)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        fired++;
        eq.scheduleAfter(5, [&] { fired++; });
    });
    EXPECT_EQ(eq.runSome(1), 1u);
    EXPECT_EQ(fired, 1);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 6u);
}

// ---- Config --------------------------------------------------------------------

TEST(Config, WithCoresFollowsPaperScaling)
{
    auto c1 = SimConfig::withCores(1);
    EXPECT_EQ(c1.ntiles, 1u);
    EXPECT_EQ(c1.coresPerTile, 1u);
    auto c256 = SimConfig::withCores(256);
    EXPECT_EQ(c256.ntiles, 64u);
    EXPECT_EQ(c256.coresPerTile, 4u);
    EXPECT_EQ(c256.meshDim(), 8u);
    EXPECT_EQ(c256.totalCores(), 256u);
    EXPECT_EQ(c256.numBuckets(), 1024u); // 16 buckets/tile (Sec. VI)
    EXPECT_FALSE(SimConfig::withCores(64, SchedulerType::Random)
                     .serializeSameHint);
    EXPECT_TRUE(SimConfig::withCores(64, SchedulerType::Hints)
                    .serializeSameHint);
    EXPECT_FALSE(SimConfig::withCores(16).describe().empty());
    EXPECT_EQ(schedulerFromName("LBHints"), SchedulerType::LBHints);
}

// ---- Load balancer ---------------------------------------------------------------

TEST(LoadBalancer, InitialMapIsUniform)
{
    SimConfig cfg = SimConfig::withCores(64); // 16 tiles
    LoadBalancer lb(cfg);
    std::vector<uint32_t> per(cfg.ntiles, 0);
    for (uint32_t b = 0; b < lb.numBuckets(); b++)
        per[lb.tileOfBucket(b)]++;
    for (uint32_t p : per)
        EXPECT_EQ(p, cfg.bucketsPerTile);
}

TEST(LoadBalancer, MovesBucketsFromOverloadedTiles)
{
    SimConfig cfg = SimConfig::withCores(16); // 4 tiles, 64 buckets
    LoadBalancer lb(cfg);
    // Tile 0 heavily loaded through two of its buckets.
    uint32_t b0 = 0, b4 = 4; // both initially map to tile 0
    ASSERT_EQ(lb.tileOfBucket(b0), 0u);
    ASSERT_EQ(lb.tileOfBucket(b4), 0u);
    lb.profileCommit(0, b0, 100000);
    lb.profileCommit(0, b4, 100000);
    lb.profileCommit(1, 1, 1000);
    lb.profileCommit(2, 2, 1000);
    lb.profileCommit(3, 3, 1000);
    uint32_t moved = lb.reconfigure({});
    EXPECT_GE(moved, 1u);
    // At least one of the hot buckets left tile 0.
    EXPECT_TRUE(lb.tileOfBucket(b0) != 0 || lb.tileOfBucket(b4) != 0);
}

TEST(LoadBalancer, RespectsFractionCap)
{
    // With f = 0.8, a single reconfiguration must not fully drain the
    // overloaded tile (avoiding oscillation, Sec. VI).
    SimConfig cfg = SimConfig::withCores(16);
    cfg.lbFraction = 0.5;
    LoadBalancer lb(cfg);
    for (uint32_t b = 0; b < lb.numBuckets(); b++)
        if (lb.tileOfBucket(b) == 0)
            lb.profileCommit(0, b, 10000);
    lb.reconfigure({});
    uint32_t still0 = 0;
    for (uint32_t b = 0; b < lb.numBuckets(); b++)
        still0 += lb.tileOfBucket(b) == 0;
    EXPECT_GE(still0, 4u); // at least half its 16 buckets (f=0.5) remain
}

TEST(LoadBalancer, IdleSignalVariant)
{
    SimConfig cfg = SimConfig::withCores(16);
    cfg.lbSignal = LbSignal::IdleTasks;
    LoadBalancer lb(cfg);
    uint32_t moved = lb.reconfigure({1000, 10, 10, 10});
    EXPECT_GE(moved, 1u);
}

TEST(LoadBalancer, TaggedCountersAreBounded)
{
    SimConfig cfg = SimConfig::withCores(16);
    LoadBalancer lb(cfg);
    // Hammer one tile with more distinct buckets than it has counters
    // (32 = 2x bucketsPerTile); the structure must stay bounded, with
    // overflow samples merged onto the least-loaded counter rather than
    // dropped, so total profiled load is conserved.
    for (uint32_t b = 0; b < lb.numBuckets(); b++)
        lb.profileCommit(0, b, 10);
    EXPECT_LE(lb.profiledCounters(0), 32u);
    EXPECT_EQ(lb.profiledLoad(0), uint64_t(lb.numBuckets()) * 10u);
}

TEST(LoadBalancer, EvictMergePreservesHeavyBuckets)
{
    SimConfig cfg = SimConfig::withCores(16);
    LoadBalancer lb(cfg);
    // One hot bucket, then a flood of distinct cold buckets: the merges
    // must displace cold tags, never the hot counter's accumulated load.
    lb.profileCommit(0, 0, 1000000);
    for (uint32_t b = 1; b < lb.numBuckets(); b++)
        lb.profileCommit(0, b, 1);
    EXPECT_LE(lb.profiledCounters(0), 32u);
    EXPECT_EQ(lb.profiledLoad(0), 1000000u + lb.numBuckets() - 1);
    // A reconfiguration must not displace the hot bucket: its weight
    // exceeds tile 0's capped shed budget (f=0.8 of the surplus), so the
    // donor sheds only cold buckets.
    for (uint32_t b = 0; b < lb.numBuckets(); b++)
        if (lb.tileOfBucket(b) != 0)
            lb.profileCommit(lb.tileOfBucket(b), b, 100);
    lb.reconfigure({});
    EXPECT_EQ(lb.tileOfBucket(0), 0u);
}

// ---- Speculation semantics through the Machine ------------------------------------

namespace {

struct SpecState
{
    uint64_t x = 0;
    uint64_t y = 0;
    alignas(64) uint64_t log[8] = {};
    uint64_t logIdx = 0;
};

// Reads x (forwarded if an earlier writer is uncommitted), records it.
swarm::TaskCoro
readerTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* s = swarm::argPtr<SpecState>(args[0]);
    uint64_t v = co_await ctx.read(&s->x);
    uint64_t i = co_await ctx.read(&s->logIdx);
    co_await ctx.write(&s->log[i], v);
    co_await ctx.write(&s->logIdx, i + 1);
}

// Writes x = ts after a long compute delay (runs late in real time).
swarm::TaskCoro
slowWriterTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
               const uint64_t* args)
{
    auto* s = swarm::argPtr<SpecState>(args[0]);
    co_await ctx.compute(uint32_t(args[1]));
    co_await ctx.write(&s->x, ts);
}

swarm::TaskCoro
incXTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* s = swarm::argPtr<SpecState>(args[0]);
    uint64_t v = co_await ctx.read(&s->x);
    co_await ctx.write(&s->x, v + 1);
}

// Parent writes y then spawns a child that also writes y; used to check
// that aborting the parent discards the child.
swarm::TaskCoro
childYTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* s = swarm::argPtr<SpecState>(args[0]);
    co_await ctx.write(&s->y, 99);
}

swarm::TaskCoro
parentSpawner(swarm::TaskCtx& ctx, swarm::Timestamp ts,
              const uint64_t* args)
{
    auto* s = swarm::argPtr<SpecState>(args[0]);
    co_await ctx.compute(200);
    uint64_t v = co_await ctx.read(&s->x); // conflicts with slow writer
    co_await ctx.enqueue(childYTask, ts + 1, swarm::Hint(1), args[0]);
    co_await ctx.write(&s->y, v);
}

} // namespace

TEST(Speculation, LaterReaderAbortsOnEarlierWrite)
{
    // Reader (ts=10) runs before the slow writer (ts=5) commits its
    // write; eager conflict detection must abort and re-run the reader
    // so it observes the writer's value.
    SimConfig cfg = SimConfig::withCores(4, SchedulerType::Hints);
    Machine m(cfg);
    SpecState s;
    m.enqueueInitial(slowWriterTask, 5, swarm::Hint(1), &s, uint64_t(500));
    m.enqueueInitial(readerTask, 10, swarm::Hint(2), &s);
    m.run();
    EXPECT_EQ(s.x, 5u);
    EXPECT_EQ(s.log[0], 5u); // reader saw the writer's value
    EXPECT_EQ(s.logIdx, 1u);
    EXPECT_GE(m.stats().tasksAborted, 1u);
}

TEST(Speculation, SerializedIncrementsAreExact)
{
    // 32 unordered same-hint increments of one counter: must total 32
    // under every scheduler (serializability), not lose updates.
    for (auto sched : {SchedulerType::Random, SchedulerType::Hints}) {
        SimConfig cfg = SimConfig::withCores(16, sched);
        Machine m(cfg);
        SpecState s;
        for (int i = 0; i < 32; i++)
            m.enqueueInitial(incXTask, 1, swarm::Hint(7), &s);
        m.run();
        EXPECT_EQ(s.x, 32u) << schedulerName(sched);
    }
}

TEST(Speculation, AbortDiscardsSpeculativeChildren)
{
    // The parent reads x early (stale), spawns a child, then the earlier
    // writer's write aborts the parent; the child's write of y=99 must
    // be discarded and the final y must reflect the re-execution.
    SimConfig cfg = SimConfig::withCores(4, SchedulerType::Hints);
    Machine m(cfg);
    SpecState s;
    m.enqueueInitial(slowWriterTask, 1, swarm::Hint(1), &s, uint64_t(800));
    m.enqueueInitial(parentSpawner, 10, swarm::Hint(2), &s);
    m.run();
    EXPECT_EQ(s.x, 1u);
    EXPECT_EQ(s.y, 99u); // child re-created after parent re-ran
    EXPECT_GE(m.stats().tasksAborted, 1u);
}

TEST(Speculation, HintSerializationReducesAborts)
{
    // Same-hint contended increments: with dispatch serialization the
    // conflicting tasks never run concurrently on a tile.
    auto run = [](bool serialize) {
        SimConfig cfg = SimConfig::withCores(4, SchedulerType::Hints);
        cfg.serializeSameHint = serialize;
        Machine m(cfg);
        static SpecState s;
        s = SpecState();
        for (int i = 0; i < 64; i++)
            m.enqueueInitial(incXTask, 1, swarm::Hint(7), &s);
        m.run();
        EXPECT_EQ(s.x, 64u);
        return m.stats();
    };
    auto off = run(false);
    auto on = run(true);
    EXPECT_LT(on.tasksAborted, off.tasksAborted);
    EXPECT_GT(on.dispatchSkips, 0u);
}

TEST(Speculation, StatsAccounting)
{
    SimConfig cfg = SimConfig::withCores(4, SchedulerType::Hints);
    Machine m(cfg);
    SpecState s;
    for (int i = 0; i < 10; i++)
        m.enqueueInitial(incXTask, uint64_t(i), swarm::Hint(i), &s);
    m.run();
    const SimStats& st = m.stats();
    EXPECT_EQ(st.tasksCommitted, 10u);
    EXPECT_GT(st.coreCycles[size_t(CycleBucket::Commit)], 0u);
    EXPECT_GT(st.cycles, 0u);
    EXPECT_GT(st.l1Misses, 0u);
    // GVT protocol traffic accrues every epoch.
    EXPECT_GT(st.flits[size_t(TrafficClass::Gvt)], 0u);
}

// ---- Spills ----------------------------------------------------------------------

namespace {

swarm::TaskCoro
tinyTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* s = swarm::argPtr<SpecState>(args[0]);
    uint64_t v = co_await ctx.read(&s->y);
    co_await ctx.write(&s->y, v + 1);
}

} // namespace

TEST(Spills, OverflowSpillsAndCompletes)
{
    // 1-core system: 64 task-queue entries; 1000 tasks must spill to
    // memory and still all run.
    SimConfig cfg = SimConfig::withCores(1, SchedulerType::Hints);
    Machine m(cfg);
    SpecState s;
    for (int i = 0; i < 1000; i++)
        m.enqueueInitial(tinyTask, uint64_t(i), swarm::Hint(uint64_t(i)),
                         &s);
    m.run();
    EXPECT_EQ(s.y, 1000u);
    EXPECT_EQ(m.stats().tasksCommitted, 1000u);
    EXPECT_GT(m.stats().tasksSpilled, 0u);
    EXPECT_GT(m.stats().coreCycles[size_t(CycleBucket::Spill)], 0u);
}
