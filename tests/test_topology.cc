/**
 * @file
 * TopologySpec unit lattice (sim/topology.h, docs/scale-out.md):
 *
 *  - uniform() splits tiles evenly, remainder to the leading shards,
 *    banks mirroring tiles; shardOfTile/shardOfBank invert the split.
 *  - serialize() -> parse() roundtrips exactly (including explicit bank
 *    ranges), and key() is stable and shape-sensitive.
 *  - parse() is strict: every malformed input — bad header, bad counts,
 *    out-of-order/overlapping/non-covering ranges, truncation, trailing
 *    garbage — is rejected with reject-don't-corrupt semantics (the
 *    spec already held is untouched).
 */
#include <gtest/gtest.h>

#include <string>

#include "sim/topology.h"

using namespace ssim;

TEST(Topology, UniformSplitsEvenlyWithRemainderLeading)
{
    TopologySpec t = TopologySpec::uniform(64, 4);
    EXPECT_EQ(t.ntiles, 64u);
    ASSERT_EQ(t.numShards(), 4u);
    for (uint32_t s = 0; s < 4; s++) {
        EXPECT_EQ(t.shards[s].firstTile, s * 16);
        EXPECT_EQ(t.shards[s].lastTile, s * 16 + 15);
        EXPECT_EQ(t.shards[s].firstBank, t.shards[s].firstTile);
        EXPECT_EQ(t.shards[s].lastBank, t.shards[s].lastTile);
    }

    // 10 tiles over 4 shards: 3,3,2,2.
    TopologySpec u = TopologySpec::uniform(10, 4);
    ASSERT_EQ(u.numShards(), 4u);
    EXPECT_EQ(u.shards[0].lastTile, 2u);
    EXPECT_EQ(u.shards[1].lastTile, 5u);
    EXPECT_EQ(u.shards[2].lastTile, 7u);
    EXPECT_EQ(u.shards[3].lastTile, 9u);
}

TEST(Topology, ShardOfTileAndBankInvertTheSplit)
{
    TopologySpec t = TopologySpec::uniform(10, 3); // 4,3,3
    for (uint32_t tile = 0; tile < 10; tile++) {
        uint32_t s = t.shardOfTile(tile);
        EXPECT_GE(tile, t.shards[s].firstTile);
        EXPECT_LE(tile, t.shards[s].lastTile);
        EXPECT_EQ(t.shardOfBank(tile), s);
    }
    EXPECT_EQ(t.shardOfTile(0), 0u);
    EXPECT_EQ(t.shardOfTile(3), 0u);
    EXPECT_EQ(t.shardOfTile(4), 1u);
    EXPECT_EQ(t.shardOfTile(9), 2u);
}

TEST(Topology, SerializeParseRoundtrips)
{
    TopologySpec t = TopologySpec::uniform(16, 2);
    std::string text = t.serialize();
    TopologySpec back;
    std::string err;
    ASSERT_TRUE(back.parse(text, &err)) << err;
    EXPECT_EQ(back, t);
    EXPECT_EQ(back.serialize(), text);

    // Explicit (non-mirrored) bank ranges survive the roundtrip too.
    TopologySpec skew = TopologySpec::uniform(8, 2);
    skew.shards[0].lastBank = 5;
    skew.shards[1].firstBank = 6;
    std::string stext = skew.serialize();
    EXPECT_NE(stext.find("banks"), std::string::npos);
    TopologySpec sback;
    ASSERT_TRUE(sback.parse(stext, &err)) << err;
    EXPECT_EQ(sback, skew);
}

TEST(Topology, KeyIsStableAndShapeSensitive)
{
    TopologySpec a = TopologySpec::uniform(64, 2);
    EXPECT_EQ(a.key(), "topo2:0-31,32-63");
    EXPECT_EQ(a.key(), TopologySpec::uniform(64, 2).key());
    EXPECT_NE(a.key(), TopologySpec::uniform(64, 4).key());
    EXPECT_NE(a.key(), TopologySpec::uniform(32, 2).key());
}

TEST(Topology, ParseRejectsMalformedInputsWithoutCorruption)
{
    // A good spec held before each failed parse must stay untouched.
    const TopologySpec good = TopologySpec::uniform(8, 2);
    const char* bad[] = {
        // 1. wrong header
        "swarmsim-topo v9\nntiles 8\nshards 1\nshard 0 tiles 0 7\nend\n",
        // 2. missing ntiles line
        "swarmsim-topo v1\nshards 1\nshard 0 tiles 0 7\nend\n",
        // 3. zero ntiles
        "swarmsim-topo v1\nntiles 0\nshards 1\nshard 0 tiles 0 7\nend\n",
        // 4. shard count mismatch
        "swarmsim-topo v1\nntiles 8\nshards 2\nshard 0 tiles 0 7\nend\n",
        // 5. out-of-order shard index
        "swarmsim-topo v1\nntiles 8\nshards 2\nshard 1 tiles 0 3\n"
        "shard 0 tiles 4 7\nend\n",
        // 6. non-contiguous tile ranges (gap)
        "swarmsim-topo v1\nntiles 8\nshards 2\nshard 0 tiles 0 2\n"
        "shard 1 tiles 4 7\nend\n",
        // 7. overlapping tile ranges
        "swarmsim-topo v1\nntiles 8\nshards 2\nshard 0 tiles 0 4\n"
        "shard 1 tiles 4 7\nend\n",
        // 8. ranges do not cover ntiles
        "swarmsim-topo v1\nntiles 8\nshards 1\nshard 0 tiles 0 6\nend\n",
        // 9. truncated (missing end sentinel)
        "swarmsim-topo v1\nntiles 8\nshards 1\nshard 0 tiles 0 7\n",
        // 10. trailing garbage after end
        "swarmsim-topo v1\nntiles 8\nshards 1\nshard 0 tiles 0 7\nend\n"
        "junk\n",
        // 11. non-numeric tile bound
        "swarmsim-topo v1\nntiles 8\nshards 1\nshard 0 tiles 0 x\nend\n",
        // 12. malformed bank clause
        "swarmsim-topo v1\nntiles 8\nshards 1\nshard 0 tiles 0 7 "
        "banks 0\nend\n",
    };
    for (const char* text : bad) {
        TopologySpec spec = good;
        std::string err;
        EXPECT_FALSE(spec.parse(text, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
        EXPECT_EQ(spec, good) << "rejected parse corrupted the spec: "
                              << text;
    }
}

TEST(Topology, ParseAcceptsItsOwnGrammarEdgeCases)
{
    // Single-shard spec (the degenerate-but-legal topology).
    TopologySpec one;
    std::string err;
    ASSERT_TRUE(one.parse("swarmsim-topo v1\nntiles 4\nshards 1\n"
                          "shard 0 tiles 0 3\nend\n",
                          &err))
        << err;
    EXPECT_EQ(one.numShards(), 1u);
    EXPECT_EQ(one.shardOfTile(3), 0u);

    // One tile per shard.
    TopologySpec fine;
    ASSERT_TRUE(fine.parse("swarmsim-topo v1\nntiles 2\nshards 2\n"
                           "shard 0 tiles 0 0\nshard 1 tiles 1 1\nend\n",
                           &err))
        << err;
    EXPECT_EQ(fine.shardOfTile(0), 0u);
    EXPECT_EQ(fine.shardOfTile(1), 1u);
}
