#!/usr/bin/env python3
"""Compare bench JSON artifacts against committed baselines.

Every microbenchmark emits a ``BENCH_<name>.json`` document (schema in
docs/benchmarks.md: ``{"bench", "schema", "meta", "rows"}``). This script
compares such artifacts against the committed snapshots in
``bench/baselines/`` and turns perf regressions into CI signal:

- Rows are matched between artifact and baseline on their *identity*
  fields — every key whose value is not a number in both documents, plus
  integer knob fields (``threads``) — so a row is compared against the
  baseline row measuring the same configuration.
- The gated fields are listed by each baseline in
  ``meta.delta_gated_fields`` (default: ``["sim_cycles"]``). A gated
  field that grew by >= 5% prints a warning; >= 15% fails the check.
  Simulated-cycle counts are deterministic for fixed data addresses, but
  benches whose state lives in ASLR-placed globals see run-to-run cycle
  jitter from address-dependent cache indexing and hint hashes — the
  generous default thresholds absorb the common case, and a baseline
  whose workload is unusually address-sensitive can widen its own bands
  via ``meta.delta_warn_pct`` / ``meta.delta_fail_pct``. A single field
  that is noisier than its siblings (e.g. replayed-trace cycle counts,
  which inherit the recording run's address-dependent conflict pattern)
  can carry its own bands: a gated entry may be an object
  ``{"field": name, "warn_pct": W, "fail_pct": F}`` instead of a bare
  string, overriding the file-level thresholds for that field only.
- Wall-clock fields (``ms``, ``speedup``) are never gated: CI runners
  share cores and the container may have one. They are printed for the
  trajectory only.
- ``meta.pass == false`` or any row with ``digest_ok == false`` in the
  *artifact* is a hard failure regardless of deltas: the bench's own
  correctness gate tripped.
- A missing baseline, a missing artifact, or an unmatched row warns but
  does not fail — new benches and new sweep axes land before their
  baselines do.

Usage:
    scripts/bench_delta.py [--baselines DIR] ARTIFACT.json...
Exit status: 0 ok (possibly with warnings), 1 regression or gate failure.

Refreshing a baseline after an intentional change:
    ./build-rel/micro_parallel_host --smoke --json=/tmp/b.json
    cp /tmp/b.json bench/baselines/micro_parallel_host.json
"""

import argparse
import json
import os
import sys

WARN_PCT = 5.0
FAIL_PCT = 15.0
DEFAULT_GATED = ["sim_cycles"]
# Wall-clock measurements: never gated, never used as row identity.
TIMING_FIELDS = {"ms", "speedup"}


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def identity_fields(rows):
    """Keys that identify a row's configuration: every key present with
    a non-numeric value anywhere, plus small integer knobs like
    ``threads`` (numeric but configuration, not measurement).

    Measurement keys are floats or large counters; knob keys are the
    ones with few distinct values relative to the row count — but a
    robust-enough heuristic here is: non-numeric keys plus bools plus
    any key named in KNOB_KEYS.
    """
    KNOB_KEYS = {"threads", "banks", "cores", "lanes", "replay", "conc"}
    ids = set()
    for row in rows:
        for k, v in row.items():
            if k in TIMING_FIELDS:
                continue
            if not is_number(v) or k in KNOB_KEYS:
                ids.add(k)
    return ids


def row_key(row, ids):
    return tuple(sorted((k, json.dumps(row[k])) for k in ids if k in row))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "bench" not in doc or "rows" not in doc:
        raise ValueError(f"{path}: not a bench JSON document")
    return doc


def check_artifact(art_path, baseline_dir):
    """Returns (warnings, failures) message lists for one artifact."""
    warnings, failures = [], []
    art = load(art_path)
    name = art["bench"]

    # The bench's own gates are authoritative regardless of baselines.
    if art.get("meta", {}).get("pass") is False:
        failures.append(f"{name}: artifact meta.pass is false "
                        "(the bench's own gate tripped)")
    for row in art["rows"]:
        if row.get("digest_ok") is False:
            failures.append(f"{name}: row {row} has digest_ok=false")

    base_path = os.path.join(baseline_dir, f"{name}.json")
    if not os.path.exists(base_path):
        warnings.append(f"{name}: no baseline at {base_path} "
                        "(new bench? commit one to enable delta gating)")
        return warnings, failures
    base = load(base_path)

    meta = base.get("meta", {})
    warn_pct = float(meta.get("delta_warn_pct", WARN_PCT))
    fail_pct = float(meta.get("delta_fail_pct", FAIL_PCT))
    # Each gated entry is a field name, or an object with per-field
    # threshold overrides: {"field": name, "warn_pct": W, "fail_pct": F}.
    gated = {}
    for entry in meta.get("delta_gated_fields", DEFAULT_GATED):
        if isinstance(entry, dict):
            gated[entry["field"]] = (float(entry.get("warn_pct", warn_pct)),
                                     float(entry.get("fail_pct", fail_pct)))
        else:
            gated[entry] = (warn_pct, fail_pct)
    ids = identity_fields(base["rows"]) | identity_fields(art["rows"])
    base_rows = {row_key(r, ids): r for r in base["rows"]}

    compared = 0
    for row in art["rows"]:
        key = row_key(row, ids)
        b = base_rows.get(key)
        label = ", ".join(f"{k}={v}" for k, v in
                          ((k, row.get(k)) for k in sorted(ids))
                          if v is not None)
        if b is None:
            warnings.append(f"{name}: no baseline row for ({label})")
            continue
        for field, (f_warn, f_fail) in gated.items():
            if field not in row or field not in b:
                continue
            cur, ref = row[field], b[field]
            if not (is_number(cur) and is_number(ref)) or ref == 0:
                continue
            compared += 1
            pct = 100.0 * (cur - ref) / ref
            line = (f"{name} ({label}) {field}: {ref} -> {cur} "
                    f"({pct:+.1f}%)")
            if pct >= f_fail:
                failures.append(line + f" exceeds fail threshold "
                                f"{f_fail:.0f}%")
            elif pct >= f_warn:
                warnings.append(line + f" exceeds warn threshold "
                               f"{f_warn:.0f}%")
            else:
                print(f"  ok   {line}")
    if compared == 0:
        warnings.append(f"{name}: no gated fields compared "
                        f"(gated={sorted(gated)}) — check the baseline")
    return warnings, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of committed baseline JSONs")
    ap.add_argument("artifacts", nargs="+", help="BENCH_*.json files")
    args = ap.parse_args()

    all_warn, all_fail = [], []
    for path in args.artifacts:
        if not os.path.exists(path):
            all_warn.append(f"{path}: artifact missing")
            continue
        print(f"== {path}")
        try:
            w, f = check_artifact(path, args.baselines)
        except (ValueError, json.JSONDecodeError) as e:
            all_fail.append(f"{path}: unreadable ({e})")
            continue
        all_warn += w
        all_fail += f

    for w in all_warn:
        print(f"  WARN {w}")
    for f in all_fail:
        print(f"  FAIL {f}")
    if all_fail:
        print(f"bench_delta: {len(all_fail)} failure(s), "
              f"{len(all_warn)} warning(s)")
        return 1
    print(f"bench_delta: ok ({len(all_warn)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
