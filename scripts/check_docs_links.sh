#!/usr/bin/env bash
# Docs hygiene gate, three checks:
#
#  1. Fail on dead relative links in README.md and docs/*.md. Checks
#     every inline markdown link [text](target): http(s)/mailto and
#     pure-anchor links are skipped; anything else must resolve to an
#     existing file or directory relative to the markdown file that
#     contains it (anchors are stripped before the check).
#  2. Fail on SimConfig knobs (data members of src/sim/config.h) that
#     are not mentioned (backtick-quoted) in docs/configuration.md, so
#     the knob table cannot silently fall behind the code.
#  3. Fail on SWARMSIM_* environment variables referenced anywhere in
#     src/ but missing from docs/configuration.md, so every env knob an
#     operator can set is documented.
#  4. Fail on topology-grammar keywords (the TOPO-KEYWORDS block in
#     src/sim/topology.cc) missing from docs/scale-out.md, so the
#     documented grammar cannot drift from the parser.
set -u
cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
    [ -e "$f" ] || continue
    dir=$(dirname "$f")
    while IFS= read -r link; do
        case "$link" in
          http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        target="${link%%#*}"
        [ -z "$target" ] && continue
        if [ ! -e "$dir/$target" ]; then
            echo "dead link in $f: ($link)"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

# ---- SimConfig knob coverage -------------------------------------------
# Extract data-member names, both initialized ("uint32_t ntiles = 64;")
# and initializer-less ("std::shared_ptr<const TopologySpec> topology;",
# "std::string topologyFile;"). Default-argument lines of member
# functions contain parens and are filtered out; return statements
# don't fit the one-type-one-name shape. Knobs that are deliberately
# undocumented go in the allowlist.
allow=""
stripped=$(sed -E 's|//.*$||' src/sim/config.h)
knobs_init=$(grep -E '^[[:space:]]+[A-Za-z_][A-Za-z0-9_:]*[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*=[^;]*;' <<<"$stripped" |
        grep -v '[()]' |
        sed -E 's/^[[:space:]]+[A-Za-z_][A-Za-z0-9_:]*[[:space:]]+([A-Za-z_][A-Za-z0-9_]*)[[:space:]]*=.*/\1/')
knobs_bare=$(grep -E '^[[:space:]]+[A-Za-z_][A-Za-z0-9_:]*(<[^;=]*>)?[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*;[[:space:]]*$' <<<"$stripped" |
        grep -v '[()=]' |
        sed -E 's/^.*[[:space:]]([A-Za-z_][A-Za-z0-9_]*)[[:space:]]*;[[:space:]]*$/\1/')
knobs=$(printf '%s\n%s\n' "$knobs_init" "$knobs_bare" | sort -u)
[ -n "$knobs" ] || { echo "knob extraction found nothing in src/sim/config.h"; fail=1; }
for k in $knobs; do
    case " $allow " in *" $k "*) continue ;; esac
    if ! grep -q "\`$k\`" docs/configuration.md; then
        echo "undocumented SimConfig knob: $k (add it to docs/configuration.md)"
        fail=1
    fi
done

# ---- SWARMSIM_* env var coverage ---------------------------------------
# Every env var the code reads (or documents in a comment) must appear
# in docs/configuration.md. Vars that are deliberately undocumented go
# in the allowlist.
env_allow=""
envs=$(grep -rhoE 'SWARMSIM_[A-Z0-9_]+' src/ | sort -u)
[ -n "$envs" ] || { echo "env-var extraction found nothing in src/"; fail=1; }
for v in $envs; do
    case " $env_allow " in *" $v "*) continue ;; esac
    if ! grep -q "$v" docs/configuration.md; then
        echo "undocumented env var: $v (add it to docs/configuration.md)"
        fail=1
    fi
done

# ---- Topology grammar keyword coverage ---------------------------------
# The parser's keyword list lives between the TOPO-KEYWORDS-BEGIN/END
# markers in src/sim/topology.cc; every quoted keyword there must appear
# in docs/scale-out.md so the documented grammar tracks the code.
topo_kw=$(sed -n '/TOPO-KEYWORDS-BEGIN/,/TOPO-KEYWORDS-END/p' src/sim/topology.cc |
          grep -oE '"[^"]+"' | tr -d '"' | sort -u)
[ -n "$topo_kw" ] || { echo "TOPO-KEYWORDS extraction found nothing in src/sim/topology.cc"; fail=1; }
for k in $topo_kw; do
    if ! grep -qF "$k" docs/scale-out.md; then
        echo "topology keyword missing from docs/scale-out.md: $k"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs check FAILED"
else
    echo "docs check OK"
fi
exit $fail
