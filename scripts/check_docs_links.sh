#!/usr/bin/env bash
# Fail on dead relative links in README.md and docs/*.md.
#
# Checks every inline markdown link [text](target): http(s)/mailto and
# pure-anchor links are skipped; anything else must resolve to an
# existing file or directory relative to the markdown file that
# contains it (anchors are stripped before the check).
set -u
cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
    [ -e "$f" ] || continue
    dir=$(dirname "$f")
    while IFS= read -r link; do
        case "$link" in
          http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        target="${link%%#*}"
        [ -z "$target" ] && continue
        if [ ! -e "$dir/$target" ]; then
            echo "dead link in $f: ($link)"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "docs link check FAILED"
else
    echo "docs link check OK"
fi
exit $fail
