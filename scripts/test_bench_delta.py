#!/usr/bin/env python3
"""Unit tests for scripts/bench_delta.py (run by CI's build-test job).

bench_delta.py is the perf-regression gate between the BENCH_*.json
artifacts the microbenchmarks emit and the committed snapshots in
bench/baselines/. These tests pin its contract with synthetic JSON
fixtures: row identity matching, the 5/15% warn/fail bands, per-baseline
threshold and gated-field overrides, the meta.pass / digest_ok hard
failures, and the warn-only paths (missing baseline, unmatched row,
never-gated wall-clock fields).

Usage: python3 scripts/test_bench_delta.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_delta


def doc(bench, rows, meta=None):
    d = {"bench": bench, "schema": 1, "rows": rows}
    if meta is not None:
        d["meta"] = meta
    return d


class BenchDeltaTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.baselines = os.path.join(self.dir.name, "baselines")
        os.makedirs(self.baselines)

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, document, where=None):
        path = os.path.join(where or self.dir.name, name)
        with open(path, "w") as f:
            json.dump(document, f)
        return path

    def check(self, artifact_doc, baseline_doc=None):
        """Run check_artifact on synthetic docs; returns (warn, fail)."""
        if baseline_doc is not None:
            self.write(f"{baseline_doc['bench']}.json", baseline_doc,
                       where=self.baselines)
        art = self.write("BENCH_art.json", artifact_doc)
        return bench_delta.check_artifact(art, self.baselines)

    # -- row identity -----------------------------------------------------

    def test_rows_match_on_identity_not_order(self):
        base = doc("m", [
            {"app": "bfs", "backend": "timing", "sim_cycles": 100},
            {"app": "bfs", "backend": "trace-replay", "sim_cycles": 100},
        ])
        # Same rows, reversed order, unchanged cycles: clean pass.
        art = doc("m", [
            {"app": "bfs", "backend": "trace-replay", "sim_cycles": 100},
            {"app": "bfs", "backend": "timing", "sim_cycles": 100},
        ])
        warn, fail = self.check(art, base)
        self.assertEqual(warn, [])
        self.assertEqual(fail, [])

    def test_numeric_knob_keys_are_identity(self):
        # threads is numeric but a knob: rows must match per-thread-count,
        # not collapse into one.
        base = doc("m", [
            {"app": "bfs", "threads": 1, "sim_cycles": 100},
            {"app": "bfs", "threads": 8, "sim_cycles": 100},
        ])
        art = doc("m", [
            {"app": "bfs", "threads": 1, "sim_cycles": 100},
            {"app": "bfs", "threads": 8, "sim_cycles": 200},  # +100%
        ])
        warn, fail = self.check(art, base)
        self.assertEqual(len(fail), 1)
        self.assertIn("threads=8", fail[0])

    def test_unmatched_artifact_row_warns_only(self):
        base = doc("m", [{"app": "bfs", "sim_cycles": 100}])
        art = doc("m", [{"app": "bfs", "sim_cycles": 100},
                        {"app": "newapp", "sim_cycles": 999}])
        warn, fail = self.check(art, base)
        self.assertEqual(fail, [])
        self.assertTrue(any("no baseline row" in w for w in warn))

    # -- delta bands ------------------------------------------------------

    def test_growth_below_warn_band_is_clean(self):
        base = doc("m", [{"app": "bfs", "sim_cycles": 1000}])
        art = doc("m", [{"app": "bfs", "sim_cycles": 1040}])  # +4%
        warn, fail = self.check(art, base)
        self.assertEqual(warn, [])
        self.assertEqual(fail, [])

    def test_growth_in_warn_band_warns(self):
        base = doc("m", [{"app": "bfs", "sim_cycles": 1000}])
        art = doc("m", [{"app": "bfs", "sim_cycles": 1100}])  # +10%
        warn, fail = self.check(art, base)
        self.assertEqual(fail, [])
        self.assertEqual(len(warn), 1)
        self.assertIn("warn threshold", warn[0])

    def test_growth_past_fail_band_fails(self):
        base = doc("m", [{"app": "bfs", "sim_cycles": 1000}])
        art = doc("m", [{"app": "bfs", "sim_cycles": 1200}])  # +20%
        warn, fail = self.check(art, base)
        self.assertEqual(len(fail), 1)
        self.assertIn("fail threshold", fail[0])

    def test_improvement_is_never_flagged(self):
        base = doc("m", [{"app": "bfs", "sim_cycles": 1000}])
        art = doc("m", [{"app": "bfs", "sim_cycles": 500}])  # -50%
        warn, fail = self.check(art, base)
        self.assertEqual(warn, [])
        self.assertEqual(fail, [])

    def test_baseline_overrides_bands_and_gated_fields(self):
        meta = {"delta_gated_fields": ["trace_cycles"],
                "delta_warn_pct": 20, "delta_fail_pct": 50}
        base = doc("m", [{"app": "bfs", "sim_cycles": 100,
                          "trace_cycles": 1000}], meta)
        # sim_cycles +900% is ignored (not gated here); trace_cycles +30%
        # lands inside the widened warn band.
        art = doc("m", [{"app": "bfs", "sim_cycles": 1000,
                         "trace_cycles": 1300}])
        warn, fail = self.check(art, base)
        self.assertEqual(fail, [])
        self.assertEqual(len(warn), 1)
        self.assertIn("trace_cycles", warn[0])

    def test_per_field_threshold_overrides(self):
        # timing_cycles keeps the file-level 5/15 bands; trace_cycles
        # (address-sensitive) carries its own widened object entry.
        meta = {"delta_gated_fields": [
            "timing_cycles",
            {"field": "trace_cycles", "warn_pct": 20, "fail_pct": 50}]}
        base = doc("m", [{"app": "bfs", "timing_cycles": 100,
                          "trace_cycles": 1000}], meta)
        # timing +20% fails at the file-level 15%; trace +30% only warns
        # inside its per-field 20/50 band.
        art = doc("m", [{"app": "bfs", "timing_cycles": 120,
                         "trace_cycles": 1300}])
        warn, fail = self.check(art, base)
        self.assertEqual(len(fail), 1)
        self.assertIn("timing_cycles", fail[0])
        self.assertEqual(len(warn), 1)
        self.assertIn("trace_cycles", warn[0])

    def test_wall_clock_fields_are_not_gated_by_default(self):
        # ms/speedup blow up 10x; they are excluded from row identity
        # and absent from the default gated list, so the check is clean.
        base = doc("m", [{"app": "bfs", "sim_cycles": 100, "ms": 1.0,
                          "speedup": 8.0}])
        art = doc("m", [{"app": "bfs", "sim_cycles": 100, "ms": 10.0,
                         "speedup": 0.5}])
        warn, fail = self.check(art, base)
        self.assertEqual(warn, [])
        self.assertEqual(fail, [])

    # -- hard gates -------------------------------------------------------

    def test_meta_pass_false_is_hard_fail(self):
        art = doc("m", [{"app": "bfs", "sim_cycles": 100}],
                  {"pass": False})
        base = doc("m", [{"app": "bfs", "sim_cycles": 100}])
        warn, fail = self.check(art, base)
        self.assertTrue(any("meta.pass is false" in f for f in fail))

    def test_digest_ok_false_row_is_hard_fail(self):
        art = doc("m", [{"app": "bfs", "sim_cycles": 100,
                         "digest_ok": False}])
        base = doc("m", [{"app": "bfs", "sim_cycles": 100,
                          "digest_ok": True}])
        warn, fail = self.check(art, base)
        self.assertTrue(any("digest_ok=false" in f for f in fail))

    def test_digest_failure_outranks_missing_baseline(self):
        # Even with no baseline at all, the bench's own gate is
        # authoritative.
        art = doc("unbaselined", [{"app": "bfs", "sim_cycles": 1,
                                   "digest_ok": False}])
        warn, fail = self.check(art)
        self.assertTrue(any("digest_ok=false" in f for f in fail))

    # -- warn-only edges --------------------------------------------------

    def test_missing_baseline_warns_only(self):
        art = doc("nobaseline", [{"app": "bfs", "sim_cycles": 100}])
        warn, fail = self.check(art)
        self.assertEqual(fail, [])
        self.assertTrue(any("no baseline" in w for w in warn))

    def test_nothing_compared_warns(self):
        # Baseline gates a field the artifact doesn't carry.
        base = doc("m", [{"app": "bfs", "sim_cycles": 100}],
                   {"delta_gated_fields": ["absent_field"]})
        art = doc("m", [{"app": "bfs", "sim_cycles": 100}])
        warn, fail = self.check(art, base)
        self.assertEqual(fail, [])
        self.assertTrue(any("no gated fields compared" in w
                            for w in warn))

    def test_malformed_artifact_raises(self):
        path = self.write("BENCH_bad.json", {"rows": []})  # no "bench"
        with self.assertRaises(ValueError):
            bench_delta.check_artifact(path, self.baselines)

    # -- CLI entry point --------------------------------------------------

    def test_main_exit_codes(self):
        base = doc("m", [{"app": "bfs", "sim_cycles": 100}])
        self.write("m.json", base, where=self.baselines)
        ok = self.write("BENCH_ok.json",
                        doc("m", [{"app": "bfs", "sim_cycles": 101}]))
        bad = self.write("BENCH_bad.json",
                         doc("m", [{"app": "bfs", "sim_cycles": 200}]))
        argv = sys.argv
        try:
            sys.argv = ["bench_delta.py", "--baselines", self.baselines,
                        ok]
            self.assertEqual(bench_delta.main(), 0)
            sys.argv = ["bench_delta.py", "--baselines", self.baselines,
                        bad]
            self.assertEqual(bench_delta.main(), 1)
        finally:
            sys.argv = argv


if __name__ == "__main__":
    unittest.main()
