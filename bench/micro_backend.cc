/**
 * @file
 * Engine-backend microbenchmark: the cycle-accurate TimingBackend vs
 * the FunctionalBackend on every registered app (docs/backends.md).
 *
 * For each app the bench runs the same workload once per backend on a
 * 64-tile / 256-core machine (the paper's headline system) and reports
 * host wall-clock, simulated cycles, and commit/abort counts. Two
 * checks are hard failures:
 *
 *  - every run must validate against the app's host-native oracle, and
 *  - the functional backend's result digest must equal the timing
 *    backend's (same functional outputs, only the clock differs).
 *
 * The speedup column is the point of the backend split: the functional
 * backend skips the cache hierarchy, directory, and NoC — and, in
 * inline-effects mode, the per-access event round-trip itself — so
 * memory-bound apps should run well over 2x faster while producing
 * identical results.
 *
 * Flags: --smoke (CI-sized run at the tiny preset), --app=name (one
 * app only), --backend=name (run only that backend — the CI
 * functional smoke lane), --host-threads=N / --conc-conflicts=on|off /
 * --policy=spec (harness/cli.h overrides — the conc-conflicts pairing
 * is the CI TSan smoke lane), --json=FILE (machine-readable results,
 * docs/benchmarks.md).
 */
#include <chrono>
#include <cstdio>
#include <string>

#include "apps/app.h"
#include "base/logging.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "swarm/machine.h"

namespace {

using namespace ssim;

struct RunOut
{
    double ms = 0;
    uint64_t resultDigest = 0;
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t abrConflict = 0, abrDisplace = 0, abrGridlock = 0;
    bool valid = false;
};

RunOut
runOne(apps::App& app, SimConfig cfg, const std::string& backend)
{
    app.reset();
    cfg.engineBackend = backend;
    Machine m(cfg);
    app.enqueueInitial(m);
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    RunOut out;
    out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.resultDigest = app.resultDigest();
    out.cycles = m.stats().cycles;
    out.committed = m.stats().tasksCommitted;
    out.aborted = m.stats().tasksAborted;
    out.abrConflict = m.stats().abortsConflict;
    out.abrDisplace = m.stats().abortsDisplace;
    out.abrGridlock = m.stats().abortsGridlock;
    out.valid = app.validate();
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    static const char* const kExtras[] = {"--app", nullptr};
    harness::requireKnownFlags(argc, argv, kExtras);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");
    // --backend=name: run only that backend (e.g. the CI functional
    // smoke lane); validation stays a hard failure, the cross-backend
    // digest comparison needs both and is skipped.
    const char* onlyBackend = harness::flagValue(argc, argv, "--backend");

    if (onlyBackend) {
        std::printf("micro_backend: %s backend on all registered apps "
                    "(256 cores)%s\n",
                    onlyBackend, smoke ? " [smoke]" : "");
        std::printf("%-8s %10s   %-24s %s\n", "app", "ms",
                    "cyc/com/abr", "checks");
    } else {
        std::printf("micro_backend: timing vs functional EngineBackend "
                    "on all registered apps (256 cores)%s\n",
                    smoke ? " [smoke]" : "");
        std::printf("%-8s %10s %10s %8s   %-24s %-24s %s\n", "app",
                    "timing ms", "func ms", "speedup",
                    "timing cyc/com/abr", "func cyc/com/abr", "checks");
    }

    const char* only = harness::flagValue(argc, argv, "--app");
    harness::BenchJson json("micro_backend");
    json.meta("smoke", smoke);
    if (onlyBackend)
        json.meta("backend", onlyBackend);
    int failures = 0;
    for (const auto& name : apps::appNames()) {
        if (only && name != only)
            continue;
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = smoke ? apps::Preset::Tiny : apps::presetFromEnv();
        p.seed = 42;
        app->setup(p);

        SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 42);
        harness::applyHostThreads(cfg, argc, argv);
        harness::applyConcConflicts(cfg, argc, argv);
        harness::applyPolicy(cfg, argc, argv);

        // cycles/committed/aborted(conflict+displace+gridlock)
        auto fmtRow = [](const RunOut& r, char* buf, size_t n) {
            std::snprintf(buf, n, "%llu/%llu/%llu(%llu+%llu+%llu)",
                          (unsigned long long)r.cycles,
                          (unsigned long long)r.committed,
                          (unsigned long long)r.aborted,
                          (unsigned long long)r.abrConflict,
                          (unsigned long long)r.abrDisplace,
                          (unsigned long long)r.abrGridlock);
        };

        if (onlyBackend) {
            RunOut r = runOne(*app, cfg, onlyBackend);
            if (!r.valid)
                failures++;
            char rb[64];
            fmtRow(r, rb, sizeof(rb));
            std::printf("%-8s %10.1f   %-24s %s\n", name.c_str(), r.ms,
                        rb, r.valid ? "valid" : "INVALID");
            json.beginRow();
            json.val("app", name);
            json.val("backend", onlyBackend);
            json.val("ms", r.ms);
            json.val("sim_cycles", r.cycles);
            json.val("committed", r.committed);
            json.val("aborted", r.aborted);
            json.val("valid", r.valid);
            continue;
        }

        RunOut t = runOne(*app, cfg, "timing");
        RunOut f = runOne(*app, cfg, "functional");

        bool digestOk = t.resultDigest == f.resultDigest;
        bool ok = digestOk && t.valid && f.valid;
        if (!ok)
            failures++;

        json.beginRow();
        json.val("app", name);
        json.val("timing_ms", t.ms);
        json.val("functional_ms", f.ms);
        json.val("speedup", t.ms / f.ms);
        json.val("timing_cycles", t.cycles);
        json.val("functional_cycles", f.cycles);
        json.val("timing_aborted", t.aborted);
        json.val("functional_aborted", f.aborted);
        json.val("digest_ok", digestOk);
        json.val("valid", t.valid && f.valid);

        char tb[64], fb[64];
        fmtRow(t, tb, sizeof(tb));
        fmtRow(f, fb, sizeof(fb));
        std::printf("%-8s %10.1f %10.1f %7.2fx   %-24s %-24s %s%s%s\n",
                    name.c_str(), t.ms, f.ms, t.ms / f.ms, tb, fb,
                    digestOk ? "results identical" : "RESULT MISMATCH",
                    t.valid ? "" : ", timing INVALID",
                    f.valid ? "" : ", functional INVALID");
    }

    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d app(s) failed validation or diverged "
                    "across backends\n",
                    failures);
        return 1;
    }
    if (onlyBackend)
        std::printf("\nall apps validate under the %s backend\n",
                    onlyBackend);
    else
        std::printf("\nall apps validate under both backends with "
                    "identical results\n");
    return 0;
}
