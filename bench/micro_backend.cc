/**
 * @file
 * Engine-backend microbenchmark: the cycle-accurate TimingBackend vs
 * the FunctionalBackend vs the TraceReplayBackend on every registered
 * app (docs/backends.md).
 *
 * For each app the bench runs the same workload once per backend on a
 * 64-tile / 256-core machine (the paper's headline system) and reports
 * host wall-clock, simulated cycles, and commit/abort counts. The
 * trace-replay lane first re-runs the timing model once under
 * backend=trace-record (not timed as a lane — it IS a timing run) and
 * then replays the captured cost streams. Two checks are hard failures:
 *
 *  - every run must validate against the app's host-native oracle, and
 *  - every backend's result digest must equal the timing backend's
 *    (same functional outputs, only the clock differs) — the record
 *    lane included.
 *
 * The speedup columns are the point of the backend split: functional
 * and trace-replay skip the cache hierarchy, directory, and NoC — and,
 * in inline-effects mode, the per-access event round-trip itself — so
 * memory-bound apps should run well over 2x faster while producing
 * identical results; trace-replay keeps the recorded timing signal
 * while doing so.
 *
 * Flags: --smoke (CI-sized run at the tiny preset), --app=name (one
 * app only), --backend=name (run only that backend — the CI functional
 * and trace-replay smoke lanes; trace lanes record internally first),
 * --trace=FILE (with --backend=trace-replay --app=name: load the trace
 * from FILE if it exists, else record once and save it there),
 * --host-threads=N / --conc-conflicts=on|off / --policy=spec
 * (harness/cli.h overrides — the conc-conflicts pairing is the CI TSan
 * smoke lane), --json=FILE (machine-readable results,
 * docs/benchmarks.md).
 */
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/app.h"
#include "base/logging.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/machine.h"

namespace {

using namespace ssim;

struct RunOut
{
    double ms = 0;
    uint64_t resultDigest = 0;
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t abrConflict = 0, abrDisplace = 0, abrGridlock = 0;
    uint64_t traceFallbacks = 0;
    bool valid = false;
};

RunOut
runOne(apps::App& app, SimConfig cfg, const std::string& backend)
{
    app.reset();
    cfg.engineBackend = backend;
    Machine m(cfg);
    app.enqueueInitial(m);
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    RunOut out;
    out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.resultDigest = app.resultDigest();
    out.cycles = m.stats().cycles;
    out.committed = m.stats().tasksCommitted;
    out.aborted = m.stats().tasksAborted;
    out.abrConflict = m.stats().abortsConflict;
    out.abrDisplace = m.stats().abortsDisplace;
    out.abrGridlock = m.stats().abortsGridlock;
    out.traceFallbacks = m.stats().traceFallbackCosts;
    out.valid = app.validate();
    return out;
}

/// Record a cost trace for @p app: one timing-model run under
/// backend=trace-record. Returns the armed trace; @p rec_out gets the
/// record run's results (its digest must match the timing lane's).
std::shared_ptr<const TraceData>
recordTrace(apps::App& app, SimConfig cfg, RunOut& rec_out)
{
    auto sink = std::make_shared<TraceData>();
    cfg.traceSink = sink;
    rec_out = runOne(app, cfg, "trace-record");
    sink->recordResultDigest = rec_out.resultDigest;
    return sink;
}

/// Best-of-N timed lane: simulated behavior is deterministic per rep
/// (identical digests, asserted), so the min wall-clock is the honest
/// measurement — the extra reps only shed scheduler/cache noise on
/// shared CI runners.
RunOut
runBest(apps::App& app, const SimConfig& cfg, const std::string& backend,
        uint32_t reps)
{
    RunOut best = runOne(app, cfg, backend);
    for (uint32_t i = 1; i < reps; i++) {
        RunOut r = runOne(app, cfg, backend);
        if (r.resultDigest != best.resultDigest || r.cycles != best.cycles)
            fatal("%s: nondeterministic rep under backend %s",
                  app.name().c_str(), backend.c_str());
        if (r.ms < best.ms)
            best.ms = r.ms;
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    static const char* const kExtras[] = {"--app", nullptr};
    harness::requireKnownFlags(argc, argv, kExtras);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");
    // --backend=name: run only that backend (e.g. the CI functional or
    // trace-replay smoke lane); validation stays a hard failure. For
    // trace-replay the record run happens internally and its digest
    // equality with the replay IS checked; the full cross-backend
    // comparison needs all lanes and is skipped.
    const char* onlyBackend = harness::flagValue(argc, argv, "--backend");

    if (onlyBackend) {
        std::printf("micro_backend: %s backend on all registered apps "
                    "(256 cores)%s\n",
                    onlyBackend, smoke ? " [smoke]" : "");
        std::printf("%-8s %10s   %-24s %s\n", "app", "ms",
                    "cyc/com/abr", "checks");
    } else {
        std::printf("micro_backend: timing vs functional vs trace-replay "
                    "EngineBackend on all registered apps (256 cores)%s\n",
                    smoke ? " [smoke]" : "");
        std::printf("%-8s %10s %10s %8s %10s %8s   %-22s %-22s %s\n",
                    "app", "timing ms", "func ms", "f-spdup", "trace ms",
                    "t-spdup", "timing cyc/com/abr", "trace cyc/com/abr",
                    "checks");
    }

    const char* only = harness::flagValue(argc, argv, "--app");
    // Wall-clock lanes run best-of-3: reps are digest-asserted
    // deterministic, so min ms sheds shared-runner noise without
    // touching what is measured.
    constexpr uint32_t kReps = 3;
    harness::BenchJson json("micro_backend");
    json.meta("smoke", smoke);
    if (onlyBackend)
        json.meta("backend", onlyBackend);
    int failures = 0;
    uint32_t traceApps = 0, traceFast = 0;
    for (const auto& name : apps::appNames()) {
        if (only && name != only)
            continue;
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = smoke ? apps::Preset::Tiny : apps::presetFromEnv();
        p.seed = 42;
        app->setup(p);

        SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 42);
        harness::applyHostThreads(cfg, argc, argv);
        harness::applyConcConflicts(cfg, argc, argv);
        harness::applyPolicy(cfg, argc, argv);
        harness::applyTrace(cfg, argc, argv);
        if (!cfg.traceFile.empty() && !only)
            fatal("--trace names one app's trace file; pair it with "
                  "--app=name");

        // cycles/committed/aborted(conflict+displace+gridlock)
        auto fmtRow = [](const RunOut& r, char* buf, size_t n) {
            std::snprintf(buf, n, "%llu/%llu/%llu(%llu+%llu+%llu)",
                          (unsigned long long)r.cycles,
                          (unsigned long long)r.committed,
                          (unsigned long long)r.aborted,
                          (unsigned long long)r.abrConflict,
                          (unsigned long long)r.abrDisplace,
                          (unsigned long long)r.abrGridlock);
        };

        if (onlyBackend) {
            std::string lane(onlyBackend);
            bool digestOk = true;
            RunOut r;
            if (lane == "trace-replay" && !cfg.traceFile.empty()) {
                // --trace=FILE (one app only): load the trace if the
                // file exists, else record once and save it — the
                // on-disk round trip the CI trace smoke exercises.
                cfg.engineBackend = lane;
                harness::prepareTraceReplay(*app, cfg);
                r = runOne(*app, cfg, lane);
                digestOk =
                    r.resultDigest == cfg.traceData->recordResultDigest;
            } else if (lane == "trace-replay" || lane == "trace-record") {
                RunOut rec;
                auto trace = recordTrace(*app, cfg, rec);
                if (lane == "trace-record") {
                    r = rec;
                } else {
                    cfg.traceData = trace;
                    r = runOne(*app, cfg, lane);
                    digestOk = r.resultDigest == rec.resultDigest;
                }
            } else {
                r = runOne(*app, cfg, lane);
            }
            if (!r.valid || !digestOk)
                failures++;
            char rb[64];
            fmtRow(r, rb, sizeof(rb));
            std::printf("%-8s %10.1f   %-24s %s%s\n", name.c_str(), r.ms,
                        rb, r.valid ? "valid" : "INVALID",
                        digestOk ? "" : ", RESULT MISMATCH vs record");
            json.beginRow();
            json.val("app", name);
            json.val("backend", lane);
            json.val("ms", r.ms);
            json.val("sim_cycles", r.cycles);
            json.val("committed", r.committed);
            json.val("aborted", r.aborted);
            json.val("digest_ok", digestOk);
            json.val("valid", r.valid);
            continue;
        }

        RunOut t = runBest(*app, cfg, "timing", kReps);
        RunOut f = runBest(*app, cfg, "functional", kReps);
        RunOut rec;
        SimConfig repCfg = cfg;
        repCfg.traceData = recordTrace(*app, cfg, rec);
        RunOut r = runBest(*app, repCfg, "trace-replay", kReps);

        bool digestOk = t.resultDigest == f.resultDigest &&
                        t.resultDigest == rec.resultDigest &&
                        t.resultDigest == r.resultDigest;
        bool allValid = t.valid && f.valid && rec.valid && r.valid;
        bool ok = digestOk && allValid;
        if (!ok)
            failures++;
        traceApps++;
        traceFast += r.ms > 0 && t.ms / r.ms >= 3.0;

        json.beginRow();
        json.val("app", name);
        json.val("timing_ms", t.ms);
        json.val("functional_ms", f.ms);
        json.val("speedup", t.ms / f.ms);
        json.val("trace_ms", r.ms);
        json.val("trace_speedup", t.ms / r.ms);
        json.val("timing_cycles", t.cycles);
        json.val("functional_cycles", f.cycles);
        json.val("trace_cycles", r.cycles);
        json.val("timing_aborted", t.aborted);
        json.val("functional_aborted", f.aborted);
        json.val("trace_aborted", r.aborted);
        json.val("trace_fallbacks", r.traceFallbacks);
        json.val("digest_ok", digestOk);
        json.val("valid", allValid);

        char tb[64], rb[64];
        fmtRow(t, tb, sizeof(tb));
        fmtRow(r, rb, sizeof(rb));
        std::printf("%-8s %10.1f %10.1f %7.2fx %10.1f %7.2fx   %-22s "
                    "%-22s %s%s%s%s%s\n",
                    name.c_str(), t.ms, f.ms, t.ms / f.ms, r.ms,
                    t.ms / r.ms, tb, rb,
                    digestOk ? "results identical" : "RESULT MISMATCH",
                    t.valid ? "" : ", timing INVALID",
                    f.valid ? "" : ", functional INVALID",
                    rec.valid ? "" : ", record INVALID",
                    r.valid ? "" : ", replay INVALID");
    }

    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d app(s) failed validation or diverged "
                    "across backends\n",
                    failures);
        return 1;
    }
    if (onlyBackend) {
        std::printf("\nall apps validate under the %s backend\n",
                    onlyBackend);
    } else {
        std::printf("\nall apps validate under all backends with "
                    "identical results; trace-replay >= 3x faster than "
                    "timing on %u/%u apps\n",
                    traceFast, traceApps);
    }
    return 0;
}
