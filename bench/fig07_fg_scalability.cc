/**
 * @file
 * Figure 7: speedup of fine-grain (FG) vs coarse-grain (CG) versions of
 * bfs, sssp, astar, color under the three schedulers, all relative to
 * the CG version at 1 core.
 *
 * With --backend=trace-replay, each (app, grain, scheduler) series
 * records the timing model once at the first core count and replays the
 * captured trace across the rest of the sweep; harness::sweep
 * hard-checks every replayed point's result digest against the
 * recording run's.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 7: fine-grain vs coarse-grain scalability",
           "Paper: FG improves Hints uniformly (up to 2.7x); mixed "
           "results under Random/Stealing");

    const SchedulerType scheds[] = {SchedulerType::Hints,
                                    SchedulerType::Random,
                                    SchedulerType::Stealing};
    auto cores = coreSweep();
    for (const auto& name : apps::fineGrainAppNames()) {
        Table t(coreHeaders());
        uint64_t base = 0;
        for (bool fg : {false, true}) {
            auto app = loadApp(name, fg);
            for (auto s : scheds) {
                auto series = sweep(*app, s, cores);
                if (!base)
                    base = series[0].stats.cycles; // CG @ 1 core
                printSpeedupRow(t,
                                std::string(fg ? "FG " : "CG ") +
                                    schedulerName(s),
                                series, base);
            }
        }
        std::printf("\n-- %s --\n", name.c_str());
        t.print();
        t.writeCsv("fig07_" + name);
    }
    return 0;
}
