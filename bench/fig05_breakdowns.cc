/**
 * @file
 * Figure 5: breakdown of (a) core cycles and (b) NoC data transferred at
 * the largest system under Random, Stealing, and Hints, each normalized
 * to Random's total for that app.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 5: core-cycle and NoC-traffic breakdowns (R/S/H)",
           "Paper: Hints cuts aborted cycles up to 6x and traffic up to "
           "32x (kmeans) vs Random");

    uint32_t cores = maxCores();
    Table cyc({"app", "sched", "commit", "abort", "spill", "stall",
               "empty", "total"});
    Table traf({"app", "sched", "mem_accs", "aborts", "tasks", "gvt",
                "total"});
    const SchedulerType scheds[] = {SchedulerType::Random,
                                    SchedulerType::Stealing,
                                    SchedulerType::Hints};
    for (const auto& name : apps::appNames()) {
        auto app = loadApp(name);
        double cycNorm = 0, trafNorm = 0;
        for (auto s : scheds) {
            auto r = runOnce(*app, SimConfig::withCores(cores, s));
            if (s == SchedulerType::Random) {
                cycNorm = double(r.stats.totalCoreCycles());
                trafNorm = double(r.stats.totalFlits());
            }
            auto crow = cycleBreakdownRow(r.stats, cycNorm);
            crow.insert(crow.begin(), schedulerName(s));
            crow.insert(crow.begin(), name);
            cyc.addRow(crow);
            auto trow = trafficBreakdownRow(r.stats, trafNorm);
            trow.insert(trow.begin(), schedulerName(s));
            trow.insert(trow.begin(), name);
            traf.addRow(trow);
        }
    }
    std::printf("\n(a) aggregate core cycles at %u cores (norm. Random)\n",
                cores);
    cyc.print();
    cyc.writeCsv("fig05a_cycles");
    std::printf("\n(b) NoC flits injected at %u cores (norm. Random)\n",
                cores);
    traf.print();
    traf.writeCsv("fig05b_traffic");
    return 0;
}
