/**
 * @file
 * Concurrent conflict-check microbenchmark: coordinator-only checks vs
 * worker-side bank probes (cfg.concurrentConflicts) across line-table
 * bank counts, on a conflict-heavy 64-tile (256-core) workload.
 *
 * Tasks hammer a small shared array with read-modify-write chains, so
 * every access's conflict check scans real reader/writer lists and the
 * abort cascade fires regularly — the probe/resolve split's worst and
 * best case at once: deep scans are worth offloading, while every
 * registration bumps its bank's op-sequence and invalidates in-flight
 * probes. Sweeping `lineTableBanks` shows the data-centric claim
 * directly: more banks → fewer invalidations per probe (higher hit
 * rate) and wider concurrency.
 *
 * Two gates are hard failures:
 *  - every concurrent run's stats digest must equal the serial run's
 *    (thread-count and probe invisibility — the same contract the
 *    golden tests pin), and
 *  - with concurrent checks on, worker probes must actually run
 *    (conflictPhases > 0) when host threads > 1.
 *
 * Wall-clock speedup depends on the host's core count and is reported,
 * not asserted (a single-core runner time-shares everything).
 *
 * Flags: --smoke (CI-sized run), --host-threads=N (default 8),
 * --json=FILE (machine-readable results, docs/benchmarks.md schema).
 */
#include <chrono>
#include <cstdio>
#include <cstring>

#include "base/logging.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "swarm/machine.h"

namespace {

using namespace ssim;

constexpr uint32_t kCells = 256; ///< shared RMW targets (32 cache lines)
struct BenchState
{
    alignas(64) uint64_t cells[kCells];
};
BenchState g_state;

// A read-read-compute-write chain over pseudo-randomly chosen shared
// cells: multi-line footprints, frequent cross-task conflicts.
swarm::TaskCoro
rmwTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<BenchState>(args[0]);
    uint64_t a = (ts * 7) % kCells, b = (ts * 13 + 5) % kCells;
    uint64_t va = co_await ctx.read(&st->cells[a]);
    uint64_t vb = co_await ctx.read(&st->cells[b]);
    co_await ctx.compute(uint32_t(8 + ts % 17));
    co_await ctx.write(&st->cells[a], va + vb + ts);
}

struct RunOut
{
    double ms = 0;
    uint64_t digest = 0;
    SimStats stats;
    Machine::HostExecStats host;
};

RunOut
runOne(uint32_t ntasks, uint32_t banks, uint32_t host_threads, bool conc)
{
    std::memset(g_state.cells, 0, sizeof(g_state.cells));
    SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 42);
    cfg.lineTableBanks = banks;
    cfg.hostThreads = host_threads;
    cfg.concurrentConflicts = conc;
    Machine m(cfg);
    for (uint64_t i = 0; i < ntasks; i++)
        m.enqueueInitial(rmwTask, i / 4, swarm::Hint(i % 64), &g_state);
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    RunOut out;
    out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.digest = statsDigest(m.stats());
    out.stats = m.stats();
    out.host = m.hostExecStats();
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");

    uint32_t threads = 8;
    {
        SimConfig flagCfg;
        flagCfg.hostThreads = 0; // sentinel: detect an explicit setting
        harness::applyHostThreads(flagCfg, argc, argv);
        if (flagCfg.hostThreads >= 1)
            threads = flagCfg.hostThreads;
    }
    uint32_t ntasks = smoke ? 3072 : 12288;

    harness::banner(
        "micro_conflict: coordinator-only vs concurrent conflict checks",
        "contended RMW tasks on 64 tiles / 256 cores; digest equality "
        "with serial is the hard gate");
    std::printf("%u tasks, %u host threads%s\n", ntasks, threads,
                smoke ? " [smoke]" : "");

    harness::Table table({"banks", "serial ms", "conc ms", "speedup",
                          "phases", "probes", "hit/stale/cold",
                          "contended", "scrubbed", "digest"});
    harness::BenchJson json("micro_conflict");
    json.meta("smoke", smoke);
    json.meta("tasks", uint64_t(ntasks));
    json.meta("host_threads", uint64_t(threads));

    int failures = 0;
    for (uint32_t banks : {1u, 4u, 16u, 64u}) {
        RunOut serial = runOne(ntasks, banks, 1, false);
        RunOut conc = runOne(ntasks, banks, threads, true);

        bool digestOk = conc.digest == serial.digest;
        // The machinery must actually engage when it can (threads > 1).
        bool engaged = threads == 1 || conc.host.conflictPhases > 0;
        if (!digestOk || !engaged)
            failures++;

        char hsc[64];
        std::snprintf(hsc, sizeof(hsc), "%llu/%llu/%llu",
                      (unsigned long long)conc.stats.concProbeHits,
                      (unsigned long long)conc.stats.concProbeStale,
                      (unsigned long long)conc.stats.concProbeCold);
        table.addRow(
            {std::to_string(banks), harness::fmt(serial.ms, 1),
             harness::fmt(conc.ms, 1),
             harness::fmt(serial.ms / conc.ms, 2) + "x",
             harness::fmtInt(conc.host.conflictPhases),
             harness::fmtInt(conc.stats.concWorkerProbes), hsc,
             harness::fmtInt(conc.stats.bankLockContended),
             harness::fmtInt(conc.stats.lineEntriesScrubbed),
             digestOk ? (engaged ? "identical" : "IDLE") : "MISMATCH"});

        json.beginRow();
        json.val("banks", uint64_t(banks));
        json.val("serial_ms", serial.ms);
        json.val("conc_ms", conc.ms);
        json.val("speedup", serial.ms / conc.ms);
        json.val("conflict_phases", conc.host.conflictPhases);
        json.val("worker_probes", conc.stats.concWorkerProbes);
        json.val("probe_hits", conc.stats.concProbeHits);
        json.val("probe_stale", conc.stats.concProbeStale);
        json.val("probe_cold", conc.stats.concProbeCold);
        json.val("lock_contended", conc.stats.bankLockContended);
        json.val("scrubbed", conc.stats.lineEntriesScrubbed);
        json.val("sim_cycles", conc.stats.cycles);
        json.val("aborts_conflict", conc.stats.abortsConflict);
        json.val("digest_ok", digestOk);
        json.val("engaged", engaged);
    }
    table.print();
    table.writeCsv("micro_conflict");
    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d bank configuration(s) diverged from "
                    "serial stats or never engaged\n",
                    failures);
        return 1;
    }
    std::printf("\nall bank counts bit-identical to serial with "
                "concurrent checks engaged\n");
    return 0;
}
