/**
 * @file
 * Table I: benchmark information -- 1-core Swarm run-time, 1-core Swarm
 * performance vs the tuned serial implementation, number of task
 * functions, and hint patterns.
 */
#include "apps/serial_machine.h"
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Table I: benchmark information",
           "Paper's 'perf vs serial' at 1 core ranges from -18% (bfs) "
           "to +70% (des)");

    Table t({"app", "swarm-1c-cycles", "serial-cycles", "vs-serial",
             "task-fns", "hint-pattern"});
    for (const auto& name : apps::appNames()) {
        auto app = loadApp(name);
        auto r = runOnce(*app, SimConfig::withCores(1));
        ssim_assert(r.valid, "%s failed validation", name.c_str());
        SerialMachine sm;
        uint64_t serial = app->serialCycles(sm);
        double rel = double(serial) / double(r.stats.cycles) - 1.0;
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%+.0f%%", rel * 100);
        t.addRow({name, fmtInt(r.stats.cycles), fmtInt(serial), pct,
                  fmtInt(app->numTaskFunctions()), app->hintPattern()});
    }
    t.print();
    t.writeCsv("table1");
    return 0;
}
