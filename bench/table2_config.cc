/**
 * @file
 * Table II: configuration of the modeled system (the largest system in
 * the current sweep; 256 cores under SWARMSIM_FULL=1).
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    requireKnownFlags(argc, argv);
    banner("Table II: system configuration");
    SimConfig cfg =
        SimConfig::withCores(maxCores(), SchedulerType::LBHints);
    std::printf("%s\n", cfg.describe().c_str());
    return 0;
}
