/**
 * @file
 * Figure 3: architecture-independent classification of memory accesses
 * for all nine applications: arguments, and {single,multi}-hint x
 * {read-only, read-write} (paper Sec. IV-B).
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 3: classification of memory accesses",
           "Expected shape: des/nocsim/silo/kmeans mostly single-hint RW; "
           "bfs/sssp/astar/color/genome dominated by multi-hint RW");

    Table t({"app", "arguments", "multi-RO", "single-RO", "multi-RW",
             "single-RW", "accesses"});
    for (const auto& name : apps::appNames()) {
        auto app = loadApp(name);
        AccessClassifier cls;
        SimConfig cfg = SimConfig::withCores(16);
        policies::apply(cfg, "sched=hints");
        auto run = runOnce(*app, cfg, &cls);
        ssim_assert(run.valid, "%s failed validation", name.c_str());
        auto r = cls.classify();
        t.addRow({name, fmt(r.arguments), fmt(r.multiHintRO),
                  fmt(r.singleHintRO), fmt(r.multiHintRW),
                  fmt(r.singleHintRW), fmtInt(r.totalAccesses)});
    }
    t.print();
    t.writeCsv("fig03_classification");
    return 0;
}
