/**
 * @file
 * Parallel host execution microbenchmark: serial event loop vs the
 * N-thread ParallelExecutor on a fig04-style 64-tile (256-core)
 * machine.
 *
 * Two workloads bound the win:
 *
 *  - compute: tasks run a real host-side kernel (an iterated mix64
 *    chain) between awaiters. The kernel is the pure coroutine segment
 *    the executor pre-executes on workers, so wall-clock should scale
 *    with host threads while every stat stays bit-identical to serial.
 *  - membound: tasks are awaiter-chatty (reads/writes with almost no
 *    host compute between suspensions). Nearly all host time is the
 *    coordinator's timing model, so the expected speedup is ~1.0x —
 *    reported honestly; serial mode remains the right default for such
 *    workloads.
 *
 * Each thread count runs with parallel replay off and on (the
 * bank-partitioned worker-side effect apply, docs/architecture.md
 * "Parallel replay"), so the bench measures the coordinator's serial
 * apply loop against the replay path on the same workload.
 *
 * Every configuration's stats digest is checked against the serial run:
 * a digest mismatch is a hard failure, because thread-count invariance
 * is the executor's core contract — with or without replay.
 *
 * Flags: --smoke (CI-sized run), --host-threads=N (upper bound of the
 * thread sweep, also via SWARMSIM_HOST_THREADS), --parallel-replay=on|off
 * (restrict the replay sweep to one setting), --json=FILE
 * (machine-readable results, docs/benchmarks.md). Unrecognized flags
 * fail fast (harness::requireKnownFlags).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "swarm/machine.h"

namespace {

using namespace ssim;

// Shared task state, allocated once so data addresses — and therefore
// cache indexing, hint hashes, and the stats digest — are identical
// across every run of the process.
constexpr uint32_t kMaxTasks = 1u << 14;
struct BenchState
{
    alignas(64) uint64_t cells[kMaxTasks];
    uint32_t iters = 0; ///< kernel length (host work per task)
};
BenchState g_state;

uint64_t
kernel(uint64_t seed, uint32_t iters)
{
    uint64_t x = seed | 1;
    for (uint32_t i = 0; i < iters; i++)
        x = mix64(x + i);
    return x;
}

// One heavy pure segment, then timed effects: the executor pre-executes
// the kernel AND runs ahead through the compute charge, the write, and
// the finish in a single worker visit.
swarm::TaskCoro
computeTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<BenchState>(args[0]);
    uint64_t idx = args[1];
    uint64_t acc = kernel(idx * 0x9e3779b97f4a7c15ull, st->iters);
    co_await ctx.compute(uint32_t(20 + (acc & 31)));
    co_await ctx.write(&st->cells[idx], acc);
}

// Awaiter-chatty: five suspensions, trivial host work between them.
swarm::TaskCoro
memTask(swarm::TaskCtx& ctx, swarm::Timestamp ts, const uint64_t* args)
{
    auto* st = swarm::argPtr<BenchState>(args[0]);
    uint64_t idx = args[1];
    uint64_t n = uint64_t(args[2]);
    uint64_t a = co_await ctx.read(&st->cells[idx]);
    uint64_t b = co_await ctx.read(&st->cells[(idx + 64) % n]);
    co_await ctx.compute(5);
    uint64_t c = co_await ctx.read(&st->cells[(idx + 128) % n]);
    co_await ctx.write(&st->cells[idx], a + b + c + ts);
}

struct RunOut
{
    double ms = 0;
    uint64_t digest = 0;
    SimStats stats;
    Machine::HostExecStats host;
};

RunOut
runOne(bool compute_bound, uint32_t ntasks, uint32_t host_threads,
       bool replay)
{
    std::memset(g_state.cells, 0, sizeof(g_state.cells));
    SimConfig cfg = SimConfig::withCores(256, SchedulerType::Hints, 42);
    cfg.hostThreads = host_threads;
    cfg.parallelReplay = replay;
    Machine m(cfg);
    for (uint64_t i = 0; i < ntasks; i++) {
        if (compute_bound)
            m.enqueueInitial(computeTask, i / 8, swarm::Hint(i), &g_state,
                             i);
        else
            m.enqueueInitial(memTask, i / 8, swarm::Hint(i), &g_state, i,
                             uint64_t(ntasks));
    }
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    RunOut out;
    out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    // statsDigest hashes the same fields as the golden-determinism
    // tests, so this gate and theirs cannot drift apart.
    out.digest = statsDigest(m.stats());
    out.stats = m.stats();
    out.host = m.hostExecStats();
    return out;
}

/// Which --parallel-replay settings to sweep (both unless restricted).
struct ReplaySweep
{
    bool off = true;
    bool on = true;
};

int
runWorkload(const char* name, bool compute_bound, uint32_t ntasks,
            uint32_t max_threads, ReplaySweep sweep,
            harness::BenchJson& json)
{
    std::printf("\n== %s: %u tasks on 64 tiles / 256 cores ==\n", name,
                ntasks);
    RunOut serial = runOne(compute_bound, ntasks, 1, /*replay=*/false);
    std::printf("  serial: %8.1f ms  (cycles=%llu committed=%llu "
                "aborted=%llu)\n",
                serial.ms, (unsigned long long)serial.stats.cycles,
                (unsigned long long)serial.stats.tasksCommitted,
                (unsigned long long)serial.stats.tasksAborted);
    json.beginRow();
    json.val("workload", name);
    json.val("threads", uint64_t(1));
    json.val("replay", false);
    json.val("ms", serial.ms);
    json.val("speedup", 1.0);
    json.val("digest_ok", true);
    json.val("sim_cycles", serial.stats.cycles);

    int failures = 0;
    for (uint32_t threads = 2; threads <= max_threads; threads *= 2) {
        for (int r = 0; r < 2; r++) {
            bool replay = r == 1;
            if (replay ? !sweep.on : !sweep.off)
                continue;
            RunOut p = runOne(compute_bound, ntasks, threads, replay);
            bool ok = p.digest == serial.digest;
            if (!ok)
                failures++;
            std::printf(
                "  %2u thr%s: %8.1f ms  %5.2fx  digest %s  "
                "(pre-resumed %llu; replay applied %llu / fallback %llu "
                "/ squashed %llu in %llu phases)\n",
                threads, replay ? " +replay" : "        ", p.ms,
                serial.ms / p.ms, ok ? "identical" : "MISMATCH",
                (unsigned long long)p.host.preResumed,
                (unsigned long long)p.stats.workerApplies,
                (unsigned long long)p.stats.coordinatorFallbackApplies,
                (unsigned long long)p.stats.replaySquashed,
                (unsigned long long)p.host.replayPhases);
            json.beginRow();
            json.val("workload", name);
            json.val("threads", uint64_t(threads));
            json.val("replay", replay);
            json.val("ms", p.ms);
            json.val("speedup", serial.ms / p.ms);
            json.val("digest_ok", ok);
            json.val("pre_resumed", p.host.preResumed);
            json.val("phases", p.host.phases);
            json.val("scans", p.host.scans);
            json.val("replay_phases", p.host.replayPhases);
            json.val("worker_applies", p.stats.workerApplies);
            json.val("fallback_applies",
                     p.stats.coordinatorFallbackApplies);
            json.val("squashed", p.stats.replaySquashed);
            json.val("sim_cycles", p.stats.cycles);
        }
    }
    return failures;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");

    ReplaySweep sweep;
    if (const char* v = harness::flagValue(argc, argv, "--parallel-replay")) {
        if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0) {
            sweep.off = false;
        } else if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
            sweep.on = false;
        } else {
            fatal("--parallel-replay needs on or off, got '%s'", v);
        }
    }

    uint32_t maxThreads = 8;
    {
        SimConfig flagCfg;
        flagCfg.hostThreads = 0; // sentinel: detect an explicit setting
        harness::applyHostThreads(flagCfg, argc, argv);
        if (flagCfg.hostThreads >= 1)
            maxThreads = flagCfg.hostThreads; // 1 = serial-only run
    }

    uint32_t ntasks = smoke ? 2048 : 8192;
    g_state.iters = smoke ? 2000 : 6000;
    ssim_assert(ntasks <= kMaxTasks);

    std::printf("micro_parallel_host: serial loop vs ParallelExecutor "
                "(max %u host threads)%s\n",
                maxThreads, smoke ? " [smoke]" : "");

    harness::BenchJson json("micro_parallel_host");
    json.meta("smoke", smoke);
    json.meta("tasks", uint64_t(ntasks));
    json.meta("kernel_iters", uint64_t(g_state.iters));
    json.meta("max_threads", uint64_t(maxThreads));

    int failures = 0;
    failures +=
        runWorkload("compute-bound", true, ntasks, maxThreads, sweep, json);
    failures +=
        runWorkload("memory-bound", false, ntasks, maxThreads, sweep, json);

    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d thread configuration(s) diverged from "
                    "serial stats\n",
                    failures);
        return 1;
    }
    std::printf("\nall thread counts bit-identical to serial\n");
    return 0;
}
