/**
 * @file
 * Event-queue microbenchmark: single heap vs per-tile lanes, and
 * std::function vs the SBO InlineCallback, at 1–256 tiles.
 *
 * The workload mirrors the simulator's steady state under the paper's
 * scaling discipline (Sec. IV-C): the pending population is held
 * constant per tile (256 events/tile = the task-queue capacity), so the
 * single heap grows with the tile count while each lane stays small.
 * Every pop reschedules one successor at now + small delta on a
 * mix64-derived tile, like dispatch/resume chains do, and each callback
 * carries a (ptr, uid, gen)-sized capture — the simulator's real
 * footprint, which overflows std::function's 16-byte inline buffer but
 * fits InlineCallback's inline buffer.
 *
 * Heap allocations are counted via a global operator new hook;
 * InlineCallback::heapFallbacks() proves the inline buffer suffices.
 *
 * Run with --smoke for the CI-sized run (a couple of seconds);
 * --json=FILE emits machine-readable results (docs/benchmarks.md).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "base/hash.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "sim/event_queue.h"
#include "sim/event_queue_ref.h"

// ---- Allocation counting ----------------------------------------------------

static uint64_t g_allocs = 0;

void*
operator new(size_t size)
{
    g_allocs++;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new(size_t size, const std::nothrow_t&) noexcept
{
    g_allocs++;
    return std::malloc(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace ssim;

struct BenchResult
{
    double mevPerSec = 0;      ///< million events per second
    double allocsPerEvent = 0; ///< heap allocations per event
};

template <typename Q>
BenchResult
drive(Q& q, uint32_t ntiles, uint32_t per_tile, uint64_t total_events)
{
    struct Ctx
    {
        Q* q;
        uint64_t executed = 0;
        uint64_t scheduled = 0;
        uint64_t rng = 0;
        uint64_t sink = 0;
        uint64_t total = 0;
        uint32_t ntiles = 0;
    };
    // One event: the simulator's hot-callback shape — a subsystem
    // pointer plus a (uid, gen) pair (24 bytes of capture).
    struct Step
    {
        Ctx* c;
        uint64_t uid;
        uint64_t gen;
        void
        operator()() const
        {
            c->sink += uid ^ gen;
            c->executed++;
            if (c->scheduled >= c->total)
                return; // budget exhausted: drain
            uint64_t h = splitmix64(c->rng);
            uint32_t dst = uint32_t(mix64(h) % c->ntiles);
            Cycle when = c->q->now() + 1 + (h & 63);
            c->scheduled++;
            c->q->scheduleOn(dst, when, Step{c, h, c->scheduled});
        }
    };

    Ctx ctx;
    ctx.q = &q;
    ctx.rng = 0x9e3779b97f4a7c15ull * (ntiles + 1);
    ctx.total = total_events;
    ctx.ntiles = ntiles;

    uint64_t allocs_before = g_allocs;
    auto t0 = std::chrono::steady_clock::now();

    for (uint32_t t = 0; t < ntiles; t++)
        for (uint32_t i = 0; i < per_tile; i++) {
            ctx.scheduled++;
            q.scheduleOn(t, 1 + i, Step{&ctx, t, i});
        }
    q.run();

    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    BenchResult r;
    r.mevPerSec = double(ctx.executed) / 1e6 / secs;
    r.allocsPerEvent =
        ctx.executed ? double(g_allocs - allocs_before) / ctx.executed : 0;
    if (ctx.sink == 0xdeadbeef) // defeat optimization of the payload
        std::printf("!");
    return r;
}

/** Best-of-3 throughput on fresh queues (noise suppression). */
template <typename MakeQ>
BenchResult
measure(MakeQ make_q, uint32_t ntiles, uint32_t per_tile,
        uint64_t total_events)
{
    BenchResult best;
    for (int rep = 0; rep < 3; rep++) {
        auto q = make_q();
        BenchResult r = drive(*q, ntiles, per_tile, total_events);
        if (r.mevPerSec > best.mevPerSec)
            best = r;
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    ssim::harness::requireKnownFlags(argc, argv);
    bool smoke = ssim::harness::hasFlag(argc, argv, "--smoke");
    const uint64_t events = smoke ? 300000 : 3000000;
    // Constant pending population per tile: 64 task-queue entries/core
    // x 4 cores (Table II).
    const uint32_t per_tile = 256;

    ssim::harness::banner(
        "micro_eventq: single heap vs per-tile lanes",
        "pop+reschedule throughput; allocs = heap allocations per event");

    ssim::harness::Table table(
        {"tiles", "single(std::function)", "single(InlineCallback)",
         "sharded lanes", "sharded speedup", "allocs/ev single",
         "allocs/ev sharded"});
    ssim::harness::BenchJson json("micro_eventq");
    json.meta("smoke", smoke);
    json.meta("events", events);
    json.meta("per_tile", uint64_t(per_tile));

    double speedup_at_1 = 0, speedup_at_64 = 0;
    for (uint32_t ntiles : {1u, 4u, 16u, 64u, 144u, 256u}) {
        auto rfn = measure(
            [] {
                return std::make_unique<
                    ssim::SingleHeapEventQueue<std::function<void()>>>();
            },
            ntiles, per_tile, events);

        auto rsbo = measure(
            [] {
                return std::make_unique<
                    ssim::SingleHeapEventQueue<ssim::InlineCallback>>();
            },
            ntiles, per_tile, events);

        auto rlanes = measure(
            [ntiles] {
                auto q = std::make_unique<ssim::EventQueue>();
                q->configureLanes(ntiles);
                return q;
            },
            ntiles, per_tile, events);

        // Old implementation (single heap + std::function) vs new
        // (lanes + InlineCallback); the InlineCallback single heap is an
        // ablation isolating the callable from the sharding.
        double speedup = rlanes.mevPerSec / rfn.mevPerSec;
        if (ntiles == 1)
            speedup_at_1 = speedup;
        if (ntiles == 64)
            speedup_at_64 = speedup;

        table.addRow({std::to_string(ntiles),
                      ssim::harness::fmt(rfn.mevPerSec, 2) + " Mev/s",
                      ssim::harness::fmt(rsbo.mevPerSec, 2) + " Mev/s",
                      ssim::harness::fmt(rlanes.mevPerSec, 2) + " Mev/s",
                      ssim::harness::fmt(speedup, 2) + "x",
                      ssim::harness::fmt(rfn.allocsPerEvent, 2),
                      ssim::harness::fmt(rlanes.allocsPerEvent, 2)});

        json.beginRow();
        json.val("tiles", uint64_t(ntiles));
        json.val("single_stdfunction_mevs", rfn.mevPerSec);
        json.val("single_inlinecallback_mevs", rsbo.mevPerSec);
        json.val("sharded_mevs", rlanes.mevPerSec);
        json.val("sharded_speedup", speedup);
        json.val("allocs_per_event_single", rfn.allocsPerEvent);
        json.val("allocs_per_event_sharded", rlanes.allocsPerEvent);
    }
    table.print();
    table.writeCsv("micro_eventq");

    std::printf("\nInlineCallback heap fallbacks: %llu (0 = every callback "
                "fit the %zu-byte inline buffer)\n",
                (unsigned long long)ssim::InlineCallback::heapFallbacks(),
                ssim::InlineCallback::kInlineSize);

    bool ok = speedup_at_1 >= 0.9 && speedup_at_64 > 1.0;
    std::printf("acceptance: 1-tile %.2fx (>=0.90 required), 64-tile %.2fx "
                "(>1.00 required): %s\n",
                speedup_at_1, speedup_at_64, ok ? "PASS" : "FAIL");
    json.meta("heap_fallbacks",
              ssim::InlineCallback::heapFallbacks());
    bool wrote = json.finish(argc, argv, ok);
    // Smoke mode (CI on shared runners) exercises the code but does not
    // gate on timing ratios; the full run is the strict check.
    return ((ok || smoke) && wrote) ? 0 : 1;
}
