/**
 * @file
 * Figure 2: performance of Random, Stealing, Hints, and LBHints on des.
 * (a) speedup relative to 1-core Swarm; (b) breakdown of total core
 * cycles at the largest system, relative to Random.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 2: des under Random / Stealing / Hints / LBHints",
           "Paper: Stealing 52x, Random 49x, Hints 186x, LBHints 236x "
           "at 256 cores");

    auto app = loadApp("des");
    auto cores = coreSweep();

    // Schedulers selected by name through the policy registry.
    const auto scheds = policies::schedulerNames();

    // (a) Speedups, relative to 1-core (all schedulers equivalent at 1c).
    std::vector<std::vector<RunResult>> results;
    for (const auto& s : scheds)
        results.push_back(sweep(*app, "sched=" + s, cores));
    uint64_t base = results[0][0].stats.cycles;

    Table speedup(coreHeaders());
    for (size_t i = 0; i < results.size(); i++)
        printSpeedupRow(speedup, scheds[i], results[i], base);
    std::printf("\n(a) des speedup vs 1-core Swarm\n");
    speedup.print();
    speedup.writeCsv("fig02a_des_speedup");

    // (b) Core-cycle breakdown at max cores, normalized to Random's total.
    std::printf("\n(b) total core cycles at %u cores (norm. to Random)\n",
                cores.back());
    Table bd({"scheduler", "commit", "abort", "spill", "stall", "empty",
              "total"});
    double norm = double(results[0].back().stats.totalCoreCycles());
    for (size_t i = 0; i < results.size(); i++) {
        auto row = cycleBreakdownRow(results[i].back().stats, norm);
        row.insert(row.begin(), scheds[i]);
        bd.addRow(row);
    }
    bd.print();
    bd.writeCsv("fig02b_des_breakdown");
    return 0;
}
