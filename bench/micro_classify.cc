/**
 * @file
 * Profile-guided access-classification microbenchmark: how much
 * speculative footprint the classification pass keeps out of the line
 * table, and what it buys in conflict aborts (DESIGN.md §5.3,
 * docs/configuration.md `classifyMode`).
 *
 * For kmeans and nocsim — the two apps whose hot accumulator lines the
 * profile classifies as Reduction — and each engine backend, the bench
 * runs the same workload twice on a 64-tile / 256-core machine:
 *
 *  A. classification off, with an AccessClassifier profiling every
 *     committed task's access trace;
 *  B. classification on, consuming the map built from run A's profile
 *     and the app's declared reduction ranges.
 *
 * Two checks are hard failures:
 *
 *  - every run must validate against the app's host-native oracle, and
 *  - run B's result digest must equal run A's (classification is a
 *    conflict-pipeline optimization; it must never change results).
 *
 * The payoff columns are line-table registrations (classified accesses
 * skip the banks entirely) and conflict aborts (same-line commutative
 * updates stop killing each other); both are delta-gated against
 * bench/baselines/micro_classify.json in CI.
 *
 * Flags: --smoke (CI-sized run at the tiny preset), --host-threads=N /
 * --conc-conflicts=on|off / --parallel-replay=on|off / --policy=spec
 * (harness/cli.h overrides), --json=FILE (machine-readable results,
 * docs/benchmarks.md).
 */
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/app.h"
#include "base/logging.h"
#include "harness/classifier.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "swarm/classification.h"
#include "swarm/machine.h"

namespace {

using namespace ssim;

struct RunOut
{
    double ms = 0;
    uint64_t resultDigest = 0;
    uint64_t cycles = 0;
    uint64_t lineTableRegs = 0;
    uint64_t abortsConflict = 0;
    uint64_t conflictChecks = 0;
    uint64_t classifyAborts = 0;
    uint64_t demotions = 0;
    uint64_t redOps = 0;
    bool valid = false;
};

RunOut
runOne(apps::App& app, const SimConfig& cfg, AccessProfiler* profiler)
{
    app.reset();
    Machine m(cfg);
    if (profiler)
        m.setProfiler(profiler);
    app.enqueueInitial(m);
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    RunOut out;
    out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.resultDigest = app.resultDigest();
    out.cycles = m.stats().cycles;
    out.lineTableRegs = m.stats().lineTableRegs;
    out.abortsConflict = m.stats().abortsConflict;
    out.conflictChecks = m.stats().conflictChecks;
    out.classifyAborts = m.stats().classifyAborts;
    out.demotions = m.stats().classifiedDemotions;
    out.redOps = m.stats().classifiedRedOps;
    out.valid = app.validate();
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");

    harness::banner(
        "micro_classify: profile-guided access classification",
        "off vs profile-guided on 64 tiles / 256 cores; digest equality "
        "between the two runs is the hard gate");

    std::printf("%-8s %-10s %12s %12s %8s %8s %6s %6s %s\n", "app",
                "backend", "regs off", "regs on", "abr off", "abr on",
                "fold", "demote", "checks");

    harness::BenchJson json("micro_classify");
    json.meta("smoke", smoke);
    int failures = 0;
    for (const std::string& name : {std::string("kmeans"),
                                    std::string("nocsim")}) {
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = smoke ? apps::Preset::Tiny : apps::presetFromEnv();
        p.seed = 42;
        app->setup(p);

        for (const char* backend : {"timing", "functional"}) {
            SimConfig cfg =
                SimConfig::withCores(256, SchedulerType::Hints, 42);
            cfg.engineBackend = backend;
            harness::applyHostThreads(cfg, argc, argv);
            harness::applyConcConflicts(cfg, argc, argv);
            harness::applyParallelReplay(cfg, argc, argv);
            harness::applyPolicy(cfg, argc, argv);

            // Run A: classification off, profiling.
            harness::AccessClassifier cls;
            RunOut off = runOne(*app, cfg, &cls);

            // Run B: classification on, consuming run A's profile.
            SimConfig onCfg = cfg;
            onCfg.classifyMode = "profile";
            onCfg.classifyMap = std::make_shared<ClassificationMap>(
                cls.buildMap(app->reductionRanges()));
            RunOut on = runOne(*app, onCfg, nullptr);

            bool digestOk = off.resultDigest == on.resultDigest;
            bool ok = digestOk && off.valid && on.valid;
            if (!ok)
                failures++;

            json.beginRow();
            json.val("app", name);
            json.val("backend", backend);
            json.val("classified_lines",
                     uint64_t(onCfg.classifyMap->size()));
            json.val("ms_off", off.ms);
            json.val("ms_on", on.ms);
            json.val("cycles_off", off.cycles);
            json.val("cycles_on", on.cycles);
            json.val("line_table_regs_off", off.lineTableRegs);
            json.val("line_table_regs_on", on.lineTableRegs);
            json.val("conflict_aborts_off", off.abortsConflict);
            json.val("conflict_aborts_on", on.abortsConflict);
            json.val("conflict_checks_off", off.conflictChecks);
            json.val("conflict_checks_on", on.conflictChecks);
            json.val("classify_aborts", on.classifyAborts);
            json.val("demotions", on.demotions);
            json.val("red_ops", on.redOps);
            json.val("digest_ok", digestOk);
            json.val("valid", off.valid && on.valid);

            std::printf(
                "%-8s %-10s %12llu %12llu %8llu %8llu %6llu %6llu "
                "%s%s\n",
                name.c_str(), backend,
                (unsigned long long)off.lineTableRegs,
                (unsigned long long)on.lineTableRegs,
                (unsigned long long)off.abortsConflict,
                (unsigned long long)on.abortsConflict,
                (unsigned long long)on.redOps,
                (unsigned long long)on.demotions,
                digestOk ? "results identical" : "RESULT MISMATCH",
                off.valid && on.valid ? "" : ", INVALID");
        }
    }

    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d run(s) failed validation or diverged "
                    "with classification on\n",
                    failures);
        return 1;
    }
    std::printf("\nclassification preserves results on every app and "
                "backend\n");
    return 0;
}
