/**
 * @file
 * Figure 8: core-cycle and NoC-traffic breakdowns of the fine-grain
 * versions at the largest system under Random, Stealing, and Hints,
 * normalized to the coarse-grain version under Random (as in Fig. 5).
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 8: fine-grain breakdowns (normalized to CG Random)",
           "Paper: FG under Hints cuts traffic up to 4.8x vs CG Hints");

    uint32_t cores = maxCores();
    Table cyc({"app", "sched", "commit", "abort", "spill", "stall",
               "empty", "total"});
    Table traf({"app", "sched", "mem_accs", "aborts", "tasks", "gvt",
                "total"});
    const SchedulerType scheds[] = {SchedulerType::Random,
                                    SchedulerType::Stealing,
                                    SchedulerType::Hints};
    for (const auto& name : apps::fineGrainAppNames()) {
        // Normalization: CG under Random.
        auto cgApp = loadApp(name, false);
        auto cgRun =
            runOnce(*cgApp, SimConfig::withCores(
                                cores, SchedulerType::Random));
        double cycNorm = double(cgRun.stats.totalCoreCycles());
        double trafNorm = double(cgRun.stats.totalFlits());

        auto fgApp = loadApp(name, true);
        for (auto s : scheds) {
            auto r = runOnce(*fgApp, SimConfig::withCores(cores, s));
            auto crow = cycleBreakdownRow(r.stats, cycNorm);
            crow.insert(crow.begin(), schedulerName(s));
            crow.insert(crow.begin(), name);
            cyc.addRow(crow);
            auto trow = trafficBreakdownRow(r.stats, trafNorm);
            trow.insert(trow.begin(), schedulerName(s));
            trow.insert(trow.begin(), name);
            traf.addRow(trow);
        }
    }
    std::printf("\n(a) FG aggregate core cycles at %u cores\n", cores);
    cyc.print();
    cyc.writeCsv("fig08a_cycles");
    std::printf("\n(b) FG NoC flits injected at %u cores\n", cores);
    traf.print();
    traf.writeCsv("fig08b_traffic");
    return 0;
}
