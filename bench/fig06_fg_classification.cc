/**
 * @file
 * Figure 6: memory-access classification of coarse-grain (CG) vs
 * fine-grain (FG) versions of bfs, sssp, astar, and color. FG bars are
 * normalized to the CG version's access count, so values show both the
 * category shift (RW data becomes single-hint) and the extra work.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 6: CG vs FG access classification",
           "Paper: FG makes virtually all read-write accesses single-hint "
           "at the cost of 8% (sssp) to 4.6x (color) more accesses");

    Table t({"app", "ver", "arguments", "multi-RO", "single-RO",
             "multi-RW", "single-RW", "rel-accesses"});
    for (const auto& name : apps::fineGrainAppNames()) {
        uint64_t cgTotal = 0;
        for (bool fg : {false, true}) {
            auto app = loadApp(name, fg);
            AccessClassifier cls;
            SimConfig cfg = SimConfig::withCores(16);
            policies::apply(cfg, "sched=hints");
            auto run = runOnce(*app, cfg, &cls);
            ssim_assert(run.valid, "%s failed", name.c_str());
            auto r = cls.classify();
            if (!fg)
                cgTotal = r.totalAccesses;
            double rel = double(r.totalAccesses) / double(cgTotal);
            // Scale fractions so bars are relative to the CG total,
            // exactly like the figure.
            t.addRow({name, fg ? "FG" : "CG", fmt(r.arguments * rel),
                      fmt(r.multiHintRO * rel), fmt(r.singleHintRO * rel),
                      fmt(r.multiHintRW * rel), fmt(r.singleHintRW * rel),
                      fmt(rel)});
        }
    }
    t.print();
    t.writeCsv("fig06_fg_classification");
    return 0;
}
