/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's substrates: H3
 * hashing, Bloom filters, cache arrays, the event queue, and end-to-end
 * simulated-cycles-per-second on a small workload.
 */
#include <benchmark/benchmark.h>

#include "apps/app.h"
#include "base/bloom.h"
#include "base/hash.h"
#include "base/rng.h"
#include "harness/cli.h"
#include "mem/cache_array.h"
#include "sim/event_queue.h"
#include "swarm/machine.h"

using namespace ssim;

static void
BM_H3Hash(benchmark::State& state)
{
    H3Hash h(16, 0x1234);
    uint64_t k = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(h.hash(k++));
}
BENCHMARK(BM_H3Hash);

static void
BM_BloomInsertQuery(benchmark::State& state)
{
    BloomFilter f;
    uint64_t k = 0;
    for (auto _ : state) {
        f.insert(k);
        benchmark::DoNotOptimize(f.mayContain(k ^ 1));
        if (++k % 64 == 0)
            f.clear();
    }
}
BENCHMARK(BM_BloomInsertQuery);

static void
BM_CacheArrayAccess(benchmark::State& state)
{
    CacheArray l1(16 * 1024, 8);
    Rng rng(7);
    for (auto _ : state) {
        LineAddr line = rng.range(1024);
        if (!l1.lookup(line))
            l1.insert(line);
    }
}
BENCHMARK(BM_CacheArrayAccess);

static void
BM_EventQueue(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; i++)
            eq.schedule(uint64_t(i * 7 % 997), [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventQueue);

static void
BM_SimulatedCyclesPerSecond(benchmark::State& state)
{
    auto app = apps::makeApp("sssp");
    apps::AppParams p;
    p.preset = apps::Preset::Tiny;
    app->setup(p);
    for (auto _ : state) {
        app->reset();
        SimConfig cfg = SimConfig::withCores(uint32_t(state.range(0)),
                                             SchedulerType::Hints);
        Machine m(cfg);
        app->enqueueInitial(m);
        m.run();
        state.counters["sim_cycles"] = double(m.stats().cycles);
        state.counters["sim_cps"] = benchmark::Counter(
            double(m.stats().cycles), benchmark::Counter::kIsRate);
    }
}
BENCHMARK(BM_SimulatedCyclesPerSecond)->Arg(1)->Arg(16)->Arg(64);

// Not BENCHMARK_MAIN(): like every other bench, typo'd flags must abort
// instead of silently measuring defaults. google-benchmark's own flags
// pass through via the "--benchmark_*" prefix entry.
int
main(int argc, char** argv)
{
    static const char* const kExtras[] = {"--benchmark_*", nullptr};
    harness::requireKnownFlags(argc, argv, kExtras);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
