/**
 * @file
 * Sec. VI-A ablation: load-balancer signal. The paper's LBHints balances
 * per-bucket *committed cycles*; the ablation balances the number of
 * idle tasks per tile instead, which "performs significantly worse ...
 * because balancing the number of idle tasks does not always balance the
 * amount of useful work across tiles".
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Ablation (Sec. VI-A): LB signal = committed cycles vs idle "
           "tasks",
           "Paper: idle-task signal loses up to 9% (des) vs LBHints and "
           "gains less elsewhere");

    uint32_t cores = maxCores();
    Table t({"app", "Hints", "LBHints(committed)", "LBHints(idle)"});
    for (const std::string name : {"des", "nocsim", "silo", "kmeans"}) {
        auto app = loadApp(name);
        auto hints =
            runOnce(*app, SimConfig::withCores(cores, SchedulerType::Hints));

        SimConfig lbc = SimConfig::withCores(cores);
        policies::apply(lbc, "sched=lbhints,lb-signal=committed");
        auto committed = runOnce(*app, lbc);

        SimConfig lbi = SimConfig::withCores(cores);
        policies::apply(lbi, "sched=lbhints,lb-signal=idle");
        auto idle = runOnce(*app, lbi);

        double base = double(hints.stats.cycles);
        t.addRow({name, "1.00x",
                  fmt(base / double(committed.stats.cycles)) + "x",
                  fmt(base / double(idle.stats.cycles)) + "x"});
    }
    t.print();
    t.writeCsv("ablation_lb_signal");
    return 0;
}
