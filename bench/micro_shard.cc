/**
 * @file
 * Scale-out microbenchmark: the sharded process fabric vs the
 * single-process run on every registered app (docs/scale-out.md).
 *
 * For each app the bench runs the same Tiny/16-core workload once
 * single-process and once forked across N shard replicas (default 2)
 * over the shm-ring transport, and reports host wall-clock for both
 * plus the simulated cycle count and cross-shard traffic counters. Two
 * checks are hard failures:
 *
 *  - every run must validate against the app's host-native oracle, and
 *  - the sharded run's stats digest AND result digest must equal the
 *    single-process run's bit-for-bit (digest_ok) — the replicated
 *    state machines are only correct if no replica ever strays.
 *
 * Both runs happen in ONE bench process (fork shares this process's
 * heap addresses), so the address-dependent stats digests are directly
 * comparable. The wall-clock overhead column is the honest cost of the
 * transport: every replica simulates the whole machine, so sharding
 * buys address-space headroom and a process-failure boundary, not
 * speed — a number worth watching, not gating.
 *
 * Flags: --smoke (identical workload, kept for CI symmetry),
 * --app=name (one app only), --shards=N (replica count, default 2),
 * --shard-hop=N (cross-shard NoC hop penalty; changes the digests, so
 * both lanes get it), --json=FILE (machine-readable results,
 * docs/benchmarks.md).
 */
#include <chrono>
#include <cstdio>
#include <string>

#include "apps/app.h"
#include "base/logging.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/shard_runner.h"
#include "sim/topology.h"

namespace {

using namespace ssim;

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char** argv)
{
    static const char* const kExtras[] = {"--app", nullptr};
    harness::requireKnownFlags(argc, argv, kExtras);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");
    const char* only = harness::flagValue(argc, argv, "--app");

    uint32_t nshards = 2;
    if (const char* s = harness::flagValue(argc, argv, "--shards"))
        nshards = harness::parsePositiveInt("--shards", s);
    if (nshards < 2)
        fatal("--shards=%u: the sharded lane needs at least 2 replicas",
              nshards);

    std::printf("micro_shard: single-process vs %u-shard shm-ring run on "
                "all registered apps (16 cores)%s\n",
                nshards, smoke ? " [smoke]" : "");
    std::printf("%-8s %10s %10s %9s %12s %10s %8s   %s\n", "app",
                "plain ms", "shard ms", "overhead", "sim cycles", "steps",
                "progress", "checks");

    harness::BenchJson json("micro_shard");
    json.meta("smoke", smoke);
    json.meta("shards", uint64_t(nshards));
    int failures = 0;
    for (const auto& name : apps::appNames()) {
        if (only && name != only)
            continue;
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = apps::Preset::Tiny;
        p.seed = 42;
        app->setup(p);

        SimConfig cfg = SimConfig::withCores(16, SchedulerType::Hints, 42);
        harness::applyShardHop(cfg, argc, argv);

        SimConfig scfg = cfg;
        scfg.numShards = nshards;
        harness::resolveTopology(scfg);
        // Both lanes must model the SAME simulated machine: the hop
        // penalty only bites with a topology armed, so the plain lane
        // gets the sharded lane's spec (numShards stays 1 — process
        // fan-out is the only difference between the lanes).
        cfg.topology = scfg.topology;

        auto t0 = std::chrono::steady_clock::now();
        harness::RunResult plain = harness::runOnce(*app, cfg);
        double plainMs = msSince(t0);

        t0 = std::chrono::steady_clock::now();
        harness::RunResult sharded = harness::runSharded(*app, scfg);
        double shardMs = msSince(t0);

        bool digestOk =
            statsDigest(sharded.stats) == statsDigest(plain.stats) &&
            sharded.resultDigest == plain.resultDigest;
        bool allValid = plain.valid && sharded.valid;
        if (!digestOk || !allValid)
            failures++;

        json.beginRow();
        json.val("app", name);
        json.val("plain_ms", plainMs);
        json.val("shard_ms", shardMs);
        json.val("sim_cycles", plain.stats.cycles);
        json.val("committed", plain.stats.tasksCommitted);
        json.val("steps_sent", sharded.stats.shardStepsSent);
        json.val("progress_msgs", sharded.stats.shardProgressMsgs);
        json.val("digest_ok", digestOk);
        json.val("valid", allValid);

        std::printf("%-8s %10.1f %10.1f %8.2fx %12llu %10llu %8llu   "
                    "%s%s\n",
                    name.c_str(), plainMs, shardMs,
                    plainMs > 0 ? shardMs / plainMs : 0.0,
                    (unsigned long long)plain.stats.cycles,
                    (unsigned long long)sharded.stats.shardStepsSent,
                    (unsigned long long)sharded.stats.shardProgressMsgs,
                    digestOk ? "digests identical" : "DIGEST MISMATCH",
                    allValid ? "" : ", INVALID");
    }

    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d app(s) failed validation or diverged "
                    "between the single-process and sharded runs\n",
                    failures);
        return 1;
    }
    std::printf("\nall apps produce bit-identical digests across the "
                "%u-shard process fabric\n",
                nshards);
    return 0;
}
