/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries.
 *
 * Every binary reproduces one table or figure of the paper (DESIGN.md §4)
 * at the `small` input preset by default; set SWARMSIM_FULL=1 for larger
 * inputs and the {144, 256}-core points. Absolute numbers differ from the
 * paper (scaled inputs, access-driven timing); the comparisons -- which
 * scheduler wins, by roughly what factor, where crossovers fall -- are
 * the reproduction targets (see EXPERIMENTS.md).
 */
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "apps/app.h"
#include "base/logging.h"
#include "harness/classifier.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "swarm/policies.h"

namespace ssim::bench {

inline std::unique_ptr<apps::App>
loadApp(const std::string& name, bool fg = false, uint64_t seed = 42)
{
    auto app = apps::makeApp(name, fg);
    apps::AppParams p;
    p.preset = apps::presetFromEnv();
    p.seed = seed;
    app->setup(p);
    return app;
}

/** Print one scheduler's speedup series over the core sweep. */
inline void
printSpeedupRow(harness::Table& t, const std::string& label,
                const std::vector<harness::RunResult>& series,
                uint64_t base_cycles)
{
    std::vector<std::string> row{label};
    for (const auto& r : series) {
        double s = double(base_cycles) / double(r.stats.cycles);
        row.push_back(harness::fmt(s, 2) + "x" + (r.valid ? "" : " (!)"));
    }
    t.addRow(row);
}

inline std::vector<std::string>
coreHeaders()
{
    std::vector<std::string> h{"scheduler"};
    for (uint32_t c : harness::coreSweep())
        h.push_back(std::to_string(c) + "c");
    return h;
}

} // namespace ssim::bench
