/**
 * @file
 * Design ablation (Sec. III-B): hints provide two hardware mechanisms --
 * (1) spatial task mapping and (2) serializing same-hint tasks at
 * dispatch. This ablation runs Hints with the serialization comparators
 * disabled, isolating each mechanism's contribution.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Ablation (Sec. III-B): same-hint dispatch serialization",
           "Mapping-only vs mapping+serialization; aborts should rise "
           "without serialization on contended apps (kmeans, des, silo)");

    uint32_t cores = maxCores();
    Table t({"app", "mapping-only", "with-serialization", "aborts-off",
             "aborts-on", "skips"});
    for (const std::string name :
         {"des", "nocsim", "silo", "kmeans", "genome"}) {
        auto app = loadApp(name);
        uint64_t base =
            runOnce(*app, SimConfig::withCores(1, SchedulerType::Hints))
                .stats.cycles;

        SimConfig off = SimConfig::withCores(cores);
        policies::apply(off, "sched=hints,serialize=off");
        auto roff = runOnce(*app, off);

        SimConfig on = SimConfig::withCores(cores);
        policies::apply(on, "sched=hints");
        auto ron = runOnce(*app, on);

        t.addRow({name, fmt(double(base) / double(roff.stats.cycles)) + "x",
                  fmt(double(base) / double(ron.stats.cycles)) + "x",
                  fmtInt(roff.stats.tasksAborted),
                  fmtInt(ron.stats.tasksAborted),
                  fmtInt(ron.stats.dispatchSkips)});
    }
    t.print();
    t.writeCsv("ablation_serialization");
    return 0;
}
