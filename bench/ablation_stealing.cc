/**
 * @file
 * Sec. II-C / VII-B ablation: work-stealing policy sensitivity. The paper
 * studied victim selection (random, nearest-neighbor, most-loaded) and
 * task selection (earliest-timestamp, random, latest-timestamp) and chose
 * most-loaded x earliest-timestamp as the best overall.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Ablation (Sec. II-C/VII-B): stealing policies",
           "Victim in {most-loaded, random, nearest}; task in {earliest, "
           "random, latest}; speedups vs 1-core");

    // Policies selected by name through the registry (swarm/policies.h).
    const char* victims[] = {"most-loaded", "random", "nearest"};
    const char* choices[] = {"earliest", "random", "latest"};

    uint32_t cores = maxCores();
    for (const std::string name : {"des", "sssp", "color"}) {
        auto app = loadApp(name);
        uint64_t base =
            runOnce(*app, SimConfig::withCores(1, SchedulerType::Stealing))
                .stats.cycles;
        Table t({"victim\\task", "earliest", "random", "latest"});
        for (const char* vn : victims) {
            std::vector<std::string> row{vn};
            for (const char* cn : choices) {
                SimConfig cfg = SimConfig::withCores(cores);
                policies::apply(cfg,
                                std::string("sched=stealing,steal-victim=") +
                                    vn + ",steal-choice=" + cn);
                auto r = runOnce(*app, cfg);
                row.push_back(
                    fmt(double(base) / double(r.stats.cycles)) + "x" +
                    (r.valid ? "" : " (!)"));
            }
            t.addRow(row);
        }
        std::printf("\n-- %s @ %u cores --\n", name.c_str(), cores);
        t.print();
        t.writeCsv("ablation_stealing_" + name);
    }
    return 0;
}
