/**
 * @file
 * Sec. II-C / VII-B ablation: work-stealing policy sensitivity. The paper
 * studied victim selection (random, nearest-neighbor, most-loaded) and
 * task selection (earliest-timestamp, random, latest-timestamp) and chose
 * most-loaded x earliest-timestamp as the best overall.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main()
{
    setVerbose(false);
    banner("Ablation (Sec. II-C/VII-B): stealing policies",
           "Victim in {most-loaded, random, nearest}; task in {earliest, "
           "random, latest}; speedups vs 1-core");

    const std::pair<StealVictim, const char*> victims[] = {
        {StealVictim::MostLoaded, "most-loaded"},
        {StealVictim::Random, "random"},
        {StealVictim::NearestNeighbor, "nearest"}};
    const std::pair<StealChoice, const char*> choices[] = {
        {StealChoice::EarliestTs, "earliest"},
        {StealChoice::Random, "random"},
        {StealChoice::LatestTs, "latest"}};

    uint32_t cores = maxCores();
    for (const std::string name : {"des", "sssp", "color"}) {
        auto app = loadApp(name);
        uint64_t base =
            runOnce(*app, SimConfig::withCores(1, SchedulerType::Stealing))
                .stats.cycles;
        Table t({"victim\\task", "earliest", "random", "latest"});
        for (auto [v, vn] : victims) {
            std::vector<std::string> row{vn};
            for (auto [c, cn] : choices) {
                SimConfig cfg =
                    SimConfig::withCores(cores, SchedulerType::Stealing);
                cfg.stealVictim = v;
                cfg.stealChoice = c;
                auto r = runOnce(*app, cfg);
                row.push_back(
                    fmt(double(base) / double(r.stats.cycles)) + "x" +
                    (r.valid ? "" : " (!)"));
            }
            t.addRow(row);
        }
        std::printf("\n-- %s @ %u cores --\n", name.c_str(), cores);
        t.print();
        t.writeCsv("ablation_stealing_" + name);
    }
    return 0;
}
