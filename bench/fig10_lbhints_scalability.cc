/**
 * @file
 * Figure 10 + Sec. VI-B: speedups of all four schedulers on all nine
 * applications (best of CG/FG per scheme for the graph apps), plus the
 * gmean/hmean summary ("Random 58x / Hints 146x / FG-Hints 179x /
 * LBHints 193x" in the paper).
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 10: Random / Stealing / Hints / LBHints, best version",
           "Paper gmeans at 256c: Random 58x, Hints 146x (179x with FG), "
           "LBHints 193x");

    const SchedulerType scheds[] = {
        SchedulerType::LBHints, SchedulerType::Hints,
        SchedulerType::Random, SchedulerType::Stealing};
    auto cores = coreSweep();

    std::vector<double> maxSpeedup[4];
    for (const auto& name : apps::appNames()) {
        bool hasFg = false;
        for (const auto& f : apps::fineGrainAppNames())
            hasFg |= (f == name);

        Table t(coreHeaders());
        uint64_t base = 0;
        std::printf("\n-- %s --\n", name.c_str());
        for (size_t si = 0; si < 4; si++) {
            // "For applications with coarse- and fine-grain versions, we
            // report the best-performing version for each scheme."
            std::vector<RunResult> best;
            for (bool fg : {false, true}) {
                if (fg && !hasFg)
                    continue;
                auto app = loadApp(name, fg);
                auto series = sweep(*app, scheds[si], cores);
                if (!base)
                    base = series[0].stats.cycles;
                if (best.empty() || series.back().stats.cycles <
                                        best.back().stats.cycles)
                    best = series;
            }
            printSpeedupRow(t, schedulerName(scheds[si]), best, base);
            maxSpeedup[si].push_back(double(base) /
                                     double(best.back().stats.cycles));
        }
        t.print();
        t.writeCsv("fig10_" + name);
    }

    std::printf("\nSec. VI-B summary at %u cores:\n", cores.back());
    Table s({"scheduler", "gmean", "hmean"});
    for (size_t si = 0; si < 4; si++)
        s.addRow({schedulerName(scheds[si]), fmt(gmean(maxSpeedup[si])),
                  fmt(hmean(maxSpeedup[si]))});
    s.print();
    s.writeCsv("fig10_summary");
    return 0;
}
