/**
 * @file
 * Figure 11: breakdown of total core cycles at the largest system under
 * Random, Stealing, Hints, and LBHints for des, nocsim, silo, kmeans
 * (the applications the load balancer helps).
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 11: core-cycle breakdowns incl. LBHints",
           "Paper: LBHints cuts des aborts and nocsim/kmeans empty+stall "
           "cycles vs Hints");

    uint32_t cores = maxCores();
    const SchedulerType scheds[] = {
        SchedulerType::Random, SchedulerType::Stealing,
        SchedulerType::Hints, SchedulerType::LBHints};
    Table t({"app", "sched", "commit", "abort", "spill", "stall", "empty",
             "total"});
    for (const std::string name : {"des", "nocsim", "silo", "kmeans"}) {
        auto app = loadApp(name);
        double norm = 0;
        for (auto s : scheds) {
            auto r = runOnce(*app, SimConfig::withCores(cores, s));
            if (s == SchedulerType::Random)
                norm = double(r.stats.totalCoreCycles());
            auto row = cycleBreakdownRow(r.stats, norm);
            row.insert(row.begin(), schedulerName(s));
            row.insert(row.begin(), name);
            t.addRow(row);
        }
    }
    t.print();
    t.writeCsv("fig11_breakdowns");
    return 0;
}
