/**
 * @file
 * Figure 4: speedup of the Random, Stealing, and Hints schedulers on all
 * nine applications across the core sweep, relative to 1 core.
 *
 * With --backend=trace-replay, each (app, scheduler) series records the
 * timing model once at the first core count and replays the captured
 * trace across the rest of the sweep; harness::sweep hard-checks every
 * replayed point's result digest against the recording run's.
 */
#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Figure 4: scalability of Random / Stealing / Hints",
           "Paper: Hints >= Random everywhere (up to 13x on kmeans); "
           "Stealing best on bfs/sssp, worst on other ordered apps");

    const SchedulerType scheds[] = {SchedulerType::Hints,
                                    SchedulerType::Random,
                                    SchedulerType::Stealing};
    auto cores = coreSweep();
    for (const auto& name : apps::appNames()) {
        auto app = loadApp(name);
        Table t(coreHeaders());
        uint64_t base = 0;
        for (auto s : scheds) {
            auto series = sweep(*app, s, cores);
            if (!base)
                base = series[0].stats.cycles;
            printSpeedupRow(t, schedulerName(s), series, base);
        }
        std::printf("\n-- %s --\n", name.c_str());
        t.print();
        t.writeCsv("fig04_" + name);
    }
    return 0;
}
