/**
 * @file
 * Open-system serving microbenchmark (docs/serving.md): drives seeded
 * open-loop request arrivals into a long-running 64-core machine for
 * each servable app (silo's TPC-C mix, kvstore's Zipfian get/put) and
 * reports sustainable throughput plus p50/p99/p999 completion latency
 * from the deterministic LatencyRecorder.
 *
 * Hard gates (CI fails on any):
 *  - every run validates against the app's host-native oracle;
 *  - per backend, the latency histogram digest, the per-request
 *    completion trace digest, and the app result digest are
 *    bit-identical at host threads {1, 2, 8};
 *  - the app result digest also matches across the timing, functional,
 *    and trace-replay backends (latency histograms are per-backend:
 *    the cost models measure different cycle domains). The trace-replay
 *    lane records once per app and replays across the whole thread
 *    grid, exercising mid-run injection + epoch re-arming under replay.
 *
 * Flags: --smoke (tiny preset), --app=name, --backend=name,
 * --arrivals=poisson|uniform|bursty, --target-qps=N (offered load,
 * requests per million cycles; the mean inter-arrival gap is 1e6/N),
 * --deadline=N (per-request deadline in cycles; 0 = none),
 * --host-threads=N (restrict the thread grid), --json=FILE
 * (docs/benchmarks.md schema).
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.h"
#include "base/logging.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/serving.h"

namespace {

using namespace ssim;

/** The registered apps that declare a serving profile (the profile is
 *  preset-sized, so probe with a tiny setup). */
std::vector<std::string>
servableApps()
{
    std::vector<std::string> out;
    for (const auto& name : apps::appNames()) {
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = apps::Preset::Tiny;
        app->setup(p);
        if (app->servingProfile().requests > 0)
            out.push_back(name);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    static const char* const kExtras[] = {"--app", "--arrivals",
                                          "--target-qps", "--deadline",
                                          nullptr};
    harness::requireKnownFlags(argc, argv, kExtras);
    bool smoke = harness::hasFlag(argc, argv, "--smoke");

    harness::ServingConfig scfg;
    if (const char* a = harness::flagValue(argc, argv, "--arrivals"))
        scfg.arrivals = harness::parseArrivalKind(a);
    uint32_t qps = 2000;
    if (const char* q = harness::flagValue(argc, argv, "--target-qps"))
        qps = harness::parsePositiveInt("--target-qps", q);
    scfg.meanGapCycles = (1000000 + qps / 2) / qps;
    if (!scfg.meanGapCycles)
        scfg.meanGapCycles = 1;
    if (const char* d = harness::flagValue(argc, argv, "--deadline"))
        scfg.deadlineCycles = harness::parsePositiveInt("--deadline", d);

    const char* only = harness::flagValue(argc, argv, "--app");
    const char* onlyBackend = harness::flagValue(argc, argv, "--backend");
    std::vector<std::string> backends =
        onlyBackend
            ? std::vector<std::string>{onlyBackend}
            : std::vector<std::string>{"timing", "functional",
                                       "trace-replay"};
    std::vector<uint32_t> threads = {1, 2, 8};
    if (const char* t = harness::flagValue(argc, argv, "--host-threads"))
        threads = {harness::parsePositiveInt("--host-threads", t)};

    std::printf("micro_serve: open-loop %s arrivals, target %u req/Mcycle"
                " (mean gap %llu), deadline %llu%s\n",
                harness::arrivalKindName(scfg.arrivals), qps,
                (unsigned long long)scfg.meanGapCycles,
                (unsigned long long)scfg.deadlineCycles,
                smoke ? " [smoke]" : "");
    std::printf("%-8s %-10s %3s %8s %10s %8s %8s %8s %8s %6s   %s\n",
                "app", "backend", "thr", "reqs", "cycles", "qps", "p50",
                "p99", "p999", "miss", "checks");

    harness::BenchJson json("micro_serve");
    json.meta("smoke", smoke);
    json.meta("arrivals", harness::arrivalKindName(scfg.arrivals));
    json.meta("target_qps", uint64_t(qps));
    json.meta("deadline", scfg.deadlineCycles);

    int failures = 0;
    for (const auto& name : servableApps()) {
        if (only && name != only)
            continue;
        auto app = apps::makeApp(name);
        apps::AppParams p;
        p.preset = smoke ? apps::Preset::Tiny : apps::presetFromEnv();
        p.seed = 42;
        app->setup(p);

        // Result digests must agree across backends (and with the
        // closed-loop run's semantics; the goldens pin that in tests).
        uint64_t crossBackendDigest = 0;
        bool haveCross = false;
        for (const auto& backend : backends) {
            // One record pre-run per (app, backend=trace-replay): the
            // whole thread grid replays the same captured trace — the
            // invariance gate below covers serveOnce's re-armed epoch
            // path under trace-replay injection with no per-thread
            // timing re-runs.
            SimConfig base =
                SimConfig::withCores(64, SchedulerType::Hints, 42);
            base.engineBackend = backend;
            harness::prepareTraceReplay(*app, base);

            uint64_t refLat = 0, refTrace = 0, refResult = 0;
            bool haveRef = false;
            for (uint32_t thr : threads) {
                SimConfig cfg =
                    SimConfig::withCores(64, SchedulerType::Hints, 42);
                cfg.engineBackend = backend;
                cfg.traceData = base.traceData;
                cfg.hostThreads = thr;
                harness::applyConcConflicts(cfg, argc, argv);
                harness::applyParallelReplay(cfg, argc, argv);
                harness::applyClassify(cfg, argc, argv);
                harness::applyPolicy(cfg, argc, argv);

                auto t0 = std::chrono::steady_clock::now();
                harness::ServingResult r =
                    harness::serveOnce(*app, cfg, scfg);
                auto t1 = std::chrono::steady_clock::now();
                double ms =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();

                uint64_t latDig = r.latency.digest();
                bool digestOk = true;
                if (!haveRef) {
                    refLat = latDig;
                    refTrace = r.traceDigest;
                    refResult = r.resultDigest;
                    haveRef = true;
                } else {
                    digestOk = latDig == refLat &&
                               r.traceDigest == refTrace &&
                               r.resultDigest == refResult;
                }
                if (!haveCross) {
                    crossBackendDigest = r.resultDigest;
                    haveCross = true;
                } else if (r.resultDigest != crossBackendDigest) {
                    digestOk = false;
                }
                if (!digestOk || !r.valid)
                    failures++;

                json.beginRow();
                json.val("app", name);
                json.val("backend", backend);
                json.val("threads", uint64_t(thr));
                json.val("requests", r.requests);
                json.val("ms", ms);
                json.val("sim_cycles", r.cycles);
                json.val("qps", r.qpmc());
                json.val("p50", r.p50);
                json.val("p99", r.p99);
                json.val("p999", r.p999);
                json.val("deadline_misses", r.deadlineMisses);
                json.val("digest_ok", digestOk);
                json.val("valid", r.valid);

                std::printf(
                    "%-8s %-10s %3u %8llu %10llu %8.1f %8llu %8llu "
                    "%8llu %6llu   %s%s\n",
                    name.c_str(), backend.c_str(), thr,
                    (unsigned long long)r.requests,
                    (unsigned long long)r.cycles, r.qpmc(),
                    (unsigned long long)r.p50,
                    (unsigned long long)r.p99,
                    (unsigned long long)r.p999,
                    (unsigned long long)r.deadlineMisses,
                    r.valid ? "valid" : "INVALID",
                    digestOk ? "" : ", DIGEST MISMATCH");
            }
        }
    }

    if (!json.finish(argc, argv, failures == 0))
        failures++;

    if (failures) {
        std::printf("\nFAIL: %d serving run(s) failed validation or "
                    "broke digest invariance\n",
                    failures);
        return 1;
    }
    std::printf("\nall serving runs validate; histograms and digests "
                "are thread- and backend-invariant\n");
    return 0;
}
