/**
 * @file
 * Design ablation (Sec. III-C): hint granularity. The paper recommends
 * coarse hints that cover more data than one task touches when (a) tasks
 * share cache lines (sssp uses the vertex's line, grouping ~8 vertices)
 * or (b) components communicate constantly (nocsim uses router IDs, not
 * per-component IDs). This bench compares those choices:
 *   sssp:   cache-line hints vs per-vertex hints
 *   nocsim: router-ID hints vs per-port hints
 * The variants are selected via env vars read by the apps at setup.
 */
#include <cstdlib>

#include "bench_common.h"

using namespace ssim;
using namespace ssim::bench;
using namespace ssim::harness;

namespace {

uint64_t
runWith(const char* env, const char* val, const std::string& app_name,
        uint32_t cores)
{
    if (env)
        setenv(env, val, 1);
    auto app = loadApp(app_name);
    auto r = runOnce(*app,
                     SimConfig::withCores(cores, SchedulerType::Hints));
    ssim_assert(r.valid);
    if (env)
        unsetenv(env);
    return r.stats.cycles;
}

} // namespace

int
main(int argc, char** argv)
{
    harness::requireKnownFlags(argc, argv);
    harness::applyBenchFlags(argc, argv);
    setVerbose(false);
    banner("Ablation (Sec. III-C): hint granularity",
           "Coarse hints exploit line sharing (sssp) and co-located "
           "communication (nocsim)");

    uint32_t cores = maxCores();
    Table t({"app", "paper-choice", "finer-variant", "coarse/fine"});

    uint64_t line = runWith(nullptr, "", "sssp", cores);
    uint64_t vertex =
        runWith("SWARMSIM_SSSP_VERTEX_HINTS", "1", "sssp", cores);
    t.addRow({"sssp", "line: " + fmtInt(line) + " cyc",
              "vertex: " + fmtInt(vertex) + " cyc",
              fmt(double(vertex) / double(line)) + "x"});

    uint64_t router = runWith(nullptr, "", "nocsim", cores);
    uint64_t port =
        runWith("SWARMSIM_NOC_PORT_HINTS", "1", "nocsim", cores);
    t.addRow({"nocsim", "router: " + fmtInt(router) + " cyc",
              "port: " + fmtInt(port) + " cyc",
              fmt(double(port) / double(router)) + "x"});

    t.print();
    t.writeCsv("ablation_hint_granularity");
    return 0;
}
