/**
 * @file
 * Domain example: writing your own speculative application against the
 * public API -- an unordered "bank" where equal-timestamp transfer tasks
 * move money between accounts (TM-style transactions, Sec. II-A), plus a
 * later ordered audit task that must observe a consistent total.
 *
 * Demonstrates: unordered tasks (equal timestamps), spatial hints on the
 * contended account lines, NOHINT tasks, ordering via timestamps, and
 * the serializability guarantee (money is conserved under any scheduler
 * and core count).
 */
#include <cstdio>

#include "base/logging.h"
#include "base/rng.h"
#include "swarm/machine.h"
#include "swarm/policies.h"

using namespace ssim;

namespace {

constexpr uint32_t kAccounts = 64;

struct Bank
{
    alignas(64) uint64_t balance[kAccounts];
    uint64_t auditTotal = 0;
};

swarm::TaskCoro
transferTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* b = swarm::argPtr<Bank>(args[0]);
    uint32_t from = uint32_t(args[1] >> 32);
    uint32_t to = uint32_t(args[1]);
    uint64_t amount = args[2];

    uint64_t f = co_await ctx.read(&b->balance[from]);
    if (f < amount)
        co_return; // insufficient funds: drop the transfer
    uint64_t t = co_await ctx.read(&b->balance[to]);
    co_await ctx.write(&b->balance[from], f - amount);
    co_await ctx.write(&b->balance[to], t + amount);
}

// Ordered after all transfers: sums every account.
swarm::TaskCoro
auditTask(swarm::TaskCtx& ctx, swarm::Timestamp, const uint64_t* args)
{
    auto* b = swarm::argPtr<Bank>(args[0]);
    uint64_t total = 0;
    for (uint32_t i = 0; i < kAccounts; i++)
        total += co_await ctx.read(&b->balance[i]);
    co_await ctx.write(&b->auditTotal, total);
}

} // namespace

int
main()
{
    setVerbose(false);
    Bank bank{};
    for (auto& v : bank.balance)
        v = 1000;
    const uint64_t expected = 1000ull * kAccounts;

    // Scheduler selected by registry name (swarm/policies.h), not by
    // poking config fields.
    SimConfig cfg = SimConfig::withCores(64);
    policies::apply(cfg, "sched=hints");
    Machine m(cfg);

    Rng rng(7);
    const int kTransfers = 2000;
    for (int i = 0; i < kTransfers; i++) {
        uint32_t from = uint32_t(rng.range(kAccounts));
        uint32_t to = uint32_t(rng.range(kAccounts - 1));
        if (to >= from)
            to++; // distinct accounts (from==to would mint money)
        uint64_t amount = 1 + rng.range(50);
        // All transfers share timestamp 1: unordered transactions.
        // Hint: the cache line of the source account.
        m.enqueueInitial(transferTask, 1,
                         swarm::cacheLine(&bank.balance[from]), &bank,
                         (uint64_t(from) << 32) | to, amount);
    }
    // The audit runs after every transfer (larger timestamp), with no
    // hint: it touches all accounts.
    m.enqueueInitial(auditTask, 2, swarm::NOHINT, &bank);
    m.run();

    uint64_t total = 0;
    for (auto v : bank.balance)
        total += v;

    std::printf("bank: %d speculative transfers over %u accounts\n",
                kTransfers, kAccounts);
    std::printf("  final total:   %llu (expected %llu) -> %s\n",
                (unsigned long long)total, (unsigned long long)expected,
                total == expected ? "conserved" : "LOST MONEY");
    std::printf("  audit total:   %llu -> %s\n",
                (unsigned long long)bank.auditTotal,
                bank.auditTotal == expected ? "consistent" : "INCONSISTENT");
    std::printf("  committed %llu, aborted %llu, cycles %llu\n",
                (unsigned long long)m.stats().tasksCommitted,
                (unsigned long long)m.stats().tasksAborted,
                (unsigned long long)m.stats().cycles);
    return (total == expected && bank.auditTotal == expected) ? 0 : 1;
}
