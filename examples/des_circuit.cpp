/**
 * @file
 * Domain example: gate-level circuit simulation (the paper's des
 * benchmark, Listing 1) comparing all four schedulers on the same
 * generated carry-select adder array. Shows the motivation experiment of
 * Sec. II-C in miniature: hints beat both random mapping and idealized
 * work-stealing by keeping each gate's events on one tile.
 */
#include <cstdio>

#include "base/logging.h"
#include "apps/app.h"
#include "harness/runner.h"
#include "swarm/policies.h"

using namespace ssim;

int
main()
{
    setVerbose(false);
    auto app = apps::makeApp("des");
    apps::AppParams p;
    p.preset = apps::Preset::Small;
    app->setup(p);

    std::printf("des: digital circuit DES, csaArray-style input\n\n");
    std::printf("%-10s %14s %10s %10s %8s\n", "scheduler", "cycles",
                "committed", "aborted", "valid");

    // Select each scheduler by its registry name (a plugged-in policy —
    // policies::registerScheduler — is picked up automatically). The
    // first registered scheduler is the speedup baseline.
    const std::vector<std::string> names = policies::schedulerNames();
    uint64_t base = 0;
    for (const std::string& name : names) {
        SimConfig cfg = SimConfig::withCores(64);
        policies::apply(cfg, "sched=" + name);
        auto r = harness::runOnce(*app, cfg);
        if (!base)
            base = r.stats.cycles;
        std::printf("%-10s %14llu %10llu %10llu %8s   (%.2fx vs %s)\n",
                    name.c_str(), (unsigned long long)r.stats.cycles,
                    (unsigned long long)r.stats.tasksCommitted,
                    (unsigned long long)r.stats.tasksAborted,
                    r.valid ? "yes" : "NO",
                    double(base) / double(r.stats.cycles),
                    names.front().c_str());
    }
    return 0;
}
