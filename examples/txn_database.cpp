/**
 * @file
 * Domain example: OLTP transactions on the in-memory database substrate
 * (the paper's silo benchmark). Transactions are decomposed into tasks,
 * each tagged with an abstract (table ID, primary key) hint -- the data
 * address is unknown at task creation (a B+-tree traversal finds it),
 * but the abstract identity is known (Sec. III-C).
 */
#include <cstdio>

#include "base/logging.h"
#include "apps/app.h"
#include "harness/runner.h"
#include "swarm/policies.h"

using namespace ssim;

int
main()
{
    setVerbose(false);
    auto app = apps::makeApp("silo");
    apps::AppParams p;
    p.preset = apps::Preset::Small;
    app->setup(p);

    std::printf("silo: TPC-C-style new-order/payment mix over B+-tree "
                "tables\n\n");

    for (uint32_t cores : {1u, 16u, 64u}) {
        // Policies are selected by registry name, not by poking config
        // fields (policies::apply also sets the scheduler's serialization
        // default, matching SimConfig::withCores).
        SimConfig hintsCfg = SimConfig::withCores(cores);
        policies::apply(hintsCfg, "sched=hints");
        SimConfig randomCfg = SimConfig::withCores(cores);
        policies::apply(randomCfg, "sched=random");
        auto hints = harness::runOnce(*app, hintsCfg);
        auto random = harness::runOnce(*app, randomCfg);
        std::printf("%3u cores: Hints %10llu cyc (%s), Random %10llu cyc "
                    "(%s), Hints/Random speedup %.2fx\n",
                    cores, (unsigned long long)hints.stats.cycles,
                    hints.valid ? "ok" : "INVALID",
                    (unsigned long long)random.stats.cycles,
                    random.valid ? "ok" : "INVALID",
                    double(random.stats.cycles) /
                        double(hints.stats.cycles));
    }

    std::printf("\nDatabase validated against serial execution of the "
                "same transaction stream.\n");
    return 0;
}
