/**
 * @file
 * Quickstart: write a Swarm program with spatial hints and run it on the
 * simulated 64-core machine.
 *
 * The program is the paper's running example style: ordered tasks that
 * relax shortest-path distances over a small graph (Listing 2). Each
 * task is tagged with a spatial hint -- the cache line of the vertex it
 * updates -- so the Hints scheduler maps tasks that touch the same data
 * to the same tile and serializes likely conflicts.
 */
#include <cstdio>

#include "base/logging.h"
#include "apps/graph.h"
#include "base/rng.h"
#include "swarm/machine.h"
#include "swarm/policies.h"

using namespace ssim;

namespace {

struct Sssp
{
    apps::Graph g;
    std::vector<uint64_t> edges; // (neighbor << 32) | weight
    std::vector<uint64_t> dist;
};

// The task function: mirrors Listing 2 of the paper. Every shared-memory
// access goes through ctx so it is timed, conflict-checked, and rolled
// back on abort.
swarm::TaskCoro
ssspTask(swarm::TaskCtx& ctx, swarm::Timestamp pathDist,
         const uint64_t* args)
{
    auto* a = swarm::argPtr<Sssp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    if (pathDist != co_await ctx.read(&a->dist[v]))
        co_return; // stale task: a shorter path already won
    uint64_t beg = co_await ctx.read(&a->g.offsets[v]);
    uint64_t end = co_await ctx.read(&a->g.offsets[v + 1]);
    for (uint64_t i = beg; i < end; i++) {
        uint64_t e = co_await ctx.read(&a->edges[i]);
        uint32_t n = uint32_t(e >> 32);
        uint64_t projected = pathDist + uint32_t(e);
        if (projected < co_await ctx.read(&a->dist[n])) {
            co_await ctx.write(&a->dist[n], projected);
            // swarm::enqueue(taskFn, timestamp, hint, args...)
            co_await ctx.enqueue(ssspTask, projected,
                                 swarm::cacheLine(&a->dist[n]), args[0],
                                 uint64_t(n));
        }
    }
}

} // namespace

int
main()
{
    setVerbose(false);

    // Build a small road-network-like graph.
    Rng rng(42);
    Sssp app;
    app.g = apps::gridRoad(48, 48, rng);
    app.edges.resize(app.g.numEdges());
    for (uint64_t i = 0; i < app.g.numEdges(); i++)
        app.edges[i] =
            (uint64_t(app.g.neighbors[i]) << 32) | app.g.weights[i];
    app.dist.assign(app.g.n, apps::kUnreached);
    app.dist[0] = 0;

    // Run on a 64-core (16-tile) machine with the Hints scheduler,
    // selected by name through the policy registry.
    SimConfig cfg = SimConfig::withCores(64);
    policies::apply(cfg, "sched=hints");
    std::printf("policies: %s\n", policies::describe(cfg).c_str());
    Machine m(cfg);
    m.enqueueInitial(ssspTask, 0, swarm::cacheLine(&app.dist[0]), &app,
                     uint64_t(0));
    m.run();

    // Check the result against a host-side Dijkstra.
    auto oracle = apps::dijkstraOracle(app.g, 0);
    bool ok = app.dist == oracle;

    std::printf("sssp on %u vertices, %llu edges: %s\n", app.g.n,
                (unsigned long long)app.g.numEdges(),
                ok ? "CORRECT" : "WRONG");
    std::printf("  simulated cycles:  %llu\n",
                (unsigned long long)m.stats().cycles);
    std::printf("  tasks committed:   %llu\n",
                (unsigned long long)m.stats().tasksCommitted);
    std::printf("  tasks aborted:     %llu\n",
                (unsigned long long)m.stats().tasksAborted);
    std::printf("  NoC flits:         %llu\n",
                (unsigned long long)m.stats().totalFlits());
    return ok ? 0 : 1;
}
