/**
 * @file
 * bfs: breadth-first tree of an arbitrary graph (PBFS-style, ordered by
 * level). Coarse-grain tasks set their neighbors' levels (multi-hint
 * read-write); the fine-grain restructuring (Sec. V) sets only the
 * task's own vertex level. Hint: cache line of the visited vertex.
 */
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/graph.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

class BfsApp : public App
{
  public:
    explicit BfsApp(bool fg) : fg_(fg) {}

    std::string name() const override { return "bfs"; }
    uint32_t numTaskFunctions() const override { return 1; }
    const char* hintPattern() const override { return "Cache line of vertex"; }
    bool hasFineGrain() const override { return true; }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t side;
        switch (p.preset) {
          case Preset::Tiny: side = 20; break;
          case Preset::Small: side = 80; break;
          default: side = 256; break;
        }
        // hugetric-* are triangular meshes: a grid with diagonals is the
        // matching planar structure.
        g_ = gridRoad(side, side, rng);
        src_ = 0;
        oracle_ = bfsOracle(g_, src_);
        reset();
    }

    void
    reset() override
    {
        level.assign(g_.n, kUnreached);
        if (!fg_)
            level[src_] = 0;
    }

    void
    enqueueInitial(Machine& m) override
    {
        auto fn = fg_ ? bfsTaskFG : bfsTaskCG;
        m.enqueueInitial(fn, 0, swarm::cacheLine(&level[src_]), this,
                         uint64_t(src_));
    }

    bool
    validate() const override
    {
        return level == oracle_;
    }

    uint64_t resultDigest() const override { return digestRange(level); }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        // Tuned serial baseline: queue-based BFS.
        reset();
        level[src_] = 0;
        std::vector<uint32_t> fifo;
        fifo.reserve(g_.n);
        fifo.push_back(src_);
        for (size_t h = 0; h < fifo.size(); h++) {
            uint32_t v = sm.read(&fifo[h]);
            uint64_t lv = sm.read(&level[v]);
            uint64_t beg = sm.read(&g_.offsets[v]);
            uint64_t end = sm.read(&g_.offsets[v + 1]);
            for (uint64_t i = beg; i < end; i++) {
                uint32_t n = sm.read(&g_.neighbors[i]);
                if (sm.read(&level[n]) == kUnreached) {
                    sm.write(&level[n], lv + 1);
                    fifo.push_back(n);
                    sm.write(&fifo[fifo.size() - 1], n);
                }
            }
        }
        ssim_assert(level == oracle_, "serial bfs is wrong");
        return sm.cycles();
    }

    Graph g_;
    std::vector<uint64_t> level;
    uint32_t src_ = 0;
    std::vector<uint64_t> oracle_;
    bool fg_;

  private:
    static swarm::TaskCoro bfsTaskCG(swarm::TaskCtx& ctx,
                                     swarm::Timestamp ts,
                                     const uint64_t* args);
    static swarm::TaskCoro bfsTaskFG(swarm::TaskCtx& ctx,
                                     swarm::Timestamp ts,
                                     const uint64_t* args);
};

swarm::TaskCoro
BfsApp::bfsTaskCG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<BfsApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    if (ts != co_await ctx.read(&a->level[v]))
        co_return; // stale visit
    uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
    uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
    for (uint64_t i = beg; i < end; i++) {
        uint32_t n = co_await ctx.read(&a->g_.neighbors[i]);
        uint64_t ln = co_await ctx.read(&a->level[n]);
        if (ln == kUnreached) {
            co_await ctx.write(&a->level[n], ts + 1);
            co_await ctx.enqueue(bfsTaskCG, ts + 1,
                                 swarm::cacheLine(&a->level[n]), args[0],
                                 uint64_t(n));
        }
    }
}

swarm::TaskCoro
BfsApp::bfsTaskFG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<BfsApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    if (co_await ctx.read(&a->level[v]) == kUnreached) {
        co_await ctx.write(&a->level[v], ts);
        uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
        uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
        for (uint64_t i = beg; i < end; i++) {
            uint32_t n = co_await ctx.read(&a->g_.neighbors[i]);
            co_await ctx.enqueue(bfsTaskFG, ts + 1,
                                 swarm::cacheLine(&a->level[n]), args[0],
                                 uint64_t(n));
        }
    }
}

} // namespace

std::unique_ptr<App>
makeBfsApp(bool fine_grain)
{
    return std::make_unique<BfsApp>(fine_grain);
}

} // namespace ssim::apps
