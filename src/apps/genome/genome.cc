/**
 * @file
 * genome: gene sequencing (STAMP-style). An unordered benchmark whose
 * transactions are tasks of equal timestamp within each phase:
 *   phase 1  deduplicate segments via a hash set     (hint: map key)
 *   phase 2  insert unique segments' prefixes        (hint: map key)
 *   phase 3  match suffix -> successor (NOHINT: the probed bucket is
 *            computed inside the transaction), link  (elem addr)
 *            and mark the successor via a SAMEHINT child
 *   phase 4  a single low-parallelism task rebuilds the sequence
 *
 * Segments are 32 characters over a 2-bit alphabet = one 64-bit word.
 */
#include <algorithm>
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/serial_machine.h"
#include "base/hash.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

constexpr uint32_t kSegChars = 32; ///< 2 bits/char: segment == uint64_t

class GenomeApp : public App
{
  public:
    std::string name() const override { return "genome"; }
    uint32_t numTaskFunctions() const override { return 5; }
    const char* hintPattern() const override
    {
        return "Elem addr, map key, NO/SAMEHINT";
    }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t windows;
        switch (p.preset) {
          case Preset::Tiny: windows = 128; break;
          case Preset::Small: windows = 1600; break;
          default: windows = 16384; break;
        }
        step_ = 8; // consecutive windows overlap by 24 chars
        geneChars_ = kSegChars + (windows - 1) * step_;

        // Random gene over {A,C,G,T}, 2 bits per char.
        gene_.assign((geneChars_ + 31) / 32, 0);
        for (auto& w : gene_)
            w = rng.next();

        // Sliding windows + ~25% duplicates, shuffled.
        segs_.clear();
        for (uint32_t i = 0; i < windows; i++)
            segs_.push_back(windowAt(i * step_));
        uint32_t dups = windows / 4;
        for (uint32_t i = 0; i < dups; i++)
            segs_.push_back(segs_[rng.range(windows)]);
        for (size_t i = segs_.size(); i > 1; i--)
            std::swap(segs_[i - 1], segs_[rng.range(i)]);

        nBuckets_ = 1;
        while (nBuckets_ < 4 * segs_.size())
            nBuckets_ <<= 1;

        // The reconstruction is unique only if window contents and
        // suffix/prefix keys are collision-free; with a 64-bit random
        // gene this holds with overwhelming probability -- verify it.
        std::vector<uint64_t> uniq(segs_.begin(), segs_.end());
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
        ssim_assert(uniq.size() == windows, "window content collision");
        std::vector<uint64_t> pfx;
        for (uint64_t s : uniq)
            pfx.push_back(prefixOf(s));
        std::sort(pfx.begin(), pfx.end());
        ssim_assert(std::adjacent_find(pfx.begin(), pfx.end()) ==
                        pfx.end(),
                    "prefix key collision; pick another seed");

        reset();
    }

    void
    reset() override
    {
        dedup_.assign(nBuckets_, 0);
        prefix_.assign(2 * nBuckets_, 0); // (key present?) packed pairs
        next_.assign(segs_.size(), 0);
        hasPred_.assign(segs_.size(), 0);
        result_.assign(gene_.size(), 0);
        resultChars_ = 0;
    }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint32_t i = 0; i < segs_.size(); i++) {
            uint64_t b = bucketOf(segs_[i]);
            m.enqueueInitial(insertTask, 1,
                             swarm::cacheLine(&dedup_[b]), this,
                             uint64_t(i));
        }
        m.enqueueInitial(rebuildTask, 5, swarm::NOHINT, this);
    }

    bool
    validate() const override
    {
        if (resultChars_ != geneChars_)
            return false;
        for (uint32_t i = 0; i < geneChars_; i++) {
            uint64_t got = (result_[i / 32] >> ((i % 32) * 2)) & 3;
            uint64_t want = (gene_[i / 32] >> ((i % 32) * 2)) & 3;
            if (got != want)
                return false;
        }
        return true;
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: the reconstructed length and
        // every reconstructed 2-bit char (not the raw words, whose
        // bits past resultChars_ are not part of the result).
        uint64_t h = fnv1aU64(resultChars_, kFnvBasis);
        for (uint64_t i = 0; i < resultChars_ && i < geneChars_; i++)
            h = fnv1aU64((result_[i / 32] >> ((i % 32) * 2)) & 3, h);
        return h;
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        reset();
        // Phase 1+2: dedup inserts and prefix inserts.
        std::vector<uint32_t> uniqIdx;
        for (uint32_t i = 0; i < segs_.size(); i++) {
            uint64_t key = sm.read(&segs_[i]);
            uint64_t b = bucketOf(key);
            bool inserted = false;
            while (true) {
                uint64_t v = sm.read(&dedup_[b]);
                if (v == 0) {
                    sm.write(&dedup_[b], key);
                    inserted = true;
                    break;
                }
                if (v == key)
                    break;
                b = (b + 1) & (nBuckets_ - 1);
            }
            if (inserted) {
                uniqIdx.push_back(i);
                uint64_t pk = prefixOf(key);
                uint64_t pb = bucketOf(pk);
                while (sm.read(&prefix_[2 * pb]) != 0)
                    pb = (pb + 1) & (nBuckets_ - 1);
                sm.write(&prefix_[2 * pb], pk + 1);
                sm.write(&prefix_[2 * pb + 1], uint64_t(i) + 1);
            }
        }
        // Phase 3: match suffixes to prefixes.
        for (uint32_t i : uniqIdx) {
            uint64_t key = sm.read(&segs_[i]);
            uint64_t sk = suffixOf(key);
            uint64_t pb = bucketOf(sk);
            while (true) {
                uint64_t v = sm.read(&prefix_[2 * pb]);
                if (v == 0)
                    break;
                if (v == sk + 1) {
                    uint64_t j = sm.read(&prefix_[2 * pb + 1]);
                    if (segs_[j - 1] != key) { // ignore self-overlap
                        sm.write(&next_[i], j);
                        sm.write(&hasPred_[j - 1], uint64_t(1));
                    }
                    break;
                }
                pb = (pb + 1) & (nBuckets_ - 1);
            }
        }
        // Phase 4: rebuild.
        rebuildHost(&sm);
        ssim_assert(validate(), "serial genome is wrong");
        return sm.cycles();
    }

    // ---- Content helpers (host-side; segments are immutable inputs) ------

    uint64_t
    windowAt(uint32_t char_off) const
    {
        uint32_t w = char_off / 32, r = (char_off % 32) * 2;
        uint64_t lo = gene_[w] >> r;
        uint64_t hi = r ? gene_[w + 1] << (64 - r) : 0;
        return lo | hi;
    }
    /// First (kSegChars - step) chars.
    uint64_t
    prefixOf(uint64_t seg) const
    {
        return seg & ((~uint64_t(0)) >> (2 * step_));
    }
    /// Last (kSegChars - step) chars.
    uint64_t suffixOf(uint64_t seg) const { return seg >> (2 * step_); }
    uint64_t bucketOf(uint64_t key) const
    {
        return mix64(key) & (nBuckets_ - 1);
    }

    void
    rebuildHost(SerialMachine* sm)
    {
        // Find the unique start (no predecessor), then walk the chain.
        auto rd = [&](uint64_t* p) { return sm ? sm->read(p) : *p; };
        uint64_t startKey = windowAt(0);
        uint32_t cur = ~0u;
        for (uint32_t i = 0; i < segs_.size(); i++) {
            if (segs_[i] == startKey && rd(&hasPred_[i]) == 0 &&
                rd(&next_[i]) != 0) {
                cur = i;
                break;
            }
        }
        if (cur == ~0u)
            return;
        appendChars(segs_[cur], kSegChars);
        while (true) {
            uint64_t nx = rd(&next_[cur]);
            if (nx == 0)
                break;
            cur = uint32_t(nx - 1);
            appendChars(segs_[cur] >> (2 * (kSegChars - step_)), step_);
        }
    }

    void
    appendChars(uint64_t chars, uint32_t n)
    {
        for (uint32_t i = 0; i < n && resultChars_ < geneChars_; i++) {
            uint64_t c = (chars >> (2 * i)) & 3;
            result_[resultChars_ / 32] |=
                c << ((resultChars_ % 32) * 2);
            resultChars_++;
        }
    }

    std::vector<uint64_t> gene_;
    uint32_t geneChars_ = 0;
    uint32_t step_ = 8;
    std::vector<uint64_t> segs_;
    uint64_t nBuckets_ = 0;
    std::vector<uint64_t> dedup_;   ///< open-addressing content set
    std::vector<uint64_t> prefix_;  ///< (key+1, segIdx+1) pairs
    std::vector<uint64_t> next_;    ///< successor segIdx + 1
    std::vector<uint64_t> hasPred_;
    std::vector<uint64_t> result_;
    uint64_t resultChars_ = 0;

  private:
    static swarm::TaskCoro insertTask(swarm::TaskCtx&, swarm::Timestamp,
                                      const uint64_t*);
    static swarm::TaskCoro prefixTask(swarm::TaskCtx&, swarm::Timestamp,
                                      const uint64_t*);
    static swarm::TaskCoro matchTask(swarm::TaskCtx&, swarm::Timestamp,
                                     const uint64_t*);
    static swarm::TaskCoro markTask(swarm::TaskCtx&, swarm::Timestamp,
                                    const uint64_t*);
    static swarm::TaskCoro rebuildTask(swarm::TaskCtx&, swarm::Timestamp,
                                       const uint64_t*);
};

// Phase 1: deduplicate. On success, chain phases 2 and 3 for the segment.
swarm::TaskCoro
GenomeApp::insertTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<GenomeApp>(args[0]);
    uint32_t seg = uint32_t(args[1]);

    uint64_t key = co_await ctx.read(&a->segs_[seg]);
    uint64_t b = a->bucketOf(key);
    while (true) {
        uint64_t v = co_await ctx.read(&a->dedup_[b]);
        if (v == 0) {
            co_await ctx.write(&a->dedup_[b], key);
            break;
        }
        if (v == key)
            co_return; // duplicate: drop the segment
        b = (b + 1) & (a->nBuckets_ - 1);
    }
    uint64_t pb = a->bucketOf(a->prefixOf(key));
    co_await ctx.enqueue(prefixTask, ts + 1,
                         swarm::cacheLine(&a->prefix_[2 * pb]), args[0],
                         args[1]);
    co_await ctx.enqueue(matchTask, ts + 2, swarm::NOHINT, args[0],
                         args[1]);
}

// Phase 2: publish the segment's prefix in the match table.
swarm::TaskCoro
GenomeApp::prefixTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<GenomeApp>(args[0]);
    uint32_t seg = uint32_t(args[1]);

    uint64_t key = co_await ctx.read(&a->segs_[seg]);
    uint64_t pk = a->prefixOf(key);
    uint64_t pb = a->bucketOf(pk);
    while (true) {
        uint64_t v = co_await ctx.read(&a->prefix_[2 * pb]);
        if (v == 0)
            break;
        pb = (pb + 1) & (a->nBuckets_ - 1);
    }
    co_await ctx.write(&a->prefix_[2 * pb], pk + 1);
    co_await ctx.write(&a->prefix_[2 * pb + 1], uint64_t(seg) + 1);
}

// Phase 3: find this segment's successor. The probed buckets are only
// known once the suffix hash is computed inside the transaction: NOHINT.
swarm::TaskCoro
GenomeApp::matchTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                     const uint64_t* args)
{
    auto* a = swarm::argPtr<GenomeApp>(args[0]);
    uint32_t seg = uint32_t(args[1]);

    uint64_t key = co_await ctx.read(&a->segs_[seg]);
    co_await ctx.compute(4); // suffix hash
    uint64_t sk = a->suffixOf(key);
    uint64_t pb = a->bucketOf(sk);
    while (true) {
        uint64_t v = co_await ctx.read(&a->prefix_[2 * pb]);
        if (v == 0)
            co_return;
        if (v == sk + 1) {
            uint64_t j = co_await ctx.read(&a->prefix_[2 * pb + 1]);
            if (a->segs_[j - 1] != key) {
                co_await ctx.write(&a->next_[seg], j);
                // The child touches the same chain data: SAMEHINT.
                co_await ctx.enqueue(markTask, ts + 1, swarm::SAMEHINT,
                                     args[0], j - 1);
            }
            co_return;
        }
        pb = (pb + 1) & (a->nBuckets_ - 1);
    }
}

swarm::TaskCoro
GenomeApp::markTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                    const uint64_t* args)
{
    auto* a = swarm::argPtr<GenomeApp>(args[0]);
    co_await ctx.write(&a->hasPred_[args[1]], uint64_t(1));
}

// Phase 4: sequential rebuild (the low-parallelism phase of Sec. IV-C).
// All output goes through ctx (undo-logged) only at the end, from a
// coroutine-local buffer, so speculative re-execution is safe.
swarm::TaskCoro
GenomeApp::rebuildTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                       const uint64_t* args)
{
    auto* a = swarm::argPtr<GenomeApp>(args[0]);

    uint64_t startKey = a->windowAt(0);
    uint32_t cur = ~0u;
    for (uint32_t i = 0; i < a->segs_.size(); i++) {
        uint64_t key = co_await ctx.read(&a->segs_[i]);
        if (key == startKey) {
            uint64_t hp = co_await ctx.read(&a->hasPred_[i]);
            uint64_t nx = co_await ctx.read(&a->next_[i]);
            if (hp == 0 && nx != 0) {
                cur = i;
                break;
            }
        }
    }
    if (cur == ~0u)
        co_return;

    std::vector<uint64_t> out(a->gene_.size(), 0);
    uint32_t chars = 0;
    auto append = [&](uint64_t bits, uint32_t n) {
        for (uint32_t i = 0; i < n && chars < a->geneChars_; i++) {
            out[chars / 32] |= ((bits >> (2 * i)) & 3)
                               << ((chars % 32) * 2);
            chars++;
        }
    };
    append(a->segs_[cur], kSegChars);
    while (true) {
        uint64_t nx = co_await ctx.read(&a->next_[cur]);
        if (nx == 0)
            break;
        cur = uint32_t(nx - 1);
        co_await ctx.compute(2);
        append(a->segs_[cur] >> (2 * (kSegChars - a->step_)), a->step_);
    }
    for (uint32_t wi = 0; wi < out.size(); wi++)
        co_await ctx.write(&a->result_[wi], out[wi]);
    co_await ctx.write(&a->resultChars_, uint64_t(chars));
}

} // namespace

std::unique_ptr<App>
makeGenomeApp()
{
    return std::make_unique<GenomeApp>();
}

} // namespace ssim::apps
