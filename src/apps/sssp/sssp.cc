/**
 * @file
 * sssp: Dijkstra-style single-source shortest paths (paper Listings 2/3).
 *
 * Coarse-grain (Listing 2): each task visits a vertex and relaxes all of
 * its neighbors' distances -- neighbor distances are multi-hint
 * read-write data. Fine-grain (Listing 3): each task sets only its own
 * vertex's distance and spawns one child per neighbor, making virtually
 * all read-write data single-hint (Sec. V).
 *
 * Hint: cache line of the visited vertex's distance (several vertices
 * share a line, exploiting spatial locality).
 */
#include <cstdlib>
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/graph.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

class SsspApp : public App
{
  public:
    explicit SsspApp(bool fg) : fg_(fg)
    {
        // Ablation (bench/ablation_hint_granularity): hint at vertex-id
        // instead of cache-line granularity, forgoing the spatial
        // locality of ~8 vertices per line (Sec. III-C).
        const char* e = std::getenv("SWARMSIM_SSSP_VERTEX_HINTS");
        vertexHints_ = e && e[0] == '1';
    }

    uint64_t
    hintFor(uint32_t v) const
    {
        return vertexHints_ ? uint64_t(v)
                            : swarm::cacheLine(&dist[v]);
    }

    std::string name() const override { return "sssp"; }
    uint32_t numTaskFunctions() const override { return 1; }
    const char* hintPattern() const override { return "Cache line of vertex"; }
    bool hasFineGrain() const override { return true; }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t side;
        switch (p.preset) {
          case Preset::Tiny: side = 20; break;
          case Preset::Small: side = 72; break;
          default: side = 224; break;
        }
        g_ = gridRoad(side, side, rng);
        // Pack (neighbor, weight) into one word: one timed read per edge.
        edges_.resize(g_.numEdges());
        for (uint64_t i = 0; i < g_.numEdges(); i++)
            edges_[i] = (uint64_t(g_.neighbors[i]) << 32) | g_.weights[i];
        src_ = 0;
        oracle_ = dijkstraOracle(g_, src_);
        reset();
    }

    void
    reset() override
    {
        dist.assign(g_.n, kUnreached);
        if (!fg_)
            dist[src_] = 0; // Listing 2's main() seeds the source
    }

    void
    enqueueInitial(Machine& m) override
    {
        auto fn = fg_ ? ssspTaskFG : ssspTaskCG;
        m.enqueueInitial(fn, 0, hintFor(src_), this,
                         uint64_t(src_));
    }

    bool
    validate() const override
    {
        return dist == oracle_;
    }

    uint64_t resultDigest() const override { return digestRange(dist); }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        // Tuned serial baseline: binary-heap Dijkstra.
        reset();
        dist[src_] = 0;
        using QE = std::pair<uint64_t, uint32_t>;
        std::vector<QE> heap; // binary heap in timed memory
        auto heapRead = [&](size_t i) {
            sm.compute(1);
            return QE{sm.read(&heap[i].first), heap[i].second};
        };
        auto heapWrite = [&](size_t i, QE v) {
            sm.compute(1);
            sm.write(&heap[i].first, v.first);
            heap[i].second = v.second;
        };
        auto push = [&](QE v) {
            heap.push_back(v);
            size_t i = heap.size() - 1;
            while (i > 0) {
                size_t parent = (i - 1) / 2;
                QE pv = heapRead(parent);
                if (pv.first <= v.first)
                    break;
                heapWrite(i, pv);
                i = parent;
            }
            heapWrite(i, v);
        };
        auto pop = [&] {
            QE top = heapRead(0);
            QE last = heapRead(heap.size() - 1);
            heap.pop_back();
            if (!heap.empty()) {
                size_t i = 0;
                while (true) {
                    size_t l = 2 * i + 1, r = l + 1, m = i;
                    QE mv = last;
                    if (l < heap.size()) {
                        QE lv = heapRead(l);
                        if (lv.first < mv.first) {
                            m = l;
                            mv = lv;
                        }
                    }
                    if (r < heap.size()) {
                        QE rv = heapRead(r);
                        if (rv.first < mv.first) {
                            m = r;
                            mv = rv;
                        }
                    }
                    if (m == i)
                        break;
                    heapWrite(i, mv);
                    i = m;
                }
                heapWrite(i, last);
            }
            return top;
        };

        push({0, src_});
        while (!heap.empty()) {
            auto [d, v] = pop();
            if (d != sm.read(&dist[v]))
                continue;
            uint64_t beg = sm.read(&g_.offsets[v]);
            uint64_t end = sm.read(&g_.offsets[v + 1]);
            for (uint64_t i = beg; i < end; i++) {
                uint64_t e = sm.read(&edges_[i]);
                uint32_t n = uint32_t(e >> 32);
                uint64_t nd = d + uint32_t(e);
                if (nd < sm.read(&dist[n])) {
                    sm.write(&dist[n], nd);
                    push({nd, n});
                }
            }
        }
        ssim_assert(dist == oracle_, "serial sssp is wrong");
        return sm.cycles();
    }

    // Shared state the tasks operate on (public for the task functions).
    Graph g_;
    std::vector<uint64_t> edges_; ///< (neighbor << 32) | weight
    std::vector<uint64_t> dist;
    uint32_t src_ = 0;
    std::vector<uint64_t> oracle_;
    bool fg_;
    bool vertexHints_ = false;

  private:
    static swarm::TaskCoro ssspTaskCG(swarm::TaskCtx& ctx,
                                      swarm::Timestamp pathDist,
                                      const uint64_t* args);
    static swarm::TaskCoro ssspTaskFG(swarm::TaskCtx& ctx,
                                      swarm::Timestamp pathDist,
                                      const uint64_t* args);
};

// Listing 2: the task relaxes all neighbors' distances.
swarm::TaskCoro
SsspApp::ssspTaskCG(swarm::TaskCtx& ctx, swarm::Timestamp pathDist,
                    const uint64_t* args)
{
    auto* a = swarm::argPtr<SsspApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    if (pathDist != co_await ctx.read(&a->dist[v]))
        co_return;
    uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
    uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
    for (uint64_t i = beg; i < end; i++) {
        uint64_t e = co_await ctx.read(&a->edges_[i]);
        uint32_t n = uint32_t(e >> 32);
        uint64_t projected = pathDist + uint32_t(e);
        uint64_t dn = co_await ctx.read(&a->dist[n]);
        if (projected < dn) {
            co_await ctx.write(&a->dist[n], projected);
            co_await ctx.enqueue(ssspTaskCG, projected,
                                 a->hintFor(n), args[0], uint64_t(n));
        }
    }
}

// Listing 3: the task sets only its own vertex's distance.
swarm::TaskCoro
SsspApp::ssspTaskFG(swarm::TaskCtx& ctx, swarm::Timestamp pathDist,
                    const uint64_t* args)
{
    auto* a = swarm::argPtr<SsspApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    if (co_await ctx.read(&a->dist[v]) == kUnreached) {
        co_await ctx.write(&a->dist[v], pathDist);
        uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
        uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
        for (uint64_t i = beg; i < end; i++) {
            uint64_t e = co_await ctx.read(&a->edges_[i]);
            uint32_t n = uint32_t(e >> 32);
            co_await ctx.enqueue(ssspTaskFG, pathDist + uint32_t(e),
                                 a->hintFor(n), args[0], uint64_t(n));
        }
    }
}

} // namespace

std::unique_ptr<App>
makeSsspApp(bool fine_grain)
{
    return std::make_unique<SsspApp>(fine_grain);
}

} // namespace ssim::apps
