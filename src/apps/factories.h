/**
 * @file
 * Internal per-app factory declarations used by the app registry.
 */
#pragma once

#include <memory>

#include "apps/app.h"

namespace ssim::apps {

std::unique_ptr<App> makeBfsApp(bool fine_grain);
std::unique_ptr<App> makeSsspApp(bool fine_grain);
std::unique_ptr<App> makeAstarApp(bool fine_grain);
std::unique_ptr<App> makeColorApp(bool fine_grain);
std::unique_ptr<App> makeDesApp();
std::unique_ptr<App> makeNocsimApp();
std::unique_ptr<App> makeSiloApp();
std::unique_ptr<App> makeGenomeApp();
std::unique_ptr<App> makeKmeansApp();
std::unique_ptr<App> makeKvstoreApp();
std::unique_ptr<App> makePagerankApp();

} // namespace ssim::apps
