/**
 * @file
 * kvstore: a get/put key-value store over Zipfian-skewed keys — the
 * request-serving workload the open-system harness (harness/serving.h)
 * drives against the machine. Each operation is one request: a get
 * reads its key's row and records the value in a per-op result slot, a
 * put overwrites the row; both fold a per-key touch count into a
 * reduce-only counter array (a natural Reduction target for the
 * profile-guided classifier). The Zipfian skew concentrates traffic on
 * a few hot rows, so the hint scheduler's same-hint serialization and
 * the load balancer see realistic hotspot pressure.
 *
 * Operations are totally ordered by timestamp (op i owns timestamp
 * range [(i+1)*kOpTsStride, (i+2)*kOpTsStride)), so the final store
 * state is a pure function of the op list — independent of arrival
 * times, scheduler, core count, host threads, and backend — and the
 * result digest is a golden.
 */
#include <cstdlib>
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/kvstore/zipf.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

/// Timestamps owned per operation (room for future multi-task ops).
constexpr uint64_t kOpTsStride = 4;

/// Default skew exponent s = 0.99 in Q32 (the YCSB-style default);
/// override with SWARMSIM_KV_SKEW (a decimal like "1.2"; 0 = uniform).
constexpr int64_t kDefaultSkewQ32 = 4252017623ll;

/// One key's row: owns its cache line so the spatial hint (the key) and
/// the conflict-detection granule coincide.
struct alignas(64) KvRow
{
    uint64_t val;
};

struct Op
{
    uint32_t key;
    uint32_t isPut; ///< 0 = get, 1 = put
    uint64_t val;   ///< put payload
};

inline uint64_t
opBase(uint64_t op)
{
    return (op + 1) * kOpTsStride;
}

class KvstoreApp : public App
{
  public:
    std::string name() const override { return "kvstore"; }
    uint32_t numTaskFunctions() const override { return 2; }
    const char* hintPattern() const override { return "Key"; }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        switch (p.preset) {
          case Preset::Tiny:
            nKeys_ = 256;
            nOps_ = 256;
            break;
          case Preset::Small:
            nKeys_ = 4096;
            nOps_ = 2048;
            break;
          default:
            nKeys_ = 65536;
            nOps_ = 16384;
            break;
        }
        int64_t skew = kDefaultSkewQ32;
        if (const char* e = std::getenv("SWARMSIM_KV_SKEW")) {
            double s = std::strtod(e, nullptr);
            if (s < 0 || s > 16)
                fatal("SWARMSIM_KV_SKEW must be in [0, 16], got '%s'", e);
            skew = int64_t(s * 4294967296.0);
        }
        zipf_ = ZipfGenerator(nKeys_, skew);

        initStore_.resize(nKeys_);
        for (uint32_t k = 0; k < nKeys_; k++)
            initStore_[k].val = rng.next();
        ops_.resize(nOps_);
        for (uint64_t i = 0; i < nOps_; i++) {
            ops_[i].key = zipf_.sample(rng.next());
            ops_[i].isPut = rng.next() & 1;
            ops_[i].val = rng.next();
        }

        // Oracle: apply the op list in order on the host.
        expStore_ = initStore_;
        expResults_.assign(nOps_, 0);
        expCounts_.assign(nKeys_, 0);
        for (uint64_t i = 0; i < nOps_; i++) {
            const Op& op = ops_[i];
            if (op.isPut)
                expStore_[op.key].val = op.val;
            else
                expResults_[i] = expStore_[op.key].val;
            expCounts_[op.key]++;
        }
        reset();
    }

    void
    reset() override
    {
        store_ = initStore_;
        results_.assign(nOps_, 0);
        counts_.assign(nKeys_, 0);
    }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint64_t i = 0; i < nOps_; i++)
            m.enqueueInitial(ops_[i].isPut ? putTask : getTask, opBase(i),
                             uint64_t(ops_[i].key), this, i);
    }

    ServingProfile
    servingProfile() const override
    {
        return {nOps_, kOpTsStride};
    }

    void
    injectRequest(Machine& m, uint64_t req) override
    {
        m.injectRoot(ops_[req].isPut ? putTask : getTask, opBase(req),
                     uint64_t(ops_[req].key), this, req);
    }

    std::vector<ReductionRange>
    reductionRanges() const override
    {
        // The per-key touch counters are pure adders (updated only via
        // ctx.reduce, read only by the post-run oracle check).
        return {{addrOf(counts_.data()), counts_.size() * sizeof(int64_t)}};
    }

    bool
    validate() const override
    {
        return std::memcmp(store_.data(), expStore_.data(),
                           store_.size() * sizeof(KvRow)) == 0 &&
               results_ == expResults_ && counts_ == expCounts_;
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: final store rows, get results,
        // per-key touch counts.
        uint64_t h = kFnvBasis;
        for (const KvRow& r : store_)
            h = fnv1aU64(r.val, h);
        h = digestRange(results_, h);
        return digestRange(counts_, h);
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        reset();
        for (uint64_t i = 0; i < nOps_; i++) {
            const Op& op = ops_[i];
            if (op.isPut) {
                sm.write(&store_[op.key].val, op.val);
            } else {
                uint64_t v = sm.read(&store_[op.key].val);
                sm.write(&results_[i], v);
            }
            int64_t c = sm.read(&counts_[op.key]);
            sm.write(&counts_[op.key], c + 1);
        }
        ssim_assert(validate(), "serial kvstore is wrong");
        return sm.cycles();
    }

    uint32_t nKeys_ = 0;
    uint64_t nOps_ = 0;
    ZipfGenerator zipf_;
    std::vector<KvRow> store_, initStore_, expStore_;
    std::vector<Op> ops_;
    std::vector<uint64_t> results_, expResults_;
    std::vector<int64_t> counts_, expCounts_;

  private:
    static swarm::TaskCoro getTask(swarm::TaskCtx&, swarm::Timestamp,
                                   const uint64_t*);
    static swarm::TaskCoro putTask(swarm::TaskCtx&, swarm::Timestamp,
                                   const uint64_t*);
};

swarm::TaskCoro
KvstoreApp::getTask(swarm::TaskCtx& ctx, swarm::Timestamp,
                    const uint64_t* args)
{
    auto* a = swarm::argPtr<KvstoreApp>(args[0]);
    uint64_t i = args[1];
    uint32_t key = a->ops_[i].key;

    uint64_t v = co_await ctx.read(&a->store_[key].val);
    co_await ctx.write(&a->results_[i], v);
    co_await ctx.reduce(&a->counts_[key], 1);
}

swarm::TaskCoro
KvstoreApp::putTask(swarm::TaskCtx& ctx, swarm::Timestamp,
                    const uint64_t* args)
{
    auto* a = swarm::argPtr<KvstoreApp>(args[0]);
    uint64_t i = args[1];
    uint32_t key = a->ops_[i].key;

    co_await ctx.write(&a->store_[key].val, a->ops_[i].val);
    co_await ctx.reduce(&a->counts_[key], 1);
}

} // namespace

std::unique_ptr<App>
makeKvstoreApp()
{
    return std::make_unique<KvstoreApp>();
}

} // namespace ssim::apps
