/**
 * @file
 * Seeded Zipfian key sampling for the kvstore workload generator and
 * the serving-harness property tests.
 *
 * Keys are ranked 1..n with weight w_j = j^-s (s = the skew exponent,
 * Q32 fixed point). The table is built once with the integer fixed-point
 * exp/ln routines in base/fixmath.h — no libm — so the sampled key
 * sequence for a given (n, skew, seed) is bit-identical on every
 * platform, which is what lets kvstore's result digest be a golden. At
 * s = 0 every weight is exactly 1.0 (Q32), degenerating to a uniform
 * sampler.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/fixmath.h"

namespace ssim::apps {

class ZipfGenerator
{
  public:
    ZipfGenerator() = default;

    /** Build the cumulative weight table for keys [0, n). */
    ZipfGenerator(uint32_t n, int64_t skew_q32)
    {
        cum_.reserve(n);
        uint64_t total = 0;
        for (uint32_t j = 0; j < n; j++) {
            // w = exp(-s * ln(rank)), Q32; clamp to >= 1 so the
            // cumulative table stays strictly increasing.
            uint64_t w =
                fxExpNegQ32(mulQ32(skew_q32, fxLnQ32(uint64_t(j) + 1)));
            total += w ? w : 1;
            cum_.push_back(total);
        }
    }

    uint32_t n() const { return uint32_t(cum_.size()); }

    /** Weight of key @p j (rank j + 1), Q32. */
    uint64_t
    weightQ32(uint32_t j) const
    {
        return j ? cum_[j] - cum_[j - 1] : cum_[0];
    }

    /** Map one 64-bit uniform draw to a key in [0, n). */
    uint32_t
    sample(uint64_t u) const
    {
        // Scale u into [0, total) with a 128-bit multiply (unbiased to
        // within 1/2^64), then binary-search the cumulative table.
        uint64_t total = cum_.back();
        uint64_t r = uint64_t((unsigned __int128)u * total >> 64);
        uint32_t lo = 0, hi = n() - 1;
        while (lo < hi) {
            uint32_t mid = (lo + hi) / 2;
            if (cum_[mid] <= r)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

  private:
    std::vector<uint64_t> cum_; ///< cum_[j] = w_0 + ... + w_j
};

} // namespace ssim::apps
