/**
 * @file
 * kmeans: K-means clustering (STAMP-style), unordered within phases.
 * Two task types per paper Sec. III-C:
 *   findCluster   operates on a single point; hint = point's cache line
 *   updateCluster adds the point to its centroid's accumulators;
 *                 hint = cluster ID (highly contended: hints localize
 *                 AND serialize these, the paper's headline kmeans win)
 * plus a per-cluster recompute task chained across iterations.
 *
 * Point coordinates are integers so accumulator sums are exact and the
 * result is bit-identical across schedulers and core counts; derived
 * centroids are doubles. The iteration count is fixed (the paper fixes
 * 40 for run-to-run consistency).
 */
#include <cmath>
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

constexpr uint32_t kDim = 4;

struct alignas(64) Point
{
    int64_t x[kDim];
};

struct alignas(64) Centroid
{
    double c[kDim];
};

struct alignas(64) Accum
{
    int64_t sum[kDim];
    int64_t count;
};

class KmeansApp : public App
{
  public:
    std::string name() const override { return "kmeans"; }
    uint32_t numTaskFunctions() const override { return 3; }
    const char* hintPattern() const override
    {
        return "Cache line of point, cluster ID";
    }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        switch (p.preset) {
          case Preset::Tiny:
            n_ = 128;
            k_ = 4;
            iters_ = 3;
            break;
          case Preset::Small:
            n_ = 1024;
            k_ = 8;
            iters_ = 6;
            break;
          default:
            n_ = 16384;
            k_ = 16;
            iters_ = 40;
            break;
        }
        points_.resize(n_);
        // Clustered gaussian-ish blobs around k_ anchors.
        std::vector<std::array<int64_t, kDim>> anchors(k_);
        for (auto& a : anchors)
            for (uint32_t j = 0; j < kDim; j++)
                a[j] = int64_t(rng.range(1 << 20));
        for (uint32_t i = 0; i < n_; i++) {
            auto& a = anchors[rng.range(k_)];
            for (uint32_t j = 0; j < kDim; j++)
                points_[i].x[j] =
                    a[j] + int64_t(rng.range(1 << 16)) - (1 << 15);
        }
        initCentroids_.resize(k_);
        for (uint32_t c = 0; c < k_; c++)
            for (uint32_t j = 0; j < kDim; j++)
                initCentroids_[c].c[j] = double(points_[c].x[j]);

        // Host oracle: identical algorithm, untimed.
        oracleMembership_.assign(n_, 0);
        oracleCentroids_ = initCentroids_;
        std::vector<Accum> acc(k_);
        for (uint32_t it = 0; it < iters_; it++) {
            std::fill(acc.begin(), acc.end(), Accum{});
            for (uint32_t i = 0; i < n_; i++) {
                uint32_t best = nearest(points_[i], oracleCentroids_);
                oracleMembership_[i] = best;
                for (uint32_t j = 0; j < kDim; j++)
                    acc[best].sum[j] += points_[i].x[j];
                acc[best].count++;
            }
            for (uint32_t c = 0; c < k_; c++)
                if (acc[c].count)
                    for (uint32_t j = 0; j < kDim; j++)
                        oracleCentroids_[c].c[j] =
                            double(acc[c].sum[j]) / double(acc[c].count);
        }
        reset();
    }

    void
    reset() override
    {
        centroids_ = initCentroids_;
        accums_.assign(k_, Accum{});
        membership_.assign(n_, 0);
    }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint32_t i = 0; i < n_; i++)
            m.enqueueInitial(findCluster, 0,
                             swarm::cacheLine(&points_[i]), this,
                             uint64_t(i), uint64_t(0));
        for (uint32_t c = 0; c < k_; c++)
            m.enqueueInitial(recompute, 2, uint64_t(c), this, uint64_t(c),
                             uint64_t(0));
    }

    std::vector<ReductionRange>
    reductionRanges() const override
    {
        // The per-cluster accumulators are pure adders: updateCluster
        // folds points in, recompute reads them (before its own
        // reduces) and clears them with negative reduces.
        return {{addrOf(accums_.data()), accums_.size() * sizeof(Accum)}};
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: memberships plus the final
        // centroid coordinates (hashed bitwise; validate() compares
        // the doubles exactly, so bitwise equality is the contract).
        uint64_t h = digestRange(membership_);
        for (const auto& c : centroids_)
            h = fnv1a(c.c, sizeof(c.c), h);
        return h;
    }

    bool
    validate() const override
    {
        if (membership_ != oracleMembership_)
            return false;
        for (uint32_t c = 0; c < k_; c++)
            for (uint32_t j = 0; j < kDim; j++)
                if (centroids_[c].c[j] != oracleCentroids_[c].c[j])
                    return false;
        return true;
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        reset();
        for (uint32_t it = 0; it < iters_; it++) {
            for (uint32_t i = 0; i < n_; i++) {
                Point pt;
                for (uint32_t j = 0; j < kDim; j++)
                    pt.x[j] = sm.read(&points_[i].x[j]);
                uint32_t best = 0;
                double bestD = 1e300;
                for (uint32_t c = 0; c < k_; c++) {
                    double d = 0;
                    for (uint32_t j = 0; j < kDim; j++) {
                        double diff =
                            sm.read(&centroids_[c].c[j]) - double(pt.x[j]);
                        d += diff * diff;
                    }
                    sm.compute(3 * kDim);
                    if (d < bestD) {
                        bestD = d;
                        best = c;
                    }
                }
                sm.write(&membership_[i], uint64_t(best));
                for (uint32_t j = 0; j < kDim; j++) {
                    int64_t s = sm.read(&accums_[best].sum[j]);
                    sm.write(&accums_[best].sum[j], s + pt.x[j]);
                }
                int64_t cnt = sm.read(&accums_[best].count);
                sm.write(&accums_[best].count, cnt + 1);
            }
            for (uint32_t c = 0; c < k_; c++) {
                int64_t cnt = sm.read(&accums_[c].count);
                if (cnt) {
                    for (uint32_t j = 0; j < kDim; j++) {
                        int64_t s = sm.read(&accums_[c].sum[j]);
                        sm.write(&centroids_[c].c[j],
                                 double(s) / double(cnt));
                        sm.write(&accums_[c].sum[j], int64_t(0));
                    }
                    sm.write(&accums_[c].count, int64_t(0));
                }
            }
        }
        ssim_assert(validate(), "serial kmeans is wrong");
        return sm.cycles();
    }

    static uint32_t
    nearest(const Point& p, const std::vector<Centroid>& cents)
    {
        uint32_t best = 0;
        double bestD = 1e300;
        for (uint32_t c = 0; c < cents.size(); c++) {
            double d = 0;
            for (uint32_t j = 0; j < kDim; j++) {
                double diff = cents[c].c[j] - double(p.x[j]);
                d += diff * diff;
            }
            if (d < bestD) {
                bestD = d;
                best = c;
            }
        }
        return best;
    }

    uint32_t n_ = 0, k_ = 0, iters_ = 0;
    std::vector<Point> points_;
    std::vector<Centroid> centroids_, initCentroids_, oracleCentroids_;
    std::vector<Accum> accums_;
    std::vector<uint64_t> membership_, oracleMembership_;

  private:
    static swarm::TaskCoro findCluster(swarm::TaskCtx&, swarm::Timestamp,
                                       const uint64_t*);
    static swarm::TaskCoro updateCluster(swarm::TaskCtx&, swarm::Timestamp,
                                         const uint64_t*);
    static swarm::TaskCoro recompute(swarm::TaskCtx&, swarm::Timestamp,
                                     const uint64_t*);
};

// Phase 3i: assign one point to its nearest centroid.
swarm::TaskCoro
KmeansApp::findCluster(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                       const uint64_t* args)
{
    auto* a = swarm::argPtr<KmeansApp>(args[0]);
    uint32_t i = uint32_t(args[1]);
    uint32_t iter = uint32_t(args[2]);

    Point pt;
    for (uint32_t j = 0; j < kDim; j++)
        pt.x[j] = co_await ctx.read(&a->points_[i].x[j]);
    uint32_t best = 0;
    double bestD = 1e300;
    for (uint32_t c = 0; c < a->k_; c++) {
        double d = 0;
        for (uint32_t j = 0; j < kDim; j++) {
            double cc = co_await ctx.read(&a->centroids_[c].c[j]);
            double diff = cc - double(pt.x[j]);
            d += diff * diff;
        }
        co_await ctx.compute(3 * kDim);
        if (d < bestD) {
            bestD = d;
            best = c;
        }
    }
    co_await ctx.write(&a->membership_[i], uint64_t(best));
    co_await ctx.enqueue(updateCluster, ts + 1, uint64_t(best), args[0],
                         args[1], uint64_t(best));
    if (iter + 1 < a->iters_)
        co_await ctx.enqueue(findCluster, ts + 3, swarm::SAMEHINT,
                             args[0], args[1], uint64_t(iter + 1));
}

// Phase 3i+1: fold the point into its cluster's accumulators.
swarm::TaskCoro
KmeansApp::updateCluster(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                         const uint64_t* args)
{
    auto* a = swarm::argPtr<KmeansApp>(args[0]);
    uint32_t i = uint32_t(args[1]);
    uint32_t c = uint32_t(args[2]);

    // Pure commutative adds: under a classified run these buffer per
    // task and fold at commit, so same-cluster updaters never conflict
    // on the accumulator line; unclassified they degrade to tracked
    // read-modify-writes with the same results.
    for (uint32_t j = 0; j < kDim; j++) {
        int64_t x = co_await ctx.read(&a->points_[i].x[j]);
        co_await ctx.reduce(&a->accums_[c].sum[j], x);
    }
    co_await ctx.reduce(&a->accums_[c].count, 1);
}

// Phase 3i+2: new centroid = sum / count; clear the accumulators.
swarm::TaskCoro
KmeansApp::recompute(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                     const uint64_t* args)
{
    auto* a = swarm::argPtr<KmeansApp>(args[0]);
    uint32_t c = uint32_t(args[1]);
    uint32_t iter = uint32_t(args[2]);

    // All plain reads of the accumulator line come BEFORE the first
    // reduce to it: a read after our own buffered delta would demote
    // the line (self-visibility). Clearing via negative reduces keeps
    // the line free of plain writes, which would also demote it.
    int64_t cnt = co_await ctx.read(&a->accums_[c].count);
    if (cnt) {
        int64_t s[kDim];
        for (uint32_t j = 0; j < kDim; j++)
            s[j] = co_await ctx.read(&a->accums_[c].sum[j]);
        for (uint32_t j = 0; j < kDim; j++)
            co_await ctx.write(&a->centroids_[c].c[j],
                               double(s[j]) / double(cnt));
        for (uint32_t j = 0; j < kDim; j++)
            co_await ctx.reduce(&a->accums_[c].sum[j], -s[j]);
        co_await ctx.reduce(&a->accums_[c].count, -cnt);
    }
    if (iter + 1 < a->iters_)
        co_await ctx.enqueue(recompute, ts + 3, swarm::SAMEHINT, args[0],
                             args[1], uint64_t(iter + 1));
}

} // namespace

std::unique_ptr<App>
makeKmeansApp()
{
    return std::make_unique<KmeansApp>();
}

} // namespace ssim::apps
