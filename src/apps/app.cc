#include "apps/app.h"

#include <cstdlib>

#include "apps/factories.h"
#include "base/logging.h"

namespace ssim::apps {

Preset
presetFromEnv()
{
    const char* e = std::getenv("SWARMSIM_FULL");
    return (e && e[0] == '1') ? Preset::Full : Preset::Small;
}

void
App::injectRequest(Machine&, uint64_t)
{
    fatal("app '%s' is not servable (servingProfile().requests == 0)",
          name().c_str());
}

std::unique_ptr<App>
makeApp(const std::string& name, bool fine_grain)
{
    if (name == "bfs")
        return makeBfsApp(fine_grain);
    if (name == "sssp")
        return makeSsspApp(fine_grain);
    if (name == "astar")
        return makeAstarApp(fine_grain);
    if (name == "color")
        return makeColorApp(fine_grain);
    if (fine_grain)
        fatal("app '%s' has no fine-grain version", name.c_str());
    if (name == "des")
        return makeDesApp();
    if (name == "nocsim")
        return makeNocsimApp();
    if (name == "silo")
        return makeSiloApp();
    if (name == "genome")
        return makeGenomeApp();
    if (name == "kmeans")
        return makeKmeansApp();
    if (name == "kvstore")
        return makeKvstoreApp();
    if (name == "pagerank")
        return makePagerankApp();
    fatal("unknown app '%s'", name.c_str());
}

const std::vector<std::string>&
appNames()
{
    static const std::vector<std::string> names = {
        "bfs",  "sssp",   "astar",  "color",  "des",     "nocsim",
        "silo", "genome", "kmeans", "kvstore", "pagerank"};
    return names;
}

const std::vector<std::string>&
fineGrainAppNames()
{
    static const std::vector<std::string> names = {"bfs", "sssp", "astar",
                                                   "color"};
    return names;
}

} // namespace ssim::apps
