/**
 * @file
 * A static B+-tree index for the silo benchmark's tables.
 *
 * Built once from sorted (key, value) pairs; silo tasks traverse it with
 * timed reads ("the task must first traverse a tree to find [the tuple]",
 * Sec. III-C). Nodes are two cache lines: header, 7 keys, 8 children (or
 * 7 values in leaves).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace ssim::apps {

struct alignas(64) BTreeNode
{
    uint64_t hdr = 0; ///< nkeys(8) | leaf(1)
    uint64_t keys[7] = {};
    uint64_t kids[8] = {}; ///< child node ids; in leaves, values

    static uint64_t packHdr(uint32_t nkeys, bool leaf)
    {
        return nkeys | (uint64_t(leaf) << 8);
    }
    static uint32_t nkeysOf(uint64_t h) { return uint32_t(h & 0xff); }
    static bool leafOf(uint64_t h) { return (h >> 8) & 1; }
};

class BTree
{
  public:
    /** Build from strictly-increasing (key, value) pairs. */
    void build(const std::vector<std::pair<uint64_t, uint64_t>>& sorted);

    /** Host-side (untimed) lookup; ~0 if absent. */
    uint64_t lookupHost(uint64_t key) const;

    uint32_t root() const { return root_; }
    const BTreeNode* node(uint32_t i) const { return &nodes_[i]; }
    BTreeNode* nodeMut(uint32_t i) { return &nodes_[i]; }
    uint32_t numNodes() const { return uint32_t(nodes_.size()); }
    uint32_t height() const { return height_; }

  private:
    std::vector<BTreeNode> nodes_;
    uint32_t root_ = 0;
    uint32_t height_ = 0;
};

} // namespace ssim::apps
