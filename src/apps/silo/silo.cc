/**
 * @file
 * silo: an in-memory OLTP database running a TPC-C-style mix (new-order
 * + payment). Each transaction is tens of tasks; each task reads or
 * updates one tuple, first traversing a B+-tree index to find it. The
 * tuple's address is unknown at task creation time, so hints are the
 * abstract (table ID, primary key) pair (Sec. III-C).
 */
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/serial_machine.h"
#include "apps/silo/tpcc.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

/// Timed B+-tree traversal; expands inline in task coroutines.
/// Leaves `val` = stored value (row index + 1), or 0 if absent.
#define SILO_TREE_LOOKUP(ctx, tree, key, val)                              \
    do {                                                                   \
        uint32_t nidx_ = (tree).root();                                    \
        (val) = 0;                                                         \
        while (true) {                                                     \
            const BTreeNode* nd_ = (tree).node(nidx_);                     \
            uint64_t hdr_ = co_await (ctx).read(&nd_->hdr);                \
            uint32_t nk_ = BTreeNode::nkeysOf(hdr_);                       \
            if (BTreeNode::leafOf(hdr_)) {                                 \
                for (uint32_t i_ = 0; i_ < nk_; i_++) {                    \
                    uint64_t k_ = co_await (ctx).read(&nd_->keys[i_]);     \
                    if (k_ == (key)) {                                     \
                        (val) = co_await (ctx).read(&nd_->kids[i_]);       \
                        break;                                             \
                    }                                                      \
                }                                                          \
                break;                                                     \
            }                                                              \
            uint32_t pos_ = 0;                                             \
            while (pos_ < nk_) {                                           \
                uint64_t k_ = co_await (ctx).read(&nd_->keys[pos_]);       \
                if ((key) < k_)                                            \
                    break;                                                 \
                pos_++;                                                    \
            }                                                              \
            nidx_ = uint32_t(co_await (ctx).read(&nd_->kids[pos_]));       \
        }                                                                  \
    } while (0)

constexpr uint32_t kDrivers = 16;
constexpr uint64_t kTxnTsStride = 32;

inline uint64_t
txnBase(uint64_t txn)
{
    return (txn + 1) * kTxnTsStride;
}

class SiloApp : public App
{
  public:
    std::string name() const override { return "silo"; }
    uint32_t numTaskFunctions() const override { return 9; }
    const char* hintPattern() const override
    {
        return "(Table ID, primary key)";
    }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        TpccConfig c;
        switch (p.preset) {
          case Preset::Tiny:
            c.warehouses = 2;
            c.districtsPerWh = 4;
            c.items = 256;
            c.txns = 64;
            break;
          case Preset::Small:
            c.warehouses = 4;
            c.districtsPerWh = 10;
            c.items = 2000;
            c.txns = 512;
            break;
          default:
            c.warehouses = 4;
            c.districtsPerWh = 10;
            c.items = 8000;
            c.txns = 6000;
            break;
        }
        c.maxOrdersPerDistrict = c.txns; // safe upper bound
        db_.init(c, rng);
        db_.txns = tpccGenTxns(c, rng);
        // Oracle: apply all transactions in order on the host.
        db_.reset();
        for (auto& t : db_.txns)
            db_.applyTxnHost(t);
        expWh_ = db_.warehouses;
        expDist_ = db_.districts;
        expCust_ = db_.customers;
        expStock_ = db_.stocks;
        expOrders_ = db_.orders;
        expOl_ = db_.orderLines;
        reset();
    }

    void reset() override { db_.reset(); }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint32_t k = 0; k < kDrivers && k < db_.txns.size(); k++)
            m.enqueueInitial(rootTask, txnBase(k), swarm::NOHINT, this,
                             uint64_t(k));
    }

    bool
    validate() const override
    {
        auto eq = [](const auto& a, const auto& b) {
            return std::memcmp(a.data(), b.data(),
                               a.size() * sizeof(a[0])) == 0;
        };
        return eq(db_.warehouses, expWh_) && eq(db_.districts, expDist_) &&
               eq(db_.customers, expCust_) && eq(db_.stocks, expStock_) &&
               eq(db_.orders, expOrders_) && eq(db_.orderLines, expOl_);
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: every table validate() memcmps.
        uint64_t h = digestRange(db_.warehouses);
        h = digestRange(db_.districts, h);
        h = digestRange(db_.customers, h);
        h = digestRange(db_.stocks, h);
        h = digestRange(db_.orders, h);
        return digestRange(db_.orderLines, h);
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        reset();
        for (auto& d : db_.txns)
            applyTxnTimed(sm, d);
        ssim_assert(validate(), "serial silo is wrong");
        return sm.cycles();
    }

    ServingProfile
    servingProfile() const override
    {
        // One request = one transaction; every task a transaction
        // creates carries a timestamp in [txnBase(t), txnBase(t) + 31]
        // (children max out at base + 17 + kMaxItemsPerTxn - 1 < +32).
        return {db_.txns.size(), kTxnTsStride};
    }

    void
    injectRequest(Machine& m, uint64_t req) override
    {
        // args[2] = 1: serving mode — the driver owns the arrival
        // schedule, so the root must not chain the next transaction.
        m.injectRoot(rootTask, txnBase(req), swarm::NOHINT, this, req,
                     uint64_t(1));
    }

    std::vector<ReductionRange>
    reductionRanges() const override
    {
        // Warehouse and customer rows are updated only via ctx.reduce
        // in this mix (and each row owns its cache line). Districts and
        // stocks are NOT declared: their lines carry plain writes
        // (nextOId, qty), so the profile would reject them anyway.
        return {{addrOf(db_.warehouses.data()),
                 db_.warehouses.size() * sizeof(WarehouseRow)},
                {addrOf(db_.customers.data()),
                 db_.customers.size() * sizeof(CustomerRow)}};
    }

    TpccDb db_;
    std::vector<WarehouseRow> expWh_;
    std::vector<DistrictRow> expDist_;
    std::vector<CustomerRow> expCust_;
    std::vector<StockRow> expStock_;
    std::vector<OrderRow> expOrders_;
    std::vector<OrderLineRow> expOl_;

  private:
    static swarm::TaskCoro rootTask(swarm::TaskCtx&, swarm::Timestamp,
                                    const uint64_t*);
    static swarm::TaskCoro districtTask(swarm::TaskCtx&, swarm::Timestamp,
                                        const uint64_t*);
    static swarm::TaskCoro itemTask(swarm::TaskCtx&, swarm::Timestamp,
                                    const uint64_t*);
    static swarm::TaskCoro stockTask(swarm::TaskCtx&, swarm::Timestamp,
                                     const uint64_t*);
    static swarm::TaskCoro orderTask(swarm::TaskCtx&, swarm::Timestamp,
                                     const uint64_t*);
    static swarm::TaskCoro orderLineTask(swarm::TaskCtx&, swarm::Timestamp,
                                         const uint64_t*);
    static swarm::TaskCoro payWhTask(swarm::TaskCtx&, swarm::Timestamp,
                                     const uint64_t*);
    static swarm::TaskCoro payDistTask(swarm::TaskCtx&, swarm::Timestamp,
                                       const uint64_t*);
    static swarm::TaskCoro payCustTask(swarm::TaskCtx&, swarm::Timestamp,
                                       const uint64_t*);

    void timedLookup(SerialMachine& sm, const BTree& t, uint64_t key);
    void applyTxnTimed(SerialMachine& sm, const TxnDesc& d);
};

// Transaction root (also the driver chain: issues the next txn).
swarm::TaskCoro
SiloApp::rootTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1];
    TpccDb& db = a->db_;
    const TxnDesc* d = &db.txns[txn];

    uint64_t w0 = co_await ctx.read(&d->w0);
    uint64_t w1 = co_await ctx.read(&d->w1);
    uint32_t w = TxnDesc::whOf(w0);
    uint32_t dist = TxnDesc::distOf(w0);
    uint64_t b = txnBase(txn);

    if (TxnDesc::isPayment(w0)) {
        co_await ctx.enqueue(payWhTask, b + 1, tpccHint(kWarehouse, w),
                             args[0], txn);
        co_await ctx.enqueue(payDistTask, b + 2,
                             tpccHint(kDistrict, db.distKey(w, dist)),
                             args[0], txn);
        co_await ctx.enqueue(
            payCustTask, b + 3,
            tpccHint(kCustomer,
                     db.custKey(w, dist, TxnDesc::custOf(w0))),
            args[0], txn);
    } else {
        uint32_t nitems = uint32_t(w1 & 0xf);
        co_await ctx.enqueue(districtTask, b + 1,
                             tpccHint(kDistrict, db.distKey(w, dist)),
                             args[0], txn);
        for (uint32_t i = 0; i < nitems; i++) {
            uint64_t it = co_await ctx.read(&d->items[i]);
            uint32_t item = uint32_t(it >> 8);
            co_await ctx.enqueue(itemTask, b + 2 + i,
                                 tpccHint(kItem, item), args[0], txn,
                                 uint64_t(i));
            co_await ctx.enqueue(stockTask, b + 8 + i,
                                 tpccHint(kStock, db.stockKey(w, item)),
                                 args[0], txn, uint64_t(i));
        }
        co_await ctx.enqueue(orderTask, b + 16,
                             tpccHint(kOrder, db.distKey(w, dist)),
                             args[0], txn);
        for (uint32_t i = 0; i < nitems; i++)
            co_await ctx.enqueue(orderLineTask, b + 17 + i,
                                 tpccHint(kOrderLine, db.distKey(w, dist)),
                                 args[0], txn, uint64_t(i));
    }

    // Driver chain: issue the next transaction — unless this root was
    // injected by the serving driver (args[2] = 1), which owns arrivals.
    if (!args[2]) {
        uint64_t next = txn + kDrivers;
        if (next < db.txns.size())
            co_await ctx.enqueue(rootTask, txnBase(next), swarm::NOHINT,
                                 args[0], next);
    }
}

swarm::TaskCoro
SiloApp::districtTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1];
    TpccDb& db = a->db_;
    uint64_t w0 = db.txns[txn].w0; // immutable txn input
    uint64_t key = db.distKey(TxnDesc::whOf(w0), TxnDesc::distOf(w0));

    uint64_t val;
    SILO_TREE_LOOKUP(ctx, db.distIdx, key, val);
    DistrictRow* row = &db.districts[val - 1];
    uint64_t oid = co_await ctx.read(&row->nextOId);
    co_await ctx.write(&row->nextOId, oid + 1);
    co_await ctx.write(&db.txnCtx[txn].oId, oid);
}

swarm::TaskCoro
SiloApp::itemTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1], i = args[2];
    TpccDb& db = a->db_;
    uint32_t item = uint32_t(db.txns[txn].items[i] >> 8);

    uint64_t val;
    SILO_TREE_LOOKUP(ctx, db.itemIdx, uint64_t(item), val);
    uint64_t price = co_await ctx.read(&db.itemPrices[val - 1]);
    co_await ctx.write(&db.txnCtx[txn].price[i], price);
}

swarm::TaskCoro
SiloApp::stockTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                   const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1], i = args[2];
    TpccDb& db = a->db_;
    uint64_t it = db.txns[txn].items[i];
    uint32_t item = uint32_t(it >> 8);
    uint64_t qty = it & 0xff;
    uint64_t key = db.stockKey(TxnDesc::whOf(db.txns[txn].w0), item);

    uint64_t val;
    SILO_TREE_LOOKUP(ctx, db.stockIdx, key, val);
    StockRow* s = &db.stocks[val - 1];
    // qty is a real read-modify-write (the branch uses the value); it
    // keeps the stock line plainly-written, so the reduces below stay
    // tracked read-modify-writes. They are still the honest expression
    // of the update, and cost nothing extra unclassified.
    uint64_t q = co_await ctx.read(&s->qty);
    co_await ctx.write(&s->qty, q >= qty + 10 ? q - qty : q - qty + 91);
    co_await ctx.reduce(&s->ytd, int64_t(qty));
    co_await ctx.reduce(&s->orderCnt, 1);
}

swarm::TaskCoro
SiloApp::orderTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                   const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1];
    TpccDb& db = a->db_;
    uint64_t w0 = db.txns[txn].w0;

    uint64_t oid = co_await ctx.read(&db.txnCtx[txn].oId);
    uint64_t slot = db.orderSlot(TxnDesc::whOf(w0), TxnDesc::distOf(w0),
                                 oid);
    co_await ctx.write(&db.orders[slot].customer,
                       uint64_t(TxnDesc::custOf(w0)));
    co_await ctx.write(&db.orders[slot].olCnt, db.txns[txn].w1 & 0xf);
}

swarm::TaskCoro
SiloApp::orderLineTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                       const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1], i = args[2];
    TpccDb& db = a->db_;
    uint64_t w0 = db.txns[txn].w0;
    uint64_t it = db.txns[txn].items[i];

    uint64_t oid = co_await ctx.read(&db.txnCtx[txn].oId);
    uint64_t price = co_await ctx.read(&db.txnCtx[txn].price[i]);
    uint64_t slot = db.orderSlot(TxnDesc::whOf(w0), TxnDesc::distOf(w0),
                                 oid);
    OrderLineRow* ol = &db.orderLines[slot * kMaxItemsPerTxn + i];
    uint64_t qty = it & 0xff;
    co_await ctx.write(&ol->item, it >> 8);
    co_await ctx.write(&ol->qty, qty);
    co_await ctx.write(&ol->amount, qty * price);
}

swarm::TaskCoro
SiloApp::payWhTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                   const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1];
    TpccDb& db = a->db_;
    uint32_t w = TxnDesc::whOf(db.txns[txn].w0);
    uint64_t amount = db.txns[txn].w1 >> 4;

    uint64_t val;
    SILO_TREE_LOOKUP(ctx, db.whIdx, uint64_t(w), val);
    WarehouseRow* row = &db.warehouses[val - 1];
    // The hottest contention point in the payment mix: every payment
    // for a warehouse folds into one ytd word. As a commutative reduce
    // on a classified line, same-warehouse payments stop aborting each
    // other entirely.
    co_await ctx.reduce(&row->ytd, int64_t(amount));
}

swarm::TaskCoro
SiloApp::payDistTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                     const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1];
    TpccDb& db = a->db_;
    uint64_t w0 = db.txns[txn].w0;
    uint64_t key = db.distKey(TxnDesc::whOf(w0), TxnDesc::distOf(w0));
    uint64_t amount = db.txns[txn].w1 >> 4;

    uint64_t val;
    SILO_TREE_LOOKUP(ctx, db.distIdx, key, val);
    DistrictRow* row = &db.districts[val - 1];
    // Commutative, but the district line also carries nextOId (plainly
    // written by districtTask), so the profile never classifies it:
    // this degrades to a tracked read-modify-write with identical
    // results.
    co_await ctx.reduce(&row->ytd, int64_t(amount));
}

swarm::TaskCoro
SiloApp::payCustTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                     const uint64_t* args)
{
    auto* a = swarm::argPtr<SiloApp>(args[0]);
    uint64_t txn = args[1];
    TpccDb& db = a->db_;
    uint64_t w0 = db.txns[txn].w0;
    uint64_t key = db.custKey(TxnDesc::whOf(w0), TxnDesc::distOf(w0),
                              TxnDesc::custOf(w0));
    uint64_t amount = db.txns[txn].w1 >> 4;

    uint64_t val;
    SILO_TREE_LOOKUP(ctx, db.custIdx, key, val);
    CustomerRow* row = &db.customers[val - 1];
    // Customer rows are pure accumulators in this mix (balance,
    // year-to-date payment, payment count) — all commutative adds.
    co_await ctx.reduce(&row->balance, -int64_t(amount));
    co_await ctx.reduce(&row->ytdPayment, int64_t(amount));
    co_await ctx.reduce(&row->paymentCnt, 1);
}

// ---- Tuned serial baseline -----------------------------------------------------

void
SiloApp::timedLookup(SerialMachine& sm, const BTree& t, uint64_t key)
{
    uint32_t nidx = t.root();
    while (true) {
        const BTreeNode* nd = t.node(nidx);
        uint64_t hdr = sm.read(&nd->hdr);
        uint32_t nk = BTreeNode::nkeysOf(hdr);
        if (BTreeNode::leafOf(hdr)) {
            for (uint32_t i = 0; i < nk; i++)
                if (sm.read(&nd->keys[i]) == key) {
                    sm.read(&nd->kids[i]);
                    break;
                }
            return;
        }
        uint32_t pos = 0;
        while (pos < nk && key >= sm.read(&nd->keys[pos]))
            pos++;
        nidx = uint32_t(sm.read(&nd->kids[pos]));
    }
}

void
SiloApp::applyTxnTimed(SerialMachine& sm, const TxnDesc& d)
{
    TpccDb& db = db_;
    uint64_t w0 = sm.read(&d.w0);
    uint64_t w1 = sm.read(&d.w1);
    uint32_t w = TxnDesc::whOf(w0);
    uint32_t dist = TxnDesc::distOf(w0);

    if (TxnDesc::isPayment(w0)) {
        uint64_t amount = w1 >> 4;
        timedLookup(sm, db.whIdx, w);
        sm.write(&db.warehouses[w].ytd, db.warehouses[w].ytd + amount);
        uint64_t dk = db.distKey(w, dist);
        timedLookup(sm, db.distIdx, dk);
        sm.write(&db.districts[dk].ytd, db.districts[dk].ytd + amount);
        uint64_t ck = db.custKey(w, dist, TxnDesc::custOf(w0));
        timedLookup(sm, db.custIdx, ck);
        CustomerRow& cr = db.customers[ck];
        sm.write(&cr.balance, cr.balance - int64_t(amount));
        sm.write(&cr.ytdPayment, cr.ytdPayment + amount);
        sm.write(&cr.paymentCnt, cr.paymentCnt + 1);
        return;
    }

    uint32_t nitems = uint32_t(w1 & 0xf);
    uint64_t dk = db.distKey(w, dist);
    timedLookup(sm, db.distIdx, dk);
    uint64_t oid = sm.read(&db.districts[dk].nextOId);
    sm.write(&db.districts[dk].nextOId, oid + 1);
    uint64_t slot = db.orderSlot(w, dist, oid);
    sm.write(&db.orders[slot].customer, uint64_t(TxnDesc::custOf(w0)));
    sm.write(&db.orders[slot].olCnt, uint64_t(nitems));
    for (uint32_t i = 0; i < nitems; i++) {
        uint64_t it = sm.read(&d.items[i]);
        uint32_t item = uint32_t(it >> 8);
        uint64_t qty = it & 0xff;
        timedLookup(sm, db.itemIdx, item);
        uint64_t price = sm.read(&db.itemPrices[item]);
        uint64_t sk = db.stockKey(w, item);
        timedLookup(sm, db.stockIdx, sk);
        StockRow& s = db.stocks[sk];
        uint64_t q = sm.read(&s.qty);
        sm.write(&s.qty, q >= qty + 10 ? q - qty : q - qty + 91);
        sm.write(&s.ytd, s.ytd + qty);
        sm.write(&s.orderCnt, s.orderCnt + 1);
        OrderLineRow& ol = db.orderLines[slot * kMaxItemsPerTxn + i];
        sm.write(&ol.item, uint64_t(item));
        sm.write(&ol.qty, qty);
        sm.write(&ol.amount, qty * price);
    }
}

} // namespace

std::unique_ptr<App>
makeSiloApp()
{
    return std::make_unique<SiloApp>();
}

} // namespace ssim::apps
