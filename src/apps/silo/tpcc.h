/**
 * @file
 * TPC-C-style workload substrate for the silo benchmark: warehouse /
 * district / customer / item / stock tables indexed by B+-trees, plus
 * append-only order and order-line tables, and a deterministic generator
 * of new-order and payment transactions.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "apps/silo/btree.h"
#include "base/rng.h"

namespace ssim::apps {

// Table ids used in hints: hint = (table << 56) | key (Sec. III-C).
enum TpccTable : uint64_t
{
    kWarehouse = 1,
    kDistrict,
    kCustomer,
    kItem,
    kStock,
    kOrder,
    kOrderLine,
};

inline uint64_t
tpccHint(uint64_t table, uint64_t key)
{
    return (table << 56) | key;
}

struct alignas(64) WarehouseRow
{
    uint64_t ytd = 0;
    uint64_t tax = 0;
};

struct alignas(64) DistrictRow
{
    uint64_t nextOId = 0;
    uint64_t ytd = 0;
    uint64_t tax = 0;
};

struct alignas(64) CustomerRow
{
    int64_t balance = 0;
    uint64_t ytdPayment = 0;
    uint64_t paymentCnt = 0;
};

struct alignas(64) StockRow
{
    uint64_t qty = 0;
    uint64_t ytd = 0;
    uint64_t orderCnt = 0;
};

struct alignas(64) OrderRow
{
    uint64_t customer = 0;
    uint64_t olCnt = 0;
};

struct alignas(64) OrderLineRow
{
    uint64_t item = 0;
    uint64_t qty = 0;
    uint64_t amount = 0;
};

/** Per-transaction scratch state communicated between a txn's tasks. */
struct alignas(64) TxnCtxRow
{
    uint64_t oId = 0;
    uint64_t price[5] = {};
};

constexpr uint32_t kMaxItemsPerTxn = 5;

/** Transaction descriptor (read by the txn's root task). */
struct alignas(64) TxnDesc
{
    uint64_t w0 = 0; ///< type(1) | warehouse(8) | district(8) | customer(16)
    uint64_t w1 = 0; ///< nitems(4) | amount(32)
    uint64_t items[kMaxItemsPerTxn] = {}; ///< item(32) | qty(8)

    static uint64_t
    packW0(bool payment, uint32_t w, uint32_t d, uint32_t c)
    {
        return uint64_t(payment) | (uint64_t(w) << 1) | (uint64_t(d) << 9) |
               (uint64_t(c) << 17);
    }
    static bool isPayment(uint64_t w) { return w & 1; }
    static uint32_t whOf(uint64_t w) { return uint32_t((w >> 1) & 0xff); }
    static uint32_t distOf(uint64_t w) { return uint32_t((w >> 9) & 0xff); }
    static uint32_t custOf(uint64_t w)
    {
        return uint32_t((w >> 17) & 0xffff);
    }
};

struct TpccConfig
{
    uint32_t warehouses = 4;
    uint32_t districtsPerWh = 10;
    uint32_t customersPerDistrict = 96;
    uint32_t items = 2000;
    uint32_t txns = 512;
    uint32_t maxOrdersPerDistrict = 128; ///< preallocated order slots
};

class TpccDb
{
  public:
    void init(const TpccConfig& cfg, Rng& rng);

    /** Restore all mutable rows to their initial values. */
    void reset();

    /** Apply one transaction on the host (the serial executor / oracle).
     *  Template-free: pass nullptr-like no-op charges via SerialMachine*
     *  in silo.cc; this untimed version is used to build the oracle. */
    void applyTxnHost(const TxnDesc& d);

    TpccConfig cfg;
    // Row storage (timed state).
    std::vector<WarehouseRow> warehouses;
    std::vector<DistrictRow> districts;
    std::vector<CustomerRow> customers;
    std::vector<uint64_t> itemPrices; ///< read-only, packed
    std::vector<StockRow> stocks;
    std::vector<OrderRow> orders;         ///< per (w,d): maxOrders slots
    std::vector<OrderLineRow> orderLines; ///< per order: kMaxItemsPerTxn
    std::vector<TxnCtxRow> txnCtx;        ///< one per transaction
    std::vector<TxnDesc> txns;

    // Indexes.
    BTree whIdx, distIdx, custIdx, itemIdx, stockIdx;

    // Key helpers.
    uint64_t distKey(uint32_t w, uint32_t d) const
    {
        return uint64_t(w) * cfg.districtsPerWh + d;
    }
    uint64_t
    custKey(uint32_t w, uint32_t d, uint32_t c) const
    {
        return (uint64_t(w) * cfg.districtsPerWh + d) *
                   cfg.customersPerDistrict +
               c;
    }
    uint64_t stockKey(uint32_t w, uint32_t i) const
    {
        return uint64_t(w) * cfg.items + i;
    }
    uint64_t
    orderSlot(uint32_t w, uint32_t d, uint64_t o) const
    {
        return (uint64_t(w) * cfg.districtsPerWh + d) *
                   cfg.maxOrdersPerDistrict +
               o;
    }

  private:
    struct InitSnapshot
    {
        std::vector<WarehouseRow> wh;
        std::vector<DistrictRow> dist;
        std::vector<CustomerRow> cust;
        std::vector<StockRow> stock;
    };
    InitSnapshot init_;
};

/** Generate a deterministic 50/50 new-order / payment mix. */
std::vector<TxnDesc> tpccGenTxns(const TpccConfig& cfg, Rng& rng);

} // namespace ssim::apps
