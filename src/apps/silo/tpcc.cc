#include "apps/silo/tpcc.h"

#include "base/logging.h"

namespace ssim::apps {

void
TpccDb::init(const TpccConfig& c, Rng& rng)
{
    cfg = c;
    warehouses.assign(cfg.warehouses, WarehouseRow{});
    districts.assign(uint64_t(cfg.warehouses) * cfg.districtsPerWh,
                     DistrictRow{});
    customers.assign(uint64_t(cfg.warehouses) * cfg.districtsPerWh *
                         cfg.customersPerDistrict,
                     CustomerRow{});
    itemPrices.resize(cfg.items);
    stocks.assign(uint64_t(cfg.warehouses) * cfg.items, StockRow{});
    orders.assign(uint64_t(cfg.warehouses) * cfg.districtsPerWh *
                      cfg.maxOrdersPerDistrict,
                  OrderRow{});
    orderLines.assign(orders.size() * kMaxItemsPerTxn, OrderLineRow{});

    for (auto& w : warehouses)
        w.tax = 1 + rng.range(20);
    for (auto& d : districts) {
        d.nextOId = 0;
        d.tax = 1 + rng.range(20);
    }
    for (auto& p : itemPrices)
        p = 100 + rng.range(9900);
    for (auto& s : stocks)
        s.qty = 50 + rng.range(50);

    auto buildIdx = [](BTree& t, uint64_t n) {
        std::vector<std::pair<uint64_t, uint64_t>> kv;
        kv.reserve(n);
        // Value = row index + 1 (0 means absent).
        for (uint64_t i = 0; i < n; i++)
            kv.emplace_back(i, i + 1);
        t.build(kv);
    };
    buildIdx(whIdx, cfg.warehouses);
    buildIdx(distIdx, districts.size());
    buildIdx(custIdx, customers.size());
    buildIdx(itemIdx, cfg.items);
    buildIdx(stockIdx, stocks.size());

    init_ = {warehouses, districts, customers, stocks};
}

void
TpccDb::reset()
{
    warehouses = init_.wh;
    districts = init_.dist;
    customers = init_.cust;
    stocks = init_.stock;
    std::fill(orders.begin(), orders.end(), OrderRow{});
    std::fill(orderLines.begin(), orderLines.end(), OrderLineRow{});
    txnCtx.assign(txns.size(), TxnCtxRow{});
}

void
TpccDb::applyTxnHost(const TxnDesc& d)
{
    uint32_t w = TxnDesc::whOf(d.w0);
    uint32_t dist = TxnDesc::distOf(d.w0);
    uint32_t c = TxnDesc::custOf(d.w0);
    if (TxnDesc::isPayment(d.w0)) {
        uint64_t amount = d.w1 >> 4;
        warehouses[w].ytd += amount;
        districts[distKey(w, dist)].ytd += amount;
        CustomerRow& cr = customers[custKey(w, dist, c)];
        cr.balance -= int64_t(amount);
        cr.ytdPayment += amount;
        cr.paymentCnt++;
        return;
    }
    uint32_t nitems = uint32_t(d.w1 & 0xf);
    DistrictRow& dr = districts[distKey(w, dist)];
    uint64_t oId = dr.nextOId++;
    uint64_t slot = orderSlot(w, dist, oId);
    orders[slot].customer = c;
    orders[slot].olCnt = nitems;
    for (uint32_t i = 0; i < nitems; i++) {
        uint32_t item = uint32_t(d.items[i] >> 8);
        uint64_t qty = d.items[i] & 0xff;
        StockRow& s = stocks[stockKey(w, item)];
        if (s.qty >= qty + 10)
            s.qty -= qty;
        else
            s.qty = s.qty - qty + 91;
        s.ytd += qty;
        s.orderCnt++;
        OrderLineRow& ol = orderLines[slot * kMaxItemsPerTxn + i];
        ol.item = item;
        ol.qty = qty;
        ol.amount = qty * itemPrices[item];
    }
}

std::vector<TxnDesc>
tpccGenTxns(const TpccConfig& cfg, Rng& rng)
{
    std::vector<TxnDesc> txns(cfg.txns);
    for (auto& t : txns) {
        bool payment = rng.chance(0.5);
        uint32_t w = uint32_t(rng.range(cfg.warehouses));
        uint32_t d = uint32_t(rng.range(cfg.districtsPerWh));
        uint32_t c = uint32_t(rng.range(cfg.customersPerDistrict));
        t.w0 = TxnDesc::packW0(payment, w, d, c);
        if (payment) {
            t.w1 = (1 + rng.range(5000)) << 4;
        } else {
            uint32_t nitems = 3 + uint32_t(rng.range(kMaxItemsPerTxn - 2));
            t.w1 = nitems;
            for (uint32_t i = 0; i < nitems; i++) {
                uint32_t item = uint32_t(rng.range(cfg.items));
                t.items[i] = (uint64_t(item) << 8) | (1 + rng.range(10));
            }
        }
    }
    return txns;
}

} // namespace ssim::apps
