#include "apps/silo/btree.h"

#include "base/logging.h"

namespace ssim::apps {

void
BTree::build(const std::vector<std::pair<uint64_t, uint64_t>>& sorted)
{
    ssim_assert(!sorted.empty());
    for (size_t i = 1; i < sorted.size(); i++)
        ssim_assert(sorted[i - 1].first < sorted[i].first,
                    "keys must be strictly increasing");
    nodes_.clear();

    // Leaf level: up to 7 entries per node.
    std::vector<uint32_t> level;      // node ids
    std::vector<uint64_t> levelMinKey;
    for (size_t i = 0; i < sorted.size(); i += 7) {
        BTreeNode n;
        uint32_t cnt = uint32_t(std::min<size_t>(7, sorted.size() - i));
        for (uint32_t j = 0; j < cnt; j++) {
            n.keys[j] = sorted[i + j].first;
            n.kids[j] = sorted[i + j].second;
        }
        n.hdr = BTreeNode::packHdr(cnt, true);
        level.push_back(uint32_t(nodes_.size()));
        levelMinKey.push_back(n.keys[0]);
        nodes_.push_back(n);
    }
    height_ = 1;

    // Internal levels: separator keys route key < keys[i] to kids[i].
    while (level.size() > 1) {
        std::vector<uint32_t> up;
        std::vector<uint64_t> upMin;
        for (size_t i = 0; i < level.size(); i += 8) {
            BTreeNode n;
            uint32_t cnt = uint32_t(std::min<size_t>(8, level.size() - i));
            for (uint32_t j = 0; j < cnt; j++) {
                n.kids[j] = level[i + j];
                if (j > 0)
                    n.keys[j - 1] = levelMinKey[i + j];
            }
            n.hdr = BTreeNode::packHdr(cnt - 1, false);
            up.push_back(uint32_t(nodes_.size()));
            upMin.push_back(levelMinKey[i]);
            nodes_.push_back(n);
        }
        level = std::move(up);
        levelMinKey = std::move(upMin);
        height_++;
    }
    root_ = level[0];
}

uint64_t
BTree::lookupHost(uint64_t key) const
{
    uint32_t n = root_;
    while (true) {
        const BTreeNode& nd = nodes_[n];
        uint32_t nk = BTreeNode::nkeysOf(nd.hdr);
        if (BTreeNode::leafOf(nd.hdr)) {
            for (uint32_t i = 0; i < nk; i++)
                if (nd.keys[i] == key)
                    return nd.kids[i];
            return 0;
        }
        uint32_t pos = 0;
        while (pos < nk && key >= nd.keys[pos])
            pos++;
        n = uint32_t(nd.kids[pos]);
    }
}

} // namespace ssim::apps
