#include "apps/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "base/logging.h"

namespace ssim::apps {

namespace {

Graph
fromEdges(uint32_t n,
          std::vector<std::tuple<uint32_t, uint32_t, uint32_t>>& edges)
{
    // Deduplicate and drop self-loops; emit both directions.
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> both;
    both.reserve(edges.size() * 2);
    for (auto [u, v, w] : edges) {
        if (u == v)
            continue;
        both.emplace_back(u, v, w);
        both.emplace_back(v, u, w);
    }
    std::sort(both.begin(), both.end());
    both.erase(std::unique(both.begin(), both.end(),
                           [](const auto& a, const auto& b) {
                               return std::get<0>(a) == std::get<0>(b) &&
                                      std::get<1>(a) == std::get<1>(b);
                           }),
               both.end());

    Graph g;
    g.n = n;
    g.offsets.assign(n + 1, 0);
    for (auto& [u, v, w] : both)
        g.offsets[u + 1]++;
    for (uint32_t i = 0; i < n; i++)
        g.offsets[i + 1] += g.offsets[i];
    g.neighbors.reserve(both.size());
    g.weights.reserve(both.size());
    for (auto& [u, v, w] : both) {
        g.neighbors.push_back(v);
        g.weights.push_back(w);
    }
    return g;
}

} // namespace

Graph
gridRoad(uint32_t w, uint32_t h, Rng& rng)
{
    ssim_assert(w >= 2 && h >= 2);
    uint32_t n = w * h;
    auto id = [&](uint32_t x, uint32_t y) { return y * w + x; };

    std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> edges;
    std::vector<int32_t> xs(n), ys(n);
    for (uint32_t y = 0; y < h; y++) {
        for (uint32_t x = 0; x < w; x++) {
            // Jittered coordinates (roads are not perfect grids).
            xs[id(x, y)] = int32_t(x) * kAstarScale +
                           int32_t(rng.range(kAstarScale / 2));
            ys[id(x, y)] = int32_t(y) * kAstarScale +
                           int32_t(rng.range(kAstarScale / 2));
        }
    }
    auto addEdge = [&](uint32_t a, uint32_t b) {
        // Weight >= Euclidean distance keeps A* heuristics admissible
        // and consistent (triangle inequality).
        double dx = xs[a] - xs[b], dy = ys[a] - ys[b];
        double dist = std::sqrt(dx * dx + dy * dy);
        uint32_t jitter = uint32_t(rng.range(kAstarScale));
        edges.emplace_back(a, b, uint32_t(std::ceil(dist)) + 1 + jitter);
    };
    for (uint32_t y = 0; y < h; y++) {
        for (uint32_t x = 0; x < w; x++) {
            if (x + 1 < w)
                addEdge(id(x, y), id(x + 1, y));
            if (y + 1 < h)
                addEdge(id(x, y), id(x, y + 1));
            // Sparse diagonal shortcuts (~20%), like road networks.
            if (x + 1 < w && y + 1 < h && rng.chance(0.2))
                addEdge(id(x, y), id(x + 1, y + 1));
        }
    }
    Graph g = fromEdges(n, edges);
    g.xs = std::move(xs);
    g.ys = std::move(ys);
    return g;
}

Graph
rmat(uint32_t n, uint32_t avg_deg, Rng& rng)
{
    // Round n up to a power of two for recursive partitioning.
    uint32_t bits = 1;
    while ((1u << bits) < n)
        bits++;
    uint32_t nn = 1u << bits;

    // Standard R-MAT parameters (a, b, c) = (0.57, 0.19, 0.19).
    uint64_t nedges = uint64_t(n) * avg_deg / 2;
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> edges;
    edges.reserve(nedges);
    for (uint64_t e = 0; e < nedges; e++) {
        uint32_t u = 0, v = 0;
        for (uint32_t b = 0; b < bits; b++) {
            double r = rng.uniform();
            if (r < 0.57) {
                // top-left: no bits set
            } else if (r < 0.76) {
                v |= 1u << b;
            } else if (r < 0.95) {
                u |= 1u << b;
            } else {
                u |= 1u << b;
                v |= 1u << b;
            }
        }
        u %= n;
        v %= n;
        (void)nn;
        if (u != v)
            edges.emplace_back(u, v, 1 + uint32_t(rng.range(16)));
    }
    return fromEdges(n, edges);
}

std::vector<uint64_t>
bfsOracle(const Graph& g, uint32_t src)
{
    std::vector<uint64_t> level(g.n, kUnreached);
    std::queue<uint32_t> q;
    level[src] = 0;
    q.push(src);
    while (!q.empty()) {
        uint32_t v = q.front();
        q.pop();
        for (uint32_t u : g.neigh(v)) {
            if (level[u] == kUnreached) {
                level[u] = level[v] + 1;
                q.push(u);
            }
        }
    }
    return level;
}

std::vector<uint64_t>
dijkstraOracle(const Graph& g, uint32_t src)
{
    std::vector<uint64_t> dist(g.n, kUnreached);
    using QE = std::pair<uint64_t, uint32_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v])
            continue;
        for (uint64_t i = g.offsets[v]; i < g.offsets[v + 1]; i++) {
            uint32_t u = g.neighbors[i];
            uint64_t nd = d + g.weights[i];
            if (nd < dist[u]) {
                dist[u] = nd;
                pq.emplace(nd, u);
            }
        }
    }
    return dist;
}

uint64_t
astarHeuristic(const Graph& g, uint32_t v, uint32_t dst)
{
    double dx = g.xs[v] - g.xs[dst];
    double dy = g.ys[v] - g.ys[dst];
    return uint64_t(std::floor(std::sqrt(dx * dx + dy * dy)));
}

std::vector<uint32_t>
ldfRank(const Graph& g)
{
    std::vector<uint32_t> order(g.n);
    for (uint32_t v = 0; v < g.n; v++)
        order[v] = v;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (g.degree(a) != g.degree(b))
            return g.degree(a) > g.degree(b);
        return a < b;
    });
    std::vector<uint32_t> rank(g.n);
    for (uint32_t i = 0; i < g.n; i++)
        rank[order[i]] = i;
    return rank;
}

std::vector<uint32_t>
greedyColorOracle(const Graph& g, const std::vector<uint32_t>& rank)
{
    constexpr uint32_t kUncolored = ~0u;
    std::vector<uint32_t> order(g.n);
    for (uint32_t v = 0; v < g.n; v++)
        order[rank[v]] = v;
    std::vector<uint32_t> color(g.n, kUncolored);
    std::vector<uint64_t> used;
    for (uint32_t v : order) {
        used.assign((g.degree(v) + 2 + 63) / 64, 0);
        for (uint32_t u : g.neigh(v)) {
            uint32_t c = color[u];
            if (c != kUncolored && c < used.size() * 64)
                used[c / 64] |= 1ull << (c % 64);
        }
        uint32_t c = 0;
        while (used[c / 64] & (1ull << (c % 64)))
            c++;
        color[v] = c;
    }
    return color;
}

bool
isProperColoring(const Graph& g, const std::vector<uint32_t>& color)
{
    for (uint32_t v = 0; v < g.n; v++)
        for (uint32_t u : g.neigh(v))
            if (color[v] == color[u])
                return false;
    return true;
}

} // namespace ssim::apps
