/**
 * @file
 * astar: A* pathfinding on a road map [Hart et al.]. Tasks are ordered by
 * f = g + h with a consistent Euclidean heuristic, so vertices settle at
 * their shortest distance on first visit in timestamp order. Hint: cache
 * line of the visited vertex.
 *
 * Like the paper's version, the heuristic is computed at enqueue time
 * from the neighbor's coordinates (timed reads + compute cycles).
 */
#include <cmath>
#include <memory>
#include <queue>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/graph.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

/// Cost of the sqrt-based heuristic evaluation, in cycles.
constexpr uint32_t kHeuristicCost = 12;

class AstarApp : public App
{
  public:
    explicit AstarApp(bool fg) : fg_(fg) {}

    std::string name() const override { return "astar"; }
    uint32_t numTaskFunctions() const override { return 1; }
    const char* hintPattern() const override { return "Cache line of vertex"; }
    bool hasFineGrain() const override { return true; }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t side;
        switch (p.preset) {
          case Preset::Tiny: side = 20; break;
          case Preset::Small: side = 72; break;
          default: side = 224; break;
        }
        g_ = gridRoad(side, side, rng);
        edges_.resize(g_.numEdges());
        for (uint64_t i = 0; i < g_.numEdges(); i++)
            edges_[i] = (uint64_t(g_.neighbors[i]) << 32) | g_.weights[i];
        // Pack coordinates: one timed read per heuristic evaluation.
        coords_.resize(g_.n);
        for (uint32_t v = 0; v < g_.n; v++)
            coords_[v] = (uint64_t(uint32_t(g_.xs[v])) << 32) |
                         uint32_t(g_.ys[v]);
        src_ = 0;
        dst_ = g_.n - 1; // opposite corner of the map
        oracle_ = dijkstraOracle(g_, src_);
        reset();
    }

    void
    reset() override
    {
        gscore.assign(g_.n, kUnreached);
        if (!fg_)
            gscore[src_] = 0;
    }

    void
    enqueueInitial(Machine& m) override
    {
        auto fn = fg_ ? astarTaskFG : astarTaskCG;
        m.enqueueInitial(fn, heuristic(src_, dst_),
                         swarm::cacheLine(&gscore[src_]), this,
                         uint64_t(src_), uint64_t(0));
    }

    bool
    validate() const override
    {
        // A consistent heuristic + run to quiescence settles every
        // reachable vertex at its shortest distance; in particular the
        // goal's route cost matches Dijkstra.
        return gscore == oracle_ && gscore[dst_] == oracle_[dst_];
    }

    uint64_t resultDigest() const override { return digestRange(gscore); }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        // Tuned serial baseline: textbook A* with a binary heap, stopping
        // when the goal is settled.
        reset();
        gscore[src_] = 0;
        using QE = std::pair<uint64_t, uint32_t>; // (f, vertex)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(heuristic(src_, dst_), src_);
        sm.compute(8);
        while (!pq.empty()) {
            auto [f, v] = pq.top();
            pq.pop();
            sm.compute(2 + 2 * uint64_t(std::log2(pq.size() + 2)));
            uint64_t gv = sm.read(&gscore[v]);
            if (f > gv + heuristic(v, dst_))
                continue;
            if (v == dst_)
                break;
            uint64_t beg = sm.read(&g_.offsets[v]);
            uint64_t end = sm.read(&g_.offsets[v + 1]);
            for (uint64_t i = beg; i < end; i++) {
                uint64_t e = sm.read(&edges_[i]);
                uint32_t n = uint32_t(e >> 32);
                uint64_t ng = gv + uint32_t(e);
                if (ng < sm.read(&gscore[n])) {
                    sm.write(&gscore[n], ng);
                    sm.read(&coords_[n]);
                    sm.compute(kHeuristicCost);
                    pq.emplace(ng + heuristic(n, dst_), n);
                    sm.compute(2 + 2 * uint64_t(std::log2(pq.size() + 1)));
                }
            }
        }
        ssim_assert(gscore[dst_] == oracle_[dst_], "serial astar is wrong");
        return sm.cycles();
    }

    uint64_t
    heuristic(uint32_t v, uint32_t dst) const
    {
        return astarHeuristic(g_, v, dst);
    }

    Graph g_;
    std::vector<uint64_t> edges_;
    std::vector<uint64_t> coords_;
    std::vector<uint64_t> gscore;
    uint32_t src_ = 0, dst_ = 0;
    std::vector<uint64_t> oracle_;
    bool fg_;

  private:
    static swarm::TaskCoro astarTaskCG(swarm::TaskCtx& ctx,
                                       swarm::Timestamp f,
                                       const uint64_t* args);
    static swarm::TaskCoro astarTaskFG(swarm::TaskCtx& ctx,
                                       swarm::Timestamp f,
                                       const uint64_t* args);

    /// Timed heuristic: read the packed coordinates, pay the sqrt.
    static uint64_t
    heuristicOf(uint64_t coord, uint64_t dstCoord)
    {
        double dx = double(int64_t(coord >> 32) - int64_t(dstCoord >> 32));
        double dy = double(int64_t(uint32_t(coord)) -
                           int64_t(uint32_t(dstCoord)));
        return uint64_t(std::floor(std::sqrt(dx * dx + dy * dy)));
    }
};

swarm::TaskCoro
AstarApp::astarTaskCG(swarm::TaskCtx& ctx, swarm::Timestamp f,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<AstarApp>(args[0]);
    uint32_t v = uint32_t(args[1]);
    uint64_t gv = args[2];

    if (gv != co_await ctx.read(&a->gscore[v]))
        co_return; // superseded by a shorter route
    uint64_t dstCoord = co_await ctx.read(&a->coords_[a->dst_]);
    uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
    uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
    for (uint64_t i = beg; i < end; i++) {
        uint64_t e = co_await ctx.read(&a->edges_[i]);
        uint32_t n = uint32_t(e >> 32);
        uint64_t ng = gv + uint32_t(e);
        uint64_t gn = co_await ctx.read(&a->gscore[n]);
        if (ng < gn) {
            co_await ctx.write(&a->gscore[n], ng);
            uint64_t nc = co_await ctx.read(&a->coords_[n]);
            co_await ctx.compute(kHeuristicCost);
            co_await ctx.enqueue(astarTaskCG, ng + heuristicOf(nc, dstCoord),
                                 swarm::cacheLine(&a->gscore[n]), args[0],
                                 uint64_t(n), ng);
        }
    }
}

swarm::TaskCoro
AstarApp::astarTaskFG(swarm::TaskCtx& ctx, swarm::Timestamp f,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<AstarApp>(args[0]);
    uint32_t v = uint32_t(args[1]);
    uint64_t gv = args[2];

    if (co_await ctx.read(&a->gscore[v]) == kUnreached) {
        co_await ctx.write(&a->gscore[v], gv);
        uint64_t dstCoord = co_await ctx.read(&a->coords_[a->dst_]);
        uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
        uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
        for (uint64_t i = beg; i < end; i++) {
            uint64_t e = co_await ctx.read(&a->edges_[i]);
            uint32_t n = uint32_t(e >> 32);
            uint64_t ng = gv + uint32_t(e);
            uint64_t nc = co_await ctx.read(&a->coords_[n]);
            co_await ctx.compute(kHeuristicCost);
            co_await ctx.enqueue(astarTaskFG, ng + heuristicOf(nc, dstCoord),
                                 swarm::cacheLine(&a->gscore[n]), args[0],
                                 uint64_t(n), ng);
        }
    }
}

} // namespace

std::unique_ptr<App>
makeAstarApp(bool fine_grain)
{
    return std::make_unique<AstarApp>(fine_grain);
}

} // namespace ssim::apps
