#include "apps/des/circuit.h"

#include <bit>

#include "base/logging.h"

namespace ssim::apps {

bool
evalGate(GateType type, uint8_t iv, uint8_t nin)
{
    uint8_t mask = uint8_t((1u << nin) - 1);
    uint8_t v = iv & mask;
    switch (type) {
      case GateType::Input:
      case GateType::Buf: return v & 1;
      case GateType::Not: return !(v & 1);
      case GateType::And: return v == mask;
      case GateType::Or: return v != 0;
      case GateType::Xor: return std::popcount(v) & 1;
      case GateType::Nand: return v != mask;
      case GateType::Nor: return v == 0;
      case GateType::Xnor: return !(std::popcount(v) & 1);
      default: panic("bad gate type");
    }
}

uint32_t
Circuit::addGate(GateType t, uint8_t delay)
{
    ssim_assert(!finalized_);
    build_.push_back(Build{t, delay, 0, {}});
    if (t == GateType::Input)
        inputGates.push_back(uint32_t(build_.size() - 1));
    return uint32_t(build_.size() - 1);
}

void
Circuit::connect(uint32_t src, uint32_t dst, uint8_t pin)
{
    ssim_assert(!finalized_);
    ssim_assert(src < build_.size() && dst < build_.size());
    ssim_assert(dst > src, "gates must be wired in topological order");
    ssim_assert(pin < 8);
    build_[src].fanout.push_back(fanoutEnc(dst, pin));
    build_[dst].ninputs = std::max<uint8_t>(build_[dst].ninputs,
                                            uint8_t(pin + 1));
}

void
Circuit::finalize()
{
    ssim_assert(!finalized_);
    finalized_ = true;
    gates.resize(build_.size());
    for (uint32_t g = 0; g < build_.size(); g++) {
        Build& b = build_[g];
        uint64_t start = fanout.size();
        for (uint64_t e : b.fanout)
            fanout.push_back(e);
        uint8_t nin = std::max<uint8_t>(b.ninputs, 1);
        gates[g].w1 = GateRec::packW1(start, b.fanout.size());
        gates[g].w0 = GateRec::packW0(b.type, nin, 0, false, b.delay);
    }
    // Settle outputs with all external inputs at 0 (gates are in
    // topological order, so one forward pass suffices).
    for (uint32_t g = 0; g < gates.size(); g++) {
        uint64_t w0 = gates[g].w0;
        bool out = evalGate(GateRec::typeOf(w0), GateRec::ivOf(w0),
                            GateRec::ninOf(w0));
        gates[g].w0 = GateRec::packW0(GateRec::typeOf(w0),
                                      GateRec::ninOf(w0), GateRec::ivOf(w0),
                                      out, GateRec::delayOf(w0));
        if (out) {
            // Propagate the settled value into fanout input bits.
            uint64_t start = GateRec::fanoutStartOf(gates[g].w1);
            uint64_t cnt = GateRec::fanoutCountOf(gates[g].w1);
            for (uint64_t i = 0; i < cnt; i++) {
                uint64_t e = fanout[start + i];
                uint32_t dg = uint32_t(e >> 3);
                uint8_t pin = uint8_t(e & 7);
                uint64_t dw = gates[dg].w0;
                uint8_t iv = uint8_t(GateRec::ivOf(dw) | (1u << pin));
                gates[dg].w0 =
                    GateRec::packW0(GateRec::typeOf(dw), GateRec::ninOf(dw),
                                    iv, GateRec::outOf(dw),
                                    GateRec::delayOf(dw));
            }
        }
    }
}

std::vector<bool>
Circuit::evalAll(const std::vector<bool>& input_vals) const
{
    ssim_assert(finalized_);
    ssim_assert(input_vals.size() == inputGates.size());
    std::vector<uint8_t> iv(gates.size(), 0);
    for (size_t i = 0; i < inputGates.size(); i++)
        if (input_vals[i])
            iv[inputGates[i]] |= 1;
    std::vector<bool> out(gates.size());
    for (uint32_t g = 0; g < gates.size(); g++) {
        uint64_t w0 = gates[g].w0;
        bool o = evalGate(GateRec::typeOf(w0), iv[g], GateRec::ninOf(w0));
        out[g] = o;
        if (o) {
            uint64_t start = GateRec::fanoutStartOf(gates[g].w1);
            uint64_t cnt = GateRec::fanoutCountOf(gates[g].w1);
            for (uint64_t i = 0; i < cnt; i++) {
                uint64_t e = fanout[start + i];
                iv[uint32_t(e >> 3)] |= uint8_t(1u << (e & 7));
            }
        }
    }
    return out;
}

Circuit
csaArray(uint32_t nadders, uint32_t width)
{
    Circuit c;
    auto delayOf = [](uint32_t g) { return uint8_t(1 + g % 3); };
    uint32_t gid = 0;
    auto gate = [&](GateType t) {
        uint32_t g = c.addGate(t, delayOf(gid));
        gid++;
        return g;
    };

    for (uint32_t adder = 0; adder < nadders; adder++) {
        // Full adders: sum = (a^b)^cin; cout = ab | (a^b)cin.
        std::vector<uint32_t> as(width), bs(width);
        for (uint32_t i = 0; i < width; i++) {
            as[i] = gate(GateType::Input);
            bs[i] = gate(GateType::Input);
        }
        uint32_t cin = gate(GateType::Input);

        // Carry-select: 4-bit blocks computed for cin=0 and cin=1, with
        // the real carry selecting via mux = (sel & x1) | (!sel & x0).
        uint32_t carry = cin;
        for (uint32_t blk = 0; blk < width; blk += 4) {
            uint32_t blkEnd = std::min(blk + 4, width);
            // Two speculative ripple chains.
            uint32_t carry0 = ~0u, carry1 = ~0u; // block-internal carries
            std::vector<uint32_t> sum0, sum1;
            for (int variant = 0; variant < 2; variant++) {
                uint32_t cNode = ~0u; // carry-in constant inside block
                for (uint32_t i = blk; i < blkEnd; i++) {
                    uint32_t axb = gate(GateType::Xor);
                    c.connect(as[i], axb, 0);
                    c.connect(bs[i], axb, 1);
                    uint32_t ab = gate(GateType::And);
                    c.connect(as[i], ab, 0);
                    c.connect(bs[i], ab, 1);
                    uint32_t sum, cout;
                    if (cNode == ~0u) {
                        // First bit: carry-in is the constant 0 or 1.
                        if (variant == 0) {
                            sum = gate(GateType::Buf);
                            c.connect(axb, sum, 0);
                            cout = gate(GateType::Buf);
                            c.connect(ab, cout, 0);
                        } else {
                            sum = gate(GateType::Not);
                            c.connect(axb, sum, 0);
                            cout = gate(GateType::Or);
                            c.connect(ab, cout, 0);
                            c.connect(axb, cout, 1);
                        }
                    } else {
                        sum = gate(GateType::Xor);
                        c.connect(axb, sum, 0);
                        c.connect(cNode, sum, 1);
                        uint32_t axbc = gate(GateType::And);
                        c.connect(axb, axbc, 0);
                        c.connect(cNode, axbc, 1);
                        cout = gate(GateType::Or);
                        c.connect(ab, cout, 0);
                        c.connect(axbc, cout, 1);
                    }
                    if (variant == 0)
                        sum0.push_back(sum);
                    else
                        sum1.push_back(sum);
                    cNode = cout;
                }
                if (variant == 0)
                    carry0 = cNode;
                else
                    carry1 = cNode;
            }
            // Select with the incoming carry: out = sel ? x1 : x0.
            auto mux = [&](uint32_t sel, uint32_t x0, uint32_t x1) {
                uint32_t nsel = gate(GateType::Not);
                c.connect(sel, nsel, 0);
                uint32_t t1 = gate(GateType::And);
                c.connect(sel, t1, 0);
                c.connect(x1, t1, 1);
                uint32_t t0 = gate(GateType::And);
                c.connect(nsel, t0, 0);
                c.connect(x0, t0, 1);
                uint32_t o = gate(GateType::Or);
                c.connect(t1, o, 0);
                c.connect(t0, o, 1);
                return o;
            };
            for (uint32_t i = 0; i < sum0.size(); i++)
                mux(carry, sum0[i], sum1[i]);
            carry = mux(carry, carry0, carry1);
        }
    }
    c.finalize();
    return c;
}

std::vector<std::vector<uint64_t>>
randomWaveforms(const Circuit& c, uint64_t horizon,
                double toggles_per_input, Rng& rng)
{
    std::vector<std::vector<uint64_t>> waves(c.inputGates.size());
    for (auto& w : waves) {
        double p = toggles_per_input / double(horizon);
        for (uint64_t t = 1; t <= horizon; t++)
            if (rng.chance(p))
                w.push_back(t);
    }
    return waves;
}

} // namespace ssim::apps
