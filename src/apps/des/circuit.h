/**
 * @file
 * Gate-level digital circuit substrate for the des benchmark.
 *
 * Gates are fixed-size records padded to one cache line ("in des, using
 * the gate ID is equivalent to using its line address, as each gate spans
 * one line"). A generated array of carry-select adders stands in for the
 * paper's csaArray32 input (DESIGN.md §1).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/types.h"

namespace ssim::apps {

enum class GateType : uint8_t
{
    Input = 0,
    Buf,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
};

/** Evaluate a gate's output from its packed input values. */
bool evalGate(GateType type, uint8_t input_vals, uint8_t ninputs);

/**
 * One gate, padded to a cache line. Dynamic state and topology are packed
 * into two words so a task toggle costs two timed accesses:
 *   w0: type(4) | ninputs(4) | inputVals(8) | output(1) | delay(8)
 *   w1: fanoutStart(40) | fanoutCount(24)
 */
struct alignas(64) GateRec
{
    uint64_t w0 = 0;
    uint64_t w1 = 0;
    uint64_t pad[6] = {};

    static uint64_t
    packW0(GateType t, uint8_t nin, uint8_t iv, bool out, uint8_t delay)
    {
        return uint64_t(uint8_t(t)) | (uint64_t(nin) << 4) |
               (uint64_t(iv) << 8) | (uint64_t(out) << 16) |
               (uint64_t(delay) << 17);
    }
    static GateType typeOf(uint64_t w) { return GateType(w & 0xf); }
    static uint8_t ninOf(uint64_t w) { return uint8_t((w >> 4) & 0xf); }
    static uint8_t ivOf(uint64_t w) { return uint8_t((w >> 8) & 0xff); }
    static bool outOf(uint64_t w) { return (w >> 16) & 1; }
    static uint8_t delayOf(uint64_t w) { return uint8_t((w >> 17) & 0xff); }
    static uint64_t
    packW1(uint64_t fanout_start, uint64_t fanout_count)
    {
        return fanout_start | (fanout_count << 40);
    }
    static uint64_t fanoutStartOf(uint64_t w) { return w & 0xffffffffffull; }
    static uint64_t fanoutCountOf(uint64_t w) { return w >> 40; }
};

/** Fanout entry: (gate << 3) | input pin. */
inline uint64_t
fanoutEnc(uint32_t gate, uint8_t pin)
{
    return (uint64_t(gate) << 3) | pin;
}

class Circuit
{
  public:
    /** Create a gate; returns its id. Inputs are wired via connect(). */
    uint32_t addGate(GateType t, uint8_t delay);

    /** Wire src's output to (dst, pin). */
    void connect(uint32_t src, uint32_t dst, uint8_t pin);

    /** Finalize: build fanout arrays and settle all outputs from inputs. */
    void finalize();

    /** Host-side topological evaluation given external input values. */
    std::vector<bool> evalAll(const std::vector<bool>& input_vals) const;

    uint32_t numGates() const { return uint32_t(gates.size()); }

    std::vector<GateRec> gates;       ///< timed state (one line per gate)
    std::vector<uint64_t> fanout;     ///< encoded (gate, pin) entries
    std::vector<uint32_t> inputGates; ///< external input gate ids

  private:
    struct Build
    {
        GateType type;
        uint8_t delay;
        uint8_t ninputs = 0;
        std::vector<uint64_t> fanout;
    };
    std::vector<Build> build_;
    bool finalized_ = false;
};

/**
 * Generate an array of @p nadders W-bit carry-select adders built from
 * 2-input gates, with external inputs for the operand bits and carries.
 */
Circuit csaArray(uint32_t nadders, uint32_t width);

/**
 * Random input waveforms: per external input, a sorted list of toggle
 * times in [1, horizon], on average @p toggles_per_input toggles.
 */
std::vector<std::vector<uint64_t>> randomWaveforms(const Circuit& c,
                                                   uint64_t horizon,
                                                   double toggles_per_input,
                                                   Rng& rng);

} // namespace ssim::apps
