/**
 * @file
 * des: discrete-event simulation of digital circuits (paper Listing 1).
 * Each task simulates a signal toggling at a gate input; if the gate
 * output toggles, child tasks are enqueued for all connected inputs
 * after the gate's delay. Hint: logic gate ID.
 */
#include <memory>
#include <queue>

#include "apps/app.h"
#include "apps/des/circuit.h"
#include "apps/factories.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

class DesApp : public App
{
  public:
    std::string name() const override { return "des"; }
    uint32_t numTaskFunctions() const override { return 2; }
    const char* hintPattern() const override { return "Logic gate ID"; }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t nadders;
        uint64_t horizon;
        switch (p.preset) {
          case Preset::Tiny:
            nadders = 4;
            horizon = 60;
            break;
          case Preset::Small:
            nadders = 48;
            horizon = 250;
            break;
          default:
            nadders = 256;
            horizon = 1200;
            break;
        }
        circ_ = csaArray(nadders, 16);
        waves_ = randomWaveforms(circ_, horizon, 6.0, rng);
        // Flatten waveforms for timed reads: per input (start, count).
        waveOff_.assign(waves_.size() + 1, 0);
        for (size_t i = 0; i < waves_.size(); i++)
            waveOff_[i + 1] = waveOff_[i] + waves_[i].size();
        waveTimes_.reserve(waveOff_.back());
        for (auto& w : waves_)
            waveTimes_.insert(waveTimes_.end(), w.begin(), w.end());
        init_ = circ_.gates;
        // Final input values: toggle-count parity.
        finalInputs_.resize(waves_.size());
        for (size_t i = 0; i < waves_.size(); i++)
            finalInputs_[i] = waves_[i].size() & 1;
        oracle_ = circ_.evalAll(finalInputs_);
    }

    void
    reset() override
    {
        circ_.gates = init_;
        togglesProcessed = 0;
    }

    void
    enqueueInitial(Machine& m) override
    {
        // One waveform-driver task per external input (Listing 1 main()).
        for (uint32_t i = 0; i < circ_.inputGates.size(); i++) {
            if (waves_[i].empty())
                continue;
            m.enqueueInitial(waveTask, waves_[i][0],
                             uint64_t(circ_.inputGates[i]), this,
                             uint64_t(i), uint64_t(0));
        }
    }

    bool
    validate() const override
    {
        for (uint32_t g = 0; g < circ_.numGates(); g++)
            if (GateRec::outOf(circ_.gates[g].w0) != oracle_[g])
                return false;
        return togglesProcessed > 0;
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: each gate's settled output bit.
        uint64_t h = kFnvBasis;
        for (uint32_t g = 0; g < circ_.numGates(); g++)
            h = fnv1aU64(GateRec::outOf(circ_.gates[g].w0), h);
        return h;
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        // Tuned serial baseline: a priority-queue event simulator.
        reset();
        using Ev = std::pair<uint64_t, uint64_t>; // (time, fanout enc)
        std::priority_queue<Ev, std::vector<Ev>, std::greater<>> pq;
        for (size_t i = 0; i < waves_.size(); i++)
            for (uint64_t t : waves_[i])
                pq.emplace(t, fanoutEnc(circ_.inputGates[i], 0));
        while (!pq.empty()) {
            auto [ts, enc] = pq.top();
            pq.pop();
            sm.compute(6); // heap pop
            uint32_t g = uint32_t(enc >> 3);
            uint8_t pin = uint8_t(enc & 7);
            uint64_t w0 = sm.read(&circ_.gates[g].w0);
            uint8_t iv = uint8_t(GateRec::ivOf(w0) ^ (1u << pin));
            bool out = evalGate(GateRec::typeOf(w0), iv, GateRec::ninOf(w0));
            bool toggled = out != GateRec::outOf(w0);
            sm.write(&circ_.gates[g].w0,
                     GateRec::packW0(GateRec::typeOf(w0),
                                     GateRec::ninOf(w0), iv, out,
                                     GateRec::delayOf(w0)));
            if (toggled) {
                uint64_t w1 = sm.read(&circ_.gates[g].w1);
                uint64_t start = GateRec::fanoutStartOf(w1);
                uint64_t cnt = GateRec::fanoutCountOf(w1);
                for (uint64_t i = 0; i < cnt; i++) {
                    uint64_t e = sm.read(&circ_.fanout[start + i]);
                    pq.emplace(ts + GateRec::delayOf(w0), e);
                    sm.compute(6); // heap push
                }
            }
        }
        ssim_assert(validate() || togglesProcessed == 0,
                    "serial des is wrong");
        return sm.cycles();
    }

    Circuit circ_;
    std::vector<std::vector<uint64_t>> waves_;
    std::vector<uint64_t> waveOff_, waveTimes_;
    std::vector<bool> finalInputs_;
    std::vector<bool> oracle_;
    std::vector<GateRec> init_;
    uint64_t togglesProcessed = 0; ///< host-side stat, not timed state

  private:
    static swarm::TaskCoro desTask(swarm::TaskCtx&, swarm::Timestamp,
                                   const uint64_t*);
    static swarm::TaskCoro waveTask(swarm::TaskCtx&, swarm::Timestamp,
                                    const uint64_t*);
};

// Listing 1: simulate a signal toggling at a gate input.
swarm::TaskCoro
DesApp::desTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                const uint64_t* args)
{
    auto* a = swarm::argPtr<DesApp>(args[0]);
    uint64_t enc = args[1];
    uint32_t g = uint32_t(enc >> 3);
    uint8_t pin = uint8_t(enc & 7);

    uint64_t w0 = co_await ctx.read(&a->circ_.gates[g].w0);
    uint8_t iv = uint8_t(GateRec::ivOf(w0) ^ (1u << pin));
    bool out = evalGate(GateRec::typeOf(w0), iv, GateRec::ninOf(w0));
    bool toggledOutput = out != GateRec::outOf(w0);
    co_await ctx.compute(2);
    co_await ctx.write(&a->circ_.gates[g].w0,
                       GateRec::packW0(GateRec::typeOf(w0),
                                       GateRec::ninOf(w0), iv, out,
                                       GateRec::delayOf(w0)));
    a->togglesProcessed++; // host-side stat
    if (toggledOutput) {
        // Toggle all inputs connected to this gate.
        uint64_t w1 = co_await ctx.read(&a->circ_.gates[g].w1);
        uint64_t start = GateRec::fanoutStartOf(w1);
        uint64_t cnt = GateRec::fanoutCountOf(w1);
        for (uint64_t i = 0; i < cnt; i++) {
            uint64_t e = co_await ctx.read(&a->circ_.fanout[start + i]);
            co_await ctx.enqueue(desTask, ts + GateRec::delayOf(w0),
                                 uint64_t(e >> 3) /*gate ID hint*/,
                                 args[0], e);
        }
    }
}

// Drives one external input's waveform: toggle now, chain to the next.
swarm::TaskCoro
DesApp::waveTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                 const uint64_t* args)
{
    auto* a = swarm::argPtr<DesApp>(args[0]);
    uint32_t input = uint32_t(args[1]);
    uint64_t idx = args[2];
    uint32_t gateId = a->circ_.inputGates[input];

    co_await ctx.enqueue(desTask, ts, uint64_t(gateId), args[0],
                         fanoutEnc(gateId, 0));
    uint64_t next = idx + 1;
    if (next < a->waveOff_[input + 1] - a->waveOff_[input]) {
        uint64_t nextTs =
            co_await ctx.read(&a->waveTimes_[a->waveOff_[input] + next]);
        co_await ctx.enqueue(waveTask, nextTs, swarm::SAMEHINT, args[0],
                             uint64_t(input), next);
    }
}

} // namespace

std::unique_ptr<App>
makeDesApp()
{
    return std::make_unique<DesApp>();
}

} // namespace ssim::apps
