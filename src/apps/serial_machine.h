/**
 * @file
 * A single-core, non-speculative timing model for the "tuned serial
 * implementation" baselines of Table I.
 *
 * Serial code runs natively but charges every shared-data access through
 * the same cache hierarchy model as the Swarm machine (1 tile, 1 core),
 * with no task management overheads and no speculation.
 */
#pragma once

#include <cstring>
#include <type_traits>

#include "base/stats.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/config.h"

namespace ssim {

class SerialMachine
{
  public:
    SerialMachine()
        : cfg_(SimConfig::withCores(1)), mesh_(cfg_),
          mem_(cfg_, mesh_, stats_)
    {
    }

    /** Timed load. */
    template <typename T>
    T
    read(const T* p)
    {
        static_assert(sizeof(T) <= 8);
        cycles_ += mem_.access(0, addrOf(p), false).latency;
        return *p;
    }

    /** Timed store. */
    template <typename T>
    void
    write(T* p, std::type_identity_t<T> v)
    {
        static_assert(sizeof(T) <= 8);
        cycles_ += mem_.access(0, addrOf(p), true).latency;
        *p = v;
    }

    /** Charge non-memory compute cycles. */
    void compute(uint64_t c) { cycles_ += c; }

    uint64_t cycles() const { return cycles_; }
    const SimStats& stats() const { return stats_; }

  private:
    SimConfig cfg_;
    Mesh mesh_;
    SimStats stats_;
    MemorySystem mem_;
    uint64_t cycles_ = 0;
};

} // namespace ssim
