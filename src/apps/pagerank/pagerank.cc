/**
 * @file
 * pagerank: push-based iterative PageRank over an R-MAT graph.
 *
 * Each iteration is two timestamp phases, mirroring kmeans' pattern:
 *   push(u)  reads u's rank, divides it over u's out-edges, and folds
 *            the shares into the targets' accumulators via ctx.reduce
 *            (hint = u's rank line);
 *   apply(v) reads v's accumulated in-flow BEFORE its own reduces,
 *            writes the damped new rank, clears the accumulator with a
 *            negative reduce, and folds |new - old| into the
 *            iteration's convergence cell (hint = v's accumulator
 *            line).
 * The accumulators and the per-iteration convergence cells are pure
 * adders — natural Reduction lines for the profile-guided classifier.
 *
 * Ranks are Q32 fixed point (int64), so every operation is exact
 * integer arithmetic: results are bit-identical across schedulers, core
 * counts, host threads, and backends, and the digest over the final
 * ranks plus the per-iteration convergence series is a golden.
 */
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/graph.h"
#include "apps/serial_machine.h"
#include "base/fixmath.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

/// Damping factor d = 0.85 in Q32.
constexpr int64_t kDampQ32 = 3650722202ll;
constexpr int64_t kOneQ32 = int64_t(1) << 32;

class PagerankApp : public App
{
  public:
    std::string name() const override { return "pagerank"; }
    uint32_t numTaskFunctions() const override { return 2; }
    const char* hintPattern() const override
    {
        return "Rank line, accumulator line";
    }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t n, deg;
        switch (p.preset) {
          case Preset::Tiny:
            n = 64;
            deg = 4;
            iters_ = 2;
            break;
          case Preset::Small:
            n = 512;
            deg = 8;
            iters_ = 4;
            break;
          default:
            n = 4096;
            deg = 16;
            iters_ = 10;
            break;
        }
        g_ = rmat(n, deg, rng);
        base_ = mulQ32(kOneQ32 - kDampQ32, kOneQ32 / n);

        // Host oracle: identical fixed-point algorithm, untimed.
        oracleRanks_.assign(g_.n, kOneQ32 / g_.n);
        oracleDeltas_.assign(iters_, 0);
        std::vector<int64_t> acc(g_.n, 0);
        for (uint32_t it = 0; it < iters_; it++) {
            std::fill(acc.begin(), acc.end(), 0);
            for (uint32_t u = 0; u < g_.n; u++) {
                uint32_t d = g_.degree(u);
                if (!d)
                    continue;
                int64_t share = oracleRanks_[u] / d;
                for (uint32_t v : g_.neigh(u))
                    acc[v] += share;
            }
            for (uint32_t v = 0; v < g_.n; v++) {
                int64_t nr = base_ + mulQ32(kDampQ32, acc[v]);
                int64_t diff = nr - oracleRanks_[v];
                oracleDeltas_[it] += diff < 0 ? -diff : diff;
                oracleRanks_[v] = nr;
            }
        }
        reset();
    }

    void
    reset() override
    {
        ranks_.assign(g_.n, kOneQ32 / g_.n);
        acc_.assign(g_.n, 0);
        deltas_.assign(iters_, 0);
    }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint32_t u = 0; u < g_.n; u++)
            m.enqueueInitial(push, 0, swarm::cacheLine(&ranks_[u]), this,
                             uint64_t(u), uint64_t(0));
        for (uint32_t v = 0; v < g_.n; v++)
            m.enqueueInitial(apply, 1, swarm::cacheLine(&acc_[v]), this,
                             uint64_t(v), uint64_t(0));
    }

    std::vector<ReductionRange>
    reductionRanges() const override
    {
        // In-flow accumulators and per-iteration convergence cells are
        // pure adders: push/apply fold in, apply reads acc before its
        // own reduces and clears via negative reduces.
        return {{addrOf(acc_.data()), acc_.size() * sizeof(int64_t)},
                {addrOf(deltas_.data()), deltas_.size() * sizeof(int64_t)}};
    }

    bool
    validate() const override
    {
        return ranks_ == oracleRanks_ && deltas_ == oracleDeltas_;
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: final ranks plus the convergence
        // series (sum of |rank delta| per iteration).
        return digestRange(deltas_, digestRange(ranks_));
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        reset();
        for (uint32_t it = 0; it < iters_; it++) {
            for (uint32_t u = 0; u < g_.n; u++) {
                uint32_t d = g_.degree(u);
                if (!d)
                    continue;
                int64_t share = sm.read(&ranks_[u]) / d;
                sm.compute(8);
                for (uint32_t v : g_.neigh(u)) {
                    int64_t a = sm.read(&acc_[v]);
                    sm.write(&acc_[v], a + share);
                }
            }
            for (uint32_t v = 0; v < g_.n; v++) {
                int64_t a = sm.read(&acc_[v]);
                int64_t nr = base_ + mulQ32(kDampQ32, a);
                int64_t old = sm.read(&ranks_[v]);
                sm.write(&ranks_[v], nr);
                sm.write(&acc_[v], int64_t(0));
                int64_t diff = nr - old;
                int64_t dd = sm.read(&deltas_[it]);
                sm.write(&deltas_[it], dd + (diff < 0 ? -diff : diff));
                sm.compute(4);
            }
        }
        ssim_assert(validate(), "serial pagerank is wrong");
        return sm.cycles();
    }

    Graph g_;
    uint32_t iters_ = 0;
    int64_t base_ = 0;
    std::vector<int64_t> ranks_, oracleRanks_;
    std::vector<int64_t> acc_;
    std::vector<int64_t> deltas_, oracleDeltas_;

  private:
    static swarm::TaskCoro push(swarm::TaskCtx&, swarm::Timestamp,
                                const uint64_t*);
    static swarm::TaskCoro apply(swarm::TaskCtx&, swarm::Timestamp,
                                 const uint64_t*);
};

// Phase 3i: divide u's rank over its out-edges.
swarm::TaskCoro
PagerankApp::push(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<PagerankApp>(args[0]);
    uint32_t u = uint32_t(args[1]);
    uint32_t iter = uint32_t(args[2]);

    uint32_t d = a->g_.degree(u);
    if (d) {
        int64_t rank = co_await ctx.read(&a->ranks_[u]);
        int64_t share = rank / d;
        co_await ctx.compute(8);
        // Pure commutative adds: classified, same-target pushes never
        // conflict on the accumulator line.
        for (uint32_t v : a->g_.neigh(u))
            co_await ctx.reduce(&a->acc_[v], share);
    }
    if (iter + 1 < a->iters_)
        co_await ctx.enqueue(push, ts + 3, swarm::SAMEHINT, args[0],
                             args[1], uint64_t(iter + 1));
}

// Phase 3i+1: new rank = (1-d)/n + d * in-flow; clear the accumulator.
swarm::TaskCoro
PagerankApp::apply(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                   const uint64_t* args)
{
    auto* a = swarm::argPtr<PagerankApp>(args[0]);
    uint32_t v = uint32_t(args[1]);
    uint32_t iter = uint32_t(args[2]);

    // The plain read of the accumulator comes BEFORE our own reduce to
    // it (a read after a buffered own-delta would demote the line), and
    // the clear is a negative reduce so the line never sees a plain
    // write.
    int64_t flow = co_await ctx.read(&a->acc_[v]);
    int64_t nr = a->base_ + mulQ32(kDampQ32, flow);
    int64_t old = co_await ctx.read(&a->ranks_[v]);
    co_await ctx.write(&a->ranks_[v], nr);
    co_await ctx.compute(4);
    if (flow)
        co_await ctx.reduce(&a->acc_[v], -flow);
    int64_t diff = nr - old;
    co_await ctx.reduce(&a->deltas_[iter], diff < 0 ? -diff : diff);
    if (iter + 1 < a->iters_)
        co_await ctx.enqueue(apply, ts + 3, swarm::SAMEHINT, args[0],
                             args[1], uint64_t(iter + 1));
}

} // namespace

std::unique_ptr<App>
makePagerankApp()
{
    return std::make_unique<PagerankApp>();
}

} // namespace ssim::apps
