#include "apps/nocsim/nocmodel.h"

namespace ssim::apps {

std::vector<std::vector<uint64_t>>
nocInjectionSchedule(uint32_t k, uint64_t horizon, double rate, Rng& rng)
{
    std::vector<std::vector<uint64_t>> sched(k * k);
    for (auto& s : sched)
        for (uint64_t t = 1; t < horizon; t++)
            if (rng.chance(rate))
                s.push_back(t);
    return sched;
}

} // namespace ssim::apps
