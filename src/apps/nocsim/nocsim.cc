/**
 * @file
 * nocsim: detailed network-on-chip simulation (GARNET-derived in the
 * paper). Each task simulates an event at a router: flit arrival, credit
 * return, injection, or a router pipeline cycle (routing + switch
 * allocation + traversal). Hint: router ID -- components within a router
 * communicate constantly, so the coarse router-granularity hint keeps
 * that traffic local (Sec. III-C). An ablation can switch to finer
 * per-port hints (bench/ablation_hint_granularity).
 */
#include <cstdio>
#include <memory>
#include <queue>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/nocsim/nocmodel.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

class NocsimApp : public App
{
  public:
    std::string name() const override { return "nocsim"; }
    uint32_t numTaskFunctions() const override { return 4; }
    const char* hintPattern() const override { return "Router ID"; }

    /** Ablation: hint at per-port instead of per-router granularity. */
    void usePortHints(bool v) { portHints_ = v; }

    void
    setup(const AppParams& p) override
    {
        // Ablation (bench/ablation_hint_granularity): per-port hints
        // split a router's components across tiles (Sec. III-C warns
        // against this; router-ID hints keep their traffic local).
        const char* e = std::getenv("SWARMSIM_NOC_PORT_HINTS");
        if (e && e[0] == '1')
            portHints_ = true;
        Rng rng(p.seed);
        switch (p.preset) {
          case Preset::Tiny:
            topo_.k = 4;
            horizon_ = 120;
            break;
          case Preset::Small:
            topo_.k = 8;
            horizon_ = 280;
            break;
          default:
            topo_.k = 16;
            horizon_ = 1200;
            break;
        }
        sched_ = nocInjectionSchedule(topo_.k, horizon_, 0.06, rng);
        schedOff_.assign(sched_.size() + 1, 0);
        for (size_t i = 0; i < sched_.size(); i++)
            schedOff_[i + 1] = schedOff_[i] + sched_[i].size();
        schedTimes_.reserve(schedOff_.back());
        for (auto& s : sched_)
            schedTimes_.insert(schedTimes_.end(), s.begin(), s.end());
        totalInjected_ = schedOff_.back();
        reset();
        hostSim(nullptr); // oracle totals
        oracleDelivered_ = totalDelivered();
        oracleLatSum_ = totalLatSum();
        reset();
    }

    void
    reset() override
    {
        routers_.assign(topo_.k * topo_.k, NocRouter{});
        for (auto& r : routers_) {
            r.credits = 0;
            for (uint32_t d = 0; d < 4; d++)
                r.credits = creditsAdd(r.credits, d, kBufDepth);
        }
    }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint32_t r = 0; r < routers_.size(); r++) {
            if (sched_[r].empty())
                continue;
            m.enqueueInitial(injectTask, 2 * sched_[r][0], hintOf(r, kLocal),
                             this, uint64_t(r), uint64_t(0));
        }
    }

    bool
    validate() const override
    {
        return totalDelivered() == totalInjected_ &&
               totalDelivered() == oracleDelivered_ &&
               totalLatSum() == oracleLatSum_;
    }

    uint64_t
    resultDigest() const override
    {
        // Exactly the validated state: the delivered-packet count and
        // latency sum (per-router state is not part of the oracle).
        return fnv1aU64(totalLatSum(), fnv1aU64(totalDelivered(),
                                                kFnvBasis));
    }

    std::vector<ReductionRange>
    reductionRanges() const override
    {
        // Each router's delivered/latSum pair sits alone on a line
        // (NocRouter groups them away from the plain-written words);
        // declare that whole line so the classifier's containment check
        // can mark it Reduction.
        std::vector<ReductionRange> out;
        out.reserve(routers_.size());
        for (const NocRouter& r : routers_)
            out.push_back({addrOf(&r.delivered), lineBytes});
        return out;
    }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        reset();
        hostSim(&sm);
        ssim_assert(totalDelivered() == oracleDelivered_ &&
                        totalLatSum() == oracleLatSum_,
                    "serial nocsim is wrong");
        return sm.cycles();
    }

    uint64_t
    totalDelivered() const
    {
        uint64_t s = 0;
        for (auto& r : routers_)
            s += r.delivered;
        return s;
    }
    uint64_t
    totalLatSum() const
    {
        uint64_t s = 0;
        for (auto& r : routers_)
            s += r.latSum;
        return s;
    }

    uint64_t
    hintOf(uint32_t router, uint32_t port) const
    {
        return portHints_ ? uint64_t(router) * kNumPorts + port
                          : uint64_t(router);
    }

    NocTopo topo_{8};
    uint64_t horizon_ = 0;
    std::vector<NocRouter> routers_;
    std::vector<std::vector<uint64_t>> sched_;
    std::vector<uint64_t> schedOff_, schedTimes_;
    uint64_t totalInjected_ = 0;
    uint64_t oracleDelivered_ = 0, oracleLatSum_ = 0;
    bool portHints_ = false;

  private:
    static swarm::TaskCoro injectTask(swarm::TaskCtx&, swarm::Timestamp,
                                      const uint64_t*);
    static swarm::TaskCoro arriveTask(swarm::TaskCtx&, swarm::Timestamp,
                                      const uint64_t*);
    static swarm::TaskCoro creditTask(swarm::TaskCtx&, swarm::Timestamp,
                                      const uint64_t*);
    static swarm::TaskCoro cycleTask(swarm::TaskCtx&, swarm::Timestamp,
                                     const uint64_t*);

    void hostSim(SerialMachine* sm);
};

// ---- Swarm tasks -------------------------------------------------------------
// All timestamps are phased: even = arrivals/credits/injections (disjoint
// or commutative state), odd = router cycles.

swarm::TaskCoro
NocsimApp::injectTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<NocsimApp>(args[0]);
    uint32_t r = uint32_t(args[1]);
    uint64_t idx = args[2];
    NocRouter& R = a->routers_[r];

    uint64_t m = co_await ctx.read(&R.meta[kLocal]);
    if (metaCount(m) >= kBufDepth) {
        // Local buffer full: source-throttle, retry next cycle.
        co_await ctx.enqueue(injectTask, ts + 2, swarm::SAMEHINT, args[0],
                             args[1], idx);
        co_return;
    }
    uint64_t flit = flitPack(a->topo_.tornadoDst(r), ts >> 1, r);
    uint32_t slot = (metaHead(m) + metaCount(m)) % kBufDepth;
    co_await ctx.write(&R.buf[kLocal][slot], flit);
    co_await ctx.write(&R.meta[kLocal],
                       metaPack(metaHead(m), metaCount(m) + 1));

    // Wake the router pipeline for the next odd phase.
    uint64_t nw = co_await ctx.read(&R.nextWake);
    if (nw < ts + 1) {
        co_await ctx.write(&R.nextWake, ts + 1);
        co_await ctx.enqueue(cycleTask, ts + 1, a->hintOf(r, 0), args[0],
                             args[1]);
    }

    uint64_t count = a->schedOff_[r + 1] - a->schedOff_[r];
    if (idx + 1 < count) {
        uint64_t nt =
            co_await ctx.read(&a->schedTimes_[a->schedOff_[r] + idx + 1]);
        co_await ctx.enqueue(injectTask, 2 * nt, swarm::SAMEHINT, args[0],
                             args[1], idx + 1);
    }
}

swarm::TaskCoro
NocsimApp::arriveTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<NocsimApp>(args[0]);
    uint32_t r = uint32_t(args[1] & 0xffffffff);
    uint32_t port = uint32_t(args[1] >> 32);
    uint64_t flit = args[2];
    NocRouter& R = a->routers_[r];

    uint64_t m = co_await ctx.read(&R.meta[port]);
    // Credits guarantee space.
    uint32_t slot = (metaHead(m) + metaCount(m)) % kBufDepth;
    co_await ctx.write(&R.buf[port][slot], flit);
    co_await ctx.write(&R.meta[port],
                       metaPack(metaHead(m), metaCount(m) + 1));

    uint64_t nw = co_await ctx.read(&R.nextWake);
    if (nw < ts + 1) {
        co_await ctx.write(&R.nextWake, ts + 1);
        co_await ctx.enqueue(cycleTask, ts + 1, a->hintOf(r, 0), args[0],
                             uint64_t(r));
    }
}

swarm::TaskCoro
NocsimApp::creditTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<NocsimApp>(args[0]);
    uint32_t r = uint32_t(args[1]);
    uint32_t dir = uint32_t(args[2]);
    NocRouter& R = a->routers_[r];

    uint64_t c = co_await ctx.read(&R.credits);
    co_await ctx.write(&R.credits, creditsAdd(c, dir, 1));

    uint64_t nw = co_await ctx.read(&R.nextWake);
    if (nw < ts + 1) {
        co_await ctx.write(&R.nextWake, ts + 1);
        co_await ctx.enqueue(cycleTask, ts + 1, a->hintOf(r, 0), args[0],
                             uint64_t(r));
    }
}

// One router pipeline cycle: route, arbitrate, traverse (RC/SA/ST).
swarm::TaskCoro
NocsimApp::cycleTask(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                     const uint64_t* args)
{
    auto* a = swarm::argPtr<NocsimApp>(args[0]);
    uint32_t r = uint32_t(args[1]);
    NocRouter& R = a->routers_[r];
    const NocTopo& topo = a->topo_;

    uint64_t rr = co_await ctx.read(&R.rr);
    uint64_t cred = co_await ctx.read(&R.credits);
    bool credChanged = false;
    uint32_t outUsed = 0;
    bool backlog = false;

    for (uint32_t i = 0; i < kNumPorts; i++) {
        uint32_t p = uint32_t((rr + i) % kNumPorts);
        uint64_t m = co_await ctx.read(&R.meta[p]);
        uint32_t cnt = metaCount(m);
        if (cnt == 0)
            continue;
        uint32_t head = metaHead(m);
        uint64_t flit = co_await ctx.read(&R.buf[p][head]);
        uint32_t dir = topo.route(r, flitDst(flit));
        co_await ctx.compute(2); // route compute + switch allocation
        if (dir == kLocal) {
            // Pure commutative adds, never read during the run: on a
            // classified run these buffer per task and fold at commit
            // (no conflict traffic on the stats line).
            co_await ctx.reduce(&R.delivered, 1);
            co_await ctx.reduce(&R.latSum,
                                int64_t((ts >> 1) - flitInject(flit)));
            co_await ctx.write(&R.meta[p],
                               metaPack((head + 1) % kBufDepth, cnt - 1));
            cnt--;
            if (p != kLocal) {
                // The freed buffer slot returns a credit upstream.
                uint32_t up = topo.neighbor(r, p);
                co_await ctx.enqueue(creditTask, ts + 1,
                                     a->hintOf(up, NocTopo::opposite(p)),
                                     args[0], uint64_t(up),
                                     uint64_t(NocTopo::opposite(p)));
            }
        } else if (!(outUsed & (1u << dir)) && creditsOf(cred, dir) > 0) {
            cred = creditsAdd(cred, dir, -1);
            credChanged = true;
            outUsed |= 1u << dir;
            co_await ctx.write(&R.meta[p],
                               metaPack((head + 1) % kBufDepth, cnt - 1));
            cnt--;
            uint32_t nb = topo.neighbor(r, dir);
            uint32_t entry = NocTopo::opposite(dir);
            co_await ctx.enqueue(arriveTask, ts + 1, a->hintOf(nb, entry),
                                 args[0],
                                 uint64_t(nb) | (uint64_t(entry) << 32),
                                 flit);
            if (p != kLocal) {
                uint32_t up = topo.neighbor(r, p);
                co_await ctx.enqueue(creditTask, ts + 1,
                                     a->hintOf(up, NocTopo::opposite(p)),
                                     args[0], uint64_t(up),
                                     uint64_t(NocTopo::opposite(p)));
            }
        } else {
            backlog = true;
        }
        if (cnt > 0)
            backlog = true;
    }

    if (credChanged)
        co_await ctx.write(&R.credits, cred);
    co_await ctx.write(&R.rr, (rr + 1) % kNumPorts);

    if (backlog) {
        uint64_t nw = co_await ctx.read(&R.nextWake);
        if (nw < ts + 2) {
            co_await ctx.write(&R.nextWake, ts + 2);
            co_await ctx.enqueue(cycleTask, ts + 2, swarm::SAMEHINT,
                                 args[0], args[1]);
        }
    }
}

// ---- Host reference simulation (oracle + tuned serial baseline) ----------------

void
NocsimApp::hostSim(SerialMachine* sm)
{
    auto rd = [&](uint64_t* p) { return sm ? sm->read(p) : *p; };
    auto wr = [&](uint64_t* p, uint64_t v) {
        if (sm)
            sm->write(p, v);
        else
            *p = v;
    };

    enum Kind : uint32_t { Inject, Arrive, Credit, Cycle };
    struct Ev
    {
        uint64_t ts;
        uint64_t seq;
        uint32_t kind;
        uint64_t a, b;
    };
    auto later = [](const Ev& x, const Ev& y) {
        return std::tie(x.ts, x.seq) > std::tie(y.ts, y.seq);
    };
    std::priority_queue<Ev, std::vector<Ev>, decltype(later)> pq(later);
    uint64_t seq = 0;
    auto push = [&](uint64_t ts, uint32_t kind, uint64_t a, uint64_t b) {
        pq.push(Ev{ts, seq++, kind, a, b});
        if (sm)
            sm->compute(6);
    };
    for (uint32_t r = 0; r < routers_.size(); r++)
        if (!sched_[r].empty())
            push(2 * sched_[r][0], Inject, r, 0);

    auto wake = [&](NocRouter& R, uint64_t ts, uint32_t r) {
        if (rd(&R.nextWake) < ts) {
            wr(&R.nextWake, ts);
            push(ts, Cycle, r, 0);
        }
    };

    while (!pq.empty()) {
        Ev ev = pq.top();
        pq.pop();
        if (sm)
            sm->compute(6);
        switch (ev.kind) {
          case Inject: {
            uint32_t r = uint32_t(ev.a);
            NocRouter& R = routers_[r];
            uint64_t m = rd(&R.meta[kLocal]);
            if (metaCount(m) >= kBufDepth) {
                push(ev.ts + 2, Inject, ev.a, ev.b);
                break;
            }
            uint64_t flit = flitPack(topo_.tornadoDst(r), ev.ts >> 1, r);
            wr(&R.buf[kLocal][(metaHead(m) + metaCount(m)) % kBufDepth],
               flit);
            wr(&R.meta[kLocal], metaPack(metaHead(m), metaCount(m) + 1));
            wake(R, ev.ts + 1, r);
            uint64_t count = schedOff_[r + 1] - schedOff_[r];
            if (ev.b + 1 < count)
                push(2 * schedTimes_[schedOff_[r] + ev.b + 1], Inject,
                     ev.a, ev.b + 1);
            break;
          }
          case Arrive: {
            uint32_t r = uint32_t(ev.a & 0xffffffff);
            uint32_t port = uint32_t(ev.a >> 32);
            NocRouter& R = routers_[r];
            uint64_t m = rd(&R.meta[port]);
            wr(&R.buf[port][(metaHead(m) + metaCount(m)) % kBufDepth],
               ev.b);
            wr(&R.meta[port], metaPack(metaHead(m), metaCount(m) + 1));
            wake(R, ev.ts + 1, r);
            break;
          }
          case Credit: {
            NocRouter& R = routers_[uint32_t(ev.a)];
            wr(&R.credits, creditsAdd(rd(&R.credits), uint32_t(ev.b), 1));
            wake(R, ev.ts + 1, uint32_t(ev.a));
            break;
          }
          case Cycle: {
            uint32_t r = uint32_t(ev.a);
            NocRouter& R = routers_[r];
            uint64_t rr = rd(&R.rr);
            uint64_t cred = rd(&R.credits);
            bool credChanged = false;
            uint32_t outUsed = 0;
            bool backlog = false;
            for (uint32_t i = 0; i < kNumPorts; i++) {
                uint32_t p = uint32_t((rr + i) % kNumPorts);
                uint64_t m = rd(&R.meta[p]);
                uint32_t cnt = metaCount(m);
                if (cnt == 0)
                    continue;
                uint32_t head = metaHead(m);
                uint64_t flit = rd(&R.buf[p][head]);
                uint32_t dir = topo_.route(r, flitDst(flit));
                if (sm)
                    sm->compute(2);
                if (dir == kLocal) {
                    wr(&R.delivered, rd(&R.delivered) + 1);
                    wr(&R.latSum, rd(&R.latSum) +
                                      ((ev.ts >> 1) - flitInject(flit)));
                    wr(&R.meta[p],
                       metaPack((head + 1) % kBufDepth, cnt - 1));
                    cnt--;
                    if (p != kLocal)
                        push(ev.ts + 1, Credit, topo_.neighbor(r, p),
                             NocTopo::opposite(p));
                } else if (!(outUsed & (1u << dir)) &&
                           creditsOf(cred, dir) > 0) {
                    cred = creditsAdd(cred, dir, -1);
                    credChanged = true;
                    outUsed |= 1u << dir;
                    wr(&R.meta[p],
                       metaPack((head + 1) % kBufDepth, cnt - 1));
                    cnt--;
                    uint32_t nb = topo_.neighbor(r, dir);
                    uint32_t entry = NocTopo::opposite(dir);
                    push(ev.ts + 1, Arrive,
                         uint64_t(nb) | (uint64_t(entry) << 32), flit);
                    if (p != kLocal)
                        push(ev.ts + 1, Credit, topo_.neighbor(r, p),
                             NocTopo::opposite(p));
                } else {
                    backlog = true;
                }
                if (cnt > 0)
                    backlog = true;
            }
            if (credChanged)
                wr(&R.credits, cred);
            wr(&R.rr, (rr + 1) % kNumPorts);
            if (backlog)
                wake(R, ev.ts + 2, r);
            break;
          }
        }
    }
}

} // namespace

std::unique_ptr<App>
makeNocsimApp()
{
    return std::make_unique<NocsimApp>();
}

} // namespace ssim::apps
