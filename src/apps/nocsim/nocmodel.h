/**
 * @file
 * Flit-level mesh NoC model for the nocsim benchmark (GARNET-derived in
 * the paper; built from scratch here, DESIGN.md §1).
 *
 * K x K mesh of credit-based wormhole routers, X-Y routing, 5 ports
 * (N/E/S/W + local), 8-flit input buffers, single-flit packets, tornado
 * traffic. Simulated time is phased: even timestamps carry flit
 * arrivals / credit returns / injections (which touch disjoint router
 * state and commute), odd timestamps run router cycles (route + switch
 * allocation + traversal). This makes the model's final state independent
 * of same-timestamp commit order, which the validation tests rely on.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace ssim::apps {

/** Port / direction indices. */
enum NocDir : uint32_t
{
    kNorth = 0,
    kEast,
    kSouth,
    kWest,
    kLocal,
    kNumPorts
};

constexpr uint32_t kBufDepth = 8;

/** Per-router state; every field is accessed through the timing model. */
struct alignas(64) NocRouter
{
    uint64_t buf[kNumPorts][kBufDepth]; ///< flit rings
    uint64_t meta[kNumPorts];           ///< head(8) | count(8)
    uint64_t credits;                   ///< byte lane per output dir
    uint64_t nextWake;                  ///< wake-dedup for router cycles
    uint64_t rr;                        ///< round-robin arbitration start
    /// Delivery statistics: pure commutative accumulators (updated only
    /// via ctx.reduce during the run, summed host-side afterwards).
    /// Grouped on their own cache line — away from the plain-written
    /// meta/credits/nextWake/rr words — so the access classifier can
    /// mark it a Reduction line (NocsimApp::reductionRanges).
    alignas(64) uint64_t delivered;
    uint64_t latSum;
};

// Flit encoding: dst(16) | injectCycle(32) | src(16).
inline uint64_t
flitPack(uint32_t dst, uint64_t inject_cycle, uint32_t src)
{
    return (uint64_t(dst) << 48) | ((inject_cycle & 0xffffffffull) << 16) |
           src;
}
inline uint32_t flitDst(uint64_t f) { return uint32_t(f >> 48); }
inline uint64_t flitInject(uint64_t f) { return (f >> 16) & 0xffffffffull; }

inline uint64_t
metaPack(uint32_t head, uint32_t count)
{
    return head | (uint64_t(count) << 8);
}
inline uint32_t metaHead(uint64_t m) { return uint32_t(m & 0xff); }
inline uint32_t metaCount(uint64_t m) { return uint32_t((m >> 8) & 0xff); }

inline uint32_t
creditsOf(uint64_t word, uint32_t dir)
{
    return uint32_t((word >> (8 * dir)) & 0xff);
}
inline uint64_t
creditsAdd(uint64_t word, uint32_t dir, int delta)
{
    return word + (uint64_t(int64_t(delta)) << (8 * dir));
}

/** Static mesh topology/routing helpers. */
struct NocTopo
{
    uint32_t k;

    uint32_t xOf(uint32_t r) const { return r % k; }
    uint32_t yOf(uint32_t r) const { return r / k; }

    /** X-Y route: next output direction toward dst, or kLocal. */
    uint32_t
    route(uint32_t r, uint32_t dst) const
    {
        if (xOf(dst) > xOf(r))
            return kEast;
        if (xOf(dst) < xOf(r))
            return kWest;
        if (yOf(dst) > yOf(r))
            return kSouth;
        if (yOf(dst) < yOf(r))
            return kNorth;
        return kLocal;
    }

    uint32_t
    neighbor(uint32_t r, uint32_t dir) const
    {
        switch (dir) {
          case kNorth: return r - k;
          case kSouth: return r + k;
          case kEast: return r + 1;
          case kWest: return r - 1;
          default: return r;
        }
    }

    static uint32_t
    opposite(uint32_t dir)
    {
        switch (dir) {
          case kNorth: return kSouth;
          case kSouth: return kNorth;
          case kEast: return kWest;
          case kWest: return kEast;
          default: return kLocal;
        }
    }

    /** Tornado destination in the X dimension. */
    uint32_t
    tornadoDst(uint32_t r) const
    {
        uint32_t shift = (k + 1) / 2 - 1;
        return yOf(r) * k + (xOf(r) + std::max(1u, shift)) % k;
    }
};

/** Injection schedule: per router, sorted cycles at which a flit enters. */
std::vector<std::vector<uint64_t>> nocInjectionSchedule(uint32_t k,
                                                        uint64_t horizon,
                                                        double rate,
                                                        Rng& rng);

} // namespace ssim::apps
