/**
 * @file
 * The benchmark application interface.
 *
 * Each of the paper's nine applications (Table I) implements App:
 * workload construction, initial task enqueue, post-run validation
 * against a host-native oracle, and a tuned serial implementation run
 * through the same memory timing model (for Table I's "perf vs serial").
 *
 * An App is set up once and can be run many times: the harness calls
 * reset() before each run to restore mutable state.
 */
#pragma once

#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "base/hash.h"
#include "swarm/machine.h"

namespace ssim {

class SerialMachine;

namespace apps {

/** Input-size presets: tiny for unit tests, small for benches,
 *  full (SWARMSIM_FULL=1) for longer runs closer to the paper's scale. */
enum class Preset : uint8_t { Tiny = 0, Small, Full };

Preset presetFromEnv(); ///< Small unless SWARMSIM_FULL=1

struct AppParams
{
    Preset preset = Preset::Small;
    uint64_t seed = 42;
};

class App
{
  public:
    virtual ~App() = default;

    /** Short name as used in the paper (e.g. "sssp"). */
    virtual std::string name() const = 0;

    /** Build the workload (host memory, deterministic from params). */
    virtual void setup(const AppParams& p) = 0;

    /** Restore mutable state so the same workload can run again. */
    virtual void reset() = 0;

    /** Enqueue the initial tasks (the paper's main() loop). */
    virtual void enqueueInitial(Machine& m) = 0;

    /** Check the run's output against a host-native oracle. */
    virtual bool validate() const = 0;

    /**
     * Digest of exactly the output state validate() checks. Because
     * every app validates against a deterministic oracle, the digest
     * is a pure function of (setup params, workload) — independent of
     * scheduler, core count, host threads, and engine backend — which
     * is what lets tests/test_backends.cc assert that the functional
     * backend computes the same results as the timing backend. Chain
     * fields with digestRange/fnv1aU64 in declaration order.
     */
    virtual uint64_t resultDigest() const = 0;

    /** Tuned serial implementation on the serial timing model; returns
     *  its cycle count. Calls reset() internally. */
    virtual uint64_t serialCycles(SerialMachine& sm) = 0;

    /** Number of task functions (Table I column). */
    virtual uint32_t numTaskFunctions() const = 0;

    /** Hint pattern description (Table I column). */
    virtual const char* hintPattern() const = 0;

    /** True if a fine-grain restructuring exists (Sec. V). */
    virtual bool hasFineGrain() const { return false; }

    /**
     * Open-system serving support (harness/serving.h). A servable app
     * partitions its workload into `requests` independent units; the
     * serving driver injects request r mid-run (Machine::injectRoot) at
     * its seeded arrival cycle instead of enqueueing everything up
     * front. Request r owns the timestamp range
     * [(r+1)*tsSpan, (r+2)*tsSpan): every task the request creates must
     * carry a timestamp in that range, which is how the driver's commit
     * tap attributes completions (and thus latencies) to requests.
     * Injecting ALL requests must leave exactly the state a normal
     * closed-loop run produces, so validate()/resultDigest() apply
     * unchanged. requests == 0 (the default) means "not servable".
     */
    struct ServingProfile
    {
        uint64_t requests = 0; ///< injectable requests (preset-sized)
        uint64_t tsSpan = 0;   ///< timestamps owned per request
    };
    virtual ServingProfile servingProfile() const { return {}; }

    /** Inject request @p req's root task(s) mid-run. Fatal by default. */
    virtual void injectRequest(Machine& m, uint64_t req);

    /**
     * Address ranges whose 64-bit words are pure commutative-addition
     * accumulators (updated only via ctx.reduce, values read only after
     * the parallel region or through reads that tolerate a
     * demotion-triggering interleave). The profile-guided classifier
     * (harness/classifier.h buildMap) only marks a line Reduction if it
     * falls entirely inside one of these ranges AND the profile saw no
     * plain writes to it — an app declaration plus profile evidence,
     * never either alone. Default: none.
     */
    virtual std::vector<ReductionRange> reductionRanges() const
    {
        return {};
    }
};

/** Chain a vector of trivially-copyable values into a result digest. */
template <typename T>
inline uint64_t
digestRange(const std::vector<T>& v, uint64_t h = kFnvBasis)
{
    static_assert(std::is_trivially_copyable_v<T>);
    return v.empty() ? h : fnv1a(v.data(), v.size() * sizeof(T), h);
}

/**
 * Create an app by name: bfs, sssp, astar, color, des, nocsim, silo,
 * genome, kmeans, kvstore, pagerank. @p fine_grain selects the Sec. V
 * restructuring where available (fatal otherwise).
 */
std::unique_ptr<App> makeApp(const std::string& name,
                             bool fine_grain = false);

/** The registered benchmark names: the paper's nine (Table I order)
 *  plus the two serving-era workloads (kvstore, pagerank). */
const std::vector<std::string>& appNames();

/** Apps with CG and FG versions (Sec. V): bfs, sssp, astar, color. */
const std::vector<std::string>& fineGrainAppNames();

} // namespace apps
} // namespace ssim
