/**
 * @file
 * color: graph coloring with the largest-degree-first heuristic
 * [Welsh-Powell; Hasenplaugh et al.]. Tasks are ordered by LDF rank, so
 * the speculative run reproduces exactly the serial LDF coloring.
 *
 * Coarse-grain: one task per vertex reads all neighbors' colors and
 * writes its own. Fine-grain (Sec. V): four task types, each reading or
 * writing at most one vertex's state:
 *   spawn   -> enqueues per-neighbor visit tasks and the assign task
 *   visit   -> reads one neighbor's color
 *   update  -> sets one bit in the vertex's forbidden-color mask
 *   assign  -> picks the smallest free color and writes it
 */
#include <memory>

#include "apps/app.h"
#include "apps/factories.h"
#include "apps/graph.h"
#include "apps/serial_machine.h"
#include "base/logging.h"

namespace ssim::apps {

namespace {

constexpr uint64_t kUncolored = ~uint64_t(0);

class ColorApp : public App
{
  public:
    explicit ColorApp(bool fg) : fg_(fg) {}

    std::string name() const override { return "color"; }
    uint32_t numTaskFunctions() const override { return fg_ ? 4 : 1; }
    const char* hintPattern() const override { return "Cache line of vertex"; }
    bool hasFineGrain() const override { return true; }

    void
    setup(const AppParams& p) override
    {
        Rng rng(p.seed);
        uint32_t n;
        switch (p.preset) {
          case Preset::Tiny: n = 400; break;
          case Preset::Small: n = 6000; break;
          default: n = 60000; break;
        }
        // com-youtube is a power-law social graph; R-MAT matches.
        g_ = rmat(n, 8, rng);
        rank_ = ldfRank(g_);
        oracle_ = greedyColorOracle(g_, rank_);
        // Per-vertex forbidden-color masks for the FG version.
        maskOff_.assign(g_.n + 1, 0);
        for (uint32_t v = 0; v < g_.n; v++)
            maskOff_[v + 1] = maskOff_[v] + (g_.degree(v) + 2 + 63) / 64;
        reset();
    }

    void
    reset() override
    {
        color.assign(g_.n, kUncolored);
        mask.assign(maskOff_[g_.n], 0);
    }

    void
    enqueueInitial(Machine& m) override
    {
        for (uint32_t v = 0; v < g_.n; v++) {
            if (fg_) {
                m.enqueueInitial(spawnFG, uint64_t(rank_[v]) * 4,
                                 swarm::cacheLine(&color[v]), this,
                                 uint64_t(v));
            } else {
                m.enqueueInitial(colorTaskCG, rank_[v],
                                 swarm::cacheLine(&color[v]), this,
                                 uint64_t(v));
            }
        }
    }

    bool
    validate() const override
    {
        std::vector<uint32_t> c32(g_.n);
        for (uint32_t v = 0; v < g_.n; v++) {
            if (color[v] == kUncolored)
                return false;
            c32[v] = uint32_t(color[v]);
        }
        // Must reproduce the LDF serial coloring exactly (ordered
        // speculation), which in particular is proper.
        return c32 == oracle_ && isProperColoring(g_, c32);
    }

    uint64_t resultDigest() const override { return digestRange(color); }

    uint64_t
    serialCycles(SerialMachine& sm) override
    {
        // Tuned serial baseline: greedy LDF with a local scratch bitmap.
        reset();
        std::vector<uint32_t> order(g_.n);
        for (uint32_t v = 0; v < g_.n; v++)
            order[rank_[v]] = v;
        std::vector<uint64_t> used;
        for (uint32_t v : order) {
            sm.read(&order[rank_[v]]);
            used.assign((g_.degree(v) + 2 + 63) / 64, 0);
            uint64_t beg = sm.read(&g_.offsets[v]);
            uint64_t end = sm.read(&g_.offsets[v + 1]);
            for (uint64_t i = beg; i < end; i++) {
                uint32_t u = sm.read(&g_.neighbors[i]);
                uint64_t c = sm.read(&color[u]);
                sm.compute(1);
                if (c != kUncolored && c < used.size() * 64)
                    used[c / 64] |= 1ull << (c % 64);
            }
            uint64_t c = 0;
            while (used[c / 64] & (1ull << (c % 64))) {
                c++;
                sm.compute(1);
            }
            sm.write(&color[v], c);
        }
        ssim_assert(validate(), "serial color is wrong");
        return sm.cycles();
    }

    Graph g_;
    std::vector<uint32_t> rank_;
    std::vector<uint64_t> color;
    std::vector<uint64_t> mask;     ///< FG forbidden-color bit words
    std::vector<uint64_t> maskOff_; ///< per-vertex offset into mask
    std::vector<uint32_t> oracle_;
    bool fg_;

  private:
    static swarm::TaskCoro colorTaskCG(swarm::TaskCtx&, swarm::Timestamp,
                                       const uint64_t*);
    static swarm::TaskCoro spawnFG(swarm::TaskCtx&, swarm::Timestamp,
                                   const uint64_t*);
    static swarm::TaskCoro visitFG(swarm::TaskCtx&, swarm::Timestamp,
                                   const uint64_t*);
    static swarm::TaskCoro updateFG(swarm::TaskCtx&, swarm::Timestamp,
                                    const uint64_t*);
    static swarm::TaskCoro assignFG(swarm::TaskCtx&, swarm::Timestamp,
                                    const uint64_t*);
};

swarm::TaskCoro
ColorApp::colorTaskCG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                      const uint64_t* args)
{
    auto* a = swarm::argPtr<ColorApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
    uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
    // Scratch bitmap lives in registers/stack: not shared state.
    std::vector<uint64_t> used((end - beg + 2 + 63) / 64, 0);
    for (uint64_t i = beg; i < end; i++) {
        uint32_t u = co_await ctx.read(&a->g_.neighbors[i]);
        uint64_t c = co_await ctx.read(&a->color[u]);
        co_await ctx.compute(1);
        if (c != kUncolored && c < used.size() * 64)
            used[c / 64] |= 1ull << (c % 64);
    }
    uint64_t c = 0;
    while (used[c / 64] & (1ull << (c % 64)))
        c++;
    co_await ctx.compute(uint32_t(c / 8 + 1));
    co_await ctx.write(&a->color[v], c);
}

swarm::TaskCoro
ColorApp::spawnFG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<ColorApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    uint64_t beg = co_await ctx.read(&a->g_.offsets[v]);
    uint64_t end = co_await ctx.read(&a->g_.offsets[v + 1]);
    for (uint64_t i = beg; i < end; i++) {
        uint32_t u = co_await ctx.read(&a->g_.neighbors[i]);
        co_await ctx.enqueue(visitFG, ts + 1,
                             swarm::cacheLine(&a->color[u]), args[0],
                             uint64_t(u), uint64_t(v));
    }
    co_await ctx.enqueue(assignFG, ts + 3, swarm::cacheLine(&a->color[v]),
                         args[0], uint64_t(v));
}

swarm::TaskCoro
ColorApp::visitFG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                  const uint64_t* args)
{
    auto* a = swarm::argPtr<ColorApp>(args[0]);
    uint32_t u = uint32_t(args[1]);
    uint64_t v = args[2];

    uint64_t c = co_await ctx.read(&a->color[u]);
    if (c != kUncolored) {
        uint64_t word = a->maskOff_[v] + c / 64;
        co_await ctx.enqueue(updateFG, ts + 1,
                             swarm::cacheLine(&a->mask[word]), args[0], v,
                             c);
    }
}

swarm::TaskCoro
ColorApp::updateFG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                   const uint64_t* args)
{
    auto* a = swarm::argPtr<ColorApp>(args[0]);
    uint64_t v = args[1];
    uint64_t c = args[2];

    uint64_t maxBits = (a->maskOff_[v + 1] - a->maskOff_[v]) * 64;
    if (c >= maxBits)
        co_return; // can't influence the smallest-free search
    uint64_t* word = &a->mask[a->maskOff_[v] + c / 64];
    uint64_t w = co_await ctx.read(word);
    co_await ctx.write(word, w | (1ull << (c % 64)));
}

swarm::TaskCoro
ColorApp::assignFG(swarm::TaskCtx& ctx, swarm::Timestamp ts,
                   const uint64_t* args)
{
    auto* a = swarm::argPtr<ColorApp>(args[0]);
    uint32_t v = uint32_t(args[1]);

    uint64_t c = 0;
    for (uint64_t wi = a->maskOff_[v]; wi < a->maskOff_[v + 1]; wi++) {
        uint64_t w = co_await ctx.read(&a->mask[wi]);
        if (w != ~uint64_t(0)) {
            uint64_t bit = 0;
            while (w & (1ull << bit))
                bit++;
            c += bit;
            co_await ctx.compute(uint32_t(bit / 8 + 1));
            break;
        }
        c += 64;
    }
    co_await ctx.write(&a->color[v], c);
}

} // namespace

std::unique_ptr<App>
makeColorApp(bool fine_grain)
{
    return std::make_unique<ColorApp>(fine_grain);
}

} // namespace ssim::apps
