/**
 * @file
 * Graph substrate for the four graph-analytics benchmarks.
 *
 * CSR graphs plus deterministic generators standing in for the paper's
 * inputs (DESIGN.md §1):
 *  - gridRoad: planar weighted grids with coordinates, the structural
 *    stand-in for the DIMACS road networks and hugetric meshes.
 *  - rmat: power-law (R-MAT) graphs, the stand-in for com-youtube.
 *
 * Host-native oracles (BFS, Dijkstra, A*, greedy LDF coloring) validate
 * the speculative runs.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/rng.h"

namespace ssim::apps {

struct Graph
{
    uint32_t n = 0;                  ///< vertices
    std::vector<uint64_t> offsets;   ///< n+1 CSR offsets
    std::vector<uint32_t> neighbors; ///< edge targets
    std::vector<uint32_t> weights;   ///< parallel edge weights
    std::vector<int32_t> xs, ys;     ///< vertex coordinates (if spatial)

    uint64_t numEdges() const { return neighbors.size(); }
    uint32_t
    degree(uint32_t v) const
    {
        return uint32_t(offsets[v + 1] - offsets[v]);
    }
    std::span<const uint32_t>
    neigh(uint32_t v) const
    {
        return {neighbors.data() + offsets[v], degree(v)};
    }
};

/**
 * Planar road-network-like graph: a w x h grid with 4-neighbor links,
 * a fraction of diagonal shortcuts, and distance-correlated integer
 * weights (scaled by kAstarScale so Euclidean heuristics are admissible
 * and consistent).
 */
Graph gridRoad(uint32_t w, uint32_t h, Rng& rng);

/** Fixed-point scale for A* coordinates/heuristics. */
constexpr int32_t kAstarScale = 16;

/** Power-law R-MAT graph with ~avg_deg edges/vertex, undirected. */
Graph rmat(uint32_t n, uint32_t avg_deg, Rng& rng);

// ---- Host-native oracles -----------------------------------------------------

constexpr uint64_t kUnreached = ~uint64_t(0);

/** BFS levels from src (kUnreached if not reachable). */
std::vector<uint64_t> bfsOracle(const Graph& g, uint32_t src);

/** Dijkstra distances from src. */
std::vector<uint64_t> dijkstraOracle(const Graph& g, uint32_t src);

/** Consistent A* heuristic: floor of Euclidean distance to dst. */
uint64_t astarHeuristic(const Graph& g, uint32_t v, uint32_t dst);

/** Largest-degree-first rank: position of each vertex in LDF order. */
std::vector<uint32_t> ldfRank(const Graph& g);

/** Greedy coloring in a given rank order (the LDF oracle). */
std::vector<uint32_t> greedyColorOracle(const Graph& g,
                                        const std::vector<uint32_t>& rank);

/** True iff no edge joins two same-colored vertices. */
bool isProperColoring(const Graph& g, const std::vector<uint32_t>& color);

} // namespace ssim::apps
