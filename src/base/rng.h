/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in the simulator (Random scheduler, workload
 * generators, traffic injectors) draws from a seeded Rng so that runs are
 * exactly reproducible.
 */
#pragma once

#include <cstdint>

#include "base/hash.h"

namespace ssim {

/** xoroshiro128** with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed)
    {
        uint64_t sm = seed;
        s0_ = splitmix64(sm);
        s1_ = splitmix64(sm);
    }

    uint64_t
    next()
    {
        uint64_t so = s0_, s1 = s1_;
        uint64_t result = rotl(so * 5, 7) * 9;
        s1 ^= so;
        s0_ = rotl(so, 24) ^ s1 ^ (s1 << 16);
        s1_ = rotl(s1, 37);
        return result;
    }

    /** Uniform integer in [0, bound). */
    uint64_t
    range(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s0_, s1_;
};

} // namespace ssim
