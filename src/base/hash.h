/**
 * @file
 * Hash functions used throughout the simulator.
 *
 * The Swarm hardware uses H3 universal hash functions [Carter & Wegman,
 * STOC'77] for its Bloom filters and for the hint-to-tile / hint-to-bucket
 * maps (paper Sec. III-B, Table II). H3 computes each output bit as the
 * parity of an AND between the input and a per-bit random mask.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace ssim {

/** SplitMix64: used to derive deterministic mask/seed material. */
inline uint64_t
splitmix64(uint64_t& state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// ---- FNV-1a (chainable): result digests, content hashing -------------------

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ull;

/** FNV-1a over a byte range; chain by passing the previous digest. */
inline uint64_t
fnv1a(const void* data, size_t len, uint64_t h = kFnvBasis)
{
    auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; i++) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Chain one 64-bit value into an FNV-1a digest. */
inline uint64_t
fnv1aU64(uint64_t v, uint64_t h)
{
    return fnv1a(&v, sizeof(v), h);
}

/** A strong 64->64 bit mixer (finalizer of MurmurHash3). */
inline uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/**
 * An H3 universal hash from 64-bit keys to @p outBits output bits.
 * Each output bit i is parity(key & mask[i]).
 */
class H3Hash
{
  public:
    /** Build an H3 function with random masks derived from @p seed. */
    H3Hash(uint32_t out_bits, uint64_t seed);

    /** Hash a 64-bit key down to outBits bits. */
    uint64_t
    hash(uint64_t key) const
    {
        uint64_t r = 0;
        for (uint32_t i = 0; i < outBits_; i++)
            r |= uint64_t(std::popcount(key & masks_[i]) & 1) << i;
        return r;
    }

    uint32_t outBits() const { return outBits_; }

  private:
    uint32_t outBits_;
    std::vector<uint64_t> masks_;
};

/** The 16-bit hashed hint carried in task descriptors (Sec. III-B). */
uint16_t hintHash16(uint64_t hint);

/** Hash a hint to a tile id in [0, ntiles) (Hints scheduler, Sec. III-B). */
uint32_t hintToTile(uint64_t hint, uint32_t ntiles);

/** Hash a hint to a bucket id in [0, nbuckets) (LBHints, Sec. VI). */
uint32_t hintToBucket(uint64_t hint, uint32_t nbuckets);

} // namespace ssim
