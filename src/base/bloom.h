/**
 * @file
 * Bloom filters for conflict detection.
 *
 * Table II: "2Kbit 8-way Bloom filters, H3 hash functions". Swarm keeps one
 * read filter and one write filter per speculative task (LogTM-SE style).
 * "8-way" means the bit array is split into 8 banks, each indexed by an
 * independent H3 function (a parallel Bloom filter).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/hash.h"
#include "base/types.h"

namespace ssim {

class BloomFilter
{
  public:
    /**
     * @param total_bits total bit budget (default 2 Kbit per Table II)
     * @param ways number of banks / hash functions
     * @param seed deterministic seed for the H3 masks
     */
    explicit BloomFilter(uint32_t total_bits = 2048, uint32_t ways = 8,
                         uint64_t seed = 0xb100f);

    /** Insert a line address. */
    void insert(LineAddr line);

    /** Test for (possible) membership: no false negatives. */
    bool mayContain(LineAddr line) const;

    /** Remove all elements. */
    void clear();

    /** True if no element was ever inserted since the last clear(). */
    bool empty() const { return inserts_ == 0; }

    uint64_t numInserts() const { return inserts_; }
    uint32_t bitsPerWay() const { return bitsPerWay_; }
    uint32_t ways() const { return ways_; }

    /** Fraction of set bits, a proxy for expected false-positive rate. */
    double occupancy() const;

  private:
    uint32_t
    indexFor(uint32_t way, LineAddr line) const
    {
        return uint32_t(hashes_[way].hash(line));
    }

    uint32_t ways_;
    uint32_t bitsPerWay_;
    uint64_t inserts_ = 0;
    std::vector<H3Hash> hashes_;
    std::vector<uint64_t> bits_; // ways_ * bitsPerWay_ bits, bank-major
};

} // namespace ssim
