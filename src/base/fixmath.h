/**
 * @file
 * Integer fixed-point transcendentals (Q32: value * 2^32 in a 64-bit
 * word) for workload generators whose outputs feed committed golden
 * digests: seeded arrival streams and Zipfian key sequences
 * (harness/serving.h, apps/kvstore). libm's log/exp/pow are NOT
 * bit-stable across implementations, so any digest built on them would
 * break between toolchains; these routines use only 64/128-bit integer
 * arithmetic and are exact functions of their inputs everywhere.
 *
 * Accuracy is a few parts in 10^7 over the ranges used here — far finer
 * than the histogram buckets and Zipf weight tables built on top — and
 * irrelevant to correctness: the contract is determinism, not ULP
 * fidelity to the real function.
 */
#pragma once

#include <cstdint>

namespace ssim {

/// ln(2) in Q32.
constexpr int64_t kLn2Q32 = 2977044472ll; // round(ln(2) * 2^32)

/// (a * b) >> 32 with a 128-bit intermediate (signed).
inline int64_t
mulQ32(int64_t a, int64_t b)
{
    return int64_t((__int128)a * b >> 32);
}

/**
 * ln(x) for an integer x >= 1, in Q32. Normalizes x to m in [1, 2),
 * then ln(m) = 2 atanh((m-1)/(m+1)) via the odd series — y <= 1/3, so
 * five terms reach ~2e-8 relative error.
 */
inline int64_t
fxLnQ32(uint64_t x)
{
    if (x <= 1)
        return 0;
    int e = 63 - __builtin_clzll(x);
    // m in [1, 2) as Q32: shift x so its leading bit lands at bit 32.
    uint64_t m = e >= 32 ? x >> (e - 32) : x << (32 - e);
    int64_t mq = int64_t(m);
    constexpr int64_t kOneQ32 = int64_t(1) << 32;
    // y = (m - 1) / (m + 1), Q32 division with a 128-bit numerator.
    int64_t y = int64_t(((__int128)(mq - kOneQ32) << 32) / (mq + kOneQ32));
    int64_t y2 = mulQ32(y, y);
    int64_t t = y, sum = y;
    t = mulQ32(t, y2);
    sum += t / 3;
    t = mulQ32(t, y2);
    sum += t / 5;
    t = mulQ32(t, y2);
    sum += t / 7;
    t = mulQ32(t, y2);
    sum += t / 9;
    return int64_t(e) * kLn2Q32 + 2 * sum;
}

/**
 * exp(-x) for x >= 0 (Q32 in, Q32 out; result in (0, 1]). Splits
 * x = k ln2 + r with r in [0, ln2), computes exp(-r) by Taylor series
 * (eight terms: worst-case tail ~2e-8), and shifts by k.
 */
inline uint64_t
fxExpNegQ32(int64_t x)
{
    if (x <= 0)
        return uint64_t(1) << 32;
    uint64_t k = uint64_t(x / kLn2Q32);
    if (k >= 63)
        return 0; // underflows Q32 entirely
    int64_t r = x - int64_t(k) * kLn2Q32;
    constexpr int64_t kOneQ32 = int64_t(1) << 32;
    // exp(-r) = sum (-r)^n / n!
    int64_t t = -r, sum = kOneQ32 - r;
    t = mulQ32(t, -r) / 2;
    sum += t;
    t = mulQ32(t, -r) / 3;
    sum += t;
    t = mulQ32(t, -r) / 4;
    sum += t;
    t = mulQ32(t, -r) / 5;
    sum += t;
    t = mulQ32(t, -r) / 6;
    sum += t;
    t = mulQ32(t, -r) / 7;
    sum += t;
    t = mulQ32(t, -r) / 8;
    sum += t;
    if (sum < 0)
        sum = 0;
    return uint64_t(sum) >> k;
}

/**
 * A standard-exponential variate -ln(U) in Q32 from one 64-bit uniform
 * draw @p u (U = (u | 1) / 2^64, avoiding ln 0):
 * -ln(u / 2^64) = 64 ln2 - ln(u).
 */
inline int64_t
fxExpVariateQ32(uint64_t u)
{
    return 64 * kLn2Q32 - fxLnQ32(u | 1);
}

/** Scale an integer @p mean by a Q32 factor, rounding to nearest. */
inline uint64_t
fxScaleU64(uint64_t mean, int64_t q32)
{
    if (q32 <= 0)
        return 0;
    return uint64_t(((__int128)mean * uint64_t(q32) +
                     (uint64_t(1) << 31)) >> 32);
}

} // namespace ssim
