#include "base/stats.h"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "base/logging.h"

namespace ssim {

const char*
cycleBucketName(CycleBucket b)
{
    switch (b) {
      case CycleBucket::Commit: return "commit";
      case CycleBucket::Abort: return "abort";
      case CycleBucket::Spill: return "spill";
      case CycleBucket::Stall: return "stall";
      case CycleBucket::Empty: return "empty";
      default: panic("bad cycle bucket");
    }
}

const char*
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::MemAcc: return "mem_accs";
      case TrafficClass::Abort: return "aborts";
      case TrafficClass::Task: return "tasks";
      case TrafficClass::Gvt: return "gvt";
      default: panic("bad traffic class");
    }
}

uint64_t
statsDigest(const SimStats& s)
{
    // Field order is frozen: tests/test_determinism.cc's recorded golden
    // digests depend on it.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(s.cycles);
    for (uint64_t c : s.coreCycles)
        mix(c);
    for (uint64_t f : s.flits)
        mix(f);
    mix(s.tasksCommitted);
    mix(s.tasksAborted);
    mix(s.abortsConflict);
    mix(s.abortsDisplace);
    mix(s.abortsGridlock);
    mix(s.tasksSpilled);
    mix(s.tasksStolen);
    mix(s.dispatchSkips);
    mix(s.conflictChecks);
    mix(s.lbReconfigs);
    mix(s.bucketsMoved);
    mix(s.l1Hits);
    mix(s.l1Misses);
    mix(s.l2Hits);
    mix(s.l2Misses);
    mix(s.l3Hits);
    mix(s.l3Misses);
    return h;
}

uint64_t
SimStats::totalCoreCycles() const
{
    return std::accumulate(coreCycles.begin(), coreCycles.end(),
                           uint64_t(0));
}

uint64_t
SimStats::totalFlits() const
{
    return std::accumulate(flits.begin(), flits.end(), uint64_t(0));
}

std::string
SimStats::summary() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu commit=%llu abort=%llu spill=%llu "
                  "stall=%llu empty=%llu flits=%llu committed=%llu "
                  "aborted=%llu",
                  (unsigned long long)cycles,
                  (unsigned long long)coreCycles[0],
                  (unsigned long long)coreCycles[1],
                  (unsigned long long)coreCycles[2],
                  (unsigned long long)coreCycles[3],
                  (unsigned long long)coreCycles[4],
                  (unsigned long long)totalFlits(),
                  (unsigned long long)tasksCommitted,
                  (unsigned long long)tasksAborted);
    return buf;
}

double
gmean(const std::vector<double>& v)
{
    ssim_assert(!v.empty());
    double acc = 0;
    for (double x : v) {
        ssim_assert(x > 0);
        acc += std::log(x);
    }
    return std::exp(acc / double(v.size()));
}

double
hmean(const std::vector<double>& v)
{
    ssim_assert(!v.empty());
    double acc = 0;
    for (double x : v) {
        ssim_assert(x > 0);
        acc += 1.0 / x;
    }
    return double(v.size()) / acc;
}

} // namespace ssim
