/**
 * @file
 * Simulation statistics: cycle-breakdown and NoC-traffic accounting.
 *
 * The paper's evaluation reports two standard breakdowns:
 *  - Core cycles (Fig. 2b/5a/8a/11): commit / abort / spill / stall / empty.
 *  - NoC flits injected (Fig. 5b/8b): mem accs / aborts / tasks / GVT.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace ssim {

/** Where a core cycle went (Fig. 5a categories). */
enum class CycleBucket : uint8_t
{
    Commit = 0, ///< running tasks that ultimately committed
    Abort,      ///< running tasks that were later aborted (incl. rollback)
    Spill,      ///< running spill coalescers / requeuers
    Stall,      ///< stalled on a full task or commit queue
    Empty,      ///< stalled for lack of tasks
    NumBuckets
};

constexpr size_t kNumCycleBuckets = size_t(CycleBucket::NumBuckets);
const char* cycleBucketName(CycleBucket b);

/** What a NoC flit was injected for (Fig. 5b categories). */
enum class TrafficClass : uint8_t
{
    MemAcc = 0, ///< L2<->LLC and LLC<->memory transfers
    Abort,      ///< child-abort messages and rollback memory accesses
    Task,       ///< task descriptors enqueued to remote tiles
    Gvt,        ///< virtual-time (commit) protocol updates
    NumClasses
};

constexpr size_t kNumTrafficClasses = size_t(TrafficClass::NumClasses);
const char* trafficClassName(TrafficClass c);

/** Aggregate statistics for one simulation run. */
struct SimStats
{
    Cycle cycles = 0; ///< makespan of the parallel region

    std::array<uint64_t, kNumCycleBuckets> coreCycles{};
    std::array<uint64_t, kNumTrafficClasses> flits{};

    uint64_t tasksCommitted = 0;
    uint64_t tasksAborted = 0; ///< abort events (execution attempts wasted)
    uint64_t abortsConflict = 0;  ///< caused by data conflicts
    uint64_t abortsDisplace = 0;  ///< commit-queue displacement
    uint64_t abortsGridlock = 0;  ///< commit gridlock breaker
    uint64_t tasksSpilled = 0;
    uint64_t tasksStolen = 0;      ///< Stealing scheduler only
    uint64_t dispatchSkips = 0;    ///< same-hint serialization skips
    uint64_t conflictChecks = 0;
    uint64_t lbReconfigs = 0;      ///< LBHints only
    uint64_t bucketsMoved = 0;     ///< LBHints only

    uint64_t l1Hits = 0, l1Misses = 0;
    uint64_t l2Hits = 0, l2Misses = 0;
    uint64_t l3Hits = 0, l3Misses = 0;

    // Sharded data-plane occupancy (snapshotted at end of run; excluded
    // from the golden-determinism digest, which hashes timing-visible
    // fields only). Lane 0 is the global control lane; tile t = lane t+1.
    std::vector<uint64_t> laneScheduled;   ///< events scheduled per lane
    std::vector<uint64_t> lanePeakPending; ///< peak pending events per lane
    std::vector<uint64_t> bankPeakLines;   ///< peak tracked lines per bank

    // Concurrent conflict-check occupancy (cfg.concurrentConflicts; all
    // zero otherwise). Host-side introspection: probe hit rates and lock
    // traffic depend on host thread count and phase cadence, so — like
    // the occupancy vectors above — these are EXCLUDED from the golden
    // digest, which must stay thread-count invariant.
    uint64_t concProbeHits = 0;  ///< applies that consumed a fresh probe
    uint64_t concProbeStale = 0; ///< probes invalidated by a bank mutation
    uint64_t concProbeCold = 0;  ///< conc-mode applies with no probe
    uint64_t concWorkerProbes = 0; ///< probes executed on workers
    uint64_t bankLockAcquired = 0; ///< line-table bank lock acquisitions
    uint64_t bankLockContended = 0; ///< ... that found the bank held
    uint64_t lineEntriesScrubbed = 0; ///< epoch-scrub reclamations
    std::vector<uint64_t> bankProbes; ///< worker probes per bank

    // Parallel-replay occupancy (cfg.parallelReplay; all zero
    // otherwise). Host-side introspection like the concurrent-check
    // counters above: EXCLUDED from the golden digest, which must stay
    // thread-count invariant.
    uint64_t workerApplies = 0; ///< worker pre-applies consumed at slot
    uint64_t replaySquashed = 0; ///< pre-applies squashed by a fence
    /// Recorded access steps the coordinator applied serially while
    /// replay was armed (not pre-applied: conflicted, stale, or simply
    /// not reached by a replay phase).
    uint64_t coordinatorFallbackApplies = 0;
    /// Recorded non-access steps (compute/enqueue/finish) applied while
    /// replay was armed: effects that stay coordinator-confined because
    /// their footprint is not a single line-table bank.
    uint64_t crossBankEffects = 0;
    std::vector<uint64_t> bankApplies; ///< worker pre-applies per bank

    // Access-classification counters (cfg.classifyMode; all zero with
    // classification off). EXCLUDED from the golden digest: the digest
    // gates "same configuration => same behavior", and a classified run
    // is a deliberately different configuration (gated on the app's
    // resultDigest instead). All are deterministic for a fixed
    // configuration — classification state only mutates on coordinator
    // serial paths — so benches can delta-gate them.
    uint64_t classifiedRoReads = 0; ///< reads satisfied untracked (RO lines)
    uint64_t classifiedPrivAccesses = 0; ///< owner accesses to private lines
    uint64_t classifiedRedOps = 0; ///< reduces buffered on classified lines
    uint64_t classifiedFoldWords = 0; ///< delta words folded at commit
    uint64_t classifiedDemotions = 0; ///< lines demoted to full tracking
    /// Aborts triggered by classification machinery itself (reduction
    /// folds invalidating tracked readers); demotion-path aborts flow
    /// through the normal resolve and count as abortsConflict.
    uint64_t classifyAborts = 0;
    /// Successful line-table registrations (reader/writer set inserts) —
    /// counted with classification on or off, so the classified run's
    /// footprint shrinkage is directly measurable. Deterministic and
    /// thread-count invariant (worker pre-applied registrations are
    /// counted when their slot consumes them).
    uint64_t lineTableRegs = 0;

    // Cross-shard scale-out counters (cfg.topology / sharded runs; all
    // zero otherwise). EXCLUDED from the golden digest: the digest
    // gates "topology plus shardHopPenalty=0 changes nothing" and
    // "N processes == 1 process", and these counters deliberately
    // differ across those configurations (crossShardMsgs appears once
    // a topology is armed; the wire counters only in a forked shard).
    uint64_t crossShardMsgs = 0;  ///< NoC messages crossing a shard boundary
    uint64_t shardStepsSent = 0;  ///< wire effect records sent by this shard
    uint64_t shardStepsRecv = 0;  ///< wire effect records consumed
    uint64_t shardProgressMsgs = 0; ///< GVT progress reports to the reducer

    // Trace-replay cost provenance (backend=trace-replay; both zero
    // otherwise). EXCLUDED from the golden digest like the
    // classification counters above: a replayed run is gated on the
    // app's resultDigest, and the served/fallback split depends on
    // which trace was armed, not on the modeled machine. Deterministic
    // for a fixed (trace, workload, seed), so benches can delta-gate.
    uint64_t traceServedCosts = 0;   ///< costs served from the armed trace
    uint64_t traceFallbackCosts = 0; ///< unseen keys priced by the seeded
                                     ///< fallback model

    uint64_t totalCoreCycles() const;
    uint64_t totalFlits() const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * FNV-1a digest over every timing-visible stats field, in a fixed
 * order — the single definition behind the golden-determinism tests and
 * the parallel-host bench's thread-count-invariance gate (occupancy
 * vectors are excluded: they are data-plane introspection, not timing).
 */
uint64_t statsDigest(const SimStats& s);

/** Geometric mean of a vector of positive values. */
double gmean(const std::vector<double>& v);

/** Harmonic mean of a vector of positive values. */
double hmean(const std::vector<double>& v);

} // namespace ssim
