#include "base/hash.h"

#include "base/logging.h"

namespace ssim {

H3Hash::H3Hash(uint32_t out_bits, uint64_t seed) : outBits_(out_bits)
{
    ssim_assert(out_bits >= 1 && out_bits <= 64);
    uint64_t s = seed;
    masks_.resize(out_bits);
    for (auto& m : masks_) {
        // Avoid degenerate all-zero masks.
        do {
            m = splitmix64(s);
        } while (m == 0);
    }
}

uint16_t
hintHash16(uint64_t hint)
{
    return uint16_t(mix64(hint) & 0xffff);
}

uint32_t
hintToTile(uint64_t hint, uint32_t ntiles)
{
    ssim_assert(ntiles > 0);
    return uint32_t(mix64(hint ^ 0x5bd1e995u) % ntiles);
}

uint32_t
hintToBucket(uint64_t hint, uint32_t nbuckets)
{
    ssim_assert(nbuckets > 0);
    // Distinct mixing constant from hintToTile so the two maps are
    // independent, as two separate H3 functions would be in hardware.
    return uint32_t(mix64(hint ^ 0x9747b28cull) % nbuckets);
}

} // namespace ssim
