/**
 * @file
 * gem5-style logging and termination helpers.
 *
 * panic():  something happened that should never happen regardless of what
 *           the user does — a simulator bug. Aborts (can dump core).
 * fatal():  the simulation cannot continue due to a user error (bad
 *           configuration, invalid arguments). Exits with an error code.
 * warn()/inform(): status messages; never stop the simulator.
 */
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ssim {

[[noreturn]] void panicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool v);
bool verbose();

} // namespace ssim

#define panic(...) ::ssim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::ssim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::ssim::warnImpl(__VA_ARGS__)
#define inform(...) ::ssim::informImpl(__VA_ARGS__)

/** Invariant check that survives NDEBUG: cheap, used on hot paths wisely. */
#define ssim_assert(cond, ...)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::ssim::panicImpl(__FILE__, __LINE__,                          \
                              "assertion failed: %s", #cond);              \
        }                                                                  \
    } while (0)
