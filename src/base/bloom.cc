#include "base/bloom.h"

#include <bit>

#include "base/logging.h"

namespace ssim {

BloomFilter::BloomFilter(uint32_t total_bits, uint32_t ways, uint64_t seed)
    : ways_(ways), bitsPerWay_(total_bits / ways)
{
    ssim_assert(ways >= 1);
    ssim_assert(std::has_single_bit(bitsPerWay_),
                "bits per way must be a power of two");
    uint32_t idx_bits = uint32_t(std::countr_zero(bitsPerWay_));
    uint64_t s = seed;
    for (uint32_t w = 0; w < ways_; w++)
        hashes_.emplace_back(idx_bits, splitmix64(s));
    bits_.assign((uint64_t(ways_) * bitsPerWay_ + 63) / 64, 0);
}

void
BloomFilter::insert(LineAddr line)
{
    for (uint32_t w = 0; w < ways_; w++) {
        uint64_t bit = uint64_t(w) * bitsPerWay_ + indexFor(w, line);
        bits_[bit >> 6] |= 1ull << (bit & 63);
    }
    inserts_++;
}

bool
BloomFilter::mayContain(LineAddr line) const
{
    if (inserts_ == 0)
        return false;
    for (uint32_t w = 0; w < ways_; w++) {
        uint64_t bit = uint64_t(w) * bitsPerWay_ + indexFor(w, line);
        if (!(bits_[bit >> 6] & (1ull << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    if (inserts_ == 0)
        return;
    std::fill(bits_.begin(), bits_.end(), 0);
    inserts_ = 0;
}

double
BloomFilter::occupancy() const
{
    uint64_t set = 0;
    for (uint64_t word : bits_)
        set += std::popcount(word);
    return double(set) / (double(ways_) * bitsPerWay_);
}

} // namespace ssim
