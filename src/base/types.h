/**
 * @file
 * Fundamental types shared across the simulator.
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace ssim {

/** Simulated time, in core clock cycles. */
using Cycle = uint64_t;

/** Application-level task timestamp (Swarm program order). */
using Timestamp = uint64_t;

/** A simulated memory address (we reuse host addresses). */
using Addr = uint64_t;

/** A 64-byte cache-line address (Addr >> 6). */
using LineAddr = uint64_t;

/** Tile / core identifiers. */
using TileId = uint32_t;
using CoreId = uint32_t;

constexpr uint32_t lineBits = 6;
constexpr uint32_t lineBytes = 1u << lineBits;

/** Convert a byte address to its cache-line address. */
inline LineAddr
lineOf(Addr a)
{
    return a >> lineBits;
}

/** Convert a pointer to a simulated address. */
inline Addr
addrOf(const void* p)
{
    return reinterpret_cast<Addr>(p);
}

constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();
constexpr Timestamp kTsMax = std::numeric_limits<Timestamp>::max();

} // namespace ssim
