#include "swarm/task.h"

#include "base/logging.h"

namespace ssim {

const char*
taskStateName(TaskState s)
{
    switch (s) {
      case TaskState::InFlight: return "inflight";
      case TaskState::Idle: return "idle";
      case TaskState::Running: return "running";
      case TaskState::Finished: return "finished";
      default: panic("bad task state");
    }
}

} // namespace ssim
