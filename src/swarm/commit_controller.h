/**
 * @file
 * The virtual-time commit protocol (paper Sec. II-B "High-throughput
 * ordered commits") and the load balancer's periodic reconfiguration
 * (Sec. VI).
 *
 * Tiles communicate with an arbiter every gvtEpoch cycles to discover the
 * earliest unfinished task in the system (the GVT). All finished tasks
 * that precede it commit. The controller also breaks commit gridlock
 * (aborting the latest blocked finisher when an earlier idle task gates
 * the GVT) and owns the commit-side profiling hooks: the AccessProfiler
 * and the load balancer's per-bucket committed-cycle counters.
 *
 * THREADING CONTRACT: every method runs on the coordinator thread. GVT
 * and LB epochs are global-lane events, so in parallel host mode
 * (sim/parallel_executor.h) they execute at their exact serial slots
 * between pre-resume phases; worker threads never observe or mutate
 * commit state. tileLaneLowerBound() is the published safe horizon: no
 * commit or abort the next epoch performs can take effect before the
 * earliest pending tile-lane event, which is why pre-executed pure
 * segments whose resume events are pending now can never be invalidated
 * except through the abort path (which bumps the task generation on
 * this thread and voids the recording at its next event).
 */
#pragma once

#include <optional>
#include <utility>

#include "base/stats.h"
#include "noc/mesh.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "swarm/task.h"

namespace ssim {

class CapacityManager;
class ConflictManager;
class ExecutionEngine;
class LoadBalancer;
class ShardContext;

/** Receives every committed task (with its access trace) for profiling. */
class AccessProfiler
{
  public:
    virtual ~AccessProfiler() = default;
    virtual void onCommit(const Task& t) = 0;
};

class CommitController
{
  public:
    CommitController(const SimConfig& cfg, EventQueue& eq, Mesh& mesh,
                     SimStats& stats, ExecutionEngine& engine,
                     ConflictManager& conflict, CapacityManager& capacity,
                     LoadBalancer* lb);

    /** Schedule the first GVT (and, with a load balancer, LB) epochs. */
    void start();

    /**
     * Re-arm any epoch chain that ended because the machine drained.
     * gvtEpoch/lbEpoch stop rescheduling themselves once tasksLive()
     * hits zero; a root task injected mid-run after that quiescence
     * (Machine::injectRoot — the serving driver's arrival path) would
     * then never commit. Called from the injection path, which runs on
     * the coordinator inside a global-lane event, so the re-scheduled
     * epochs get deterministic (cycle, seq) slots.
     */
    void ensureEpochsScheduled();

    /** Enable access-trace profiling of committed tasks. */
    void setProfiler(AccessProfiler* p) { profiler_ = p; }
    AccessProfiler* profiler() const { return profiler_; }

    /**
     * Arm the cross-shard seam (swarm/shard.h): every
     * cfg.shardProgressEvery GVT epochs this replica reports its
     * (epoch, cycle, gvt) to the parent reducer, which fails fast on
     * any cross-replica divergence. Must precede run().
     */
    void setShard(ShardContext* shard) { shard_ = shard; }

    /** Cycle of the last commit (the makespan of the parallel region). */
    Cycle lastCommitCycle() const { return lastCommitCycle_; }

    /**
     * Earliest unfinished (ts, uid) in the system, if any: a min-merge
     * over the per-tile lower bounds (each TaskUnit's ordered unfinished
     * set head), mirroring how the event queue merges per-tile lanes.
     */
    std::optional<std::pair<Timestamp, uint64_t>> computeGvt() const;

    /**
     * Lower bound, from per-lane event minima, on the cycle at which
     * task state can next change: the earliest pending event across the
     * tile lanes (the global control lane — GVT/LB epochs — is
     * excluded). kCycleMax once the tile lanes are drained. The next
     * epoch cannot commit or abort anything before this cycle.
     */
    Cycle tileLaneLowerBound() const;

    /** Pending events on one lane (0 = global control lane). */
    size_t lanePending(uint32_t lane) const { return eq_.pending(lane); }

    /** GVT epochs run so far (epoch barriers in parallel host mode). */
    uint64_t gvtEpochsRun() const { return gvtEpochsRun_; }

  private:
    void gvtEpoch();
    void commitTask(Task* t);
    void breakCommitGridlock(TileId tile);
    void lbEpoch();

    const SimConfig& cfg_;
    EventQueue& eq_;
    Mesh& mesh_;
    SimStats& stats_;
    ExecutionEngine& engine_;
    ConflictManager& conflict_;
    CapacityManager& capacity_;
    LoadBalancer* lb_;

    AccessProfiler* profiler_ = nullptr;
    /// Cross-shard seam (null = single-process); see setShard().
    ShardContext* shard_ = nullptr;
    uint64_t traceEpochs_ = 0;
    uint64_t gvtEpochsRun_ = 0;
    Cycle lastCommitCycle_ = 0;
    /// True while a gvtEpoch/lbEpoch event is pending: start() and the
    /// self-reschedules set these, the epoch bodies clear them, and
    /// ensureEpochsScheduled() re-arms whichever chain has stopped.
    bool gvtScheduled_ = false;
    bool lbScheduled_ = false;
};

} // namespace ssim
