#include "swarm/conflict_manager.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "base/logging.h"
#include "swarm/backends/engine_backend.h"
#include "swarm/execution_engine.h"
#include "swarm/task_unit.h"

namespace ssim {

ConflictManager::ConflictManager(const SimConfig& cfg,
                                 EngineBackend& backend, SimStats& stats,
                                 ExecutionEngine& engine)
    : cfg_(cfg), backend_(backend), stats_(stats), engine_(engine),
      lineTable_(cfg.numLineBanks())
{
    // Inline-effects backends disable resume tags, so workers never
    // touch the line table and the bank locks would be pure overhead.
    bool parallelHost = cfg.hostThreads > 1 && !backend.inlineEffects();
    lineTable_.setLocking(parallelHost);
    if (parallelHost && cfg.concurrentConflicts) {
        // Concurrent checks ride the parallel executor: workers probe
        // banks between record and replay, and removeTask's empty-entry
        // erase is deferred to the banks' epoch scrubs.
        lineTable_.setDeferredScrub(true);
        ccb_ = std::make_unique<ConcurrentConflictBackend>(*this, engine);
    }
    if (parallelHost && cfg.parallelReplay) {
        // Parallel replay is independent of concurrent conflict checks:
        // it stages its own probes when ccb_ is absent, and reuses
        // still-fresh worker probes when both are armed.
        rpb_ = std::make_unique<ParallelReplayBackend>(*this, engine);
    }
    // Arm access classification from a private copy of the map: lines
    // are demoted (erased) as contradicting accesses arrive, so the
    // shared map can serve many runs unchanged.
    if (cfg.classifyMap)
        classMap_ = cfg.classifyMap->lines;
}

ConflictManager::~ConflictManager() = default;

ConcurrentConflictBackend*
ConflictManager::concurrentBackend()
{
    return ccb_.get();
}

ParallelReplayBackend*
ConflictManager::replayBackend()
{
    return rpb_.get();
}

void
ConflictManager::onCommit(Task* t)
{
    if (rpb_)
        rpb_->fenceTask(t);
    if (!t->redLines.empty())
        foldReductions(t);
    clearClassifiedState(t);
    lineTable_.removeTask(t);
}

void
ConflictManager::finalizeRun()
{
    if (rpb_)
        rpb_->fenceAll(); // defensive: nothing should be staged by now
    if (lineTable_.deferredScrub())
        lineTable_.scrubAllDirty();
}

void
ConflictManager::trackRead(Task* t, LineAddr line)
{
    bool first = !t->writeSet.count(line);
    if (t->readSet.insert(line).second) {
        auto guard = lineTable_.lockFor(line);
        lineTable_.addReader(line, t, first);
        stats_.lineTableRegs++;
    }
}

void
ConflictManager::trackWrite(Task* t, LineAddr line)
{
    bool first = !t->readSet.count(line);
    if (t->writeSet.insert(line).second) {
        auto guard = lineTable_.lockFor(line);
        lineTable_.addWriter(line, t, first);
        stats_.lineTableRegs++;
    }
}

void
ConflictManager::probeLocked(const Task* t, LineAddr line, bool is_write,
                             Task::ConflictProbe& out) const
{
    out.later.clear();
    out.earlierWriters.clear();
    out.compared = 0;

    const LineTable::Entry* e = lineTable_.find(line);
    if (!e)
        return;

    auto considerLater = [&](Task* o) {
        out.compared++;
        if (o != t && t->before(*o))
            out.later.push_back(o);
    };
    auto considerEarlierWriter = [&](Task* o) {
        // o wrote this line earlier in program order and is uncommitted:
        // t consumes forwarded speculative data and must abort with o.
        if (o != t && o->before(*t))
            out.earlierWriters.push_back(o);
    };

    if (is_write) {
        for (Task* r : e->readers)
            considerLater(r);
        for (Task* w : e->writers) {
            considerLater(w);
            considerEarlierWriter(w);
        }
    } else {
        for (Task* w : e->writers) {
            considerLater(w);
            considerEarlierWriter(w);
        }
    }
}

uint32_t
ConflictManager::resolveConflicts(Task* t, LineAddr line, bool is_write,
                                  Task::ConflictProbe* cached)
{
    // Parallel replay: a serial-path resolution on this bank is an
    // out-of-order bank touch — squash the bank's staged pre-applies
    // first (their probes assumed no serial mutation before their own
    // slots), BEFORE the cached-probe check: the squash bumps the
    // op-sequence, invalidating probes that saw the staged state.
    if (rpb_)
        rpb_->fenceLine(line);

    // PROBE: consume the worker-side probe iff the bank's op-sequence
    // proves no registration or scrub intervened — then its candidate
    // sets and compared count are exactly what a fresh scan would
    // produce. Otherwise scan inline under the bank lock (a concurrent
    // probe must not observe the bank mid-registration).
    Task::ConflictProbe probe;
    if (cached && cached->valid &&
        cached->opSeq == lineTable_.bankOpSeq(lineTable_.bankOf(line))) {
        probe = std::move(*cached);
        stats_.concProbeHits++;
    } else {
        if (ccb_)
            (cached && cached->valid ? stats_.concProbeStale
                                     : stats_.concProbeCold)++;
        auto guard = lineTable_.lockFor(line);
        probeLocked(t, line, is_write, probe);
    }

    // RESOLVE (coordinator, at this access's serial slot; asserted not
    // to race a probe phase). Record forwarded-data dependences, then
    // abort every later conflictor. The bank lock is NOT held here:
    // rollback re-enters the line table (removeTask takes its own
    // per-bank locks).
    ssim_assert(!ccb_ || !ccb_->inPhase(),
                "conflict resolution during a probe phase");
    ssim_assert(!rpb_ || !rpb_->inPhase(),
                "conflict resolution during a replay phase");
    for (Task* o : probe.earlierWriters)
        o->dependents.emplace_back(t->uid, t->generation);

    if (!probe.later.empty()) {
        std::vector<Task*>& toAbort = probe.later;
        std::sort(toAbort.begin(), toAbort.end());
        toAbort.erase(std::unique(toAbort.begin(), toAbort.end()),
                      toAbort.end());
        stats_.abortsConflict += toAbort.size();
        abortTasks(toAbort, /*discard_roots=*/false, t->tile);
    }
    return probe.compared;
}

void
ConflictManager::abortTasks(const std::vector<Task*>& roots,
                            bool discard_roots, TileId cause_tile)
{
    // Build the abort set: descendants are discarded (their parent's
    // execution attempt, which created them, is rolled back); dependent
    // tasks are aborted and requeued. Discard dominates requeue.
    std::unordered_map<Task*, bool> marked; // -> discard?
    std::vector<std::pair<Task*, bool>> wl;
    bool doomShielded = false;
    for (Task* r : roots)
        wl.emplace_back(r, discard_roots);

    while (!wl.empty()) {
        auto [x, disc] = wl.back();
        wl.pop_back();
        if (x == shieldedAccessor_) {
            // A demotion's cascade reached the task whose in-flight
            // access triggered it. Its coroutine frame is live on the
            // host stack beneath us, so rolling it back here would free
            // live frames — doom it via a same-cycle event instead. The
            // event fires before the task's own resume (global event
            // sequence), so the stale attempt never runs again; its
            // children and dependents cascade when that abort runs.
            if (disc)
                x->doomedDiscard = true;
            doomShielded = true;
            continue;
        }
        auto it = marked.find(x);
        if (it != marked.end() && (it->second || !disc))
            continue; // already marked at an equal or stronger level
        marked[x] = disc;
        for (Task* child : x->children)
            wl.emplace_back(child, true);
        for (auto [uid, gen] : x->dependents) {
            Task* dep = engine_.lookupTask(uid);
            if (dep && dep->generation == gen &&
                (dep->state == TaskState::Running ||
                 dep->state == TaskState::Finished)) {
                wl.emplace_back(dep, false);
            }
        }
    }

    // Roll back in reverse program order: per line, chronological write
    // order equals program order among live writers (DESIGN.md §5.3), so
    // descending (ts, uid) restoration is exact.
    std::vector<Task*> order;
    order.reserve(marked.size());
    for (auto& [task, disc] : marked)
        order.push_back(task);
    std::sort(order.begin(), order.end(), [](Task* a, Task* b) {
        return TaskOrder()(b, a); // descending
    });

    std::vector<TileId> touched;
    for (Task* x : order) {
        touched.push_back(x->tile);
        rollbackTask(x, cause_tile);
        if (marked[x])
            discardTask(x);
        else
            requeueTask(x);
    }

    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (TileId tile : touched) {
        engine_.retryFinishPending(tile);
        engine_.scheduleDispatch(tile);
    }

    if (doomShielded)
        engine_.scheduleDoomedAbort(shieldedAccessor_, cause_tile);
}

void
ConflictManager::rollbackTask(Task* t, TileId cause_tile)
{
    bool hadRun = (t->state == TaskState::Running ||
                   t->state == TaskState::Finished);

    // Abort traffic goes through the EngineBackend from the serialized
    // resolve phase only — never from worker probes (both the timing
    // and functional backends rely on coordinator confinement).
    ssim_assert(!ccb_ || !ccb_->inPhase(),
                "rollback during a probe phase");
    ssim_assert(!rpb_ || !rpb_->inPhase(),
                "rollback during a replay phase");
    // Squash staged pre-applies on every bank this task touched BEFORE
    // restoring the undo log: the task's own staged write (if any) is
    // the undo tail and must be popped by its squash, and other tasks'
    // staged state on these banks assumed no rollback before their
    // slots.
    if (rpb_)
        rpb_->fenceTask(t);
    backend_.abortMessage(cause_tile, t->tile);

    uint64_t rollbackCycles = 0;
    if (hadRun) {
        // Restore the undo log in reverse; the rollback writes'
        // modeled cost (memory hierarchy + abort traffic) comes from
        // the backend.
        CoreId rbCore = t->runningOn != Task::kNoCore
                            ? t->runningOn
                            : cfg_.coreId(t->tile, 0);
        for (auto it = t->undo.rbegin(); it != t->undo.rend(); ++it)
            std::memcpy(reinterpret_cast<void*>(it->addr), &it->oldVal,
                        it->size);
        for (LineAddr line : t->writeSet)
            rollbackCycles += backend_.rollbackLineCost(rbCore, line);
        stats_.tasksAborted++;
        stats_.coreCycles[size_t(CycleBucket::Abort)] +=
            t->execCycles + rollbackCycles;
    }

    // Classified footprint dies with the attempt: unfolded reduction
    // deltas are discarded (they never touched memory), eager private
    // writes were restored by the undo log above, and the side
    // registries drop this task so demotion never registers a corpse.
    clearClassifiedState(t);
    lineTable_.removeTask(t);

    if (t->state == TaskState::Running) {
        if (t->coro) {
            t->coro.destroy();
            t->coro = {};
        }
        engine_.freeCore(t);
    }
}

void
ConflictManager::discardTask(Task* t)
{
    TaskUnit& unit = engine_.unit(t->tile);
    switch (t->state) {
      case TaskState::InFlight:
        unit.unfinished.erase(t);
        ssim_assert(unit.inFlight > 0);
        unit.inFlight--;
        break;
      case TaskState::Idle:
        if (t->spilled)
            unit.spillBuf.erase(t);
        else
            unit.idle.erase(t);
        unit.unfinished.erase(t);
        break;
      case TaskState::Running: // core already freed by rollbackTask
        unit.unfinished.erase(t);
        break;
      case TaskState::Finished:
        unit.commitQ.erase(t);
        break;
    }
    if (t->parent) {
        auto& sib = t->parent->children;
        sib.erase(std::remove(sib.begin(), sib.end(), t), sib.end());
    }
    // Children of a discarded task are always in the same abort set
    // (marked discard), so no dangling child->parent pointers survive;
    // clear ours defensively.
    for (Task* c : t->children)
        c->parent = nullptr;
    engine_.destroyTask(t);
}

void
ConflictManager::requeueTask(Task* t)
{
    TaskUnit& unit = engine_.unit(t->tile);
    ssim_assert(t->state == TaskState::Running ||
                t->state == TaskState::Finished,
                "only executed tasks are requeued");
    if (t->state == TaskState::Finished) {
        unit.commitQ.erase(t);
        unit.unfinished.insert(t); // it left unfinished when it finished
    }
    // Children created by the rolled-back attempt are discarded in the
    // same cascade; drop our references.
    t->children.clear();
    t->generation++;
    t->resetSpecState();
    t->state = TaskState::Idle;
    unit.idle.insert(t);
}

// ---- Access classification -------------------------------------------------

/// Does @p t hold a buffered reduction delta on any word of @p line?
static bool
hasShadowOnLine(const Task* t, LineAddr line)
{
    auto it = t->redShadow.lower_bound(Addr(line) << lineBits);
    return it != t->redShadow.end() && lineOf(it->first) == line;
}

bool
ConflictManager::tryClassifiedAccess(Task* t, Addr addr, uint32_t size,
                                     bool is_write, uint64_t wval,
                                     uint64_t* rval)
{
    if (classMap_.empty())
        return false;
    LineAddr line = lineOf(addr);
    auto it = classMap_.find(line);
    if (it == classMap_.end())
        return false;

    switch (it->second) {
      case LineClass::ReadOnly: {
        if (is_write) {
            // The profile lied: demote, then let the write take the
            // full resolve+track path (the demotion just registered
            // every untracked reader, so the probe sees them all).
            demoteLine(line, t);
            return false;
        }
        *rval = 0;
        std::memcpy(rval, reinterpret_cast<void*>(addr), size);
        if (t->roSet.insert(line).second)
            roReaders_[line].push_back(t);
        stats_.classifiedRoReads++;
        return true;
      }

      case LineClass::Private: {
        PrivUse& pu = privUse_[line];
        if (!pu.owner) {
            pu.owner = t;
            t->privLines.push_back(line);
        } else if (pu.owner != t) {
            // Foreign access: register the owner's hidden accesses and
            // fall through to resolve, which orders the two normally.
            demoteLine(line, t);
            return false;
        }
        // Owner access, untracked but EAGER: the undo log is the
        // per-task write buffer, so abort recovery needs nothing new.
        if (is_write) {
            Task::UndoRec rec{addr, uint8_t(size), 0};
            std::memcpy(&rec.oldVal, reinterpret_cast<void*>(addr), size);
            t->undo.push_back(rec);
            std::memcpy(reinterpret_cast<void*>(addr), &wval, size);
            pu.wrote = true;
        } else {
            *rval = 0;
            std::memcpy(rval, reinterpret_cast<void*>(addr), size);
            pu.readIt = true;
        }
        stats_.classifiedPrivAccesses++;
        return true;
      }

      case LineClass::Reduction: {
        if (is_write) {
            demoteLine(line, t); // plain write: materialize + track
            return false;
        }
        // A plain read is exact as a TRACKED base read — any committer
        // folding deltas into this line aborts us — unless this task
        // has its own buffered deltas here, which the base read would
        // miss (a task must see its own writes): demote for
        // self-visibility.
        if (hasShadowOnLine(t, line))
            demoteLine(line, t);
        return false;
      }
    }
    return false;
}

bool
ConflictManager::tryClassifiedReduce(Task* t, Addr addr, int64_t delta)
{
    if (classMap_.empty())
        return false;
    LineAddr line = lineOf(addr);
    auto it = classMap_.find(line);
    if (it == classMap_.end())
        return false;

    switch (it->second) {
      case LineClass::Reduction: {
        if (!hasShadowOnLine(t, line)) {
            redUsers_[line].push_back(t);
            t->redLines.push_back(line);
        }
        t->redShadow[addr] += delta;
        stats_.classifiedRedOps++;
        return true;
      }
      case LineClass::Private: {
        PrivUse& pu = privUse_[line];
        if (!pu.owner) {
            pu.owner = t;
            t->privLines.push_back(line);
        } else if (pu.owner != t) {
            demoteLine(line, t);
            return false;
        }
        // Owner reduce: just an eager read-modify-write.
        uint64_t cur = 0;
        std::memcpy(&cur, reinterpret_cast<void*>(addr), 8);
        t->undo.push_back({addr, 8, cur});
        uint64_t nv = cur + uint64_t(delta);
        std::memcpy(reinterpret_cast<void*>(addr), &nv, 8);
        pu.wrote = true;
        stats_.classifiedPrivAccesses++;
        return true;
      }
      case LineClass::ReadOnly: {
        demoteLine(line, t); // a reduce IS a write
        return false;
      }
    }
    return false;
}

void
ConflictManager::demoteLine(LineAddr line, Task* accessor)
{
    auto it = classMap_.find(line);
    if (it == classMap_.end())
        return;
    // Squash any staged pre-applies on the home bank before mutating it
    // (the registrations below bump its op-sequence, invalidating any
    // probe that could have seen the pre-demotion state).
    if (rpb_)
        rpb_->fenceLine(line);
    LineClass cls = it->second;
    classMap_.erase(it); // first: track* below must see "unclassified"

    switch (cls) {
      case LineClass::ReadOnly: {
        auto rit = roReaders_.find(line);
        if (rit != roReaders_.end()) {
            std::vector<Task*> readers = std::move(rit->second);
            roReaders_.erase(rit);
            for (Task* r : readers)
                trackRead(r, line);
        }
        break;
      }
      case LineClass::Private: {
        auto pit = privUse_.find(line);
        if (pit != privUse_.end()) {
            PrivUse pu = pit->second;
            privUse_.erase(pit);
            if (pu.owner) {
                if (pu.readIt)
                    trackRead(pu.owner, line);
                if (pu.wrote)
                    trackWrite(pu.owner, line);
            }
        }
        break;
      }
      case LineClass::Reduction: {
        auto uit = redUsers_.find(line);
        if (uit != redUsers_.end()) {
            std::vector<Task*> users = std::move(uit->second);
            redUsers_.erase(uit);
            // Materialize buffered deltas IN PROGRAM ORDER: per line,
            // chronological write order must equal program order among
            // live writers (the undo log snapshots absolute values, so
            // descending-order rollback is only exact under that
            // invariant — DESIGN.md §5.3). No tracked writers can
            // coexist with a classified Reduction line (a plain write
            // demotes first), so this establishes the order outright.
            std::sort(users.begin(), users.end(), TaskOrder());
            // Each materialization is a real speculative write at its
            // user's timestamp and must RESOLVE like one. Tasks still
            // registered on the line later than the user took tracked
            // base reads that miss this delta — exact only under the
            // commit-time fold-abort protocol, which this demotion
            // cancels (foldReductions skips demoted lines) — so they
            // abort NOW, not silently commit stale. Previously
            // materialized users are earlier uncommitted writers whose
            // undo snapshots chain: record forwarded-data dependent
            // edges so a mid-chain abort takes the deltas stacked on
            // top of it down with it. The cascade can reach a LATER
            // entry of this list (as a victim's dependent or
            // descendant), so walk by (uid, generation) and skip users
            // already rolled back — their deltas died with the attempt.
            shieldedAccessor_ = accessor;
            std::vector<std::pair<uint64_t, uint64_t>> order;
            order.reserve(users.size());
            for (Task* u : users)
                order.emplace_back(u->uid, u->generation);
            for (auto [uid, gen] : order) {
                Task* u = engine_.lookupTask(uid);
                if (!u || u->generation != gen)
                    continue; // aborted by an earlier user's resolve
                Task::ConflictProbe probe;
                {
                    auto guard = lineTable_.lockFor(line);
                    probeLocked(u, line, /*is_write=*/true, probe);
                }
                for (Task* o : probe.earlierWriters)
                    o->dependents.emplace_back(u->uid, u->generation);
                if (!probe.later.empty()) {
                    std::vector<Task*>& toAbort = probe.later;
                    std::sort(toAbort.begin(), toAbort.end());
                    toAbort.erase(
                        std::unique(toAbort.begin(), toAbort.end()),
                        toAbort.end());
                    // The shielded accessor's abort is deferred and
                    // counted when it actually lands.
                    stats_.classifyAborts +=
                        toAbort.size() -
                        (accessor && std::find(toAbort.begin(),
                                               toAbort.end(), accessor) !=
                                         toAbort.end()
                             ? 1
                             : 0);
                    abortTasks(toAbort, /*discard_roots=*/false, u->tile);
                }
                auto sit =
                    u->redShadow.lower_bound(Addr(line) << lineBits);
                while (sit != u->redShadow.end() &&
                       lineOf(sit->first) == line) {
                    Addr w = sit->first;
                    uint64_t cur = 0;
                    std::memcpy(&cur, reinterpret_cast<void*>(w), 8);
                    u->undo.push_back({w, 8, cur});
                    uint64_t nv = cur + uint64_t(sit->second);
                    std::memcpy(reinterpret_cast<void*>(w), &nv, 8);
                    sit = u->redShadow.erase(sit);
                }
                trackWrite(u, line);
            }
            shieldedAccessor_ = nullptr;
        }
        break;
      }
    }
    stats_.classifiedDemotions++;
}

void
ConflictManager::foldReductions(Task* t)
{
    std::vector<Task*> victims;
    for (LineAddr line : t->redLines) {
        auto cit = classMap_.find(line);
        if (cit == classMap_.end() || cit->second != LineClass::Reduction)
            continue; // demoted: deltas were already materialized
        // Committed: fold the deltas straight into memory (no undo).
        auto sit = t->redShadow.lower_bound(Addr(line) << lineBits);
        while (sit != t->redShadow.end() && lineOf(sit->first) == line) {
            uint64_t cur = 0;
            std::memcpy(&cur, reinterpret_cast<void*>(sit->first), 8);
            uint64_t nv = cur + uint64_t(sit->second);
            std::memcpy(reinterpret_cast<void*>(sit->first), &nv, 8);
            stats_.classifiedFoldWords++;
            sit = t->redShadow.erase(sit);
        }
        // Every task still registered on the line read the pre-fold
        // value — and is later than the committing task (GVT head), so
        // the fold invalidates it. Only plain readers can be here: a
        // tracked writer would have demoted the line first.
        if (const LineTable::Entry* e = lineTable_.find(line)) {
            for (Task* r : e->readers)
                if (r != t)
                    victims.push_back(r);
            for (Task* w : e->writers)
                if (w != t)
                    victims.push_back(w);
        }
    }
    if (!victims.empty()) {
        std::sort(victims.begin(), victims.end());
        victims.erase(std::unique(victims.begin(), victims.end()),
                      victims.end());
        stats_.classifyAborts += victims.size();
        // The victims are requeued with their original timestamps and
        // become live again: record the earliest so the in-progress
        // commit sweep can tighten its GVT bound (consumeFoldAbort).
        for (Task* v : victims) {
            std::pair<Timestamp, uint64_t> key{v->ts, v->uid};
            if (!foldAbortMin_ || key < *foldAbortMin_)
                foldAbortMin_ = key;
        }
        abortTasks(victims, /*discard_roots=*/false, t->tile);
    }
}

void
ConflictManager::clearClassifiedState(Task* t)
{
    for (LineAddr line : t->roSet) {
        auto it = roReaders_.find(line);
        if (it == roReaders_.end())
            continue; // line demoted since
        auto& v = it->second;
        v.erase(std::remove(v.begin(), v.end(), t), v.end());
        if (v.empty())
            roReaders_.erase(it);
    }
    for (LineAddr line : t->privLines) {
        auto it = privUse_.find(line);
        if (it != privUse_.end() && it->second.owner == t)
            privUse_.erase(it); // release for serial reuse
    }
    for (LineAddr line : t->redLines) {
        auto it = redUsers_.find(line);
        if (it == redUsers_.end())
            continue; // line demoted since
        auto& v = it->second;
        v.erase(std::remove(v.begin(), v.end(), t), v.end());
        if (v.empty())
            redUsers_.erase(it);
    }
}

// ---- ConcurrentConflictBackend ---------------------------------------------

ConcurrentConflictBackend::ConcurrentConflictBackend(ConflictManager& cm,
                                                     ExecutionEngine& engine)
    : cm_(cm), engine_(engine),
      bankItems_(cm.lineTable_.numBanks()),
      bankProbes_(cm.lineTable_.numBanks(), 0)
{
}

uint64_t
ConcurrentConflictBackend::probes() const
{
    uint64_t n = 0;
    for (uint64_t b : bankProbes_)
        n += b;
    return n;
}

size_t
ConcurrentConflictBackend::buildQueues(
    const std::vector<ResumeCandidate>& candidates)
{
    LineTable& lt = cm_.lineTable_;
    for (uint32_t b : activeBanks_)
        bankItems_[b].clear();
    activeBanks_.clear();

    size_t queued = 0;
    for (const ResumeCandidate& c : candidates) {
        Task* t = engine_.lookupTask(c.uid);
        if (!t || t->generation != c.gen || t->state != TaskState::Running)
            continue; // stale tag: aborted/discarded since the scan
        Task::PendingRun& p = t->pending;
        if (p.gen != c.gen || !p.hasSteps())
            continue; // nothing recorded (or a stale recording)
        for (size_t i = p.next; i < p.steps.size(); i++) {
            Task::PendingStep& s = p.steps[i];
            if (s.kind != Task::PendingStep::Kind::Access || s.applied)
                continue;
            LineAddr line = lineOf(s.addr);
            if (cm_.classifiedLine(line))
                continue; // classified: no line-table state to probe
            uint32_t b = lt.bankOf(line);
            if (s.probe.valid && s.probe.opSeq == lt.bankOpSeq(b))
                continue; // an earlier phase's probe is still fresh
            if (bankItems_[b].empty())
                activeBanks_.push_back(b);
            bankItems_[b].push_back({t, uint32_t(i), line, s.isWrite});
            queued++;
        }
    }

    // Dirty banks with no probe work still get their epoch scrub, so
    // deferred empties cannot outlive the next conflict phase.
    if (lt.deferredScrub()) {
        for (uint32_t b = 0; b < lt.numBanks(); b++)
            if (lt.bankDirty(b) && bankItems_[b].empty())
                activeBanks_.push_back(b);
    }

    cursor_.store(0, std::memory_order_relaxed);
    return queued;
}

std::pair<uint64_t, uint64_t>
ConcurrentConflictBackend::probeSlice()
{
    LineTable& lt = cm_.lineTable_;
    uint64_t banks = 0, probes = 0;
    while (true) {
        uint32_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= activeBanks_.size())
            break;
        uint32_t b = activeBanks_[i];
        banks++;
        // Epoch scrub first (takes the bank lock itself): reclaim the
        // empty entries removeTask deferred to us. (Reclamation totals
        // surface via LineTable::entriesScrubbed.)
        if (lt.deferredScrub() && lt.bankDirty(b))
            lt.scrubEmptyEntries(b);
        if (bankItems_[b].empty())
            continue; // scrub-only claim
        // One lock acquisition for the whole queue: the bank is ours
        // until we release it, and probes are pure reads.
        auto guard = lt.lockBank(b);
        uint64_t seq = lt.bankOpSeq(b);
        for (const Item& it : bankItems_[b]) {
            Task::ConflictProbe& out = it.t->pending.steps[it.step].probe;
            cm_.probeLocked(it.t, it.line, it.isWrite, out);
            out.opSeq = seq;
            out.valid = true;
            probes++;
        }
        bankProbes_[b] += bankItems_[b].size();
    }
    return {banks, probes};
}

// ---- ParallelReplayBackend -------------------------------------------------

ParallelReplayBackend::ParallelReplayBackend(ConflictManager& cm,
                                             ExecutionEngine& engine)
    : cm_(cm), engine_(engine),
      bankItems_(cm.lineTable_.numBanks()),
      bankStaged_(cm.lineTable_.numBanks()),
      bankApplies_(cm.lineTable_.numBanks(), 0)
{
}

uint64_t
ParallelReplayBackend::applies() const
{
    uint64_t n = 0;
    for (uint64_t b : bankApplies_)
        n += b;
    return n;
}

size_t
ParallelReplayBackend::buildQueues(
    const std::vector<ResumeCandidate>& candidates)
{
    LineTable& lt = cm_.lineTable_;
    for (uint32_t b : activeBanks_)
        bankItems_[b].clear();
    activeBanks_.clear();

    size_t queued = 0;
    for (const ResumeCandidate& c : candidates) {
        Task* t = engine_.lookupTask(c.uid);
        if (!t || t->generation != c.gen || t->state != TaskState::Running)
            continue; // stale tag: aborted/discarded since the scan
        Task::PendingRun& p = t->pending;
        if (p.gen != c.gen || !p.hasSteps())
            continue; // nothing recorded (or a stale recording)
        // Only the HEAD step is stageable: it alone has a known serial
        // slot (this resume event's); later steps' slots are scheduled
        // as each applies. Non-access heads (compute, enqueue, finish)
        // mutate coordinator-confined state and stay serial.
        Task::PendingStep& s = p.steps[p.next];
        if (s.kind != Task::PendingStep::Kind::Access || s.applied)
            continue;
        LineAddr line = lineOf(s.addr);
        if (cm_.classifiedLine(line))
            continue; // classified: applies at its slot, bypassing banks
        uint32_t b = lt.bankOf(line);
        if (bankItems_[b].empty())
            activeBanks_.push_back(b);
        bankItems_[b].push_back(
            {t, uint32_t(p.next), line, s.isWrite, c.when, c.seq});
        queued++;
    }
    // Slot-order each bank's queue: staging must happen in consume
    // order so the staged deque can be consumed from the front.
    for (uint32_t b : activeBanks_)
        std::sort(bankItems_[b].begin(), bankItems_[b].end(),
                  [](const Item& a, const Item& x) {
                      return a.when != x.when ? a.when < x.when
                                              : a.seq < x.seq;
                  });
    cursor_.store(0, std::memory_order_relaxed);
    return queued;
}

std::pair<uint64_t, uint64_t>
ParallelReplayBackend::applySlice()
{
    LineTable& lt = cm_.lineTable_;
    uint64_t banks = 0, applies = 0;
    while (true) {
        uint32_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= activeBanks_.size())
            break;
        uint32_t b = activeBanks_[i];
        banks++;
        // Epoch scrub first (takes the bank lock itself): pre-applies
        // must not leave deferred empties to skew a later scan.
        if (lt.deferredScrub() && lt.bankDirty(b))
            lt.scrubEmptyEntries(b);
        auto guard = lt.lockBank(b);
        auto& dq = bankStaged_[b];
        for (const Item& it : bankItems_[b]) {
            // Monotonic staging: an item at or before an already-staged
            // slot (staged in an earlier phase, consume order already
            // committed) cannot be appended in consume order — leave it
            // for the serial path, which fences the bank at its slot.
            if (!dq.empty() && !(dq.back().when < it.when ||
                                 (dq.back().when == it.when &&
                                  dq.back().seq < it.seq)))
                continue;
            Task::PendingStep& s = it.t->pending.steps[it.step];
            // Reuse a still-fresh probe (conflict phase, or an earlier
            // replay pass); otherwise scan under our bank lock. Unlike
            // the serial consume, freshness is re-checked per item: our
            // own pre-applies bump the bank's op-sequence.
            uint64_t seqNow = lt.bankOpSeq(b);
            bool zero;
            uint32_t compared;
            if (s.probe.valid && s.probe.opSeq == seqNow) {
                zero = s.probe.later.empty() &&
                       s.probe.earlierWriters.empty();
                compared = s.probe.compared;
            } else {
                Task::ConflictProbe probe;
                cm_.probeLocked(it.t, it.line, it.isWrite, probe);
                zero = probe.later.empty() && probe.earlierWriters.empty();
                compared = probe.compared;
                probe.opSeq = seqNow;
                probe.valid = true;
                s.probe = std::move(probe);
            }
            if (!zero) {
                // Needs serialized resolution (aborts, forwarded-data
                // dependences). Stop draining this bank: the serial
                // resolve at this item's slot fences the bank, so
                // anything staged past it would only be squashed. The
                // stamped probe above still saves the serial rescan.
                break;
            }
            preApply(it.t, s, it.line, compared);
            dq.push_back({it.t, it.step, it.when, it.seq});
            pendingApplied_.fetch_add(1, std::memory_order_relaxed);
            bankApplies_[b]++;
            applies++;
        }
    }
    return {banks, applies};
}

void
ParallelReplayBackend::preApply(Task* t, Task::PendingStep& s,
                                LineAddr line, uint32_t compared)
{
    // Mirror of the serial apply's functional half (ExecutionEngine::
    // applyAccessEffects, minus resolve/trace/latency, which happen at
    // the consume slot): undo record + memory write + registration, or
    // read-value capture + registration, in the same order with the
    // same first-registration computation.
    LineTable& lt = cm_.lineTable_;
    if (s.isWrite) {
        Task::UndoRec rec{s.addr, s.size, 0};
        std::memcpy(&rec.oldVal, reinterpret_cast<void*>(s.addr), s.size);
        t->undo.push_back(rec);
        std::memcpy(reinterpret_cast<void*>(s.addr), &s.wval, s.size);
        bool first = !t->readSet.count(line);
        s.didInsertSet = t->writeSet.insert(line).second;
        if (s.didInsertSet) {
            s.createdEntry = lt.find(line) == nullptr;
            lt.addWriter(line, t, first);
        }
    } else {
        s.stagedRval = 0;
        std::memcpy(&s.stagedRval, reinterpret_cast<void*>(s.addr),
                    s.size);
        bool first = !t->writeSet.count(line);
        s.didInsertSet = t->readSet.insert(line).second;
        if (s.didInsertSet) {
            s.createdEntry = lt.find(line) == nullptr;
            lt.addReader(line, t, first);
        }
    }
    s.stagedCompared = compared;
    s.applied = true;
}

void
ParallelReplayBackend::squash(const Staged& rec)
{
    Task* t = rec.t;
    Task::PendingStep& s = t->pending.steps[rec.step];
    ssim_assert(s.applied);
    LineAddr line = lineOf(s.addr);
    if (s.isWrite) {
        // The staged write is the task's newest: its undo record is the
        // log's tail (the task is suspended until this step's slot, and
        // every path that could append ran a fence first).
        ssim_assert(!t->undo.empty() && t->undo.back().addr == s.addr &&
                    t->undo.back().size == s.size);
        std::memcpy(reinterpret_cast<void*>(s.addr), &t->undo.back().oldVal,
                    s.size);
        t->undo.pop_back();
    }
    if (s.didInsertSet) {
        cm_.lineTable_.unregisterTail(line, t, s.isWrite, s.createdEntry);
        ssim_assert(!t->footprint.empty() &&
                    t->footprint.back().line == line &&
                    t->footprint.back().isWrite == s.isWrite);
        t->footprint.pop_back();
        if (s.isWrite)
            t->writeSet.erase(line);
        else
            t->readSet.erase(line);
        s.didInsertSet = false;
        s.createdEntry = false;
    }
    s.applied = false;
    squashed_++;
    pendingApplied_.fetch_sub(1, std::memory_order_relaxed);
}

void
ParallelReplayBackend::onSlotConsume(Task* t)
{
    Task::PendingRun& p = t->pending;
    uint32_t b = cm_.lineTable_.bankOf(lineOf(p.steps[p.next].addr));
    auto& dq = bankStaged_[b];
    // The front IS this step: staging is slot-ordered per bank, consumes
    // happen in global slot order, and any out-of-order serial touch of
    // the bank squashed the whole deque first.
    ssim_assert(!dq.empty() && dq.front().t == t &&
                dq.front().step == p.next,
                "staged consume out of bank slot order");
    dq.pop_front();
    consumed_++;
    pendingApplied_.fetch_sub(1, std::memory_order_relaxed);
}

void
ParallelReplayBackend::fenceBank(uint32_t b)
{
    if (pendingApplied_.load(std::memory_order_relaxed) == 0)
        return; // the serial-stretch fast path
    ssim_assert(!inPhase(), "fence during a replay phase");
    auto& dq = bankStaged_[b];
    // Reverse slot order: each squash pops exact vector/log tails.
    while (!dq.empty()) {
        squash(dq.back());
        dq.pop_back();
    }
}

void
ParallelReplayBackend::fenceLine(LineAddr line)
{
    fenceBank(cm_.lineTable_.bankOf(line));
}

void
ParallelReplayBackend::fenceTask(Task* t)
{
    if (pendingApplied_.load(std::memory_order_relaxed) == 0)
        return;
    // Collect the footprint's banks first: squashes pop footprint tails
    // (this task's and others') while we would be iterating.
    std::vector<uint32_t> banks;
    for (const Task::FootRec& rec : t->footprint) {
        uint32_t b = cm_.lineTable_.bankOf(rec.line);
        if (std::find(banks.begin(), banks.end(), b) == banks.end())
            banks.push_back(b);
    }
    for (uint32_t b : banks)
        fenceBank(b);
}

void
ParallelReplayBackend::fenceAll()
{
    if (pendingApplied_.load(std::memory_order_relaxed) == 0)
        return;
    for (uint32_t b = 0; b < uint32_t(bankStaged_.size()); b++)
        fenceBank(b);
}

} // namespace ssim
