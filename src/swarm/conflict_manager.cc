#include "swarm/conflict_manager.h"

#include <algorithm>
#include <unordered_map>

#include "base/logging.h"
#include "swarm/backends/engine_backend.h"
#include "swarm/execution_engine.h"
#include "swarm/task_unit.h"

namespace ssim {

ConflictManager::ConflictManager(const SimConfig& cfg,
                                 EngineBackend& backend, SimStats& stats,
                                 ExecutionEngine& engine)
    : cfg_(cfg), backend_(backend), stats_(stats), engine_(engine),
      lineTable_(cfg.numLineBanks())
{
    // Inline-effects backends disable resume tags, so workers never
    // touch the line table and the bank locks would be pure overhead.
    lineTable_.setLocking(cfg.hostThreads > 1 &&
                          !backend.inlineEffects());
}

void
ConflictManager::trackRead(Task* t, LineAddr line)
{
    bool first = !t->writeSet.count(line);
    if (t->readSet.insert(line).second) {
        auto guard = lineTable_.lockFor(line);
        lineTable_.addReader(line, t, first);
    }
}

void
ConflictManager::trackWrite(Task* t, LineAddr line)
{
    bool first = !t->readSet.count(line);
    if (t->writeSet.insert(line).second) {
        auto guard = lineTable_.lockFor(line);
        lineTable_.addWriter(line, t, first);
    }
}

uint32_t
ConflictManager::resolveConflicts(Task* t, LineAddr line, bool is_write)
{
    // The guard covers the probe AND the reader/writer scans: a
    // concurrent backend must not observe a bank mid-registration.
    auto guard = lineTable_.lockFor(line);
    LineTable::Entry* e = lineTable_.find(line);
    if (!e)
        return 0;

    uint32_t compared = 0;
    std::vector<Task*> toAbort;
    auto considerLater = [&](Task* o) {
        compared++;
        if (o != t && t->before(*o))
            toAbort.push_back(o);
    };
    auto recordDependence = [&](Task* o) {
        // o wrote this line earlier in program order and is uncommitted:
        // t consumes forwarded speculative data and must abort with o.
        if (o != t && o->before(*t))
            o->dependents.emplace_back(t->uid, t->generation);
    };

    if (is_write) {
        for (Task* r : e->readers)
            considerLater(r);
        for (Task* w : e->writers) {
            considerLater(w);
            recordDependence(w);
        }
    } else {
        for (Task* w : e->writers) {
            considerLater(w);
            recordDependence(w);
        }
    }

    // Release the bank before the abort cascade: rollback re-enters the
    // line table (removeTask takes its own per-bank locks).
    if (guard.owns_lock())
        guard.unlock();

    if (!toAbort.empty()) {
        std::sort(toAbort.begin(), toAbort.end());
        toAbort.erase(std::unique(toAbort.begin(), toAbort.end()),
                      toAbort.end());
        stats_.abortsConflict += toAbort.size();
        abortTasks(toAbort, /*discard_roots=*/false, t->tile);
    }
    return compared;
}

void
ConflictManager::abortTasks(const std::vector<Task*>& roots,
                            bool discard_roots, TileId cause_tile)
{
    // Build the abort set: descendants are discarded (their parent's
    // execution attempt, which created them, is rolled back); dependent
    // tasks are aborted and requeued. Discard dominates requeue.
    std::unordered_map<Task*, bool> marked; // -> discard?
    std::vector<std::pair<Task*, bool>> wl;
    for (Task* r : roots)
        wl.emplace_back(r, discard_roots);

    while (!wl.empty()) {
        auto [x, disc] = wl.back();
        wl.pop_back();
        auto it = marked.find(x);
        if (it != marked.end() && (it->second || !disc))
            continue; // already marked at an equal or stronger level
        marked[x] = disc;
        for (Task* child : x->children)
            wl.emplace_back(child, true);
        for (auto [uid, gen] : x->dependents) {
            Task* dep = engine_.lookupTask(uid);
            if (dep && dep->generation == gen &&
                (dep->state == TaskState::Running ||
                 dep->state == TaskState::Finished)) {
                wl.emplace_back(dep, false);
            }
        }
    }

    // Roll back in reverse program order: per line, chronological write
    // order equals program order among live writers (DESIGN.md §5.3), so
    // descending (ts, uid) restoration is exact.
    std::vector<Task*> order;
    order.reserve(marked.size());
    for (auto& [task, disc] : marked)
        order.push_back(task);
    std::sort(order.begin(), order.end(), [](Task* a, Task* b) {
        return TaskOrder()(b, a); // descending
    });

    std::vector<TileId> touched;
    for (Task* x : order) {
        touched.push_back(x->tile);
        rollbackTask(x, cause_tile);
        if (marked[x])
            discardTask(x);
        else
            requeueTask(x);
    }

    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (TileId tile : touched) {
        engine_.retryFinishPending(tile);
        engine_.scheduleDispatch(tile);
    }
}

void
ConflictManager::rollbackTask(Task* t, TileId cause_tile)
{
    bool hadRun = (t->state == TaskState::Running ||
                   t->state == TaskState::Finished);

    // Abort message to the task's tile.
    backend_.abortMessage(cause_tile, t->tile);

    uint64_t rollbackCycles = 0;
    if (hadRun) {
        // Restore the undo log in reverse; the rollback writes'
        // modeled cost (memory hierarchy + abort traffic) comes from
        // the backend.
        CoreId rbCore = t->runningOn != Task::kNoCore
                            ? t->runningOn
                            : cfg_.coreId(t->tile, 0);
        for (auto it = t->undo.rbegin(); it != t->undo.rend(); ++it)
            std::memcpy(reinterpret_cast<void*>(it->addr), &it->oldVal,
                        it->size);
        for (LineAddr line : t->writeSet)
            rollbackCycles += backend_.rollbackLineCost(rbCore, line);
        stats_.tasksAborted++;
        stats_.coreCycles[size_t(CycleBucket::Abort)] +=
            t->execCycles + rollbackCycles;
    }

    lineTable_.removeTask(t);

    if (t->state == TaskState::Running) {
        if (t->coro) {
            t->coro.destroy();
            t->coro = {};
        }
        engine_.freeCore(t);
    }
}

void
ConflictManager::discardTask(Task* t)
{
    TaskUnit& unit = engine_.unit(t->tile);
    switch (t->state) {
      case TaskState::InFlight:
        unit.unfinished.erase(t);
        ssim_assert(unit.inFlight > 0);
        unit.inFlight--;
        break;
      case TaskState::Idle:
        if (t->spilled)
            unit.spillBuf.erase(t);
        else
            unit.idle.erase(t);
        unit.unfinished.erase(t);
        break;
      case TaskState::Running: // core already freed by rollbackTask
        unit.unfinished.erase(t);
        break;
      case TaskState::Finished:
        unit.commitQ.erase(t);
        break;
    }
    if (t->parent) {
        auto& sib = t->parent->children;
        sib.erase(std::remove(sib.begin(), sib.end(), t), sib.end());
    }
    // Children of a discarded task are always in the same abort set
    // (marked discard), so no dangling child->parent pointers survive;
    // clear ours defensively.
    for (Task* c : t->children)
        c->parent = nullptr;
    engine_.destroyTask(t);
}

void
ConflictManager::requeueTask(Task* t)
{
    TaskUnit& unit = engine_.unit(t->tile);
    ssim_assert(t->state == TaskState::Running ||
                t->state == TaskState::Finished,
                "only executed tasks are requeued");
    if (t->state == TaskState::Finished) {
        unit.commitQ.erase(t);
        unit.unfinished.insert(t); // it left unfinished when it finished
    }
    // Children created by the rolled-back attempt are discarded in the
    // same cascade; drop our references.
    t->children.clear();
    t->generation++;
    t->resetSpecState();
    t->state = TaskState::Idle;
    unit.idle.insert(t);
}

} // namespace ssim
