#include "swarm/shard.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sched.h>

#include "base/logging.h"

namespace ssim {

namespace {

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

/// SWARMSIM_SHARD_TRACE=1: dump every wire send/consume to stderr —
/// the first tool to reach for when a sharded run reports divergence
/// (diff the owner's send log against the consumer's recv log).
bool
wireTrace()
{
    static const bool on = [] {
        const char* e = std::getenv("SWARMSIM_SHARD_TRACE");
        return e && e[0] == '1';
    }();
    return on;
}

} // namespace

ShardGroup::ShardGroup(uint32_t nshards) : nshards_(nshards)
{
    ssim_assert(nshards >= 2, "a shard group needs at least 2 shards");
    size_t stepBytes =
        alignUp(sizeof(StepRing) * nshards * nshards, 64);
    size_t progBytes = alignUp(sizeof(ProgressRing) * nshards, 64);
    size_t resBytes = alignUp(sizeof(ResultBuf) * nshards, 64);
    region_ = ShmRegion(stepBytes + progBytes + resBytes);

    char* base = region_.base();
    steps_ = reinterpret_cast<StepRing*>(base);
    progress_ = reinterpret_cast<ProgressRing*>(base + stepBytes);
    results_ = reinterpret_cast<ResultBuf*>(base + stepBytes + progBytes);
    for (uint32_t i = 0; i < nshards * nshards; i++)
        new (&steps_[i]) StepRing();
    for (uint32_t i = 0; i < nshards; i++) {
        new (&progress_[i]) ProgressRing();
        new (&results_[i]) ResultBuf();
    }
}

ShardGroup::StepRing&
ShardGroup::stepRing(uint32_t from, uint32_t to)
{
    ssim_assert(from < nshards_ && to < nshards_ && from != to);
    return steps_[from * nshards_ + to];
}

ShardGroup::ProgressRing&
ShardGroup::progressRing(uint32_t s)
{
    ssim_assert(s < nshards_);
    return progress_[s];
}

void
ShardGroup::publishResult(uint32_t shard, const std::string& text)
{
    ssim_assert(shard < nshards_);
    ssim_assert(text.size() <= kResultBytes,
                "shard snapshot exceeds the result buffer");
    ResultBuf& buf = results_[shard];
    std::memcpy(buf.text, text.data(), text.size());
    buf.len.store(text.size(), std::memory_order_release);
}

std::string
ShardGroup::takeResult(uint32_t shard)
{
    ssim_assert(shard < nshards_);
    ResultBuf& buf = results_[shard];
    uint64_t len = buf.len.load(std::memory_order_acquire);
    return std::string(buf.text, len);
}

ShardContext::ShardContext(const TopologySpec& topo, uint32_t shard,
                           ShardGroup& group)
    : topo_(topo), shard_(shard), group_(group),
      pending_(group.numShards())
{
    ssim_assert(shard < group.numShards());
    ssim_assert(topo.numShards() == group.numShards(),
                "topology (%u shards) does not match the fabric (%u)",
                topo.numShards(), group.numShards());
}

void
ShardContext::drainIncoming()
{
    for (uint32_t s = 0; s < group_.numShards(); s++) {
        if (s == shard_)
            continue;
        WireStep w;
        while (group_.stepRing(s, shard_).tryPop(w))
            pending_[s].push_back(w);
    }
}

void
ShardContext::sendStep(const WireStep& w)
{
    if (wireTrace())
        std::fprintf(stderr, "[wire] shard %u SEND %s uid=%llu gen=%llu "
                             "cycle=%llu\n",
                     shard_, wireKindName(w.kind),
                     (unsigned long long)w.uid, (unsigned long long)w.gen,
                     (unsigned long long)w.cycle);
    for (uint32_t s = 0; s < group_.numShards(); s++) {
        if (s == shard_)
            continue;
        ShardGroup::StepRing& ring = group_.stepRing(shard_, s);
        while (!ring.tryPush(w)) {
            // Deadlock-freedom: never block a peer while blocked
            // ourselves — absorb whatever has arrived, then yield to
            // the (strictly behind) consumer of this ring.
            drainIncoming();
            sched_yield();
        }
    }
    stepsSent_++;
}

WireStep
ShardContext::recvStep(uint32_t from)
{
    ssim_assert(from < group_.numShards() && from != shard_);
    WireStep w;
    if (!pending_[from].empty()) {
        w = pending_[from].front();
        pending_[from].pop_front();
    } else {
        ShardGroup::StepRing& ring = group_.stepRing(from, shard_);
        while (!ring.tryPop(w)) {
            drainIncoming();
            if (!pending_[from].empty())
                break;
            sched_yield();
        }
        if (!pending_[from].empty()) {
            w = pending_[from].front();
            pending_[from].pop_front();
        }
    }
    if (w.magic != WireStep::kMagic)
        fatal("shard %u: corrupt wire record from shard %u "
              "(magic %08x)",
              shard_, from, w.magic);
    if (wireTrace())
        std::fprintf(stderr, "[wire] shard %u RECV %s uid=%llu gen=%llu "
                             "cycle=%llu (from %u)\n",
                     shard_, wireKindName(w.kind),
                     (unsigned long long)w.uid, (unsigned long long)w.gen,
                     (unsigned long long)w.cycle, from);
    stepsRecv_++;
    return w;
}

void
ShardContext::sendProgress(const WireProgress& p)
{
    ShardGroup::ProgressRing& ring = group_.progressRing(shard_);
    while (!ring.tryPush(p)) {
        drainIncoming();
        sched_yield();
    }
    progressMsgs_++;
}

} // namespace ssim
