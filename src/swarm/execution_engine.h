/**
 * @file
 * The execution mechanism of the speculative pipeline: per-tile task
 * units, per-core execution slots, task creation/arrival, dispatch,
 * coroutine resumption, commit-queue admission, and wait-cycle
 * accounting.
 *
 * The engine is pure mechanism. Policy decisions live in the
 * collaborating subsystems it is wired to: placement in the
 * SpatialScheduler, conflict resolution and abort cascades in the
 * ConflictManager, spilling/stealing in the CapacityManager, and commit
 * arbitration in the CommitController (which drives the engine through
 * retryFinishPending/scheduleDispatch).
 *
 * Every event the engine schedules is tile-affine and goes through that
 * tile's event lane (EventQueue::scheduleOn): dispatch retries, task
 * arrivals, and coroutine resumptions — including those triggered by
 * the CapacityManager's spill/steal decisions and the Mesh-latency
 * arrival delays, which are charged synchronously and materialize as
 * lane events here. Only the CommitController's GVT/LB epochs use the
 * global lane.
 *
 * Parallel host mode (sim/parallel_executor.h): the engine is the
 * ParallelBackend. preResume() runs on WORKER threads and only
 * pre-executes a task's pure coroutine segments, recording the
 * requested effects into Task::pending; every other method — including
 * the apply side of those recordings inside resumeCoro() — runs on the
 * coordinator thread in exact event order. Resume events are tagged
 * (EventQueue::scheduleResumeOn) so the executor can find them. With
 * cfg.concurrentConflicts, recorded accesses additionally carry
 * worker-side conflict probes (Task::ConflictProbe, taken in the
 * executor's conflict-check phase); applyPendingStep hands each step's
 * probe to the ConflictManager, which consumes it only while its bank
 * is provably unchanged.
 *
 * The engine never computes a latency itself: every cost — task
 * descriptor delivery, memory access, compute charge, and the Swarm
 * instruction overheads — comes from the EngineBackend it is wired to
 * (swarm/backends/engine_backend.h). The cycle-accurate TimingBackend
 * is the default; the FunctionalBackend collapses the timing model for
 * fast functional runs. Backend calls happen only on the apply paths
 * (coordinator thread, event order), never during record-mode
 * pre-execution.
 */
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/parallel_executor.h"
#include "swarm/scheduler.h"
#include "swarm/task.h"
#include "swarm/task_unit.h"

namespace ssim {

class CapacityManager;
class CommitController;
class ConflictManager;
class EngineBackend;
class Machine;
class ParallelReplayBackend;
class ShardContext;

class ExecutionEngine : public ParallelBackend
{
  public:
    /** One core's execution slot. */
    struct Core
    {
        enum class Wait : uint8_t { None, Empty, StallCQ };
        Task* task = nullptr;
        Wait wait = Wait::None;
        Cycle waitStart = 0;
        bool finishPending = false; ///< finished task waiting for a CQ slot
        bool everDispatched = false;
    };

    ExecutionEngine(const SimConfig& cfg, EventQueue& eq,
                    EngineBackend& backend, SimStats& stats,
                    SpatialScheduler& sched, Machine* machine);
    ~ExecutionEngine();
    ExecutionEngine(const ExecutionEngine&) = delete;
    ExecutionEngine& operator=(const ExecutionEngine&) = delete;

    /** Late wiring of the policy subsystems (they need the engine first). */
    void wire(ConflictManager* conflict, CapacityManager* capacity,
              CommitController* commit);

    /**
     * Arm the cross-shard seam (swarm/shard.h): this engine becomes one
     * replica of a sharded run. Coroutine frames are created and run
     * only for tasks on tiles this shard owns; their effects broadcast
     * as wire records, and foreign tasks' resume events consume the
     * owner's records instead of running a body. Must be set before
     * run(); requires the serial event loop (hostThreads == 1).
     */
    void setShard(ShardContext* shard) { shard_ = shard; }

    // ---- Task lifecycle ---------------------------------------------------
    Task* createTask(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                     const std::array<uint64_t, 3>& args, uint8_t nargs,
                     Task* parent, TileId src_tile);
    /** Place and create an initial (root) task before run(). */
    void enqueueInitial(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                        const std::array<uint64_t, 3>& args, uint8_t n);
    void scheduleDispatch(TileId tile);
    void retryFinishPending(TileId tile);
    /** Admit a finished task to the commit queue; may displace a victim. */
    bool tryTakeCommitSlot(Task* t);
    void freeCore(Task* t);
    Task* lookupTask(uint64_t uid) const;
    /** Remove a task from the live registry and delete it. */
    void destroyTask(Task* t);
    /**
     * Abort @p t at the current cycle via a deferred event. Used when a
     * classification demotion's abort cascade reaches the very task
     * whose access triggered it: that task's coroutine frame is live on
     * the host stack beneath the demotion, so a synchronous rollback
     * would free live frames. The event's global sequence number orders
     * it before the task's own resume (scheduled later in the same
     * event), so the doomed attempt can never run again — let alone
     * finish or commit — first.
     */
    void scheduleDoomedAbort(Task* t, TileId cause_tile);

    // ---- Awaiter entry points (forwarded from Machine) --------------------
    // In record mode (Task::pending.recording, set by preResume on a
    // worker) these capture the request into the task; otherwise they
    // apply it through the timing model immediately.
    void issueAccess(Task* t, swarm::MemAwaiter* aw);
    void issueReduce(Task* t, const swarm::ReduceAwaiter& aw);
    void issueCompute(Task* t, uint32_t cycles);
    void issueEnqueue(Task* t, const swarm::EnqueueAwaiter& aw);

    // Inline-effects fast path (awaiter await_ready): when the backend
    // declares inlineEffects(), apply the effect synchronously — same
    // bodies, no resume event — and keep the coroutine running. Return
    // false (suspend path) when inline mode is off or the task is in
    // record mode.
    bool tryInlineAccess(Task* t, swarm::MemAwaiter* aw);
    bool tryInlineReduce(Task* t, const swarm::ReduceAwaiter& aw);
    bool tryInlineCompute(Task* t, uint32_t cycles);
    bool tryInlineEnqueue(Task* t, const swarm::EnqueueAwaiter& aw);

    /**
     * ParallelBackend: pre-execute (uid, gen)'s pure coroutine segments
     * in record mode, running ahead through data-independent effects
     * (compute charges, enqueues, writes) and parking at the first read
     * or at completion. Returns the number of steps recorded (0: stale
     * tag). WORKER-THREAD callable: touches only the task's own state
     * (coroutine frame, Task::pending) and read-only engine state;
     * never the event queue, stats, or other tasks.
     */
    uint32_t preResume(uint64_t uid, uint64_t gen) override;

    // ---- State access for the policy subsystems ---------------------------
    TaskUnit& unit(TileId t) { return units_[t]; }
    const TaskUnit& unit(TileId t) const { return units_[t]; }
    uint32_t numTiles() const { return uint32_t(units_.size()); }
    Core& core(CoreId c) { return cores_[c]; }
    const Core& core(CoreId c) const { return cores_[c]; }
    uint64_t tasksLive() const { return tasksLive_; }

    // ---- Wait accounting --------------------------------------------------
    void enterWait(Core& core, Core::Wait w);
    void leaveWait(Core& core, CycleBucket bucket);
    /** Flush trailing wait intervals at end of run (cores idle at exit). */
    void flushWaitIntervals(Cycle end);

  private:
    /// Run-ahead bound per preResume: limits recorded-step memory and
    /// worker-slice skew; exceeding it just parks the coroutine on a
    /// continuable step (resumed inline by the coordinator later).
    static constexpr uint32_t kMaxRunahead = 64;

    /// Inline-mode body issue: a body event that finds an older
    /// same-tile body still pending re-schedules itself this many
    /// cycles out (resumeCoro). Small enough to stay responsive, large
    /// enough that a defer chain costs a handful of events, not one
    /// per cycle.
    static constexpr Cycle kInlineIssueDefer = 8;

    void arriveTask(uint64_t uid, uint64_t gen);
    void tryDispatch(TileId tile);
    void dispatchOn(TileId tile, uint32_t idx, Task* t);
    void resumeCoro(uint64_t uid, uint64_t gen);
    void finishTaskAttempt(Task* t);
    /** Schedule @p t's next (tagged) resume @p delta cycles out. */
    void scheduleResume(Task* t, Cycle delta);
    /** Apply one recorded step through the serial engine paths. */
    void applyPendingStep(Task* t);
    /**
     * Sharded mode, foreign task: consume the owner shard's wire
     * records at this resume event's slot and apply them through the
     * serial engine paths (one record for suspending backends, a
     * Finish-terminated sequence for inline-effects backends).
     */
    void consumeRemoteSteps(Task* t);
    /**
     * The timing-model body of issueAccess (record mode bypasses it).
     * @p probe: the step's worker-side conflict probe, if any (consumed
     * by the ConflictManager when still fresh).
     */
    void issueAccessImpl(Task* t, Addr addr, uint32_t size, bool is_write,
                         uint64_t wval, uint64_t* rval,
                         Task::ConflictProbe* probe = nullptr);
    /**
     * The shared effect body of an applied access (conflict resolution,
     * functional load/store + undo, footprint, backend cost); returns
     * the access latency. issueAccessImpl schedules the resume with it;
     * the inline path only accrues it.
     */
    uint32_t applyAccessEffects(Task* t, Addr addr, uint32_t size,
                                bool is_write, uint64_t wval,
                                uint64_t* rval,
                                Task::ConflictProbe* probe = nullptr);
    /**
     * The effect body of a reduce op (ctx.reduce): buffered on
     * classified Reduction lines, otherwise a tracked read-modify-write
     * with write-side conflict resolution. Returns the access latency.
     */
    uint32_t applyReduceEffects(Task* t, Addr addr, int64_t delta);
    void issueReduceImpl(Task* t, Addr addr, int64_t delta);

    const SimConfig& cfg_;
    EventQueue& eq_;
    EngineBackend& backend_;
    SimStats& stats_;
    SpatialScheduler& sched_;
    Machine* machine_; ///< only for constructing TaskCtx (the public API)

    ConflictManager* conflict_ = nullptr;
    CapacityManager* capacity_ = nullptr;
    CommitController* commit_ = nullptr;
    /// Cached conflict_->replayBackend(): non-null iff parallel replay
    /// is armed. applyPendingStep consults it to consume worker
    /// pre-applies at their serial slots.
    ParallelReplayBackend* replay_ = nullptr;
    /// Cross-shard seam (null = single-process). Owned by the harness
    /// shard runner; see setShard().
    ShardContext* shard_ = nullptr;

    /// Cached backend.inlineEffects(): awaiter effects apply inline
    /// (await_ready) and resume events go untagged, so the parallel
    /// executor never pre-resumes an inline-mode task.
    const bool inline_;

    std::vector<TaskUnit> units_; ///< one per tile
    std::vector<Core> cores_;     ///< flat, coreId-indexed
    std::unordered_map<uint64_t, Task*> liveTasks_;
    uint64_t nextUid_ = 0;
    uint64_t tasksLive_ = 0;
    uint32_t rrInitTile_ = 0; ///< round-robin placement of initial tasks
};

} // namespace ssim
