#include "swarm/spec.h"

#include <algorithm>

#include "base/logging.h"

namespace ssim {

void
LineTable::scrub(LineAddr line, Task* t, bool from_writers)
{
    auto it = map_.find(line);
    if (it == map_.end())
        return;
    auto& vec = from_writers ? it->second.writers : it->second.readers;
    vec.erase(std::remove(vec.begin(), vec.end(), t), vec.end());
    if (it->second.readers.empty() && it->second.writers.empty())
        map_.erase(it);
}

void
LineTable::removeTask(Task* t)
{
    for (LineAddr line : t->readSet)
        scrub(line, t, false);
    for (LineAddr line : t->writeSet)
        scrub(line, t, true);
}

} // namespace ssim
