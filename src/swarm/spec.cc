#include "swarm/spec.h"

#include <algorithm>

#include "base/logging.h"

namespace ssim {

LineTable::LineTable(uint32_t nbanks)
    : banks_(nbanks ? nbanks : 1), peaks_(nbanks ? nbanks : 1, 0),
      opSeqs_(nbanks ? nbanks : 1, 0), dirty_(nbanks ? nbanks : 1, 0),
      locks_(std::make_unique<std::mutex[]>(nbanks ? nbanks : 1)),
      lockStats_(nbanks ? nbanks : 1)
{
}

uint64_t
LineTable::lockAcquired() const
{
    uint64_t n = 0;
    for (const LockStats& s : lockStats_)
        n += s.acquired;
    return n;
}

uint64_t
LineTable::lockContended() const
{
    uint64_t n = 0;
    for (const LockStats& s : lockStats_)
        n += s.contended;
    return n;
}

LineEntry&
LineTable::entryFor(LineAddr line)
{
    uint32_t b = bankOf(line);
    auto& bank = banks_[b];
    Entry& e = bank[line];
    if (bank.size() > peaks_[b])
        peaks_[b] = bank.size();
    return e;
}

void
LineTable::addReader(LineAddr line, Task* t, bool first_for_task)
{
    Entry& e = entryFor(line);
    e.readers.push_back(t);
    opSeqs_[bankOf(line)]++;
    t->footprint.push_back(
        {&e, line, /*isWrite=*/false, /*ownsLine=*/first_for_task});
}

void
LineTable::addWriter(LineAddr line, Task* t, bool first_for_task)
{
    Entry& e = entryFor(line);
    e.writers.push_back(t);
    opSeqs_[bankOf(line)]++;
    t->footprint.push_back(
        {&e, line, /*isWrite=*/true, /*ownsLine=*/first_for_task});
}

void
LineTable::unregisterTail(LineAddr line, Task* t, bool is_write,
                          bool erase_if_empty)
{
    uint32_t b = bankOf(line);
    auto guard = lockBank(b);
    auto& bank = banks_[b];
    auto it = bank.find(line);
    ssim_assert(it != bank.end());
    auto& vec = is_write ? it->second.writers : it->second.readers;
    ssim_assert(!vec.empty() && vec.back() == t);
    vec.pop_back();
    opSeqs_[b]++;
    if (erase_if_empty) {
        ssim_assert(it->second.readers.empty() &&
                    it->second.writers.empty());
        bank.erase(it);
    }
}

void
LineTable::removeTask(Task* t)
{
    // Pass 1: scrub the task from every vector it registered in. Entry
    // pointers stay valid throughout (unordered_map references survive
    // rehash, and no entry this task appears in can be erased yet — a
    // non-empty entry never is, under locking or not).
    for (const Task::FootRec& rec : t->footprint) {
        auto guard = lockFor(rec.line);
        auto& vec = rec.isWrite ? rec.entry->writers : rec.entry->readers;
        vec.erase(std::remove(vec.begin(), vec.end(), t), vec.end());
        opSeqs_[bankOf(rec.line)]++;
    }
    // Pass 2: erase entries the scrub emptied. Exactly one record per
    // (task, line) owns the erase; under locking the entry is re-probed
    // because a concurrent removeTask may have erased it already. Under
    // deferred scrub the erase is left for scrubEmptyEntries (the
    // conflict-check phase or the end-of-run sweep): just mark the bank
    // dirty. A lingering empty entry scans identically to a missing one.
    for (const Task::FootRec& rec : t->footprint) {
        if (!rec.ownsLine)
            continue;
        auto guard = lockFor(rec.line);
        uint32_t b = bankOf(rec.line);
        if (deferredScrub_) {
            dirty_[b] = 1;
        } else if (locking_) {
            auto& bank = banks_[b];
            auto it = bank.find(rec.line);
            if (it != bank.end() && it->second.readers.empty() &&
                it->second.writers.empty()) {
                bank.erase(it);
            }
        } else if (rec.entry->readers.empty() &&
                   rec.entry->writers.empty()) {
            banks_[b].erase(rec.line);
        }
    }
    t->footprint.clear();
}

uint64_t
LineTable::scrubEmptyEntries(uint32_t bank)
{
    auto guard = lockBank(bank);
    uint64_t n = 0;
    auto& map = banks_[bank];
    for (auto it = map.begin(); it != map.end();) {
        if (it->second.readers.empty() && it->second.writers.empty()) {
            it = map.erase(it);
            n++;
        } else {
            ++it;
        }
    }
    dirty_[bank] = 0;
    if (n)
        scrubbed_.fetch_add(n, std::memory_order_relaxed);
    return n;
}

uint64_t
LineTable::scrubAllDirty()
{
    uint64_t n = 0;
    for (uint32_t b = 0; b < uint32_t(banks_.size()); b++)
        if (dirty_[b])
            n += scrubEmptyEntries(b);
    return n;
}

size_t
LineTable::numLines() const
{
    size_t n = 0;
    for (const auto& bank : banks_)
        n += bank.size();
    return n;
}

} // namespace ssim
