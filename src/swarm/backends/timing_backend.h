/**
 * @file
 * TimingBackend: the paper's cycle-accurate cost model behind the
 * EngineBackend seam.
 *
 * This is the pre-existing engine timing path extracted verbatim: task
 * descriptors pay mesh hop latency and inject Task-class flits, memory
 * accesses go through the three-level cache hierarchy and MESI
 * directory (mem/memory_system.h) and pay Table II's remote
 * conflict-check costs, and the Swarm instruction overheads come from
 * SimConfig. Behavior is bit-identical to the pre-refactor engine — the
 * golden digests in tests/test_determinism.cc prove it.
 */
#pragma once

#include <memory>

#include "swarm/backends/engine_backend.h"

#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/config.h"

namespace ssim {

class TimingBackend : public EngineBackend
{
  public:
    TimingBackend(const SimConfig& cfg, Mesh& mesh, MemorySystem& mem)
        : cfg_(cfg), mesh_(mesh), mem_(mem)
    {
    }

    const char* name() const override { return "timing"; }

    uint32_t taskSendCost(TileId src, TileId dst) override;
    uint32_t accessCost(CoreId core, Addr addr, bool is_write,
                        uint32_t compared) override;

    uint32_t computeCost(uint32_t cycles) override { return cycles; }
    uint32_t enqueueCost() override { return cfg_.enqueueCost; }
    uint32_t dequeueCost(const DispatchInfo&) override
    {
        return cfg_.dequeueCost;
    }
    uint32_t finishCost() override { return cfg_.finishCost; }

    // Abort traffic (control flits + rollback writes through the memory
    // system). Reached only from the ConflictManager's serialized
    // resolve phase — under concurrent conflict checks, worker-side
    // bank probes never price anything here.
    void abortMessage(TileId cause_tile, TileId victim_tile) override;
    uint32_t rollbackLineCost(CoreId core, LineAddr line) override;

  private:
    const SimConfig& cfg_;
    Mesh& mesh_;
    MemorySystem& mem_;
};

/** Registry factory (policies::registerBackend signature). */
std::unique_ptr<EngineBackend> makeTimingBackend(const SimConfig& cfg,
                                                 Mesh& mesh,
                                                 MemorySystem& mem);

} // namespace ssim
