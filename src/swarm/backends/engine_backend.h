/**
 * @file
 * EngineBackend: the ExecutionEngine's pluggable cost model.
 *
 * PR 3 carved two seams inside the engine: the record/apply split of
 * every awaiter effect, and the ParallelBackend pre-resume hook. This
 * interface promotes the third seam — every point where the engine
 * consults the *timing model* — into a first-class abstraction, so the
 * same speculation machinery (ConflictManager, CommitController,
 * CapacityManager, the record/apply paths) can run under different
 * notions of simulated time:
 *
 *  - TimingBackend (timing_backend.h): the paper's cycle-accurate
 *    model — NoC hop latencies, the three-level cache hierarchy and
 *    directory, Table II conflict-check costs. The default.
 *  - FunctionalBackend (functional_backend.h): collapses the timing
 *    model to bounded pseudo-cycles for fast functional simulation.
 *
 * A backend decides only HOW LONG each engine effect takes (and what
 * NoC traffic it injects); it never decides WHAT happens. Functional
 * memory, undo logging, conflict resolution, commit order, and task
 * lifecycle stay in the engine and its collaborators, which is what
 * keeps every backend's execution speculation-correct and
 * deterministic. See docs/backends.md for the full contract and a
 * checklist for writing a new backend.
 *
 * THREADING CONTRACT: every method is called on the coordinator thread,
 * in event order, from the engine's apply paths — never from
 * ParallelBackend::preResume worker segments, and never from the
 * concurrent conflict-check phase (workers only PROBE banks there; the
 * resolve half that prices abort traffic through abortMessage /
 * rollbackLineCost stays serialized on the coordinator and asserts it
 * is not inside a probe phase — swarm/conflict_manager.h). A backend
 * may therefore mutate its own model state (caches, directories)
 * without locking, but must be deterministic: cost must be a function
 * of the call sequence so far, never of wall-clock, host addresses, or
 * global mutable state shared across Machine instances.
 */
#pragma once

#include <cstdint>

#include "base/types.h"

namespace ssim {

class EngineBackend
{
  public:
    virtual ~EngineBackend() = default;

    /** Registry name (see policies::registerBackend). */
    virtual const char* name() const = 0;

    /**
     * True if awaiter effects should be applied INLINE: the awaiter's
     * await_ready applies the effect synchronously and the coroutine
     * never suspends, so a task's whole body executes within its
     * single resume event — no per-access latency events at all. The
     * effects and their order within the body are identical to the
     * suspending path; what changes is that other tasks' events no
     * longer interleave *inside* a body (task bodies become atomic
     * units of simulated time). Inline mode also disables resume-event
     * tagging, so the parallel host executor finds no pre-resumable
     * segments and hostThreads > 1 degrades to the serial loop — the
     * two optimizations are alternatives, not a composition.
     *
     * The timing backend must return false: spreading a body across
     * per-access events at modeled latencies IS the timing model.
     */
    virtual bool inlineEffects() const { return false; }

    /**
     * Dispatch notification: the task whose function pointer is
     * @p task_fn (opaque to backends — never dereferenced) is about to
     * start an execution attempt on @p core. Called on the coordinator
     * from ExecutionEngine::dispatchOn immediately before the matching
     * dequeueCost, once per attempt (a re-dispatch after an abort
     * notifies again). Default no-op; the trace backends use it to key
     * cost streams by task type without widening every cost method's
     * signature.
     */
    virtual void noteDispatch(CoreId core, const void* task_fn)
    {
        (void)core;
        (void)task_fn;
    }

    /**
     * Cost of delivering a task descriptor from @p src to @p dst tile
     * (ExecutionEngine::createTask schedules the arrival this many
     * cycles out). Injects any NoC traffic the delivery generates.
     */
    virtual uint32_t taskSendCost(TileId src, TileId dst) = 0;

    /**
     * Cost of one conflict-checked memory access by @p core, after
     * conflict resolution compared @p compared commit-queue timestamps.
     * Called once per applied access, in event order — a stateful model
     * (caches, directory) updates itself here. The functional effect
     * (load/store, undo log, footprint registration) has already been
     * applied by the engine.
     */
    virtual uint32_t accessCost(CoreId core, Addr addr, bool is_write,
                                uint32_t compared) = 0;

    /** Cost charged for an explicit ctx.compute(@p cycles) awaiter. */
    virtual uint32_t computeCost(uint32_t cycles) = 0;

    /** Cost of the enqueue instruction (child-task creation). */
    virtual uint32_t enqueueCost() = 0;

    /**
     * Scheduling signals the engine offers alongside a dequeueCost
     * call. Backends may ignore all of them (the timing backend
     * charges the flat Table II cost); a collapsed-clock backend can
     * use them as backpressure and ordering signals — conflict aborts
     * only happen when a later-timestamp body runs before an earlier
     * one, so pacing dispatches by these directly shrinks the abort
     * surface (see functional_backend.h and trace_replay_backend.h).
     */
    struct DispatchInfo
    {
        /// The dispatching tile's commit-queue occupancy: how far
        /// execution has run ahead of the commit frontier.
        uint32_t cqOccupancy = 0;
        /// Same-tile cores currently running a task with a *smaller*
        /// timestamp than the one being dispatched: how far this
        /// dispatch jumps ahead of tasks that should logically run
        /// first.
        uint32_t olderRunning = 0;
        /// Which execution attempt this is for the task (0 = first
        /// dispatch; re-dispatches after aborts/requeues count up).
        /// Lets a backend back off re-execution of contended tasks.
        uint32_t attempt = 0;
    };

    /** Cost of the dequeue instruction (task dispatch onto a core). */
    virtual uint32_t dequeueCost(const DispatchInfo& info) = 0;

    /** Cost of the finish instruction (task completion). */
    virtual uint32_t finishCost() = 0;

    // ---- Abort-path costs (called by the ConflictManager) --------------

    /**
     * Deliver the abort message for a task on @p victim_tile, caused by
     * an event on @p cause_tile (injects its NoC traffic).
     */
    virtual void abortMessage(TileId cause_tile, TileId victim_tile) = 0;

    /**
     * Cost of rolling back one speculatively-written line of an aborted
     * task that ran on @p core: the rollback write goes back through
     * the memory system and its traffic is abort traffic. The summed
     * cost lands in the abort cycle bucket.
     */
    virtual uint32_t rollbackLineCost(CoreId core, LineAddr line) = 0;
};

} // namespace ssim
