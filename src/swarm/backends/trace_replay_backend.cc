#include "swarm/backends/trace_replay_backend.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

#include "base/logging.h"
#include "sim/config.h"

namespace ssim {

const char*
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Read: return "rd";
      case TraceKind::Write: return "wr";
      case TraceKind::Dequeue: return "deq";
      case TraceKind::TaskSend: return "send";
      case TraceKind::Enqueue: return "enq";
      case TraceKind::Finish: return "fin";
      case TraceKind::Rollback: return "rb";
      case TraceKind::NumKinds: break;
    }
    return "?";
}

// ---- Trace file format ---------------------------------------------------
//
//   swarmsim-trace v1
//   digest <resultDigest, hex>
//   types <numTypes>
//   k <type> <kind 0..6> <line, hex> <count> <sum> <nhead> <head costs...>
//   ...
//   end
//
// Sorted by (type, kind, line) so a save is byte-deterministic; the "end"
// sentinel makes truncation detectable (satellite: malformed-trace tests).

static constexpr const char* kTraceMagic = "swarmsim-trace v1";

bool
TraceData::save(const std::string& path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("TraceData: cannot open '%s' for writing", path.c_str());
        return false;
    }
    f << kTraceMagic << "\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "digest %" PRIx64 "\n",
                  recordResultDigest);
    f << buf;
    f << "types " << numTypes << "\n";

    std::vector<const std::pair<const TraceKey, CostStream>*> sorted;
    sorted.reserve(streams.size());
    for (const auto& kv : streams)
        sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(), [](auto* a, auto* b) {
        const TraceKey& x = a->first;
        const TraceKey& y = b->first;
        return std::tie(x.type, x.kind, x.line) <
               std::tie(y.type, y.kind, y.line);
    });
    for (const auto* kv : sorted) {
        const TraceKey& k = kv->first;
        const CostStream& s = kv->second;
        std::snprintf(buf, sizeof(buf),
                      "k %u %u %" PRIx64 " %" PRIu64 " %" PRIu64 " %zu", k.type,
                      uint32_t(k.kind), k.line, s.count, s.sum,
                      s.head.size());
        f << buf;
        for (uint32_t c : s.head)
            f << ' ' << c;
        f << "\n";
    }
    f << "end\n";
    f.flush();
    return bool(f);
}

namespace {

// Strict unsigned parse in the ClassificationMap::load idiom: the whole
// token must consume, no range overflow.
bool
parseU64(const std::string& tok, int base, uint64_t& out)
{
    if (tok.empty())
        return false;
    char* end = nullptr;
    errno = 0;
    uint64_t v = strtoull(tok.c_str(), &end, base);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

} // namespace

bool
TraceData::load(const std::string& path)
{
    std::ifstream f(path);
    if (!f) {
        warn("TraceData: cannot open '%s'", path.c_str());
        return false;
    }
    std::string lineStr;
    if (!std::getline(f, lineStr) || lineStr != kTraceMagic) {
        warn("TraceData: '%s' is not a %s file", path.c_str(), kTraceMagic);
        return false;
    }

    // Parse into locals; *this is only touched after a full clean parse.
    uint64_t digest = 0, types = 0;
    std::unordered_map<TraceKey, CostStream, TraceKeyHash> parsed;
    bool sawEnd = false;

    while (std::getline(f, lineStr)) {
        if (lineStr.empty())
            continue;
        if (lineStr == "end") {
            sawEnd = true;
            break;
        }
        std::istringstream is(lineStr);
        std::string tag;
        is >> tag;
        if (tag == "digest" || tag == "types") {
            std::string tok, extra;
            uint64_t v = 0;
            if (!(is >> tok) || (is >> extra) ||
                !parseU64(tok, tag == "digest" ? 16 : 10, v)) {
                warn("TraceData: bad %s line in %s", tag.c_str(),
                     path.c_str());
                return false;
            }
            (tag == "digest" ? digest : types) = v;
            continue;
        }
        if (tag != "k") {
            warn("TraceData: unknown record '%s' in %s", tag.c_str(),
                 path.c_str());
            return false;
        }
        std::string typeTok, kindTok, lineTok, countTok, sumTok, nheadTok;
        if (!(is >> typeTok >> kindTok >> lineTok >> countTok >> sumTok >>
              nheadTok)) {
            warn("TraceData: short key record in %s", path.c_str());
            return false;
        }
        uint64_t type, kind, lineAddr, count, sum, nhead;
        if (!parseU64(typeTok, 10, type) || !parseU64(kindTok, 10, kind) ||
            !parseU64(lineTok, 16, lineAddr) ||
            !parseU64(countTok, 10, count) || !parseU64(sumTok, 10, sum) ||
            !parseU64(nheadTok, 10, nhead) || type > UINT32_MAX ||
            kind >= uint64_t(TraceKind::NumKinds) || count == 0 ||
            nhead > kHeadCap || nhead > count) {
            warn("TraceData: malformed key record '%s' in %s",
                 lineStr.c_str(), path.c_str());
            return false;
        }
        TraceKey key{uint32_t(type), uint8_t(kind), lineAddr};
        if (parsed.count(key)) {
            warn("TraceData: duplicate key record in %s", path.c_str());
            return false;
        }
        CostStream s;
        s.count = count;
        s.sum = sum;
        s.head.reserve(nhead);
        uint64_t headSum = 0;
        for (uint64_t i = 0; i < nhead; i++) {
            std::string costTok;
            uint64_t cost = 0;
            // A cost wider than uint32 can only come from a corrupted or
            // hand-edited file: reject, don't truncate.
            if (!(is >> costTok) || !parseU64(costTok, 10, cost) ||
                cost > UINT32_MAX) {
                warn("TraceData: bad cost token in %s", path.c_str());
                return false;
            }
            headSum += cost;
            s.head.push_back(uint32_t(cost));
        }
        std::string extra;
        if (is >> extra) {
            warn("TraceData: trailing tokens in key record in %s",
                 path.c_str());
            return false;
        }
        if (headSum > sum) {
            warn("TraceData: head exceeds recorded sum in %s", path.c_str());
            return false;
        }
        parsed.emplace(key, std::move(s));
    }
    if (!sawEnd) {
        warn("TraceData: truncated trace '%s' (missing end sentinel)",
             path.c_str());
        return false;
    }

    streams = std::move(parsed);
    fnIds.clear(); // host pointers never survive a file round trip
    numTypes = uint32_t(types);
    recordResultDigest = digest;
    return true;
}

// ---- TraceRecordBackend --------------------------------------------------

void
TraceRecordBackend::noteDispatch(CoreId core, const void* task_fn)
{
    auto [it, inserted] =
        sink_->fnIds.try_emplace(task_fn, sink_->numTypes);
    if (inserted)
        sink_->numTypes++;
    uint32_t type = it->second + 1;
    coreType_[core] = type;
    lastDispatchType_ = type;
}

uint32_t
TraceRecordBackend::taskSendCost(TileId src, TileId dst)
{
    uint32_t c = inner_.taskSendCost(src, dst);
    sink_->record({0, uint8_t(TraceKind::TaskSend),
                   uint64_t(src) << 32 | dst},
                  c);
    return c;
}

uint32_t
TraceRecordBackend::accessCost(CoreId core, Addr addr, bool is_write,
                               uint32_t compared)
{
    uint32_t c = inner_.accessCost(core, addr, is_write, compared);
    sink_->record({coreType_[core],
                   uint8_t(is_write ? TraceKind::Write : TraceKind::Read),
                   lineOf(addr)},
                  c);
    return c;
}

uint32_t
TraceRecordBackend::enqueueCost()
{
    uint32_t c = inner_.enqueueCost();
    sink_->record({0, uint8_t(TraceKind::Enqueue), 0}, c);
    return c;
}

uint32_t
TraceRecordBackend::dequeueCost(const DispatchInfo& info)
{
    uint32_t c = inner_.dequeueCost(info);
    sink_->record({lastDispatchType_, uint8_t(TraceKind::Dequeue), 0}, c);
    return c;
}

uint32_t
TraceRecordBackend::finishCost()
{
    uint32_t c = inner_.finishCost();
    sink_->record({0, uint8_t(TraceKind::Finish), 0}, c);
    return c;
}

uint32_t
TraceRecordBackend::rollbackLineCost(CoreId core, LineAddr line)
{
    uint32_t c = inner_.rollbackLineCost(core, line);
    sink_->record({coreType_[core], uint8_t(TraceKind::Rollback), line}, c);
    return c;
}

// ---- TraceReplayBackend --------------------------------------------------

void
TraceReplayBackend::noteDispatch(CoreId core, const void* task_fn)
{
    uint32_t type = 0;
    if (!trace_->fnIds.empty()) {
        // Same-process record -> replay: exact pointer identity.
        auto it = trace_->fnIds.find(task_fn);
        if (it != trace_->fnIds.end())
            type = it->second + 1;
    } else if (trace_->numTypes) {
        // File-loaded trace: re-derive ids in this run's first-dispatch
        // order. Matches the recording run for deterministic workloads;
        // extra types beyond the recorded count stay unknown (type 0 ->
        // fallback costs, never wrong results).
        auto [it, inserted] =
            derivedIds_.try_emplace(task_fn, uint32_t(derivedIds_.size()));
        if (it->second < trace_->numTypes)
            type = it->second + 1;
        (void)inserted;
    }
    coreType_[core] = type;
    lastDispatchType_ = type;
}

void
TraceReplayBackend::computeBodyCosts()
{
    // Per 1-based type: Σ recorded read/write costs ÷ dispatch count —
    // the mean simulated duration of one body's accesses. Integer sums
    // over an unordered_map are order-independent, so this stays
    // deterministic.
    std::vector<uint64_t> accessSum(trace_->numTypes + 1, 0);
    std::vector<uint64_t> dispatches(trace_->numTypes + 1, 0);
    for (const auto& [key, s] : trace_->streams) {
        if (key.type > trace_->numTypes)
            continue; // corrupt/stale id: never index out of range
        if (key.kind == uint8_t(TraceKind::Read) ||
            key.kind == uint8_t(TraceKind::Write))
            accessSum[key.type] += s.sum;
        else if (key.kind == uint8_t(TraceKind::Dequeue))
            dispatches[key.type] += s.count;
    }
    uint64_t totalAccess = 0, totalDispatch = 0;
    for (uint32_t t = 1; t <= trace_->numTypes; t++) {
        totalAccess += accessSum[t];
        totalDispatch += dispatches[t];
    }
    bodyCost_.assign(trace_->numTypes + 1, 0);
    contention_.assign(trace_->numTypes + 1, {});
    auto meanOf = [](uint64_t sum, uint64_t n) {
        uint64_t m = n ? sum / n : 0;
        return m > UINT32_MAX ? uint32_t(UINT32_MAX) : uint32_t(m);
    };
    // Unknown types (index 0) pace at the global mean rather than
    // free-running.
    bodyCost_[0] = meanOf(totalAccess, totalDispatch);
    for (uint32_t t = 1; t <= trace_->numTypes; t++)
        bodyCost_[t] = dispatches[t] ? meanOf(accessSum[t], dispatches[t])
                                     : bodyCost_[0];

    // Pre-populate the open-addressed cursor table: one slot per
    // recorded stream, hashed once here so the serve() hot path is a
    // single probe with no unordered_map chain walk.
    size_t want = trace_->streams.size() * 2;
    size_t cap = 64;
    while (cap < want)
        cap *= 2;
    cursors_.assign(cap, {});
    cursorMask_ = cap - 1;
    cursorCount_ = 0;
    for (const auto& [key, s] : trace_->streams) {
        uint64_t h = key.mixed();
        size_t i = size_t(h) & cursorMask_;
        while (cursors_[i].used)
            i = (i + 1) & cursorMask_;
        Cursor& cur = cursors_[i];
        cur.hash = h;
        cur.key = key;
        cur.stream = &s;
        cur.mean = s.mean();
        cur.used = true;
        cursorCount_++;
    }
}

TraceReplayBackend::Cursor&
TraceReplayBackend::cursorFor(const TraceKey& key)
{
    uint64_t h = key.mixed();
    size_t i = size_t(h) & cursorMask_;
    while (cursors_[i].used) {
        if (cursors_[i].hash == h && cursors_[i].key == key)
            return cursors_[i];
        i = (i + 1) & cursorMask_;
    }
    // Unseen key: cache its absence so every later serve is one probe.
    if ((cursorCount_ + 1) * 10 > cursors_.size() * 7) {
        growCursors();
        return cursorFor(key);
    }
    Cursor& cur = cursors_[i];
    cur.hash = h;
    cur.key = key;
    cur.used = true;
    cursorCount_++;
    auto sit = trace_->streams.find(key);
    if (sit != trace_->streams.end()) {
        cur.stream = &sit->second;
        cur.mean = sit->second.mean();
    }
    return cur;
}

void
TraceReplayBackend::growCursors()
{
    std::vector<Cursor> old = std::move(cursors_);
    cursors_.assign(old.size() * 2, {});
    cursorMask_ = cursors_.size() - 1;
    for (Cursor& c : old) {
        if (!c.used)
            continue;
        size_t i = size_t(c.hash) & cursorMask_;
        while (cursors_[i].used)
            i = (i + 1) & cursorMask_;
        cursors_[i] = c;
    }
}

uint32_t
TraceReplayBackend::serve(const TraceKey& key)
{
    Cursor& cur = cursorFor(key);
    if (!cur.stream) {
        fallbacks_++;
        // Seeded deterministic stand-in for unseen keys: small (the
        // scale of L1 hits + instruction overheads), nonzero, and a pure
        // function of (key, seed) so replay stays reproducible.
        return 1 + uint32_t(mix64(cur.hash ^ seed_) & 31);
    }
    served_++;
    const CostStream& s = *cur.stream;
    uint32_t cost =
        cur.pos < s.head.size() ? s.head[cur.pos++] : cur.mean;
    // Progress guarantee: a poisoned trace may carry zero costs, but an
    // execution attempt must always advance simulated time (see the
    // livelock argument in docs/backends.md).
    return cost ? cost : 1;
}

// ---- Factories -----------------------------------------------------------

std::unique_ptr<EngineBackend>
makeTraceRecordBackend(const SimConfig& cfg, Mesh& mesh, MemorySystem& mem)
{
    if (!cfg.traceSink)
        fatal("backend trace-record requires cfg.traceSink (the harness "
              "record pre-run sets one up; see docs/backends.md)");
    return std::make_unique<TraceRecordBackend>(cfg, mesh, mem,
                                                cfg.traceSink);
}

std::unique_ptr<EngineBackend>
makeTraceReplayBackend(const SimConfig& cfg, Mesh& mesh, MemorySystem& mem)
{
    (void)mesh;
    (void)mem;
    std::shared_ptr<const TraceData> trace = cfg.traceData;
    if (!trace) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("backend trace-replay: no trace armed (cfg.traceData); "
                 "every cost will use the seeded fallback model");
        }
        trace = std::make_shared<TraceData>();
    }
    return std::make_unique<TraceReplayBackend>(std::move(trace), cfg.seed,
                                                cfg.totalCores());
}

} // namespace ssim
