#include "swarm/backends/functional_backend.h"

namespace ssim {

std::unique_ptr<EngineBackend>
makeFunctionalBackend(const SimConfig&, Mesh&, MemorySystem&)
{
    return std::make_unique<FunctionalBackend>();
}

} // namespace ssim
