/**
 * @file
 * Trace record/replay: timing-faithful sweeps at functional speed.
 *
 * Two backends share one artifact, the TraceData cost trace:
 *
 *  - "trace-record" (TraceRecordBackend) rides a full TimingBackend
 *    run: every cost call delegates to the cycle-accurate model and
 *    returns its answer unchanged — a recording run is bit-identical
 *    to a plain timing run (the golden digests prove it) — while the
 *    observed costs stream into a TraceData sink keyed by (task type,
 *    access kind, line).
 *  - "trace-replay" (TraceReplayBackend) then serves those recorded
 *    costs at FunctionalBackend event granularity: inline effects, no
 *    mesh hops, no cache/directory model. Per key it replays the first
 *    kHeadCap recorded costs exactly and the rounded mean thereafter;
 *    keys the trace never saw fall back to a seeded deterministic cost
 *    model (counted in SimStats::traceFallbackCosts, digest-excluded).
 *
 * Costs never decide WHAT happens — only how long it takes — so a
 * replayed run produces the same functional results as timing on every
 * app (tests/test_trace_replay.cc pins this per app, and keeps pinning
 * it under poisoned, truncated, and empty traces: a bad trace costs
 * timing fidelity, never correctness).
 *
 * Task-type identity: the engine announces each dispatch through
 * EngineBackend::noteDispatch(core, task_fn). Within one process the
 * recording run's fn-pointer -> id map travels inside TraceData, so a
 * same-process record -> replay resolves types exactly. A trace loaded
 * from a file cannot carry host pointers; the replayer then re-derives
 * ids in first-dispatch order, which matches the recording run's order
 * for deterministic workloads and otherwise degrades some keys to the
 * fallback model — stale traces lose fidelity, not correctness
 * (docs/backends.md#trace-replay).
 *
 * Trace files are versioned sorted text ("swarmsim-trace v1" magic, an
 * "end" sentinel against truncation); load() rejects malformed input
 * and leaves the map untouched, mirroring ClassificationMap::load.
 * Line addresses are host-virtual like the classification map's: a
 * saved trace is only meaningful where data placement is reproducible.
 */
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "swarm/backends/engine_backend.h"
#include "swarm/backends/timing_backend.h"

namespace ssim {

/** What a recorded cost priced (the key's access-kind dimension). */
enum class TraceKind : uint8_t
{
    Read = 0,
    Write,
    Dequeue,  ///< dispatch; keyed by the dispatched task's type
    TaskSend, ///< descriptor delivery; line packs (src tile, dst tile)
    Enqueue,
    Finish,
    Rollback, ///< abort-path rollback write; keyed by victim line
    NumKinds
};

const char* traceKindName(TraceKind k);

/** A cost-stream key: (task type, access kind, line address). Type 0
 *  means "no/unknown task type"; real types are 1-based ids assigned in
 *  the recording run's first-dispatch order. */
struct TraceKey
{
    uint32_t type = 0;
    uint8_t kind = 0;
    LineAddr line = 0;

    bool operator==(const TraceKey&) const = default;

    uint64_t
    mixed() const
    {
        return mix64((uint64_t(type) << 8 | kind) ^ mix64(line));
    }
};

struct TraceKeyHash
{
    size_t operator()(const TraceKey& k) const { return size_t(k.mixed()); }
};

/** One key's recorded costs: the first kHeadCap values exactly (replay
 *  re-serves them in order — early accesses see cold-cache costs, later
 *  ones warm), then the rounded mean of the whole stream. */
struct CostStream
{
    std::vector<uint32_t> head;
    uint64_t sum = 0;
    uint64_t count = 0;

    uint32_t
    mean() const
    {
        return count ? uint32_t((sum + count / 2) / count) : 0;
    }
};

/** The recorded cost trace: what "trace-record" writes and
 *  "trace-replay" serves. Coordinator-built, then shared immutably. */
struct TraceData
{
    static constexpr uint32_t kHeadCap = 32;

    std::unordered_map<TraceKey, CostStream, TraceKeyHash> streams;

    /// In-memory task-type identity: fn pointer -> 0-based id in
    /// first-dispatch order of the recording run. Never serialized
    /// (host pointers are process-local); load() leaves it empty and
    /// the replayer re-derives ids by first-dispatch order.
    std::unordered_map<const void*, uint32_t> fnIds;
    uint32_t numTypes = 0;

    /// App::resultDigest of the recording run (0 = unknown): harness
    /// sweeps assert every replay point reproduces it.
    uint64_t recordResultDigest = 0;

    /// Topology under which this trace was recorded or loaded
    /// (harness::topologyKeyOf; "" = pre-topology trace). In-memory
    /// only, never serialized: runOnce re-records rather than serve a
    /// trace whose shard-hop pricing doesn't match the current run.
    std::string topologyKey;

    void
    record(const TraceKey& key, uint32_t cost)
    {
        CostStream& s = streams[key];
        if (s.head.size() < kHeadCap)
            s.head.push_back(cost);
        s.sum += cost;
        s.count++;
    }

    /** Deterministic sorted text, "swarmsim-trace v1" header, "end"
     *  sentinel. Returns false on I/O error. */
    bool save(const std::string& path) const;

    /** Parse a save()d trace. Rejects bad magic/version, malformed or
     *  overflowing tokens, and truncation (missing sentinel): warns and
     *  returns false with *this untouched — a malformed trace must
     *  never silently price line 0. */
    bool load(const std::string& path);
};

/**
 * The recording backend: a TimingBackend with a tap. Costs, NoC
 * traffic, and therefore the whole simulated execution are identical
 * to "timing"; the only extra work is appending each observed cost to
 * the sink's streams. Requires cfg.traceSink (the factory fatals
 * without one). inlineEffects() stays false: recording composes with
 * hostThreads > 1, concurrent conflict checks, and parallel replay
 * like any timing run.
 */
class TraceRecordBackend : public EngineBackend
{
  public:
    TraceRecordBackend(const SimConfig& cfg, Mesh& mesh, MemorySystem& mem,
                       std::shared_ptr<TraceData> sink)
        : inner_(cfg, mesh, mem), sink_(std::move(sink)),
          coreType_(cfg.totalCores(), 0)
    {
    }

    const char* name() const override { return "trace-record"; }

    void noteDispatch(CoreId core, const void* task_fn) override;

    uint32_t taskSendCost(TileId src, TileId dst) override;
    uint32_t accessCost(CoreId core, Addr addr, bool is_write,
                        uint32_t compared) override;
    uint32_t computeCost(uint32_t cycles) override
    {
        // Passthrough under timing; nothing worth recording.
        return inner_.computeCost(cycles);
    }
    uint32_t enqueueCost() override;
    uint32_t dequeueCost(const DispatchInfo& info) override;
    uint32_t finishCost() override;

    void abortMessage(TileId cause_tile, TileId victim_tile) override
    {
        inner_.abortMessage(cause_tile, victim_tile);
    }
    uint32_t rollbackLineCost(CoreId core, LineAddr line) override;

  private:
    TimingBackend inner_;
    std::shared_ptr<TraceData> sink_;
    std::vector<uint32_t> coreType_; ///< 1-based type per core (0 none)
    uint32_t lastDispatchType_ = 0;  ///< for the dequeueCost that follows
};

/**
 * The replaying backend: FunctionalBackend execution style (inline
 * effects — whole task body per resume event, hostThreads > 1 degrades
 * to the serial loop, conc-conflicts/parallel-replay are ignored) with
 * recorded timing-model costs instead of a flat pseudo-cycle. Unseen
 * keys get a seeded deterministic fallback cost in [1, 32]; every
 * served cost is clamped to >= 1 so execution attempts always advance
 * simulated time (the livelock argument of docs/backends.md). The
 * served/fallback split is exported through served()/fallbacks() into
 * SimStats (digest-excluded introspection).
 */
class TraceReplayBackend : public EngineBackend
{
  public:
    TraceReplayBackend(std::shared_ptr<const TraceData> trace,
                       uint64_t seed, uint32_t total_cores)
        : trace_(std::move(trace)), seed_(seed), coreType_(total_cores, 0)
    {
        computeBodyCosts();
    }

    const char* name() const override { return "trace-replay"; }
    bool inlineEffects() const override { return true; }

    void noteDispatch(CoreId core, const void* task_fn) override;

    uint32_t taskSendCost(TileId src, TileId dst) override
    {
        return serve({0, uint8_t(TraceKind::TaskSend),
                      uint64_t(src) << 32 | dst});
    }
    uint32_t accessCost(CoreId core, Addr addr, bool is_write,
                        uint32_t) override
    {
        return serve({coreType_[core],
                      uint8_t(is_write ? TraceKind::Write
                                       : TraceKind::Read),
                      lineOf(addr)});
    }
    uint32_t computeCost(uint32_t cycles) override
    {
        return cycles ? cycles : 1; // passthrough, like timing
    }
    uint32_t enqueueCost() override
    {
        return serve({0, uint8_t(TraceKind::Enqueue), 0});
    }
    uint32_t dequeueCost(const DispatchInfo& info) override
    {
        // Inline mode runs the whole body at the dispatch event, so the
        // dispatch delay carries the type's recorded mean body duration
        // on top of the dequeue instruction itself. This is what keeps
        // replay paced like the recording run: without it cores free up
        // the instant they dispatch, speculation runs far past the
        // commit frontier, and the abort storms burn the wall-clock win
        // (see the functional backend's dequeueCost note in
        // docs/backends.md — here the trace tells us the real body
        // duration). Three stretch terms, all in body units: one body
        // per same-tile core still running an earlier-timestamp task
        // (bodies fire in approximate timestamp order — a conflict can
        // only abort someone when a later-timestamp body fires first);
        // a contention backoff of up to three bodies per prior failed
        // attempt — but only for task types whose observed mean
        // attempt count says they re-abort in chains (accumulator-style
        // contention, where immediate retries feed the same storm;
        // wavefront types whose tasks abort at most once or twice skip
        // the backoff: delaying their retries just parks stale writes
        // in front of future readers); and commit-queue backpressure,
        // one body per four occupied CQ slots — a filling queue means
        // speculation is running far past the commit frontier, exactly
        // when far-future dispatches are most likely to be aborted by
        // the tasks ahead of them (this is what the finite commit queue
        // does for the timing backend organically).
        uint32_t deq =
            serve({lastDispatchType_, uint8_t(TraceKind::Dequeue), 0});
        uint64_t body = bodyCost_[lastDispatchType_];
        TypeContention& tc = contention_[lastDispatchType_];
        tc.attemptSum += info.attempt;
        tc.dispatches++;
        // Chain-y iff the running mean attempt exceeds 1.5.
        bool chainy = tc.attemptSum * 2 > tc.dispatches * 3;
        uint64_t stretch = uint64_t(info.olderRunning) +
                           (chainy ? std::min(info.attempt, 3u) : 0) +
                           info.cqOccupancy / 4;
        uint64_t lat = deq + body * (1 + stretch);
        return lat > UINT32_MAX ? UINT32_MAX : uint32_t(lat);
    }
    uint32_t finishCost() override
    {
        return serve({0, uint8_t(TraceKind::Finish), 0});
    }

    void abortMessage(TileId, TileId) override {} // no modeled traffic
    uint32_t rollbackLineCost(CoreId core, LineAddr line) override
    {
        return serve({coreType_[core], uint8_t(TraceKind::Rollback), line});
    }

    uint64_t served() const { return served_; }
    uint64_t fallbacks() const { return fallbacks_; }

  private:
    uint32_t serve(const TraceKey& key);
    void computeBodyCosts();

    std::shared_ptr<const TraceData> trace_;
    uint64_t seed_;
    /// Mean recorded per-body access cost per 1-based task type (index 0
    /// = unknown type, global mean): Σ read/write costs of the type's
    /// dispatches ÷ its dispatch count. Served at dispatch (see
    /// dequeueCost) since inline bodies occupy no simulated time of
    /// their own.
    std::vector<uint32_t> bodyCost_;
    std::vector<uint32_t> coreType_;
    uint32_t lastDispatchType_ = 0;
    /// Per-type running attempt statistics feeding the contention
    /// backoff gate in dequeueCost (indexed like bodyCost_; sized in
    /// computeBodyCosts).
    struct TypeContention
    {
        uint64_t attemptSum = 0;
        uint64_t dispatches = 0;
    };
    std::vector<TypeContention> contention_;
    /// Replay cursor per key: caches the key's stream pointer (null =
    /// unseen key, fallback model) and its rounded mean, plus the next
    /// head index to serve. Kept in a flat open-addressing table —
    /// serve() runs once per applied access, so this probe IS the
    /// replay inner loop, and linear probing over a contiguous array
    /// beats a chained unordered_map by the pointer chase per lookup.
    /// Pre-populated from the trace's streams at construction; only
    /// fallback (unseen) keys insert later.
    struct Cursor
    {
        uint64_t hash = 0;
        TraceKey key;
        const CostStream* stream = nullptr;
        uint32_t mean = 0;
        uint32_t pos = 0;
        bool used = false;
    };
    std::vector<Cursor> cursors_; ///< power-of-two sized, linear probe
    size_t cursorMask_ = 0;
    size_t cursorCount_ = 0;

    Cursor& cursorFor(const TraceKey& key);
    void growCursors();
    /// File-loaded traces carry no fn pointers: ids re-derived in this
    /// run's first-dispatch order (empty when trace_->fnIds is usable).
    std::unordered_map<const void*, uint32_t> derivedIds_;
    uint64_t served_ = 0;
    uint64_t fallbacks_ = 0;
};

/** Registry factories (policies::registerBackend signature). The record
 *  factory fatals unless cfg.traceSink is set; the replay factory
 *  accepts a null cfg.traceData (every cost falls back, with a one-time
 *  warning) so white-box tests can probe the fallback model. */
std::unique_ptr<EngineBackend> makeTraceRecordBackend(const SimConfig& cfg,
                                                      Mesh& mesh,
                                                      MemorySystem& mem);
std::unique_ptr<EngineBackend> makeTraceReplayBackend(const SimConfig& cfg,
                                                      Mesh& mesh,
                                                      MemorySystem& mem);

} // namespace ssim
