#include "swarm/backends/timing_backend.h"

namespace ssim {

std::unique_ptr<EngineBackend>
makeTimingBackend(const SimConfig& cfg, Mesh& mesh, MemorySystem& mem)
{
    return std::make_unique<TimingBackend>(cfg, mesh, mem);
}

uint32_t
TimingBackend::taskSendCost(TileId src, TileId dst)
{
    uint32_t lat = mesh_.latency(src, dst);
    mesh_.inject(src, dst, cfg_.taskDescFlits, TrafficClass::Task);
    return lat;
}

uint32_t
TimingBackend::accessCost(CoreId core, Addr addr, bool is_write,
                          uint32_t compared)
{
    auto res = mem_.access(core, addr, is_write, TrafficClass::MemAcc);
    uint32_t lat = res.latency;
    if (res.leftTile && compared > 0) {
        // Remote conflict checks: Bloom filter lookup + one cycle per
        // timestamp compared in the commit queue (Table II).
        lat += cfg_.conflictCheckCost + compared * cfg_.conflictPerCmpCost;
    }
    return lat;
}

void
TimingBackend::abortMessage(TileId cause_tile, TileId victim_tile)
{
    mesh_.inject(cause_tile, victim_tile, cfg_.ctrlFlits,
                 TrafficClass::Abort);
}

uint32_t
TimingBackend::rollbackLineCost(CoreId core, LineAddr line)
{
    return mem_.access(core, line << lineBits, true, TrafficClass::Abort)
        .latency;
}

} // namespace ssim
