/**
 * @file
 * FunctionalBackend: fast functional-only simulation behind the
 * EngineBackend seam.
 *
 * Collapses the timing model: no cache or directory state, no
 * per-access latency computation, and none of the engine- or
 * abort-path NoC traffic (the commit protocol's GVT messages and the
 * capacity manager's spill descriptors are subsystem-level modeling
 * outside the backend seam and still inject — the only flits a
 * functional run reports). Every engine effect resolves in one
 * bounded pseudo-cycle, so simulated time advances strictly (no
 * unbounded same-cycle event chains) but carries no microarchitectural
 * meaning — event order, and with it conflict resolution and commit
 * order, is keyed purely on the deterministic (cycle, seq) order in
 * which effects are issued.
 *
 * Everything that makes execution *correct* still runs: tasks execute
 * speculatively, accesses are conflict-checked against the line table
 * and undo-logged, later conflicting tasks abort and re-execute, and
 * commits retire in (timestamp, uid) order through the same GVT
 * protocol. Functional results are therefore identical to the timing
 * backend's (tests/test_backends.cc checks per-app result digests),
 * and abort/commit counts are deterministic for a given (config, seed,
 * input) — they just don't model a real machine's timing.
 *
 * Use it to debug applications, to smoke-test every app in CI, and as
 * a fast reference run; use the timing backend for any figure or
 * performance claim. See docs/backends.md.
 */
#pragma once

#include <memory>

#include "swarm/backends/engine_backend.h"

namespace ssim {

class MemorySystem;
class Mesh;
struct SimConfig;

class FunctionalBackend : public EngineBackend
{
  public:
    const char* name() const override { return "functional"; }

    /// Task bodies run straight through their single resume event: no
    /// per-access latency events, no coroutine suspensions — the bulk
    /// of the backend's wall-clock win (bench/micro_backend).
    bool inlineEffects() const override { return true; }

    /// The bounded pseudo-cycle every effect resolves in. Nonzero so
    /// every engine step advances simulated time: re-execution after an
    /// abort always lands at a strictly later cycle, which (with eager
    /// earliest-wins conflict resolution) rules out same-cycle abort
    /// livelock by the same argument the timing model uses.
    static constexpr uint32_t kStepCost = 1;

    uint32_t taskSendCost(TileId, TileId) override { return kStepCost; }
    uint32_t
    accessCost(CoreId, Addr, bool, uint32_t) override
    {
        return kStepCost;
    }
    uint32_t computeCost(uint32_t) override { return kStepCost; }
    uint32_t enqueueCost() override { return kStepCost; }
    // The commit-queue occupancy signal is deliberately unused: pacing
    // dispatch by occupancy was measured to cut the abort storms of
    // accumulator-heavy apps (kmeans, nocsim) but to slow the graph
    // apps more than it saved — flat cost wins overall
    // (bench/micro_backend). A derived backend can override this with
    // occupancy-based pacing without touching the engine.
    uint32_t dequeueCost(const DispatchInfo&) override
    {
        return kStepCost;
    }
    uint32_t finishCost() override { return kStepCost; }

    // Aborts still happen (speculation is real); only their modeled
    // traffic and rollback latency are collapsed. Like the timing
    // backend's, these are reached only from the ConflictManager's
    // serialized resolve phase (never from worker-side bank probes) —
    // moot here anyway: inlineEffects() disables recording, so
    // concurrent conflict checks degrade to the serial path.
    void abortMessage(TileId, TileId) override {}
    uint32_t rollbackLineCost(CoreId, LineAddr) override
    {
        return kStepCost;
    }
};

/**
 * Registry factory (policies::registerBackend signature). The mesh and
 * memory system go unused: the functional backend never touches the
 * microarchitectural model.
 */
std::unique_ptr<EngineBackend> makeFunctionalBackend(const SimConfig& cfg,
                                                     Mesh& mesh,
                                                     MemorySystem& mem);

} // namespace ssim
