/**
 * @file
 * The application-facing Swarm API (paper Sec. II-A and III-A).
 *
 * Programs consist of timestamped tasks. Each task is a C++20 coroutine
 * that accesses shared data through its TaskCtx; every load, store,
 * enqueue, and explicit compute charge is conflict-checked, undo-logged,
 * and priced by the machine's engine backend. Under the cycle-accurate
 * timing backend (the default) each is a suspension point that passes
 * through the full timing model at its simulated issue time; under an
 * inline-effects backend (functional) the effect applies synchronously
 * and the body runs straight through (docs/backends.md).
 *
 * A task creates children with
 *     co_await ctx.enqueue(taskFn, timestamp, hint, args...);
 * mirroring the paper's swarm::enqueue(taskFn, timestamp, hint, args...).
 * The hint is an abstract 64-bit integer denoting the data the task is
 * likely to access, or NOHINT / SAMEHINT (Sec. III-A).
 */
#pragma once

#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <exception>
#include <type_traits>

#include "base/types.h"

namespace ssim {
class Machine;
class Task;
} // namespace ssim

namespace swarm {

using Timestamp = ssim::Timestamp;

/** A spatial hint: an integer value, NOHINT, or SAMEHINT (Sec. III-A). */
struct Hint
{
    enum class Kind : uint8_t { Value, NoHint, Same };

    uint64_t val = 0;
    Kind kind = Kind::Value;

    Hint() = default;
    Hint(uint64_t v) : val(v), kind(Kind::Value) {} // NOLINT: implicit
    Hint(Kind k) : val(0), kind(k) {}

    bool isValue() const { return kind == Kind::Value; }
    bool isNoHint() const { return kind == Kind::NoHint; }
    bool isSame() const { return kind == Kind::Same; }
};

/** Use when the programmer does not know what data will be accessed. */
inline const Hint NOHINT{Hint::Kind::NoHint};
/** Assigns the parent's hint to the child task. */
inline const Hint SAMEHINT{Hint::Kind::Same};

/** Hint helper: the cache line of an object (e.g., Listing 2/3). */
inline uint64_t
cacheLine(const void* p)
{
    return ssim::lineOf(ssim::addrOf(p));
}

class TaskCtx;

/**
 * Coroutine handle type for task bodies. Tasks suspend at creation (the
 * core resumes them after the dequeue overhead) and at every ctx
 * operation; the simulator destroys the frame on abort or finish.
 */
struct TaskCoro
{
    struct promise_type
    {
        TaskCoro get_return_object()
        {
            return TaskCoro{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    std::coroutine_handle<promise_type> handle;
};

/** Task function: receives its context, timestamp, and up to 3 args. */
using TaskFn = TaskCoro (*)(TaskCtx&, Timestamp, const uint64_t* args);

/** Awaiter for a timed memory access. */
struct MemAwaiter
{
    TaskCtx* ctx;
    ssim::Addr addr;
    uint32_t size;
    bool isWrite;
    uint64_t wval = 0; ///< value to store (low `size` bytes)
    uint64_t rval = 0; ///< loaded value (low `size` bytes)

    // In an inline-effects backend (swarm/backends/engine_backend.h)
    // await_ready applies the access synchronously and the coroutine
    // never suspends; otherwise the suspend path schedules the timed
    // resume. Both are defined in machine.cc.
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    uint64_t await_resume() const noexcept { return rval; }
};

/** Typed wrapper over MemAwaiter that returns T from co_await. */
template <typename T>
struct TypedMemAwaiter : MemAwaiter
{
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    T
    await_resume() const noexcept
    {
        T out;
        std::memcpy(&out, &rval, sizeof(T));
        return out;
    }
};

/**
 * Awaiter for a commutative reduction: *p += delta (64-bit integer
 * add) without observing the value. On lines the classification map
 * marks Reduction (swarm/classification.h) the delta is buffered per
 * task and folded at commit — no line-table registration, no
 * write-write aborts among reducers; everywhere else it degrades to a
 * single tracked read-modify-write.
 */
struct ReduceAwaiter
{
    TaskCtx* ctx;
    ssim::Addr addr;
    int64_t delta;

    bool await_ready(); // defined in machine.cc
    void await_suspend(std::coroutine_handle<> h); // defined in machine.cc
    void await_resume() const noexcept {}
};

/** Awaiter charging fixed compute cycles. */
struct ComputeAwaiter
{
    TaskCtx* ctx;
    uint32_t cycles;

    bool await_ready(); // defined in machine.cc
    void await_suspend(std::coroutine_handle<> h); // defined in machine.cc
    void await_resume() const noexcept {}
};

/** Awaiter for creating a child task (5-cycle enqueue instruction). */
struct EnqueueAwaiter
{
    TaskCtx* ctx;
    TaskFn fn;
    Timestamp ts;
    Hint hint;
    std::array<uint64_t, 3> args;
    uint8_t nargs;

    bool await_ready(); // defined in machine.cc
    void await_suspend(std::coroutine_handle<> h); // defined in machine.cc
    void await_resume() const noexcept {}
};

/**
 * Per-task execution context. All shared-state accesses of a task body
 * must go through this object so they are timed, conflict-checked, and
 * undo-logged.
 */
class TaskCtx
{
  public:
    TaskCtx() = default;
    TaskCtx(ssim::Machine* m, ssim::Task* t) : machine_(m), task_(t) {}

    /** Timed, conflict-checked load of *p. */
    template <typename T>
    TypedMemAwaiter<T>
    read(const T* p)
    {
        TypedMemAwaiter<T> aw;
        aw.ctx = this;
        aw.addr = ssim::addrOf(p);
        aw.size = sizeof(T);
        aw.isWrite = false;
        return aw;
    }

    /** Timed, conflict-checked, undo-logged store of v into *p. */
    template <typename T>
    MemAwaiter
    write(T* p, std::type_identity_t<T> v)
    {
        static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
        MemAwaiter aw;
        aw.ctx = this;
        aw.addr = ssim::addrOf(p);
        aw.size = sizeof(T);
        aw.isWrite = true;
        std::memcpy(&aw.wval, &v, sizeof(T));
        return aw;
    }

    /**
     * Commutative reduction *p += delta. The task must not rely on the
     * stored value (use read+write for that); deltas may be buffered
     * and folded at commit. @p T must be a 64-bit integer.
     */
    template <typename T>
    ReduceAwaiter
    reduce(T* p, int64_t delta)
    {
        static_assert(sizeof(T) == 8 && std::is_integral_v<T>,
                      "reductions are 64-bit integer adds");
        return {this, ssim::addrOf(p), delta};
    }

    /** Charge @p cycles of non-memory compute work. */
    ComputeAwaiter compute(uint32_t cycles) { return {this, cycles}; }

    /** Create a child task (paper's swarm::enqueue). */
    template <typename... Args>
    EnqueueAwaiter
    enqueue(TaskFn fn, Timestamp ts, Hint hint, Args... args)
    {
        static_assert(sizeof...(Args) <= 3,
                      "up to three 64-bit register args");
        EnqueueAwaiter aw;
        aw.ctx = this;
        aw.fn = fn;
        aw.ts = ts;
        aw.hint = hint;
        aw.args = {};
        uint8_t i = 0;
        ((aw.args[i++] = toU64(args)), ...);
        aw.nargs = i;
        return aw;
    }

    /** This task's timestamp. */
    Timestamp ts() const;

    ssim::Machine* machine() const { return machine_; }
    ssim::Task* task() const { return task_; }

  private:
    template <typename T>
    static uint64_t
    toU64(T v)
    {
        if constexpr (std::is_pointer_v<T>) {
            return reinterpret_cast<uint64_t>(v);
        } else {
            static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
            uint64_t out = 0;
            std::memcpy(&out, &v, sizeof(T));
            return out;
        }
    }

    ssim::Machine* machine_ = nullptr;
    ssim::Task* task_ = nullptr;
};

/** Decode a pointer argument passed through a task's 64-bit args. */
template <typename T>
inline T*
argPtr(uint64_t a)
{
    return reinterpret_cast<T*>(a);
}

} // namespace swarm
