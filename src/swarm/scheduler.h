/**
 * @file
 * Spatial task-mapping policy interface (paper Sec. II-C, III-B).
 *
 * Concrete policies (Random, Stealing, Hints, LBHints) live in
 * policies.cc and are constructed through the policy registry
 * (swarm/policies.h); the ExecutionEngine only sees this interface.
 */
#pragma once

#include "base/rng.h"
#include "base/types.h"
#include "sim/config.h"

namespace ssim {

class SpatialScheduler
{
  public:
    SpatialScheduler(const SimConfig& cfg, Rng& rng) : cfg_(cfg), rng_(rng) {}
    virtual ~SpatialScheduler() = default;

    /**
     * Destination tile for a new task. @p has_hint is false for NOHINT
     * tasks; SAMEHINT placement is resolved by placeSameHint().
     */
    virtual TileId place(bool has_hint, uint64_t hint, TileId src_tile) = 0;

    /**
     * Destination tile for a SAMEHINT task: the local queue, except for
     * policies that ignore hints entirely (Random).
     */
    virtual TileId placeSameHint(TileId src_tile) { return src_tile; }

    /** Whether the engine should steal on dispatch failure. */
    virtual bool stealing() const { return false; }

  protected:
    TileId randomTile() { return TileId(rng_.range(cfg_.ntiles)); }

    const SimConfig& cfg_;
    Rng& rng_;
};

} // namespace ssim
