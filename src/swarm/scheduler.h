/**
 * @file
 * Spatial task-mapping policies (paper Sec. II-C, III-B).
 *
 *  - Random:   Swarm's default; new tasks go to a uniformly random tile.
 *  - Stealing: idealized work-stealing; new tasks enqueue locally and the
 *              Machine steals on demand (victim/task policies in config).
 *  - Hints:    hash the 64-bit hint down to a tile id; NOHINT tasks go to
 *              a random tile; SAMEHINT tasks are queued locally.
 *  - LBHints:  hints through the load balancer's bucket -> tile map.
 */
#pragma once

#include <memory>

#include "base/rng.h"
#include "base/types.h"
#include "sim/config.h"

namespace ssim {

class LoadBalancer;

class SpatialScheduler
{
  public:
    SpatialScheduler(const SimConfig& cfg, Rng& rng) : cfg_(cfg), rng_(rng) {}
    virtual ~SpatialScheduler() = default;

    /**
     * Destination tile for a new task. @p has_hint is false for NOHINT
     * tasks; SAMEHINT placement (local queue) is resolved by the caller
     * before this is invoked.
     */
    virtual TileId place(bool has_hint, uint64_t hint, TileId src_tile) = 0;

    /** Whether the Machine should steal on dispatch failure. */
    virtual bool stealing() const { return false; }

  protected:
    TileId randomTile() { return TileId(rng_.range(cfg_.ntiles)); }

    const SimConfig& cfg_;
    Rng& rng_;
};

/** Factory; @p lb must be non-null for LBHints. */
std::unique_ptr<SpatialScheduler> makeScheduler(const SimConfig& cfg,
                                                Rng& rng, LoadBalancer* lb);

} // namespace ssim
