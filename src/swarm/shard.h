/**
 * @file
 * The process-boundary seam of a sharded run (docs/scale-out.md).
 *
 * A sharded run is a replicated state machine: every shard process
 * runs the FULL deterministic event loop over the whole simulated
 * machine — dispatch, conflict detection, commits, GVT epochs are all
 * replicated bookkeeping — but only the shard that OWNS a task's tile
 * (TopologySpec::shardOfTile) creates and resumes its coroutine. The
 * owner broadcasts each effect the body issues as a WireStep record;
 * every other shard, reaching the same (cycle, seq) event slot in its
 * own replica, consumes the record and applies it through the exact
 * serial engine paths. Identical inputs applied in identical order
 * leave every replica bit-identical — which is the whole determinism
 * contract, and why an N-process run digests exactly like the
 * one-process run of the same topology.
 *
 * Transport: per-(sender, receiver) shared-memory SPSC rings
 * (sim/shm_ring.h), mapped by the parent before fork. Blocking
 * send/receive spins with sched_yield; whenever a shard blocks (full
 * outbound ring or empty inbound ring) it first DRAINS every inbound
 * ring into local per-sender queues — the rule that makes the protocol
 * deadlock-free: a blocked sender never stops its peers from making
 * progress, and the globally least-advanced shard can always run.
 *
 * The parent process acts as the GVT reducer: each shard reports its
 * GVT epochs (WireProgress) on a dedicated ring, the parent aligns the
 * reports by epoch index and fails fast on any divergence (an
 * invariant check under replication today; the real reduction seam for
 * a future TCP transport). At end of run each shard publishes a
 * versioned ShardSnapshot (swarm/wire.h) into its result buffer.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "base/types.h"
#include "sim/shm_ring.h"
#include "sim/topology.h"
#include "swarm/wire.h"

namespace ssim {

/**
 * The shared-memory transport fabric for one sharded run: step rings,
 * progress rings, and result buffers, all inside a single anonymous
 * MAP_SHARED region. Construct in the parent BEFORE forking shards.
 */
class ShardGroup
{
  public:
    static constexpr uint32_t kStepSlots = 4096;
    static constexpr uint32_t kProgressSlots = 1024;
    static constexpr size_t kResultBytes = 256 * 1024;

    using StepRing = SpscRing<WireStep, kStepSlots>;
    using ProgressRing = SpscRing<WireProgress, kProgressSlots>;

    explicit ShardGroup(uint32_t nshards);

    uint32_t numShards() const { return nshards_; }

    /** The @p from -> @p to step ring (from != to). */
    StepRing& stepRing(uint32_t from, uint32_t to);
    /** Shard @p s's progress ring to the parent reducer. */
    ProgressRing& progressRing(uint32_t s);

    /** Child side: publish the end-of-run snapshot text (once). */
    void publishResult(uint32_t shard, const std::string& text);
    /**
     * Parent side (after the child exited): the published snapshot
     * text, or empty if the shard died before publishing.
     */
    std::string takeResult(uint32_t shard);

  private:
    struct ResultBuf
    {
        std::atomic<uint64_t> len{0};
        char text[kResultBytes];
    };

    uint32_t nshards_;
    ShmRegion region_;
    StepRing* steps_ = nullptr;       ///< nshards x nshards, row = sender
    ProgressRing* progress_ = nullptr;
    ResultBuf* results_ = nullptr;
};

/**
 * One shard process's view of the fabric: ownership queries plus the
 * blocking send/receive protocol (drain rule above). Wired into the
 * ExecutionEngine and CommitController by Machine when a sharded run
 * constructs it (harness/shard_runner.cc).
 */
class ShardContext
{
  public:
    ShardContext(const TopologySpec& topo, uint32_t shard,
                 ShardGroup& group);

    uint32_t shard() const { return shard_; }
    uint32_t numShards() const { return group_.numShards(); }
    uint32_t shardOfTile(TileId t) const { return topo_.shardOfTile(t); }
    bool ownsTile(TileId t) const { return shardOfTile(t) == shard_; }

    /** Broadcast one effect record to every other shard (blocking). */
    void sendStep(const WireStep& w);
    /** Next record from @p from's stream, in its send order (blocking). */
    WireStep recvStep(uint32_t from);
    /** Report a GVT epoch to the parent reducer (blocking). */
    void sendProgress(const WireProgress& p);

    uint64_t stepsSent() const { return stepsSent_; }
    uint64_t stepsRecv() const { return stepsRecv_; }
    uint64_t progressMsgs() const { return progressMsgs_; }

  private:
    /** Move everything available on the inbound rings into pending_. */
    void drainIncoming();

    TopologySpec topo_;
    uint32_t shard_;
    ShardGroup& group_;
    /// Per-sender overflow queues filled by the drain rule (records
    /// popped while blocked on an unrelated send/receive).
    std::vector<std::deque<WireStep>> pending_;
    uint64_t stepsSent_ = 0;
    uint64_t stepsRecv_ = 0;
    uint64_t progressMsgs_ = 0;
};

} // namespace ssim
