/**
 * @file
 * The data-centric load balancer (paper Sec. VI).
 *
 * Instead of hashing a hint directly to a tile, LBHints hashes it to one
 * of 16*ntiles buckets and looks the bucket up in a reconfigurable tile
 * map. Each tile profiles committed cycles per bucket in a small tagged
 * counter structure (32 counters, 2x the average buckets/tile). Every
 * 500 Kcycles a reconfiguration sorts tiles by load and greedily donates
 * buckets from overloaded to underloaded tiles; to avoid oscillation, a
 * tile only closes a fraction f = 0.8 of its surplus/deficit per round.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "sim/config.h"

namespace ssim {

class LoadBalancer
{
  public:
    explicit LoadBalancer(const SimConfig& cfg);

    /** Current tile for a bucket. */
    TileId tileOfBucket(uint32_t b) const { return map_[b]; }

    /** Profile a committed task's cycles into its bucket's counter. */
    void profileCommit(TileId tile, uint32_t bucket, uint64_t cycles);

    /**
     * Rebalance the tile map from the profiled counters (or from
     * @p idle_tasks_per_tile under the LbSignal::IdleTasks ablation).
     * Clears the profile counters. Returns the number of buckets moved.
     */
    uint32_t reconfigure(const std::vector<uint64_t>& idle_tasks_per_tile);

    const std::vector<TileId>& tileMap() const { return map_; }
    uint32_t numBuckets() const { return uint32_t(map_.size()); }

    /** Profiled committed cycles of a tile since the last reconfig. */
    uint64_t profiledLoad(TileId t) const;

    /** Occupied counters of a tile's profile (bounded by counterCap_). */
    size_t profiledCounters(TileId t) const;

  private:
    /**
     * Tagged per-tile committed-cycle counters: a fixed array of
     * counterCap_ (bucket, cycles) slots, like the hardware's small
     * tagged counter structure. On overflow the least-loaded counter is
     * merged away space-saving style: its tag is reassigned to the new
     * bucket and the sample accumulates on top of the evicted count, so
     * heavy buckets are never displaced by one-off samples and total
     * profiled load is conserved.
     */
    struct TileProfile
    {
        struct Counter
        {
            uint32_t bucket;
            uint64_t cycles;
        };
        std::vector<Counter> counters; ///< at most counterCap_ entries
    };

    const SimConfig& cfg_;
    uint32_t counterCap_;
    std::vector<TileId> map_;          ///< bucket -> tile
    std::vector<TileProfile> prof_;    ///< per tile
    std::vector<uint32_t> bucketsPerTile_;
};

} // namespace ssim
