#include "swarm/wire.h"

#include <cstdio>
#include <sstream>

#include "base/logging.h"

namespace ssim {

const char*
wireKindName(WireKind k)
{
    switch (k) {
      case WireKind::Access: return "access";
      case WireKind::Reduce: return "reduce";
      case WireKind::Compute: return "compute";
      case WireKind::Enqueue: return "enqueue";
      case WireKind::Finish: return "finish";
      default: return "?";
    }
}

namespace {

/// Bound on serialized vector lengths: largest real occupancy vector is
/// ntiles + 1 lanes; anything bigger than this is a corrupt count.
constexpr uint64_t kMaxVecLen = 1u << 20;

/**
 * Visit every SimStats field in the frozen serialization order. Both
 * the serializer and the parser walk this single list, so the text
 * format cannot drift from the struct: a new field serializes the
 * moment it is added here, and an old snapshot missing it (or carrying
 * an unknown one) fails the strict sequence check.
 */
template <typename Scalar, typename Vec>
void
visitStats(SimStats& s, Scalar&& scalar, Vec&& vec)
{
    scalar("cycles", s.cycles);
    vec("coreCycles", s.coreCycles.data(), s.coreCycles.size());
    vec("flits", s.flits.data(), s.flits.size());
    scalar("tasksCommitted", s.tasksCommitted);
    scalar("tasksAborted", s.tasksAborted);
    scalar("abortsConflict", s.abortsConflict);
    scalar("abortsDisplace", s.abortsDisplace);
    scalar("abortsGridlock", s.abortsGridlock);
    scalar("tasksSpilled", s.tasksSpilled);
    scalar("tasksStolen", s.tasksStolen);
    scalar("dispatchSkips", s.dispatchSkips);
    scalar("conflictChecks", s.conflictChecks);
    scalar("lbReconfigs", s.lbReconfigs);
    scalar("bucketsMoved", s.bucketsMoved);
    scalar("l1Hits", s.l1Hits);
    scalar("l1Misses", s.l1Misses);
    scalar("l2Hits", s.l2Hits);
    scalar("l2Misses", s.l2Misses);
    scalar("l3Hits", s.l3Hits);
    scalar("l3Misses", s.l3Misses);
    scalar("concProbeHits", s.concProbeHits);
    scalar("concProbeStale", s.concProbeStale);
    scalar("concProbeCold", s.concProbeCold);
    scalar("concWorkerProbes", s.concWorkerProbes);
    scalar("bankLockAcquired", s.bankLockAcquired);
    scalar("bankLockContended", s.bankLockContended);
    scalar("lineEntriesScrubbed", s.lineEntriesScrubbed);
    scalar("workerApplies", s.workerApplies);
    scalar("replaySquashed", s.replaySquashed);
    scalar("coordinatorFallbackApplies", s.coordinatorFallbackApplies);
    scalar("crossBankEffects", s.crossBankEffects);
    scalar("classifiedRoReads", s.classifiedRoReads);
    scalar("classifiedPrivAccesses", s.classifiedPrivAccesses);
    scalar("classifiedRedOps", s.classifiedRedOps);
    scalar("classifiedFoldWords", s.classifiedFoldWords);
    scalar("classifiedDemotions", s.classifiedDemotions);
    scalar("classifyAborts", s.classifyAborts);
    scalar("lineTableRegs", s.lineTableRegs);
    scalar("traceServedCosts", s.traceServedCosts);
    scalar("traceFallbackCosts", s.traceFallbackCosts);
    scalar("crossShardMsgs", s.crossShardMsgs);
    scalar("shardStepsSent", s.shardStepsSent);
    scalar("shardStepsRecv", s.shardStepsRecv);
    scalar("shardProgressMsgs", s.shardProgressMsgs);
}

template <typename Scalar, typename DynVec>
void
visitDynVecs(SimStats& s, Scalar&&, DynVec&& dyn)
{
    dyn("laneScheduled", s.laneScheduled);
    dyn("lanePeakPending", s.lanePeakPending);
    dyn("bankPeakLines", s.bankPeakLines);
    dyn("bankProbes", s.bankProbes);
    dyn("bankApplies", s.bankApplies);
}

bool
fail(std::string* err, const std::string& why)
{
    if (err)
        *err = why;
    return false;
}

bool
parseU64(const std::string& tok, uint64_t& out)
{
    if (tok.empty() || tok.size() > 20)
        return false;
    uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        uint64_t nv = v * 10 + uint64_t(c - '0');
        if (nv / 10 != v)
            return false; // overflow
        v = nv;
    }
    out = v;
    return true;
}

bool
parseHex64(const std::string& tok, uint64_t& out)
{
    if (tok.empty() || tok.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : tok) {
        uint64_t d;
        if (c >= '0' && c <= '9')
            d = uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = uint64_t(c - 'a') + 10;
        else
            return false;
        v = (v << 4) | d;
    }
    out = v;
    return true;
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

/// Sequential line reader with one-token-lookahead-free strict parsing.
struct LineReader
{
    std::istringstream in;
    std::string* err;
    bool ok = true;

    LineReader(const std::string& text, std::string* e)
        : in(text), err(e)
    {
    }

    bool
    line(std::string& out)
    {
        if (!ok)
            return false;
        if (!std::getline(in, out)) {
            ok = fail(err, "truncated snapshot");
            return false;
        }
        return true;
    }
};

} // namespace

std::string
ShardSnapshot::serialize() const
{
    std::ostringstream out;
    out << "swarmsim-shard v1\n";
    out << "shard " << shard << "\n";
    out << "valid " << (valid ? 1 : 0) << "\n";
    out << "statsdigest " << hex64(statsDigest) << "\n";
    out << "resultdigest " << hex64(resultDigest) << "\n";
    SimStats& s = const_cast<SimStats&>(stats);
    visitStats(
        s,
        [&](const char* name, uint64_t& v) {
            out << "stat " << name << " " << v << "\n";
        },
        [&](const char* name, uint64_t* data, size_t n) {
            out << "vec " << name << " " << n;
            for (size_t i = 0; i < n; i++)
                out << " " << data[i];
            out << "\n";
        });
    visitDynVecs(
        s, [](const char*, uint64_t&) {},
        [&](const char* name, std::vector<uint64_t>& v) {
            out << "vec " << name << " " << v.size();
            for (uint64_t x : v)
                out << " " << x;
            out << "\n";
        });
    out << "end\n";
    return out.str();
}

bool
ShardSnapshot::parse(const std::string& text, std::string* err)
{
    LineReader rd(text, err);
    std::string line;

    if (!rd.line(line) || line != "swarmsim-shard v1")
        return fail(err, "missing 'swarmsim-shard v1' header");

    ShardSnapshot snap; // parse into a fresh snapshot; swap on success

    auto field = [&](const char* name, auto&& parseVal) -> bool {
        if (!rd.line(line))
            return false;
        std::istringstream ls(line);
        std::string kw;
        if (!(ls >> kw) || kw != name)
            return fail(err, std::string("expected '") + name +
                                 "', got '" + line + "'");
        return parseVal(ls);
    };

    uint64_t u = 0;
    bool parsed =
        field("shard",
              [&](std::istringstream& ls) {
                  std::string tok, extra;
                  if (!(ls >> tok) || !parseU64(tok, u) ||
                      u > UINT32_MAX || (ls >> extra))
                      return fail(err, "malformed shard index");
                  snap.shard = uint32_t(u);
                  return true;
              }) &&
        field("valid",
              [&](std::istringstream& ls) {
                  std::string tok, extra;
                  if (!(ls >> tok) || (tok != "0" && tok != "1") ||
                      (ls >> extra))
                      return fail(err, "malformed valid flag");
                  snap.valid = tok == "1";
                  return true;
              }) &&
        field("statsdigest",
              [&](std::istringstream& ls) {
                  std::string tok, extra;
                  if (!(ls >> tok) || !parseHex64(tok, snap.statsDigest) ||
                      (ls >> extra))
                      return fail(err, "malformed statsdigest");
                  return true;
              }) &&
        field("resultdigest", [&](std::istringstream& ls) {
            std::string tok, extra;
            if (!(ls >> tok) || !parseHex64(tok, snap.resultDigest) ||
                (ls >> extra))
                return fail(err, "malformed resultdigest");
            return true;
        });
    if (!parsed)
        return false;

    bool bad = false;
    auto scalar = [&](const char* name, uint64_t& v) {
        if (bad || !rd.line(line)) {
            bad = true;
            return;
        }
        std::istringstream ls(line);
        std::string kw, nm, tok, extra;
        if (!(ls >> kw >> nm >> tok) || kw != "stat" || nm != name ||
            !parseU64(tok, v) || (ls >> extra)) {
            bad = !fail(err, std::string("expected 'stat ") + name +
                                 " N', got '" + line + "'");
        }
    };
    auto fixedVec = [&](const char* name, uint64_t* data, size_t n) {
        if (bad || !rd.line(line)) {
            bad = true;
            return;
        }
        std::istringstream ls(line);
        std::string kw, nm, cnt, extra;
        uint64_t declared = 0;
        if (!(ls >> kw >> nm >> cnt) || kw != "vec" || nm != name ||
            !parseU64(cnt, declared) || declared != n) {
            bad = !fail(err, std::string("expected 'vec ") + name + " " +
                                 std::to_string(n) + " ...', got '" + line +
                                 "'");
            return;
        }
        for (size_t i = 0; i < n; i++) {
            std::string tok;
            if (!(ls >> tok) || !parseU64(tok, data[i])) {
                bad = !fail(err, std::string("short vec ") + name);
                return;
            }
        }
        if (ls >> extra)
            bad = !fail(err, std::string("trailing tokens in vec ") + name);
    };
    visitStats(snap.stats, scalar, fixedVec);
    auto dynVec = [&](const char* name, std::vector<uint64_t>& v) {
        if (bad || !rd.line(line)) {
            bad = true;
            return;
        }
        std::istringstream ls(line);
        std::string kw, nm, cnt, extra;
        uint64_t declared = 0;
        if (!(ls >> kw >> nm >> cnt) || kw != "vec" || nm != name ||
            !parseU64(cnt, declared) || declared > kMaxVecLen) {
            bad = !fail(err, std::string("expected 'vec ") + name +
                                 " N ...', got '" + line + "'");
            return;
        }
        v.resize(declared);
        for (uint64_t i = 0; i < declared; i++) {
            std::string tok;
            if (!(ls >> tok) || !parseU64(tok, v[i])) {
                bad = !fail(err, std::string("short vec ") + name);
                return;
            }
        }
        if (ls >> extra)
            bad = !fail(err, std::string("trailing tokens in vec ") + name);
    };
    visitDynVecs(snap.stats, [](const char*, uint64_t&) {}, dynVec);
    if (bad || !rd.ok)
        return false;

    if (!rd.line(line) || line != "end")
        return fail(err, "missing 'end' sentinel (truncated snapshot?)");
    std::string trailing;
    if (rd.in >> trailing)
        return fail(err, "trailing tokens after 'end'");

    *this = std::move(snap);
    return true;
}

} // namespace ssim
