#include "swarm/load_balancer.h"

#include <algorithm>
#include <numeric>

#include "base/logging.h"

namespace ssim {

LoadBalancer::LoadBalancer(const SimConfig& cfg)
    : cfg_(cfg), counterCap_(2 * cfg.bucketsPerTile)
{
    uint32_t nbuckets = cfg.numBuckets();
    map_.resize(nbuckets);
    // Initially, the tile map divides buckets uniformly among tiles.
    for (uint32_t b = 0; b < nbuckets; b++)
        map_[b] = TileId(b % cfg.ntiles);
    prof_.resize(cfg.ntiles);
    bucketsPerTile_.assign(cfg.ntiles, cfg.bucketsPerTile);
}

void
LoadBalancer::profileCommit(TileId tile, uint32_t bucket, uint64_t cycles)
{
    auto& counters = prof_[tile].counters;
    TileProfile::Counter* min = nullptr;
    for (auto& c : counters) {
        if (c.bucket == bucket) {
            c.cycles += cycles;
            return;
        }
        if (!min || c.cycles < min->cycles)
            min = &c;
    }
    if (counters.size() < counterCap_) {
        counters.push_back({bucket, cycles});
        return;
    }
    // Full: evict/merge the least-loaded counter (ties: lowest slot).
    min->bucket = bucket;
    min->cycles += cycles;
}

uint64_t
LoadBalancer::profiledLoad(TileId t) const
{
    uint64_t sum = 0;
    for (const auto& c : prof_[t].counters)
        sum += c.cycles;
    return sum;
}

size_t
LoadBalancer::profiledCounters(TileId t) const
{
    return prof_[t].counters.size();
}

uint32_t
LoadBalancer::reconfigure(const std::vector<uint64_t>& idle_tasks_per_tile)
{
    uint32_t ntiles = cfg_.ntiles;
    if (ntiles <= 1) {
        for (auto& p : prof_)
            p.counters.clear();
        return 0;
    }

    // Per-bucket load estimates.
    std::vector<uint64_t> bucketLoad(map_.size(), 0);
    std::vector<uint64_t> tileLoad(ntiles, 0);
    if (cfg_.lbSignal == LbSignal::CommittedCycles) {
        for (uint32_t t = 0; t < ntiles; t++) {
            for (const auto& c : prof_[t].counters) {
                // A bucket may have been remapped mid-epoch; attribute
                // its cycles to the tile that ran them.
                bucketLoad[c.bucket] += c.cycles;
                tileLoad[t] += c.cycles;
            }
        }
    } else {
        // Ablation: use queued idle tasks as the load signal. We only
        // know per-tile totals, so spread them evenly over the tile's
        // buckets (Sec. VI-A's variant balances per-tile idle counts).
        ssim_assert(idle_tasks_per_tile.size() == ntiles);
        for (uint32_t t = 0; t < ntiles; t++)
            tileLoad[t] = idle_tasks_per_tile[t];
        for (uint32_t b = 0; b < map_.size(); b++) {
            TileId t = map_[b];
            if (bucketsPerTile_[t] > 0)
                bucketLoad[b] = tileLoad[t] / bucketsPerTile_[t];
        }
    }

    uint64_t total = std::accumulate(tileLoad.begin(), tileLoad.end(),
                                     uint64_t(0));
    for (auto& p : prof_)
        p.counters.clear();
    if (total == 0)
        return 0;
    double avg = double(total) / ntiles;

    // Budgets: an overloaded tile may shed at most f of its surplus; an
    // underloaded tile may absorb at most f of its deficit.
    std::vector<double> shed(ntiles, 0), absorb(ntiles, 0);
    for (uint32_t t = 0; t < ntiles; t++) {
        double d = double(tileLoad[t]) - avg;
        if (d > 0)
            shed[t] = cfg_.lbFraction * d;
        else
            absorb[t] = cfg_.lbFraction * -d;
    }

    // Donors from most to least loaded; receivers from least to most.
    std::vector<uint32_t> order(ntiles);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (tileLoad[a] != tileLoad[b])
            return tileLoad[a] > tileLoad[b];
        return a < b;
    });

    // Buckets of each donor, heaviest first.
    std::vector<std::vector<uint32_t>> tileBuckets(ntiles);
    for (uint32_t b = 0; b < map_.size(); b++)
        tileBuckets[map_[b]].push_back(b);
    for (auto& v : tileBuckets) {
        std::sort(v.begin(), v.end(), [&](uint32_t a, uint32_t b) {
            if (bucketLoad[a] != bucketLoad[b])
                return bucketLoad[a] > bucketLoad[b];
            return a < b;
        });
    }

    uint32_t moved = 0;
    size_t recvIdx = ntiles; // index into `order`, from the back
    for (uint32_t donorPos = 0; donorPos < ntiles; donorPos++) {
        uint32_t donor = order[donorPos];
        if (shed[donor] <= 0)
            continue;
        for (uint32_t b : tileBuckets[donor]) {
            if (shed[donor] <= 0)
                break;
            double w = double(bucketLoad[b]);
            if (w <= 0 || w > shed[donor])
                continue;
            if (bucketsPerTile_[donor] <= 1)
                break; // every tile keeps at least one bucket
            // Find the neediest receiver with remaining capacity. A
            // bucket may overshoot the receiver's capped deficit by at
            // most its own weight; the receiver then stops absorbing.
            uint32_t best = ntiles;
            double bestAbsorb = 0;
            for (size_t i = ntiles; i-- > 0;) {
                uint32_t r = order[i];
                if (r == donor)
                    continue;
                if (absorb[r] > 0 && absorb[r] > bestAbsorb) {
                    best = r;
                    bestAbsorb = absorb[r];
                }
                if (tileLoad[r] >= avg)
                    break; // remaining candidates are all loaded
            }
            (void)recvIdx;
            if (best == ntiles)
                continue;
            map_[b] = TileId(best);
            bucketsPerTile_[donor]--;
            bucketsPerTile_[best]++;
            shed[donor] -= w;
            absorb[best] -= w;
            moved++;
        }
    }
    return moved;
}

} // namespace ssim
