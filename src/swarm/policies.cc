#include "swarm/policies.h"

#include <array>

#include "base/hash.h"
#include "base/logging.h"
#include "swarm/backends/functional_backend.h"
#include "swarm/backends/timing_backend.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/load_balancer.h"
#include "swarm/scheduler.h"

namespace ssim {

namespace {

// ---- Concrete spatial schedulers (paper Sec. II-C, III-B) -------------------

class RandomScheduler : public SpatialScheduler
{
  public:
    using SpatialScheduler::SpatialScheduler;

    TileId
    place(bool, uint64_t, TileId) override
    {
        return randomTile();
    }

    // The Random baseline ignores hints entirely, SAMEHINT included.
    TileId
    placeSameHint(TileId) override
    {
        return randomTile();
    }
};

class StealingScheduler : public SpatialScheduler
{
  public:
    using SpatialScheduler::SpatialScheduler;

    TileId
    place(bool, uint64_t, TileId src_tile) override
    {
        return src_tile; // new tasks enqueue to the local tile
    }

    bool stealing() const override { return true; }
};

class HintScheduler : public SpatialScheduler
{
  public:
    using SpatialScheduler::SpatialScheduler;

    TileId
    place(bool has_hint, uint64_t hint, TileId) override
    {
        if (!has_hint)
            return randomTile();
        return hintToTile(hint, cfg_.ntiles);
    }
};

class LbHintScheduler : public SpatialScheduler
{
  public:
    LbHintScheduler(const SimConfig& cfg, Rng& rng, LoadBalancer* lb)
        : SpatialScheduler(cfg, rng), lb_(lb)
    {
        ssim_assert(lb_, "LBHints requires a load balancer");
    }

    TileId
    place(bool has_hint, uint64_t hint, TileId) override
    {
        if (!has_hint)
            return randomTile();
        return lb_->tileOfBucket(hintToBucket(hint, cfg_.numBuckets()));
    }

  private:
    LoadBalancer* lb_;
};

template <typename S>
std::unique_ptr<SpatialScheduler>
makeSimple(const SimConfig& cfg, Rng& rng, LoadBalancer*)
{
    return std::make_unique<S>(cfg, rng);
}

std::unique_ptr<SpatialScheduler>
makeLbHints(const SimConfig& cfg, Rng& rng, LoadBalancer* lb)
{
    return std::make_unique<LbHintScheduler>(cfg, rng, lb);
}

constexpr size_t kNumSchedulers = 4;

/// Value<->name tables shared by set() and describe() so every knob has
/// a single source of names.
constexpr std::array<const char*, 3> kVictimNames = {"most-loaded",
                                                     "random", "nearest"};
constexpr std::array<const char*, 3> kChoiceNames = {"earliest", "random",
                                                     "latest"};
constexpr std::array<const char*, 2> kSignalNames = {"committed", "idle"};

template <typename E, size_t N>
bool
lookup(const std::array<const char*, N>& names, const std::string& value,
       E& out)
{
    for (size_t i = 0; i < N; i++) {
        if (value == names[i]) {
            out = E(i);
            return true;
        }
    }
    return false;
}

/// Digit-only u32 parse for numeric policy values (shards=, shard-hop=);
/// rejects empty strings, signs, and overflow.
bool
parseU32Value(const std::string& value, uint32_t& out)
{
    if (value.empty() || value.size() > 9)
        return false;
    uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + uint64_t(c - '0');
    }
    out = uint32_t(v);
    return true;
}

/// One registry slot per SchedulerType: factory plus the name used for
/// selection (set), listing (schedulerNames), and labeling (describe).
/// Overriding a slot relabels it everywhere consistently.
struct SchedulerEntry
{
    const char* name;
    policies::SchedulerFactory factory;
};

std::array<SchedulerEntry, kNumSchedulers>&
registry()
{
    static std::array<SchedulerEntry, kNumSchedulers> r = {{
        {"random", &makeSimple<RandomScheduler>},     // Random
        {"stealing", &makeSimple<StealingScheduler>}, // Stealing
        {"hints", &makeSimple<HintScheduler>},        // Hints
        {"lbhints", &makeLbHints},                    // LBHints
    }};
    return r;
}

/// Engine-backend registry: open-ended (custom backends append), with
/// the built-ins pre-seeded. Selection is by name only — there is
/// no enum, so plugging in a backend never touches SimConfig.
struct BackendEntry
{
    const char* name;
    policies::BackendFactory factory;
};

std::vector<BackendEntry>&
backendRegistry()
{
    static std::vector<BackendEntry> r = {
        {"timing", &makeTimingBackend},
        {"functional", &makeFunctionalBackend},
        {"trace-record", &makeTraceRecordBackend},
        {"trace-replay", &makeTraceReplayBackend},
    };
    return r;
}

std::string
backendNameList()
{
    std::string s;
    for (const auto& e : backendRegistry()) {
        if (!s.empty())
            s += ", ";
        s += e.name;
    }
    return s;
}

} // namespace

namespace policies {

void
registerScheduler(SchedulerType type, SchedulerFactory f, const char* name)
{
    ssim_assert(size_t(type) < kNumSchedulers && f);
    registry()[size_t(type)].factory = f;
    if (name)
        registry()[size_t(type)].name = name;
}

std::unique_ptr<SpatialScheduler>
makeScheduler(const SimConfig& cfg, Rng& rng, LoadBalancer* lb)
{
    ssim_assert(size_t(cfg.sched) < kNumSchedulers, "bad scheduler type");
    return registry()[size_t(cfg.sched)].factory(cfg, rng, lb);
}

std::unique_ptr<LoadBalancer>
makeLoadBalancer(const SimConfig& cfg)
{
    if (cfg.sched != SchedulerType::LBHints)
        return nullptr;
    return std::make_unique<LoadBalancer>(cfg);
}

std::vector<std::string>
schedulerNames()
{
    std::vector<std::string> names;
    names.reserve(kNumSchedulers);
    for (const auto& e : registry())
        names.push_back(e.name);
    return names;
}

void
registerBackend(const char* name, BackendFactory f)
{
    ssim_assert(name && f);
    for (auto& e : backendRegistry()) {
        if (std::string(e.name) == name) {
            e.factory = f;
            return;
        }
    }
    backendRegistry().push_back({name, f});
}

std::unique_ptr<EngineBackend>
makeBackend(const SimConfig& cfg, Mesh& mesh, MemorySystem& mem)
{
    requireKnownBackend(cfg.engineBackend, "cfg.engineBackend");
    for (const auto& e : backendRegistry())
        if (cfg.engineBackend == e.name)
            return e.factory(cfg, mesh, mem);
    panic("unreachable: '%s' validated but not found",
          cfg.engineBackend.c_str());
}

void
requireKnownBackend(const std::string& name, const char* source)
{
    if (!knownBackend(name))
        fatal("unknown engine backend '%s' (from %s; registered: %s)",
              name.c_str(), source, backendNameList().c_str());
}

std::vector<std::string>
backendNames()
{
    std::vector<std::string> names;
    names.reserve(backendRegistry().size());
    for (const auto& e : backendRegistry())
        names.push_back(e.name);
    return names;
}

bool
knownBackend(const std::string& name)
{
    for (const auto& e : backendRegistry())
        if (name == e.name)
            return true;
    return false;
}

bool
set(SimConfig& cfg, const std::string& key, const std::string& value)
{
    if (key == "sched") {
        for (size_t i = 0; i < kNumSchedulers; i++) {
            if (value == registry()[i].name) {
                cfg.sched = SchedulerType(i);
                cfg.serializeSameHint =
                    (cfg.sched == SchedulerType::Hints ||
                     cfg.sched == SchedulerType::LBHints);
                return true;
            }
        }
        return false;
    }
    if (key == "steal-victim")
        return lookup(kVictimNames, value, cfg.stealVictim);
    if (key == "steal-choice")
        return lookup(kChoiceNames, value, cfg.stealChoice);
    if (key == "lb-signal")
        return lookup(kSignalNames, value, cfg.lbSignal);
    if (key == "serialize") {
        if (value == "on")
            cfg.serializeSameHint = true;
        else if (value == "off")
            cfg.serializeSameHint = false;
        else
            return false;
        return true;
    }
    if (key == "backend") {
        if (!knownBackend(value))
            return false;
        cfg.engineBackend = value;
        return true;
    }
    if (key == "conc-conflicts") {
        if (value == "on")
            cfg.concurrentConflicts = true;
        else if (value == "off")
            cfg.concurrentConflicts = false;
        else
            return false;
        return true;
    }
    if (key == "parallel-replay") {
        if (value == "on")
            cfg.parallelReplay = true;
        else if (value == "off")
            cfg.parallelReplay = false;
        else
            return false;
        return true;
    }
    if (key == "classify") {
        if (value != "off" && value != "profile")
            return false;
        cfg.classifyMode = value;
        return true;
    }
    if (key == "shards") {
        uint32_t n = 0;
        if (!parseU32Value(value, n) || n < 1)
            return false;
        cfg.numShards = n;
        return true;
    }
    if (key == "shard-hop") {
        uint32_t n = 0;
        if (!parseU32Value(value, n))
            return false;
        cfg.shardHopPenalty = n;
        return true;
    }
    return false;
}

SimConfig&
apply(SimConfig& cfg, const std::string& spec)
{
    std::vector<std::pair<std::string, std::string>> pairs;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string pair = spec.substr(pos, end - pos);
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            fatal("bad policy spec '%s' (at '%s')", spec.c_str(),
                  pair.c_str());
        pairs.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
        pos = end + 1;
    }
    // Selecting a scheduler resets dependent defaults (serialization),
    // so apply sched first regardless of its position in the spec: the
    // other keys are explicit overrides and must win.
    for (int schedPass = 1; schedPass >= 0; schedPass--) {
        for (const auto& [key, value] : pairs) {
            if ((key == "sched") != (schedPass == 1))
                continue;
            if (!set(cfg, key, value))
                fatal("bad policy spec '%s' (at '%s=%s')", spec.c_str(),
                      key.c_str(), value.c_str());
        }
    }
    return cfg;
}

std::string
describe(const SimConfig& cfg)
{
    std::string s =
        std::string("sched=") + registry()[size_t(cfg.sched)].name;
    if (cfg.sched == SchedulerType::Stealing) {
        s += std::string(",steal-victim=") +
             kVictimNames[size_t(cfg.stealVictim)];
        s += std::string(",steal-choice=") +
             kChoiceNames[size_t(cfg.stealChoice)];
    }
    if (cfg.sched == SchedulerType::LBHints)
        s += std::string(",lb-signal=") + kSignalNames[size_t(cfg.lbSignal)];
    s += ",serialize=";
    s += cfg.serializeSameHint ? "on" : "off";
    // The default backend is implicit so pre-existing labels (and the
    // golden expectations built on them) stay unchanged; likewise the
    // default-off concurrent conflict checks.
    if (cfg.engineBackend != "timing")
        s += ",backend=" + cfg.engineBackend;
    if (cfg.concurrentConflicts)
        s += ",conc-conflicts=on";
    if (cfg.parallelReplay)
        s += ",parallel-replay=on";
    if (cfg.classifyMode != "off")
        s += ",classify=" + cfg.classifyMode;
    if (cfg.numShards > 1)
        s += ",shards=" + std::to_string(cfg.numShards);
    if (cfg.shardHopPenalty > 0)
        s += ",shard-hop=" + std::to_string(cfg.shardHopPenalty);
    return s;
}

} // namespace policies
} // namespace ssim
