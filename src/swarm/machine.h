/**
 * @file
 * The top-level Swarm machine: tiles with cores and task units, the cache
 * hierarchy, the mesh NoC, the commit (GVT) protocol, a spatial scheduler,
 * and (for LBHints) the data-centric load balancer.
 *
 * The Machine executes applications written against swarm/api.h. It is
 * single-threaded and fully deterministic for a given (config, seed,
 * initial task set).
 */
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "swarm/load_balancer.h"
#include "swarm/scheduler.h"
#include "swarm/spec.h"
#include "swarm/task.h"
#include "swarm/task_unit.h"

namespace ssim {

/** Receives every committed task (with its access trace) for profiling. */
class AccessProfiler
{
  public:
    virtual ~AccessProfiler() = default;
    virtual void onCommit(const Task& t) = 0;
};

class Machine
{
  public:
    explicit Machine(const SimConfig& cfg);
    ~Machine();
    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    // ---- Setup -----------------------------------------------------------
    /** Enqueue an initial (root) task before run(). */
    template <typename... Args>
    void
    enqueueInitial(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                   Args... args)
    {
        static_assert(sizeof...(Args) <= 3);
        std::array<uint64_t, 3> a{};
        uint8_t n = 0;
        ((a[n++] = toU64(args)), ...);
        enqueueInitialRaw(fn, ts, hint, a, n);
    }
    void enqueueInitialRaw(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                           const std::array<uint64_t, 3>& args, uint8_t n);

    /** Enable access-trace profiling for the classifier. */
    void setProfiler(AccessProfiler* p) { profiler_ = p; }

    // ---- Execution --------------------------------------------------------
    /** Run all tasks to completion (the paper's swarm::run()). */
    void run();

    // ---- Results ------------------------------------------------------------
    const SimStats& stats() const { return stats_; }
    const SimConfig& config() const { return cfg_; }
    Cycle now() const { return eq_.now(); }
    const Mesh& mesh() const { return mesh_; }
    MemorySystem& memory() { return mem_; }
    LoadBalancer* loadBalancer() { return lb_.get(); }
    uint64_t liveTasks() const { return tasksLive_; }

    // ---- Internal entry points used by the api.h awaiters -------------------
    void issueAccess(Task* t, swarm::MemAwaiter* aw);
    void issueCompute(Task* t, uint32_t cycles);
    void issueEnqueue(Task* t, const swarm::EnqueueAwaiter& aw);

  private:
    friend class MachineTestPeer; // white-box unit tests

    struct Core
    {
        enum class Wait : uint8_t { None, Empty, StallCQ };
        Task* task = nullptr;
        Wait wait = Wait::None;
        Cycle waitStart = 0;
        bool finishPending = false; ///< finished task waiting for a CQ slot
        bool everDispatched = false;
    };

    // Topology helpers ------------------------------------------------------
    TileId tileOfCore(CoreId c) const { return c / cfg_.coresPerTile; }
    uint32_t coreIdx(CoreId c) const { return c % cfg_.coresPerTile; }
    CoreId coreId(TileId t, uint32_t idx) const
    {
        return t * cfg_.coresPerTile + idx;
    }

    // Task lifecycle (machine.cc) ------------------------------------------
    Task* createTask(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                     const std::array<uint64_t, 3>& args, uint8_t nargs,
                     Task* parent, TileId src_tile);
    void arriveTask(uint64_t uid, uint64_t gen);
    void tryDispatch(TileId tile);
    void dispatchOn(TileId tile, uint32_t idx, Task* t);
    void resumeCoro(uint64_t uid, uint64_t gen);
    void finishTaskAttempt(Task* t);
    bool tryTakeCommitSlot(Task* t); ///< may displace a later finished task
    void freeCore(Task* t);
    void leaveWait(Core& core, CycleBucket bucket);
    void enterWait(Core& core, Core::Wait w);
    void retryFinishPending(TileId tile);
    Task* lookupTask(uint64_t uid) const;

    // Spills (machine.cc) ------------------------------------------------------
    void maybeSpill(TileId tile);
    void unspillIfRoom(TileId tile);

    // Stealing (machine.cc) ------------------------------------------------------
    bool trySteal(TileId thief);

    // Conflicts and aborts (machine.cc) -------------------------------------------
    /// Abort every uncommitted task conflicting with t's access; returns
    /// the number of candidate tasks compared (for check latency).
    uint32_t resolveConflicts(Task* t, LineAddr line, bool is_write);
    void abortTasks(const std::vector<Task*>& roots, bool discard_roots,
                    TileId cause_tile);
    void rollbackTask(Task* t, TileId cause_tile);
    void discardTask(Task* t);
    void requeueTask(Task* t);

    // Commit protocol (gvt.cc) -----------------------------------------------------
    void gvtEpoch();
    std::optional<std::pair<Timestamp, uint64_t>> computeGvt() const;
    void commitTask(Task* t);
    void breakCommitGridlock(TileId tile);
    void lbEpoch();

    void scheduleDispatch(TileId tile);
    void finalizeStats();

    template <typename T>
    static uint64_t
    toU64(T v)
    {
        if constexpr (std::is_pointer_v<T>) {
            return reinterpret_cast<uint64_t>(v);
        } else {
            static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
            uint64_t out = 0;
            std::memcpy(&out, &v, sizeof(T));
            return out;
        }
    }

    SimConfig cfg_;
    EventQueue eq_;
    Mesh mesh_;
    SimStats stats_;
    MemorySystem mem_;
    Rng rng_;
    std::unique_ptr<LoadBalancer> lb_;
    std::unique_ptr<SpatialScheduler> sched_;

    std::vector<TaskUnit> units_; ///< one per tile
    std::vector<Core> cores_;     ///< flat, coreId-indexed
    LineTable lineTable_;
    std::unordered_map<uint64_t, Task*> liveTasks_;

    AccessProfiler* profiler_ = nullptr;
    uint64_t nextUid_ = 0;
    uint64_t tasksLive_ = 0;
    uint64_t traceEpochs_ = 0;
    uint32_t rrInitTile_ = 0; ///< round-robin placement of initial tasks
    Cycle lastCommitCycle_ = 0;
    bool running_ = false;
};

} // namespace ssim
