/**
 * @file
 * The top-level Swarm machine: wiring and the public API.
 *
 * Machine composes the layered execution pipeline out of four
 * collaborating subsystems behind narrow interfaces:
 *
 *  - ExecutionEngine (swarm/execution_engine.h): core dispatch, task
 *    lifecycle, coroutine resumption, wait accounting — pure mechanism.
 *  - ConflictManager (swarm/conflict_manager.h): line table, eager
 *    conflict detection, abort/rollback/requeue cascades.
 *  - CommitController (swarm/commit_controller.h): GVT epochs, ordered
 *    commits, gridlock breaking, commit-side profiling hooks.
 *  - CapacityManager (swarm/capacity_manager.h): spill/unspill
 *    coalescers and work-stealing.
 *
 * Placement policy (the spatial scheduler), the data-centric load
 * balancer, and the engine's cost model (the EngineBackend — the
 * cycle-accurate "timing" model or the fast "functional" one; see
 * docs/backends.md) are constructed through the policy registry
 * (swarm/policies.h). The Machine executes applications written against
 * swarm/api.h. It is fully deterministic for a given (config, seed,
 * initial task set) at ANY cfg.hostThreads: with hostThreads == 1 run()
 * is the serial event loop; with hostThreads > 1 a ParallelExecutor
 * (sim/parallel_executor.h) pre-executes pure coroutine segments on a
 * worker pool while all simulated behavior stays on the coordinator
 * thread in event order, so stats are bit-identical to serial mode.
 */
#pragma once

#include <memory>

#include "base/rng.h"
#include "base/stats.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "swarm/backends/engine_backend.h"
#include "swarm/capacity_manager.h"
#include "swarm/commit_controller.h"
#include "swarm/conflict_manager.h"
#include "swarm/execution_engine.h"
#include "swarm/load_balancer.h"
#include "swarm/scheduler.h"
#include "swarm/task.h"

namespace ssim {

class Machine
{
  public:
    /**
     * @p shard non-null makes this machine one replica of a sharded run
     * (swarm/shard.h): the engine only runs coroutines for owned tiles
     * and the commit controller reports GVT epochs to the reducer.
     * Requires cfg.hostThreads == 1 and cfg.topology set.
     */
    explicit Machine(const SimConfig& cfg, ShardContext* shard = nullptr);
    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    // ---- Setup -----------------------------------------------------------
    /** Enqueue an initial (root) task before run(). */
    template <typename... Args>
    void
    enqueueInitial(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                   Args... args)
    {
        static_assert(sizeof...(Args) <= 3);
        std::array<uint64_t, 3> a{};
        uint8_t n = 0;
        ((a[n++] = toU64(args)), ...);
        enqueueInitialRaw(fn, ts, hint, a, n);
    }
    void enqueueInitialRaw(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                           const std::array<uint64_t, 3>& args, uint8_t n);

    /**
     * Schedule a host callback at absolute cycle @p when on the global
     * control lane (must be called before run(); events land between
     * run()'s simulated events in deterministic (cycle, seq) order).
     * The serving driver (harness/serving.h) pre-schedules one such
     * event per request arrival, each of which calls injectRoot.
     */
    void scheduleAt(Cycle when, EventQueue::Callback cb)
    {
        eq_.schedule(when, std::move(cb));
    }

    /** Inject a root task MID-RUN (from a scheduleAt callback). */
    template <typename... Args>
    void
    injectRoot(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
               Args... args)
    {
        static_assert(sizeof...(Args) <= 3);
        std::array<uint64_t, 3> a{};
        uint8_t n = 0;
        ((a[n++] = toU64(args)), ...);
        injectRootRaw(fn, ts, hint, a, n);
    }
    void injectRootRaw(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                       const std::array<uint64_t, 3>& args, uint8_t n);

    /** Enable access-trace profiling for the classifier. */
    void setProfiler(AccessProfiler* p) { commit_->setProfiler(p); }

    // ---- Execution --------------------------------------------------------
    /** Run all tasks to completion (the paper's swarm::run()). */
    void run();

    // ---- Results ------------------------------------------------------------
    /** Host-side counters of the parallel executor (zero in serial mode). */
    struct HostExecStats
    {
        uint64_t scans = 0;      ///< lane scans for pre-resumable events
        uint64_t phases = 0;     ///< fork-join phases run (record + probe)
        uint64_t preResumed = 0; ///< coroutine segments pre-executed
        uint64_t conflictPhases = 0; ///< conflict-check phases run
        uint64_t conflictProbes = 0; ///< accesses probed on workers
        uint64_t replayPhases = 0;   ///< parallel-replay phases run
        uint64_t workerApplies = 0;  ///< effects pre-applied on workers
    };
    const HostExecStats& hostExecStats() const { return hostStats_; }

    const SimStats& stats() const { return stats_; }
    const SimConfig& config() const { return cfg_; }
    Cycle now() const { return eq_.now(); }
    const Mesh& mesh() const { return mesh_; }
    MemorySystem& memory() { return mem_; }
    LoadBalancer* loadBalancer() { return lb_.get(); }
    uint64_t liveTasks() const { return engine_->tasksLive(); }

    // ---- Subsystem access (tools, white-box tests) --------------------------
    ExecutionEngine& engine() { return *engine_; }
    EngineBackend& backend() { return *backend_; }
    ConflictManager& conflictManager() { return *conflict_; }
    CommitController& commitController() { return *commit_; }
    CapacityManager& capacityManager() { return *capacity_; }

    // ---- Internal entry points used by the api.h awaiters -------------------
    void issueAccess(Task* t, swarm::MemAwaiter* aw)
    {
        engine_->issueAccess(t, aw);
    }
    void issueReduce(Task* t, const swarm::ReduceAwaiter& aw)
    {
        engine_->issueReduce(t, aw);
    }
    void issueCompute(Task* t, uint32_t cycles)
    {
        engine_->issueCompute(t, cycles);
    }
    void issueEnqueue(Task* t, const swarm::EnqueueAwaiter& aw)
    {
        engine_->issueEnqueue(t, aw);
    }
    // Inline-effects fast path (awaiter await_ready; false = suspend).
    bool tryInlineAccess(Task* t, swarm::MemAwaiter* aw)
    {
        return engine_->tryInlineAccess(t, aw);
    }
    bool tryInlineReduce(Task* t, const swarm::ReduceAwaiter& aw)
    {
        return engine_->tryInlineReduce(t, aw);
    }
    bool tryInlineCompute(Task* t, uint32_t cycles)
    {
        return engine_->tryInlineCompute(t, cycles);
    }
    bool tryInlineEnqueue(Task* t, const swarm::EnqueueAwaiter& aw)
    {
        return engine_->tryInlineEnqueue(t, aw);
    }

  private:
    void finalizeStats();

    template <typename T>
    static uint64_t
    toU64(T v)
    {
        if constexpr (std::is_pointer_v<T>) {
            return reinterpret_cast<uint64_t>(v);
        } else {
            static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
            uint64_t out = 0;
            std::memcpy(&out, &v, sizeof(T));
            return out;
        }
    }

    SimConfig cfg_;
    EventQueue eq_;
    Mesh mesh_;
    SimStats stats_;
    MemorySystem mem_;
    Rng rng_;
    std::unique_ptr<LoadBalancer> lb_;
    std::unique_ptr<SpatialScheduler> sched_;
    /// Declared before engine_: the engine holds a reference to it.
    std::unique_ptr<EngineBackend> backend_;
    std::unique_ptr<ExecutionEngine> engine_;
    std::unique_ptr<ConflictManager> conflict_;
    std::unique_ptr<CapacityManager> capacity_;
    std::unique_ptr<CommitController> commit_;
    /// Cross-shard seam (null = single-process); owned by the harness.
    ShardContext* shard_ = nullptr;
    HostExecStats hostStats_;
    bool running_ = false;
};

} // namespace ssim
