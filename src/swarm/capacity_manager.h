/**
 * @file
 * Capacity policy: task-queue virtualization through spill coalescers /
 * requeuers (paper Sec. II-B, Table II) and idealized work-stealing
 * (Sec. II-C).
 *
 * Decides *which* tasks leave or enter a tile when queues fill or drain;
 * the ExecutionEngine invokes it on arrival (maybeSpill) and dispatch
 * (unspillIfRoom, trySteal), and the CommitController after commits.
 */
#pragma once

#include "base/rng.h"
#include "base/stats.h"
#include "noc/mesh.h"
#include "sim/config.h"

namespace ssim {

class ExecutionEngine;

class CapacityManager
{
  public:
    CapacityManager(const SimConfig& cfg, Mesh& mesh, SimStats& stats,
                    Rng& rng, ExecutionEngine& engine);

    /** Spill a batch of idle tasks if the task queue crossed threshold. */
    void maybeSpill(TileId tile);
    /** Restore spilled tasks when there is room (or to guarantee progress). */
    void unspillIfRoom(TileId tile);
    /** Steal an idle task for @p thief; victim/choice per config policy. */
    bool trySteal(TileId thief);

  private:
    const SimConfig& cfg_;
    Mesh& mesh_;
    SimStats& stats_;
    Rng& rng_;
    ExecutionEngine& engine_;
};

} // namespace ssim
