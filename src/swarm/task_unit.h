/**
 * @file
 * Per-tile task unit (paper Sec. II-B, III-B).
 *
 * Holds the tile's task queue (descriptors of every task in the tile),
 * commit queue (speculative state of finished tasks), spill buffer
 * (tasks coalesced to memory), and implements the dispatch policy:
 * earliest-(ts, uid) idle task, skipping tasks whose 16-bit hashed hint
 * matches an earlier task currently running on the tile (the "serializing
 * conflicting tasks" mechanism of Sec. III-B).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "sim/config.h"
#include "swarm/task.h"

namespace ssim {

class TaskUnit
{
  public:
    TaskUnit(TileId tile, const SimConfig& cfg);

    // Queues (maintained by the Machine) -----------------------------------
    TaskSet idle;       ///< dispatchable tasks, in (ts, uid) order
    TaskSet unfinished; ///< idle + running + in-flight + spilled (GVT input)
    TaskSet commitQ;    ///< finished tasks awaiting commit
    TaskSet spillBuf;   ///< tasks spilled to memory (unbounded)

    /** Tasks currently occupying cores on this tile (may contain null). */
    std::vector<Task*> coreTasks;

    // Capacity ---------------------------------------------------------------
    /** Task queue occupancy: all descriptors physically held in the tile. */
    uint32_t
    taskQueueOcc() const
    {
        return uint32_t(idle.size()) + inFlight + running +
               uint32_t(commitQ.size());
    }
    bool taskQueueAboveSpillThreshold() const;
    bool commitQueueFull() const
    {
        return commitQ.size() >= commitQueueCap;
    }

    /**
     * Select the next task to dispatch: the earliest idle task, skipping
     * candidates whose hashed hint matches an earlier running task
     * (only when @p serialize_same_hint; NOHINT tasks never match).
     * @param skips incremented once per serialization skip.
     */
    Task* pickDispatchable(bool serialize_same_hint, uint64_t& skips) const;

    /** Earliest unfinished (ts, uid) task, or nullptr. */
    Task*
    minUnfinished() const
    {
        return unfinished.empty() ? nullptr : *unfinished.begin();
    }

    /** Latest finished task in the commit queue, or nullptr. */
    Task*
    maxCommitQ() const
    {
        return commitQ.empty() ? nullptr : *commitQ.rbegin();
    }

    TileId tile;
    uint32_t taskQueueCap;
    uint32_t commitQueueCap;
    double spillThreshold;
    uint32_t inFlight = 0; ///< tasks en route to this tile
    uint32_t running = 0;  ///< tasks occupying cores
};

} // namespace ssim
