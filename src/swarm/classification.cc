#include "swarm/classification.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/logging.h"

namespace ssim {

const char*
lineClassName(LineClass c)
{
    switch (c) {
      case LineClass::ReadOnly: return "ro";
      case LineClass::Private: return "private";
      case LineClass::Reduction: return "reduction";
    }
    return "?";
}

size_t
ClassificationMap::count(LineClass c) const
{
    size_t n = 0;
    for (const auto& [line, cls] : lines)
        n += cls == c;
    return n;
}

bool
ClassificationMap::save(const std::string& path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("ClassificationMap: cannot open '%s' for writing",
             path.c_str());
        return false;
    }
    std::vector<std::pair<LineAddr, LineClass>> sorted(lines.begin(),
                                                       lines.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [line, cls] : sorted) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%" PRIx64 " %s\n", line,
                      lineClassName(cls));
        f << buf;
    }
    f.flush();
    return bool(f);
}

bool
ClassificationMap::load(const std::string& path)
{
    std::ifstream f(path);
    if (!f) {
        warn("ClassificationMap: cannot open '%s'", path.c_str());
        return false;
    }
    std::unordered_map<LineAddr, LineClass> parsed;
    std::string lineStr;
    while (std::getline(f, lineStr)) {
        if (lineStr.empty())
            continue;
        std::istringstream is(lineStr);
        std::string addrHex, clsName;
        if (!(is >> addrHex >> clsName)) {
            warn("ClassificationMap: bad line '%s' in %s", lineStr.c_str(),
                 path.c_str());
            return false;
        }
        char* end = nullptr;
        errno = 0;
        LineAddr line = strtoull(addrHex.c_str(), &end, 16);
        if (end == addrHex.c_str() || *end != '\0' || errno == ERANGE) {
            warn("ClassificationMap: bad address '%s' in %s",
                 addrHex.c_str(), path.c_str());
            return false;
        }
        LineClass cls;
        if (clsName == "ro")
            cls = LineClass::ReadOnly;
        else if (clsName == "private")
            cls = LineClass::Private;
        else if (clsName == "reduction")
            cls = LineClass::Reduction;
        else {
            warn("ClassificationMap: unknown class '%s' in %s",
                 clsName.c_str(), path.c_str());
            return false;
        }
        parsed[line] = cls;
    }
    lines = std::move(parsed);
    return true;
}

} // namespace ssim
