/**
 * @file
 * The policy registry: one place where spatial schedulers and the load
 * balancer are constructed, and where every tunable policy knob can be
 * selected *by name*. Benches, examples, and the harness use this instead
 * of reaching into concrete factories or poking SimConfig fields.
 *
 * Scheduler factories are registered per SchedulerType and can be
 * overridden (pluggable policies); `apply()` parses a comma-separated
 * `key=value` spec:
 *
 *   sched=random|stealing|hints|lbhints
 *   steal-victim=most-loaded|random|nearest
 *   steal-choice=earliest|random|latest
 *   lb-signal=committed|idle
 *   serialize=on|off
 *   backend=timing|functional
 *   conc-conflicts=on|off
 *   parallel-replay=on|off
 *
 * The registry also constructs the ExecutionEngine's cost model (the
 * EngineBackend, swarm/backends/engine_backend.h) by name, and custom
 * backends can be plugged in with registerBackend. See
 * docs/backends.md.
 *
 * Setting `sched` also applies the scheduler's default for same-hint
 * dispatch serialization (on for hints/lbhints), matching
 * SimConfig::withCores. apply() processes `sched=` before the other
 * keys regardless of its position, so an explicit `serialize=` anywhere
 * in the spec overrides the scheduler default.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "sim/config.h"

namespace ssim {

class EngineBackend;
class LoadBalancer;
class MemorySystem;
class Mesh;
class SpatialScheduler;

namespace policies {

/** Factory for a spatial scheduler; @p lb is non-null only for LBHints. */
using SchedulerFactory = std::unique_ptr<SpatialScheduler> (*)(
    const SimConfig&, Rng&, LoadBalancer*);

/**
 * Replace the factory for @p type (plug in a custom placement policy).
 * A non-null @p name relabels the slot on every registry surface —
 * selection via set()/apply(), schedulerNames(), and describe(). Note
 * that code labeling rows by enum via config.cc's
 * schedulerName(SchedulerType) still prints the built-in name; prefer
 * the registry names when a slot may be overridden. The string must
 * outlive the process (use a literal).
 */
void registerScheduler(SchedulerType type, SchedulerFactory f,
                       const char* name = nullptr);

/** Construct the scheduler registered for cfg.sched. */
std::unique_ptr<SpatialScheduler> makeScheduler(const SimConfig& cfg,
                                                Rng& rng, LoadBalancer* lb);

/** Construct the load balancer iff cfg's scheduler uses one (LBHints). */
std::unique_ptr<LoadBalancer> makeLoadBalancer(const SimConfig& cfg);

/** Registered scheduler names, in SchedulerType order. */
std::vector<std::string> schedulerNames();

// ---- Engine backends (swarm/backends/engine_backend.h) -----------------

/**
 * Factory for an engine backend. @p mesh and @p mem are the machine's
 * NoC and cache hierarchy; a backend that collapses the timing model
 * (e.g. "functional") simply ignores them.
 */
using BackendFactory = std::unique_ptr<EngineBackend> (*)(
    const SimConfig&, Mesh&, MemorySystem&);

/**
 * Register (or override, by name) an engine backend. The name must
 * outlive the process (use a literal). Built-ins: "timing",
 * "functional".
 */
void registerBackend(const char* name, BackendFactory f);

/**
 * Construct the backend named by cfg.engineBackend; fatals, listing
 * every registered backend, on an unknown name.
 */
std::unique_ptr<EngineBackend> makeBackend(const SimConfig& cfg, Mesh& mesh,
                                           MemorySystem& mem);

/** Registered backend names, in registration order. */
std::vector<std::string> backendNames();

/** True if @p name is a registered engine backend. */
bool knownBackend(const std::string& name);

/**
 * Fatal — naming @p source (a flag, env var, or config field) and
 * listing every registered backend — unless @p name is registered.
 * The single definition of the unknown-backend error.
 */
void requireKnownBackend(const std::string& name, const char* source);

/**
 * Set one policy knob by name; returns false (and leaves cfg untouched)
 * for an unknown key or value.
 */
bool set(SimConfig& cfg, const std::string& key, const std::string& value);

/**
 * Apply a comma-separated `key=value` policy spec; fatals on a malformed
 * pair so benches fail loudly rather than silently measuring the wrong
 * configuration.
 */
SimConfig& apply(SimConfig& cfg, const std::string& spec);

/** Active policy selection as a spec string (inverse of apply). */
std::string describe(const SimConfig& cfg);

} // namespace policies
} // namespace ssim
