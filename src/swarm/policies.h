/**
 * @file
 * The policy registry: one place where spatial schedulers and the load
 * balancer are constructed, and where every tunable policy knob can be
 * selected *by name*. Benches, examples, and the harness use this instead
 * of reaching into concrete factories or poking SimConfig fields.
 *
 * Scheduler factories are registered per SchedulerType and can be
 * overridden (pluggable policies); `apply()` parses a comma-separated
 * `key=value` spec:
 *
 *   sched=random|stealing|hints|lbhints
 *   steal-victim=most-loaded|random|nearest
 *   steal-choice=earliest|random|latest
 *   lb-signal=committed|idle
 *   serialize=on|off
 *
 * Setting `sched` also applies the scheduler's default for same-hint
 * dispatch serialization (on for hints/lbhints), matching
 * SimConfig::withCores. apply() processes `sched=` before the other
 * keys regardless of its position, so an explicit `serialize=` anywhere
 * in the spec overrides the scheduler default.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "sim/config.h"

namespace ssim {

class LoadBalancer;
class SpatialScheduler;

namespace policies {

/** Factory for a spatial scheduler; @p lb is non-null only for LBHints. */
using SchedulerFactory = std::unique_ptr<SpatialScheduler> (*)(
    const SimConfig&, Rng&, LoadBalancer*);

/**
 * Replace the factory for @p type (plug in a custom placement policy).
 * A non-null @p name relabels the slot on every registry surface —
 * selection via set()/apply(), schedulerNames(), and describe(). Note
 * that code labeling rows by enum via config.cc's
 * schedulerName(SchedulerType) still prints the built-in name; prefer
 * the registry names when a slot may be overridden. The string must
 * outlive the process (use a literal).
 */
void registerScheduler(SchedulerType type, SchedulerFactory f,
                       const char* name = nullptr);

/** Construct the scheduler registered for cfg.sched. */
std::unique_ptr<SpatialScheduler> makeScheduler(const SimConfig& cfg,
                                                Rng& rng, LoadBalancer* lb);

/** Construct the load balancer iff cfg's scheduler uses one (LBHints). */
std::unique_ptr<LoadBalancer> makeLoadBalancer(const SimConfig& cfg);

/** Registered scheduler names, in SchedulerType order. */
std::vector<std::string> schedulerNames();

/**
 * Set one policy knob by name; returns false (and leaves cfg untouched)
 * for an unknown key or value.
 */
bool set(SimConfig& cfg, const std::string& key, const std::string& value);

/**
 * Apply a comma-separated `key=value` policy spec; fatals on a malformed
 * pair so benches fail loudly rather than silently measuring the wrong
 * configuration.
 */
SimConfig& apply(SimConfig& cfg, const std::string& spec);

/** Active policy selection as a spec string (inverse of apply). */
std::string describe(const SimConfig& cfg);

} // namespace policies
} // namespace ssim
