#include "swarm/task_unit.h"

#include "base/logging.h"

namespace ssim {

TaskUnit::TaskUnit(TileId tile_, const SimConfig& cfg)
    : tile(tile_), taskQueueCap(cfg.taskQueueCap()),
      commitQueueCap(cfg.commitQueueCap()), spillThreshold(cfg.spillThreshold)
{
    coreTasks.assign(cfg.coresPerTile, nullptr);
}

bool
TaskUnit::taskQueueAboveSpillThreshold() const
{
    return taskQueueOcc() >= uint32_t(spillThreshold * taskQueueCap);
}

Task*
TaskUnit::pickDispatchable(bool serialize_same_hint, uint64_t& skips) const
{
    for (Task* cand : idle) {
        if (!serialize_same_hint || cand->noHint)
            return cand;
        bool conflict = false;
        // Hardware uses four 16-bit comparators, one per core (Sec. III-B).
        for (Task* run : coreTasks) {
            if (run && run->state == TaskState::Running && !run->noHint &&
                run->hintHash == cand->hintHash && run->before(*cand)) {
                conflict = true;
                break;
            }
        }
        if (!conflict)
            return cand;
        skips++;
    }
    return nullptr;
}

} // namespace ssim
