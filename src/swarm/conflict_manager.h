/**
 * @file
 * Speculation policy: eager conflict detection over the line table, and
 * the abort machinery (rollback, discard-descendant / requeue-dependent
 * cascades) shared by conflict, displacement, and gridlock aborts.
 *
 * The ConflictManager owns every task's speculative footprint (read/write
 * line registration) and is the only subsystem that aborts tasks; the
 * ExecutionEngine, CommitController, and CapacityManager call into it.
 *
 * PROBE/RESOLVE SPLIT: a conflict check has two halves with different
 * concurrency properties.
 *
 *  - The PROBE is a pure read of one line-table bank: scan the line's
 *    reader/writer vectors, classify each uncommitted task against the
 *    accessor by immutable program order, and count the comparisons
 *    (the modeled check latency). Probes against independent banks are
 *    trivially parallel — the paper's data-centric locality claim.
 *  - The RESOLVE applies the consequences — forwarded-data dependence
 *    recording, abort decisions, rollback scheduling, stats — and must
 *    run serialized in event order: it mutates tasks, the line table,
 *    and (through the EngineBackend) the modeled machine.
 *
 * resolveConflicts() is the serialized entry point: it runs probe +
 * resolve inline on the coordinator at the access's exact (cycle, seq)
 * slot. With cfg.concurrentConflicts the ConcurrentConflictBackend
 * (below) additionally lets the parallel executor's workers probe
 * recorded accesses AHEAD of their serial slots, bank by bank; each
 * probe carries its bank's op-sequence number, and resolveConflicts
 * consumes it only if the bank is provably unchanged since — otherwise
 * it rescans inline. Either way the candidate sets, compared counts,
 * abort cascades, and stats are bit-identical to the serial path at any
 * cfg.hostThreads.
 *
 * THREADING CONTRACT: every method except the ConcurrentConflictBackend
 * probe surface runs on the coordinator thread, in event order. The
 * resolve phase — and with it ALL abort traffic priced by the
 * EngineBackend (abort messages, rollback memory traffic) — never runs
 * during a conflict-check phase; an always-on ssim_assert (a relaxed
 * atomic flag load, armed-mode only) enforces it in every build.
 * Worker probes take the per-bank locks (armed when cfg.hostThreads >
 * 1), one whole bank per worker at a time, so two workers never
 * contend on a bank's data and the locks guard the documented seam.
 *
 * The abort path's modeled costs are priced by the EngineBackend — the
 * functional backend collapses them while the abort/rollback semantics
 * stay identical.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/stats.h"
#include "sim/config.h"
#include "sim/parallel_executor.h"
#include "swarm/classification.h"
#include "swarm/spec.h"
#include "swarm/task.h"

namespace ssim {

class ConcurrentConflictBackend;
class EngineBackend;
class ExecutionEngine;
class ParallelReplayBackend;

class ConflictManager
{
  public:
    ConflictManager(const SimConfig& cfg, EngineBackend& backend,
                    SimStats& stats, ExecutionEngine& engine);
    ~ConflictManager();

    /**
     * Probe-then-resolve for @p t's access of @p line: abort every
     * uncommitted conflicting task; returns the number of candidate
     * tasks compared (for check latency). @p cached is a worker-side
     * probe of this exact (task, line, is_write) access, consumed iff
     * its bank op-sequence still matches (else the scan reruns inline —
     * same result either way).
     */
    uint32_t resolveConflicts(Task* t, LineAddr line, bool is_write,
                              Task::ConflictProbe* cached = nullptr);

    /** Register a read/write line in @p t's speculative footprint. */
    void trackRead(Task* t, LineAddr line);
    void trackWrite(Task* t, LineAddr line);

    // ---- Access classification (swarm/classification.h) ---------------
    //
    // Armed when cfg.classifyMap is non-null: classified lines bypass
    // the line table entirely (no registration, no probes, no replay
    // staging — buildQueues skips them). All classification state
    // mutates on the coordinator only, outside worker phases, so it
    // composes with concurrent conflicts and parallel replay without
    // new locks; demotions route through the same fences (fenceLine
    // before any materialization, registrations bump bankOpSeq so
    // stale cached probes and staged steps are squashed).

    /**
     * Classified fast path for a plain access. Returns true if the
     * access was fully handled (value delivered / write applied, no
     * line-table traffic — charge zero compared). Returns false to fall
     * through to the full resolve+track path, possibly after demoting
     * the line (a write to a ReadOnly line, any foreign access to a
     * Private line, a plain write to a Reduction line).
     */
    bool tryClassifiedAccess(Task* t, Addr addr, uint32_t size,
                             bool is_write, uint64_t wval, uint64_t* rval);

    /**
     * Classified fast path for a reduce op: buffer the delta per task
     * on Reduction lines (folded at commit). Returns false to fall
     * through to the tracked read-modify-write fallback.
     */
    bool tryClassifiedReduce(Task* t, Addr addr, int64_t delta);

    /** Is @p line currently classified (not yet demoted)? */
    bool
    classifiedLine(LineAddr line) const
    {
        return !classMap_.empty() && classMap_.count(line) != 0;
    }

    /** Lines still classified (monotonically shrinks via demotion). */
    size_t classifiedLines() const { return classMap_.size(); }

    /**
     * Minimum (ts, uid) key among tasks fold-aborted since the last
     * call, or nullopt (returns-and-clears). The commit controller
     * polls this after every commit: fold-aborted victims are requeued
     * LIVE again, possibly earlier than the epoch's remaining commit
     * candidates, so the sweep must tighten its GVT bound to the
     * earliest victim before committing further.
     */
    std::optional<std::pair<Timestamp, uint64_t>>
    consumeFoldAbort()
    {
        auto k = foldAbortMin_;
        foldAbortMin_.reset();
        return k;
    }

    /**
     * Abort @p roots and cascade: descendants are discarded, dependent
     * (forwarded-data) tasks are aborted and requeued.
     */
    void abortTasks(const std::vector<Task*>& roots, bool discard_roots,
                    TileId cause_tile);

    /**
     * Forget a committed task's speculative line-table footprint. In
     * replay mode the footprint's banks are fenced first: a committed
     * task leaving the table changes later scans' compared counts, and
     * conflictChecks is digest-included.
     */
    void onCommit(Task* t);

    const LineTable& lineTable() const { return lineTable_; }

    /**
     * The worker-probe surface, non-null iff concurrent conflict checks
     * are armed (cfg.concurrentConflicts, hostThreads > 1, and a
     * non-inline backend). Handed to the ParallelExecutor by Machine.
     */
    ConcurrentConflictBackend* concurrentBackend();

    /**
     * The worker-apply surface, non-null iff parallel replay is armed
     * (cfg.parallelReplay, hostThreads > 1, and a non-inline backend).
     * Handed to the ParallelExecutor by Machine; consulted by the
     * ExecutionEngine at every apply slot.
     */
    ParallelReplayBackend* replayBackend();

    /** End-of-run maintenance: drain the deferred epoch scrub. */
    void finalizeRun();

  private:
    friend class ConcurrentConflictBackend;
    friend class ParallelReplayBackend;

    /**
     * The probe: scan @p line's entry and fill @p out with the
     * candidate sets and compared count the resolve needs. Pure read of
     * one bank plus immutable task-order fields; the caller holds the
     * bank's lock (or is single-threaded). The ONLY scan implementation
     * — the serial path and worker probes share it, so they cannot
     * diverge.
     */
    void probeLocked(const Task* t, LineAddr line, bool is_write,
                     Task::ConflictProbe& out) const;

    void rollbackTask(Task* t, TileId cause_tile);
    void discardTask(Task* t);
    void requeueTask(Task* t);

    /**
     * Demote @p line to full tracking for the rest of the run:
     * retroactively register the untracked tasks the class was hiding
     * (RO readers, the private owner, reduction users), then erase the
     * line from the map. Fences the line's bank first; the
     * registrations bump its op-sequence.
     *
     * Reduction users' buffered deltas are materialized with undo
     * records in task order (so descending rollback stays exact), and
     * each materialization RESOLVES like the write it is: tasks still
     * registered on the line later than the user took tracked base
     * reads that miss the delta — exact only under the commit-time
     * fold-abort protocol, which demotion cancels — and are aborted;
     * previously materialized users become forwarded-data sources
     * (dependent edges), so a mid-chain abort takes the deltas stacked
     * on top of it down with it. @p accessor is the task whose
     * in-flight access triggered the demotion: its coroutine frame is
     * live on the host stack, so if the cascade reaches it, abortTasks
     * defers its abort to a same-cycle event instead of rolling it back
     * synchronously.
     */
    void demoteLine(LineAddr line, Task* accessor);

    /**
     * Commit-time reduction fold: apply @p t's buffered deltas to
     * memory and abort every task still registered on the folded lines
     * (all later than the committer — their tracked reads missed the
     * deltas).
     */
    void foldReductions(Task* t);

    /** Drop @p t from the classification side registries. */
    void clearClassifiedState(Task* t);

    const SimConfig& cfg_;
    EngineBackend& backend_;
    SimStats& stats_;
    ExecutionEngine& engine_;
    LineTable lineTable_;
    std::unique_ptr<ConcurrentConflictBackend> ccb_;
    std::unique_ptr<ParallelReplayBackend> rpb_;

    // ---- Classification state (coordinator-only) ----------------------
    /// Live classification (demotion erases; never grows mid-run).
    std::unordered_map<LineAddr, LineClass> classMap_;
    /// Non-null only while demoteLine materializes reduction deltas: the
    /// task whose in-flight access triggered the demotion. abortTasks
    /// must not roll it back synchronously (its coroutine frame is on
    /// the host stack) — it intercepts the mark and defers to
    /// ExecutionEngine::scheduleDoomedAbort instead.
    Task* shieldedAccessor_ = nullptr;
    /// Earliest (ts, uid) fold-abort victim since the last poll;
    /// consumed by CommitController::gvtEpoch (see consumeFoldAbort).
    /// Cascade members (descendants, forwarded-data dependents) are
    /// always later than the root victims, so the min over roots
    /// bounds the whole cascade.
    std::optional<std::pair<Timestamp, uint64_t>> foldAbortMin_;
    /// Untracked readers per ReadOnly line (live tasks only; cleaned at
    /// commit/rollback via Task::roSet).
    std::unordered_map<LineAddr, std::vector<Task*>> roReaders_;
    /// Private-line ownership: claimed by the first accessor, released
    /// when the owner commits or rolls back (serial reuse).
    struct PrivUse
    {
        Task* owner = nullptr;
        bool readIt = false;
        bool wrote = false;
    };
    std::unordered_map<LineAddr, PrivUse> privUse_;
    /// Tasks with buffered deltas per Reduction line, insertion order.
    std::unordered_map<LineAddr, std::vector<Task*>> redUsers_;
};

/**
 * Worker-side concurrent conflict checks over the line-table banks.
 *
 * Between the record and replay phases, the ParallelExecutor hands the
 * scan's (uid, gen) candidates to buildQueues(), which collects every
 * recorded-but-unapplied access step into its home bank's probe queue
 * (in deterministic candidate order — probe results are order-
 * independent pure reads, but the queues themselves stay reproducible).
 * Workers then call probeSlice() concurrently: each claims whole banks
 * from a shared cursor (work stealing — banks with deep queues simply
 * occupy their claimer longer), locks the bank, runs its epoch scrub if
 * the bank is dirty, and executes the queued probes, writing each
 * result plus the bank's op-sequence number into the step. Resolution
 * stays on the coordinator: resolveConflicts consumes a probe at the
 * access's serial (cycle, seq) slot only while the op-sequence is
 * unchanged, so the concurrency is invisible to simulated behavior.
 *
 * THREADING: buildQueues runs on the coordinator between phases;
 * probeSlice is worker-callable within one fork-join phase (the
 * executor's barrier separates it from every coordinator mutation).
 */
class ConcurrentConflictBackend
{
  public:
    ConcurrentConflictBackend(ConflictManager& cm, ExecutionEngine& engine);

    /**
     * Rebuild the per-bank probe queues from @p candidates (the
     * executor's pending-resume scan). Returns the number of probe
     * items queued; steps whose previous probe is still fresh are
     * skipped. Coordinator only.
     */
    size_t buildQueues(const std::vector<ResumeCandidate>& candidates);

    /**
     * Claim banks and probe until the queues drain. Returns (banks
     * claimed, probes executed) for this call. Worker-callable.
     */
    std::pair<uint64_t, uint64_t> probeSlice();

    // ---- Phase guard (abort traffic must never race a probe phase) ----
    void setInPhase(bool on) { inPhase_.store(on, std::memory_order_relaxed); }
    bool inPhase() const { return inPhase_.load(std::memory_order_relaxed); }

    // ---- Cumulative counters (stats snapshot at end of run) -----------
    /** Worker probes ever executed (sum of the per-bank counts). */
    uint64_t probes() const;
    const std::vector<uint64_t>& bankProbes() const { return bankProbes_; }

  private:
    struct Item
    {
        Task* t;
        uint32_t step; ///< index into t->pending.steps
        LineAddr line;
        bool isWrite;
    };

    ConflictManager& cm_;
    ExecutionEngine& engine_;
    std::vector<std::vector<Item>> bankItems_; ///< one queue per bank
    std::vector<uint32_t> activeBanks_; ///< banks with probes or a scrub
    std::atomic<uint32_t> cursor_{0};   ///< work-stealing bank claim
    std::atomic<bool> inPhase_{false};
    /// Probes ever run, per bank: each slot is written only by the
    /// worker that owns the bank at that moment (phase barrier orders
    /// reads).
    std::vector<uint64_t> bankProbes_;
};

/**
 * Bank-partitioned parallel replay: workers speculatively PRE-APPLY
 * recorded accesses, breaking the coordinator's serial apply loop for
 * the conflict-free common case.
 *
 * After the record (and, when armed, conflict-probe) phases, the
 * executor hands the pending-resume candidates to buildQueues(), which
 * collects each candidate's HEAD access step — the one step with a
 * known serial slot: its resume event's (cycle, seq) — into its home
 * bank's queue, sorted by slot. Workers then call applySlice()
 * concurrently: each claims whole banks from a shared cursor, and walks
 * its bank's queue in slot order. A step whose probe shows ZERO
 * conflict candidates is PRE-APPLIED: its functional effect (memory
 * write + undo record, or read-value capture) and line registration are
 * performed early, exactly as the serial apply would, and the step is
 * pushed onto the bank's staged deque. The first step with candidates
 * stops the bank's drain (it needs serialized resolution; anything
 * staged after it would be squashed at its slot anyway) and leaves a
 * stamped probe for the serial path.
 *
 * DETERMINISM: a pre-apply is only observable through the line table
 * bank and the functional memory it touched. Every serial-path
 * operation that can touch those — resolveConflicts on the bank, a
 * commit or rollback whose footprint includes the bank — FENCES it
 * first: staged steps are squashed in reverse slot order (memory
 * restored from the undo tail, the tail line registration undone via
 * LineTable::unregisterTail, which bumps the bank's op-sequence), so
 * the serial path sees exactly the state it would have seen without
 * replay, and re-applies the step inline. A staged step that survives
 * to its own slot is CONSUMED there (ExecutionEngine::applyPendingStep):
 * the staged read value, compared count, and modeled latency are
 * charged in exact slot order through the stateful backend — so the
 * observable simulation, including digest-included conflictChecks, is
 * bit-identical to the serial path.
 *
 * Soundness of the squash inverses: a staged step is always its task's
 * NEWEST speculative state (the task is suspended until the step's own
 * slot consumes it, and a fence covers every path that could grow the
 * task's undo/footprint earlier), so the staged undo record is
 * undo.back() and the staged registration is footprint.back(); per
 * line, staged registrations are vector tails popped in reverse
 * staging order. One staged step maps to exactly one bank, and a bank
 * is owned by one worker per phase, so staging itself never races.
 *
 * THREADING: buildQueues and the fences run on the coordinator;
 * applySlice is worker-callable within one fork-join phase. The fences'
 * empty fast path is one relaxed atomic load.
 */
class ParallelReplayBackend
{
  public:
    ParallelReplayBackend(ConflictManager& cm, ExecutionEngine& engine);

    /**
     * Rebuild the per-bank apply queues from @p candidates: each
     * Running candidate's head access step, keyed by the resume event's
     * serial slot. Returns the number queued. Coordinator only.
     */
    size_t buildQueues(const std::vector<ResumeCandidate>& candidates);

    /**
     * Claim banks and pre-apply until the queues drain. Returns (banks
     * claimed, steps pre-applied) for this call. Worker-callable.
     */
    std::pair<uint64_t, uint64_t> applySlice();

    /**
     * Consume @p t's staged head step at its serial slot (the engine
     * checked steps[next].applied). Pops the bank's staged deque —
     * always from the front: staging is slot-ordered and any
     * out-of-order serial touch of the bank fences it first.
     */
    void onSlotConsume(Task* t);

    // ---- Fences (coordinator only; O(1) when nothing is staged) -------
    /** Squash every staged step in @p line's bank. */
    void fenceLine(LineAddr line);
    /** Squash every staged step in bank @p b, in reverse slot order. */
    void fenceBank(uint32_t b);
    /** Squash the banks of @p t's footprint (commit/rollback paths). */
    void fenceTask(Task* t);
    /** Squash everything (end-of-run safety net). */
    void fenceAll();

    // ---- Phase guard (fences must never race an apply phase) ----------
    void setInPhase(bool on) { inPhase_.store(on, std::memory_order_relaxed); }
    bool inPhase() const { return inPhase_.load(std::memory_order_relaxed); }

    // ---- Cumulative counters (stats snapshot at end of run) -----------
    /** Pre-applies consumed at their serial slot (the replay win). */
    uint64_t consumed() const { return consumed_; }
    /** Pre-applies squashed by a fence (wasted speculation). */
    uint64_t squashed() const { return squashed_; }
    /** Pre-applies ever staged (= consumed + squashed + still staged). */
    uint64_t applies() const;
    const std::vector<uint64_t>& bankApplies() const { return bankApplies_; }

  private:
    struct Item
    {
        Task* t;
        uint32_t step; ///< index into t->pending.steps (== pending.next)
        LineAddr line;
        bool isWrite;
        Cycle when; ///< the resume event's serial slot
        uint64_t seq;
    };
    /// One staged (pre-applied, unconsumed) step.
    struct Staged
    {
        Task* t;
        uint32_t step;
        Cycle when;
        uint64_t seq;
    };

    /// Pre-apply @p s (the bank's lock is held by the caller).
    void preApply(Task* t, Task::PendingStep& s, LineAddr line,
                  uint32_t compared);
    /// Undo one staged step (coordinator, serial stretch).
    void squash(const Staged& rec);

    ConflictManager& cm_;
    ExecutionEngine& engine_;
    std::vector<std::vector<Item>> bankItems_; ///< one queue per bank
    /// Staged steps per bank, in slot order: consumed from the front,
    /// squashed from the back.
    std::vector<std::deque<Staged>> bankStaged_;
    std::vector<uint32_t> activeBanks_; ///< banks with queued items
    std::atomic<uint32_t> cursor_{0};   ///< work-stealing bank claim
    std::atomic<bool> inPhase_{false};
    /// Total staged-but-unconsumed steps: the fences' fast-path gate.
    /// Incremented by bank-owning workers in-phase, decremented by the
    /// coordinator at consume/squash (phase barrier orders the reads).
    std::atomic<uint64_t> pendingApplied_{0};
    /// Pre-applies ever staged, per bank: each slot is written only by
    /// the worker that owns the bank at that moment.
    std::vector<uint64_t> bankApplies_;
    uint64_t consumed_ = 0;
    uint64_t squashed_ = 0;
};

} // namespace ssim
