/**
 * @file
 * Speculation policy: eager conflict detection over the line table, and
 * the abort machinery (rollback, discard-descendant / requeue-dependent
 * cascades) shared by conflict, displacement, and gridlock aborts.
 *
 * The ConflictManager owns every task's speculative footprint (read/write
 * line registration) and is the only subsystem that aborts tasks; the
 * ExecutionEngine, CommitController, and CapacityManager call into it.
 *
 * THREADING CONTRACT: every method runs on the coordinator thread, in
 * event order — in parallel host mode (sim/parallel_executor.h),
 * conflict checks happen when a recorded access is APPLIED at its
 * event's serial slot, never during worker pre-execution, which is what
 * keeps conflict-resolution order (and therefore abort sets and the
 * golden digests) bit-identical at any host thread count. When
 * cfg.hostThreads > 1 the banked line table's per-bank locks are armed
 * and taken around each compound per-line operation; with the shipped
 * executor they are uncontended invariants, and they are the seam a
 * future concurrent conflict-check backend extends.
 *
 * The abort path's modeled costs (abort messages, rollback memory
 * traffic) are priced by the EngineBackend — the functional backend
 * collapses them while the abort/rollback semantics stay identical.
 */
#pragma once

#include <vector>

#include "base/stats.h"
#include "sim/config.h"
#include "swarm/spec.h"
#include "swarm/task.h"

namespace ssim {

class EngineBackend;
class ExecutionEngine;

class ConflictManager
{
  public:
    ConflictManager(const SimConfig& cfg, EngineBackend& backend,
                    SimStats& stats, ExecutionEngine& engine);

    /**
     * Abort every uncommitted task conflicting with @p t's access; returns
     * the number of candidate tasks compared (for check latency).
     */
    uint32_t resolveConflicts(Task* t, LineAddr line, bool is_write);

    /** Register a read/write line in @p t's speculative footprint. */
    void trackRead(Task* t, LineAddr line);
    void trackWrite(Task* t, LineAddr line);

    /**
     * Abort @p roots and cascade: descendants are discarded, dependent
     * (forwarded-data) tasks are aborted and requeued.
     */
    void abortTasks(const std::vector<Task*>& roots, bool discard_roots,
                    TileId cause_tile);

    /** Forget a committed task's speculative line-table footprint. */
    void onCommit(Task* t) { lineTable_.removeTask(t); }

    const LineTable& lineTable() const { return lineTable_; }

  private:
    void rollbackTask(Task* t, TileId cause_tile);
    void discardTask(Task* t);
    void requeueTask(Task* t);

    const SimConfig& cfg_;
    EngineBackend& backend_;
    SimStats& stats_;
    ExecutionEngine& engine_;
    LineTable lineTable_;
};

} // namespace ssim
