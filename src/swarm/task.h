/**
 * @file
 * The Swarm task model (paper Sec. II-A/II-B).
 *
 * Each task has a 64-bit timestamp, a function pointer, up to three
 * register arguments, and a spatial hint. Tasks appear to execute in
 * (timestamp, creation-id) order; the creation id breaks ties among
 * equal-timestamp (unordered) tasks, matching "if multiple tasks have
 * equal timestamp, Swarm chooses an order among them".
 */
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "base/types.h"
#include "swarm/api.h"

namespace ssim {

struct LineEntry; // the banked line table's per-line registry (spec.h)

/** Lifecycle of a task inside the machine. */
enum class TaskState : uint8_t
{
    InFlight = 0, ///< descriptor traveling to its destination tile
    Idle,         ///< queued, not yet dispatched (or aborted and requeued)
    Running,      ///< executing speculatively on a core
    Finished,     ///< done executing, holding a commit queue slot
};

const char* taskStateName(TaskState s);

class Task
{
  public:
    // Identity and program order ------------------------------------------
    uint64_t uid = 0; ///< global creation order; ties equal timestamps
    Timestamp ts = 0;
    swarm::TaskFn fn = nullptr;
    std::array<uint64_t, 3> args{};
    uint8_t nargs = 0;

    // Spatial hint (resolved: SAMEHINT already replaced by parent's hint) --
    uint64_t hint = 0;
    bool noHint = false;
    uint16_t hintHash = 0; ///< 16-bit hash carried through the lifetime
    uint32_t bucket = 0;   ///< LBHints bucket (valid if !noHint)

    // Location and state -----------------------------------------------------
    TileId tile = 0;
    TaskState state = TaskState::InFlight;
    bool spilled = false;
    CoreId runningOn = kNoCore;
    /// Bumped on every abort/requeue; stale events check it and no-op.
    uint64_t generation = 0;

    // Family (for tied-task discard on parent abort) ---------------------------
    Task* parent = nullptr; ///< nulled when the parent commits
    bool untied = true;     ///< roots, or parent has committed
    std::vector<Task*> children; ///< live children of the current attempt

    // Speculative state ----------------------------------------------------------
    struct UndoRec
    {
        Addr addr;
        uint8_t size;
        uint64_t oldVal;
    };
    std::vector<UndoRec> undo; ///< in write order; restored in reverse
    std::unordered_set<LineAddr> readSet;
    std::unordered_set<LineAddr> writeSet;
    /// Indexed line-table footprint: one record per (line, role)
    /// registration, so LineTable::removeTask scrubs exactly this task's
    /// lines without probing the banked map (see swarm/spec.h).
    struct FootRec
    {
        LineEntry* entry;
        LineAddr line;
        bool isWrite;
        bool ownsLine; ///< first record for this line; owns empty-erase
    };
    std::vector<FootRec> footprint;
    /// Tasks that consumed data this task wrote (abort with us): (uid, gen).
    std::vector<std::pair<uint64_t, uint64_t>> dependents;

    // Classified-access state (swarm/classification.h; all empty with
    // classification off). These mirror readSet/writeSet for lines that
    // skip line-table registration, so the ConflictManager can clean its
    // side registries at commit/rollback and demotion can retroactively
    // register exactly the right tasks.
    std::unordered_set<LineAddr> roSet; ///< ReadOnly lines read untracked
    std::vector<LineAddr> privLines;    ///< Private lines owned (claimed)
    std::vector<LineAddr> redLines;     ///< Reduction lines with deltas
    /// Buffered reduction deltas by word address, folded into memory at
    /// commit (or materialized with undo records at demotion). Ordered
    /// so fold/materialize order is deterministic.
    std::map<Addr, int64_t> redShadow;
    /// A demotion's abort cascade reached this task while its access was
    /// on the host stack AND its parent's attempt was rolled back: the
    /// deferred doom event must DISCARD it, not requeue it, even if an
    /// intervening abort bumped the generation first. Deliberately NOT
    /// cleared by resetSpecState — a rollback satisfies a requeue-level
    /// doom but cannot resurrect a task whose spawn was undone.
    bool doomedDiscard = false;

    // Execution ---------------------------------------------------------------------
    std::coroutine_handle<swarm::TaskCoro::promise_type> coro{};
    swarm::TaskCtx ctx;
    uint64_t execCycles = 0; ///< cycles of this execution attempt
    Cycle arrivalCycle = 0;
    /// Inline-mode ordered body issue: times this attempt's body event
    /// re-scheduled itself behind an older same-tile task (bounds the
    /// idle-task wait — see ExecutionEngine::resumeCoro). Reset per
    /// dispatch.
    uint32_t inlineDefers = 0;
    /// Execution attempts so far (dispatches; never reset): attempt
    /// N > 0 means N prior aborts. Feeds DispatchInfo::attempt.
    uint32_t dispatches = 0;

    /**
     * A speculative conflict probe of one recorded access, taken by a
     * worker during the parallel executor's conflict-check phase
     * (swarm/conflict_manager.h, ConcurrentConflictBackend). The probe
     * is a pure read of the access's home line-table bank: the
     * candidate lists and compared count the serial scan would produce,
     * plus the bank's op-sequence number at probe time. At the access's
     * serial apply slot the ConflictManager reuses the probe ONLY if
     * the bank's op-sequence is unchanged — any registration or scrub
     * in between invalidates it and the scan reruns inline — so a
     * consumed probe is bit-identical to the scan it replaces.
     */
    struct ConflictProbe
    {
        std::vector<Task*> later; ///< uncommitted tasks after us (abort)
        std::vector<Task*> earlierWriters; ///< forwarded-data sources
        uint32_t compared = 0; ///< tasks scanned (check-latency input)
        uint64_t opSeq = 0;    ///< bank op-sequence at probe time
        bool valid = false;
    };

    // Parallel host mode: recorded coroutine steps (sim/parallel_executor.h).
    // A worker thread pre-executes this task's pure coroutine segments in
    // "record" mode: each awaiter the coroutine hits is captured here
    // instead of applied. The coordinator replays one step per resume
    // event, through the exact serial engine paths, in exact (cycle, seq)
    // order — so pre-execution never changes simulated behavior.
    struct PendingStep
    {
        enum class Kind : uint8_t { Access, Compute, Enqueue, Finish, Reduce };
        Kind kind = Kind::Compute;
        // Access (recorded by value: the awaiter frame slot may be
        // reused once the worker runs past a write). Reduce reuses addr
        // and carries its delta bit-cast in wval.
        Addr addr = 0;
        uint8_t size = 0;
        bool isWrite = false;
        uint64_t wval = 0;
        /// Live only for the parked tail step (the coroutine is
        /// suspended on this awaiter); the read value is delivered here.
        swarm::MemAwaiter* aw = nullptr;
        /// Access-only: worker-side conflict probe, consumed (moved out)
        /// when the step is applied. Empty outside concurrent-conflict
        /// mode.
        ConflictProbe probe;
        // Speculative pre-apply staging (parallel replay,
        // swarm/conflict_manager.h ParallelReplayBackend). A worker that
        // proved this access conflict-free pre-applied its functional
        // effect ahead of the serial slot; the coordinator either
        // consumes the staging at the exact (cycle, seq) slot or
        // squashes it (fence) before any serial path could observe the
        // early state.
        bool applied = false;      ///< effect pre-applied, not yet consumed
        bool didInsertSet = false; ///< pre-apply registered a new line
        bool createdEntry = false; ///< ... and created the line's entry
        uint64_t stagedRval = 0;   ///< read value captured at pre-apply
        uint32_t stagedCompared = 0; ///< probe's compared count (latency)
        // Compute.
        uint32_t cycles = 0;
        // Enqueue (EnqueueAwaiter payload minus the ctx pointer).
        swarm::TaskFn fn = nullptr;
        Timestamp ets = 0;
        swarm::Hint hint;
        std::array<uint64_t, 3> eargs{};
        uint8_t enargs = 0;
    };
    struct PendingRun
    {
        std::vector<PendingStep> steps;
        size_t next = 0;     ///< first unconsumed step
        uint64_t gen = 0;    ///< generation the steps were recorded for
        bool recording = false; ///< worker is recording into steps
        bool hasSteps() const { return next < steps.size(); }
        void
        clear()
        {
            steps.clear();
            next = 0;
            recording = false;
        }
    };
    PendingRun pending;

    // Profiling (memory-access classifier; harness/classifier.h) ---------------------
    /// Encoded (wordAddr << 2) | op, op 0=read 1=write 2=reduce; filled
    /// only when profiling.
    std::vector<uint64_t> trace;

    static constexpr CoreId kNoCore = ~CoreId(0);

    /** Program order: (timestamp, creation id). */
    bool
    before(const Task& o) const
    {
        return ts != o.ts ? ts < o.ts : uid < o.uid;
    }

    bool hasHint() const { return !noHint; }

    /** Clear all speculative state for a fresh execution attempt. */
    void
    resetSpecState()
    {
        undo.clear();
        readSet.clear();
        writeSet.clear();
        footprint.clear();
        dependents.clear();
        roSet.clear();
        privLines.clear();
        redLines.clear();
        redShadow.clear();
        trace.clear();
        pending.clear();
        execCycles = 0;
        runningOn = kNoCore;
        coro = {};
    }
};

/** Strict weak order over task pointers: (ts, uid). */
struct TaskOrder
{
    bool
    operator()(const Task* a, const Task* b) const
    {
        if (a->ts != b->ts)
            return a->ts < b->ts;
        return a->uid < b->uid;
    }
};

using TaskSet = std::set<Task*, TaskOrder>;

} // namespace ssim
