/**
 * @file
 * Conflict-detection bookkeeping (paper Sec. II-B "Scalable speculation").
 *
 * Swarm uses eager (undo-log) version management and eager conflict
 * detection. The hardware filters checks through the directory and
 * per-task Bloom filters; the simulator keeps an exact registry of which
 * uncommitted tasks have read/written each line (see DESIGN.md §1 for the
 * fidelity discussion) and charges the modeled check latency.
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "swarm/task.h"

namespace ssim {

class LineTable
{
  public:
    struct Entry
    {
        std::vector<Task*> readers;
        std::vector<Task*> writers;
    };

    /** Register @p t as a reader of @p line (caller dedups per task). */
    void addReader(LineAddr line, Task* t) { map_[line].readers.push_back(t); }

    /** Register @p t as a writer of @p line (caller dedups per task). */
    void addWriter(LineAddr line, Task* t) { map_[line].writers.push_back(t); }

    /** Look up the entry for a line, or nullptr. */
    Entry*
    find(LineAddr line)
    {
        auto it = map_.find(line);
        return it == map_.end() ? nullptr : &it->second;
    }

    /** Remove a task from all lines in its read/write sets. */
    void removeTask(Task* t);

    size_t numLines() const { return map_.size(); }

  private:
    void scrub(LineAddr line, Task* t, bool fromWriters);

    std::unordered_map<LineAddr, Entry> map_;
};

} // namespace ssim
