/**
 * @file
 * Conflict-detection bookkeeping (paper Sec. II-B "Scalable speculation").
 *
 * Swarm uses eager (undo-log) version management and eager conflict
 * detection. The hardware filters checks through the directory and
 * per-task Bloom filters; the simulator keeps an exact registry of which
 * uncommitted tasks have read/written each line (see DESIGN.md §1 for the
 * fidelity discussion) and charges the modeled check latency.
 *
 * The registry is BANKED by line address with the same mix64 interleaving
 * the L3/directory uses (mem/memory_system.cc homeOf), one bank per
 * directory bank by default, so a line's conflict state lives with its
 * coherence state. Banking is pure partitioning: a line's entry content
 * (reader/writer vectors in registration order) is identical to the old
 * single-map implementation, so conflict resolution order — and the
 * golden-determinism digests — are unchanged.
 *
 * Each registration appends an indexed footprint record to the task
 * (Task::footprint), so removeTask scrubs exactly the vectors it appears
 * in without probing the map per line; a bank probe happens only to erase
 * an entry the removal emptied.
 *
 * THREADING CONTRACT: banks double as the lock seam for concurrent
 * conflict checks. With setLocking(true) (armed when cfg.hostThreads >
 * 1), each bank carries a mutex: callers guard compound per-line
 * operations (find + scan, addReader/addWriter) with lockFor(line),
 * while removeTask — which spans banks — takes its per-record locks
 * internally and re-probes before the empty-erase so it never
 * dereferences an entry another thread just erased. The shipped
 * parallel executor issues every conflict operation from the
 * coordinator thread (worker pre-execution is pure), so the locks are
 * uncontended invariants today and the ready seam for a concurrent
 * conflict-check backend; tests/test_line_table.cc exercises them from
 * real threads under TSan.
 */
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/types.h"
#include "swarm/task.h"

namespace ssim {

/** Per-line registry of uncommitted readers/writers. */
struct LineEntry
{
    std::vector<Task*> readers;
    std::vector<Task*> writers;
};

class LineTable
{
  public:
    using Entry = LineEntry;

    /** @p nbanks line-address-interleaved banks (>= 1). */
    explicit LineTable(uint32_t nbanks = 1);

    /**
     * Register @p t as a reader of @p line and record the footprint.
     * @p first_for_task: this is the first registration of @p line in
     * either of @p t's sets (the record then owns the line's empty-erase
     * in removeTask). The caller dedups per task via Task::readSet.
     */
    void addReader(LineAddr line, Task* t, bool first_for_task);

    /** Writer-side counterpart of addReader (dedup via Task::writeSet). */
    void addWriter(LineAddr line, Task* t, bool first_for_task);

    /** Look up the entry for a line in its bank, or nullptr. */
    Entry*
    find(LineAddr line)
    {
        auto& bank = banks_[bankOf(line)];
        auto it = bank.find(line);
        return it == bank.end() ? nullptr : &it->second;
    }

    /**
     * Remove a task from every line it registered, via its indexed
     * footprint: no per-line map probes, only an erase per entry the
     * removal emptied. Clears Task::footprint. Takes its own per-bank
     * locks when locking is enabled (do not hold lockFor around it).
     */
    void removeTask(Task* t);

    size_t numLines() const;

    // ---- Per-bank lock seam (parallel host mode) -----------------------
    /** Arm/disarm the per-bank mutexes. Call only while quiescent. */
    void setLocking(bool on) { locking_ = on; }
    bool locking() const { return locking_; }
    /**
     * Scoped lock over @p line's bank for a compound operation (find +
     * scan, add*). Returns an unowned guard when locking is disabled.
     */
    std::unique_lock<std::mutex>
    lockFor(LineAddr line)
    {
        return lockBank(bankOf(line));
    }
    std::unique_lock<std::mutex>
    lockBank(uint32_t b)
    {
        if (!locking_)
            return {};
        return std::unique_lock<std::mutex>(locks_[b]);
    }

    // ---- Bank introspection (occupancy stats, tests) -------------------
    uint32_t numBanks() const { return uint32_t(banks_.size()); }
    /** Bank of a line: the directory's mix64 interleaving. */
    uint32_t
    bankOf(LineAddr line) const
    {
        return uint32_t(mix64(line) % banks_.size());
    }
    size_t bankLines(uint32_t b) const { return banks_[b].size(); }
    /** Peak simultaneous tracked lines in bank @p b. */
    uint64_t bankPeakLines(uint32_t b) const { return peaks_[b]; }

  private:
    Entry& entryFor(LineAddr line);

    std::vector<std::unordered_map<LineAddr, Entry>> banks_;
    std::vector<uint64_t> peaks_;
    std::unique_ptr<std::mutex[]> locks_; ///< one per bank
    bool locking_ = false;
};

} // namespace ssim
