/**
 * @file
 * Conflict-detection bookkeeping (paper Sec. II-B "Scalable speculation").
 *
 * Swarm uses eager (undo-log) version management and eager conflict
 * detection. The hardware filters checks through the directory and
 * per-task Bloom filters; the simulator keeps an exact registry of which
 * uncommitted tasks have read/written each line (see DESIGN.md §1 for the
 * fidelity discussion) and charges the modeled check latency.
 *
 * The registry is BANKED by line address with the same mix64 interleaving
 * the L3/directory uses (mem/memory_system.cc homeOf), one bank per
 * directory bank by default, so a line's conflict state lives with its
 * coherence state. Banking is pure partitioning: a line's entry content
 * (reader/writer vectors in registration order) is identical to the old
 * single-map implementation, so conflict resolution order — and the
 * golden-determinism digests — are unchanged.
 *
 * Each registration appends an indexed footprint record to the task
 * (Task::footprint), so removeTask scrubs exactly the vectors it appears
 * in without probing the map per line; a bank probe happens only to erase
 * an entry the removal emptied.
 *
 * THREADING CONTRACT: banks double as the lock seam for concurrent
 * conflict checks. With setLocking(true) (armed when cfg.hostThreads >
 * 1), each bank carries a mutex: callers guard compound per-line
 * operations (find + scan, addReader/addWriter) with lockFor(line),
 * while removeTask — which spans banks — takes its per-record locks
 * internally and re-probes before the empty-erase so it never
 * dereferences an entry another thread just erased. With
 * cfg.concurrentConflicts the locks are genuinely exercised: the
 * ConcurrentConflictBackend (swarm/conflict_manager.h) has workers
 * probe whole banks under lockBank() during the executor's
 * conflict-check phase; tests/test_line_table.cc additionally races
 * them from unstructured threads under TSan.
 *
 * OP-SEQUENCE VALIDATION: every mutation that can change a probe's
 * result — addReader/addWriter and the removeTask scrub — bumps its
 * bank's op-sequence number (bankOpSeq). A worker-side probe records
 * the number it read; the coordinator reuses the probe at the access's
 * serial slot only if the number is unchanged, which makes probe reuse
 * bit-identical to rescanning. Erasing an EMPTY entry does not bump:
 * a scan of empty vectors and a missing entry produce the same result
 * (0 candidates, 0 compared), so the epoch scrub below never
 * invalidates sibling probes.
 *
 * EPOCH SCRUB: with setDeferredScrub(true) (armed with concurrent
 * conflicts), removeTask skips the empty-entry erase pass and only
 * marks the touched banks dirty; scrubEmptyEntries(bank) — called by
 * the conflict-check phase for the banks it claims, and by the
 * ConflictManager at end of run — erases the accumulated empty entries
 * under the bank lock. Deferral changes only bank occupancy
 * introspection (numLines/bankLines), never scan results.
 */
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/types.h"
#include "swarm/task.h"

namespace ssim {

/** Per-line registry of uncommitted readers/writers. */
struct LineEntry
{
    std::vector<Task*> readers;
    std::vector<Task*> writers;
};

class LineTable
{
  public:
    using Entry = LineEntry;

    /** @p nbanks line-address-interleaved banks (>= 1). */
    explicit LineTable(uint32_t nbanks = 1);

    /**
     * Register @p t as a reader of @p line and record the footprint.
     * @p first_for_task: this is the first registration of @p line in
     * either of @p t's sets (the record then owns the line's empty-erase
     * in removeTask). The caller dedups per task via Task::readSet.
     */
    void addReader(LineAddr line, Task* t, bool first_for_task);

    /** Writer-side counterpart of addReader (dedup via Task::writeSet). */
    void addWriter(LineAddr line, Task* t, bool first_for_task);

    /**
     * Undo the most recent registration of @p t on @p line: @p t must be
     * the LAST element of the line's reader or writer vector (checked).
     * Used by the parallel-replay squash path to reverse a speculative
     * pre-apply; since a staged step is always the task's newest
     * registration and squashes run in reverse staging order, the
     * tail-position invariant holds by construction. Bumps the bank's
     * op-sequence (it is a result-changing mutation). When
     * @p erase_if_empty the (necessarily empty) entry created by the
     * registration is erased. Takes the bank lock itself.
     */
    void unregisterTail(LineAddr line, Task* t, bool is_write,
                        bool erase_if_empty);

    /** Look up the entry for a line in its bank, or nullptr. */
    Entry*
    find(LineAddr line)
    {
        auto& bank = banks_[bankOf(line)];
        auto it = bank.find(line);
        return it == bank.end() ? nullptr : &it->second;
    }
    const Entry*
    find(LineAddr line) const
    {
        auto& bank = banks_[bankOf(line)];
        auto it = bank.find(line);
        return it == bank.end() ? nullptr : &it->second;
    }

    /**
     * Remove a task from every line it registered, via its indexed
     * footprint: no per-line map probes, only an erase per entry the
     * removal emptied. Clears Task::footprint. Takes its own per-bank
     * locks when locking is enabled (do not hold lockFor around it).
     * Under deferred scrub the emptied entries are left in place (banks
     * marked dirty) for a later scrubEmptyEntries.
     */
    void removeTask(Task* t);

    size_t numLines() const;

    // ---- Epoch scrub (deferred empty-entry reclamation) ----------------
    /**
     * Defer removeTask's empty-entry erase to scrubEmptyEntries. Armed
     * by the ConflictManager in concurrent-conflict mode so the erase
     * work rides the conflict-check phase instead of the apply path.
     * Call only while quiescent.
     */
    void setDeferredScrub(bool on) { deferredScrub_ = on; }
    bool deferredScrub() const { return deferredScrub_; }
    /**
     * Erase @p bank's empty entries under its lock; returns the number
     * erased and clears the bank's dirty flag. Safe concurrently with
     * removeTask and probes on other threads: an empty entry is
     * referenced by no live footprint record, and erasure never changes
     * a scan's result (so it does not bump the op-sequence).
     */
    uint64_t scrubEmptyEntries(uint32_t bank);
    /** Scrub every dirty bank (end of run, or a quiescent checkpoint). */
    uint64_t scrubAllDirty();
    bool bankDirty(uint32_t b) const { return dirty_[b] != 0; }

    // ---- Per-bank lock seam (parallel host mode) -----------------------
    /** Arm/disarm the per-bank mutexes. Call only while quiescent. */
    void setLocking(bool on) { locking_ = on; }
    bool locking() const { return locking_; }
    /**
     * Scoped lock over @p line's bank for a compound operation (find +
     * scan, add*). Returns an unowned guard when locking is disabled.
     */
    std::unique_lock<std::mutex>
    lockFor(LineAddr line)
    {
        return lockBank(bankOf(line));
    }
    std::unique_lock<std::mutex>
    lockBank(uint32_t b)
    {
        if (!locking_)
            return {};
        std::unique_lock<std::mutex> guard(locks_[b], std::try_to_lock);
        bool contended = !guard.owns_lock();
        if (contended) {
            // Another thread holds the bank — the concurrency the
            // banked layout is meant to keep rare (reported via
            // SimStats.bankLockContended).
            guard.lock();
        }
        // Counted under the bank lock into per-bank slots: no shared
        // atomic for independent banks to ping-pong.
        lockStats_[b].acquired++;
        lockStats_[b].contended += contended;
        return guard;
    }

    // ---- Bank introspection (occupancy stats, tests) -------------------
    uint32_t numBanks() const { return uint32_t(banks_.size()); }
    /** Bank of a line: the directory's mix64 interleaving. */
    uint32_t
    bankOf(LineAddr line) const
    {
        return uint32_t(mix64(line) % banks_.size());
    }
    size_t bankLines(uint32_t b) const { return banks_[b].size(); }
    /** Peak simultaneous tracked lines in bank @p b. */
    uint64_t bankPeakLines(uint32_t b) const { return peaks_[b]; }
    /**
     * Bank @p b's op-sequence number: bumped by every result-changing
     * mutation (registration, removeTask scrub). The probe-validation
     * token for concurrent conflict checks.
     */
    uint64_t bankOpSeq(uint32_t b) const { return opSeqs_[b]; }
    // Armed-mode lock traffic (0 while locking is disabled). Summed
    // from the per-bank slots; call only while quiescent.
    uint64_t lockAcquired() const;
    uint64_t lockContended() const;
    uint64_t entriesScrubbed() const { return scrubbed_.load(); }

  private:
    Entry& entryFor(LineAddr line);

    std::vector<std::unordered_map<LineAddr, Entry>> banks_;
    std::vector<uint64_t> peaks_;
    /// Per-bank op-sequence numbers. Written only by the thread that
    /// owns the bank at that moment: the coordinator during serial
    /// stretches, and — in parallel-replay mode — the single worker
    /// that claimed the bank for the phase (pre-applies register lines
    /// via addReader/addWriter, which bump; scrubs do not bump).
    /// Cross-thread visibility comes from the executor's phase barrier
    /// or the bank lock.
    std::vector<uint64_t> opSeqs_;
    /// Banks holding deferred-scrub empty entries (uint8_t, not bool:
    /// written under the bank lock / phase barrier, vector<bool> bit
    /// packing would let neighboring banks race).
    std::vector<uint8_t> dirty_;
    std::unique_ptr<std::mutex[]> locks_; ///< one per bank
    /// Lock traffic, one cache-line-padded slot per bank, written only
    /// under that bank's lock (independent banks never share a line).
    struct alignas(64) LockStats
    {
        uint64_t acquired = 0;
        uint64_t contended = 0;
    };
    std::vector<LockStats> lockStats_;
    std::atomic<uint64_t> scrubbed_{0}; ///< empty entries reclaimed
                                        ///< (workers scrub concurrently)
    bool locking_ = false;
    bool deferredScrub_ = false;
};

} // namespace ssim
