#include "swarm/scheduler.h"

#include "base/hash.h"
#include "base/logging.h"
#include "swarm/load_balancer.h"

namespace ssim {

namespace {

class RandomScheduler : public SpatialScheduler
{
  public:
    using SpatialScheduler::SpatialScheduler;

    TileId
    place(bool, uint64_t, TileId) override
    {
        return randomTile();
    }
};

class StealingScheduler : public SpatialScheduler
{
  public:
    using SpatialScheduler::SpatialScheduler;

    TileId
    place(bool, uint64_t, TileId src_tile) override
    {
        return src_tile; // new tasks enqueue to the local tile
    }

    bool stealing() const override { return true; }
};

class HintScheduler : public SpatialScheduler
{
  public:
    using SpatialScheduler::SpatialScheduler;

    TileId
    place(bool has_hint, uint64_t hint, TileId) override
    {
        if (!has_hint)
            return randomTile();
        return hintToTile(hint, cfg_.ntiles);
    }
};

class LbHintScheduler : public SpatialScheduler
{
  public:
    LbHintScheduler(const SimConfig& cfg, Rng& rng, LoadBalancer* lb)
        : SpatialScheduler(cfg, rng), lb_(lb)
    {
        ssim_assert(lb_, "LBHints requires a load balancer");
    }

    TileId
    place(bool has_hint, uint64_t hint, TileId) override
    {
        if (!has_hint)
            return randomTile();
        return lb_->tileOfBucket(hintToBucket(hint, cfg_.numBuckets()));
    }

  private:
    LoadBalancer* lb_;
};

} // namespace

std::unique_ptr<SpatialScheduler>
makeScheduler(const SimConfig& cfg, Rng& rng, LoadBalancer* lb)
{
    switch (cfg.sched) {
      case SchedulerType::Random:
        return std::make_unique<RandomScheduler>(cfg, rng);
      case SchedulerType::Stealing:
        return std::make_unique<StealingScheduler>(cfg, rng);
      case SchedulerType::Hints:
        return std::make_unique<HintScheduler>(cfg, rng);
      case SchedulerType::LBHints:
        return std::make_unique<LbHintScheduler>(cfg, rng, lb);
      default:
        panic("bad scheduler type");
    }
}

} // namespace ssim
