#include "swarm/machine.h"

#include "base/logging.h"
#include "sim/parallel_executor.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/policies.h"
#include "swarm/shard.h"

namespace swarm {

// ---- Awaiter entry points (declared in api.h) ------------------------------

bool
MemAwaiter::await_ready()
{
    return ctx->machine()->tryInlineAccess(ctx->task(), this);
}

void
MemAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueAccess(ctx->task(), this);
}

bool
ReduceAwaiter::await_ready()
{
    return ctx->machine()->tryInlineReduce(ctx->task(), *this);
}

void
ReduceAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueReduce(ctx->task(), *this);
}

bool
ComputeAwaiter::await_ready()
{
    return cycles == 0 ||
           ctx->machine()->tryInlineCompute(ctx->task(), cycles);
}

void
ComputeAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueCompute(ctx->task(), cycles);
}

bool
EnqueueAwaiter::await_ready()
{
    return ctx->machine()->tryInlineEnqueue(ctx->task(), *this);
}

void
EnqueueAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueEnqueue(ctx->task(), *this);
}

Timestamp
TaskCtx::ts() const
{
    return task_->ts;
}

} // namespace swarm

namespace ssim {

// ---- Wiring -----------------------------------------------------------------

Machine::Machine(const SimConfig& cfg, ShardContext* shard)
    // Subsystems that hold a SimConfig reference must get the member
    // copy, never the constructor argument: callers may pass a
    // temporary.
    : cfg_(cfg), mesh_(cfg_), mem_(cfg_, mesh_, stats_), rng_(cfg.seed),
      shard_(shard)
{
    ssim_assert(cfg_.ntiles >= 1 && cfg_.coresPerTile >= 1);
    if (shard_) {
        ssim_assert(cfg_.hostThreads == 1,
                    "sharded replicas require the serial event loop");
        ssim_assert(cfg_.topology, "sharded runs require a topology");
    }
    // One event lane per tile plus the global control lane; per-tile
    // events (dispatch, arrival, resumption) stay tile-local while the
    // (cycle, global seq) min-merge keeps pop order bit-identical to a
    // single heap.
    eq_.configureLanes(cfg_.ntiles);
    lb_ = policies::makeLoadBalancer(cfg_);
    sched_ = policies::makeScheduler(cfg_, rng_, lb_.get());
    backend_ = policies::makeBackend(cfg_, mesh_, mem_);
    engine_ = std::make_unique<ExecutionEngine>(cfg_, eq_, *backend_,
                                                stats_, *sched_, this);
    conflict_ = std::make_unique<ConflictManager>(cfg_, *backend_, stats_,
                                                  *engine_);
    capacity_ = std::make_unique<CapacityManager>(cfg_, mesh_, stats_, rng_,
                                                  *engine_);
    commit_ = std::make_unique<CommitController>(cfg_, eq_, mesh_, stats_,
                                                 *engine_, *conflict_,
                                                 *capacity_, lb_.get());
    engine_->wire(conflict_.get(), capacity_.get(), commit_.get());
    if (shard_) {
        engine_->setShard(shard_);
        commit_->setShard(shard_);
    }
}

void
Machine::enqueueInitialRaw(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                           const std::array<uint64_t, 3>& args, uint8_t n)
{
    ssim_assert(!running_, "enqueueInitial must precede run()");
    engine_->enqueueInitial(fn, ts, hint, args, n);
}

void
Machine::injectRootRaw(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                       const std::array<uint64_t, 3>& args, uint8_t n)
{
    ssim_assert(running_, "injectRoot is a mid-run entry point "
                          "(use enqueueInitial before run())");
    engine_->enqueueInitial(fn, ts, hint, args, n);
    // The machine may have drained between arrivals, ending the GVT/LB
    // epoch chains; re-arm them so the injected task can commit.
    commit_->ensureEpochsScheduled();
}

// ---- Run loop ----------------------------------------------------------------

void
Machine::run()
{
    running_ = true;
    for (TileId t = 0; t < cfg_.ntiles; t++)
        engine_->scheduleDispatch(t);
    commit_->start();
    if (cfg_.hostThreads > 1) {
        // concurrentBackend() is non-null only when cfg.concurrentConflicts
        // armed it (and the backend records accesses at all); likewise
        // replayBackend() for cfg.parallelReplay.
        ParallelExecutor px(eq_, *engine_, cfg_.hostThreads,
                            /*min_batch=*/0,
                            conflict_->concurrentBackend(),
                            conflict_->replayBackend());
        px.run();
        hostStats_.scans = px.scans();
        hostStats_.phases = px.phases();
        hostStats_.preResumed = px.preResumed();
        hostStats_.conflictPhases = px.conflictPhases();
        hostStats_.conflictProbes = px.conflictProbes();
        hostStats_.replayPhases = px.replayPhases();
        hostStats_.workerApplies = px.replayApplies();
    } else {
        eq_.run(); // the exact serial code path
    }
    ssim_assert(engine_->tasksLive() == 0, "run ended with stranded tasks");
    finalizeStats();
    running_ = false;
}

void
Machine::finalizeStats()
{
    stats_.cycles = commit_->lastCommitCycle() ? commit_->lastCommitCycle()
                                               : eq_.now();
    // Flush trailing wait intervals (cores idle at the end of the run).
    engine_->flushWaitIntervals(stats_.cycles);
    stats_.flits = mesh_.flits();

    // Sharded data-plane occupancy: per-lane event counts/peaks and
    // per-bank line-table peaks (not part of the golden digest).
    stats_.laneScheduled.resize(eq_.numLanes());
    stats_.lanePeakPending.resize(eq_.numLanes());
    for (uint32_t l = 0; l < eq_.numLanes(); l++) {
        stats_.laneScheduled[l] = eq_.laneScheduled(l);
        stats_.lanePeakPending[l] = eq_.lanePeakPending(l);
    }
    // Drain the deferred epoch scrub before snapshotting bank stats.
    conflict_->finalizeRun();
    const LineTable& lt = conflict_->lineTable();
    stats_.bankPeakLines.resize(lt.numBanks());
    for (uint32_t b = 0; b < lt.numBanks(); b++)
        stats_.bankPeakLines[b] = lt.bankPeakLines(b);

    // Concurrent conflict-check occupancy (all zero unless armed):
    // worker probe counts from the backend, lock traffic and scrub
    // reclamations from the line table; probe hit/stale/cold counters
    // were accumulated by resolveConflicts directly.
    stats_.bankLockAcquired = lt.lockAcquired();
    stats_.bankLockContended = lt.lockContended();
    stats_.lineEntriesScrubbed = lt.entriesScrubbed();
    if (ConcurrentConflictBackend* ccb = conflict_->concurrentBackend()) {
        stats_.concWorkerProbes = ccb->probes();
        stats_.bankProbes = ccb->bankProbes();
    }

    // Parallel-replay occupancy (all zero unless armed): consumed and
    // squashed pre-applies from the backend; the coordinator-side
    // fallback/cross-bank counters were accumulated by applyPendingStep
    // directly.
    if (ParallelReplayBackend* rpb = conflict_->replayBackend()) {
        stats_.workerApplies = rpb->consumed();
        stats_.replaySquashed = rpb->squashed();
        stats_.bankApplies = rpb->bankApplies();
    }

    // Trace-replay cost provenance (all zero unless backend=trace-replay).
    if (auto* trb = dynamic_cast<TraceReplayBackend*>(backend_.get())) {
        stats_.traceServedCosts = trb->served();
        stats_.traceFallbackCosts = trb->fallbacks();
    }

    // Cross-shard scale-out counters (all zero unless a topology is
    // armed / this machine is a sharded replica).
    stats_.crossShardMsgs = mesh_.crossShardMsgs();
    if (shard_) {
        stats_.shardStepsSent = shard_->stepsSent();
        stats_.shardStepsRecv = shard_->stepsRecv();
        stats_.shardProgressMsgs = shard_->progressMsgs();
    }
}

} // namespace ssim
