#include "swarm/machine.h"

#include <algorithm>
#include <unordered_map>

#include "base/hash.h"
#include "base/logging.h"

namespace swarm {

// ---- Awaiter entry points (declared in api.h) ------------------------------

void
MemAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueAccess(ctx->task(), this);
}

void
ComputeAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueCompute(ctx->task(), cycles);
}

void
EnqueueAwaiter::await_suspend(std::coroutine_handle<>)
{
    ctx->machine()->issueEnqueue(ctx->task(), *this);
}

Timestamp
TaskCtx::ts() const
{
    return task_->ts;
}

} // namespace swarm

namespace ssim {

Machine::Machine(const SimConfig& cfg)
    : cfg_(cfg), mesh_(cfg), mem_(cfg, mesh_, stats_), rng_(cfg.seed)
{
    ssim_assert(cfg_.ntiles >= 1 && cfg_.coresPerTile >= 1);
    if (cfg_.sched == SchedulerType::LBHints)
        lb_ = std::make_unique<LoadBalancer>(cfg_);
    sched_ = makeScheduler(cfg_, rng_, lb_.get());
    units_.reserve(cfg_.ntiles);
    for (TileId t = 0; t < cfg_.ntiles; t++)
        units_.emplace_back(t, cfg_);
    cores_.resize(cfg_.totalCores());
}

Machine::~Machine()
{
    // Destroy any leftover coroutine frames and task objects (only on
    // abnormal teardown; a completed run() leaves no live tasks).
    for (auto& [uid, t] : liveTasks_) {
        if (t->coro)
            t->coro.destroy();
        delete t;
    }
}

Task*
Machine::lookupTask(uint64_t uid) const
{
    auto it = liveTasks_.find(uid);
    return it == liveTasks_.end() ? nullptr : it->second;
}

void
Machine::scheduleDispatch(TileId tile)
{
    eq_.scheduleAfter(0, [this, tile] { tryDispatch(tile); });
}

// ---- Task creation ----------------------------------------------------------

Task*
Machine::createTask(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                    const std::array<uint64_t, 3>& args, uint8_t nargs,
                    Task* parent, TileId src_tile)
{
    ssim_assert(!parent || ts >= parent->ts,
                "child timestamp must be >= parent's");

    Task* t = new Task();
    t->uid = nextUid_++;
    t->ts = ts;
    t->fn = fn;
    t->args = args;
    t->nargs = nargs;

    // Resolve the hint. SAMEHINT inherits the parent's hint and is queued
    // to the local tile (Sec. III-B).
    TileId dst;
    if (hint.isSame()) {
        if (parent) {
            t->hint = parent->hint;
            t->noHint = parent->noHint;
        } else {
            t->noHint = true;
        }
        // SAMEHINT tasks are queued to the local task queue; the Random
        // baseline ignores hints entirely.
        dst = cfg_.sched == SchedulerType::Random
                  ? TileId(rng_.range(cfg_.ntiles))
                  : src_tile;
    } else {
        t->noHint = hint.isNoHint();
        t->hint = hint.isValue() ? hint.val : 0;
        dst = sched_->place(!t->noHint, t->hint, src_tile);
    }
    if (!t->noHint) {
        t->hintHash = hintHash16(t->hint);
        t->bucket = hintToBucket(t->hint, cfg_.numBuckets());
    }

    t->tile = dst;
    t->state = TaskState::InFlight;
    t->parent = parent;
    t->untied = (parent == nullptr);
    if (parent)
        parent->children.push_back(t);

    liveTasks_.emplace(t->uid, t);
    tasksLive_++;

    TaskUnit& unit = units_[dst];
    unit.unfinished.insert(t);
    unit.inFlight++;

    uint32_t lat = mesh_.latency(src_tile, dst);
    mesh_.inject(src_tile, dst, cfg_.taskDescFlits, TrafficClass::Task);
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfter(lat, [this, uid, gen] { arriveTask(uid, gen); });
    return t;
}

void
Machine::enqueueInitialRaw(swarm::TaskFn fn, Timestamp ts, swarm::Hint hint,
                           const std::array<uint64_t, 3>& args, uint8_t n)
{
    ssim_assert(!running_, "enqueueInitial must precede run()");
    TileId src = 0;
    if (sched_->stealing())
        src = rrInitTile_++ % cfg_.ntiles;
    createTask(fn, ts, hint, args, n, nullptr, src);
}

void
Machine::arriveTask(uint64_t uid, uint64_t gen)
{
    Task* t = lookupTask(uid);
    if (!t || t->generation != gen || t->state != TaskState::InFlight)
        return; // discarded while in flight
    TaskUnit& unit = units_[t->tile];
    unit.inFlight--;
    t->state = TaskState::Idle;
    unit.idle.insert(t);
    maybeSpill(t->tile);
    tryDispatch(t->tile);
}

// ---- Dispatch ----------------------------------------------------------------

void
Machine::tryDispatch(TileId tile)
{
    TaskUnit& unit = units_[tile];
    for (uint32_t idx = 0; idx < cfg_.coresPerTile; idx++) {
        Core& core = cores_[coreId(tile, idx)];
        if (core.task)
            continue;

        // Bring back spilled tasks first: the requeuer's progress rule
        // restores any spilled task that precedes the idle queue's head,
        // so dispatch never runs a later task ahead of an earlier spilled
        // one (which would make it a commit-queue displacement victim).
        if (!unit.spillBuf.empty())
            unspillIfRoom(tile);
        Task* t = unit.pickDispatchable(cfg_.serializeSameHint,
                                        stats_.dispatchSkips);
        if (!t && sched_->stealing()) {
            if (trySteal(tile))
                t = unit.pickDispatchable(cfg_.serializeSameHint,
                                          stats_.dispatchSkips);
        }
        if (!t) {
            if (core.wait == Core::Wait::None)
                enterWait(core, Core::Wait::Empty);
            continue;
        }
        if (core.wait == Core::Wait::Empty)
            leaveWait(core, CycleBucket::Empty);
        dispatchOn(tile, idx, t);
    }
}

void
Machine::dispatchOn(TileId tile, uint32_t idx, Task* t)
{
    TaskUnit& unit = units_[tile];
    ssim_assert(t->state == TaskState::Idle);
    unit.idle.erase(t);
    t->state = TaskState::Running;
    t->runningOn = coreId(tile, idx);
    unit.running++;
    unit.coreTasks[idx] = t;

    Core& core = cores_[t->runningOn];
    core.task = t;
    core.everDispatched = true;

    t->ctx = swarm::TaskCtx(this, t);
    swarm::TaskCoro c = t->fn(t->ctx, t->ts, t->args.data());
    t->coro = c.handle;

    t->execCycles += cfg_.dequeueCost;
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfter(cfg_.dequeueCost,
                      [this, uid, gen] { resumeCoro(uid, gen); });
}

void
Machine::resumeCoro(uint64_t uid, uint64_t gen)
{
    Task* t = lookupTask(uid);
    if (!t || t->generation != gen || t->state != TaskState::Running)
        return; // aborted or discarded in the meantime
    ssim_assert(t->coro && !t->coro.done());
    t->coro.resume();
    if (t->coro.done()) {
        t->coro.destroy();
        t->coro = {};
        finishTaskAttempt(t);
    }
    // Otherwise an awaiter has scheduled the next resume.
}

// ---- Finish and commit-queue admission ------------------------------------------

void
Machine::finishTaskAttempt(Task* t)
{
    t->execCycles += cfg_.finishCost;
    Core& core = cores_[t->runningOn];
    if (tryTakeCommitSlot(t))
        return;
    // Commit queue full and t is not earlier than any occupant: the core
    // stalls holding the finished task until a slot frees.
    core.finishPending = true;
    enterWait(core, Core::Wait::StallCQ);
}

bool
Machine::tryTakeCommitSlot(Task* t)
{
    TaskUnit& unit = units_[t->tile];
    // Displacing a victim can recursively admit other pending finishers
    // (retryFinishPending runs inside abortTasks), so loop until we own
    // a slot or a strictly-earlier occupant blocks us.
    while (unit.commitQueueFull()) {
        Task* victim = unit.maxCommitQ();
        ssim_assert(victim);
        if (!t->before(*victim))
            return false;
        // Abort the latest finished task to free space (Sec. II-B:
        // "aborting higher-timestamp tasks to free space").
        stats_.abortsDisplace++;
        abortTasks({victim}, /*discard_roots=*/false, t->tile);
    }
    TileId tile = t->tile;
    Core& core = cores_[t->runningOn];
    if (core.finishPending) {
        core.finishPending = false;
        leaveWait(core, CycleBucket::Stall);
    }
    freeCore(t);
    t->state = TaskState::Finished;
    unit.unfinished.erase(t);
    unit.commitQ.insert(t);
    scheduleDispatch(tile);
    return true;
}

void
Machine::freeCore(Task* t)
{
    if (t->runningOn == Task::kNoCore)
        return;
    Core& core = cores_[t->runningOn];
    ssim_assert(core.task == t);
    if (core.finishPending) {
        core.finishPending = false;
        leaveWait(core, CycleBucket::Stall);
    }
    core.task = nullptr;
    TaskUnit& unit = units_[t->tile];
    unit.coreTasks[coreIdx(t->runningOn)] = nullptr;
    ssim_assert(unit.running > 0);
    unit.running--;
    t->runningOn = Task::kNoCore;
}

void
Machine::enterWait(Core& core, Core::Wait w)
{
    ssim_assert(core.wait == Core::Wait::None);
    core.wait = w;
    core.waitStart = eq_.now();
}

void
Machine::leaveWait(Core& core, CycleBucket bucket)
{
    ssim_assert(core.wait != Core::Wait::None);
    stats_.coreCycles[size_t(bucket)] += eq_.now() - core.waitStart;
    core.wait = Core::Wait::None;
}

void
Machine::retryFinishPending(TileId tile)
{
    for (uint32_t idx = 0; idx < cfg_.coresPerTile; idx++) {
        Core& core = cores_[coreId(tile, idx)];
        if (core.finishPending && core.task) {
            if (units_[tile].commitQueueFull())
                return;
            tryTakeCommitSlot(core.task);
        }
    }
}

// ---- Awaiter implementations ----------------------------------------------------

void
Machine::issueAccess(Task* t, swarm::MemAwaiter* aw)
{
    ssim_assert(t->state == TaskState::Running);
    ssim_assert((aw->addr & 7) + aw->size <= 8,
                "accesses must not cross an 8-byte boundary");
    LineAddr line = lineOf(aw->addr);

    // Eager conflict detection: earlier tasks win; later conflicting
    // tasks abort *before* this access's functional effect.
    uint32_t compared = resolveConflicts(t, line, aw->isWrite);

    if (aw->isWrite) {
        Task::UndoRec rec{aw->addr, uint8_t(aw->size), 0};
        std::memcpy(&rec.oldVal, reinterpret_cast<void*>(aw->addr),
                    aw->size);
        t->undo.push_back(rec);
        std::memcpy(reinterpret_cast<void*>(aw->addr), &aw->wval, aw->size);
        if (t->writeSet.insert(line).second)
            lineTable_.addWriter(line, t);
    } else {
        std::memcpy(&aw->rval, reinterpret_cast<void*>(aw->addr), aw->size);
        if (t->readSet.insert(line).second)
            lineTable_.addReader(line, t);
    }
    if (profiler_)
        t->trace.push_back(((aw->addr >> 3) << 1) | (aw->isWrite ? 1 : 0));

    auto res = mem_.access(t->runningOn, aw->addr, aw->isWrite,
                           TrafficClass::MemAcc);
    uint32_t lat = res.latency;
    if (res.leftTile && compared > 0) {
        // Remote conflict checks: Bloom filter lookup + one cycle per
        // timestamp compared in the commit queue (Table II).
        lat += cfg_.conflictCheckCost + compared * cfg_.conflictPerCmpCost;
    }
    stats_.conflictChecks += compared;

    t->execCycles += lat;
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfter(lat, [this, uid, gen] { resumeCoro(uid, gen); });
}

void
Machine::issueCompute(Task* t, uint32_t cycles)
{
    ssim_assert(t->state == TaskState::Running);
    t->execCycles += cycles;
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfter(cycles, [this, uid, gen] { resumeCoro(uid, gen); });
}

void
Machine::issueEnqueue(Task* t, const swarm::EnqueueAwaiter& aw)
{
    ssim_assert(t->state == TaskState::Running);
    createTask(aw.fn, aw.ts, aw.hint, aw.args, aw.nargs, t, t->tile);
    t->execCycles += cfg_.enqueueCost;
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfter(cfg_.enqueueCost,
                      [this, uid, gen] { resumeCoro(uid, gen); });
}

// ---- Conflict resolution and aborts ------------------------------------------------

uint32_t
Machine::resolveConflicts(Task* t, LineAddr line, bool is_write)
{
    LineTable::Entry* e = lineTable_.find(line);
    if (!e)
        return 0;

    uint32_t compared = 0;
    std::vector<Task*> toAbort;
    auto considerLater = [&](Task* o) {
        compared++;
        if (o != t && t->before(*o))
            toAbort.push_back(o);
    };
    auto recordDependence = [&](Task* o) {
        // o wrote this line earlier in program order and is uncommitted:
        // t consumes forwarded speculative data and must abort with o.
        if (o != t && o->before(*t))
            o->dependents.emplace_back(t->uid, t->generation);
    };

    if (is_write) {
        for (Task* r : e->readers)
            considerLater(r);
        for (Task* w : e->writers) {
            considerLater(w);
            recordDependence(w);
        }
    } else {
        for (Task* w : e->writers) {
            considerLater(w);
            recordDependence(w);
        }
    }

    if (!toAbort.empty()) {
        std::sort(toAbort.begin(), toAbort.end());
        toAbort.erase(std::unique(toAbort.begin(), toAbort.end()),
                      toAbort.end());
        stats_.abortsConflict += toAbort.size();
        abortTasks(toAbort, /*discard_roots=*/false, t->tile);
    }
    return compared;
}

void
Machine::abortTasks(const std::vector<Task*>& roots, bool discard_roots,
                    TileId cause_tile)
{
    // Build the abort set: descendants are discarded (their parent's
    // execution attempt, which created them, is rolled back); dependent
    // tasks are aborted and requeued. Discard dominates requeue.
    std::unordered_map<Task*, bool> marked; // -> discard?
    std::vector<std::pair<Task*, bool>> wl;
    for (Task* r : roots)
        wl.emplace_back(r, discard_roots);

    while (!wl.empty()) {
        auto [x, disc] = wl.back();
        wl.pop_back();
        auto it = marked.find(x);
        if (it != marked.end() && (it->second || !disc))
            continue; // already marked at an equal or stronger level
        marked[x] = disc;
        for (Task* child : x->children)
            wl.emplace_back(child, true);
        for (auto [uid, gen] : x->dependents) {
            Task* dep = lookupTask(uid);
            if (dep && dep->generation == gen &&
                (dep->state == TaskState::Running ||
                 dep->state == TaskState::Finished)) {
                wl.emplace_back(dep, false);
            }
        }
    }

    // Roll back in reverse program order: per line, chronological write
    // order equals program order among live writers (DESIGN.md §5.3), so
    // descending (ts, uid) restoration is exact.
    std::vector<Task*> order;
    order.reserve(marked.size());
    for (auto& [task, disc] : marked)
        order.push_back(task);
    std::sort(order.begin(), order.end(), [](Task* a, Task* b) {
        return TaskOrder()(b, a); // descending
    });

    std::vector<TileId> touched;
    for (Task* x : order) {
        touched.push_back(x->tile);
        rollbackTask(x, cause_tile);
        if (marked[x])
            discardTask(x);
        else
            requeueTask(x);
    }

    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (TileId tile : touched) {
        retryFinishPending(tile);
        scheduleDispatch(tile);
    }
}

void
Machine::rollbackTask(Task* t, TileId cause_tile)
{
    bool hadRun = (t->state == TaskState::Running ||
                   t->state == TaskState::Finished);

    // Abort message to the task's tile.
    mesh_.inject(cause_tile, t->tile, cfg_.ctrlFlits, TrafficClass::Abort);

    uint64_t rollbackCycles = 0;
    if (hadRun) {
        // Restore the undo log in reverse; rollback writes go through the
        // memory hierarchy and their traffic is abort traffic.
        CoreId rbCore = t->runningOn != Task::kNoCore
                            ? t->runningOn
                            : coreId(t->tile, 0);
        for (auto it = t->undo.rbegin(); it != t->undo.rend(); ++it)
            std::memcpy(reinterpret_cast<void*>(it->addr), &it->oldVal,
                        it->size);
        for (LineAddr line : t->writeSet) {
            auto res = mem_.access(rbCore, line << lineBits, true,
                                   TrafficClass::Abort);
            rollbackCycles += res.latency;
        }
        stats_.tasksAborted++;
        stats_.coreCycles[size_t(CycleBucket::Abort)] +=
            t->execCycles + rollbackCycles;
    }

    lineTable_.removeTask(t);

    if (t->state == TaskState::Running) {
        if (t->coro) {
            t->coro.destroy();
            t->coro = {};
        }
        freeCore(t);
    }
}

void
Machine::discardTask(Task* t)
{
    TaskUnit& unit = units_[t->tile];
    switch (t->state) {
      case TaskState::InFlight:
        unit.unfinished.erase(t);
        ssim_assert(unit.inFlight > 0);
        unit.inFlight--;
        break;
      case TaskState::Idle:
        if (t->spilled)
            unit.spillBuf.erase(t);
        else
            unit.idle.erase(t);
        unit.unfinished.erase(t);
        break;
      case TaskState::Running: // core already freed by rollbackTask
        unit.unfinished.erase(t);
        break;
      case TaskState::Finished:
        unit.commitQ.erase(t);
        break;
    }
    if (t->parent) {
        auto& sib = t->parent->children;
        sib.erase(std::remove(sib.begin(), sib.end(), t), sib.end());
    }
    // Children of a discarded task are always in the same abort set
    // (marked discard), so no dangling child->parent pointers survive;
    // clear ours defensively.
    for (Task* c : t->children)
        c->parent = nullptr;
    liveTasks_.erase(t->uid);
    ssim_assert(tasksLive_ > 0);
    tasksLive_--;
    delete t;
}

void
Machine::requeueTask(Task* t)
{
    TaskUnit& unit = units_[t->tile];
    ssim_assert(t->state == TaskState::Running ||
                t->state == TaskState::Finished,
                "only executed tasks are requeued");
    if (t->state == TaskState::Finished) {
        unit.commitQ.erase(t);
        unit.unfinished.insert(t); // it left unfinished when it finished
    }
    // Children created by the rolled-back attempt are discarded in the
    // same cascade; drop our references.
    t->children.clear();
    t->generation++;
    t->resetSpecState();
    t->state = TaskState::Idle;
    unit.idle.insert(t);
}

// ---- Spills (coalescers, Sec. II-B / Table II) ------------------------------------

void
Machine::maybeSpill(TileId tile)
{
    TaskUnit& unit = units_[tile];
    if (!unit.taskQueueAboveSpillThreshold())
        return;

    // Coalescer: spill up to spillBatch idle tasks, latest first,
    // preferring untied tasks (paper spills only parent-committed tasks;
    // we may spill tied ones too -- see DESIGN.md).
    // Never spill the tile's earliest idle task: it may gate the GVT.
    Task* keep = *unit.idle.begin();
    std::vector<Task*> batch;
    for (auto it = unit.idle.rbegin();
         it != unit.idle.rend() && batch.size() < cfg_.spillBatch; ++it) {
        if ((*it)->untied && *it != keep)
            batch.push_back(*it);
    }
    if (batch.size() < cfg_.spillBatch) {
        for (auto it = unit.idle.rbegin();
             it != unit.idle.rend() && batch.size() < cfg_.spillBatch;
             ++it) {
            if (!(*it)->untied && *it != keep)
                batch.push_back(*it);
        }
    }
    for (Task* t : batch) {
        unit.idle.erase(t);
        unit.spillBuf.insert(t);
        t->spilled = true;
        stats_.tasksSpilled++;
        stats_.coreCycles[size_t(CycleBucket::Spill)] +=
            cfg_.spillCostPerTask;
        mesh_.injectRaw(cfg_.taskDescFlits, TrafficClass::MemAcc);
    }
}

void
Machine::unspillIfRoom(TileId tile)
{
    TaskUnit& unit = units_[tile];
    uint32_t lowWater = uint32_t(0.5 * unit.taskQueueCap);
    uint32_t brought = 0;
    while (!unit.spillBuf.empty()) {
        Task* t = *unit.spillBuf.begin();
        // Progress guarantee: a spilled task that precedes every idle
        // task must come back regardless of occupancy -- otherwise the
        // tile's (and possibly the system's) earliest task is stranded
        // in memory and the GVT never advances.
        bool mustRestore =
            unit.idle.empty() || t->before(**unit.idle.begin());
        bool haveRoom = unit.taskQueueOcc() < lowWater &&
                        brought < cfg_.spillBatch;
        if (!mustRestore && !haveRoom)
            break;
        unit.spillBuf.erase(unit.spillBuf.begin());
        t->spilled = false;
        unit.idle.insert(t);
        stats_.coreCycles[size_t(CycleBucket::Spill)] +=
            cfg_.spillCostPerTask;
        mesh_.injectRaw(cfg_.taskDescFlits, TrafficClass::MemAcc);
        brought++;
    }
}

// ---- Idealized work-stealing (Sec. II-C) ---------------------------------------------

bool
Machine::trySteal(TileId thief)
{
    // Victim selection.
    TileId victim = cfg_.ntiles; // invalid
    switch (cfg_.stealVictim) {
      case StealVictim::MostLoaded: {
        size_t best = 0;
        for (TileId t = 0; t < cfg_.ntiles; t++) {
            if (t == thief)
                continue;
            size_t n = units_[t].idle.size();
            if (n > best) {
                best = n;
                victim = t;
            }
        }
        break;
      }
      case StealVictim::Random: {
        // Try a few random probes, then fall back to a scan.
        for (int i = 0; i < 4 && victim == cfg_.ntiles; i++) {
            TileId t = TileId(rng_.range(cfg_.ntiles));
            if (t != thief && !units_[t].idle.empty())
                victim = t;
        }
        if (victim == cfg_.ntiles) {
            for (TileId t = 0; t < cfg_.ntiles; t++)
                if (t != thief && !units_[t].idle.empty()) {
                    victim = t;
                    break;
                }
        }
        break;
      }
      case StealVictim::NearestNeighbor: {
        uint32_t bestDist = ~0u;
        for (TileId t = 0; t < cfg_.ntiles; t++) {
            if (t == thief || units_[t].idle.empty())
                continue;
            uint32_t d = mesh_.hops(thief, t);
            if (d < bestDist) {
                bestDist = d;
                victim = t;
            }
        }
        break;
      }
    }
    if (victim == cfg_.ntiles || units_[victim].idle.empty())
        return false;

    // Task selection within the victim tile.
    TaskUnit& vu = units_[victim];
    Task* t = nullptr;
    switch (cfg_.stealChoice) {
      case StealChoice::EarliestTs:
        t = *vu.idle.begin();
        break;
      case StealChoice::LatestTs:
        t = *vu.idle.rbegin();
        break;
      case StealChoice::Random: {
        auto it = vu.idle.begin();
        std::advance(it, rng_.range(vu.idle.size()));
        t = *it;
        break;
      }
    }
    ssim_assert(t);

    // Idealized: the steal itself is instantaneous and free (Sec. II-C);
    // only the task's subsequent data accesses pay for the move.
    vu.idle.erase(t);
    vu.unfinished.erase(t);
    t->tile = thief;
    TaskUnit& tu = units_[thief];
    tu.idle.insert(t);
    tu.unfinished.insert(t);
    stats_.tasksStolen++;
    return true;
}

// ---- Run loop ------------------------------------------------------------------------

void
Machine::run()
{
    running_ = true;
    for (TileId t = 0; t < cfg_.ntiles; t++)
        scheduleDispatch(t);
    eq_.schedule(cfg_.gvtEpoch, [this] { gvtEpoch(); });
    if (lb_)
        eq_.schedule(cfg_.lbEpoch, [this] { lbEpoch(); });
    eq_.run();
    ssim_assert(tasksLive_ == 0, "run ended with stranded tasks");
    finalizeStats();
    running_ = false;
}

void
Machine::finalizeStats()
{
    stats_.cycles = lastCommitCycle_ ? lastCommitCycle_ : eq_.now();
    // Flush trailing wait intervals (cores idle at the end of the run).
    for (Core& core : cores_) {
        if (core.wait != Core::Wait::None) {
            Cycle end = std::max(stats_.cycles, core.waitStart);
            CycleBucket b = core.wait == Core::Wait::Empty
                                ? CycleBucket::Empty
                                : CycleBucket::Stall;
            stats_.coreCycles[size_t(b)] += end - core.waitStart;
            core.wait = Core::Wait::None;
        }
    }
    stats_.flits = mesh_.flits();
}

} // namespace ssim
