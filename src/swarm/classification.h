/**
 * @file
 * The access-classification map: the profile-guided contract between
 * the AccessClassifier (harness/classifier.h, which builds it from a
 * recorded profiling run) and the ConflictManager (which consumes it so
 * classified lines never enter the line-table banks, probe queues, or
 * replay queues).
 *
 * Classes and their runtime meaning:
 *  - ReadOnly:  reads skip line-table registration entirely; the first
 *    write demotes the line (untracked readers are registered
 *    retroactively and the write resolves against them as usual).
 *  - Private:   one task at a time owns the line; the owner's accesses
 *    skip registration (writes stay eager with undo records — in an
 *    eager-versioning simulator the undo log *is* the per-task write
 *    buffer, and install-at-commit is the no-op of keeping the values
 *    already in place). Any access by a non-owner demotes the line.
 *  - Reduction: tasks mutate the line only through ctx.reduce()
 *    (commutative int64 add); deltas are buffered per task and folded
 *    into memory at commit instead of aborting on write-write. A plain
 *    write demotes the line (buffered deltas are materialized with
 *    undo records first, in task order, so rollback stays exact).
 *
 * Misclassification is never a correctness hazard: every contradicting
 * access demotes the line to full tracking for the rest of the run.
 * The map is correctness-neutral by construction; it only moves work
 * off the speculative tracking paths.
 *
 * Addresses are host virtual addresses of the current process: a saved
 * map is only meaningful where data placement is reproducible (e.g.
 * the tests' fixed arena). save()/load() exist for such setups and for
 * offline inspection; the default flow (classifyMode=profile) builds
 * the map in-process and never serializes it.
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace ssim {

enum class LineClass : uint8_t
{
    ReadOnly = 1,
    Private = 2,
    Reduction = 3,
};

const char* lineClassName(LineClass c);

/**
 * A half-open byte range an app declares as commutative-reduction
 * state (int64 add via ctx.reduce). Only lines that lie entirely
 * inside a declared range are eligible for Reduction classification.
 */
struct ReductionRange
{
    Addr base = 0;
    uint64_t bytes = 0;
};

struct ClassificationMap
{
    std::unordered_map<LineAddr, LineClass> lines;

    size_t size() const { return lines.size(); }
    bool empty() const { return lines.empty(); }

    /** Count of lines with the given class. */
    size_t count(LineClass c) const;

    /**
     * Serialize as sorted text ("<hex line> <class name>" per line) —
     * deterministic output for diffing and the round-trip test. See
     * the file comment for the address-validity caveat.
     */
    bool save(const std::string& path) const;

    /** Parse a save()d map. Returns false (map untouched) on error. */
    bool load(const std::string& path);
};

} // namespace ssim
