#include "swarm/capacity_manager.h"

#include <vector>

#include "base/logging.h"
#include "swarm/execution_engine.h"
#include "swarm/task_unit.h"

namespace ssim {

CapacityManager::CapacityManager(const SimConfig& cfg, Mesh& mesh,
                                 SimStats& stats, Rng& rng,
                                 ExecutionEngine& engine)
    : cfg_(cfg), mesh_(mesh), stats_(stats), rng_(rng), engine_(engine)
{
}

// ---- Spills (coalescers, Sec. II-B / Table II) ------------------------------------

void
CapacityManager::maybeSpill(TileId tile)
{
    TaskUnit& unit = engine_.unit(tile);
    if (!unit.taskQueueAboveSpillThreshold())
        return;

    // Coalescer: spill up to spillBatch idle tasks, latest first,
    // preferring untied tasks (paper spills only parent-committed tasks;
    // we may spill tied ones too -- see DESIGN.md).
    // Never spill the tile's earliest idle task: it may gate the GVT.
    Task* keep = *unit.idle.begin();
    std::vector<Task*> batch;
    for (auto it = unit.idle.rbegin();
         it != unit.idle.rend() && batch.size() < cfg_.spillBatch; ++it) {
        if ((*it)->untied && *it != keep)
            batch.push_back(*it);
    }
    if (batch.size() < cfg_.spillBatch) {
        for (auto it = unit.idle.rbegin();
             it != unit.idle.rend() && batch.size() < cfg_.spillBatch;
             ++it) {
            if (!(*it)->untied && *it != keep)
                batch.push_back(*it);
        }
    }
    for (Task* t : batch) {
        unit.idle.erase(t);
        unit.spillBuf.insert(t);
        t->spilled = true;
        stats_.tasksSpilled++;
        stats_.coreCycles[size_t(CycleBucket::Spill)] +=
            cfg_.spillCostPerTask;
        mesh_.injectRaw(cfg_.taskDescFlits, TrafficClass::MemAcc);
    }
}

void
CapacityManager::unspillIfRoom(TileId tile)
{
    TaskUnit& unit = engine_.unit(tile);
    uint32_t lowWater = uint32_t(0.5 * unit.taskQueueCap);
    uint32_t brought = 0;
    while (!unit.spillBuf.empty()) {
        Task* t = *unit.spillBuf.begin();
        // Progress guarantee: a spilled task that precedes every idle
        // task must come back regardless of occupancy -- otherwise the
        // tile's (and possibly the system's) earliest task is stranded
        // in memory and the GVT never advances.
        bool mustRestore =
            unit.idle.empty() || t->before(**unit.idle.begin());
        bool haveRoom = unit.taskQueueOcc() < lowWater &&
                        brought < cfg_.spillBatch;
        if (!mustRestore && !haveRoom)
            break;
        unit.spillBuf.erase(unit.spillBuf.begin());
        t->spilled = false;
        unit.idle.insert(t);
        stats_.coreCycles[size_t(CycleBucket::Spill)] +=
            cfg_.spillCostPerTask;
        mesh_.injectRaw(cfg_.taskDescFlits, TrafficClass::MemAcc);
        brought++;
    }
}

// ---- Idealized work-stealing (Sec. II-C) ---------------------------------------------

bool
CapacityManager::trySteal(TileId thief)
{
    // Victim selection.
    TileId victim = cfg_.ntiles; // invalid
    switch (cfg_.stealVictim) {
      case StealVictim::MostLoaded: {
        size_t best = 0;
        for (TileId t = 0; t < cfg_.ntiles; t++) {
            if (t == thief)
                continue;
            size_t n = engine_.unit(t).idle.size();
            if (n > best) {
                best = n;
                victim = t;
            }
        }
        break;
      }
      case StealVictim::Random: {
        // Try a few random probes, then fall back to a scan.
        for (int i = 0; i < 4 && victim == cfg_.ntiles; i++) {
            TileId t = TileId(rng_.range(cfg_.ntiles));
            if (t != thief && !engine_.unit(t).idle.empty())
                victim = t;
        }
        if (victim == cfg_.ntiles) {
            for (TileId t = 0; t < cfg_.ntiles; t++)
                if (t != thief && !engine_.unit(t).idle.empty()) {
                    victim = t;
                    break;
                }
        }
        break;
      }
      case StealVictim::NearestNeighbor: {
        uint32_t bestDist = ~0u;
        for (TileId t = 0; t < cfg_.ntiles; t++) {
            if (t == thief || engine_.unit(t).idle.empty())
                continue;
            uint32_t d = mesh_.hops(thief, t);
            if (d < bestDist) {
                bestDist = d;
                victim = t;
            }
        }
        break;
      }
    }
    if (victim == cfg_.ntiles || engine_.unit(victim).idle.empty())
        return false;

    // Task selection within the victim tile.
    TaskUnit& vu = engine_.unit(victim);
    Task* t = nullptr;
    switch (cfg_.stealChoice) {
      case StealChoice::EarliestTs:
        t = *vu.idle.begin();
        break;
      case StealChoice::LatestTs:
        t = *vu.idle.rbegin();
        break;
      case StealChoice::Random: {
        auto it = vu.idle.begin();
        std::advance(it, rng_.range(vu.idle.size()));
        t = *it;
        break;
      }
    }
    ssim_assert(t);

    // Idealized: the steal itself is instantaneous and free (Sec. II-C);
    // only the task's subsequent data accesses pay for the move.
    vu.idle.erase(t);
    vu.unfinished.erase(t);
    t->tile = thief;
    TaskUnit& tu = engine_.unit(thief);
    tu.idle.insert(t);
    tu.unfinished.insert(t);
    stats_.tasksStolen++;
    return true;
}

} // namespace ssim
