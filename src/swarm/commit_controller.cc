#include "swarm/commit_controller.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/logging.h"
#include "swarm/capacity_manager.h"
#include "swarm/conflict_manager.h"
#include "swarm/execution_engine.h"
#include "swarm/load_balancer.h"
#include "swarm/shard.h"
#include "swarm/task_unit.h"

namespace ssim {

CommitController::CommitController(const SimConfig& cfg, EventQueue& eq,
                                   Mesh& mesh, SimStats& stats,
                                   ExecutionEngine& engine,
                                   ConflictManager& conflict,
                                   CapacityManager& capacity,
                                   LoadBalancer* lb)
    : cfg_(cfg), eq_(eq), mesh_(mesh), stats_(stats), engine_(engine),
      conflict_(conflict), capacity_(capacity), lb_(lb)
{
}

void
CommitController::start()
{
    gvtScheduled_ = true;
    eq_.schedule(cfg_.gvtEpoch, [this] { gvtEpoch(); });
    if (lb_) {
        lbScheduled_ = true;
        eq_.schedule(cfg_.lbEpoch, [this] { lbEpoch(); });
    }
}

void
CommitController::ensureEpochsScheduled()
{
    if (!gvtScheduled_) {
        gvtScheduled_ = true;
        eq_.scheduleAfter(cfg_.gvtEpoch, [this] { gvtEpoch(); });
    }
    if (lb_ && !lbScheduled_) {
        lbScheduled_ = true;
        eq_.scheduleAfter(cfg_.lbEpoch, [this] { lbEpoch(); });
    }
}

std::optional<std::pair<Timestamp, uint64_t>>
CommitController::computeGvt() const
{
    // Min-merge of per-tile minima, like the arbiter: each tile reports
    // its lane-local lower bound and the global bound is their minimum.
    std::optional<std::pair<Timestamp, uint64_t>> gvt;
    for (TileId tile = 0; tile < cfg_.ntiles; tile++) {
        Task* m = engine_.unit(tile).minUnfinished();
        if (!m)
            continue;
        std::pair<Timestamp, uint64_t> key{m->ts, m->uid};
        if (!gvt || key < *gvt)
            gvt = key;
    }
    return gvt;
}

Cycle
CommitController::tileLaneLowerBound() const
{
    Cycle lb = kCycleMax;
    for (TileId tile = 0; tile < cfg_.ntiles; tile++)
        lb = std::min(lb, eq_.laneMinCycle(tile + 1));
    return lb;
}

void
CommitController::gvtEpoch()
{
    gvtScheduled_ = false;
    gvtEpochsRun_++;
    static const bool trace = []() {
        // SWARMSIM_GVT_TRACE: GVT debug dumps. (Plain SWARMSIM_TRACE is
        // the trace-replay backend's trace-file path — harness/cli.h.)
        const char* e = std::getenv("SWARMSIM_GVT_TRACE");
        return e && e[0] == '1';
    }();
    if (trace && ++traceEpochs_ % 2000 == 0) {
        auto gvtDbg = computeGvt();
        std::fprintf(stderr,
                     "[gvt] cycle=%llu lanes=%u pending=%zu lane-lb=%llu "
                     "live=%llu committed=%llu "
                     "aborted=%llu gvt=(%llu,%llu)\n",
                     (unsigned long long)eq_.now(), eq_.numLanes(),
                     eq_.pending(),
                     (unsigned long long)tileLaneLowerBound(),
                     (unsigned long long)engine_.tasksLive(),
                     (unsigned long long)stats_.tasksCommitted,
                     (unsigned long long)stats_.tasksAborted,
                     gvtDbg ? (unsigned long long)gvtDbg->first : 0,
                     gvtDbg ? (unsigned long long)gvtDbg->second : 0);
        if (gvtDbg) {
            Task* m = engine_.lookupTask(gvtDbg->second);
            const TaskUnit& u = engine_.unit(m ? m->tile : 0);
            std::fprintf(
                stderr,
                "      min-task state=%s tile=%u spilled=%d | tile: "
                "idle=%zu cq=%zu spill=%zu inflight=%u running=%u\n",
                m ? taskStateName(m->state) : "?", m ? m->tile : 0,
                m ? int(m->spilled) : -1, u.idle.size(), u.commitQ.size(),
                u.spillBuf.size(), u.inFlight, u.running);
            for (uint32_t i = 0; i < cfg_.coresPerTile; i++) {
                const auto& c =
                    engine_.core(cfg_.coreId(m ? m->tile : 0, i));
                std::fprintf(stderr,
                             "      core%u task=%llu pending=%d wait=%d\n",
                             i,
                             c.task ? (unsigned long long)c.task->uid : 0,
                             int(c.finishPending), int(c.wait));
            }
        }
    }

    // Each tile sends its local minimum to the arbiter, which broadcasts
    // the global minimum back.
    mesh_.injectRaw(2 * cfg_.ntiles * cfg_.gvtFlits, TrafficClass::Gvt);

    auto gvt = computeGvt();

    // Sharded run: report this epoch to the parent reducer. Every
    // replica computes the same GVT at the same epoch, so the parent's
    // epoch-aligned comparison is a pure invariant check today — and
    // the reduction seam a TCP transport would turn real.
    if (shard_ && gvtEpochsRun_ % cfg_.shardProgressEvery == 0) {
        WireProgress p{};
        p.epoch = gvtEpochsRun_;
        p.cycle = eq_.now();
        p.gvtTs = gvt ? gvt->first : 0;
        p.gvtUid = gvt ? gvt->second : 0;
        p.hasGvt = gvt ? 1 : 0;
        shard_->sendProgress(p);
    }

    // Commit in GLOBAL timestamp order (min-merge over the per-tile
    // commit-queue heads), not tile-by-tile. Plain commits have no
    // memory effects, so batching per tile used to be safe — but a
    // commit that folds classified reduction deltas writes memory and
    // may abort registered readers, and those effects must land in
    // timestamp order. A fold-abort additionally requeues its victims
    // live again, invalidating the GVT computed at the top of the
    // epoch: tighten the bound to the earliest victim so the sweep
    // keeps committing (and folding) everything still earlier than it,
    // but never overtakes a requeued task.
    conflict_.consumeFoldAbort(); // defensive clear (nothing folds
                                  // outside the sweep)
    while (true) {
        Task* next = nullptr;
        for (TileId tile = 0; tile < cfg_.ntiles; tile++) {
            TaskUnit& unit = engine_.unit(tile);
            if (unit.commitQ.empty())
                continue;
            Task* head = *unit.commitQ.begin();
            if (!next || head->before(*next))
                next = head;
        }
        if (!next)
            break;
        std::pair<Timestamp, uint64_t> key{next->ts, next->uid};
        if (gvt && !(key < *gvt))
            break;
        commitTask(next);
        if (auto victim = conflict_.consumeFoldAbort())
            if (!gvt || *victim < *gvt)
                gvt = victim;
    }

    for (TileId tile = 0; tile < cfg_.ntiles; tile++) {
        engine_.retryFinishPending(tile);
        capacity_.unspillIfRoom(tile);
        breakCommitGridlock(tile);
        engine_.scheduleDispatch(tile);
    }

    if (engine_.tasksLive() > 0) {
        gvtScheduled_ = true;
        eq_.scheduleAfter(cfg_.gvtEpoch, [this] { gvtEpoch(); });
    }
}

void
CommitController::commitTask(Task* t)
{
    ssim_assert(t->state == TaskState::Finished);
    TaskUnit& unit = engine_.unit(t->tile);
    unit.commitQ.erase(t);
    // onCommit fences any staged parallel-replay pre-applies on the
    // task's footprint banks before releasing its line-table entries:
    // removeTask changes probe compared counts, which feed the
    // digest-included conflictChecks stat.
    conflict_.onCommit(t);

    stats_.tasksCommitted++;
    stats_.coreCycles[size_t(CycleBucket::Commit)] += t->execCycles;
    lastCommitCycle_ = eq_.now();

    if (profiler_)
        profiler_->onCommit(*t);
    if (lb_ && t->hasHint())
        lb_->profileCommit(t->tile, t->bucket, t->execCycles);

    // Untie children: their parent has committed, so they can no longer
    // be discarded and become spill-eligible.
    for (Task* c : t->children) {
        c->untied = true;
        c->parent = nullptr;
    }
    // If our parent is still live, unlink ourselves from it (defensive:
    // under the timestamp-ordered sweep the parent commits first and
    // clears our link above).
    if (t->parent) {
        auto& sib = t->parent->children;
        sib.erase(std::remove(sib.begin(), sib.end(), t), sib.end());
    }

    engine_.destroyTask(t);
}

void
CommitController::breakCommitGridlock(TileId tile)
{
    // All cores can end up holding finished tasks that wait for commit
    // queue slots while an earlier task sits idle on the tile; nothing
    // can then commit (the idle task gates the GVT) and the tile wedges.
    // Swarm's resource-exhaustion rule applies: abort the latest
    // higher-timestamp blocked task to free its core.
    TaskUnit& unit = engine_.unit(tile);
    if (unit.idle.empty())
        return;
    Task* latestBlocked = nullptr;
    for (uint32_t idx = 0; idx < cfg_.coresPerTile; idx++) {
        const auto& core = engine_.core(cfg_.coreId(tile, idx));
        if (!core.task)
            return; // a free core exists; normal dispatch proceeds
        if (core.finishPending &&
            (!latestBlocked || latestBlocked->before(*core.task))) {
            latestBlocked = core.task;
        }
    }
    Task* earliestIdle = *unit.idle.begin();
    if (latestBlocked && earliestIdle->before(*latestBlocked)) {
        stats_.abortsGridlock++;
        conflict_.abortTasks({latestBlocked}, /*discard_roots=*/false,
                             tile);
    }
}

void
CommitController::lbEpoch()
{
    if (!lb_)
        return;
    lbScheduled_ = false;
    std::vector<uint64_t> idlePerTile(cfg_.ntiles, 0);
    for (TileId t = 0; t < cfg_.ntiles; t++) {
        const TaskUnit& unit = engine_.unit(t);
        idlePerTile[t] = unit.idle.size() + unit.spillBuf.size();
    }

    uint32_t moved = lb_->reconfigure(idlePerTile);
    stats_.lbReconfigs++;
    stats_.bucketsMoved += moved;
    // Counter collection + tile map broadcast traffic.
    mesh_.injectRaw(3 * cfg_.ntiles * cfg_.gvtFlits, TrafficClass::Gvt);

    if (engine_.tasksLive() > 0) {
        lbScheduled_ = true;
        eq_.scheduleAfter(cfg_.lbEpoch, [this] { lbEpoch(); });
    }
}

} // namespace ssim
