#include "swarm/execution_engine.h"

#include <algorithm>

#include "base/hash.h"
#include "base/logging.h"
#include "swarm/backends/engine_backend.h"
#include "swarm/capacity_manager.h"
#include "swarm/commit_controller.h"
#include "swarm/conflict_manager.h"
#include "swarm/shard.h"

namespace ssim {

namespace {

/// Wire-record skeleton for one of @p t's effects at event slot @p now.
WireStep
makeStep(const Task* t, Cycle now, WireKind kind)
{
    WireStep w;
    w.kind = kind;
    w.uid = t->uid;
    w.gen = t->generation;
    w.cycle = now;
    return w;
}

} // namespace

ExecutionEngine::ExecutionEngine(const SimConfig& cfg, EventQueue& eq,
                                 EngineBackend& backend, SimStats& stats,
                                 SpatialScheduler& sched, Machine* machine)
    : cfg_(cfg), eq_(eq), backend_(backend), stats_(stats),
      sched_(sched), machine_(machine),
      inline_(backend.inlineEffects())
{
    units_.reserve(cfg_.ntiles);
    for (TileId t = 0; t < cfg_.ntiles; t++)
        units_.emplace_back(t, cfg_);
    cores_.resize(cfg_.totalCores());
}

ExecutionEngine::~ExecutionEngine()
{
    // Destroy any leftover coroutine frames and task objects (only on
    // abnormal teardown; a completed run() leaves no live tasks).
    for (auto& [uid, t] : liveTasks_) {
        if (t->coro)
            t->coro.destroy();
        delete t;
    }
}

void
ExecutionEngine::wire(ConflictManager* conflict, CapacityManager* capacity,
                      CommitController* commit)
{
    conflict_ = conflict;
    capacity_ = capacity;
    commit_ = commit;
    replay_ = conflict ? conflict->replayBackend() : nullptr;
}

Task*
ExecutionEngine::lookupTask(uint64_t uid) const
{
    auto it = liveTasks_.find(uid);
    return it == liveTasks_.end() ? nullptr : it->second;
}

void
ExecutionEngine::destroyTask(Task* t)
{
    liveTasks_.erase(t->uid);
    ssim_assert(tasksLive_ > 0);
    tasksLive_--;
    delete t;
}

void
ExecutionEngine::scheduleDispatch(TileId tile)
{
    eq_.scheduleAfterOn(tile, 0, [this, tile] { tryDispatch(tile); });
}

void
ExecutionEngine::scheduleDoomedAbort(Task* t, TileId cause_tile)
{
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfterOn(t->tile, 0, [this, uid, gen, cause_tile] {
        Task* x = lookupTask(uid);
        if (!x)
            return; // discarded since the doom was recorded
        if (x->generation != gen && !x->doomedDiscard)
            return; // another abort already rolled the stale attempt
                    // back, which is all a requeue-level doom requires
        // A discard-level doom survives an intervening requeue (the
        // flag persists across resetSpecState): the task's spawning
        // attempt was rolled back, so it must be retired, not re-run.
        // Between the doom and this event the task cannot have been
        // re-dispatched (dispatch events carry later sequence numbers),
        // so it is Running/Finished (generation match) or Idle
        // (requeued by an intervening same-cycle abort) — abortTasks
        // handles all three.
        stats_.classifyAborts++;
        conflict_->abortTasks({x}, /*discard_roots=*/x->doomedDiscard,
                              cause_tile);
    });
}

// ---- Task creation ----------------------------------------------------------

Task*
ExecutionEngine::createTask(swarm::TaskFn fn, Timestamp ts,
                            swarm::Hint hint,
                            const std::array<uint64_t, 3>& args,
                            uint8_t nargs, Task* parent, TileId src_tile)
{
    ssim_assert(!parent || ts >= parent->ts,
                "child timestamp must be >= parent's");

    Task* t = new Task();
    t->uid = nextUid_++;
    t->ts = ts;
    t->fn = fn;
    t->args = args;
    t->nargs = nargs;

    // Resolve the hint. SAMEHINT inherits the parent's hint and is queued
    // to the local tile (Sec. III-B).
    TileId dst;
    if (hint.isSame()) {
        if (parent) {
            t->hint = parent->hint;
            t->noHint = parent->noHint;
        } else {
            t->noHint = true;
        }
        dst = sched_.placeSameHint(src_tile);
    } else {
        t->noHint = hint.isNoHint();
        t->hint = hint.isValue() ? hint.val : 0;
        dst = sched_.place(!t->noHint, t->hint, src_tile);
    }
    if (!t->noHint) {
        t->hintHash = hintHash16(t->hint);
        t->bucket = hintToBucket(t->hint, cfg_.numBuckets());
    }

    t->tile = dst;
    t->state = TaskState::InFlight;
    t->parent = parent;
    t->untied = (parent == nullptr);
    if (parent)
        parent->children.push_back(t);

    liveTasks_.emplace(t->uid, t);
    tasksLive_++;

    TaskUnit& unit = units_[dst];
    unit.unfinished.insert(t);
    unit.inFlight++;

    uint32_t lat = backend_.taskSendCost(src_tile, dst);
    uint64_t uid = t->uid, gen = t->generation;
    eq_.scheduleAfterOn(dst, lat,
                        [this, uid, gen] { arriveTask(uid, gen); });
    return t;
}

void
ExecutionEngine::enqueueInitial(swarm::TaskFn fn, Timestamp ts,
                                swarm::Hint hint,
                                const std::array<uint64_t, 3>& args,
                                uint8_t n)
{
    TileId src = 0;
    if (sched_.stealing())
        src = rrInitTile_++ % cfg_.ntiles;
    createTask(fn, ts, hint, args, n, nullptr, src);
}

void
ExecutionEngine::arriveTask(uint64_t uid, uint64_t gen)
{
    Task* t = lookupTask(uid);
    if (!t || t->generation != gen || t->state != TaskState::InFlight)
        return; // discarded while in flight
    TaskUnit& unit = units_[t->tile];
    unit.inFlight--;
    t->state = TaskState::Idle;
    unit.idle.insert(t);
    capacity_->maybeSpill(t->tile);
    tryDispatch(t->tile);
}

// ---- Dispatch ----------------------------------------------------------------

void
ExecutionEngine::tryDispatch(TileId tile)
{
    TaskUnit& unit = units_[tile];
    for (uint32_t idx = 0; idx < cfg_.coresPerTile; idx++) {
        Core& core = cores_[cfg_.coreId(tile, idx)];
        if (core.task)
            continue;

        // Bring back spilled tasks first: the requeuer's progress rule
        // restores any spilled task that precedes the idle queue's head,
        // so dispatch never runs a later task ahead of an earlier spilled
        // one (which would make it a commit-queue displacement victim).
        if (!unit.spillBuf.empty())
            capacity_->unspillIfRoom(tile);
        Task* t = unit.pickDispatchable(cfg_.serializeSameHint,
                                        stats_.dispatchSkips);
        if (!t && sched_.stealing()) {
            if (capacity_->trySteal(tile))
                t = unit.pickDispatchable(cfg_.serializeSameHint,
                                          stats_.dispatchSkips);
        }
        if (!t) {
            if (core.wait == Core::Wait::None)
                enterWait(core, Core::Wait::Empty);
            continue;
        }
        if (core.wait == Core::Wait::Empty)
            leaveWait(core, CycleBucket::Empty);
        dispatchOn(tile, idx, t);
    }
}

void
ExecutionEngine::dispatchOn(TileId tile, uint32_t idx, Task* t)
{
    TaskUnit& unit = units_[tile];
    ssim_assert(t->state == TaskState::Idle);
    unit.idle.erase(t);
    t->state = TaskState::Running;
    t->inlineDefers = 0;
    t->runningOn = cfg_.coreId(tile, idx);
    unit.running++;
    unit.coreTasks[idx] = t;

    Core& core = cores_[t->runningOn];
    core.task = t;
    core.everDispatched = true;

    // Sharded mode: only the owner of this tile materializes and runs
    // the coroutine; every other replica performs the same (purely
    // deterministic) dispatch bookkeeping and later consumes the
    // owner's wire records instead of a body (consumeRemoteSteps).
    if (!shard_ || shard_->ownsTile(tile)) {
        t->ctx = swarm::TaskCtx(machine_, t);
        swarm::TaskCoro c = t->fn(t->ctx, t->ts, t->args.data());
        t->coro = c.handle;
    }

    backend_.noteDispatch(t->runningOn,
                          reinterpret_cast<const void*>(t->fn));
    EngineBackend::DispatchInfo info;
    info.cqOccupancy = uint32_t(unit.commitQ.size());
    // How many same-tile cores are running an older-timestamp task:
    // those bodies should logically fire before this one does.
    for (uint32_t i = 0; i < cfg_.coresPerTile; i++) {
        const Task* o = unit.coreTasks[i];
        if (o && o != t && o->ts < t->ts)
            info.olderRunning++;
    }
    // Attempt N > 0 means N prior aborts of this task: a contention
    // backoff signal for collapsed-clock backends.
    info.attempt = t->dispatches++;
    uint32_t lat = backend_.dequeueCost(info);
    t->execCycles += lat;
    scheduleResume(t, lat);
}

void
ExecutionEngine::scheduleResume(Task* t, Cycle delta)
{
    uint64_t uid = t->uid, gen = t->generation;
    if (inline_) {
        // Inline mode: bodies are not pre-resumable (they run whole at
        // one event), so leave the event untagged and invisible to the
        // parallel executor.
        eq_.scheduleAfterOn(t->tile, delta,
                            [this, uid, gen] { resumeCoro(uid, gen); });
        return;
    }
    eq_.scheduleResumeOn(t->tile, delta, uid, gen,
                         [this, uid, gen] { resumeCoro(uid, gen); });
}

void
ExecutionEngine::resumeCoro(uint64_t uid, uint64_t gen)
{
    Task* t = lookupTask(uid);
    if (!t || t->generation != gen || t->state != TaskState::Running)
        return; // aborted or discarded in the meantime
    if (inline_) {
        // Inline bodies are atomic: the whole body fires at this event.
        // Issue same-tile bodies in (ts, uid) order — if an older task
        // on this tile is still Running (its body event hasn't fired),
        // defer ours past it. A conflict can only abort someone when a
        // later-timestamp body fires before an earlier one, so this
        // tile-local in-order issue removes the abort storms the
        // timing backend's per-access interleave never suffers from.
        // The tile's minimum-(ts, uid) Running task never defers, so
        // the chain always drains (no livelock).
        const TaskUnit& unit = units_[t->tile];
        for (const Task* o : unit.coreTasks) {
            if (o && o != t && o->state == TaskState::Running &&
                TaskOrder{}(o, t)) {
                // Exponential re-check interval (capped): the older
                // body may be a contention-backoff sleeper hundreds of
                // cycles out, and re-polling it every few cycles would
                // turn one defer into a host-event storm.
                Cycle delta =
                    kInlineIssueDefer << std::min(t->inlineDefers, 3u);
                t->inlineDefers++;
                scheduleResume(t, delta);
                return;
            }
        }
    }
    if (t->pending.hasSteps() && t->pending.gen == gen) {
        // Parallel host mode: the pure segment already ran on a worker;
        // apply its next recorded effect at this event's serial slot.
        applyPendingStep(t);
        return;
    }
    if (shard_ && !shard_->ownsTile(t->tile)) {
        // Foreign task: this replica has no coroutine for it. Consume
        // the owner shard's wire records at this exact slot instead.
        consumeRemoteSteps(t);
        return;
    }
    ssim_assert(t->coro && !t->coro.done());
    t->coro.resume();
    if (t->coro.done()) {
        t->coro.destroy();
        t->coro = {};
        if (shard_)
            shard_->sendStep(makeStep(t, eq_.now(), WireKind::Finish));
        finishTaskAttempt(t);
    }
    // Otherwise an awaiter has scheduled the next resume.
}

void
ExecutionEngine::consumeRemoteSteps(Task* t)
{
    uint32_t from = shard_->shardOfTile(t->tile);
    // Suspending backends issue exactly one effect per resume event (or
    // complete); inline-effects backends run the whole body at one
    // event, so the owner's records stream until Finish.
    for (;;) {
        WireStep w = shard_->recvStep(from);
        if (w.uid != t->uid || w.gen != t->generation ||
            w.cycle != eq_.now()) {
            fatal("shard %u: %s record (uid %llu gen %llu cycle %llu) "
                  "from shard %u does not match the local slot (uid %llu "
                  "gen %llu cycle %llu) — replicas diverged",
                  shard_->shard(), wireKindName(w.kind),
                  (unsigned long long)w.uid, (unsigned long long)w.gen,
                  (unsigned long long)w.cycle, from,
                  (unsigned long long)t->uid,
                  (unsigned long long)t->generation,
                  (unsigned long long)eq_.now());
        }
        switch (w.kind) {
          case WireKind::Finish:
            finishTaskAttempt(t);
            return;
          case WireKind::Access: {
            uint64_t dummy = 0;
            if (inline_) {
                t->execCycles += applyAccessEffects(
                    t, w.addr, w.size, w.isWrite != 0, w.wval, &dummy);
            } else {
                issueAccessImpl(t, w.addr, w.size, w.isWrite != 0, w.wval,
                                &dummy);
            }
            break;
          }
          case WireKind::Reduce: {
            int64_t delta = 0;
            std::memcpy(&delta, &w.wval, 8);
            if (inline_)
                t->execCycles += applyReduceEffects(t, w.addr, delta);
            else
                issueReduceImpl(t, w.addr, delta);
            break;
          }
          case WireKind::Compute: {
            uint32_t lat = backend_.computeCost(w.cycles);
            t->execCycles += lat;
            if (!inline_)
                scheduleResume(t, lat);
            break;
          }
          case WireKind::Enqueue: {
            swarm::Hint hint(w.hintVal);
            hint.kind = swarm::Hint::Kind(w.hintKind);
            createTask(reinterpret_cast<swarm::TaskFn>(w.fn), w.ets, hint,
                       w.args, w.nargs, t, t->tile);
            uint32_t lat = backend_.enqueueCost();
            t->execCycles += lat;
            if (!inline_)
                scheduleResume(t, lat);
            break;
          }
          default:
            fatal("shard %u: unknown wire record kind %u from shard %u",
                  shard_->shard(), unsigned(w.kind), from);
        }
        if (!inline_)
            return;
    }
}

uint32_t
ExecutionEngine::preResume(uint64_t uid, uint64_t gen)
{
    Task* t = lookupTask(uid);
    if (!t || t->generation != gen || t->state != TaskState::Running)
        return 0; // stale tag: aborted/discarded since the scan
    if (!t->coro || t->coro.done() || t->pending.hasSteps() ||
        t->pending.recording) {
        return 0; // mid-chain (steps recorded) or finish-pending
    }
    t->pending.clear(); // drop fully-consumed step storage
    t->pending.gen = gen;
    t->pending.recording = true;
    for (uint32_t n = 0; n < kMaxRunahead; n++) {
        t->coro.resume(); // pure: effects are recorded, not applied
        if (t->coro.done()) {
            Task::PendingStep s;
            s.kind = Task::PendingStep::Kind::Finish;
            t->pending.steps.push_back(s);
            break;
        }
        ssim_assert(!t->pending.steps.empty(),
                    "suspended without recording a step");
        Task::PendingStep& last = t->pending.steps.back();
        // Park at the first read: its value exists only once the access
        // is applied in event order.
        if (last.kind == Task::PendingStep::Kind::Access && !last.isWrite)
            break;
        if (n + 1 >= kMaxRunahead)
            break; // parked on a continuable step; coordinator resumes it
        // Running ahead past this step: the awaiter's frame slot may be
        // reused by later segments, so keep only the by-value record.
        last.aw = nullptr;
    }
    t->pending.recording = false;
    return uint32_t(t->pending.steps.size());
}

void
ExecutionEngine::applyPendingStep(Task* t)
{
    // Parallel replay: the head step may have been PRE-APPLIED by a
    // worker (swarm/conflict_manager.h, ParallelReplayBackend). Its
    // functional effect and line registration already happened and the
    // bank was provably untouched since (any serial touch would have
    // squashed it), so only the slot-ordered half remains: deliver the
    // staged read value, charge the modeled latency through the
    // stateful backend at this exact slot, and account conflictChecks
    // from the staged compared count — bit-identical to the serial
    // apply.
    if (replay_ && t->pending.steps[t->pending.next].applied) {
        Task::PendingStep& s = t->pending.steps[t->pending.next];
        replay_->onSlotConsume(t);
        if (!s.isWrite && s.aw)
            std::memcpy(&s.aw->rval, &s.stagedRval, s.size);
        if (commit_->profiler())
            t->trace.push_back(((s.addr >> 3) << 2) | (s.isWrite ? 1 : 0));
        uint32_t lat = backend_.accessCost(t->runningOn, s.addr, s.isWrite,
                                           s.stagedCompared);
        stats_.conflictChecks += s.stagedCompared;
        if (s.didInsertSet)
            stats_.lineTableRegs++; // pre-applied registration, now real
        s.applied = false; // consumed
        t->pending.next++;
        if (!t->pending.hasSteps())
            t->pending.clear();
        t->execCycles += lat;
        scheduleResume(t, lat);
        return;
    }
    // Move, not copy: the step owns its conflict probe's vectors, and
    // pending.clear() below must not free them before they are applied.
    Task::PendingStep s = std::move(t->pending.steps[t->pending.next++]);
    if (!t->pending.hasSteps())
        t->pending.clear();
    switch (s.kind) {
      case Task::PendingStep::Kind::Access: {
        // A recorded access the workers could not (or did not) pre-apply
        // falls back to the serial path (digest-excluded visibility).
        if (replay_)
            stats_.coordinatorFallbackApplies++;
        uint64_t dummy = 0;
        issueAccessImpl(t, s.addr, s.size, s.isWrite, s.wval,
                        s.aw ? &s.aw->rval : &dummy, &s.probe);
        break;
      }
      case Task::PendingStep::Kind::Reduce: {
        // Reduces are never pre-applied or probed (classified lines
        // bypass the banks entirely; unclassified reduces stay serial).
        if (replay_)
            stats_.coordinatorFallbackApplies++;
        int64_t delta = 0;
        std::memcpy(&delta, &s.wval, 8);
        issueReduceImpl(t, s.addr, delta);
        break;
      }
      case Task::PendingStep::Kind::Compute: {
        if (replay_)
            stats_.crossBankEffects++;
        uint32_t lat = backend_.computeCost(s.cycles);
        t->execCycles += lat;
        scheduleResume(t, lat);
        break;
      }
      case Task::PendingStep::Kind::Enqueue: {
        if (replay_)
            stats_.crossBankEffects++;
        createTask(s.fn, s.ets, s.hint, s.eargs, s.enargs, t, t->tile);
        uint32_t lat = backend_.enqueueCost();
        t->execCycles += lat;
        scheduleResume(t, lat);
        break;
      }
      case Task::PendingStep::Kind::Finish:
        if (replay_)
            stats_.crossBankEffects++;
        if (t->coro) {
            t->coro.destroy();
            t->coro = {};
        }
        finishTaskAttempt(t);
        break;
    }
}

// ---- Finish and commit-queue admission ------------------------------------------

void
ExecutionEngine::finishTaskAttempt(Task* t)
{
    t->execCycles += backend_.finishCost();
    Core& core = cores_[t->runningOn];
    if (tryTakeCommitSlot(t))
        return;
    // Commit queue full and t is not earlier than any occupant: the core
    // stalls holding the finished task until a slot frees.
    core.finishPending = true;
    enterWait(core, Core::Wait::StallCQ);
}

bool
ExecutionEngine::tryTakeCommitSlot(Task* t)
{
    TaskUnit& unit = units_[t->tile];
    // Displacing a victim can recursively admit other pending finishers
    // (retryFinishPending runs inside abortTasks), so loop until we own
    // a slot or a strictly-earlier occupant blocks us.
    while (unit.commitQueueFull()) {
        Task* victim = unit.maxCommitQ();
        ssim_assert(victim);
        if (!t->before(*victim))
            return false;
        // Abort the latest finished task to free space (Sec. II-B:
        // "aborting higher-timestamp tasks to free space").
        stats_.abortsDisplace++;
        conflict_->abortTasks({victim}, /*discard_roots=*/false, t->tile);
    }
    TileId tile = t->tile;
    Core& core = cores_[t->runningOn];
    if (core.finishPending) {
        core.finishPending = false;
        leaveWait(core, CycleBucket::Stall);
    }
    freeCore(t);
    t->state = TaskState::Finished;
    unit.unfinished.erase(t);
    unit.commitQ.insert(t);
    scheduleDispatch(tile);
    return true;
}

void
ExecutionEngine::freeCore(Task* t)
{
    if (t->runningOn == Task::kNoCore)
        return;
    Core& core = cores_[t->runningOn];
    ssim_assert(core.task == t);
    if (core.finishPending) {
        core.finishPending = false;
        leaveWait(core, CycleBucket::Stall);
    }
    core.task = nullptr;
    TaskUnit& unit = units_[t->tile];
    unit.coreTasks[cfg_.coreIdx(t->runningOn)] = nullptr;
    ssim_assert(unit.running > 0);
    unit.running--;
    t->runningOn = Task::kNoCore;
}

void
ExecutionEngine::enterWait(Core& core, Core::Wait w)
{
    ssim_assert(core.wait == Core::Wait::None);
    core.wait = w;
    core.waitStart = eq_.now();
}

void
ExecutionEngine::leaveWait(Core& core, CycleBucket bucket)
{
    ssim_assert(core.wait != Core::Wait::None);
    stats_.coreCycles[size_t(bucket)] += eq_.now() - core.waitStart;
    core.wait = Core::Wait::None;
}

void
ExecutionEngine::retryFinishPending(TileId tile)
{
    for (uint32_t idx = 0; idx < cfg_.coresPerTile; idx++) {
        Core& core = cores_[cfg_.coreId(tile, idx)];
        if (core.finishPending && core.task) {
            if (units_[tile].commitQueueFull())
                return;
            tryTakeCommitSlot(core.task);
        }
    }
}

void
ExecutionEngine::flushWaitIntervals(Cycle end)
{
    for (Core& core : cores_) {
        if (core.wait != Core::Wait::None) {
            Cycle stop = std::max(end, core.waitStart);
            CycleBucket b = core.wait == Core::Wait::Empty
                                ? CycleBucket::Empty
                                : CycleBucket::Stall;
            stats_.coreCycles[size_t(b)] += stop - core.waitStart;
            core.wait = Core::Wait::None;
        }
    }
}

// ---- Awaiter implementations ----------------------------------------------------

void
ExecutionEngine::issueAccess(Task* t, swarm::MemAwaiter* aw)
{
    ssim_assert(t->state == TaskState::Running);
    ssim_assert((aw->addr & 7) + aw->size <= 8,
                "accesses must not cross an 8-byte boundary");
    if (t->pending.recording) {
        Task::PendingStep s;
        s.kind = Task::PendingStep::Kind::Access;
        s.addr = aw->addr;
        s.size = uint8_t(aw->size);
        s.isWrite = aw->isWrite;
        s.wval = aw->wval;
        s.aw = aw;
        t->pending.steps.push_back(s);
        return;
    }
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Access);
        w.addr = aw->addr;
        w.size = uint8_t(aw->size);
        w.isWrite = aw->isWrite ? 1 : 0;
        w.wval = aw->wval;
        shard_->sendStep(w);
    }
    issueAccessImpl(t, aw->addr, aw->size, aw->isWrite, aw->wval,
                    &aw->rval);
}

void
ExecutionEngine::issueReduce(Task* t, const swarm::ReduceAwaiter& aw)
{
    ssim_assert(t->state == TaskState::Running);
    ssim_assert((aw.addr & 7) == 0, "reduces must be 8-byte aligned");
    if (t->pending.recording) {
        // Value-free like a write: runahead continues past it (the
        // park-at-first-read rule only checks plain Access reads).
        Task::PendingStep s;
        s.kind = Task::PendingStep::Kind::Reduce;
        s.addr = aw.addr;
        s.size = 8;
        s.isWrite = true;
        std::memcpy(&s.wval, &aw.delta, 8);
        t->pending.steps.push_back(s);
        return;
    }
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Reduce);
        w.addr = aw.addr;
        std::memcpy(&w.wval, &aw.delta, 8);
        shard_->sendStep(w);
    }
    issueReduceImpl(t, aw.addr, aw.delta);
}

uint32_t
ExecutionEngine::applyAccessEffects(Task* t, Addr addr, uint32_t size,
                                    bool is_write, uint64_t wval,
                                    uint64_t* rval,
                                    Task::ConflictProbe* probe)
{
    LineAddr line = lineOf(addr);

    // Classified fast path: the access completes without touching the
    // line table (zero conflict comparisons). A false return may have
    // demoted the line — fall through to the full path either way.
    if (conflict_->tryClassifiedAccess(t, addr, size, is_write, wval,
                                       rval)) {
        if (commit_->profiler())
            t->trace.push_back(((addr >> 3) << 2) | (is_write ? 1 : 0));
        return backend_.accessCost(t->runningOn, addr, is_write, 0);
    }

    // Eager conflict detection: earlier tasks win; later conflicting
    // tasks abort *before* this access's functional effect. A fresh
    // worker-side probe (concurrent conflict checks) is consumed here,
    // at this access's serial slot.
    uint32_t compared =
        conflict_->resolveConflicts(t, line, is_write, probe);

    if (is_write) {
        Task::UndoRec rec{addr, uint8_t(size), 0};
        std::memcpy(&rec.oldVal, reinterpret_cast<void*>(addr), size);
        t->undo.push_back(rec);
        std::memcpy(reinterpret_cast<void*>(addr), &wval, size);
        conflict_->trackWrite(t, line);
    } else {
        std::memcpy(rval, reinterpret_cast<void*>(addr), size);
        conflict_->trackRead(t, line);
    }
    if (commit_->profiler())
        t->trace.push_back(((addr >> 3) << 2) | (is_write ? 1 : 0));

    uint32_t lat =
        backend_.accessCost(t->runningOn, addr, is_write, compared);
    stats_.conflictChecks += compared;
    return lat;
}

uint32_t
ExecutionEngine::applyReduceEffects(Task* t, Addr addr, int64_t delta)
{
    // Classified Reduction lines buffer the delta per task (folded at
    // commit); classified Private lines fold it eagerly. Either way no
    // line-table traffic and zero conflict comparisons.
    if (conflict_->tryClassifiedReduce(t, addr, delta)) {
        if (commit_->profiler())
            t->trace.push_back(((addr >> 3) << 2) | 2u);
        return backend_.accessCost(t->runningOn, addr, /*is_write=*/true,
                                   0);
    }

    // Fallback: a tracked read-modify-write. Write-side registration
    // covers both directions of the conflict (the write probe scans
    // readers and writers and records earlier uncommitted writers as
    // forwarded-data sources, exactly like a plain read+write pair).
    LineAddr line = lineOf(addr);
    uint32_t compared =
        conflict_->resolveConflicts(t, line, /*is_write=*/true, nullptr);
    Task::UndoRec rec{addr, 8, 0};
    std::memcpy(&rec.oldVal, reinterpret_cast<void*>(addr), 8);
    t->undo.push_back(rec);
    uint64_t nv = rec.oldVal + uint64_t(delta);
    std::memcpy(reinterpret_cast<void*>(addr), &nv, 8);
    conflict_->trackWrite(t, line);
    if (commit_->profiler())
        t->trace.push_back(((addr >> 3) << 2) | 2u);

    uint32_t lat =
        backend_.accessCost(t->runningOn, addr, /*is_write=*/true,
                            compared);
    stats_.conflictChecks += compared;
    return lat;
}

void
ExecutionEngine::issueReduceImpl(Task* t, Addr addr, int64_t delta)
{
    uint32_t lat = applyReduceEffects(t, addr, delta);
    t->execCycles += lat;
    scheduleResume(t, lat);
}

void
ExecutionEngine::issueAccessImpl(Task* t, Addr addr, uint32_t size,
                                 bool is_write, uint64_t wval,
                                 uint64_t* rval, Task::ConflictProbe* probe)
{
    uint32_t lat =
        applyAccessEffects(t, addr, size, is_write, wval, rval, probe);
    t->execCycles += lat;
    scheduleResume(t, lat);
}

// ---- Inline-effects fast path (await_ready) ---------------------------------
// Same effect bodies as the suspend path, applied synchronously: the
// coroutine keeps running and the whole task body executes within its
// one resume event. Record mode always declines — a recording worker
// must capture, not apply.

bool
ExecutionEngine::tryInlineAccess(Task* t, swarm::MemAwaiter* aw)
{
    if (!inline_ || t->pending.recording)
        return false;
    ssim_assert(t->state == TaskState::Running);
    ssim_assert((aw->addr & 7) + aw->size <= 8,
                "accesses must not cross an 8-byte boundary");
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Access);
        w.addr = aw->addr;
        w.size = uint8_t(aw->size);
        w.isWrite = aw->isWrite ? 1 : 0;
        w.wval = aw->wval;
        shard_->sendStep(w);
    }
    t->execCycles += applyAccessEffects(t, aw->addr, aw->size, aw->isWrite,
                                        aw->wval, &aw->rval);
    return true;
}

bool
ExecutionEngine::tryInlineReduce(Task* t, const swarm::ReduceAwaiter& aw)
{
    if (!inline_ || t->pending.recording)
        return false;
    ssim_assert(t->state == TaskState::Running);
    ssim_assert((aw.addr & 7) == 0, "reduces must be 8-byte aligned");
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Reduce);
        w.addr = aw.addr;
        std::memcpy(&w.wval, &aw.delta, 8);
        shard_->sendStep(w);
    }
    t->execCycles += applyReduceEffects(t, aw.addr, aw.delta);
    return true;
}

bool
ExecutionEngine::tryInlineCompute(Task* t, uint32_t cycles)
{
    if (!inline_ || t->pending.recording)
        return false;
    ssim_assert(t->state == TaskState::Running);
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Compute);
        w.cycles = cycles;
        shard_->sendStep(w);
    }
    t->execCycles += backend_.computeCost(cycles);
    return true;
}

bool
ExecutionEngine::tryInlineEnqueue(Task* t, const swarm::EnqueueAwaiter& aw)
{
    if (!inline_ || t->pending.recording)
        return false;
    ssim_assert(t->state == TaskState::Running);
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Enqueue);
        w.fn = reinterpret_cast<uint64_t>(aw.fn);
        w.ets = aw.ts;
        w.hintVal = aw.hint.val;
        w.hintKind = uint8_t(aw.hint.kind);
        w.args = aw.args;
        w.nargs = aw.nargs;
        shard_->sendStep(w);
    }
    createTask(aw.fn, aw.ts, aw.hint, aw.args, aw.nargs, t, t->tile);
    t->execCycles += backend_.enqueueCost();
    return true;
}

void
ExecutionEngine::issueCompute(Task* t, uint32_t cycles)
{
    ssim_assert(t->state == TaskState::Running);
    if (t->pending.recording) {
        Task::PendingStep s;
        s.kind = Task::PendingStep::Kind::Compute;
        s.cycles = cycles;
        t->pending.steps.push_back(s);
        return;
    }
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Compute);
        w.cycles = cycles;
        shard_->sendStep(w);
    }
    uint32_t lat = backend_.computeCost(cycles);
    t->execCycles += lat;
    scheduleResume(t, lat);
}

void
ExecutionEngine::issueEnqueue(Task* t, const swarm::EnqueueAwaiter& aw)
{
    ssim_assert(t->state == TaskState::Running);
    if (t->pending.recording) {
        Task::PendingStep s;
        s.kind = Task::PendingStep::Kind::Enqueue;
        s.fn = aw.fn;
        s.ets = aw.ts;
        s.hint = aw.hint;
        s.eargs = aw.args;
        s.enargs = aw.nargs;
        t->pending.steps.push_back(s);
        return;
    }
    if (shard_) {
        WireStep w = makeStep(t, eq_.now(), WireKind::Enqueue);
        w.fn = reinterpret_cast<uint64_t>(aw.fn);
        w.ets = aw.ts;
        w.hintVal = aw.hint.val;
        w.hintKind = uint8_t(aw.hint.kind);
        w.args = aw.args;
        w.nargs = aw.nargs;
        shard_->sendStep(w);
    }
    createTask(aw.fn, aw.ts, aw.hint, aw.args, aw.nargs, t, t->tile);
    uint32_t lat = backend_.enqueueCost();
    t->execCycles += lat;
    scheduleResume(t, lat);
}

} // namespace ssim
