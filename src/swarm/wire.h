/**
 * @file
 * Cross-shard wire formats (docs/scale-out.md).
 *
 * Two formats cross the process boundary in a sharded run
 * (harness/shard_runner.h):
 *
 *  - WireStep: the fixed-size binary effect record broadcast over the
 *    shared-memory rings while the run is in flight. One record per
 *    effect a task's owner shard executes (access/reduce/compute/
 *    enqueue), plus a Finish record per completed attempt; foreign
 *    shards apply each record through the exact serial engine paths
 *    at the same (cycle, seq) event slot, which is what keeps every
 *    replica bit-identical (swarm/shard.h). Records never leave the
 *    host, so the format is binary with a magic/kind check rather than
 *    versioned text.
 *
 *  - ShardSnapshot: the end-of-run result message each shard publishes
 *    to the GVT reducer (and the checkpoint/restore surface). This one
 *    is durable-format material, so it follows the trace-file
 *    discipline: versioned "swarmsim-shard v1" text header, strict
 *    field-wise parse, reject-don't-corrupt. Every digest-included
 *    SimStats field crosses by name, so a field added to the stats
 *    without a codec update is a parse error, not silent truncation.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "base/stats.h"
#include "base/types.h"

namespace ssim {

/** Kind of one cross-shard effect record. */
enum class WireKind : uint8_t
{
    Access = 0,
    Reduce,
    Compute,
    Enqueue,
    Finish,
};

const char* wireKindName(WireKind k);

/** One effect record on the shard rings (fixed-size POD). */
struct WireStep
{
    static constexpr uint32_t kMagic = 0x53505453u; // "STPS"

    uint32_t magic = kMagic;
    WireKind kind = WireKind::Finish;
    uint8_t size = 0;     ///< Access: bytes (<= 8)
    uint8_t isWrite = 0;  ///< Access only
    uint8_t nargs = 0;    ///< Enqueue: argument count
    uint64_t uid = 0;     ///< task identity (must match the consumer's)
    uint64_t gen = 0;     ///< ... and generation
    uint64_t cycle = 0;   ///< event cycle (verified on receive)
    uint64_t addr = 0;    ///< Access/Reduce
    uint64_t wval = 0;    ///< Access write value / Reduce delta (bit-cast)
    uint32_t cycles = 0;  ///< Compute charge
    uint32_t pad = 0;
    uint64_t fn = 0;      ///< Enqueue: TaskFn bits (identical post-fork)
    uint64_t ets = 0;     ///< Enqueue: child timestamp
    uint64_t hintVal = 0; ///< Enqueue: hint payload
    uint8_t hintKind = 0; ///< Enqueue: swarm::Hint::Kind
    uint8_t pad2[7] = {};
    std::array<uint64_t, 3> args{}; ///< Enqueue: child arguments
};
static_assert(sizeof(WireStep) == 112);

/** A shard's GVT progress report (swarm/commit_controller.cc). */
struct WireProgress
{
    uint64_t epoch = 0;  ///< gvtEpochsRun at send time
    uint64_t cycle = 0;  ///< event-queue cycle at the epoch
    uint64_t gvtTs = 0;  ///< GVT lower bound (valid if hasGvt)
    uint64_t gvtUid = 0;
    uint8_t hasGvt = 0;
    uint8_t pad[7] = {};
};
static_assert(sizeof(WireProgress) == 40);

/** End-of-run result message a shard publishes to the reducer. */
struct ShardSnapshot
{
    uint32_t shard = 0;
    bool valid = false;          ///< App::validate() in the shard
    uint64_t statsDigest = 0;    ///< statsDigest(stats), for agreement
    uint64_t resultDigest = 0;   ///< App::resultDigest in the shard
    SimStats stats;

    /** The versioned text form parse() accepts; roundtrips exactly. */
    std::string serialize() const;

    /**
     * Strict parse of the versioned text format. Returns false (with a
     * one-line reason in @p err, if non-null) on any malformed input —
     * bad header, unknown/duplicate/missing field, overflow, trailing
     * garbage — and leaves *this untouched.
     */
    bool parse(const std::string& text, std::string* err = nullptr);
};

} // namespace ssim
