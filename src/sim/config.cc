#include "sim/config.h"

#include <cmath>
#include <cstdio>

#include "base/logging.h"

namespace ssim {

const char*
schedulerName(SchedulerType s)
{
    switch (s) {
      case SchedulerType::Random: return "Random";
      case SchedulerType::Stealing: return "Stealing";
      case SchedulerType::Hints: return "Hints";
      case SchedulerType::LBHints: return "LBHints";
      default: panic("bad scheduler type");
    }
}

SchedulerType
schedulerFromName(const std::string& name)
{
    if (name == "Random" || name == "random")
        return SchedulerType::Random;
    if (name == "Stealing" || name == "stealing")
        return SchedulerType::Stealing;
    if (name == "Hints" || name == "hints")
        return SchedulerType::Hints;
    if (name == "LBHints" || name == "lbhints")
        return SchedulerType::LBHints;
    fatal("unknown scheduler '%s'", name.c_str());
}

uint32_t
SimConfig::meshDim() const
{
    uint32_t k = 1;
    while (k * k < ntiles)
        k++;
    return k;
}

SimConfig
SimConfig::withCores(uint32_t cores, SchedulerType s, uint64_t seed)
{
    ssim_assert(cores >= 1);
    SimConfig cfg;
    if (cores <= 4) {
        cfg.ntiles = 1;
        cfg.coresPerTile = cores;
    } else {
        ssim_assert(cores % 4 == 0, "core counts above 4 must be 4/tile");
        cfg.ntiles = cores / 4;
        cfg.coresPerTile = 4;
    }
    cfg.sched = s;
    cfg.serializeSameHint =
        (s == SchedulerType::Hints || s == SchedulerType::LBHints);
    cfg.seed = seed;
    return cfg;
}

std::string
SimConfig::describe() const
{
    char buf[2048];
    std::snprintf(buf, sizeof(buf),
        "Cores      %u cores in %u tiles (%u cores/tile), x86-like "
        "in-order single-issue\n"
        "L1 caches  %uKB, per-core, %u-way, %u-cycle latency\n"
        "L2 caches  %uKB, per-tile, %u-way, inclusive, %u-cycle latency\n"
        "L3 cache   %uKB/tile, shared, static NUCA, %u-way, inclusive, "
        "%u-cycle bank latency\n"
        "Coherence  MESI-style directory, %u B lines, in-cache directory\n"
        "NoC        %ux%u mesh, 128-bit links, X-Y routing, %u cycle/hop "
        "straight, %u on turns\n"
        "Main mem   %u controllers at chip edges, %u-cycle latency\n"
        "Queues     %u task queue entries/core (%u total), %u commit queue "
        "entries/core (%u total)\n"
        "Swarm      %u cycles per enqueue/dequeue/finish task\n"
        "Conflicts  %u-bit %u-way Bloom filters, H3 hash; checks %u cycles "
        "+ %u/timestamp compared\n"
        "Commits    GVT updates every %u cycles\n"
        "Spills     coalescers fire at %.0f%% full, spill up to %u tasks\n"
        "Scheduler  %s (serialize same-hint: %s)\n"
        "LB         %u buckets/tile, reconfig every %lluKcycles, f=%.2f, "
        "signal=%s\n"
        "Host       %u thread%s (simulation wall-clock only; behavior is "
        "thread-count invariant; concurrent conflict checks %s)",
        totalCores(), ntiles, coresPerTile,
        l1SizeKB, l1Ways, l1Latency,
        l2SizeKB, l2Ways, l2Latency,
        l3SliceKB, l3Ways, l3Latency,
        lineBytes,
        meshDim(), meshDim(), hopLatency, hopLatency + turnPenalty,
        memControllers, memLatency,
        taskQueuePerCore, taskQueuePerCore * totalCores(),
        commitQueuePerCore, commitQueuePerCore * totalCores(),
        enqueueCost,
        bloomBits, bloomWays, conflictCheckCost, conflictPerCmpCost,
        gvtEpoch,
        spillThreshold * 100, spillBatch,
        schedulerName(sched), serializeSameHint ? "yes" : "no",
        bucketsPerTile, (unsigned long long)(lbEpoch / 1000), lbFraction,
        lbSignal == LbSignal::CommittedCycles ? "committed-cycles"
                                              : "idle-tasks",
        hostThreads, hostThreads == 1 ? "" : "s",
        concurrentConflicts ? "on" : "off");
    return buf;
}

} // namespace ssim
