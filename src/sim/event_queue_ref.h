/**
 * @file
 * Reference single-heap event queue — the pre-sharding implementation,
 * kept as a test shim and benchmark baseline.
 *
 * tests/test_event_queue.cc schedules interleaved workloads on this and
 * on the sharded EventQueue and asserts identical pop sequences;
 * bench/micro_eventq.cc uses it as the single-heap baseline (templated
 * on the callback type to isolate the std::function-vs-InlineCallback
 * allocation cost from the heap-sharding cost).
 *
 * Unlike the original, pop moves only the callback out of top() and
 * leaves the (when, seq) ordering keys intact, so priority_queue::pop's
 * internal comparisons never read state invalidated by the move.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/types.h"

namespace ssim {

template <typename CB>
class SingleHeapEventQueue
{
  public:
    using Callback = CB;

    void
    schedule(Cycle when, Callback cb)
    {
        ssim_assert(when >= now_, "cannot schedule event in the past");
        heap_.push(Event{when, seq_++, std::move(cb)});
    }

    void
    scheduleAfter(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Tile-affine scheduling collapses to the single heap. */
    void
    scheduleOn(TileId, Cycle when, Callback cb)
    {
        schedule(when, std::move(cb));
    }

    Cycle now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    size_t pending() const { return heap_.size(); }
    uint64_t executedEvents() const { return executed_; }
    void stop() { stopped_ = true; }

    void
    run()
    {
        stopped_ = false;
        while (!heap_.empty() && !stopped_) {
            auto& top = const_cast<Event&>(heap_.top());
            Callback cb = std::move(top.cb);
            now_ = top.when;
            heap_.pop();
            executed_++;
            cb();
        }
    }

  private:
    struct Event
    {
        Cycle when;
        uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Cycle now_ = 0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace ssim
