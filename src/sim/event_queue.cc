#include "sim/event_queue.h"

#include "base/logging.h"

namespace ssim {

void
EventQueue::configureLanes(uint32_t ntiles)
{
    ssim_assert(pendingTotal_ == 0,
                "configureLanes requires an empty queue");
    lanes_.clear();
    lanes_.resize(size_t(ntiles) + 1);
    lanePos_.assign(size_t(ntiles) + 1, kNoPos);
    merge_.clear();
    merge_.reserve(lanes_.size());
}

void
EventQueue::mergeSiftUp(size_t i)
{
    HeadRef item = merge_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!HeadLess{}(item, merge_[parent]))
            break;
        merge_[i] = merge_[parent];
        lanePos_[merge_[i].lane] = uint32_t(i);
        i = parent;
    }
    merge_[i] = item;
    lanePos_[item.lane] = uint32_t(i);
}

void
EventQueue::mergeSiftDown(size_t i)
{
    HeadRef item = merge_[i];
    size_t n = merge_.size();
    while (true) {
        size_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && HeadLess{}(merge_[c + 1], merge_[c]))
            c++;
        if (!HeadLess{}(merge_[c], item))
            break;
        merge_[i] = merge_[c];
        lanePos_[merge_[i].lane] = uint32_t(i);
        i = c;
    }
    merge_[i] = item;
    lanePos_[item.lane] = uint32_t(i);
}

void
EventQueue::scheduleLane(uint32_t lane, Cycle when, Callback cb,
                         uint64_t tag)
{
    ssim_assert(when >= now_, "cannot schedule event in the past");
    Lane& L = lanes_[lane];
    uint64_t seq = seq_++;
    detail::heapPush(L.heap, Event{when, seq, std::move(cb), tag},
                     EventLess{});
    if (tag)
        pendingResumes_++;
    L.scheduled++;
    if (L.heap.size() > L.peak)
        L.peak = L.heap.size();
    pendingTotal_++;
    // Maintain the merge invariant: one up-to-date head entry per
    // non-empty lane.
    if (L.heap.front().seq == seq) { // the new event became the head
        uint32_t pos = lanePos_[lane];
        if (pos == kNoPos) { // lane was empty
            merge_.push_back(HeadRef{when, seq, lane});
            mergeSiftUp(merge_.size() - 1);
        } else { // head key decreased in place
            merge_[pos].when = when;
            merge_[pos].seq = seq;
            mergeSiftUp(pos);
        }
    }
}

EventQueue::Event
EventQueue::popNext()
{
    const HeadRef top = merge_.front();
    Lane& L = lanes_[top.lane];
    Event ev = detail::heapPop(L.heap, EventLess{});
    pendingTotal_--;
    if (ev.tag)
        pendingResumes_--;
    if (!L.heap.empty()) {
        // Same lane keeps the root slot with its new head key.
        merge_[0].when = L.heap.front().when;
        merge_[0].seq = L.heap.front().seq;
        mergeSiftDown(0);
    } else {
        lanePos_[top.lane] = kNoPos;
        HeadRef last = merge_.back();
        merge_.pop_back();
        if (!merge_.empty()) {
            merge_[0] = last;
            lanePos_[last.lane] = 0;
            mergeSiftDown(0);
        }
    }
    return ev;
}

Cycle
EventQueue::nextEventCycle() const
{
    return merge_.empty() ? kCycleMax : merge_.front().when;
}

void
EventQueue::run()
{
    stopped_ = false;
    while (pendingTotal_ > 0 && !stopped_) {
        Event ev = popNext();
        now_ = ev.when;
        executed_++;
        ev.cb();
    }
}

uint64_t
EventQueue::runSome(uint64_t max_events)
{
    stopped_ = false;
    uint64_t n = 0;
    while (pendingTotal_ > 0 && !stopped_ && n < max_events) {
        Event ev = popNext();
        now_ = ev.when;
        executed_++;
        n++;
        ev.cb();
    }
    return n;
}

} // namespace ssim
