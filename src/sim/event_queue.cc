#include "sim/event_queue.h"

#include "base/logging.h"

namespace ssim {

void
EventQueue::schedule(Cycle when, Callback cb)
{
    ssim_assert(when >= now_, "cannot schedule event in the past");
    heap_.push(Event{when, seq_++, std::move(cb)});
}

void
EventQueue::run()
{
    stopped_ = false;
    while (!heap_.empty() && !stopped_) {
        // priority_queue::top() returns const&; we need to move the
        // callback out, so const_cast the (about to be popped) node.
        Event ev = std::move(const_cast<Event&>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        executed_++;
        ev.cb();
    }
}

uint64_t
EventQueue::runSome(uint64_t max_events)
{
    stopped_ = false;
    uint64_t n = 0;
    while (!heap_.empty() && !stopped_ && n < max_events) {
        Event ev = std::move(const_cast<Event&>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        executed_++;
        n++;
        ev.cb();
    }
    return n;
}

} // namespace ssim
