/**
 * @file
 * Shared-memory SPSC ring buffers: the first transport behind the
 * scale-out shard seam (swarm/shard.h).
 *
 * A ShardGroup mmaps one anonymous MAP_SHARED region before forking
 * its shard processes; every ring lives inside it at a fixed offset,
 * so the post-fork children share the rings with each other and with
 * the parent reducer. Each ring is single-producer single-consumer
 * with acquire/release head/tail indices — exactly one (sender,
 * receiver) pair per ring, no locks, no syscalls on the fast path.
 *
 * The transport interface is deliberately minimal (tryPush/tryPop on
 * fixed-size POD slots): a TCP transport can implement the same
 * contract later without touching the shard protocol above it
 * (docs/scale-out.md).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <sys/mman.h>
#include <type_traits>

#include "base/logging.h"

namespace ssim {

/** RAII anonymous MAP_SHARED mapping, inherited across fork(). */
class ShmRegion
{
  public:
    ShmRegion() = default;
    explicit ShmRegion(size_t len) : len_(len)
    {
        base_ = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
        if (base_ == MAP_FAILED)
            fatal("shm: cannot map %zu shared bytes", len);
    }
    ~ShmRegion()
    {
        if (base_ && base_ != MAP_FAILED)
            munmap(base_, len_);
    }
    ShmRegion(ShmRegion&& o) noexcept : base_(o.base_), len_(o.len_)
    {
        o.base_ = nullptr;
        o.len_ = 0;
    }
    ShmRegion& operator=(ShmRegion&& o) noexcept
    {
        if (this != &o) {
            if (base_ && base_ != MAP_FAILED)
                munmap(base_, len_);
            base_ = o.base_;
            len_ = o.len_;
            o.base_ = nullptr;
            o.len_ = 0;
        }
        return *this;
    }
    ShmRegion(const ShmRegion&) = delete;
    ShmRegion& operator=(const ShmRegion&) = delete;

    char* base() const { return static_cast<char*>(base_); }
    size_t size() const { return len_; }

  private:
    void* base_ = nullptr;
    size_t len_ = 0;
};

/**
 * Lock-free single-producer single-consumer ring over @p N slots of
 * POD type T, laid out in shared memory (construct with placement new
 * in the parent, before fork). Capacity is N - 1 usable slots.
 */
template <typename T, uint32_t N>
class SpscRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ring slots cross a process boundary");
    static_assert((N & (N - 1)) == 0, "slot count must be a power of two");

  public:
    SpscRing() = default;

    bool
    tryPush(const T& v)
    {
        uint64_t h = head_.load(std::memory_order_relaxed);
        uint64_t t = tail_.load(std::memory_order_acquire);
        if (h - t >= N - 1)
            return false; // full
        slots_[h & (N - 1)] = v;
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    bool
    tryPop(T& out)
    {
        uint64_t t = tail_.load(std::memory_order_relaxed);
        uint64_t h = head_.load(std::memory_order_acquire);
        if (t == h)
            return false; // empty
        out = slots_[t & (N - 1)];
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    bool empty() const
    {
        return tail_.load(std::memory_order_acquire) ==
               head_.load(std::memory_order_acquire);
    }

  private:
    static_assert(std::atomic<uint64_t>::is_always_lock_free,
                  "shared-memory indices must be lock-free");
    alignas(64) std::atomic<uint64_t> head_{0}; ///< producer-owned
    alignas(64) std::atomic<uint64_t> tail_{0}; ///< consumer-owned
    alignas(64) T slots_[N];
};

} // namespace ssim
