#include "sim/parallel_executor.h"

#include <algorithm>

#include "base/logging.h"
#include "swarm/conflict_manager.h"

namespace ssim {

ParallelExecutor::ParallelExecutor(EventQueue& eq, ParallelBackend& backend,
                                   uint32_t threads, uint32_t min_batch,
                                   ConcurrentConflictBackend* conflicts,
                                   ParallelReplayBackend* replay)
    : eq_(eq), backend_(backend), conflicts_(conflicts), replay_(replay),
      nslices_(std::max(threads, 1u)),
      minBatch_(min_batch ? min_batch : std::max(4u, threads))
{
    workers_.reserve(nslices_ - 1);
    for (uint32_t w = 1; w < nslices_; w++)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        exit_ = true;
    }
    cvStart_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

ParallelExecutor::PhaseResult
ParallelExecutor::runSlice(PhaseKind kind, uint32_t slice)
{
    PhaseResult r;
    if (kind == PhaseKind::ConflictProbe) {
        // Bank-level work stealing: the backend's shared cursor hands
        // out whole banks, so a worker's share adapts to queue depth.
        auto [banks, probes] = conflicts_->probeSlice();
        r.segments = banks;
        r.steps = probes;
        return r;
    }
    if (kind == PhaseKind::Replay) {
        auto [banks, applies] = replay_->applySlice();
        r.segments = banks;
        r.steps = applies;
        return r;
    }
    for (size_t i = slice; i < candidates_.size(); i += nslices_) {
        uint32_t steps =
            backend_.preResume(candidates_[i].uid, candidates_[i].gen);
        r.segments += steps > 0;
        r.steps += steps;
    }
    return r;
}

void
ParallelExecutor::workerLoop(uint32_t slice)
{
    uint64_t seen = 0;
    while (true) {
        PhaseKind kind;
        {
            std::unique_lock<std::mutex> lk(m_);
            cvStart_.wait(lk, [&] { return exit_ || phaseId_ != seen; });
            if (exit_)
                return;
            seen = phaseId_;
            kind = phaseKind_;
        }
        PhaseResult r = runSlice(kind, slice);
        {
            std::lock_guard<std::mutex> lk(m_);
            phaseAccum_.segments += r.segments;
            phaseAccum_.steps += r.steps;
            if (--pendingWorkers_ == 0)
                cvDone_.notify_one();
        }
    }
}

ParallelExecutor::PhaseResult
ParallelExecutor::runPhase(PhaseKind kind)
{
    phases_++;
    {
        std::lock_guard<std::mutex> lk(m_);
        phaseId_++;
        phaseKind_ = kind;
        pendingWorkers_ = nslices_ - 1;
        phaseAccum_ = {};
    }
    cvStart_.notify_all();
    PhaseResult r = runSlice(kind, 0); // the coordinator works slice 0
    {
        std::unique_lock<std::mutex> lk(m_);
        cvDone_.wait(lk, [&] { return pendingWorkers_ == 0; });
        r.segments += phaseAccum_.segments;
        r.steps += phaseAccum_.steps;
    }
    return r;
}

void
ParallelExecutor::run()
{
    uint64_t stride = kMinStride;
    while (!eq_.empty()) {
        if (eq_.pendingResumes() >= minBatch_) {
            scans_++;
            candidates_.clear();
            eq_.forEachPendingResume([this](uint64_t uid, uint64_t gen,
                                            Cycle when, uint64_t seq) {
                candidates_.push_back({uid, gen, when, seq});
            });
            PhaseResult r = candidates_.size() >= minBatch_
                                ? runPhase(PhaseKind::Record)
                                : PhaseResult{};
            preResumed_ += r.segments;
            // Conflict-check phase: probe the freshly-recorded (and any
            // still-unapplied) accesses against their home banks before
            // the replay stretch consumes them. The barrier publishes
            // the recordings to the probing workers and the probes back
            // to the coordinator.
            if (conflicts_) {
                size_t queued = conflicts_->buildQueues(candidates_);
                if (queued >= minBatch_) {
                    conflictPhases_++;
                    conflicts_->setInPhase(true);
                    PhaseResult c = runPhase(PhaseKind::ConflictProbe);
                    conflicts_->setInPhase(false);
                    conflictProbes_ += c.steps;
                }
            }
            // Replay phase: workers pre-apply conflict-free bank-local
            // accesses in bank-slot order. Runs after the conflict
            // phase so probe results (when armed) are reusable, but is
            // independently gated: replay stages its own probes when
            // conc-conflicts is off.
            if (replay_) {
                size_t rq = replay_->buildQueues(candidates_);
                if (rq >= minBatch_) {
                    replayPhases_++;
                    replay_->setInPhase(true);
                    PhaseResult p = runPhase(PhaseKind::Replay);
                    replay_->setInPhase(false);
                    replayApplies_ += p.steps;
                }
            }
            // Back off when the scan found little new work (stale or
            // already-recorded tags) or when run-ahead is too shallow
            // to amortize the barrier (awaiter-chatty tasks that park
            // at their first read); return to the fine stride as soon
            // as a scan pays again.
            bool fruitful =
                r.segments >= minBatch_ &&
                r.steps >= kMinRunaheadPerSegment * r.segments;
            stride =
                fruitful ? kMinStride : std::min(stride * 2, kMaxStride);
        } else {
            stride = std::min(stride * 2, kMaxStride);
        }
        eq_.runSome(stride);
        if (eq_.stopped())
            break; // stop() requested: return like the serial loop
    }
}

} // namespace ssim
