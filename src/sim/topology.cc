#include "sim/topology.h"

#include <cstdio>
#include <sstream>

#include "base/logging.h"

namespace ssim {

namespace {

// The topology grammar's directive keywords. scripts/check_docs_links.sh
// extracts this list (between the TOPO-KEYWORDS markers) and requires
// each keyword to appear in docs/scale-out.md, so the grammar chapter
// can never silently fall behind the parser.
// TOPO-KEYWORDS-BEGIN
[[maybe_unused]] const char* const kTopoKeywords[] = {
    "swarmsim-topo", "ntiles", "shards", "shard", "tiles", "banks", "end",
};
// TOPO-KEYWORDS-END

bool
fail(std::string* err, const std::string& why)
{
    if (err)
        *err = why;
    return false;
}

bool
parseU32(const std::string& tok, uint32_t& out)
{
    if (tok.empty() || tok.size() > 10)
        return false;
    uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + uint64_t(c - '0');
    }
    if (v > UINT32_MAX)
        return false;
    out = uint32_t(v);
    return true;
}

} // namespace

uint32_t
TopologySpec::shardOfTile(TileId t) const
{
    ssim_assert(t < ntiles && !shards.empty());
    for (uint32_t s = 0; s < shards.size(); s++)
        if (t <= shards[s].lastTile)
            return s;
    panic("tile %u outside every shard range", t);
}

uint32_t
TopologySpec::shardOfBank(uint32_t b) const
{
    ssim_assert(!shards.empty());
    for (uint32_t s = 0; s < shards.size(); s++)
        if (b <= shards[s].lastBank)
            return s;
    panic("bank %u outside every shard range", b);
}

TopologySpec
TopologySpec::uniform(uint32_t ntiles, uint32_t nshards)
{
    ssim_assert(nshards >= 1 && nshards <= ntiles,
                "need 1 <= shards (%u) <= tiles (%u)", nshards, ntiles);
    TopologySpec spec;
    spec.ntiles = ntiles;
    uint32_t base = ntiles / nshards, extra = ntiles % nshards;
    uint32_t first = 0;
    for (uint32_t s = 0; s < nshards; s++) {
        uint32_t count = base + (s < extra ? 1 : 0);
        Shard sh;
        sh.firstTile = first;
        sh.lastTile = first + count - 1;
        sh.firstBank = sh.firstTile;
        sh.lastBank = sh.lastTile;
        spec.shards.push_back(sh);
        first += count;
    }
    return spec;
}

bool
TopologySpec::parse(const std::string& text, std::string* err)
{
    std::istringstream in(text);
    std::string line;

    if (!std::getline(in, line) || line != "swarmsim-topo v1")
        return fail(err, "missing 'swarmsim-topo v1' header");

    TopologySpec spec; // parse into a fresh spec; swap only on success

    if (!std::getline(in, line))
        return fail(err, "truncated after header");
    {
        std::istringstream ls(line);
        std::string kw, tok, extra;
        if (!(ls >> kw >> tok) || kw != "ntiles" ||
            !parseU32(tok, spec.ntiles) || spec.ntiles == 0 ||
            (ls >> extra))
            return fail(err, "expected 'ntiles N' with N >= 1");
    }

    uint32_t declared = 0;
    if (!std::getline(in, line))
        return fail(err, "truncated after ntiles");
    {
        std::istringstream ls(line);
        std::string kw, tok, extra;
        if (!(ls >> kw >> tok) || kw != "shards" ||
            !parseU32(tok, declared) || declared == 0 || (ls >> extra))
            return fail(err, "expected 'shards N' with N >= 1");
    }

    bool sawEnd = false;
    while (std::getline(in, line)) {
        if (line == "end") {
            sawEnd = true;
            break;
        }
        std::istringstream ls(line);
        std::string kw, tkw;
        uint32_t idx = 0;
        std::string idxTok, loTok, hiTok;
        if (!(ls >> kw >> idxTok >> tkw >> loTok >> hiTok) ||
            kw != "shard" || tkw != "tiles" || !parseU32(idxTok, idx))
            return fail(err, "expected 'shard I tiles LO HI [banks LO HI]',"
                             " got '" + line + "'");
        if (idx != spec.shards.size())
            return fail(err, "shard indices must be 0..N-1 in order");
        Shard sh;
        if (!parseU32(loTok, sh.firstTile) || !parseU32(hiTok, sh.lastTile))
            return fail(err, "malformed tile range in '" + line + "'");
        std::string bkw;
        if (ls >> bkw) {
            std::string blo, bhi, extra;
            if (bkw != "banks" || !(ls >> blo >> bhi) ||
                !parseU32(blo, sh.firstBank) ||
                !parseU32(bhi, sh.lastBank) || (ls >> extra))
                return fail(err, "malformed bank range in '" + line + "'");
        } else {
            // Default one-bank-per-tile mapping: banks mirror tiles.
            sh.firstBank = sh.firstTile;
            sh.lastBank = sh.lastTile;
        }
        spec.shards.push_back(sh);
    }
    if (!sawEnd)
        return fail(err, "missing 'end' sentinel (truncated file?)");
    std::string trailing;
    if (in >> trailing)
        return fail(err, "trailing tokens after 'end'");

    if (spec.shards.size() != declared)
        return fail(err, "declared " + std::to_string(declared) +
                             " shards, found " +
                             std::to_string(spec.shards.size()));
    // Tile and bank ranges must tile [0, ntiles) contiguously in order:
    // contiguity is what keeps shardOfTile a range scan and ownership
    // total (every tile has exactly one owner).
    uint32_t nextTile = 0, nextBank = 0;
    for (const Shard& sh : spec.shards) {
        if (sh.firstTile != nextTile || sh.lastTile < sh.firstTile)
            return fail(err, "tile ranges must be contiguous from 0");
        if (sh.firstBank != nextBank || sh.lastBank < sh.firstBank)
            return fail(err, "bank ranges must be contiguous from 0");
        nextTile = sh.lastTile + 1;
        nextBank = sh.lastBank + 1;
    }
    if (nextTile != spec.ntiles)
        return fail(err, "tile ranges must cover all " +
                             std::to_string(spec.ntiles) + " tiles");
    if (nextBank != spec.ntiles)
        return fail(err, "bank ranges must cover all " +
                             std::to_string(spec.ntiles) + " banks");

    *this = std::move(spec);
    return true;
}

std::string
TopologySpec::serialize() const
{
    std::ostringstream out;
    out << "swarmsim-topo v1\n";
    out << "ntiles " << ntiles << "\n";
    out << "shards " << shards.size() << "\n";
    for (uint32_t s = 0; s < shards.size(); s++) {
        const Shard& sh = shards[s];
        out << "shard " << s << " tiles " << sh.firstTile << " "
            << sh.lastTile;
        if (sh.firstBank != sh.firstTile || sh.lastBank != sh.lastTile)
            out << " banks " << sh.firstBank << " " << sh.lastBank;
        out << "\n";
    }
    out << "end\n";
    return out.str();
}

std::string
TopologySpec::key() const
{
    std::ostringstream out;
    out << "topo" << shards.size() << ":";
    for (uint32_t s = 0; s < shards.size(); s++) {
        if (s)
            out << ",";
        out << shards[s].firstTile << "-" << shards[s].lastTile;
    }
    return out.str();
}

} // namespace ssim
