/**
 * @file
 * The event-driven simulation kernel.
 *
 * A single global queue of (cycle, sequence, callback) events drives the
 * whole machine. Ties at the same cycle execute in insertion order, which
 * keeps the simulator fully deterministic.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.h"

namespace ssim {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute cycle @p when (>= now). */
    void schedule(Cycle when, Callback cb);

    /** Schedule @p cb to run @p delta cycles from now. */
    void scheduleAfter(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /** Run until the queue drains or until stop() is called. */
    void run();

    /** Run at most @p maxEvents events (for tests). Returns #executed. */
    uint64_t runSome(uint64_t maxEvents);

    /** Request run() to return after the current event. */
    void stop() { stopped_ = true; }

    bool empty() const { return heap_.empty(); }
    size_t pending() const { return heap_.size(); }
    uint64_t executedEvents() const { return executed_; }

  private:
    struct Event
    {
        Cycle when;
        uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Cycle now_ = 0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace ssim
