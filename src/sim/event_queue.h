/**
 * @file
 * The event-driven simulation kernel: per-tile event lanes merged
 * deterministically.
 *
 * Events carry (cycle, global sequence, callback). The queue is sharded
 * into one lane per tile plus a global lane (lane 0) for control events
 * with no tile affinity (GVT/LB epochs). Each lane is its own binary
 * heap; pop() min-merges the lane heads keyed on (cycle, global seq).
 *
 * Determinism invariant: the sequence counter is GLOBAL across all
 * lanes, so the merged pop order is exactly the pop order of a single
 * heap ordered by (cycle, seq) — sharding is a data-structure change,
 * not a behavior change. Ties at the same cycle still execute in
 * schedule-call order regardless of which lane they landed in, and the
 * golden-determinism digests (tests/test_determinism.cc) are
 * bit-identical to the single-heap implementation.
 *
 * The heaps use hole-based sift operations: pop() moves the root out,
 * then sifts the hole down comparing only live elements, so no
 * comparison ever observes a moved-from node (the old single-heap
 * implementation const_cast + moved out of priority_queue::top(), which
 * relied on the comparator never touching the moved-from callback).
 *
 * THREADING CONTRACT: the queue is confined to the coordinator (main)
 * thread. Every method — schedule*, pop, run*, and the introspection
 * calls — may only be called from the thread driving the event loop.
 * The parallel host mode (sim/parallel_executor.h) keeps this contract:
 * worker threads never touch the queue; they only pre-execute pure
 * coroutine segments of tasks whose resume events the coordinator
 * discovered via forEachPendingResume() between events. Event pop order
 * and all scheduling therefore stay bit-identical to the serial loop at
 * any host thread count.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "sim/inline_function.h"

namespace ssim {

namespace detail {

/**
 * Hole-based binary min-heap primitives over a vector. @p Less compares
 * fully-constructed elements only; the sift loops move elements into the
 * hole left by the element being inserted/extracted and never compare a
 * moved-from slot.
 */
template <typename T, typename Less>
void
heapPush(std::vector<T>& v, T item, Less less)
{
    size_t i = v.size();
    v.emplace_back(); // the initial hole
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!less(item, v[parent]))
            break;
        v[i] = std::move(v[parent]);
        i = parent;
    }
    v[i] = std::move(item);
}

template <typename T, typename Less>
T
heapPop(std::vector<T>& v, Less less)
{
    T out = std::move(v.front());
    T last = std::move(v.back());
    v.pop_back();
    if (!v.empty()) {
        size_t i = 0, n = v.size();
        while (true) {
            size_t c = 2 * i + 1;
            if (c >= n)
                break;
            if (c + 1 < n && less(v[c + 1], v[c]))
                c++;
            if (!less(v[c], last))
                break;
            v[i] = std::move(v[c]);
            i = c;
        }
        v[i] = std::move(last);
    }
    return out;
}

} // namespace detail

class EventQueue
{
  public:
    using Callback = InlineCallback;

    /// Lane 0 carries events with no tile affinity (GVT/LB epochs,
    /// standalone-test scheduling). Tile t's lane is t + 1.
    static constexpr uint32_t kGlobalLane = 0;

    EventQueue() : lanes_(1), lanePos_(1, kNoPos) {}

    /**
     * Size the queue to one lane per tile plus the global lane. Must be
     * called while the queue is empty (the Machine calls it at wiring
     * time). Without it, every event lands in the global lane.
     */
    void configureLanes(uint32_t ntiles);

    /** Schedule @p cb at absolute cycle @p when (>= now), global lane. */
    void schedule(Cycle when, Callback cb)
    {
        scheduleLane(kGlobalLane, when, std::move(cb));
    }

    /** Schedule @p cb at absolute cycle @p when on @p tile's lane. */
    void scheduleOn(TileId tile, Cycle when, Callback cb)
    {
        scheduleLane(laneOf(tile), when, std::move(cb));
    }

    /** Schedule @p cb to run @p delta cycles from now (global lane). */
    void scheduleAfter(Cycle delta, Callback cb)
    {
        scheduleLane(kGlobalLane, now_ + delta, std::move(cb));
    }

    /** Schedule @p cb @p delta cycles from now on @p tile's lane. */
    void scheduleAfterOn(TileId tile, Cycle delta, Callback cb)
    {
        scheduleLane(laneOf(tile), now_ + delta, std::move(cb));
    }

    /**
     * Like scheduleAfterOn, but tags the event as a coroutine-resume of
     * task (@p uid, @p gen) so forEachPendingResume() can surface it to
     * the parallel host executor. Serial mode ignores the tag entirely.
     * The tag packs into one word (uid: 40 bits, gen: 24 bits) to keep
     * Event small on the serial hot path; out-of-range ids — beyond
     * 2^40 tasks or 2^24 aborts of one task — schedule untagged, which
     * only means that resume runs inline instead of being pre-executed.
     */
    void
    scheduleResumeOn(TileId tile, Cycle delta, uint64_t uid, uint64_t gen,
                     Callback cb)
    {
        scheduleLane(laneOf(tile), now_ + delta, std::move(cb),
                     packResumeTag(uid, gen));
    }

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /** Run until the queue drains or until stop() is called. */
    void run();

    /** Run at most @p maxEvents events (for tests). Returns #executed. */
    uint64_t runSome(uint64_t maxEvents);

    /** Request run() to return after the current event. */
    void stop() { stopped_ = true; }
    /** True if stop() ended the last run()/runSome() stretch. */
    bool stopped() const { return stopped_; }

    bool empty() const { return pendingTotal_ == 0; }
    size_t pending() const { return pendingTotal_; }
    uint64_t executedEvents() const { return executed_; }

    // ---- Per-lane introspection (GVT lower bounds, occupancy stats) ----
    uint32_t numLanes() const { return uint32_t(lanes_.size()); }
    size_t pending(uint32_t lane) const { return lanes_[lane].heap.size(); }
    /** Cycle of @p lane's earliest event, or kCycleMax if drained. */
    Cycle laneMinCycle(uint32_t lane) const
    {
        const auto& h = lanes_[lane].heap;
        return h.empty() ? kCycleMax : h.front().when;
    }
    /** Cycle of the earliest event in any lane, or kCycleMax. */
    Cycle nextEventCycle() const;
    /** Events ever scheduled on @p lane. */
    uint64_t laneScheduled(uint32_t lane) const
    {
        return lanes_[lane].scheduled;
    }
    /** Peak simultaneous pending events on @p lane. */
    uint64_t lanePeakPending(uint32_t lane) const
    {
        return lanes_[lane].peak;
    }

    // ---- Parallel host execution support (coordinator thread only) -----
    /** Pending events currently tagged as coroutine resumes. */
    size_t pendingResumes() const { return pendingResumes_; }
    /**
     * Visit every pending resume-tagged event, in no particular order
     * (lane by lane, heap array order). The visitor must not schedule or
     * pop; it receives (uid, gen, when, seq) — the task identity plus
     * the event's serial slot, so the replay backend can order staged
     * applies by the slot they will be consumed at. Pre-resume
     * correctness does not depend on visit order: the pre-executed
     * segments are pure and their effects are replayed in exact
     * (cycle, seq) pop order.
     */
    template <typename Fn>
    void
    forEachPendingResume(Fn&& fn) const
    {
        for (const Lane& L : lanes_)
            for (const Event& e : L.heap)
                if (e.tag)
                    fn((e.tag - 1) & kTagUidMask, (e.tag - 1) >> kTagUidBits,
                       e.when, e.seq);
    }

  private:
    struct Event
    {
        Cycle when = 0;
        uint64_t seq = 0;
        Callback cb;
        /// Resume tag (parallel host mode): 1 + (gen << 40 | uid), or 0
        /// for non-resume events. One word, so the serial hot path's
        /// heap moves stay cheap.
        uint64_t tag = 0;
    };
    static constexpr uint32_t kTagUidBits = 40;
    static constexpr uint64_t kTagUidMask = (uint64_t(1) << kTagUidBits) - 1;
    static constexpr uint64_t kTagGenMax = uint64_t(1) << 24;

    static uint64_t
    packResumeTag(uint64_t uid, uint64_t gen)
    {
        if (uid > kTagUidMask || gen >= kTagGenMax)
            return 0; // untagged: pre-resume skips it, inline path runs
        return ((gen << kTagUidBits) | uid) + 1;
    }
    struct EventLess
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            return a.when != b.when ? a.when < b.when : a.seq < b.seq;
        }
    };
    struct Lane
    {
        std::vector<Event> heap;
        uint64_t scheduled = 0;
        uint64_t peak = 0;
    };
    /// Merge-heap entry: the head key of one non-empty lane.
    struct HeadRef
    {
        Cycle when = 0;
        uint64_t seq = 0;
        uint32_t lane = 0;
    };
    struct HeadLess
    {
        bool
        operator()(const HeadRef& a, const HeadRef& b) const
        {
            return a.when != b.when ? a.when < b.when : a.seq < b.seq;
        }
    };
    static constexpr uint32_t kNoPos = ~0u;

    uint32_t
    laneOf(TileId tile) const
    {
        uint32_t lane = tile + 1;
        return lane < lanes_.size() ? lane : kGlobalLane;
    }

    void scheduleLane(uint32_t lane, Cycle when, Callback cb,
                      uint64_t tag = 0);
    /** Extract the globally-earliest event. Queue must be non-empty. */
    Event popNext();
    // Position-tracked sifts over merge_ (update lanePos_ as they move).
    void mergeSiftUp(size_t i);
    void mergeSiftDown(size_t i);

    std::vector<Lane> lanes_;
    /// Indexed min-heap over lane heads: exactly one entry per non-empty
    /// lane, updated in place as heads change (no stale entries), so a
    /// pop costs one lane-heap pop plus one merge sift.
    std::vector<HeadRef> merge_;
    std::vector<uint32_t> lanePos_; ///< lane -> index in merge_, or kNoPos
    size_t pendingTotal_ = 0;
    size_t pendingResumes_ = 0;
    Cycle now_ = 0;
    uint64_t seq_ = 0; ///< global: total-orders events across lanes
    uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace ssim
