/**
 * @file
 * Parallel host execution over per-tile event lanes.
 *
 * The simulator's unit of host work is one event callback; the hot
 * callbacks are coroutine resumes, and each resume has a rigid shape:
 * run a PURE application segment (tasks may only touch shared state
 * through their TaskCtx awaiters, which always suspend), then perform
 * exactly one engine-side effect (memory access, compute charge, child
 * enqueue, or finish). That shape is the parallelism seam this executor
 * exploits:
 *
 *  - Between events, the coordinator scans the per-tile lanes for
 *    pending resume-tagged events (EventQueue::forEachPendingResume)
 *    and hands the batch to a worker pool.
 *  - Workers pre-execute the pure coroutine segments in RECORD mode
 *    (ParallelBackend::preResume): the engine effects the segments
 *    request are captured into the task (Task::PendingRun) instead of
 *    being applied. A worker runs ahead through effects that return no
 *    data (compute charges, enqueues, writes) and parks at the first
 *    read (its value does not exist until the access is applied) or at
 *    completion.
 *  - With a ConcurrentConflictBackend wired (cfg.concurrentConflicts),
 *    a CONFLICT-CHECK phase runs between record and replay: the
 *    coordinator hands the scan's candidates to the backend, which
 *    queues every recorded-but-unapplied access on its home line-table
 *    bank; workers then claim whole banks from a shared cursor (work
 *    stealing) and probe them in parallel, writing op-sequence-stamped
 *    results into the steps. Resolution stays serialized: the
 *    coordinator consumes a probe at the access's exact (cycle, seq)
 *    slot only if its bank is provably unchanged (see
 *    swarm/conflict_manager.h).
 *  - With a ParallelReplayBackend wired (cfg.parallelReplay), a REPLAY
 *    phase follows: workers claim whole line-table banks and
 *    speculatively PRE-APPLY accesses they can prove conflict-free and
 *    bank-local, in each bank's serial (cycle, seq) slot order. The
 *    coordinator consumes a pre-applied effect at its exact serial slot
 *    — or squashes it first if any serial-path bank operation
 *    intervenes — so the observable simulation is bit-identical either
 *    way (swarm/conflict_manager.h, ParallelReplayBackend).
 *  - The coordinator then resumes the ordinary serial event loop. When
 *    a resume event fires and finds recorded steps for its (uid, gen),
 *    it skips the (already executed) pure segment and applies the next
 *    recorded effect through the identical serial engine code path.
 *
 * DETERMINISM ARGUMENT: every simulator-state mutation — event
 * scheduling, conflict checks, cache/directory updates, functional
 * memory, stats — happens on the coordinator thread, in exactly the
 * (cycle, global seq) order the serial loop would use. Worker threads
 * only run pure application code and write into their own task's
 * recording slot, so the interleaving of workers, the thread count, and
 * the scan cadence are all invisible to simulated behavior: golden
 * determinism digests are bit-identical to the serial loop at any
 * hostThreads. Aborts cannot invalidate a pre-executed segment
 * retroactively: an abort bumps the task's generation on the
 * coordinator, the stale recording is discarded at the task's next
 * event (or cleared with its spec state), and the rolled-back attempt's
 * coroutine frame is destroyed exactly as in serial mode.
 *
 * THREADING CONTRACT: run() is called on the coordinator thread and
 * drives the EventQueue exclusively from there. Workers touch only the
 * tasks assigned to their slice of one batch, and batches never overlap
 * an apply: the pool is strictly fork-join (phase barrier before the
 * serial stretch resumes). Cross-thread visibility is provided by the
 * phase mutex: recordings a worker wrote are read by the coordinator
 * only after the barrier.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace ssim {

class ConcurrentConflictBackend;
class ParallelReplayBackend;

/**
 * One pending resume event, as surfaced by a coordinator scan: the task
 * identity plus the serial (cycle, seq) slot its next recorded step will
 * be applied at. The slot lets the replay backend stage bank-local
 * applies in exact serial order within each bank.
 */
struct ResumeCandidate
{
    uint64_t uid = 0;
    uint64_t gen = 0;
    Cycle when = 0;
    uint64_t seq = 0;
};

/**
 * The execution engine's pre-resume hook. preResume() is called from
 * WORKER threads; it must only touch state owned by task (@p uid) and
 * read-only simulator state, and must record — not apply — the engine
 * effects the coroutine requests. Returns the number of steps recorded
 * (0: stale tag, already recorded, not running). The step count is the
 * executor's benefit signal: deep run-ahead means worker time amortizes
 * the phase barrier, a single parked step means it mostly does not.
 */
class ParallelBackend
{
  public:
    virtual ~ParallelBackend() = default;
    virtual uint32_t preResume(uint64_t uid, uint64_t gen) = 0;
};

class ParallelExecutor
{
  public:
    /**
     * @p threads is the total host thread count (coordinator included),
     * i.e. cfg.hostThreads; threads-1 workers are spawned. @p min_batch
     * gates the parallel phase: batches smaller than this run inline in
     * the serial loop (0 picks a default of max(4, threads)).
     * @p conflicts, when non-null, arms the conflict-check phase
     * between record and replay (swarm/conflict_manager.h). @p replay,
     * when non-null, arms the bank-partitioned replay phase in which
     * workers speculatively pre-apply conflict-free bank-local accesses
     * (cfg.parallelReplay; swarm/conflict_manager.h).
     */
    ParallelExecutor(EventQueue& eq, ParallelBackend& backend,
                     uint32_t threads, uint32_t min_batch = 0,
                     ConcurrentConflictBackend* conflicts = nullptr,
                     ParallelReplayBackend* replay = nullptr);
    ~ParallelExecutor();
    ParallelExecutor(const ParallelExecutor&) = delete;
    ParallelExecutor& operator=(const ParallelExecutor&) = delete;

    /** Drive the event queue to drain (the parallel analogue of eq.run()). */
    void run();

    // ---- Host-side counters (bench/micro_parallel_host reporting) ------
    uint64_t scans() const { return scans_; }
    uint64_t phases() const { return phases_; }
    uint64_t preResumed() const { return preResumed_; }
    uint64_t conflictPhases() const { return conflictPhases_; }
    uint64_t conflictProbes() const { return conflictProbes_; }
    uint64_t replayPhases() const { return replayPhases_; }
    uint64_t replayApplies() const { return replayApplies_; }

  private:
    /// Serial-stretch length bounds: after a fruitful scan the
    /// coordinator re-checks every kMinStride events; barren or
    /// low-benefit scans (few fresh segments, or run-ahead too shallow
    /// to amortize the phase barrier) back off exponentially up to
    /// kMaxStride, so awaiter-chatty workloads degrade toward serial
    /// cost instead of paying a barrier every few events.
    static constexpr uint64_t kMinStride = 64;
    static constexpr uint64_t kMaxStride = 8192;
    /// A scan is fruitful only if segments averaged at least this many
    /// recorded steps (compute/enqueue/write run-ahead); parked-at-
    /// first-read singletons carry almost no worker time.
    static constexpr uint64_t kMinRunaheadPerSegment = 2;

    /// What one fork-join phase does: pre-resume the candidate batch
    /// (record mode), drain the conflict backend's bank probe queues,
    /// or drain the replay backend's per-bank effect queues.
    enum class PhaseKind : uint8_t { Record, ConflictProbe, Replay };

    struct PhaseResult
    {
        uint64_t segments = 0; ///< tasks pre-resumed / banks claimed
        uint64_t steps = 0;    ///< recorded steps / probes executed
    };
    PhaseResult runPhase(PhaseKind kind);
    PhaseResult runSlice(PhaseKind kind, uint32_t slice);
    void workerLoop(uint32_t slice);

    EventQueue& eq_;
    ParallelBackend& backend_;
    ConcurrentConflictBackend* conflicts_;
    ParallelReplayBackend* replay_;
    uint32_t nslices_;
    uint32_t minBatch_;

    std::vector<ResumeCandidate> candidates_;

    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    uint64_t phaseId_ = 0;
    PhaseKind phaseKind_ = PhaseKind::Record; ///< published with phaseId_
    uint32_t pendingWorkers_ = 0;
    PhaseResult phaseAccum_;
    bool exit_ = false;
    std::vector<std::thread> workers_;

    uint64_t scans_ = 0;
    uint64_t phases_ = 0;
    uint64_t preResumed_ = 0;
    uint64_t conflictPhases_ = 0;
    uint64_t conflictProbes_ = 0;
    uint64_t replayPhases_ = 0;
    uint64_t replayApplies_ = 0;
};

} // namespace ssim
