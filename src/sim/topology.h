/**
 * @file
 * Shard topology: the tiles -> shards partition of the simulated
 * machine.
 *
 * A TopologySpec slices the mesh into N shards, each owning a
 * contiguous tile range plus its line-table banks (with the default
 * one-bank-per-tile mapping the bank range mirrors the tile range).
 * The spec is a SIMULATED-machine property, deliberately decoupled
 * from host process fan-out:
 *
 *  - noc/mesh.h prices cross-shard hops (cfg.shardHopPenalty) in any
 *    process count, so a one-process run with topology T is
 *    bit-identical to an N-process run with topology T;
 *  - harness/shard_runner.h forks one host process per shard
 *    (cfg.numShards > 1) and carries cross-shard effects over
 *    shared-memory rings (swarm/shard.h), reproducing exactly the
 *    behavior the one-process run models.
 *
 * With shardHopPenalty == 0 a topologized run is additionally
 * bit-identical to an untopologized one — the equality the golden
 * scale-out gates are built on (docs/scale-out.md).
 *
 * The on-disk form is a versioned text format ("swarmsim-topo v1",
 * grammar in docs/scale-out.md) with the trace-file discipline: a
 * versioned header, strict parsing, and reject-don't-corrupt (a failed
 * parse leaves the spec untouched).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace ssim {

struct TopologySpec
{
    /** One shard's slice of the machine (inclusive ranges). */
    struct Shard
    {
        uint32_t firstTile = 0;
        uint32_t lastTile = 0;
        uint32_t firstBank = 0;
        uint32_t lastBank = 0;

        bool operator==(const Shard&) const = default;
    };

    uint32_t ntiles = 0;
    std::vector<Shard> shards;

    uint32_t numShards() const { return uint32_t(shards.size()); }

    /** Shard owning tile @p t (tile ranges are contiguous and sorted). */
    uint32_t shardOfTile(TileId t) const;

    /** Shard owning line-table bank @p b. */
    uint32_t shardOfBank(uint32_t b) const;

    /**
     * Even contiguous split of @p ntiles tiles into @p nshards shards
     * (banks mirror tiles). Fatals if nshards is 0 or > ntiles.
     */
    static TopologySpec uniform(uint32_t ntiles, uint32_t nshards);

    /**
     * Parse the versioned text format into *this. Strict: any
     * malformed, incomplete, overlapping, or non-covering spec returns
     * false (with a one-line reason in @p err, if non-null) and leaves
     * *this untouched.
     */
    bool parse(const std::string& text, std::string* err = nullptr);

    /** The text form parse() accepts; roundtrips exactly. */
    std::string serialize() const;

    /**
     * Compact identity string, e.g. "topo2:0-31,32-63" — used to key
     * recorded cost traces so a sweep never silently replays a trace
     * recorded under a different topology (harness/runner.cc).
     */
    std::string key() const;

    bool operator==(const TopologySpec&) const = default;
};

} // namespace ssim
