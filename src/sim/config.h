/**
 * @file
 * System configuration, mirroring Table II of the paper.
 *
 * The evaluated systems have K x K tiles (K <= 8) with 4 cores per tile;
 * the 256-core chip is 64 tiles. Per-core cache and queue capacities are
 * held constant as the system scales (Sec. IV-C).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.h"

namespace ssim {

struct ClassificationMap;
struct TopologySpec;
struct TraceData;

/** Spatial task-mapping scheduler (Sec. II-C). */
enum class SchedulerType : uint8_t
{
    Random = 0, ///< new tasks go to a uniformly random tile (Swarm default)
    Stealing,   ///< idealized work-stealing (local enqueue, zero-cost steals)
    Hints,      ///< hint-based spatial task mapping (Sec. III)
    LBHints,    ///< hints + data-centric load balancer (Sec. VI)
};

const char* schedulerName(SchedulerType s);
SchedulerType schedulerFromName(const std::string& name);

/** Victim-tile selection policy for the Stealing scheduler (Sec. II-C). */
enum class StealVictim : uint8_t
{
    MostLoaded = 0, ///< tile with the most idle tasks (paper's choice)
    Random,
    NearestNeighbor,
};

/** Task selection within the victim tile (Sec. II-C). */
enum class StealChoice : uint8_t
{
    EarliestTs = 0, ///< earliest-timestamp task (paper's choice)
    Random,
    LatestTs,
};

/** Load-balancer load signal (Sec. VI-A ablation). */
enum class LbSignal : uint8_t
{
    CommittedCycles = 0, ///< per-bucket committed cycles (paper's choice)
    IdleTasks,           ///< number of idle tasks per tile (ablation)
};

/** Full machine configuration; defaults are Table II values. */
struct SimConfig
{
    // Topology -----------------------------------------------------------
    uint32_t ntiles = 64;      ///< arranged as a ceil(sqrt) x ceil(sqrt) mesh
    uint32_t coresPerTile = 4;

    // Caches (latencies in cycles) ----------------------------------------
    uint32_t l1SizeKB = 16;
    uint32_t l1Ways = 8;
    uint32_t l1Latency = 2;
    uint32_t l2SizeKB = 256;
    uint32_t l2Ways = 8;
    uint32_t l2Latency = 7;
    uint32_t l3SliceKB = 1024; ///< static NUCA, 1MB bank per tile
    uint32_t l3Ways = 16;
    uint32_t l3Latency = 9;
    uint32_t memLatency = 120;
    uint32_t memControllers = 4; ///< at chip edges

    // NoC ------------------------------------------------------------------
    uint32_t hopLatency = 1;   ///< 1 cycle/hop going straight
    uint32_t turnPenalty = 1;  ///< +1 cycle on the turning hop (2 total)
    uint32_t dataFlits = 5;    ///< 64B line + header over 128-bit links
    uint32_t ctrlFlits = 1;
    uint32_t taskDescFlits = 3; ///< fn ptr + ts + 3 args + hashed hint
    uint32_t gvtFlits = 1;

    // Task / commit queues --------------------------------------------------
    uint32_t taskQueuePerCore = 64;
    uint32_t commitQueuePerCore = 16;

    // Swarm instruction overheads -------------------------------------------
    uint32_t enqueueCost = 5;
    uint32_t dequeueCost = 5;
    uint32_t finishCost = 5;

    // Conflict detection -----------------------------------------------------
    /// Line-table banks (0 = one per tile, matching the directory banks).
    uint32_t lineTableBanks = 0;
    uint32_t bloomBits = 2048;
    uint32_t bloomWays = 8;
    uint32_t conflictCheckCost = 5; ///< Bloom filter check at a tile
    uint32_t conflictPerCmpCost = 1; ///< per timestamp compared

    // Commit protocol ---------------------------------------------------------
    uint32_t gvtEpoch = 200; ///< cycles between GVT arbiter updates

    // Host execution (not a modeled-machine knob: simulation wall-clock
    // only; simulated behavior is bit-identical at any value) -----------------
    /// Host threads driving the simulation. 1 = the serial event loop;
    /// >1 = sim/parallel_executor.h pre-executes pure coroutine segments
    /// on hostThreads-1 workers. Overridable via SWARMSIM_HOST_THREADS
    /// (harness runs) and --host-threads=N (benches).
    uint32_t hostThreads = 1;

    /// Concurrent conflict checks (not a modeled-machine knob: simulation
    /// wall-clock only). When true and hostThreads > 1, the parallel
    /// executor runs a conflict-check phase between record and replay:
    /// workers probe recorded accesses against their home line-table
    /// banks (one bank per worker at a time, per-bank op-sequence
    /// validation), and the coordinator reuses a probe at the access's
    /// serial slot only if its bank is provably unchanged — so abort
    /// sets, stats, and golden digests stay bit-identical to the serial
    /// path. Ignored by inline-effects backends (no recorded accesses).
    /// Overridable via SWARMSIM_CONC_CONFLICTS (harness runs),
    /// --conc-conflicts=on|off (benches), and `conc-conflicts=` policy
    /// specs. Default off so the goldens gate the serial path directly.
    bool concurrentConflicts = false;

    /// Bank-partitioned parallel replay (not a modeled-machine knob:
    /// simulation wall-clock only). When true and hostThreads > 1, the
    /// parallel executor runs a replay phase after the conflict phase:
    /// workers claim whole line-table banks and speculatively PRE-APPLY
    /// recorded accesses proven conflict-free, in each bank's serial
    /// slot order; the coordinator consumes each pre-apply at its exact
    /// (cycle, seq) slot, or squashes it first if any serial-path
    /// operation touches the bank — so golden digests stay bit-identical
    /// to the serial path. Composes with (but does not require)
    /// concurrentConflicts; ignored by inline-effects backends.
    /// Overridable via SWARMSIM_PARALLEL_REPLAY (harness runs),
    /// --parallel-replay=on|off (benches), and `parallel-replay=` policy
    /// specs. Default off so the goldens gate the serial path directly.
    bool parallelReplay = false;

    // Access classification (speculation-aware footprint shrinking) ----------
    /// Profile-guided access classification: "off" (default; track every
    /// access) or "profile" (harness runs: runOnce first performs a
    /// recorded profiling run, builds a per-line ClassificationMap with
    /// harness::AccessClassifier::buildMap, and re-runs with the map
    /// armed). Classified lines — read-only, task-private, and
    /// app-declared commutative reductions (App::reductionRanges +
    /// ctx.reduce) — skip line-table registration, probe queues, and
    /// replay queues; any contradicting access demotes its line to full
    /// tracking for the rest of the run, so results are exact by
    /// construction (swarm/classification.h). NOT timing-neutral: a
    /// classified run is a different (cheaper) machine configuration, so
    /// it is gated on App::resultDigest equality, not the stats digest.
    /// Overridable via SWARMSIM_CLASSIFY (harness runs),
    /// --classify=off|profile (benches), and `classify=` policy specs.
    std::string classifyMode = "off";

    /// The armed classification map (null = none). runOnce fills this in
    /// classifyMode=profile; tests inject hand-built maps directly. The
    /// ConflictManager copies it at construction and demotes lines from
    /// its private copy, so one map can serve many runs.
    std::shared_ptr<const ClassificationMap> classifyMap;

    // Engine backend ----------------------------------------------------------
    /// Execution-engine cost model, selected by name through the
    /// backend registry (swarm/policies.h): "timing" (the paper's
    /// cycle-accurate NoC + cache model, the default) or "functional"
    /// (bounded pseudo-cycles, no microarchitectural state — fast
    /// functional simulation with full speculation/abort/commit
    /// semantics; see docs/backends.md). Overridable via
    /// SWARMSIM_BACKEND (harness runs) and --backend= (benches).
    /// "trace-record" replays the timing model verbatim while capturing
    /// per-access cost streams into `traceSink`; "trace-replay" serves
    /// recorded costs from `traceData` at functional event granularity
    /// (swarm/backends/trace_replay_backend.h).
    std::string engineBackend = "timing";

    // Trace record/replay -----------------------------------------------------
    /// Trace file for backend=trace-replay (empty = in-memory only).
    /// If the file exists, runOnce/serveOnce load it (fatal when
    /// malformed); otherwise the record pre-run saves the fresh trace
    /// here. Overridable via SWARMSIM_TRACE (harness runs) and --trace=
    /// (benches); SWARMSIM_TRACE_SAVE additionally exports a freshly
    /// recorded trace without arming a load path.
    std::string traceFile;

    /// The armed recorded trace "trace-replay" serves costs from
    /// (null = the harness performs a trace-record pre-run first,
    /// mirroring classifyMode=profile; a bare Machine falls back to the
    /// seeded cost model for every key, with a one-time warning).
    std::shared_ptr<const TraceData> traceData;

    /// Cost-stream sink for backend=trace-record (its factory fatals
    /// without one). The recording run appends every observed cost here.
    std::shared_ptr<TraceData> traceSink;

    // Scale-out (docs/scale-out.md) -------------------------------------------
    /// Shard processes for a sharded run. 1 = single-process (default).
    /// N > 1 makes the harness fork N replicas connected by shm rings;
    /// simulated behavior is bit-identical to a 1-process run of the
    /// same topology. Overridable via SWARMSIM_SHARDS (harness runs)
    /// and --shards=N (benches).
    uint32_t numShards = 1;

    /// Topology-spec file (sim/topology.h grammar; empty = a uniform
    /// split of ntiles across numShards). Strictly parsed: a malformed
    /// file is fatal, never silently ignored. Overridable via
    /// SWARMSIM_TOPOLOGY (harness runs) and --topology= (benches).
    std::string topologyFile;

    /// Extra NoC latency (cycles) on every mesh hop whose endpoints sit
    /// in different shards of the armed topology — the modeled cost of
    /// a cross-shard link. A SIMULATED-machine knob, deliberately
    /// decoupled from numShards (a host knob): penalty 0 makes a
    /// topologized run digest-identical to an untopologized one.
    /// Overridable via SWARMSIM_SHARD_HOP (harness runs) and
    /// --shard-hop=N (benches).
    uint32_t shardHopPenalty = 0;

    /// GVT epochs between progress reports to the parent reducer of a
    /// sharded run (host cadence knob: reports are out-of-band
    /// invariant checks, not simulated traffic).
    uint32_t shardProgressEvery = 8;

    /// The armed topology (null = untopologized). The harness resolves
    /// it from topologyFile/numShards before constructing Machines
    /// (harness/shard_runner.h); tests inject specs directly.
    std::shared_ptr<const TopologySpec> topology;

    // Spills -------------------------------------------------------------------
    double spillThreshold = 0.85; ///< coalescers fire at 85% task queue full
    uint32_t spillBatch = 15;     ///< tasks spilled per coalescer firing
    uint32_t spillCostPerTask = 7; ///< cycles of spill work per task moved

    // Scheduling ----------------------------------------------------------------
    SchedulerType sched = SchedulerType::Hints;
    /// Serialize same-hint tasks at dispatch (Sec. III-B mechanism 2).
    /// Enabled for Hints/LBHints; an ablation can disable it.
    bool serializeSameHint = true;
    StealVictim stealVictim = StealVictim::MostLoaded;
    StealChoice stealChoice = StealChoice::EarliestTs;

    // Load balancer (Sec. VI) ------------------------------------------------------
    uint32_t bucketsPerTile = 16;
    uint64_t lbEpoch = 500000;  ///< cycles between reconfigurations
    double lbFraction = 0.8;    ///< fraction f of surplus/deficit moved
    LbSignal lbSignal = LbSignal::CommittedCycles;

    uint64_t seed = 1;

    // Derived ------------------------------------------------------------------------
    uint32_t totalCores() const { return ntiles * coresPerTile; }
    uint32_t meshDim() const;

    // Topology helpers: flat core ids <-> (tile, core index).
    TileId tileOfCore(CoreId c) const { return c / coresPerTile; }
    uint32_t coreIdx(CoreId c) const { return c % coresPerTile; }
    CoreId coreId(TileId t, uint32_t idx) const
    {
        return t * coresPerTile + idx;
    }
    uint32_t numBuckets() const { return bucketsPerTile * ntiles; }
    uint32_t numLineBanks() const
    {
        return lineTableBanks ? lineTableBanks : ntiles;
    }
    uint32_t taskQueueCap() const { return taskQueuePerCore * coresPerTile; }
    uint32_t commitQueueCap() const
    {
        return commitQueuePerCore * coresPerTile;
    }

    /**
     * Build a configuration with @p cores total cores, following the
     * paper's scaling discipline (4 cores/tile; 1- and 2-core systems are
     * a single partial tile).
     */
    static SimConfig withCores(uint32_t cores,
                               SchedulerType s = SchedulerType::Hints,
                               uint64_t seed = 1);

    /** Human-readable multi-line description (used by table2_config). */
    std::string describe() const;
};

} // namespace ssim
