/**
 * @file
 * A small-buffer-optimized move-only callable for event callbacks.
 *
 * Every event the simulator schedules captures at most a few words (a
 * subsystem pointer plus a uid/generation pair), yet std::function's
 * small-object buffer is implementation-defined and its type erasure
 * drags in copyability requirements. InlineCallback stores any callable
 * up to kInlineSize bytes in place — no heap allocation on the
 * schedule/dispatch hot path — and falls back to the heap for larger
 * captures (counted, so the microbenchmark can prove the buffer is big
 * enough in practice; see bench/micro_eventq.cc).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ssim {

class InlineCallback
{
  public:
    /// Captures up to this many bytes live in the event itself, sized to
    /// the largest capture in the simulator — (this, uid, gen) =
    /// 24 bytes — so the enclosing Event (when + seq + vtable + buffer)
    /// is 48 bytes, matching the std::function event it replaced minus
    /// the per-event heap allocation. Larger captures still work: they
    /// fall back to the heap and show up in heapFallbacks().
    static constexpr size_t kInlineSize = 24;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineCallback>>>
    InlineCallback(F&& f) // NOLINT: intentionally implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn&>);
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
            vt_ = inlineVt<Fn>();
        } else {
            ::new (static_cast<void*>(buf_))
                Fn*(new Fn(std::forward<F>(f)));
            vt_ = heapVt<Fn>();
            heapFallbacks_++;
        }
    }

    InlineCallback(InlineCallback&& o) noexcept : vt_(o.vt_)
    {
        if (vt_) {
            relocateFrom(o);
            o.vt_ = nullptr;
        }
    }

    InlineCallback&
    operator=(InlineCallback&& o) noexcept
    {
        if (this != &o) {
            reset();
            vt_ = o.vt_;
            if (vt_) {
                relocateFrom(o);
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;

    ~InlineCallback() { reset(); }

    void
    operator()()
    {
        vt_->invoke(buf_);
    }

    explicit operator bool() const { return vt_ != nullptr; }

    /**
     * Number of callables constructed via the heap-fallback path since
     * process start (single-threaded counter). Zero in a healthy build:
     * every simulator callback fits the inline buffer.
     */
    static uint64_t heapFallbacks() { return heapFallbacks_; }

  private:
    struct VTable
    {
        void (*invoke)(void*);
        /// Move the callable from @p src storage into @p dst storage and
        /// leave @p src empty (ownership transfer, no destructor owed).
        /// nullptr = trivially relocatable: a plain memcpy of the buffer
        /// (the common case — simulator captures are pointers and ints —
        /// which keeps heap sifts free of indirect calls).
        void (*relocate)(void* src, void* dst);
        void (*destroy)(void*);
    };

    void
    relocateFrom(InlineCallback& o)
    {
        if (vt_->relocate)
            vt_->relocate(o.buf_, buf_);
        else
            std::memcpy(buf_, o.buf_, kInlineSize);
    }

    void
    reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    template <typename Fn>
    static const VTable*
    inlineVt()
    {
        static constexpr VTable vt{
            [](void* p) { (*static_cast<Fn*>(p))(); },
            std::is_trivially_copyable_v<Fn>
                ? nullptr
                : +[](void* src, void* dst) {
                      Fn* s = static_cast<Fn*>(src);
                      ::new (dst) Fn(std::move(*s));
                      s->~Fn();
                  },
            [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        };
        return &vt;
    }

    template <typename Fn>
    static const VTable*
    heapVt()
    {
        // The stored Fn* is trivially relocatable by definition.
        static constexpr VTable vt{
            [](void* p) { (**static_cast<Fn**>(p))(); },
            nullptr,
            [](void* p) { delete *static_cast<Fn**>(p); },
        };
        return &vt;
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const VTable* vt_ = nullptr;

    static inline uint64_t heapFallbacks_ = 0;
};

} // namespace ssim
