/**
 * @file
 * Analytic model of the on-chip mesh network (Table II).
 *
 * K x K tile mesh, X-Y dimension-order routing, 128-bit links. Going
 * straight costs 1 cycle per hop; the turning hop costs 2 (like Tile64).
 * The model provides per-message latency and counts flits *injected* per
 * traffic class, which is what the paper's Fig. 5b/8b report.
 *
 * Substitution note (DESIGN.md §1): we do not model link-level contention;
 * the paper's traffic results are injected-flit counts and its latencies
 * use the same hop/turn costs modeled here.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "base/stats.h"
#include "base/types.h"
#include "sim/config.h"
#include "sim/topology.h"

namespace ssim {

class Mesh
{
  public:
    explicit Mesh(const SimConfig& cfg);

    /** X coordinate of a tile in the mesh. */
    uint32_t xOf(TileId t) const { return t % dim_; }
    /** Y coordinate of a tile in the mesh. */
    uint32_t yOf(TileId t) const { return t / dim_; }

    /** Manhattan hop count between two tiles. */
    uint32_t hops(TileId a, TileId b) const;

    /**
     * X-Y routed latency in cycles between two tiles. With a topology
     * armed (cfg.topology), a message whose endpoints sit in different
     * shards pays cfg.shardHopPenalty extra cycles — the modeled cost
     * of a cross-shard link (docs/scale-out.md).
     */
    uint32_t latency(TileId a, TileId b) const;

    /**
     * Latency from a tile to its line's memory controller (controllers sit
     * at the four edge midpoints; lines are interleaved across them).
     * Exempt from the shard-hop penalty: controllers belong to the
     * chip, not to a shard.
     */
    uint32_t memCtrlLatency(TileId t, LineAddr line) const;

    /** Record an injected message of @p flits flits in class @p cls. */
    void
    inject(TileId src, TileId dst, uint32_t flits, TrafficClass cls)
    {
        if (src == dst)
            return; // intra-tile transfers do not use the NoC
        if (topo_ && topo_->shardOfTile(src) != topo_->shardOfTile(dst))
            crossShardMsgs_++;
        flits_[size_t(cls)] += flits;
    }

    /** Record injected flits with no meaningful src/dst (e.g. GVT). */
    void
    injectRaw(uint32_t flits, TrafficClass cls)
    {
        flits_[size_t(cls)] += flits;
    }

    uint64_t flitsOf(TrafficClass cls) const { return flits_[size_t(cls)]; }
    const std::array<uint64_t, kNumTrafficClasses>& flits() const
    {
        return flits_;
    }

    uint32_t dim() const { return dim_; }
    uint32_t ntiles() const { return ntiles_; }

    /// NoC messages whose endpoints sit in different shards (0 with no
    /// topology armed). Digest-excluded: see SimStats::crossShardMsgs.
    uint64_t crossShardMsgs() const { return crossShardMsgs_; }

  private:
    uint32_t ntiles_;
    uint32_t dim_;
    uint32_t hopLat_;
    uint32_t turnPenalty_;
    uint32_t memLat_;
    /// The armed topology (null = untopologized run).
    std::shared_ptr<const TopologySpec> topo_;
    uint32_t shardPenalty_ = 0;
    uint64_t crossShardMsgs_ = 0;
    std::array<uint64_t, kNumTrafficClasses> flits_{};
    std::array<std::pair<uint32_t, uint32_t>, 4> ctrlPos_;
};

} // namespace ssim
