#include "noc/mesh.h"

#include <cstdlib>

#include "base/hash.h"
#include "base/logging.h"

namespace ssim {

Mesh::Mesh(const SimConfig& cfg)
    : ntiles_(cfg.ntiles), dim_(cfg.meshDim()), hopLat_(cfg.hopLatency),
      turnPenalty_(cfg.turnPenalty), memLat_(cfg.memLatency),
      topo_(cfg.topology), shardPenalty_(cfg.shardHopPenalty)
{
    if (topo_)
        ssim_assert(topo_->ntiles == ntiles_,
                    "topology covers %u tiles but the mesh has %u",
                    topo_->ntiles, ntiles_);
    // Four controllers at the midpoints of the chip edges (Fig. 1).
    uint32_t mid = dim_ / 2;
    uint32_t edge = dim_ ? dim_ - 1 : 0;
    ctrlPos_ = {{{mid, 0}, {mid, edge}, {0, mid}, {edge, mid}}};
}

uint32_t
Mesh::hops(TileId a, TileId b) const
{
    ssim_assert(a < ntiles_ && b < ntiles_);
    uint32_t dx = std::abs(int(xOf(a)) - int(xOf(b)));
    uint32_t dy = std::abs(int(yOf(a)) - int(yOf(b)));
    return dx + dy;
}

uint32_t
Mesh::latency(TileId a, TileId b) const
{
    if (a == b)
        return 0;
    uint32_t dx = std::abs(int(xOf(a)) - int(xOf(b)));
    uint32_t dy = std::abs(int(yOf(a)) - int(yOf(b)));
    uint32_t lat = (dx + dy) * hopLat_;
    if (dx > 0 && dy > 0)
        lat += turnPenalty_; // X-Y routing makes at most one turn
    if (topo_ && topo_->shardOfTile(a) != topo_->shardOfTile(b))
        lat += shardPenalty_; // cross-shard link (docs/scale-out.md)
    return lat;
}

uint32_t
Mesh::memCtrlLatency(TileId t, LineAddr line) const
{
    // Lines are interleaved across the four controllers.
    auto [cx, cy] = ctrlPos_[mix64(line) & 3];
    uint32_t dx = std::abs(int(xOf(t)) - int(cx));
    uint32_t dy = std::abs(int(yOf(t)) - int(cy));
    uint32_t lat = (dx + dy) * hopLat_;
    if (dx > 0 && dy > 0)
        lat += turnPenalty_;
    return lat;
}

} // namespace ssim
