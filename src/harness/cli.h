/**
 * @file
 * Shared command-line and environment parsing for benches and the
 * harness: the single place where `--host-threads=`, `--backend=`, and
 * `--policy=` are spelled, validated, and turned into SimConfig
 * overrides, so every binary shares one set of error messages instead
 * of copy-pasting argv loops.
 *
 * Two usage patterns:
 *
 *  - Binaries that build their own SimConfig call the specific
 *    apply* helpers they support, per config (env first, then flags,
 *    which win) — e.g. bench/micro_backend.cc applies host threads and
 *    policy but intercepts --backend itself.
 *  - Figure/table benches that run everything through harness::runOnce
 *    call applyBenchFlags(argc, argv) once at the top of main(): it
 *    validates the flags and re-exports them as the SWARMSIM_* env
 *    vars, which runOnce applies to every machine it builds.
 */
#pragma once

#include <string>

#include "sim/config.h"

namespace ssim::harness {

/**
 * Value of the last `--flag=value` occurrence in argv (later flags
 * win), or nullptr if absent. @p flag is the part before '=', e.g.
 * "--backend".
 */
const char* flagValue(int argc, char** argv, const char* flag);

/** True if bare `--flag` appears anywhere in argv. */
bool hasFlag(int argc, char** argv, const char* flag);

/** Parse @p text as a positive integer; fatals naming @p flag. */
uint32_t parsePositiveInt(const char* flag, const char* text);

/**
 * Apply host-thread overrides to @p cfg: the SWARMSIM_HOST_THREADS
 * environment variable (lenient: an invalid or < 1 value is ignored
 * with a one-time warning — SWARMSIM_HOST_THREADS=0 has always meant
 * "serial"), then any --host-threads=N in argv, which wins and must
 * be a positive integer.
 */
void applyHostThreads(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Apply engine-backend overrides to @p cfg: the SWARMSIM_BACKEND
 * environment variable, then any --backend=name in argv (which wins).
 * Fatals, listing the registered backends, on an unknown name.
 */
void applyBackend(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Apply concurrent-conflict-check overrides to @p cfg: the
 * SWARMSIM_CONC_CONFLICTS environment variable (on/1 arms, off/0
 * disarms; anything else is ignored with a one-time warning), then any
 * --conc-conflicts=on|off in argv, which wins and must be well-formed.
 */
void applyConcConflicts(SimConfig& cfg, int argc = 0,
                        char** argv = nullptr);

/**
 * Apply parallel-replay overrides to @p cfg: the
 * SWARMSIM_PARALLEL_REPLAY environment variable (on/1 arms, off/0
 * disarms; anything else is ignored with a one-time warning), then any
 * --parallel-replay=on|off in argv, which wins and must be well-formed.
 */
void applyParallelReplay(SimConfig& cfg, int argc = 0,
                         char** argv = nullptr);

/**
 * Apply access-classification overrides to @p cfg: the SWARMSIM_CLASSIFY
 * environment variable (off/profile; anything else is ignored with a
 * one-time warning), then any --classify=off|profile in argv, which wins
 * and must be well-formed. "profile" makes harness::runOnce do a
 * profiling pre-run and feed the resulting map to the real run
 * (docs/configuration.md).
 */
void applyClassify(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Apply trace-file overrides to @p cfg.traceFile: the SWARMSIM_TRACE
 * environment variable (a path), then any --trace=path in argv, which
 * wins. Only meaningful with backend=trace-replay: runOnce/serveOnce
 * load the file if it exists (fatal when malformed) and otherwise save
 * the record pre-run's fresh trace there (docs/backends.md).
 */
void applyTrace(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Apply shard-count overrides to @p cfg.numShards: the SWARMSIM_SHARDS
 * environment variable (lenient: an invalid or < 1 value is ignored
 * with a one-time warning), then any --shards=N in argv, which wins and
 * must be a positive integer. N > 1 makes harness::runOnce fork N
 * replica processes connected by shm rings (docs/scale-out.md).
 */
void applyShards(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Apply topology-file overrides to @p cfg.topologyFile: the
 * SWARMSIM_TOPOLOGY environment variable (a path), then any
 * --topology=path in argv, which wins. The file must follow the
 * sim/topology.h grammar; resolveTopology fatals on a malformed spec.
 */
void applyTopology(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Apply shard-hop-penalty overrides to @p cfg.shardHopPenalty: the
 * SWARMSIM_SHARD_HOP environment variable (lenient: a non-numeric
 * value is ignored with a one-time warning; 0 is valid and the
 * default), then any --shard-hop=N in argv, which wins and must be a
 * non-negative integer.
 */
void applyShardHop(SimConfig& cfg, int argc = 0, char** argv = nullptr);

/**
 * Fail fast on unrecognized `--` flags: fatals (exit, not abort) naming
 * the first argv token that starts with "--" whose flag part (before
 * any '=') is neither in the shared bench set — --host-threads,
 * --backend, --conc-conflicts, --parallel-replay, --classify, --trace,
 * --shards, --topology, --shard-hop, --policy, --json, --smoke — nor
 * in @p extras. Benches call it first in main() so a typo
 * like `--host-thread=8` aborts the run instead of silently measuring
 * the default configuration. @p extras is a nullptr-terminated array of
 * additional accepted flag spellings (may be nullptr); an entry ending
 * in '*' accepts every flag with that prefix (e.g. "--benchmark_*" for
 * binaries that hand google-benchmark its own flags).
 */
void requireKnownFlags(int argc, char** argv,
                       const char* const* extras = nullptr);

/**
 * Apply any --policy=spec in argv through policies::apply (scheduler
 * and policy-knob selection by name; fatals on a malformed spec with
 * the registry's error message).
 */
void applyPolicy(SimConfig& cfg, int argc, char** argv);

/**
 * For figure/table bench main()s that never touch a SimConfig
 * themselves: validate --host-threads= / --backend= and re-export them
 * as SWARMSIM_HOST_THREADS / SWARMSIM_BACKEND so every subsequent
 * harness::runOnce picks them up.
 */
void applyBenchFlags(int argc, char** argv);

} // namespace ssim::harness
