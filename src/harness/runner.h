/**
 * @file
 * Experiment harness: runs (app, scheduler, core count) configurations
 * and collects stats, mirroring the paper's methodology (Sec. IV-A):
 * systems of K x K tiles, per-core queue/cache resources held constant.
 */
#pragma once

#include <string>
#include <vector>

#include "apps/app.h"
#include "base/stats.h"
#include "harness/cli.h"
#include "sim/config.h"

namespace ssim {
class AccessProfiler;
}

namespace ssim::harness {

struct RunResult
{
    uint32_t cores = 0;
    SchedulerType sched = SchedulerType::Random;
    bool fineGrain = false;
    bool valid = false;
    SimStats stats;
};

/**
 * Reset the app, run it once on a fresh machine, validate. A profiler,
 * if given, is attached to the machine's CommitController and receives
 * every committed task's access trace. Host-side env overrides are
 * applied per run (see harness/cli.h): SWARMSIM_HOST_THREADS=N runs
 * the simulation on N host threads (behavior is thread-count
 * invariant; see sim/parallel_executor.h) and SWARMSIM_BACKEND selects
 * the engine backend (docs/backends.md).
 */
RunResult runOnce(apps::App& app, const SimConfig& cfg,
                  AccessProfiler* profiler = nullptr);

/** Run one scheduler across a core-count sweep. */
std::vector<RunResult> sweep(apps::App& app, SchedulerType sched,
                             const std::vector<uint32_t>& cores,
                             uint64_t seed = 1);

/**
 * Run a named policy spec (see swarm/policies.h, e.g. "sched=lbhints" or
 * "sched=stealing,steal-victim=random") across a core-count sweep. The
 * spec must include "sched=..."; it fatals otherwise.
 */
std::vector<RunResult> sweep(apps::App& app,
                             const std::string& policy_spec,
                             const std::vector<uint32_t>& cores,
                             uint64_t seed = 1);

/** Core counts evaluated: {1,4,16,64}, plus {144,256} if SWARMSIM_FULL. */
std::vector<uint32_t> coreSweep();

/** The largest core count in coreSweep() (the "256-core" point). */
uint32_t maxCores();

} // namespace ssim::harness
