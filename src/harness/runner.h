/**
 * @file
 * Experiment harness: runs (app, scheduler, core count) configurations
 * and collects stats, mirroring the paper's methodology (Sec. IV-A):
 * systems of K x K tiles, per-core queue/cache resources held constant.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "base/stats.h"
#include "harness/cli.h"
#include "sim/config.h"

namespace ssim {
class AccessProfiler;
struct TraceData;
}

namespace ssim::harness {

struct RunResult
{
    uint32_t cores = 0;
    SchedulerType sched = SchedulerType::Random;
    bool fineGrain = false;
    bool valid = false;
    SimStats stats;
    /// App::resultDigest after the run (backend/thread/core invariant).
    uint64_t resultDigest = 0;
    /// The trace this run served costs from (backend=trace-replay only;
    /// null otherwise). Sweeps reuse it across points so the timing
    /// model runs once per app, not once per core count.
    std::shared_ptr<const TraceData> trace;
};

/**
 * Reset the app, run it once on a fresh machine, validate. A profiler,
 * if given, is attached to the machine's CommitController and receives
 * every committed task's access trace. Host-side env overrides are
 * applied per run (see harness/cli.h): SWARMSIM_HOST_THREADS=N runs
 * the simulation on N host threads (behavior is thread-count
 * invariant; see sim/parallel_executor.h) and SWARMSIM_BACKEND selects
 * the engine backend (docs/backends.md).
 */
RunResult runOnce(apps::App& app, const SimConfig& cfg,
                  AccessProfiler* profiler = nullptr);

/**
 * Arm cfg.traceData for a backend=trace-replay run (no-op for any other
 * backend, or when a trace is already armed). If cfg.traceFile names an
 * existing file it is loaded — fatal when malformed, a bad trace must
 * never silently fall back. Otherwise the workload runs once under
 * backend=trace-record (the timing model with a cost tap, mirroring the
 * classifyMode=profile pre-run), the fresh trace is saved to
 * cfg.traceFile and/or $SWARMSIM_TRACE_SAVE when set, and the app is
 * reset for the caller's measured run. Returns true iff the pre-run
 * recorded in this process (same-process replays resolve task types
 * exactly, so callers can hard-gate digest equality on it).
 */
bool prepareTraceReplay(apps::App& app, SimConfig& cfg);

/** Run one scheduler across a core-count sweep. */
std::vector<RunResult> sweep(apps::App& app, SchedulerType sched,
                             const std::vector<uint32_t>& cores,
                             uint64_t seed = 1);

/**
 * Run a named policy spec (see swarm/policies.h, e.g. "sched=lbhints" or
 * "sched=stealing,steal-victim=random") across a core-count sweep. The
 * spec must include "sched=..."; it fatals otherwise.
 */
std::vector<RunResult> sweep(apps::App& app,
                             const std::string& policy_spec,
                             const std::vector<uint32_t>& cores,
                             uint64_t seed = 1);

/** Core counts evaluated: {1,4,16,64}, plus {144,256} if SWARMSIM_FULL. */
std::vector<uint32_t> coreSweep();

/** The largest core count in coreSweep() (the "256-core" point). */
uint32_t maxCores();

} // namespace ssim::harness
