#include "harness/cli.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/logging.h"
#include "swarm/policies.h"

namespace ssim::harness {

const char*
flagValue(int argc, char** argv, const char* flag)
{
    const size_t n = std::strlen(flag);
    const char* found = nullptr;
    for (int i = 1; i < argc; i++) {
        const char* arg = argv[i];
        if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
            found = arg + n + 1; // later flags win
    }
    return found;
}

bool
hasFlag(int argc, char** argv, const char* flag)
{
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

uint32_t
parsePositiveInt(const char* flag, const char* text)
{
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(text, &end, 10);
    if (!end || *end != '\0' || errno == ERANGE || v < 1 ||
        v > (long long)UINT32_MAX)
        fatal("%s needs a positive 32-bit integer, got '%s'", flag, text);
    return uint32_t(v);
}

void
applyHostThreads(SimConfig& cfg, int argc, char** argv)
{
    // Env is lenient (an invalid or <1 value is ignored with a warning,
    // preserving the long-standing 'SWARMSIM_HOST_THREADS=0 means
    // serial' idiom); the explicit flag is strict.
    if (const char* e = std::getenv("SWARMSIM_HOST_THREADS")) {
        int n = std::atoi(e);
        if (n >= 1) {
            cfg.hostThreads = uint32_t(n);
        } else {
            static bool warned = false; // runOnce applies this per run
            if (!warned) {
                warned = true;
                warn("ignoring SWARMSIM_HOST_THREADS='%s' (needs a "
                     "positive integer); running serial",
                     e);
            }
        }
    }
    if (const char* v = flagValue(argc, argv, "--host-threads"))
        cfg.hostThreads = parsePositiveInt("--host-threads", v);
}

void
applyBackend(SimConfig& cfg, int argc, char** argv)
{
    if (const char* e = std::getenv("SWARMSIM_BACKEND")) {
        policies::requireKnownBackend(e, "SWARMSIM_BACKEND");
        cfg.engineBackend = e;
    }
    if (const char* v = flagValue(argc, argv, "--backend")) {
        policies::requireKnownBackend(v, "--backend");
        cfg.engineBackend = v;
    }
}

namespace {

/// Shared on/off parsing: "on"/"1" and "off"/"0" are accepted; returns
/// false (value untouched) otherwise.
bool
parseOnOff(const char* text, bool& out)
{
    std::string v(text);
    if (v == "on" || v == "1") {
        out = true;
        return true;
    }
    if (v == "off" || v == "0") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

void
applyConcConflicts(SimConfig& cfg, int argc, char** argv)
{
    if (const char* e = std::getenv("SWARMSIM_CONC_CONFLICTS")) {
        if (!parseOnOff(e, cfg.concurrentConflicts)) {
            static bool warned = false; // runOnce applies this per run
            if (!warned) {
                warned = true;
                warn("ignoring SWARMSIM_CONC_CONFLICTS='%s' (needs "
                     "on/off)",
                     e);
            }
        }
    }
    if (const char* v = flagValue(argc, argv, "--conc-conflicts")) {
        if (!parseOnOff(v, cfg.concurrentConflicts))
            fatal("--conc-conflicts needs on or off, got '%s'", v);
    }
}

void
applyParallelReplay(SimConfig& cfg, int argc, char** argv)
{
    if (const char* e = std::getenv("SWARMSIM_PARALLEL_REPLAY")) {
        if (!parseOnOff(e, cfg.parallelReplay)) {
            static bool warned = false; // runOnce applies this per run
            if (!warned) {
                warned = true;
                warn("ignoring SWARMSIM_PARALLEL_REPLAY='%s' (needs "
                     "on/off)",
                     e);
            }
        }
    }
    if (const char* v = flagValue(argc, argv, "--parallel-replay")) {
        if (!parseOnOff(v, cfg.parallelReplay))
            fatal("--parallel-replay needs on or off, got '%s'", v);
    }
}

namespace {

/// Classification-mode parsing shared by env and flag: only the two
/// modes the runner understands are accepted.
bool
parseClassifyMode(const char* text, std::string& out)
{
    std::string v(text);
    if (v != "off" && v != "profile")
        return false;
    out = std::move(v);
    return true;
}

} // namespace

void
applyClassify(SimConfig& cfg, int argc, char** argv)
{
    if (const char* e = std::getenv("SWARMSIM_CLASSIFY")) {
        if (!parseClassifyMode(e, cfg.classifyMode)) {
            static bool warned = false; // runOnce applies this per run
            if (!warned) {
                warned = true;
                warn("ignoring SWARMSIM_CLASSIFY='%s' (needs "
                     "off/profile)",
                     e);
            }
        }
    }
    if (const char* v = flagValue(argc, argv, "--classify")) {
        if (!parseClassifyMode(v, cfg.classifyMode))
            fatal("--classify needs off or profile, got '%s'", v);
    }
}

void
applyTrace(SimConfig& cfg, int argc, char** argv)
{
    // A path has no well-formedness to check up front: existence and
    // parseability are the runner's business (missing file = record
    // pre-run; malformed file = fatal at load).
    if (const char* e = std::getenv("SWARMSIM_TRACE"))
        cfg.traceFile = e;
    if (const char* v = flagValue(argc, argv, "--trace"))
        cfg.traceFile = v;
}

namespace {

/// Non-negative u32 parse shared by --shard-hop and its env mirror
/// (parsePositiveInt rejects 0, which is a legal penalty).
bool
parseNonNegativeU32(const char* text, uint32_t& out)
{
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(text, &end, 10);
    if (!end || end == text || *end != '\0' || errno == ERANGE || v < 0 ||
        v > (long long)UINT32_MAX)
        return false;
    out = uint32_t(v);
    return true;
}

} // namespace

void
applyShards(SimConfig& cfg, int argc, char** argv)
{
    if (const char* e = std::getenv("SWARMSIM_SHARDS")) {
        int n = std::atoi(e);
        if (n >= 1) {
            cfg.numShards = uint32_t(n);
        } else {
            static bool warned = false; // runOnce applies this per run
            if (!warned) {
                warned = true;
                warn("ignoring SWARMSIM_SHARDS='%s' (needs a positive "
                     "integer); running single-process",
                     e);
            }
        }
    }
    if (const char* v = flagValue(argc, argv, "--shards"))
        cfg.numShards = parsePositiveInt("--shards", v);
}

void
applyTopology(SimConfig& cfg, int argc, char** argv)
{
    // A path has no well-formedness to check up front: parsing is
    // resolveTopology's business (malformed file = fatal, never a
    // silent fallback).
    if (const char* e = std::getenv("SWARMSIM_TOPOLOGY"))
        cfg.topologyFile = e;
    if (const char* v = flagValue(argc, argv, "--topology"))
        cfg.topologyFile = v;
}

void
applyShardHop(SimConfig& cfg, int argc, char** argv)
{
    if (const char* e = std::getenv("SWARMSIM_SHARD_HOP")) {
        uint32_t n = 0;
        if (parseNonNegativeU32(e, n)) {
            cfg.shardHopPenalty = n;
        } else {
            static bool warned = false; // runOnce applies this per run
            if (!warned) {
                warned = true;
                warn("ignoring SWARMSIM_SHARD_HOP='%s' (needs a "
                     "non-negative integer)",
                     e);
            }
        }
    }
    if (const char* v = flagValue(argc, argv, "--shard-hop")) {
        if (!parseNonNegativeU32(v, cfg.shardHopPenalty))
            fatal("--shard-hop needs a non-negative 32-bit integer, "
                  "got '%s'",
                  v);
    }
}

void
requireKnownFlags(int argc, char** argv, const char* const* extras)
{
    static const char* const kShared[] = {
        "--host-threads", "--backend",  "--conc-conflicts",
        "--parallel-replay", "--classify", "--trace", "--shards",
        "--topology", "--shard-hop", "--policy", "--json", "--smoke",
    };
    for (int i = 1; i < argc; i++) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0)
            continue; // positional operands are the binary's business
        std::string flag(arg);
        if (size_t eq = flag.find('='); eq != std::string::npos)
            flag.resize(eq);
        bool known = false;
        for (const char* k : kShared)
            known = known || flag == k;
        for (const char* const* e = extras; !known && e && *e; e++) {
            size_t len = std::strlen(*e);
            if (len && (*e)[len - 1] == '*') // prefix entry, e.g.
                known = flag.compare(0, len - 1, *e, len - 1) == 0;
            else // "--benchmark_*"
                known = flag == *e;
        }
        if (!known)
            fatal("unrecognized flag '%s' (check the spelling; a typo'd "
                  "flag would otherwise silently measure the default "
                  "configuration)",
                  arg);
    }
}

void
applyPolicy(SimConfig& cfg, int argc, char** argv)
{
    if (const char* v = flagValue(argc, argv, "--policy"))
        policies::apply(cfg, v); // fatals on a malformed spec
}

void
applyBenchFlags(int argc, char** argv)
{
    if (const char* v = flagValue(argc, argv, "--host-threads")) {
        parsePositiveInt("--host-threads", v); // validate before export
        setenv("SWARMSIM_HOST_THREADS", v, /*overwrite=*/1);
    }
    if (const char* v = flagValue(argc, argv, "--backend")) {
        policies::requireKnownBackend(v, "--backend");
        setenv("SWARMSIM_BACKEND", v, /*overwrite=*/1);
    }
    if (const char* v = flagValue(argc, argv, "--conc-conflicts")) {
        bool parsed = false;
        if (!parseOnOff(v, parsed))
            fatal("--conc-conflicts needs on or off, got '%s'", v);
        setenv("SWARMSIM_CONC_CONFLICTS", parsed ? "on" : "off",
               /*overwrite=*/1);
    }
    if (const char* v = flagValue(argc, argv, "--parallel-replay")) {
        bool parsed = false;
        if (!parseOnOff(v, parsed))
            fatal("--parallel-replay needs on or off, got '%s'", v);
        setenv("SWARMSIM_PARALLEL_REPLAY", parsed ? "on" : "off",
               /*overwrite=*/1);
    }
    if (const char* v = flagValue(argc, argv, "--classify")) {
        std::string mode;
        if (!parseClassifyMode(v, mode))
            fatal("--classify needs off or profile, got '%s'", v);
        setenv("SWARMSIM_CLASSIFY", mode.c_str(), /*overwrite=*/1);
    }
    if (const char* v = flagValue(argc, argv, "--trace"))
        setenv("SWARMSIM_TRACE", v, /*overwrite=*/1);
    if (const char* v = flagValue(argc, argv, "--shards")) {
        parsePositiveInt("--shards", v); // validate before export
        setenv("SWARMSIM_SHARDS", v, /*overwrite=*/1);
    }
    if (const char* v = flagValue(argc, argv, "--topology"))
        setenv("SWARMSIM_TOPOLOGY", v, /*overwrite=*/1);
    if (const char* v = flagValue(argc, argv, "--shard-hop")) {
        uint32_t n = 0;
        if (!parseNonNegativeU32(v, n))
            fatal("--shard-hop needs a non-negative 32-bit integer, "
                  "got '%s'",
                  v);
        setenv("SWARMSIM_SHARD_HOP", v, /*overwrite=*/1);
    }
}

} // namespace ssim::harness
