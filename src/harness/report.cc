#include "harness/report.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/logging.h"
#include "harness/cli.h"

namespace ssim::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    ssim_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<size_t> w(headers_.size());
    for (size_t i = 0; i < headers_.size(); i++)
        w[i] = headers_[i].size();
    for (const auto& row : rows_)
        for (size_t i = 0; i < row.size(); i++)
            w[i] = std::max(w[i], row[i].size());

    auto printRow = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); i++)
            std::printf("%-*s%s", int(w[i]), row[i].c_str(),
                        i + 1 < row.size() ? "  " : "");
        std::printf("\n");
    };
    printRow(headers_);
    size_t total = 0;
    for (size_t i = 0; i < w.size(); i++)
        total += w[i] + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_)
        printRow(row);
}

void
Table::writeCsv(const std::string& name) const
{
    const char* csv = std::getenv("SWARMSIM_CSV");
    if (!csv || csv[0] != '1')
        return;
    std::ofstream f("results/" + name + ".csv");
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); i++)
            f << row[i] << (i + 1 < row.size() ? "," : "\n");
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtInt(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    return buf;
}

std::vector<double>
speedups(const std::vector<RunResult>& series, uint64_t base_cycles)
{
    std::vector<double> out;
    for (const auto& r : series)
        out.push_back(double(base_cycles) / double(r.stats.cycles));
    return out;
}

std::vector<std::string>
cycleBreakdownRow(const SimStats& s, double norm_total)
{
    std::vector<std::string> row;
    for (size_t b = 0; b < kNumCycleBuckets; b++)
        row.push_back(fmt(double(s.coreCycles[b]) / norm_total, 3));
    row.push_back(fmt(double(s.totalCoreCycles()) / norm_total, 3));
    return row;
}

std::vector<std::string>
trafficBreakdownRow(const SimStats& s, double norm_total)
{
    std::vector<std::string> row;
    for (size_t c = 0; c < kNumTrafficClasses; c++)
        row.push_back(fmt(double(s.flits[c]) / norm_total, 3));
    row.push_back(fmt(double(s.totalFlits()) / norm_total, 3));
    return row;
}

std::string
occupancySummary(const SimStats& s)
{
    if (s.laneScheduled.empty() || s.bankPeakLines.empty())
        return "";
    auto minMeanMax = [](const std::vector<uint64_t>& v, size_t from) {
        uint64_t lo = ~0ull, hi = 0, sum = 0;
        for (size_t i = from; i < v.size(); i++) {
            lo = std::min(lo, v[i]);
            hi = std::max(hi, v[i]);
            sum += v[i];
        }
        size_t n = v.size() - from;
        return std::array<uint64_t, 3>{lo, n ? sum / n : 0, hi};
    };
    auto ev = minMeanMax(s.laneScheduled, 1);
    auto pk = minMeanMax(s.lanePeakPending, 1);
    auto bk = minMeanMax(s.bankPeakLines, 0);
    char buf[1024];
    int n = std::snprintf(
        buf, sizeof(buf),
        "lanes: %zu tile + global (%llu ev); tile events "
        "min/mean/max=%llu/%llu/%llu, peak pending max=%llu\n"
        "banks: %zu; peak lines min/mean/max=%llu/%llu/%llu",
        s.laneScheduled.size() - 1, (unsigned long long)s.laneScheduled[0],
        (unsigned long long)ev[0], (unsigned long long)ev[1],
        (unsigned long long)ev[2], (unsigned long long)pk[2],
        s.bankPeakLines.size(), (unsigned long long)bk[0],
        (unsigned long long)bk[1], (unsigned long long)bk[2]);
    // Concurrent conflict-check occupancy: worker probe spread across
    // banks, probe consumption, and the armed-mode lock traffic.
    if ((s.concWorkerProbes || s.bankLockAcquired) && n > 0 &&
        size_t(n) < sizeof(buf)) {
        uint64_t pb = 0;
        for (uint64_t b : s.bankProbes)
            pb = std::max(pb, b);
        n += std::snprintf(
            buf + n, sizeof(buf) - size_t(n),
            "\nconflict checks: %llu worker probes (peak bank %llu), "
            "hit/stale/cold=%llu/%llu/%llu; bank locks %llu "
            "(%llu contended); %llu entries epoch-scrubbed",
            (unsigned long long)s.concWorkerProbes,
            (unsigned long long)pb,
            (unsigned long long)s.concProbeHits,
            (unsigned long long)s.concProbeStale,
            (unsigned long long)s.concProbeCold,
            (unsigned long long)s.bankLockAcquired,
            (unsigned long long)s.bankLockContended,
            (unsigned long long)s.lineEntriesScrubbed);
    }
    // Parallel-replay occupancy: worker pre-applies vs. coordinator
    // fallbacks, squash traffic, and the per-bank apply spread.
    if ((s.workerApplies || s.replaySquashed ||
         s.coordinatorFallbackApplies) &&
        n > 0 && size_t(n) < sizeof(buf)) {
        uint64_t pb = 0;
        for (uint64_t b : s.bankApplies)
            pb = std::max(pb, b);
        n += std::snprintf(
            buf + n, sizeof(buf) - size_t(n),
            "\nreplay: %llu worker applies (peak bank %llu), "
            "%llu squashed; coordinator fallback %llu, "
            "cross-bank %llu",
            (unsigned long long)s.workerApplies, (unsigned long long)pb,
            (unsigned long long)s.replaySquashed,
            (unsigned long long)s.coordinatorFallbackApplies,
            (unsigned long long)s.crossBankEffects);
    }
    // Access-classification footprint: how much speculative state the
    // classified fast paths kept out of the line table, and how often
    // the demotion safety net fired.
    if ((s.classifiedRoReads || s.classifiedPrivAccesses ||
         s.classifiedRedOps || s.classifiedDemotions) &&
        n > 0 && size_t(n) < sizeof(buf)) {
        std::snprintf(
            buf + n, sizeof(buf) - size_t(n),
            "\nclassification: ro/priv/red ops %llu/%llu/%llu; "
            "%llu words folded, %llu fold-aborts, %llu demotions; "
            "%llu line-table regs",
            (unsigned long long)s.classifiedRoReads,
            (unsigned long long)s.classifiedPrivAccesses,
            (unsigned long long)s.classifiedRedOps,
            (unsigned long long)s.classifiedFoldWords,
            (unsigned long long)s.classifyAborts,
            (unsigned long long)s.classifiedDemotions,
            (unsigned long long)s.lineTableRegs);
    }
    return buf;
}

// ---- BenchJson --------------------------------------------------------------

namespace {

std::string
jsonString(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

std::string
jsonNumber(double v)
{
    // %.17g round-trips doubles; trim the plain-integer case for
    // readable artifacts. The finite/range check must precede the
    // long long cast (casting inf/NaN or >=2^63 is UB); non-finite
    // values (a 0-ms denominator in a speedup) print as %g's inf/nan —
    // not valid JSON numbers, but visible rather than exploding.
    char buf[64];
    if (std::isfinite(v) && std::abs(v) < 1e15 &&
        v == static_cast<double>(static_cast<long long>(v))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

void
emitFields(std::ofstream& f,
           const std::vector<std::pair<std::string, std::string>>& fields)
{
    f << "{";
    for (size_t i = 0; i < fields.size(); i++) {
        f << jsonString(fields[i].first) << ": " << fields[i].second;
        if (i + 1 < fields.size())
            f << ", ";
    }
    f << "}";
}

} // namespace

BenchJson::BenchJson(std::string bench) : bench_(std::move(bench)) {}

void
BenchJson::add(Fields& f, const std::string& key, std::string json)
{
    for (auto& [k, v] : f) {
        if (k == key) {
            v = std::move(json); // last set wins, position stable
            return;
        }
    }
    f.emplace_back(key, std::move(json));
}

void
BenchJson::meta(const std::string& key, const std::string& v)
{
    add(meta_, key, jsonString(v));
}
void
BenchJson::meta(const std::string& key, const char* v)
{
    add(meta_, key, jsonString(v));
}
void
BenchJson::meta(const std::string& key, double v)
{
    add(meta_, key, jsonNumber(v));
}
void
BenchJson::meta(const std::string& key, uint64_t v)
{
    add(meta_, key, jsonNumber(double(v)));
}
void
BenchJson::meta(const std::string& key, bool v)
{
    add(meta_, key, v ? "true" : "false");
}

void
BenchJson::beginRow()
{
    rows_.emplace_back();
}
void
BenchJson::val(const std::string& key, const std::string& v)
{
    ssim_assert(!rows_.empty(), "val() before beginRow()");
    add(rows_.back(), key, jsonString(v));
}
void
BenchJson::val(const std::string& key, const char* v)
{
    ssim_assert(!rows_.empty(), "val() before beginRow()");
    add(rows_.back(), key, jsonString(v));
}
void
BenchJson::val(const std::string& key, double v)
{
    ssim_assert(!rows_.empty(), "val() before beginRow()");
    add(rows_.back(), key, jsonNumber(v));
}
void
BenchJson::val(const std::string& key, uint64_t v)
{
    ssim_assert(!rows_.empty(), "val() before beginRow()");
    add(rows_.back(), key, jsonNumber(double(v)));
}
void
BenchJson::val(const std::string& key, bool v)
{
    ssim_assert(!rows_.empty(), "val() before beginRow()");
    add(rows_.back(), key, v ? "true" : "false");
}

bool
BenchJson::finish(int argc, char** argv, bool pass)
{
    meta("pass", pass);
    if (const char* p = flagValue(argc, argv, "--json"))
        return write(p);
    return true;
}

bool
BenchJson::write(const std::string& path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("BenchJson: cannot open '%s' for writing", path.c_str());
        return false;
    }
    f << "{\"bench\": " << jsonString(bench_) << ", \"schema\": 1,\n";
    f << " \"meta\": ";
    emitFields(f, meta_);
    f << ",\n \"rows\": [";
    for (size_t i = 0; i < rows_.size(); i++) {
        f << "\n  ";
        emitFields(f, rows_[i]);
        if (i + 1 < rows_.size())
            f << ",";
    }
    f << "\n ]}\n";
    f.flush();
    if (!f) {
        warn("BenchJson: write to '%s' failed", path.c_str());
        return false;
    }
    return true;
}

void
banner(const std::string& title, const std::string& subtitle)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    if (!subtitle.empty())
        std::printf("%s\n", subtitle.c_str());
    std::printf("================================================================\n");
}

} // namespace ssim::harness
