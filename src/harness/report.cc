#include "harness/report.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/logging.h"

namespace ssim::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    ssim_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<size_t> w(headers_.size());
    for (size_t i = 0; i < headers_.size(); i++)
        w[i] = headers_[i].size();
    for (const auto& row : rows_)
        for (size_t i = 0; i < row.size(); i++)
            w[i] = std::max(w[i], row[i].size());

    auto printRow = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); i++)
            std::printf("%-*s%s", int(w[i]), row[i].c_str(),
                        i + 1 < row.size() ? "  " : "");
        std::printf("\n");
    };
    printRow(headers_);
    size_t total = 0;
    for (size_t i = 0; i < w.size(); i++)
        total += w[i] + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_)
        printRow(row);
}

void
Table::writeCsv(const std::string& name) const
{
    const char* csv = std::getenv("SWARMSIM_CSV");
    if (!csv || csv[0] != '1')
        return;
    std::ofstream f("results/" + name + ".csv");
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); i++)
            f << row[i] << (i + 1 < row.size() ? "," : "\n");
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtInt(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    return buf;
}

std::vector<double>
speedups(const std::vector<RunResult>& series, uint64_t base_cycles)
{
    std::vector<double> out;
    for (const auto& r : series)
        out.push_back(double(base_cycles) / double(r.stats.cycles));
    return out;
}

std::vector<std::string>
cycleBreakdownRow(const SimStats& s, double norm_total)
{
    std::vector<std::string> row;
    for (size_t b = 0; b < kNumCycleBuckets; b++)
        row.push_back(fmt(double(s.coreCycles[b]) / norm_total, 3));
    row.push_back(fmt(double(s.totalCoreCycles()) / norm_total, 3));
    return row;
}

std::vector<std::string>
trafficBreakdownRow(const SimStats& s, double norm_total)
{
    std::vector<std::string> row;
    for (size_t c = 0; c < kNumTrafficClasses; c++)
        row.push_back(fmt(double(s.flits[c]) / norm_total, 3));
    row.push_back(fmt(double(s.totalFlits()) / norm_total, 3));
    return row;
}

std::string
occupancySummary(const SimStats& s)
{
    if (s.laneScheduled.empty() || s.bankPeakLines.empty())
        return "";
    auto minMeanMax = [](const std::vector<uint64_t>& v, size_t from) {
        uint64_t lo = ~0ull, hi = 0, sum = 0;
        for (size_t i = from; i < v.size(); i++) {
            lo = std::min(lo, v[i]);
            hi = std::max(hi, v[i]);
            sum += v[i];
        }
        size_t n = v.size() - from;
        return std::array<uint64_t, 3>{lo, n ? sum / n : 0, hi};
    };
    auto ev = minMeanMax(s.laneScheduled, 1);
    auto pk = minMeanMax(s.lanePeakPending, 1);
    auto bk = minMeanMax(s.bankPeakLines, 0);
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "lanes: %zu tile + global (%llu ev); tile events "
        "min/mean/max=%llu/%llu/%llu, peak pending max=%llu\n"
        "banks: %zu; peak lines min/mean/max=%llu/%llu/%llu",
        s.laneScheduled.size() - 1, (unsigned long long)s.laneScheduled[0],
        (unsigned long long)ev[0], (unsigned long long)ev[1],
        (unsigned long long)ev[2], (unsigned long long)pk[2],
        s.bankPeakLines.size(), (unsigned long long)bk[0],
        (unsigned long long)bk[1], (unsigned long long)bk[2]);
    return buf;
}

void
banner(const std::string& title, const std::string& subtitle)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    if (!subtitle.empty())
        std::printf("%s\n", subtitle.c_str());
    std::printf("================================================================\n");
}

} // namespace ssim::harness
